// fleet_advisor — the thermal-management control loop, end to end:
//
//   1. train the stable-temperature model (offline);
//   2. scan the fleet for predicted hotspots (ThermalMonitorService);
//   3. plan migrations that relieve them (MigrationPlanner);
//   4. raise the CRAC setpoint as far as predictions allow and account the
//      cooling-energy saving (CoolingModel / plan_setpoint).
//
// This is the "thermal management ... minimizing cooling power draw"
// decision loop the paper's introduction motivates, driven entirely by the
// paper's predictor.

#include <iostream>

#include "core/evaluator.h"
#include "mgmt/cooling.h"
#include "mgmt/monitor.h"
#include "mgmt/planner.h"
#include "util/table.h"

namespace {

using namespace vmtherm;

mgmt::PlacedVm vm(const std::string& id, sim::TaskType task, int vcpus,
                  double mem) {
  mgmt::PlacedVm v;
  v.id = id;
  v.config.vcpus = vcpus;
  v.config.memory_gb = mem;
  v.config.task = task;
  return v;
}

std::vector<mgmt::HostPlacement> initial_fleet() {
  using sim::TaskType;
  std::vector<mgmt::HostPlacement> fleet(4);

  fleet[0].server = sim::make_server_spec("medium");
  fleet[0].fans = 4;
  fleet[0].vms = {vm("db-0", TaskType::kMemoryBound, 4, 16.0),
                  vm("ana-0", TaskType::kCpuBurn, 8, 8.0),
                  vm("ana-1", TaskType::kCpuBurn, 8, 8.0),
                  vm("web-0", TaskType::kWebServer, 4, 8.0)};

  fleet[1].server = sim::make_server_spec("medium");
  fleet[1].fans = 4;
  fleet[1].vms = {vm("web-1", TaskType::kWebServer, 2, 4.0),
                  vm("idle-0", TaskType::kIdle, 2, 4.0)};

  fleet[2].server = sim::make_server_spec("small");
  fleet[2].fans = 4;
  fleet[2].vms = {vm("batch-0", TaskType::kBatch, 4, 8.0)};

  fleet[3].server = sim::make_server_spec("large");
  fleet[3].fans = 6;
  fleet[3].vms = {vm("web-2", TaskType::kWebServer, 4, 8.0),
                  vm("idle-1", TaskType::kIdle, 2, 4.0)};
  return fleet;
}

}  // namespace

int main() {
  using namespace vmtherm;
  std::cout << "vmtherm fleet advisor\n=====================\n\n";
  const double env_c = 23.0;
  const double target_c = 58.0;

  // 1. Offline training.
  std::cout << "Training stable-temperature model on 200 experiments...\n\n";
  sim::ScenarioRanges ranges;
  ranges.duration_s = 1500.0;
  ranges.sample_interval_s = 10.0;
  const auto records = core::generate_corpus(ranges, 200, /*seed=*/81);
  core::StableTrainOptions options;
  ml::SvrParams params;
  params.kernel.gamma = 1.0 / 32;
  params.c = 512.0;
  params.epsilon = 0.05;
  options.fixed_params = params;
  const auto predictor =
      core::StableTemperaturePredictor::train(records, options);

  // 2. Fleet scan.
  auto fleet = initial_fleet();
  Table scan({"host", "server", "vms", "predicted_stable_C",
              "over_target"});
  for (std::size_t h = 0; h < fleet.size(); ++h) {
    const double predicted = predictor.predict(
        fleet[h].server, fleet[h].configs(), fleet[h].fans, env_c);
    scan.add_row({std::to_string(h), fleet[h].server.name,
                  Table::num(static_cast<long long>(fleet[h].vms.size())),
                  Table::num(predicted, 1),
                  predicted > target_c ? "YES" : ""});
  }
  std::cout << "Fleet scan (target " << target_c << " C):\n\n";
  scan.print(std::cout);

  // 3. Migration plan.
  mgmt::PlannerOptions planner_options;
  planner_options.target_c = target_c;
  planner_options.env_temp_c = env_c;
  const auto plan = mgmt::plan_migrations(predictor, fleet, planner_options);

  std::cout << "\nMigration plan (" << plan.moves.size() << " move(s), target "
            << (plan.target_met ? "met" : "NOT met") << "):\n\n";
  if (plan.moves.empty()) {
    std::cout << "  (no moves needed)\n";
  } else {
    Table moves({"vm", "from", "to", "source_after_C", "dest_after_C"});
    for (const auto& m : plan.moves) {
      moves.add_row({m.vm_id, std::to_string(m.from_host),
                     std::to_string(m.to_host),
                     Table::num(m.source_predicted_after_c, 1),
                     Table::num(m.dest_predicted_after_c, 1)});
    }
    moves.print(std::cout);
  }

  // Apply the plan to the fleet model.
  for (const auto& m : plan.moves) {
    auto& from = fleet[m.from_host].vms;
    for (auto it = from.begin(); it != from.end(); ++it) {
      if (it->id == m.vm_id) {
        fleet[m.to_host].vms.push_back(*it);
        from.erase(it);
        break;
      }
    }
  }

  // 4. Predictive CRAC setpoint on the balanced fleet.
  std::vector<mgmt::PlannedHost> planned;
  for (const auto& host : fleet) {
    mgmt::PlannedHost p;
    p.server = host.server;
    p.fans = host.fans;
    p.vms = host.configs();
    p.it_watts = 150.0 + 40.0 * static_cast<double>(host.vms.size());
    planned.push_back(std::move(p));
  }
  const auto setpoint = mgmt::plan_setpoint(predictor, planned,
                                            /*baseline=*/18.0,
                                            /*max=*/30.0,
                                            /*cpu_limit=*/target_c + 10.0,
                                            /*margin=*/2.0);

  std::cout << "\nPredictive CRAC setpoint (after rebalancing):\n\n";
  Table sp({"metric", "value"});
  sp.add_row({"baseline supply", Table::num(setpoint.baseline_supply_c, 1) +
                                     " C"});
  sp.add_row({"recommended supply",
              Table::num(setpoint.recommended_supply_c, 1) + " C"});
  sp.add_row({"hottest host prediction",
              Table::num(setpoint.hottest_predicted_c, 1) + " C"});
  sp.add_row({"cooling energy saving",
              Table::num(100.0 * setpoint.cooling_saving_fraction, 1) + " %"});
  sp.print(std::cout);

  double it_watts = 0.0;
  for (const auto& p : planned) it_watts += p.it_watts;
  const double before = mgmt::CoolingModel::cooling_power_watts(
      it_watts, setpoint.baseline_supply_c);
  const double after = mgmt::CoolingModel::cooling_power_watts(
      it_watts, setpoint.recommended_supply_c);
  std::cout << "\n  fleet IT load " << Table::num(it_watts / 1000.0, 2)
            << " kW: cooling " << Table::num(before / 1000.0, 2) << " kW -> "
            << Table::num(after / 1000.0, 2)
            << " kW at the recommended setpoint.\n"
            << "\n  The whole loop ran on *predictions*: no host had to\n"
            << "  overheat first.\n";
  return 0;
}
