// hotspot_alarm — proactive hotspot detection across a fleet.
//
// Thermal management wants to know about hotspots *before* they happen
// (the paper: "temperature prediction is a fundamental technique to conduct
// thermal management proactively"). This example runs a fleet of machines
// with drifting room temperature and VM churn, and raises an alarm whenever
// the 120 s-ahead dynamic prediction crosses a threshold — then reports how
// much earlier the predictive alarm fired than a reactive (measured)
// threshold alarm would have.

#include <iostream>
#include <optional>
#include <vector>

#include "core/evaluator.h"
#include "sim/cluster.h"
#include "util/table.h"

namespace {

using namespace vmtherm;

struct FleetHost {
  std::size_t cluster_index;
  core::DynamicTemperaturePredictor tracker{core::DynamicOptions{}};
  std::optional<double> predictive_alarm_s;
  std::optional<double> reactive_alarm_s;
};

std::vector<sim::VmConfig> configs_of(const sim::PhysicalMachine& machine) {
  std::vector<sim::VmConfig> out;
  for (const auto& vm : machine.vms()) out.push_back(vm.config());
  return out;
}

}  // namespace

int main() {
  using namespace vmtherm;
  std::cout << "vmtherm hotspot alarm\n=====================\n\n";
  const double threshold_c = 70.0;
  const double horizon_s = 120.0;

  std::cout << "Training stable-temperature model on 150 experiments...\n";
  sim::ScenarioRanges ranges;
  ranges.duration_s = 1500.0;
  ranges.sample_interval_s = 10.0;
  const auto records = core::generate_corpus(ranges, 150, /*seed=*/91);
  core::StableTrainOptions options;
  ml::SvrParams params;
  params.kernel.gamma = 1.0 / 32;
  params.c = 512.0;
  params.epsilon = 0.05;
  options.fixed_params = params;
  const auto stable =
      core::StableTemperaturePredictor::train(records, options);

  // Fleet under a warming room (CRAC drift: 23 -> 27 C).
  sim::EnvironmentSpec env;
  env.kind = sim::EnvScheduleKind::kDrift;
  env.base_c = 23.0;
  env.delta_c = 4.0;
  env.duration_s = 2400.0;
  sim::Cluster cluster(env, Rng(17));
  sim::MachineOptions machine_options;
  machine_options.initial_temp_c = 23.0;

  sim::VmConfig burn;
  burn.vcpus = 8;
  burn.memory_gb = 8.0;
  burn.task = sim::TaskType::kCpuBurn;
  sim::VmConfig web;
  web.vcpus = 4;
  web.memory_gb = 8.0;
  web.task = sim::TaskType::kWebServer;

  std::vector<FleetHost> fleet;
  for (int i = 0; i < 3; ++i) {
    sim::MachineOptions host_options = machine_options;
    host_options.active_fans = (i == 2 ? 2 : 4);  // host 2 runs degraded
    const std::size_t idx =
        cluster.add_machine(sim::make_server_spec("medium"), host_options);
    cluster.place_vm(idx, sim::Vm("web-" + std::to_string(i), web,
                                  Rng(100 + static_cast<std::uint64_t>(i))));
    FleetHost host;
    host.cluster_index = idx;
    fleet.push_back(std::move(host));
  }
  // Host 2 additionally runs two compute jobs: the hotspot candidate.
  cluster.place_vm(2, sim::Vm("burn-a", burn, Rng(201)));
  cluster.place_vm(2, sim::Vm("burn-b", burn, Rng(202)));

  for (auto& host : fleet) {
    const auto& machine = cluster.machine(host.cluster_index);
    host.tracker.begin(0.0, 23.0,
                       stable.predict(machine.spec(), configs_of(machine),
                                      machine.active_fans(), env.base_c));
  }

  Table alarms({"t_s", "host", "kind", "value_C"});
  const double dt = 5.0;
  for (int step = 1; step <= 480; ++step) {  // 2400 s
    cluster.step(dt);
    const double t = cluster.time_s();
    for (auto& host : fleet) {
      const auto& machine = cluster.machine(host.cluster_index);
      const double measured = machine.last_sample().cpu_temp_sensed_c;
      host.tracker.observe(t, measured);
      const double predicted = host.tracker.predict_ahead(horizon_s);

      if (!host.predictive_alarm_s.has_value() && predicted >= threshold_c) {
        host.predictive_alarm_s = t;
        alarms.add_row({Table::num(t, 0),
                        std::to_string(host.cluster_index),
                        "PREDICTIVE (+120 s forecast)",
                        Table::num(predicted, 1)});
      }
      if (!host.reactive_alarm_s.has_value() && measured >= threshold_c) {
        host.reactive_alarm_s = t;
        alarms.add_row({Table::num(t, 0),
                        std::to_string(host.cluster_index), "reactive",
                        Table::num(measured, 1)});
      }
    }
  }

  std::cout << "\nAlarm log (threshold " << threshold_c << " C):\n\n";
  if (alarms.row_count() == 0) {
    std::cout << "  (no host crossed the threshold)\n";
  } else {
    alarms.print(std::cout, 2);
  }

  std::cout << "\nLead time of predictive over reactive alarms:\n";
  for (const auto& host : fleet) {
    std::cout << "  host " << host.cluster_index << ": ";
    if (host.reactive_alarm_s && host.predictive_alarm_s) {
      std::cout << Table::num(*host.reactive_alarm_s - *host.predictive_alarm_s,
                              0)
                << " s earlier\n";
    } else if (host.predictive_alarm_s) {
      std::cout << "predicted a crossing the reactive alarm never saw\n";
    } else {
      std::cout << "no alarm (host stayed cool)\n";
    }
  }
  std::cout << "\nA scheduler wired to the predictive alarm has minutes to\n"
            << "migrate VMs away before the hotspot materializes.\n";
  return 0;
}
