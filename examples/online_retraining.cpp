// online_retraining — the paper's deployment story, closed end to end:
// collect profiling records online, serve predictions from the live model,
// watch residuals for drift, retrain when the datacenter changes.
//
// Timeline of this demo:
//   phase 1: 150 records from the healthy fleet -> first model fits, then
//            a batch refresh; prequential error is moderate and stable.
//   phase 2: the fleet's heatsinks silently degrade 35% (dust, age). The
//            stale model's residuals shift; CUSUM fires within a handful of
//            records; the trainer refits on the sliding window and accuracy
//            recovers.

#include <iostream>

#include "core/evaluator.h"
#include "core/online.h"
#include "util/table.h"

namespace {

using namespace vmtherm;

std::vector<core::Record> profile_batch(std::size_t n, std::uint64_t seed,
                                        double resistance_scale) {
  sim::ScenarioRanges ranges;
  ranges.duration_s = 1500.0;
  ranges.sample_interval_s = 10.0;
  sim::ScenarioSampler sampler(ranges, seed);
  auto configs = sampler.sample(n);
  for (auto& config : configs) {
    config.server.thermal.sink_to_ambient_resistance *= resistance_scale;
  }
  return core::profile_experiments(configs);
}

const char* reason_name(core::RetrainReason reason) {
  switch (reason) {
    case core::RetrainReason::kNone: return "-";
    case core::RetrainReason::kInitial: return "initial fit";
    case core::RetrainReason::kBatch: return "batch refresh";
    case core::RetrainReason::kDrift: return "DRIFT detected";
  }
  return "?";
}

}  // namespace

int main() {
  using namespace vmtherm;
  std::cout << "vmtherm online retraining\n=========================\n\n";

  core::OnlineTrainerOptions options;
  options.min_records_for_training = 60;
  options.retrain_batch = 60;
  options.retrain_on_drift = true;
  options.drift_slack_c = 2.0;       // ~sigma/2 of this model's residuals
  options.drift_threshold_c = 30.0;  // no false alarms in-control
  options.max_records = 200;  // sliding window
  ml::SvrParams params;
  params.kernel.gamma = 1.0 / 32;
  params.c = 512.0;
  params.epsilon = 0.05;
  options.train_options.fixed_params = params;
  core::OnlineTrainer trainer(options);

  Table log({"record#", "event", "model", "prequential_mse"});
  auto feed = [&](const std::vector<core::Record>& batch) {
    for (const auto& r : batch) {
      const bool retrained = trainer.add_record(r);
      if (retrained) {
        log.add_row({Table::num(static_cast<long long>(trainer.records_seen())),
                     reason_name(trainer.last_retrain_reason()),
                     "v" + std::to_string(trainer.model_version()), "-"});
      }
    }
  };

  std::cout << "Phase 1: healthy fleet (150 records arrive)...\n";
  feed(profile_batch(150, 1001, 1.0));
  const double healthy_preq = trainer.prequential_mse();
  log.add_row({Table::num(static_cast<long long>(trainer.records_seen())),
               "phase 1 complete",
               "v" + std::to_string(trainer.model_version()),
               Table::num(healthy_preq, 3)});

  std::cout << "Phase 2: heatsinks degrade 35% (model is now stale)...\n\n";
  feed(profile_batch(100, 2002, 1.35));
  log.add_row({Table::num(static_cast<long long>(trainer.records_seen())),
               "phase 2 complete",
               "v" + std::to_string(trainer.model_version()),
               Table::num(trainer.prequential_mse(), 3)});

  log.print(std::cout);

  // Score the final model vs the phase-1 model's ghost on fresh
  // degraded-fleet data.
  const auto held_out = profile_batch(25, 3003, 1.35);
  double se = 0.0;
  for (const auto& r : held_out) {
    const double e = trainer.model().predict(r) - r.stable_temp_c;
    se += e * e;
  }
  std::cout << "\n  model version now: v" << trainer.model_version()
            << " (window of " << trainer.buffered_records() << " records)\n";
  std::cout << "  held-out MSE on the degraded fleet: "
            << Table::num(se / static_cast<double>(held_out.size()), 3)
            << "\n";
  std::cout << "\n  Without the drift trigger the stale model would keep\n"
            << "  under-predicting every host by several degrees - the\n"
            << "  dangerous direction for thermal safety.\n";
  return 0;
}
