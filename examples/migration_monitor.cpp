// migration_monitor — online temperature prediction through a live VM
// migration, the scenario the paper calls out as breaking traditional
// task-temperature / RC models.
//
// A two-machine cluster runs a hot VM on host 0. Mid-run the VM is
// live-migrated to host 1. Each host has its own dynamic predictor; when
// the migration completes, both predictors are retargeted with fresh
// stable-temperature predictions for their new VM sets. The monitor prints
// both hosts' measured vs predicted temperatures around the migration.

#include <array>
#include <iostream>
#include <optional>

#include "core/evaluator.h"
#include "sim/cluster.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace vmtherm;

/// Predictor state for one host.
struct HostMonitor {
  core::DynamicTemperaturePredictor tracker{core::DynamicOptions{}};
  std::vector<double> measured;
  std::vector<double> predicted;
};

std::vector<sim::VmConfig> configs_of(const sim::PhysicalMachine& machine) {
  std::vector<sim::VmConfig> out;
  for (const auto& vm : machine.vms()) out.push_back(vm.config());
  return out;
}

}  // namespace

int main() {
  using namespace vmtherm;
  std::cout << "vmtherm migration monitor\n=========================\n\n";

  // Train the stable predictor once, offline.
  sim::ScenarioRanges ranges;
  ranges.duration_s = 1500.0;
  ranges.sample_interval_s = 10.0;
  std::cout << "Training stable-temperature model on 150 experiments...\n\n";
  const auto records = core::generate_corpus(ranges, 150, /*seed=*/31);
  core::StableTrainOptions train_options;
  ml::SvrParams params;
  params.kernel.gamma = 1.0 / 32;
  params.c = 512.0;
  params.epsilon = 0.05;
  train_options.fixed_params = params;
  const auto stable =
      core::StableTemperaturePredictor::train(records, train_options);

  // Cluster: two medium hosts, one hot VM plus background VMs.
  sim::EnvironmentSpec env;
  env.base_c = 23.0;
  sim::Cluster cluster(env, Rng(5));
  sim::MachineOptions machine_options;
  machine_options.initial_temp_c = 23.0;
  cluster.add_machine(sim::make_server_spec("medium"), machine_options);
  cluster.add_machine(sim::make_server_spec("medium"), machine_options);

  sim::VmConfig hot;
  hot.vcpus = 8;
  hot.memory_gb = 8.0;
  hot.task = sim::TaskType::kCpuBurn;
  sim::VmConfig background;
  background.vcpus = 2;
  background.memory_gb = 4.0;
  background.task = sim::TaskType::kWebServer;

  cluster.place_vm(0, sim::Vm("hot", hot, Rng(11)));
  cluster.place_vm(0, sim::Vm("bg-0", background, Rng(12)));
  cluster.place_vm(1, sim::Vm("bg-1", background, Rng(13)));

  // Start both monitors.
  std::array<HostMonitor, 2> monitors;
  for (std::size_t h = 0; h < 2; ++h) {
    monitors[h].tracker.begin(
        0.0, 23.0,
        stable.predict(cluster.machine(h).spec(),
                       configs_of(cluster.machine(h)),
                       cluster.machine(h).active_fans(), env.base_c));
  }

  const double migration_time = 900.0;
  bool migration_started = false;
  std::optional<double> migration_completed;

  Table table({"t_s", "host0_measured", "host0_predicted", "host1_measured",
               "host1_predicted", "event"});

  const double dt = 5.0;
  for (int step = 1; step <= 360; ++step) {  // 1800 s
    const double t = step * dt;
    std::string event;

    if (!migration_started && t >= migration_time) {
      cluster.migrate("hot", 1);
      migration_started = true;
      event = "migrate(hot, host0 -> host1) started";
    }

    const std::size_t migrations_before = cluster.completed_migrations().size();
    cluster.step(dt);
    if (cluster.completed_migrations().size() > migrations_before) {
      migration_completed = t;
      event = "migration completed; predictors retargeted";
      // Retarget both hosts with their new logical VM sets.
      for (std::size_t h = 0; h < 2; ++h) {
        monitors[h].tracker.retarget(
            t, cluster.machine(h).last_sample().cpu_temp_sensed_c,
            stable.predict(cluster.machine(h).spec(),
                           configs_of(cluster.machine(h)),
                           cluster.machine(h).active_fans(), env.base_c));
      }
    }

    for (std::size_t h = 0; h < 2; ++h) {
      const auto& sample = cluster.machine(h).last_sample();
      monitors[h].measured.push_back(sample.cpu_temp_sensed_c);
      monitors[h].predicted.push_back(monitors[h].tracker.predict_at(t));
      monitors[h].tracker.observe(t, sample.cpu_temp_sensed_c);
    }

    if (step % 24 == 0 || !event.empty()) {  // every 2 min or on events
      table.add_row({Table::num(t, 0),
                     Table::num(monitors[0].measured.back(), 2),
                     Table::num(monitors[0].predicted.back(), 2),
                     Table::num(monitors[1].measured.back(), 2),
                     Table::num(monitors[1].predicted.back(), 2), event});
    }
  }
  table.print(std::cout);

  std::cout << "\nTracking error (whole run, both hosts):\n";
  for (std::size_t h = 0; h < 2; ++h) {
    std::cout << "  host " << h << ": MSE "
              << Table::num(mse(monitors[h].predicted, monitors[h].measured), 3)
              << "  MAE "
              << Table::num(mae(monitors[h].predicted, monitors[h].measured), 3)
              << "\n";
  }
  if (migration_completed.has_value()) {
    std::cout << "\nMigration of 8 GB VM completed at t="
              << Table::num(*migration_completed, 0)
              << " s (source cools, destination heats; predictors follow\n"
              << "both transients thanks to retargeting + calibration).\n";
  }
  return 0;
}
