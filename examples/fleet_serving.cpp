// fleet_serving — the sharded serving engine at fleet scale.
//
// ThermalMonitorService (examples/hotspot_alarm.cpp) is a single-threaded
// façade: fine for a rack, externally synchronized by design (DESIGN.md §6).
// This example runs the serving path built for the next three orders of
// magnitude: a FleetEngine sharding 1000 hosts, streaming one simulated
// telemetry batch per scrape interval through the concurrent ingestion
// queues, then asking for the fleet's metrics table and the five hosts most
// at risk of becoming hotspots.

#include <cstdio>
#include <iostream>
#include <vector>

#include "core/evaluator.h"
#include "serve/engine.h"
#include "sim/experiment.h"
#include "util/table.h"

int main() {
  using namespace vmtherm;

  constexpr std::size_t kHosts = 1000;
  constexpr std::size_t kSteps = 60;
  constexpr double kIntervalS = 5.0;
  constexpr double kHorizonS = 120.0;
  constexpr double kThresholdC = 70.0;

  std::cout << "vmtherm fleet serving\n=====================\n\n";

  std::cout << "Training stable-temperature model on 80 experiments...\n";
  sim::ScenarioRanges corpus_ranges;
  corpus_ranges.duration_s = 1200.0;
  corpus_ranges.sample_interval_s = 10.0;
  const auto records = core::generate_corpus(corpus_ranges, 80, /*seed=*/91);
  core::StableTrainOptions train_options;
  ml::SvrParams params;
  params.kernel.gamma = 1.0 / 32;
  params.c = 512.0;
  params.epsilon = 0.05;
  train_options.fixed_params = params;
  const auto stable =
      core::StableTemperaturePredictor::train(records, train_options);

  // One simulated telemetry trace per host, deterministic given the seed.
  std::cout << "Simulating " << kHosts << " host traces...\n";
  sim::ScenarioRanges fleet_ranges;
  fleet_ranges.duration_s = static_cast<double>(kSteps) * kIntervalS;
  fleet_ranges.sample_interval_s = kIntervalS;
  sim::ScenarioSampler sampler(fleet_ranges, /*seed=*/7);
  const std::vector<sim::ExperimentConfig> configs = sampler.sample(kHosts);
  std::vector<sim::TemperatureTrace> traces;
  traces.reserve(kHosts);
  for (const sim::ExperimentConfig& config : configs) {
    traces.push_back(sim::run_experiment(config).trace);
  }

  // Auto-drain engine: ingest_batch returns once events are queued; pool
  // workers apply them behind the producer, shard-parallel.
  serve::FleetEngineOptions options;
  options.shards = 8;
  serve::FleetEngine engine(stable, options);

  std::vector<serve::HostHandle> handles;
  handles.reserve(kHosts);
  for (std::size_t h = 0; h < kHosts; ++h) {
    mgmt::MonitoredConfig config;
    config.server = configs[h].server;
    config.fans = configs[h].active_fans;
    config.vms = configs[h].vms;
    config.env_temp_c = configs[h].environment.base_c;
    char name[16];
    std::snprintf(name, sizeof name, "host-%04zu", h);
    handles.push_back(engine.register_host(name, config, traces[h][0].time_s,
                                           traces[h][0].cpu_temp_sensed_c));
  }

  std::cout << "Streaming " << kSteps << " scrape rounds ("
            << kHosts * kSteps << " events)...\n";
  for (std::size_t step = 1; step <= kSteps; ++step) {
    std::vector<serve::TelemetryEvent> batch;
    batch.reserve(kHosts);
    for (std::size_t h = 0; h < kHosts; ++h) {
      const std::size_t index = std::min(step, traces[h].size() - 1);
      batch.push_back(serve::TelemetryEvent::observe(
          handles[h], traces[h][index].time_s,
          traces[h][index].cpu_temp_sensed_c));
    }
    engine.ingest_batch(std::move(batch));
  }
  engine.flush();  // barrier: every queued event applied

  std::cout << "\nEngine metrics:\n\n";
  engine.metrics().to_table().print(std::cout, 2);

  const auto risks = engine.hotspot_scan(kHorizonS, kThresholdC);
  Table top({"host", "forecast_C_at_+120s", "at_risk"});
  for (std::size_t i = 0; i < risks.size() && i < 5; ++i) {
    top.add_row({risks[i].host_id, Table::num(risks[i].forecast_c, 2),
                 risks[i].at_risk ? "YES" : "no"});
  }
  std::cout << "\nTop-5 hotspot risks (threshold " << kThresholdC << " C):\n\n";
  top.print(std::cout, 2);

  std::cout << "\nThe same stream replayed at any shard or thread count\n"
            << "produces these exact forecasts (see DESIGN.md §7).\n";
  return 0;
}
