// quickstart — the 60-second tour of vmtherm.
//
// 1. Run profiling experiments on the simulated testbed to build a training
//    corpus (Eq. 1 + Eq. 2 of the paper).
// 2. Train the stable-temperature SVR (scaled features, RBF kernel).
// 3. Predict the stable CPU temperature of a proposed VM placement.
// 4. Track temperature online with the calibrated dynamic predictor.

#include <iostream>

#include "core/evaluator.h"
#include "util/table.h"

int main() {
  using namespace vmtherm;
  std::cout << "vmtherm quickstart\n==================\n\n";

  // --- 1. Build a training corpus from randomized experiments ------------
  sim::ScenarioRanges ranges;           // 2-12 VMs, 1-6 fans, 18-30 C rooms
  ranges.duration_s = 1500.0;           // t_exp per experiment
  ranges.sample_interval_s = 10.0;
  std::cout << "Profiling 150 randomized experiments (this simulates the\n"
            << "paper's physical testbed)...\n";
  const auto records = core::generate_corpus(ranges, 150, /*seed=*/7);

  // --- 2. Train the stable-temperature predictor -------------------------
  core::StableTrainOptions options;
  options.grid.c_values = {32.0, 512.0, 2048.0};   // trimmed grid: fast demo
  options.grid.gamma_values = {1.0 / 64, 1.0 / 16};
  options.grid.epsilon_values = {0.05};
  options.grid.folds = 5;
  core::StableTrainReport report;
  const auto predictor =
      core::StableTemperaturePredictor::train(records, options, &report);
  std::cout << "Trained: C=" << report.chosen_params.c
            << " gamma=" << report.chosen_params.kernel.gamma
            << " (5-fold CV MSE " << Table::num(report.cv_mse, 2) << ")\n\n";

  // --- 3. Ask "how hot will this placement run?" -------------------------
  const auto server = sim::make_server_spec("medium");
  sim::VmConfig web;
  web.vcpus = 4;
  web.memory_gb = 8.0;
  web.task = sim::TaskType::kWebServer;
  sim::VmConfig batch;
  batch.vcpus = 8;
  batch.memory_gb = 16.0;
  batch.task = sim::TaskType::kBatch;

  Table table({"placement", "fans", "room_C", "predicted_stable_C"});
  table.add_row({"2 web VMs", "4", "22",
                 Table::num(predictor.predict(server, {web, web}, 4, 22.0), 1)});
  table.add_row({"2 web + 2 batch VMs", "4", "22",
                 Table::num(predictor.predict(server, {web, web, batch, batch},
                                              4, 22.0),
                            1)});
  table.add_row({"2 web + 2 batch VMs", "2", "22",
                 Table::num(predictor.predict(server, {web, web, batch, batch},
                                              2, 22.0),
                            1)});
  table.add_row({"2 web + 2 batch VMs", "2", "28",
                 Table::num(predictor.predict(server, {web, web, batch, batch},
                                              2, 28.0),
                            1)});
  table.print(std::cout);

  // --- 4. Track a live machine with the dynamic predictor ----------------
  std::cout << "\nOnline tracking (gap 60 s, update 15 s, lambda 0.8):\n";
  sim::MachineOptions machine_options;
  machine_options.initial_temp_c = 22.0;
  sim::PhysicalMachine machine(server, machine_options, Rng(99));
  machine.add_vm(sim::Vm("web-0", web, Rng(1)));
  machine.add_vm(sim::Vm("batch-0", batch, Rng(2)));

  core::DynamicTemperaturePredictor tracker{core::DynamicOptions{}};
  tracker.begin(0.0, 22.0,
                predictor.predict(server, {web, batch}, 4, 22.0));

  Table track({"t_s", "measured_C", "predicted_now_C", "predicted_+60s_C",
               "calibration"});
  for (int i = 1; i <= 120; ++i) {
    const auto sample = machine.step(5.0, 22.0);
    tracker.observe(sample.time_s, sample.cpu_temp_sensed_c);
    if (i % 24 == 0) {  // print every 2 minutes
      track.add_row({Table::num(sample.time_s, 0),
                     Table::num(sample.cpu_temp_sensed_c, 2),
                     Table::num(tracker.predict_at(sample.time_s), 2),
                     Table::num(tracker.predict_ahead(60.0), 2),
                     Table::num(tracker.calibration(), 2)});
    }
  }
  track.print(std::cout);
  std::cout << "\nDone. See examples/migration_monitor and\n"
            << "examples/thermal_scheduler for larger scenarios.\n";
  return 0;
}
