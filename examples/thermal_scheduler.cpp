// thermal_scheduler — thermal-aware VM placement driven by stable
// temperature predictions, the decision-making use case the paper's
// introduction motivates ("temperature prediction ... provides substantial
// value to decision making").
//
// A stream of VM requests arrives at a small heterogeneous cluster. Two
// schedulers are compared on identical streams:
//   * round-robin      — placement ignores thermals;
//   * thermal-aware    — place each VM on the feasible host whose predicted
//                        stable temperature after placement is lowest.
// The thermal-aware policy should cut the hottest host's temperature (the
// hotspot the paper's thermal management wants to avoid) at equal work.

#include <iostream>
#include <vector>

#include "core/evaluator.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace vmtherm;

struct Host {
  sim::ServerSpec spec;
  int fans = 4;
  std::vector<sim::VmConfig> placed;

  double used_memory() const {
    double total = 0.0;
    for (const auto& vm : placed) total += vm.memory_gb;
    return total;
  }
  bool fits(const sim::VmConfig& vm) const {
    return used_memory() + vm.memory_gb <= spec.memory_gb;
  }
};

std::vector<Host> make_cluster() {
  return {
      {sim::make_server_spec("small"), 4, {}},
      {sim::make_server_spec("medium"), 4, {}},
      {sim::make_server_spec("medium"), 2, {}},  // degraded cooling
      {sim::make_server_spec("large"), 6, {}},
  };
}

std::vector<sim::VmConfig> request_stream(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  const auto types = sim::all_task_types();
  std::vector<sim::VmConfig> stream;
  for (std::size_t i = 0; i < n; ++i) {
    sim::VmConfig vm;
    vm.vcpus = 1 << rng.uniform_int(0, 3);  // 1..8
    vm.memory_gb = static_cast<double>(2 << rng.uniform_int(0, 2));  // 2..8
    vm.task = types[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(types.size()) - 1))];
    stream.push_back(vm);
  }
  return stream;
}

/// Measures each host's actual stable temperature for its final placement
/// by running the testbed simulator.
std::vector<double> measure(const std::vector<Host>& hosts, double env_c) {
  std::vector<double> temps;
  for (const auto& host : hosts) {
    sim::ExperimentConfig config;
    config.server = host.spec;
    config.vms = host.placed;
    config.active_fans = host.fans;
    config.environment.base_c = env_c;
    config.initial_temp_c = env_c;
    config.duration_s = 1800.0;
    config.sample_interval_s = 10.0;
    config.seed = 1234;
    const auto result = sim::run_experiment(config);
    temps.push_back(core::stable_temperature(result.trace));
  }
  return temps;
}

}  // namespace

int main() {
  using namespace vmtherm;
  std::cout << "vmtherm thermal-aware scheduler\n"
            << "===============================\n\n";
  const double env_c = 23.0;

  std::cout << "Training stable-temperature model on 200 experiments...\n\n";
  sim::ScenarioRanges ranges;
  ranges.duration_s = 1500.0;
  ranges.sample_interval_s = 10.0;
  const auto records = core::generate_corpus(ranges, 200, /*seed=*/61);
  core::StableTrainOptions options;
  ml::SvrParams params;
  params.kernel.gamma = 1.0 / 32;
  params.c = 512.0;
  params.epsilon = 0.05;
  options.fixed_params = params;
  const auto predictor =
      core::StableTemperaturePredictor::train(records, options);

  const auto stream = request_stream(24, /*seed=*/77);

  // --- Round-robin placement ---------------------------------------------
  auto rr_hosts = make_cluster();
  std::size_t cursor = 0;
  for (const auto& vm : stream) {
    for (std::size_t tried = 0; tried < rr_hosts.size(); ++tried) {
      Host& host = rr_hosts[(cursor + tried) % rr_hosts.size()];
      if (host.fits(vm)) {
        host.placed.push_back(vm);
        cursor = (cursor + tried + 1) % rr_hosts.size();
        break;
      }
    }
  }

  // --- Thermal-aware placement --------------------------------------------
  auto ta_hosts = make_cluster();
  for (const auto& vm : stream) {
    double best_temp = 1e9;
    Host* best_host = nullptr;
    for (auto& host : ta_hosts) {
      if (!host.fits(vm)) continue;
      auto hypothetical = host.placed;
      hypothetical.push_back(vm);
      const double predicted =
          predictor.predict(host.spec, hypothetical, host.fans, env_c);
      if (predicted < best_temp) {
        best_temp = predicted;
        best_host = &host;
      }
    }
    if (best_host != nullptr) best_host->placed.push_back(vm);
  }

  // --- Ground truth comparison --------------------------------------------
  std::cout << "Measuring final placements on the testbed simulator...\n";
  const auto rr_temps = measure(rr_hosts, env_c);
  const auto ta_temps = measure(ta_hosts, env_c);

  Table table({"host", "fans", "rr_vms", "rr_stable_C", "ta_vms",
               "ta_stable_C"});
  for (std::size_t h = 0; h < rr_hosts.size(); ++h) {
    table.add_row({rr_hosts[h].spec.name,
                   Table::num(static_cast<long long>(rr_hosts[h].fans)),
                   Table::num(static_cast<long long>(rr_hosts[h].placed.size())),
                   Table::num(rr_temps[h], 1),
                   Table::num(static_cast<long long>(ta_hosts[h].placed.size())),
                   Table::num(ta_temps[h], 1)});
  }
  std::cout << "\n";
  table.print(std::cout);

  const double rr_peak = quantile(rr_temps, 1.0);
  const double ta_peak = quantile(ta_temps, 1.0);
  const double rr_spread = quantile(rr_temps, 1.0) - quantile(rr_temps, 0.0);
  const double ta_spread = quantile(ta_temps, 1.0) - quantile(ta_temps, 0.0);

  std::cout << "\n  peak host temperature:  round-robin "
            << Table::num(rr_peak, 1) << " C  vs  thermal-aware "
            << Table::num(ta_peak, 1) << " C\n";
  std::cout << "  hot/cold spread:        round-robin "
            << Table::num(rr_spread, 1) << " C  vs  thermal-aware "
            << Table::num(ta_spread, 1) << " C\n";
  std::cout << "\n  "
            << (ta_peak <= rr_peak
                    ? "thermal-aware placement avoided the hotspot."
                    : "unexpected: thermal-aware placement ran hotter!")
            << "\n";
  return 0;
}
