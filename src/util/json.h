// vmtherm/util/json.h
//
// Minimal JSON string escaping, shared by every component that emits JSON
// by hand (metrics registry, trace export, CLI reports). vmtherm writes its
// JSON with plain streams on purpose — no third-party dependency — which
// makes correct escaping of names that contain quotes, backslashes or
// control characters everyone's problem; this is the one implementation.

#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

namespace vmtherm::util {

/// Writes `s` to `os` JSON-escaped (without surrounding quotes): `"` and
/// `\` are backslash-escaped, the common control characters use their
/// two-character forms (\n, \t, \r, \b, \f) and every other byte below
/// 0x20 becomes \u00XX. Bytes >= 0x80 pass through untouched (UTF-8 is
/// valid inside JSON strings).
void write_json_escaped(std::ostream& os, std::string_view s);

/// Convenience: the escaped form as a string (same rules as above).
std::string json_escape(std::string_view s);

}  // namespace vmtherm::util
