// vmtherm/util/stats.h
//
// Descriptive statistics and regression error metrics.
//
// Two flavours:
//   * RunningStats — single-pass accumulator (Welford) used by the
//     simulator's window statistics and the profiler.
//   * free functions over std::span<const double> — used by evaluation code
//     where the whole series is in memory.

#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace vmtherm {

/// Single-pass mean/variance/min/max accumulator (Welford's algorithm —
/// numerically stable for long temperature traces).
class RunningStats {
 public:
  void add(double x) noexcept;

  /// Merges another accumulator into this one (parallel Welford).
  void merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  bool empty() const noexcept { return n_ == 0; }

  /// Mean of the observations. Returns 0 when empty.
  double mean() const noexcept { return mean_; }

  /// Population variance (divides by n). Returns 0 for n < 2.
  double variance() const noexcept;

  /// Sample variance (divides by n-1). Returns 0 for n < 2.
  double sample_variance() const noexcept;

  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

  /// Sum of squared deviations from the mean (Welford's M2). Together with
  /// count/mean/min/max this is the accumulator's full state; exposed so
  /// serving-layer snapshots can persist and restore it losslessly.
  double sum_squared_deviations() const noexcept { return m2_; }

  /// Reconstructs an accumulator from persisted parts (inverse of the
  /// accessors above). Throws ConfigError on inconsistent parts (negative
  /// m2, n == 0 with non-zero moments, min > max).
  static RunningStats from_parts(std::size_t n, double mean, double m2,
                                 double min, double max);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> xs) noexcept;

/// Population variance; 0 for fewer than two elements.
double variance(std::span<const double> xs) noexcept;

/// Population standard deviation.
double stddev(std::span<const double> xs) noexcept;

/// Linearly interpolated quantile, q in [0, 1]. Copies and sorts; 0 for an
/// empty span.
double quantile(std::span<const double> xs, double q);

/// Mean squared error between equally sized prediction/truth series.
/// Throws DataError on size mismatch or empty input.
double mse(std::span<const double> predicted, std::span<const double> actual);

/// Root of mse().
double rmse(std::span<const double> predicted, std::span<const double> actual);

/// Mean absolute error.
double mae(std::span<const double> predicted, std::span<const double> actual);

/// Maximum absolute error.
double max_abs_error(std::span<const double> predicted,
                     std::span<const double> actual);

/// Coefficient of determination R^2 = 1 - SS_res/SS_tot. Returns 0 when the
/// actual series has zero variance. Throws DataError on size mismatch or
/// empty input.
double r_squared(std::span<const double> predicted,
                 std::span<const double> actual);

/// Pearson correlation coefficient; 0 when either series is constant.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Element-wise absolute residuals |predicted - actual|.
std::vector<double> abs_residuals(std::span<const double> predicted,
                                  std::span<const double> actual);

}  // namespace vmtherm
