// vmtherm/util/matrix.h
//
// Small dense linear algebra: just enough for the closed-form ridge
// regression baseline and a few tests. Row-major storage, no expression
// templates — clarity over peak performance (hot paths in this library are
// the SMO solver and the simulator, not this class).

#pragma once

#include <cstddef>
#include <vector>

namespace vmtherm {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix initialized to `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Identity matrix of size n.
  static Matrix identity(std::size_t n);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  /// Matrix product; throws ConfigError on dimension mismatch.
  Matrix multiply(const Matrix& other) const;

  /// Transpose.
  Matrix transposed() const;

  /// this + lambda * I; throws ConfigError unless square.
  Matrix add_scaled_identity(double lambda) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solves A x = b for symmetric positive-definite A via Cholesky
/// factorization. Throws NumericError if A is not SPD (within tolerance)
/// and ConfigError on dimension mismatch.
std::vector<double> cholesky_solve(const Matrix& a,
                                   const std::vector<double>& b);

/// Solves A x = b via Gaussian elimination with partial pivoting (general
/// square A). Throws NumericError on singular A.
std::vector<double> gaussian_solve(Matrix a, std::vector<double> b);

}  // namespace vmtherm
