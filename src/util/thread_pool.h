// vmtherm/util/thread_pool.h
//
// A small fixed-size worker pool with a FIFO work queue, used to
// parallelize embarrassingly-parallel ML work (grid-search points, CV
// folds) without giving up the repo's determinism guarantees: callers
// write results into pre-sized slots keyed by task index and reduce in a
// fixed order, so the outputs are bitwise identical to a serial run no
// matter how the work is scheduled.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace vmtherm::util {

/// Fixed-size thread pool.
///
/// `thread_count` is the number of owned worker threads; a pool of 0
/// workers is valid and degenerates to inline execution on the calling
/// thread (both `submit` and `parallel_for`). `parallel_for` additionally
/// runs loop bodies on the calling thread, so a pool with W workers
/// executes a loop on up to W + 1 threads.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t thread_count);

  /// Joins all workers after draining the queue (every submitted task
  /// runs before destruction completes).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Enqueues one task; tasks submitted from a single thread start in
  /// submission order (FIFO queue). The returned future receives the
  /// task's exception, if it throws. On a pool with no workers the task
  /// runs inline before submit returns.
  std::future<void> submit(std::function<void()> task);

  /// Runs body(i) for every i in [begin, end), distributed over the
  /// workers plus the calling thread, and blocks until all iterations
  /// finish. Every index runs exactly once even when some iterations
  /// throw; after the loop, the exception from the lowest-indexed failed
  /// iteration is rethrown (so error reporting is deterministic). The
  /// body must be safe to call concurrently from multiple threads.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

  /// Maps a user-facing thread-count request to an actual count:
  /// 0 means "all hardware threads" (at least 1), anything else is
  /// returned unchanged.
  static std::size_t resolve_thread_count(std::size_t requested) noexcept;

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  bool stopping_ = false;
};

}  // namespace vmtherm::util
