#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace vmtherm {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n_total = na + nb;
  mean_ += delta * nb / n_total;
  m2_ += other.m2_ + delta * delta * na * nb / n_total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double RunningStats::sample_variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

RunningStats RunningStats::from_parts(std::size_t n, double mean, double m2,
                                      double min, double max) {
  RunningStats stats;
  if (n == 0) {
    detail::require(mean == 0.0 && m2 == 0.0 && min == 0.0 && max == 0.0,
                    "empty RunningStats must have all-zero moments");
    return stats;
  }
  detail::require(m2 >= 0.0, "RunningStats m2 must be non-negative");
  detail::require(min <= max, "RunningStats min must not exceed max");
  stats.n_ = n;
  stats.mean_ = mean;
  stats.m2_ = m2;
  stats.min_ = min;
  stats.max_ = max;
  return stats;
}

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) noexcept {
  return std::sqrt(variance(xs));
}

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

namespace {

void check_pair(std::span<const double> a, std::span<const double> b) {
  detail::require_data(a.size() == b.size(),
                       "metric inputs must have equal length");
  detail::require_data(!a.empty(), "metric inputs must be non-empty");
}

}  // namespace

double mse(std::span<const double> predicted, std::span<const double> actual) {
  check_pair(predicted, actual);
  double acc = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    const double e = predicted[i] - actual[i];
    acc += e * e;
  }
  return acc / static_cast<double>(predicted.size());
}

double rmse(std::span<const double> predicted, std::span<const double> actual) {
  return std::sqrt(mse(predicted, actual));
}

double mae(std::span<const double> predicted, std::span<const double> actual) {
  check_pair(predicted, actual);
  double acc = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    acc += std::abs(predicted[i] - actual[i]);
  }
  return acc / static_cast<double>(predicted.size());
}

double max_abs_error(std::span<const double> predicted,
                     std::span<const double> actual) {
  check_pair(predicted, actual);
  double worst = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    worst = std::max(worst, std::abs(predicted[i] - actual[i]));
  }
  return worst;
}

double r_squared(std::span<const double> predicted,
                 std::span<const double> actual) {
  check_pair(predicted, actual);
  const double m = mean(actual);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    const double r = actual[i] - predicted[i];
    const double d = actual[i] - m;
    ss_res += r * r;
    ss_tot += d * d;
  }
  if (ss_tot == 0.0) return 0.0;
  return 1.0 - ss_res / ss_tot;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  check_pair(xs, ys);
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> abs_residuals(std::span<const double> predicted,
                                  std::span<const double> actual) {
  check_pair(predicted, actual);
  std::vector<double> out(predicted.size());
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    out[i] = std::abs(predicted[i] - actual[i]);
  }
  return out;
}

}  // namespace vmtherm
