#include "util/rng.h"

#include <cmath>
#include <numbers>

namespace vmtherm {

namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
  // All-zero state is invalid for xoshiro; SplitMix64 cannot produce four
  // consecutive zeros, so no further check is needed.
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 random bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

int Rng::uniform_int(int lo, int hi) noexcept {
  if (hi <= lo) return lo;
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // Modulo bias is < 2^-50 for the spans used in this library.
  return lo + static_cast<int>(next_u64() % span);
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double rate) noexcept {
  double u = 1.0 - uniform();  // (0, 1]
  return -std::log(u) / rate;
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (weights.empty() || total <= 0.0) return 0;
  double x = uniform() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += (weights[i] > 0.0 ? weights[i] : 0.0);
    if (x < acc) return i;
  }
  return weights.size() - 1;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) noexcept {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    std::size_t j = next_u64() % i;
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

Rng Rng::fork(std::uint64_t stream_id) noexcept {
  // Mix the parent state with the stream id through SplitMix64 to derive an
  // independent child seed. Advances the parent so repeated forks with the
  // same id still differ.
  std::uint64_t base = next_u64();
  SplitMix64 sm(base ^ (0x9e3779b97f4a7c15ULL * (stream_id + 1)));
  return Rng(sm.next());
}

}  // namespace vmtherm
