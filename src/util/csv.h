// vmtherm/util/csv.h
//
// Minimal CSV reading/writing for datasets, traces and bench output.
// Supports quoted fields with embedded commas/quotes/newlines (RFC 4180
// subset) — enough to persist experiment records and temperature traces.

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace vmtherm {

/// One parsed CSV document: a header row plus data rows.
struct CsvDocument {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a named column; throws IoError if absent.
  std::size_t column(const std::string& name) const;
};

/// Writes rows as CSV, quoting fields when needed.
class CsvWriter {
 public:
  /// Binds to an output stream; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  void write_row(const std::vector<std::string>& cells);

 private:
  std::ostream& os_;
};

/// Parses a full CSV document from a stream. The first row becomes the
/// header. Throws IoError on ragged rows (row width != header width) or
/// unterminated quotes.
CsvDocument read_csv(std::istream& is);

/// Parses a CSV file from disk; throws IoError if the file cannot be opened.
CsvDocument read_csv_file(const std::string& path);

/// Serializes one CSV field, quoting if it contains comma/quote/newline.
std::string csv_escape(const std::string& field);

}  // namespace vmtherm
