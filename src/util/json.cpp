#include "util/json.h"

#include <ostream>
#include <sstream>

namespace vmtherm::util {

void write_json_escaped(std::ostream& os, std::string_view s) {
  static const char* kHex = "0123456789abcdef";
  for (const char c : s) {
    const auto byte = static_cast<unsigned char>(c);
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\b':
        os << "\\b";
        break;
      case '\f':
        os << "\\f";
        break;
      default:
        if (byte < 0x20) {
          os << "\\u00" << kHex[byte >> 4] << kHex[byte & 0xF];
        } else {
          os << c;
        }
        break;
    }
  }
}

std::string json_escape(std::string_view s) {
  std::ostringstream os;
  write_json_escaped(os, s);
  return os.str();
}

}  // namespace vmtherm::util
