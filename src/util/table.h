// vmtherm/util/table.h
//
// Fixed-width ASCII table printer used by the bench binaries to emit the
// rows/series corresponding to the paper's tables and figures.

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace vmtherm {

/// Column-aligned text table. Cells are strings; helpers format numbers.
///
///   Table t({"case", "measured", "predicted", "sq.err"});
///   t.add_row({"1", Table::num(54.2, 2), Table::num(54.8, 2), ...});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers
  /// (throws ConfigError otherwise).
  void add_row(std::vector<std::string> cells);

  std::size_t row_count() const noexcept { return rows_.size(); }

  /// Renders the table with a header separator. `indent` spaces prefix each
  /// line.
  void print(std::ostream& os, int indent = 0) const;

  /// Renders to a string (used by tests).
  std::string to_string(int indent = 0) const;

  /// Formats a double with fixed precision.
  static std::string num(double v, int precision = 3);

  /// Formats an integer.
  static std::string num(long long v);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a "## <title>" section heading followed by a blank line — gives
/// bench output a uniform, grep-able structure.
void print_section(std::ostream& os, const std::string& title);

/// Prints a "key: value" line with aligned keys (used for bench metadata).
void print_kv(std::ostream& os, const std::string& key, const std::string& value);

}  // namespace vmtherm
