#include "util/matrix.h"

#include <cmath>

#include "util/error.h"

namespace vmtherm {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::multiply(const Matrix& other) const {
  detail::require(cols_ == other.rows_, "matrix multiply dimension mismatch");
  Matrix out(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      for (std::size_t j = 0; j < other.cols_; ++j) {
        out(i, j) += a * other(k, j);
      }
    }
  }
  return out;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  }
  return out;
}

Matrix Matrix::add_scaled_identity(double lambda) const {
  detail::require(rows_ == cols_, "add_scaled_identity requires square matrix");
  Matrix out = *this;
  for (std::size_t i = 0; i < rows_; ++i) out(i, i) += lambda;
  return out;
}

std::vector<double> cholesky_solve(const Matrix& a,
                                   const std::vector<double>& b) {
  detail::require(a.rows() == a.cols(), "cholesky_solve requires square matrix");
  detail::require(a.rows() == b.size(), "cholesky_solve rhs size mismatch");
  const std::size_t n = a.rows();

  // Factor A = L L^T.
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (diag <= 0.0 || !std::isfinite(diag)) {
      throw NumericError("cholesky: matrix not positive definite");
    }
    l(j, j) = std::sqrt(diag);
    for (std::size_t i = j + 1; i < n; ++i) {
      double sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      l(i, j) = sum / l(j, j);
    }
  }

  // Forward substitution L y = b.
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= l(i, k) * y[k];
    y[i] = sum / l(i, i);
  }

  // Back substitution L^T x = y.
  std::vector<double> x(n);
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double sum = y[i];
    for (std::size_t k = i + 1; k < n; ++k) sum -= l(k, i) * x[k];
    x[i] = sum / l(i, i);
  }
  return x;
}

std::vector<double> gaussian_solve(Matrix a, std::vector<double> b) {
  detail::require(a.rows() == a.cols(), "gaussian_solve requires square matrix");
  detail::require(a.rows() == b.size(), "gaussian_solve rhs size mismatch");
  const std::size_t n = a.rows();

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    double best = std::abs(a(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double v = std::abs(a(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-12) throw NumericError("gaussian_solve: singular matrix");
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(col, c), a(pivot, c));
      std::swap(b[col], b[pivot]);
    }
    // Eliminate below.
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a(r, col) / a(col, col);
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a(r, c) -= factor * a(col, c);
      b[r] -= factor * b[col];
    }
  }

  std::vector<double> x(n);
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double sum = b[i];
    for (std::size_t c = i + 1; c < n; ++c) sum -= a(i, c) * x[c];
    x[i] = sum / a(i, i);
  }
  return x;
}

}  // namespace vmtherm
