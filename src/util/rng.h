// vmtherm/util/rng.h
//
// Deterministic pseudo-random number generation.
//
// Every stochastic component in vmtherm (workload generators, sensor noise,
// scenario samplers, train/test shuffles) draws from an explicitly seeded
// Rng so that experiments, tests and benches are reproducible bit-for-bit
// across runs and platforms. The engine is xoshiro256**, seeded through
// SplitMix64 as its authors recommend; we do not use std::mt19937 +
// std::*_distribution because their outputs are not portable across
// standard-library implementations.

#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace vmtherm {

/// SplitMix64 — used to expand a single 64-bit seed into engine state.
/// Public because tests and substream derivation use it directly.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Deterministic, portable random number generator (xoshiro256**).
///
/// Thread-compatibility: an Rng is cheap to copy; give each logical
/// stochastic process its own substream via `fork()` instead of sharing one
/// instance.
class Rng {
 public:
  /// Seeds the engine from a single 64-bit value via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept;

  /// Uniform 64-bit integer.
  std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi). Requires lo <= hi (unchecked; equal bounds
  /// return lo).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in the inclusive range [lo, hi]. Requires lo <= hi.
  int uniform_int(int lo, int hi) noexcept;

  /// Standard normal deviate (Box-Muller, cached second value).
  double normal() noexcept;

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  /// Exponential deviate with the given rate (> 0).
  double exponential(double rate) noexcept;

  /// Picks an index in [0, weights.size()) with probability proportional to
  /// weights[i]. Zero-total or empty weights fall back to index 0.
  std::size_t weighted_index(const std::vector<double>& weights) noexcept;

  /// Fisher-Yates shuffle of indices [0, n).
  std::vector<std::size_t> permutation(std::size_t n) noexcept;

  /// Derives an independent substream keyed by `stream_id`. Substreams with
  /// distinct ids are statistically independent of the parent and of each
  /// other.
  Rng fork(std::uint64_t stream_id) noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace vmtherm
