// vmtherm/util/error.h
//
// Exception hierarchy for the vmtherm library.
//
// Convention (per C++ Core Guidelines E.2/E.14): constructors establish
// invariants and throw on violation; hot inner loops (simulation stepping,
// SMO iterations, prediction) are noexcept once inputs are validated at the
// API boundary.

#pragma once

#include <stdexcept>
#include <string>

namespace vmtherm {

/// Base class for all errors raised by the vmtherm library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A configuration object (spec, experiment description, hyper-parameter
/// grid, ...) violates its documented constraints.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error("config error: " + what) {}
};

/// A dataset/trace is malformed for the requested operation (empty training
/// set, inconsistent feature dimensions, trace shorter than t_break, ...).
class DataError : public Error {
 public:
  explicit DataError(const std::string& what) : Error("data error: " + what) {}
};

/// Numerical failure (singular matrix, non-converging solver past its
/// iteration budget, non-finite value where one is required).
class NumericError : public Error {
 public:
  explicit NumericError(const std::string& what) : Error("numeric error: " + what) {}
};

/// Failure to parse or serialize an external representation (CSV rows,
/// model files).
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error("io error: " + what) {}
};

namespace detail {

/// Throws ConfigError with `msg` unless `cond` holds. Used by constructors
/// to establish invariants.
inline void require(bool cond, const std::string& msg) {
  if (!cond) throw ConfigError(msg);
}

/// Literal-message overload: defers string construction to the throw site,
/// so checks in hot loops cost a branch instead of a std::string temporary
/// (which heap-allocates for messages past the SSO limit).
inline void require(bool cond, const char* msg) {
  if (!cond) throw ConfigError(msg);
}

/// Throws DataError with `msg` unless `cond` holds.
inline void require_data(bool cond, const std::string& msg) {
  if (!cond) throw DataError(msg);
}

/// Literal-message overload (see require(bool, const char*)).
inline void require_data(bool cond, const char* msg) {
  if (!cond) throw DataError(msg);
}

}  // namespace detail

}  // namespace vmtherm
