// vmtherm/util/hash.h
//
// Stable, seed-free 64-bit hashing (FNV-1a). Used where a hash must be
// identical across processes and library versions: shard placement of
// fleet hosts (serve/FleetEngine) and order-insensitive result digests in
// replay reports. std::hash gives no such guarantee.

#pragma once

#include <cstdint>
#include <string_view>

namespace vmtherm::util {

inline constexpr std::uint64_t kFnv1a64Offset = 1469598103934665603ull;
inline constexpr std::uint64_t kFnv1a64Prime = 1099511628211ull;

/// FNV-1a over a byte string.
constexpr std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  std::uint64_t h = kFnv1a64Offset;
  for (const char c : bytes) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= kFnv1a64Prime;
  }
  return h;
}

/// Folds one 64-bit word into a running FNV-1a digest (byte by byte,
/// little-endian), so digests of numeric streams are platform-stable.
constexpr std::uint64_t fnv1a64_mix(std::uint64_t h, std::uint64_t word) noexcept {
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (word >> (8 * byte)) & 0xffull;
    h *= kFnv1a64Prime;
  }
  return h;
}

}  // namespace vmtherm::util
