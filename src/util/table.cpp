#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.h"

namespace vmtherm {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  detail::require(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  detail::require(cells.size() == headers_.size(),
                  "table row width does not match header width");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os, int indent) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const std::string pad(static_cast<std::size_t>(indent), ' ');
  auto emit_row = [&](const std::vector<std::string>& cells) {
    os << pad;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << cells[c];
      if (c + 1 < cells.size()) os << "  ";
    }
    os << '\n';
  };

  emit_row(headers_);
  os << pad;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    os << std::string(widths[c], '-');
    if (c + 1 < widths.size()) os << "  ";
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
}

std::string Table::to_string(int indent) const {
  std::ostringstream oss;
  print(oss, indent);
  return oss.str();
}

std::string Table::num(double v, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << v;
  return oss.str();
}

std::string Table::num(long long v) { return std::to_string(v); }

void print_section(std::ostream& os, const std::string& title) {
  os << "\n## " << title << "\n\n";
}

void print_kv(std::ostream& os, const std::string& key, const std::string& value) {
  os << "  " << std::left << std::setw(28) << (key + ":") << value << '\n';
}

}  // namespace vmtherm
