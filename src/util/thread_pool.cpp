#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace vmtherm::util {

ThreadPool::ThreadPool(std::size_t thread_count) {
  workers_.reserve(thread_count);
  for (std::size_t i = 0; i < thread_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  if (workers_.empty()) {
    packaged();  // no workers: degenerate inline execution
    return future;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(packaged));
  }
  work_available_.notify_one();
  return future;
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body) {
  if (begin >= end) return;
  const std::size_t count = end - begin;
  if (workers_.empty() || count == 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }

  struct LoopState {
    std::atomic<std::size_t> next;
    std::atomic<std::size_t> helpers_done{0};
    std::atomic<bool> failed{false};
    std::mutex error_mutex;
    std::size_t first_error_index;
    std::exception_ptr first_error;
  };
  const auto state = std::make_shared<LoopState>();
  state->next.store(begin, std::memory_order_relaxed);
  state->first_error_index = end;

  // `body` is captured by reference: parallel_for only returns after every
  // helper task has fully executed, so the reference cannot dangle.
  const auto run = [state, end, &body]() noexcept {
    for (;;) {
      const std::size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= end) return;
      try {
        body(i);
      } catch (...) {
        state->failed.store(true, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(state->error_mutex);
        if (i < state->first_error_index) {
          state->first_error_index = i;
          state->first_error = std::current_exception();
        }
      }
    }
  };

  const std::size_t helpers = std::min(workers_.size(), count - 1);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t h = 0; h < helpers; ++h) {
      queue_.emplace_back([this, state, run] {
        run();
        {
          // Publish under the queue mutex so the waiting thread cannot
          // check its predicate and sleep between the increment and the
          // notify (lost wakeup).
          std::lock_guard<std::mutex> notify_lock(mutex_);
          state->helpers_done.fetch_add(1, std::memory_order_release);
        }
        work_available_.notify_all();
      });
    }
  }
  work_available_.notify_all();

  run();  // the calling thread participates

  // Work-stealing wait: while our helpers haven't all finished, execute
  // whatever is queued (our helpers, or tasks of other loops — possibly
  // nested ones) instead of blocking. This is what makes nested
  // parallel_for deadlock-free: a thread waiting on a loop never idles
  // while runnable work exists.
  while (state->helpers_done.load(std::memory_order_acquire) < helpers) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [&] {
        return !queue_.empty() ||
               state->helpers_done.load(std::memory_order_acquire) >= helpers;
      });
      if (state->helpers_done.load(std::memory_order_acquire) >= helpers) {
        break;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }

  if (state->failed.load(std::memory_order_relaxed)) {
    std::rethrow_exception(state->first_error);
  }
}

std::size_t ThreadPool::resolve_thread_count(std::size_t requested) noexcept {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace vmtherm::util
