#include "util/csv.h"

#include <fstream>
#include <ostream>
#include <sstream>

#include "util/error.h"

namespace vmtherm {

std::size_t CsvDocument::column(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  throw IoError("csv column not found: " + name);
}

std::string csv_escape(const std::string& field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) os_ << ',';
    os_ << csv_escape(cells[i]);
  }
  os_ << '\n';
}

namespace {

/// State-machine CSV parser over the whole stream contents.
std::vector<std::vector<std::string>> parse_rows(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool row_has_content = false;

  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
  };
  auto end_row = [&] {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
    row_has_content = false;
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char ch = text[i];
    if (in_quotes) {
      if (ch == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += ch;
      }
      continue;
    }
    switch (ch) {
      case '"':
        in_quotes = true;
        row_has_content = true;
        break;
      case ',':
        end_field();
        row_has_content = true;
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        if (row_has_content || !field.empty() || !row.empty()) end_row();
        break;
      default:
        field += ch;
        row_has_content = true;
        break;
    }
  }
  if (in_quotes) throw IoError("unterminated quoted csv field");
  if (row_has_content || !field.empty() || !row.empty()) end_row();
  return rows;
}

}  // namespace

CsvDocument read_csv(std::istream& is) {
  std::ostringstream buffer;
  buffer << is.rdbuf();
  auto rows = parse_rows(buffer.str());
  CsvDocument doc;
  if (rows.empty()) return doc;
  doc.header = std::move(rows.front());
  for (std::size_t r = 1; r < rows.size(); ++r) {
    if (rows[r].size() != doc.header.size()) {
      throw IoError("ragged csv row " + std::to_string(r) + ": expected " +
                    std::to_string(doc.header.size()) + " fields, got " +
                    std::to_string(rows[r].size()));
    }
    doc.rows.push_back(std::move(rows[r]));
  }
  return doc;
}

CsvDocument read_csv_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open csv file: " + path);
  return read_csv(in);
}

}  // namespace vmtherm
