#include "core/drift.h"

#include <algorithm>

namespace vmtherm::core {

CusumDetector::CusumDetector(double slack_c, double threshold_c)
    : slack_(slack_c), threshold_(threshold_c) {
  detail::require(slack_c >= 0.0, "cusum slack must be >= 0");
  detail::require(threshold_c > 0.0, "cusum threshold must be positive");
}

bool CusumDetector::observe(double residual_c) {
  ++count_;
  positive_ = std::max(0.0, positive_ + residual_c - slack_);
  negative_ = std::max(0.0, negative_ - residual_c - slack_);
  const bool fired = positive_ > threshold_ || negative_ > threshold_;
  drifted_ = drifted_ || fired;
  return fired;
}

void CusumDetector::restore(double positive_sum, double negative_sum,
                            bool drifted, std::size_t observation_count) {
  detail::require(positive_sum >= 0.0 && negative_sum >= 0.0,
                  "cusum accumulators must be non-negative");
  positive_ = positive_sum;
  negative_ = negative_sum;
  drifted_ = drifted;
  count_ = observation_count;
}

void CusumDetector::reset() noexcept {
  positive_ = 0.0;
  negative_ = 0.0;
  drifted_ = false;
  count_ = 0;
}

}  // namespace vmtherm::core
