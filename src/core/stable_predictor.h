// vmtherm/core/stable_predictor.h
//
// Stable CPU temperature prediction — the paper's first stage. Wraps the
// full LIBSVM-style pipeline: feature encoding (Eq. 2), min-max scaling,
// grid-searched (easygrid-equivalent) RBF ε-SVR with k-fold CV, and
// prediction for proposed placements.

#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/record.h"
#include "ml/grid.h"
#include "ml/scaler.h"
#include "ml/svr.h"

namespace vmtherm::core {

/// Training configuration. Defaults reproduce the paper's setup: RBF
/// kernel, grid parameter search, 10-fold validation.
struct StableTrainOptions {
  ml::GridSpec grid;  ///< grid + folds (default: 10-fold, RBF log2 grid)
  /// Skip the grid search and train directly with these parameters
  /// (used by ablations and tests that need speed).
  std::optional<ml::SvrParams> fixed_params;
};

/// Training diagnostics.
struct StableTrainReport {
  ml::SvrParams chosen_params;
  double cv_mse = 0.0;       ///< CV MSE of the winning grid point (0 if fixed)
  std::size_t grid_points_evaluated = 0;
  ml::SvrTrainReport final_fit;
  std::size_t training_records = 0;
};

/// Reusable buffers for the allocation-free predict overloads. One scratch
/// per caller (it is NOT thread-safe); buffers grow once and are reused.
struct StablePredictScratch {
  std::vector<double> features;  ///< raw Eq. (2) encoding
  std::vector<double> scaled;    ///< min-max scaled copy fed to the SVR
};

/// A trained stable-temperature predictor.
class StableTemperaturePredictor {
 public:
  /// Trains from labelled records. Throws DataError when `records` is
  /// empty or smaller than the fold count (with grid search enabled).
  static StableTemperaturePredictor train(const std::vector<Record>& records,
                                          const StableTrainOptions& options = {},
                                          StableTrainReport* report = nullptr);

  /// Reconstructs from persisted parts (see save/load below).
  StableTemperaturePredictor(ml::MinMaxScaler scaler, ml::SvrModel model);

  /// Predicts ψ_stable for the record's inputs (its label is ignored).
  double predict(const Record& record) const;

  /// Convenience: predicts for explicit experiment inputs.
  double predict(const sim::ServerSpec& server,
                 const std::vector<sim::VmConfig>& vms, int active_fans,
                 double env_temp_c) const;

  /// Allocation-free variant for hot paths (serve): encodes and scales
  /// into `scratch`, leaving the raw encoding in scratch.features —
  /// callers key ψ_stable memoization on exactly those bits.
  double predict(const Record& record, StablePredictScratch& scratch) const;

  /// Predicts from an already-encoded raw (unscaled) feature vector,
  /// scaling into `scaled`. Bitwise-identical to predict() on the record
  /// that produced `features`.
  double predict_from_features(std::span<const double> features,
                               std::vector<double>& scaled) const;

  /// Persists scaler + SVR into one directory-less two-section text file.
  void save(const std::string& path) const;
  static StableTemperaturePredictor load(const std::string& path);

  const ml::MinMaxScaler& scaler() const noexcept { return scaler_; }
  const ml::SvrModel& model() const noexcept { return model_; }

 private:
  ml::MinMaxScaler scaler_;
  ml::SvrModel model_;
};

/// Converts records to an ml::Dataset (feature encoding + labels).
ml::Dataset records_to_dataset(const std::vector<Record>& records);

}  // namespace vmtherm::core
