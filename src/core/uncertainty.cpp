#include "core/uncertainty.h"

#include <algorithm>
#include <cmath>

namespace vmtherm::core {

ConformalPredictor::ConformalPredictor(
    const StableTemperaturePredictor& predictor,
    const std::vector<Record>& calibration)
    : predictor_(predictor) {
  detail::require_data(!calibration.empty(),
                       "conformal calibration set is empty");
  abs_residuals_.reserve(calibration.size());
  for (const auto& r : calibration) {
    abs_residuals_.push_back(std::abs(predictor_.predict(r) - r.stable_temp_c));
  }
  std::sort(abs_residuals_.begin(), abs_residuals_.end());
}

double ConformalPredictor::quantile_c(double alpha) const {
  detail::require(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
  const auto n = abs_residuals_.size();
  // Split-conformal rank: ceil((n + 1) * (1 - alpha)), clamped to n.
  const auto rank = static_cast<std::size_t>(
      std::ceil(static_cast<double>(n + 1) * (1.0 - alpha)));
  const std::size_t index = std::min(n, std::max<std::size_t>(1, rank)) - 1;
  return abs_residuals_[index];
}

PredictionInterval ConformalPredictor::interval(const Record& record,
                                                double alpha) const {
  const double q = quantile_c(alpha);
  PredictionInterval out;
  out.prediction_c = predictor_.predict(record);
  out.lower_c = out.prediction_c - q;
  out.upper_c = out.prediction_c + q;
  return out;
}

}  // namespace vmtherm::core
