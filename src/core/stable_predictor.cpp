#include "core/stable_predictor.h"

#include <fstream>

#include "ml/model_io.h"

namespace vmtherm::core {

ml::Dataset records_to_dataset(const std::vector<Record>& records) {
  ml::Dataset data;
  for (const auto& r : records) {
    data.add(ml::Sample{to_feature_vector(r), r.stable_temp_c});
  }
  return data;
}

StableTemperaturePredictor StableTemperaturePredictor::train(
    const std::vector<Record>& records, const StableTrainOptions& options,
    StableTrainReport* report) {
  detail::require_data(!records.empty(), "no training records");

  const ml::Dataset raw = records_to_dataset(records);
  const ml::MinMaxScaler scaler = ml::MinMaxScaler::fit(raw);
  const ml::Dataset scaled = scaler.transform(raw);

  StableTrainReport local;
  local.training_records = records.size();

  ml::SvrParams params;
  if (options.fixed_params.has_value()) {
    params = *options.fixed_params;
  } else {
    const ml::GridSearchResult grid = ml::grid_search_svr(scaled, options.grid);
    params = grid.best_params;
    local.cv_mse = grid.best_cv_mse;
    local.grid_points_evaluated = grid.evaluated.size();
  }
  local.chosen_params = params;

  const ml::SvrModel model = ml::SvrModel::train(scaled, params,
                                                 &local.final_fit);
  if (report != nullptr) *report = local;
  return StableTemperaturePredictor(scaler, model);
}

StableTemperaturePredictor::StableTemperaturePredictor(ml::MinMaxScaler scaler,
                                                       ml::SvrModel model)
    : scaler_(std::move(scaler)), model_(std::move(model)) {}

double StableTemperaturePredictor::predict(const Record& record) const {
  const std::vector<double> x = scaler_.transform(to_feature_vector(record));
  return model_.predict(x);
}

double StableTemperaturePredictor::predict(const Record& record,
                                           StablePredictScratch& scratch) const {
  encode_features(record, scratch.features);
  return predict_from_features(scratch.features, scratch.scaled);
}

double StableTemperaturePredictor::predict_from_features(
    std::span<const double> features, std::vector<double>& scaled) const {
  scaler_.transform_into(features, scaled);
  return model_.predict(scaled);
}

double StableTemperaturePredictor::predict(
    const sim::ServerSpec& server, const std::vector<sim::VmConfig>& vms,
    int active_fans, double env_temp_c) const {
  return predict(make_record_inputs(server, vms, active_fans, env_temp_c));
}

void StableTemperaturePredictor::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw IoError("cannot create predictor file: " + path);
  ml::save_scaler(out, scaler_);
  ml::save_svr(out, model_);
}

StableTemperaturePredictor StableTemperaturePredictor::load(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open predictor file: " + path);
  ml::MinMaxScaler scaler = ml::load_scaler(in);
  ml::SvrModel model = ml::load_svr(in);
  return StableTemperaturePredictor(std::move(scaler), std::move(model));
}

}  // namespace vmtherm::core
