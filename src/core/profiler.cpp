#include "core/profiler.h"

#include <cmath>

#include "util/stats.h"

namespace vmtherm::core {

double stable_temperature(const sim::TemperatureTrace& trace,
                          double t_break_s) {
  detail::require_data(!trace.empty(), "stable_temperature on empty trace");
  detail::require_data(trace.duration_s() > t_break_s,
                       "trace does not extend past t_break");
  return trace.mean_sensed_between(t_break_s, trace.duration_s());
}

StabilityReport profile_trace(const sim::TemperatureTrace& trace,
                              const ProfilerOptions& options) {
  StabilityReport report;
  report.psi_stable = stable_temperature(trace, options.t_break_s);

  RunningStats window;
  for (const auto& p : trace.points()) {
    if (p.time_s >= options.t_break_s) window.add(p.cpu_temp_sensed_c);
  }
  report.window_stddev_c = window.stddev();
  report.stable = report.window_stddev_c < options.stability_stddev_c;

  // Settling time: last instant the sensed temperature is farther than 1 °C
  // from psi_stable, i.e. afterwards it stays within the band.
  double last_outside = -1.0;
  for (const auto& p : trace.points()) {
    if (std::abs(p.cpu_temp_sensed_c - report.psi_stable) > 1.0) {
      last_outside = p.time_s;
    }
  }
  if (last_outside < trace.duration_s()) {
    report.settling_time_s = last_outside < 0.0 ? 0.0 : last_outside;
  }
  return report;
}

Record profile_experiment(const sim::ExperimentConfig& config,
                          double t_break_s) {
  const sim::ExperimentResult result = sim::run_experiment(config);
  Record record = make_record_inputs(config.server, config.vms,
                                     config.active_fans,
                                     config.environment.base_c);
  record.stable_temp_c = stable_temperature(result.trace, t_break_s);
  return record;
}

std::vector<Record> profile_experiments(
    const std::vector<sim::ExperimentConfig>& configs, double t_break_s) {
  std::vector<Record> records;
  records.reserve(configs.size());
  for (const auto& config : configs) {
    records.push_back(profile_experiment(config, t_break_s));
  }
  return records;
}

}  // namespace vmtherm::core
