#include "core/evaluator.h"

#include <algorithm>
#include <cmath>

#include "util/stats.h"

namespace vmtherm::core {

std::vector<Record> generate_corpus(const sim::ScenarioRanges& ranges,
                                    std::size_t n, std::uint64_t seed,
                                    double t_break_s) {
  sim::ScenarioSampler sampler(ranges, seed);
  return profile_experiments(sampler.sample(n), t_break_s);
}

StableEvalResult evaluate_stable(const StableTemperaturePredictor& predictor,
                                 const std::vector<Record>& test_records) {
  detail::require_data(!test_records.empty(), "no test records");
  StableEvalResult result;
  std::vector<double> predicted;
  std::vector<double> measured;
  for (std::size_t i = 0; i < test_records.size(); ++i) {
    const Record& r = test_records[i];
    StableCasePoint point;
    point.case_index = i;
    point.vm_count = static_cast<int>(r.vm.vm_count);
    point.measured_c = r.stable_temp_c;
    point.predicted_c = predictor.predict(r);
    result.cases.push_back(point);
    predicted.push_back(point.predicted_c);
    measured.push_back(point.measured_c);
  }
  result.mse = mse(predicted, measured);
  result.mae = mae(predicted, measured);
  result.max_abs_error = max_abs_error(predicted, measured);
  return result;
}

namespace {

/// Mutable view of the machine's logical configuration during a scenario
/// (what the stable predictor is asked about).
struct LogicalState {
  std::vector<sim::VmConfig> vms;
  int fans = 4;
};

}  // namespace

DynamicEvalResult evaluate_dynamic(
    const StableTemperaturePredictor& stable_predictor,
    const DynamicScenario& scenario, const DynamicEvalOptions& options) {
  const sim::ExperimentConfig& base = scenario.base;
  base.validate();
  options.dynamic.validate();
  detail::require(options.gap_s > 0.0, "gap must be positive");
  for (std::size_t i = 1; i < scenario.events.size(); ++i) {
    detail::require(scenario.events[i - 1].time_s <= scenario.events[i].time_s,
                    "scenario events must be sorted by time");
  }

  // --- assemble the machine-under-test (mirrors sim::run_experiment) ---
  Rng rng(base.seed);
  sim::EnvironmentSpec env_spec = base.environment;
  env_spec.duration_s = base.duration_s;
  sim::Environment env(env_spec, rng.fork(101));

  sim::MachineOptions machine_options;
  machine_options.sensor = base.sensor;
  machine_options.active_fans = base.active_fans;
  machine_options.initial_temp_c = base.initial_temp_c;
  sim::PhysicalMachine machine(base.server, machine_options, rng.fork(102));

  Rng vm_rng = rng.fork(103);
  LogicalState logical;
  logical.fans = base.active_fans;
  for (std::size_t i = 0; i < base.vms.size(); ++i) {
    machine.add_vm(
        sim::Vm("vm-" + std::to_string(i), base.vms[i], vm_rng.fork(i)));
    logical.vms.push_back(base.vms[i]);
  }
  // Names for VMs added by events: dyn-0, dyn-1, ... Track configs by id so
  // kRemoveVm can update the logical view.
  std::size_t dyn_counter = 0;
  std::vector<std::pair<std::string, sim::VmConfig>> id_to_config;
  for (std::size_t i = 0; i < base.vms.size(); ++i) {
    id_to_config.emplace_back("vm-" + std::to_string(i), base.vms[i]);
  }

  // --- online predictor ---
  DynamicTemperaturePredictor predictor(options.dynamic);
  const double phi0 = machine.thermal().die_temp_c();
  predictor.begin(0.0, phi0,
                  stable_predictor.predict(base.server, logical.vms,
                                           logical.fans,
                                           base.environment.base_c));

  DynamicEvalResult result;
  result.trace = sim::TemperatureTrace(base.sample_interval_s);
  sim::TracePoint p0;
  p0.time_s = 0.0;
  p0.cpu_temp_true_c = phi0;
  p0.cpu_temp_sensed_c = phi0;
  p0.env_temp_c = env.current_c();
  p0.vm_count = static_cast<int>(machine.vm_count());
  result.trace.push_back(p0);
  result.model_trajectory.push_back(predictor.predict_at(0.0));

  struct PendingPrediction {
    double target_time_s;
    double value;
  };
  std::vector<PendingPrediction> pending;
  pending.push_back({options.gap_s, predictor.predict_at(options.gap_s)});

  // --- run ---
  const double dt = base.sample_interval_s;
  const auto steps = static_cast<std::size_t>(
      std::llround(base.duration_s / base.sample_interval_s));
  std::size_t next_event = 0;

  for (std::size_t i = 1; i <= steps; ++i) {
    const double t = static_cast<double>(i) * dt;

    // Apply events due strictly before/at this step boundary.
    while (next_event < scenario.events.size() &&
           scenario.events[next_event].time_s <= t) {
      const ScenarioEvent& ev = scenario.events[next_event];
      switch (ev.kind) {
        case ScenarioEvent::Kind::kAddVm: {
          const std::string id = "dyn-" + std::to_string(dyn_counter++);
          machine.add_vm(sim::Vm(id, ev.vm, vm_rng.fork(1000 + dyn_counter)));
          logical.vms.push_back(ev.vm);
          id_to_config.emplace_back(id, ev.vm);
          break;
        }
        case ScenarioEvent::Kind::kRemoveVm: {
          machine.remove_vm(ev.vm_id);
          for (auto it = id_to_config.begin(); it != id_to_config.end(); ++it) {
            if (it->first == ev.vm_id) {
              // Erase the matching config from the logical view (first
              // equivalent entry).
              for (auto vit = logical.vms.begin(); vit != logical.vms.end();
                   ++vit) {
                if (vit->vcpus == it->second.vcpus &&
                    vit->memory_gb == it->second.memory_gb &&
                    vit->task == it->second.task) {
                  logical.vms.erase(vit);
                  break;
                }
              }
              id_to_config.erase(it);
              break;
            }
          }
          break;
        }
        case ScenarioEvent::Kind::kSetFans:
          machine.set_active_fans(ev.fans);
          logical.fans = std::clamp(ev.fans, 1, base.server.fan_slots);
          break;
      }
      // Re-aim the curve: new stable target from the updated configuration,
      // starting at the current measured operating point.
      const double phi_now = machine.last_sample().time_s > 0.0
                                 ? machine.last_sample().cpu_temp_sensed_c
                                 : phi0;
      predictor.retarget(
          ev.time_s <= t ? machine.time_s() : t, phi_now,
          stable_predictor.predict(base.server, logical.vms, logical.fans,
                                   base.environment.base_c));
      ++next_event;
    }

    const double ambient = env.step(dt);
    const sim::MachineSample s = machine.step(dt, ambient);

    sim::TracePoint p;
    p.time_s = s.time_s;
    p.cpu_temp_true_c = s.cpu_temp_true_c;
    p.cpu_temp_sensed_c = s.cpu_temp_sensed_c;
    p.env_temp_c = ambient;
    p.power_watts = s.power_watts;
    p.utilization = s.utilization;
    p.vm_count = s.vm_count;
    result.trace.push_back(p);

    // Observe, record the model's own trajectory, then predict ahead.
    predictor.observe(t, s.cpu_temp_sensed_c);
    result.model_trajectory.push_back(predictor.predict_at(t));
    pending.push_back({t + options.gap_s, predictor.predict_at(t + options.gap_s)});
  }

  // --- match predictions to later measurements ---
  std::vector<double> predicted;
  std::vector<double> measured;
  for (const auto& pp : pending) {
    if (pp.target_time_s > result.trace.duration_s()) continue;
    DynamicEvalPoint point;
    point.target_time_s = pp.target_time_s;
    point.predicted_c = pp.value;
    point.measured_c = result.trace.sensed_at(pp.target_time_s);
    result.points.push_back(point);
    predicted.push_back(point.predicted_c);
    measured.push_back(point.measured_c);
  }
  detail::require_data(!predicted.empty(),
                       "dynamic scenario produced no matched predictions");
  result.mse = mse(predicted, measured);
  result.mae = mae(predicted, measured);
  return result;
}

std::vector<std::vector<double>> sweep_gap_update(
    const StableTemperaturePredictor& stable_predictor,
    const std::vector<DynamicScenario>& scenarios,
    const std::vector<double>& gaps, const std::vector<double>& updates,
    const DynamicOptions& base_options) {
  detail::require(!scenarios.empty(), "sweep needs at least one scenario");
  detail::require(!gaps.empty() && !updates.empty(),
                  "sweep needs gap and update values");

  std::vector<std::vector<double>> grid(
      gaps.size(), std::vector<double>(updates.size(), 0.0));
  for (std::size_t gi = 0; gi < gaps.size(); ++gi) {
    for (std::size_t ui = 0; ui < updates.size(); ++ui) {
      double total_mse = 0.0;
      for (const auto& scenario : scenarios) {
        DynamicEvalOptions opts;
        opts.gap_s = gaps[gi];
        opts.dynamic = base_options;
        opts.dynamic.update_interval_s = updates[ui];
        total_mse += evaluate_dynamic(stable_predictor, scenario, opts).mse;
      }
      grid[gi][ui] = total_mse / static_cast<double>(scenarios.size());
    }
  }
  return grid;
}

DynamicScenario make_random_dynamic_scenario(const sim::ScenarioRanges& ranges,
                                             int fans, std::uint64_t seed) {
  sim::ScenarioSampler sampler(ranges, seed);
  DynamicScenario scenario;
  scenario.base = sampler.next();
  scenario.base.active_fans =
      std::clamp(fans, 1, scenario.base.server.fan_slots);

  Rng rng(seed ^ 0xD1DAC71CULL);

  // One VM added in the first half, one initial VM removed in the second
  // half — the "dynamic scenario" the paper motivates (placement + churn).
  double used_memory = 0.0;
  for (const auto& vm : scenario.base.vms) used_memory += vm.memory_gb;
  const double free_memory = scenario.base.server.memory_gb - used_memory;

  if (free_memory >= 2.0) {
    ScenarioEvent add;
    add.kind = ScenarioEvent::Kind::kAddVm;
    add.time_s = rng.uniform(0.25, 0.45) * scenario.base.duration_s;
    add.vm.vcpus = 2 * rng.uniform_int(1, 2);
    add.vm.memory_gb = free_memory >= 4.0 ? 4.0 : 2.0;
    const auto types = sim::all_task_types();
    add.vm.task = types[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(types.size()) - 1))];
    scenario.events.push_back(add);
  }

  if (!scenario.base.vms.empty()) {
    ScenarioEvent remove;
    remove.kind = ScenarioEvent::Kind::kRemoveVm;
    remove.time_s = rng.uniform(0.6, 0.8) * scenario.base.duration_s;
    remove.vm_id =
        "vm-" + std::to_string(rng.uniform_int(
                    0, static_cast<int>(scenario.base.vms.size()) - 1));
    scenario.events.push_back(remove);
  }
  return scenario;
}

}  // namespace vmtherm::core
