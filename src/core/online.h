// vmtherm/core/online.h
//
// Online training loop: the deployment glue the paper describes in prose
// ("a model was trained from the collected data and deployed in real
// environment; then the model received data collected online"). The
// OnlineTrainer accumulates profiling records as they arrive, evaluates the
// live model prequentially (predict-then-learn) on each new record, feeds
// the residual stream to a CUSUM drift detector, and retrains when enough
// new data arrived — or immediately when drift says the model went stale.

#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/drift.h"
#include "core/stable_predictor.h"
#include "util/stats.h"

namespace vmtherm::core {

/// Policy knobs of the online loop.
struct OnlineTrainerOptions {
  /// Records required before the first model is fit.
  std::size_t min_records_for_training = 50;
  /// Retrain after this many records arrive on top of the last fit.
  std::size_t retrain_batch = 50;
  /// Retrain when the drift detector fires. The buffer is first trimmed to
  /// the most recent `drift_keep_recent` records (the new regime; older
  /// data would poison the refit) and the refit is deferred until the
  /// buffer regrows to min_records_for_training.
  bool retrain_on_drift = true;
  std::size_t drift_keep_recent = 10;
  /// CUSUM tuning on residuals (deg C).
  double drift_slack_c = 0.5;
  double drift_threshold_c = 8.0;
  /// How models are fit (grid vs fixed parameters).
  StableTrainOptions train_options;
  /// Cap on retained records (0 = unbounded). When exceeded, the oldest
  /// records are dropped — a sliding window over a changing datacenter.
  std::size_t max_records = 0;

  void validate() const {
    detail::require(min_records_for_training >= 2,
                    "online trainer needs >= 2 records for the first fit");
    detail::require(retrain_batch >= 1, "retrain_batch must be >= 1");
    detail::require(drift_slack_c >= 0.0, "drift slack >= 0");
    detail::require(drift_threshold_c > 0.0, "drift threshold > 0");
  }
};

/// Reason the most recent retrain happened.
enum class RetrainReason { kNone, kInitial, kBatch, kDrift };

/// The online model manager.
class OnlineTrainer {
 public:
  explicit OnlineTrainer(OnlineTrainerOptions options = {});

  /// Feeds one labelled record. If a model is live, it is first scored on
  /// the record (prequential residual -> drift detector), then the record
  /// joins the training buffer, then retraining triggers fire.
  /// Returns true when this record caused a retrain.
  bool add_record(const Record& record);

  bool has_model() const noexcept { return model_.has_value(); }

  /// The live model; throws ConfigError before the first fit.
  const StableTemperaturePredictor& model() const;

  /// 0 before the first fit, then increments on every retrain.
  std::size_t model_version() const noexcept { return version_; }

  RetrainReason last_retrain_reason() const noexcept { return reason_; }

  std::size_t records_seen() const noexcept { return records_seen_; }
  std::size_t buffered_records() const noexcept { return buffer_.size(); }

  /// Prequential error of the *current* model: squared error of its
  /// predictions on records that arrived after it was fit. Resets on
  /// retrain. Returns 0 when nothing was scored yet.
  double prequential_mse() const noexcept;
  std::size_t prequential_count() const noexcept {
    return prequential_.count();
  }

  /// Whether the drift detector has fired since the last retrain (only
  /// observable when retrain_on_drift is false, since otherwise a retrain
  /// clears it immediately).
  bool drift_pending() const noexcept { return drift_.drifted(); }

  /// Whether a drift-triggered refit is waiting for enough new-regime
  /// records.
  bool drift_refit_deferred() const noexcept { return drift_trimmed_; }

 private:
  void retrain(RetrainReason reason);

  OnlineTrainerOptions options_;
  std::vector<Record> buffer_;
  std::optional<StableTemperaturePredictor> model_;
  CusumDetector drift_;
  RunningStats prequential_;  ///< squared errors of the live model
  std::size_t records_seen_ = 0;
  std::size_t new_since_fit_ = 0;
  std::size_t version_ = 0;
  RetrainReason reason_ = RetrainReason::kNone;
  bool drift_trimmed_ = false;
};

}  // namespace vmtherm::core
