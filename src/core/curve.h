// vmtherm/core/curve.h
//
// The paper's pre-defined temperature curve ψ*(t), Eq. (3): a logarithmic
// rise from the pre-experiment temperature φ(0) to the predicted stable
// temperature ψ_stable over the settling period t_break, flat afterwards:
//
//   ψ*(t) = φ(0) + (ψ_stable − φ(0)) · ln(δ·t + 1) / ln(δ·t_break + 1),
//                                                     0 <= t <= t_break
//   ψ*(t) = ψ_stable,                                 t > t_break
//
// δ > 0 is a curvature parameter: larger δ front-loads the rise. The curve
// is intentionally coarse (the true physics is exponential) — the dynamic
// predictor's run-time calibration compensates.

#pragma once

#include "util/error.h"

namespace vmtherm::core {

/// Default curvature of the pre-defined curve.
inline constexpr double kDefaultCurvature = 0.05;

/// Immutable ψ*(t) instance.
class PredefinedCurve {
 public:
  /// phi0: temperature before the experiment starts (φ(0)).
  /// psi_stable: predicted stable temperature the curve converges to.
  /// t_break: settling horizon in seconds (> 0).
  /// curvature: δ (> 0).
  PredefinedCurve(double phi0, double psi_stable, double t_break_s,
                  double curvature = kDefaultCurvature);

  /// ψ*(t). Negative t is clamped to 0.
  double value(double t) const noexcept;

  double phi0() const noexcept { return phi0_; }
  double psi_stable() const noexcept { return psi_stable_; }
  double t_break_s() const noexcept { return t_break_s_; }
  double curvature() const noexcept { return curvature_; }

 private:
  double phi0_;
  double psi_stable_;
  double t_break_s_;
  double curvature_;
  double log_denominator_;  ///< ln(δ t_break + 1), precomputed
};

}  // namespace vmtherm::core
