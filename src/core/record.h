// vmtherm/core/record.h
//
// The Eq. (2) data record: the feature vector the paper feeds its SVM and
// the stable-temperature label.
//
//   data = { input, output }
//   input  = { θ_cpu, θ_memory, θ_fan, ξ_VM, δ_env }
//   output = ψ_stable
//
// ξ_VM ("VM configurations and deployed tasks") must be a fixed-length
// encoding usable regardless of how many VMs are resident; we use counts,
// resource sums, aggregate utilization demand and the task-type mix.

#pragma once

#include <array>
#include <string>
#include <vector>

#include "sim/experiment.h"
#include "sim/machine.h"

namespace vmtherm::core {

/// Fixed-length encoding of the resident VM set (the ξ_VM input).
struct VmSetFeatures {
  double vm_count = 0.0;
  double total_vcpus = 0.0;
  double total_memory_gb = 0.0;
  /// Actively touched memory Σ mem_i * activity(task_i) — derivable from
  /// the VM configs + deployed tasks (drives the memory power term).
  double active_memory_gb = 0.0;
  /// Mean per-vCPU long-run utilization demand of the deployed tasks.
  double mean_util_demand = 0.0;
  /// Max per-vCPU long-run utilization demand across VMs.
  double max_util_demand = 0.0;
  /// Demanded cores: Σ vcpus_i * demand_i (before capacity capping).
  double demanded_cores = 0.0;
  /// Fraction of VMs running each task type, in all_task_types() order.
  std::array<double, sim::kTaskTypeCount> task_share{};
};

/// One training/test record in the paper's Eq. (2) format.
struct Record {
  // --- input ---
  double cpu_capacity_ghz = 0.0;  ///< θ_cpu (cores x GHz)
  double physical_cores = 0.0;    ///< θ_cpu companion: core count
  double memory_gb = 0.0;         ///< θ_memory
  double fan_count = 0.0;         ///< θ_fan
  VmSetFeatures vm;               ///< ξ_VM
  double env_temp_c = 0.0;        ///< δ_env
  // --- output ---
  double stable_temp_c = 0.0;     ///< ψ_stable (label; 0 when unlabeled)
};

/// Number of model features a Record encodes to: 5 server/env scalars +
/// 7 VM-set scalars + 1 derived saturation feature + the task-share vector.
inline constexpr std::size_t kRecordFeatureCount = 13 + sim::kTaskTypeCount;

/// Feature-vector encoding (order matches feature_names()).
std::vector<double> to_feature_vector(const Record& record);

/// Allocation-free variant for hot paths: encodes into `out`, reusing its
/// capacity (`out` is cleared first). Same order as to_feature_vector().
void encode_features(const Record& record, std::vector<double>& out);

/// Human-readable names, aligned with to_feature_vector().
const std::vector<std::string>& feature_names();

/// Builds ξ_VM features from a list of VM configurations.
VmSetFeatures make_vm_set_features(const std::vector<sim::VmConfig>& vms);

/// Builds the unlabeled input part of a record from experiment inputs:
/// server spec, VM set, fan count and (nominal) environment temperature.
Record make_record_inputs(const sim::ServerSpec& server,
                          const std::vector<sim::VmConfig>& vms,
                          int active_fans, double env_temp_c);

}  // namespace vmtherm::core
