// vmtherm/core/dynamic_predictor.h
//
// Dynamic CPU temperature prediction — the paper's second stage
// (Eqs. 4-8). The predictor tracks the pre-defined curve ψ*(t) seeded by a
// stable-temperature prediction, and corrects it online with a calibration
// term γ learned from observed errors:
//
//   prediction:   ψ(t + Δ_gap) = ψ*(t + Δ_gap) + γ            (Eq. 8)
//   observation:  dif = φ(t) − ψ(t) = φ(t) − (ψ*(t) + γ)      (Eq. 5)
//   update:       γ ← γ + λ · dif                              (Eq. 6)
//
// γ starts at 0 and is updated once per Δ_update seconds of observations
// (paper: λ = 0.8, Δ_update = 15 s, Δ_gap = 60 s in the running example).
// Setting calibration_enabled = false freezes γ at 0, which is the paper's
// "without calibration" baseline in Fig. 1(b).
//
// Cloud dynamics (VM creation/removal/migration) change the stable target
// at run time; retarget() restarts the curve from the current operating
// point toward a new ψ_stable while keeping the learned γ.

#pragma once

#include "core/curve.h"
#include "core/profiler.h"

namespace vmtherm::core {

/// Dynamic prediction configuration.
struct DynamicOptions {
  double learning_rate = 0.8;       ///< λ
  double update_interval_s = 15.0;  ///< Δ_update
  double t_break_s = kDefaultTbreakS;
  double curvature = kDefaultCurvature;  ///< δ of ψ*(t)
  bool calibration_enabled = true;
  /// Whether retarget() keeps the learned γ. The new curve starts at the
  /// *measured* operating point, so the correct instantaneous offset is 0;
  /// the default therefore resets γ. Set true when γ is known to track a
  /// persistent sensor bias rather than model error for the previous target.
  bool retain_calibration_on_retarget = false;

  void validate() const {
    detail::require(learning_rate >= 0.0 && learning_rate <= 1.0,
                    "learning rate must be in [0, 1]");
    detail::require(update_interval_s > 0.0,
                    "update interval must be positive");
    detail::require(t_break_s > 0.0, "t_break must be positive");
    detail::require(curvature > 0.0, "curvature must be positive");
  }
};

/// The full mutable state of a DynamicTemperaturePredictor, as plain data.
/// Exported/restored by the serving layer's snapshot machinery so a
/// restarted service resumes with its calibration intact instead of cold.
struct DynamicPredictorState {
  bool started = false;
  double t0 = 0.0;
  double gamma = 0.0;
  double last_update_s = 0.0;
  double last_observed_s = 0.0;
  double phi0 = 0.0;
  double psi_stable = 0.0;
};

/// Online dynamic temperature predictor for one machine.
class DynamicTemperaturePredictor {
 public:
  explicit DynamicTemperaturePredictor(const DynamicOptions& options = {});

  /// Starts (or restarts) prediction at absolute time t0 with observed
  /// temperature phi0 and predicted stable temperature psi_stable.
  /// Resets γ to 0 (Eq. 4: "at the very beginning, γ = 0").
  void begin(double t0, double phi0, double psi_stable);

  /// Whether begin() has been called.
  bool started() const noexcept { return started_; }

  /// Feeds a measurement φ(t). Performs a calibration update when at least
  /// Δ_update seconds have elapsed since the previous update (Eqs. 5-6).
  /// Measurements must arrive in non-decreasing time order; throws
  /// ConfigError otherwise or if begin() was not called.
  void observe(double t, double measured);

  /// ψ(t) = ψ*(t) + γ at an absolute time t >= t0 (Eq. 8). Throws
  /// ConfigError before begin().
  double predict_at(double t) const;

  /// Prediction Δ_gap seconds after the latest observation (or after t0 if
  /// nothing was observed yet).
  double predict_ahead(double gap_s) const;

  /// Re-aims the curve at a new stable temperature from the current
  /// operating point (VM churn / migration / fan change). Resets γ to 0
  /// unless options.retain_calibration_on_retarget is set (see there).
  void retarget(double t, double phi_now, double new_psi_stable);

  double calibration() const noexcept { return gamma_; }
  const DynamicOptions& options() const noexcept { return options_; }

  /// Plain-data copy of the mutable state (snapshot support).
  DynamicPredictorState export_state() const noexcept;

  /// Restores a state produced by export_state() — bitwise-exact: the curve
  /// is rebuilt from the same doubles, so subsequent predictions equal the
  /// original predictor's. Options keep their constructed values. Throws
  /// ConfigError on inconsistent states (observation times before t0).
  void restore_state(const DynamicPredictorState& state);

  /// The current underlying curve (throws ConfigError before begin()).
  const PredefinedCurve& curve() const;

 private:
  void require_started() const;

  DynamicOptions options_;
  bool started_ = false;
  double t0_ = 0.0;               ///< absolute time the curve starts
  double gamma_ = 0.0;            ///< calibration γ
  double last_update_s_ = 0.0;    ///< absolute time of last γ update
  double last_observed_s_ = 0.0;  ///< absolute time of latest observation
  // Storage for the (re-startable) curve; optional-like via started_ flag.
  double phi0_ = 0.0;
  double psi_stable_ = 0.0;
  // Rebuilt on begin()/retarget(); cheap value type.
  PredefinedCurve curve_{0.0, 0.0, 1.0};
};

}  // namespace vmtherm::core
