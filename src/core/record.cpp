#include "core/record.h"

#include <algorithm>

namespace vmtherm::core {

VmSetFeatures make_vm_set_features(const std::vector<sim::VmConfig>& vms) {
  VmSetFeatures f;
  f.vm_count = static_cast<double>(vms.size());
  if (vms.empty()) return f;

  double demand_sum = 0.0;
  for (const auto& vm : vms) {
    f.total_vcpus += static_cast<double>(vm.vcpus);
    f.total_memory_gb += vm.memory_gb;
    f.active_memory_gb += vm.memory_gb * sim::task_type_memory_activity(vm.task);
    const double demand = sim::task_type_mean_utilization(vm.task);
    demand_sum += demand;
    f.max_util_demand = std::max(f.max_util_demand, demand);
    f.demanded_cores += demand * static_cast<double>(vm.vcpus);

    const auto types = sim::all_task_types();
    for (std::size_t t = 0; t < types.size(); ++t) {
      if (types[t] == vm.task) f.task_share[t] += 1.0;
    }
  }
  f.mean_util_demand = demand_sum / static_cast<double>(vms.size());
  for (double& share : f.task_share) {
    share /= static_cast<double>(vms.size());
  }
  return f;
}

Record make_record_inputs(const sim::ServerSpec& server,
                          const std::vector<sim::VmConfig>& vms,
                          int active_fans, double env_temp_c) {
  Record r;
  r.cpu_capacity_ghz = server.cpu_capacity_ghz();
  r.physical_cores = static_cast<double>(server.physical_cores);
  r.memory_gb = server.memory_gb;
  r.fan_count = static_cast<double>(active_fans);
  r.vm = make_vm_set_features(vms);
  r.env_temp_c = env_temp_c;
  return r;
}

std::vector<double> to_feature_vector(const Record& record) {
  std::vector<double> x;
  encode_features(record, x);
  return x;
}

void encode_features(const Record& record, std::vector<double>& x) {
  x.clear();
  x.reserve(kRecordFeatureCount);
  x.push_back(record.cpu_capacity_ghz);
  x.push_back(record.physical_cores);
  x.push_back(record.memory_gb);
  x.push_back(record.fan_count);
  x.push_back(record.env_temp_c);
  x.push_back(record.vm.vm_count);
  x.push_back(record.vm.total_vcpus);
  x.push_back(record.vm.total_memory_gb);
  x.push_back(record.vm.active_memory_gb);
  x.push_back(record.vm.mean_util_demand);
  x.push_back(record.vm.max_util_demand);
  x.push_back(record.vm.demanded_cores);
  // Derived saturation feature: the expected aggregate CPU utilization,
  // min(1, demanded cores / physical cores) -- the dominant nonlinearity of
  // the power model, made explicit so the kernel does not have to learn it.
  const double expected_util =
      record.physical_cores > 0.0
          ? std::min(1.0, record.vm.demanded_cores / record.physical_cores)
          : 0.0;
  x.push_back(expected_util);
  for (double share : record.vm.task_share) x.push_back(share);
}

const std::vector<std::string>& feature_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> n = {
        "cpu_capacity_ghz", "physical_cores",   "memory_gb",
        "fan_count",        "env_temp_c",       "vm_count",
        "total_vcpus",      "total_memory_gb",  "active_memory_gb",
        "mean_util_demand", "max_util_demand",  "demanded_cores",
        "expected_utilization",
    };
    for (sim::TaskType t : sim::all_task_types()) {
      n.push_back("share_" + sim::task_type_name(t));
    }
    return n;
  }();
  return names;
}

}  // namespace vmtherm::core
