// vmtherm/core/uncertainty.h
//
// Prediction intervals for the stable-temperature model via split conformal
// prediction: calibrate on held-out residuals, then report
// [prediction - q, prediction + q] where q is the ceil((n+1)(1-alpha))/n
// empirical quantile of the absolute calibration residuals. The interval
// covers the true value with probability >= 1 - alpha (exchangeability),
// regardless of the SVR's own error distribution — which is what a
// thermal-safety consumer (setpoint planner, hotspot alarm) actually needs.

#pragma once

#include <vector>

#include "core/stable_predictor.h"

namespace vmtherm::core {

/// A symmetric prediction interval.
struct PredictionInterval {
  double prediction_c = 0.0;
  double lower_c = 0.0;
  double upper_c = 0.0;

  double half_width_c() const noexcept { return prediction_c - lower_c; }
  bool contains(double value) const noexcept {
    return value >= lower_c && value <= upper_c;
  }
};

/// Split-conformal wrapper around a trained StableTemperaturePredictor.
class ConformalPredictor {
 public:
  /// Calibrates on labelled records the model was NOT trained on.
  /// Throws DataError when `calibration` is empty.
  ConformalPredictor(const StableTemperaturePredictor& predictor,
                     const std::vector<Record>& calibration);

  /// Interval at miscoverage level alpha in (0, 1); e.g. alpha = 0.1 for
  /// 90% coverage. Throws ConfigError for alpha outside (0, 1).
  PredictionInterval interval(const Record& record, double alpha) const;

  /// The calibration quantile used for a given alpha (half-width of every
  /// interval at that level).
  double quantile_c(double alpha) const;

  std::size_t calibration_size() const noexcept {
    return abs_residuals_.size();
  }

 private:
  const StableTemperaturePredictor& predictor_;
  std::vector<double> abs_residuals_;  ///< sorted ascending
};

}  // namespace vmtherm::core
