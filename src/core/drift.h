// vmtherm/core/drift.h
//
// Residual drift detection for deployed models. A trained
// stable-temperature model goes stale when the datacenter changes under it
// (hardware swap, CRAC re-commissioning, new workload families). This
// module watches the stream of prediction residuals with a two-sided CUSUM
// and raises a retrain signal when their mean shifts — closing the loop
// between the paper's offline training and online serving.

#pragma once

#include <cstddef>

#include "util/error.h"

namespace vmtherm::core {

/// Two-sided CUSUM over a residual stream.
///
/// With slack k and threshold h (both in the residual's units, i.e. deg C):
/// shifts of the residual mean beyond +-k accumulate; an accumulated excess
/// of h fires. For Gaussian noise of stddev s, a common choice is
/// k = s / 2 and h = 4..5 s.
class CusumDetector {
 public:
  CusumDetector(double slack_c, double threshold_c);

  /// Feeds one residual (predicted - measured). Returns true when drift is
  /// detected by this observation (and latches; see drifted()).
  bool observe(double residual_c);

  bool drifted() const noexcept { return drifted_; }

  /// Positive/negative accumulators (diagnostics).
  double positive_sum() const noexcept { return positive_; }
  double negative_sum() const noexcept { return negative_; }
  std::size_t observation_count() const noexcept { return count_; }

  /// Clears state (after retraining).
  void reset() noexcept;

  /// Restores accumulator state exported via the accessors above (serving
  /// snapshots). Throws ConfigError on negative accumulators.
  void restore(double positive_sum, double negative_sum, bool drifted,
               std::size_t observation_count);

 private:
  double slack_;
  double threshold_;
  double positive_ = 0.0;
  double negative_ = 0.0;
  bool drifted_ = false;
  std::size_t count_ = 0;
};

}  // namespace vmtherm::core
