// vmtherm/core/profiler.h
//
// Temperature profiling: Eq. (1) of the paper. The stable CPU temperature
// ψ_stable of an experiment is the mean measured temperature over
// [t_break, t_exp], with t_break = 600 s deduced from the paper's
// experiments. Also provides stability diagnostics used to sanity-check
// that t_break is adequate for a given trace.

#pragma once

#include "core/record.h"
#include "sim/trace.h"

namespace vmtherm::core {

/// Default settling time before temperatures count as stable (paper: 600 s).
inline constexpr double kDefaultTbreakS = 600.0;

/// Profiling configuration.
struct ProfilerOptions {
  double t_break_s = kDefaultTbreakS;
  /// A trace window is considered stable when the sensed-temperature
  /// standard deviation inside it is below this (diagnostics only).
  double stability_stddev_c = 0.8;
};

/// ψ_stable per Eq. (1): mean *sensed* temperature over [t_break, t_exp].
/// Throws DataError when the trace does not extend past t_break.
double stable_temperature(const sim::TemperatureTrace& trace,
                          double t_break_s = kDefaultTbreakS);

/// Stability diagnostics for a trace.
struct StabilityReport {
  double psi_stable = 0.0;     ///< Eq. (1) value
  double window_stddev_c = 0.0; ///< sensed-temperature stddev past t_break
  bool stable = false;         ///< stddev below the configured threshold
  /// First time the sensed temperature enters and stays within 1 °C of
  /// ψ_stable (-1 when it never does).
  double settling_time_s = -1.0;
};

/// Computes ψ_stable + diagnostics.
StabilityReport profile_trace(const sim::TemperatureTrace& trace,
                              const ProfilerOptions& options = {});

/// Runs the experiment and converts it to a labelled Record: inputs from
/// the configuration (nominal environment = the schedule's base value),
/// label from Eq. (1) on the produced trace.
Record profile_experiment(const sim::ExperimentConfig& config,
                          double t_break_s = kDefaultTbreakS);

/// Convenience for corpus building: runs every configuration and returns
/// the labelled records.
std::vector<Record> profile_experiments(
    const std::vector<sim::ExperimentConfig>& configs,
    double t_break_s = kDefaultTbreakS);

}  // namespace vmtherm::core
