#include "core/tbreak.h"

#include <algorithm>
#include <cmath>

#include "util/stats.h"

namespace vmtherm::core {

SettlingAnalysis analyze_settling(const sim::TemperatureTrace& trace,
                                  double band_c) {
  detail::require_data(trace.size() >= 10,
                       "settling analysis needs at least 10 trace points");
  detail::require(band_c > 0.0, "settling band must be positive");

  SettlingAnalysis result;

  // Smooth with a centered moving average (~30 s window) so sensor noise
  // and quantization do not masquerade as instability.
  const auto half_window = static_cast<std::size_t>(
      std::max(1.0, 15.0 / std::max(1e-9, trace.interval_s())));
  std::vector<double> smoothed(trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const std::size_t lo = i >= half_window ? i - half_window : 0;
    const std::size_t hi = std::min(trace.size() - 1, i + half_window);
    double sum = 0.0;
    for (std::size_t k = lo; k <= hi; ++k) sum += trace[k].cpu_temp_sensed_c;
    smoothed[i] = sum / static_cast<double>(hi - lo + 1);
  }

  // Final value: mean over the last 10% of the smoothed trace.
  const std::size_t final_start = trace.size() - trace.size() / 10;
  RunningStats final_window;
  for (std::size_t i = final_start; i < trace.size(); ++i) {
    final_window.add(smoothed[i]);
  }
  result.final_value_c = final_window.mean();

  // Stationary envelope: the spread the trace exhibits over its last 25%.
  // A steadily oscillating workload (diurnal web server) "settles" into a
  // cycle, not a constant — the band must cover that cycle.
  const std::size_t tail_start = trace.size() - trace.size() / 4;
  double tail_spread = 0.0;
  for (std::size_t i = tail_start; i < trace.size(); ++i) {
    tail_spread = std::max(tail_spread,
                           std::abs(smoothed[i] - result.final_value_c));
  }
  result.effective_band_c = std::max(band_c, 1.1 * tail_spread);

  // Tail trend (least-squares slope of the smoothed tail): a trace whose
  // tail still drifts by more than band_c over a tail-length has not
  // reached a stationary regime at all.
  {
    double sxy = 0.0;
    double sxx = 0.0;
    const std::size_t n_tail = trace.size() - tail_start;
    double mean_t = 0.0;
    double mean_y = 0.0;
    for (std::size_t i = tail_start; i < trace.size(); ++i) {
      mean_t += trace[i].time_s;
      mean_y += smoothed[i];
    }
    mean_t /= static_cast<double>(n_tail);
    mean_y /= static_cast<double>(n_tail);
    for (std::size_t i = tail_start; i < trace.size(); ++i) {
      const double dt = trace[i].time_s - mean_t;
      sxy += dt * (smoothed[i] - mean_y);
      sxx += dt * dt;
    }
    result.tail_trend_c_per_s = sxx > 0.0 ? sxy / sxx : 0.0;
  }
  const double tail_span_s = trace.duration_s() / 4.0;
  if (std::abs(result.tail_trend_c_per_s) * tail_span_s > band_c) {
    result.settling_time_s = trace.duration_s();
    result.settled = false;
    return result;
  }

  // Last instant outside the effective band; settling is just after it.
  double last_outside = -1.0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (std::abs(smoothed[i] - result.final_value_c) >
        result.effective_band_c) {
      last_outside = trace[i].time_s;
    }
  }
  if (last_outside < 0.0) {
    result.settling_time_s = 0.0;
    result.settled = true;
  } else if (last_outside >= trace.duration_s() - 1e-9) {
    result.settling_time_s = trace.duration_s();
    result.settled = false;
  } else {
    result.settling_time_s = last_outside;
    result.settled = true;
  }
  return result;
}

TbreakStudy study_t_break(const std::vector<sim::ExperimentConfig>& configs,
                          double band_c, double quantile_q) {
  detail::require(!configs.empty(), "t_break study needs experiments");
  detail::require(quantile_q >= 0.0 && quantile_q <= 1.0,
                  "quantile must be in [0, 1]");

  TbreakStudy study;
  for (const auto& config : configs) {
    const auto result = sim::run_experiment(config);
    const auto analysis = analyze_settling(result.trace, band_c);
    study.settling_times_s.push_back(analysis.settling_time_s);
    if (!analysis.settled) ++study.unsettled_count;
  }
  std::sort(study.settling_times_s.begin(), study.settling_times_s.end());
  study.recommended_t_break_s = quantile(study.settling_times_s, quantile_q);
  return study;
}

}  // namespace vmtherm::core
