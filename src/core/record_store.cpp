#include "core/record_store.h"

#include <fstream>
#include <ostream>
#include <stdexcept>

#include "util/csv.h"
#include "util/table.h"

namespace vmtherm::core {

void write_records_csv(std::ostream& os, const std::vector<Record>& records) {
  CsvWriter writer(os);
  std::vector<std::string> header = feature_names();
  header.push_back("stable_temp_c");
  writer.write_row(header);
  for (const auto& r : records) {
    std::vector<std::string> row;
    for (double v : to_feature_vector(r)) row.push_back(Table::num(v, 10));
    row.push_back(Table::num(r.stable_temp_c, 10));
    writer.write_row(row);
  }
}

namespace {

double parse_cell(const std::string& cell, const std::string& column) {
  try {
    std::size_t consumed = 0;
    const double v = std::stod(cell, &consumed);
    if (consumed != cell.size()) {
      throw std::invalid_argument("trailing characters");
    }
    return v;
  } catch (const std::exception&) {
    throw IoError("records csv: bad number '" + cell + "' in column " +
                  column);
  }
}

}  // namespace

std::vector<Record> read_records_csv(std::istream& is) {
  const CsvDocument doc = read_csv(is);

  auto col = [&](const std::string& name) { return doc.column(name); };
  const std::size_t c_capacity = col("cpu_capacity_ghz");
  const std::size_t c_cores = col("physical_cores");
  const std::size_t c_memory = col("memory_gb");
  const std::size_t c_fans = col("fan_count");
  const std::size_t c_env = col("env_temp_c");
  const std::size_t c_vm_count = col("vm_count");
  const std::size_t c_vcpus = col("total_vcpus");
  const std::size_t c_total_mem = col("total_memory_gb");
  const std::size_t c_active_mem = col("active_memory_gb");
  const std::size_t c_mean_util = col("mean_util_demand");
  const std::size_t c_max_util = col("max_util_demand");
  const std::size_t c_demanded = col("demanded_cores");
  const std::size_t c_label = col("stable_temp_c");
  std::vector<std::size_t> c_share;
  for (sim::TaskType t : sim::all_task_types()) {
    c_share.push_back(col("share_" + sim::task_type_name(t)));
  }

  std::vector<Record> records;
  records.reserve(doc.rows.size());
  for (const auto& row : doc.rows) {
    auto cell = [&](std::size_t c) {
      return parse_cell(row[c], doc.header[c]);
    };
    Record r;
    r.cpu_capacity_ghz = cell(c_capacity);
    r.physical_cores = cell(c_cores);
    r.memory_gb = cell(c_memory);
    r.fan_count = cell(c_fans);
    r.env_temp_c = cell(c_env);
    r.vm.vm_count = cell(c_vm_count);
    r.vm.total_vcpus = cell(c_vcpus);
    r.vm.total_memory_gb = cell(c_total_mem);
    r.vm.active_memory_gb = cell(c_active_mem);
    r.vm.mean_util_demand = cell(c_mean_util);
    r.vm.max_util_demand = cell(c_max_util);
    r.vm.demanded_cores = cell(c_demanded);
    for (std::size_t t = 0; t < c_share.size(); ++t) {
      r.vm.task_share[t] = cell(c_share[t]);
    }
    r.stable_temp_c = cell(c_label);
    records.push_back(r);
  }
  return records;
}

void write_records_csv_file(const std::string& path,
                            const std::vector<Record>& records) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot create records csv: " + path);
  write_records_csv(out, records);
}

std::vector<Record> read_records_csv_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open records csv: " + path);
  return read_records_csv(in);
}

}  // namespace vmtherm::core
