#include "core/dynamic_predictor.h"

namespace vmtherm::core {

DynamicTemperaturePredictor::DynamicTemperaturePredictor(
    const DynamicOptions& options)
    : options_(options) {
  options_.validate();
}

void DynamicTemperaturePredictor::begin(double t0, double phi0,
                                        double psi_stable) {
  started_ = true;
  t0_ = t0;
  phi0_ = phi0;
  psi_stable_ = psi_stable;
  gamma_ = 0.0;
  last_update_s_ = t0;
  last_observed_s_ = t0;
  curve_ = PredefinedCurve(phi0, psi_stable, options_.t_break_s,
                           options_.curvature);
}

void DynamicTemperaturePredictor::require_started() const {
  detail::require(started_, "dynamic predictor used before begin()");
}

void DynamicTemperaturePredictor::observe(double t, double measured) {
  require_started();
  detail::require(t >= last_observed_s_,
                  "observations must arrive in time order");
  last_observed_s_ = t;

  if (!options_.calibration_enabled) return;
  if (t - last_update_s_ < options_.update_interval_s) return;

  // Eq. (5): dif between measurement and current calibrated prediction.
  const double dif = measured - (curve_.value(t - t0_) + gamma_);
  // Eq. (6): gamma update with learning rate lambda.
  gamma_ += options_.learning_rate * dif;
  last_update_s_ = t;
}

double DynamicTemperaturePredictor::predict_at(double t) const {
  require_started();
  return curve_.value(t - t0_) + gamma_;
}

double DynamicTemperaturePredictor::predict_ahead(double gap_s) const {
  require_started();
  return predict_at(last_observed_s_ + gap_s);
}

void DynamicTemperaturePredictor::retarget(double t, double phi_now,
                                           double new_psi_stable) {
  require_started();
  detail::require(t >= last_observed_s_,
                  "retarget time must not precede observations");
  t0_ = t;
  phi0_ = phi_now;
  psi_stable_ = new_psi_stable;
  last_observed_s_ = t;
  if (!options_.retain_calibration_on_retarget) {
    // The new curve starts at the measured operating point, so no offset is
    // warranted until fresh errors are observed.
    gamma_ = 0.0;
    last_update_s_ = t;
  }
  curve_ = PredefinedCurve(phi_now, new_psi_stable, options_.t_break_s,
                           options_.curvature);
}

DynamicPredictorState DynamicTemperaturePredictor::export_state()
    const noexcept {
  DynamicPredictorState state;
  state.started = started_;
  state.t0 = t0_;
  state.gamma = gamma_;
  state.last_update_s = last_update_s_;
  state.last_observed_s = last_observed_s_;
  state.phi0 = phi0_;
  state.psi_stable = psi_stable_;
  return state;
}

void DynamicTemperaturePredictor::restore_state(
    const DynamicPredictorState& state) {
  if (!state.started) {
    *this = DynamicTemperaturePredictor(options_);
    return;
  }
  detail::require(state.last_observed_s >= state.t0 &&
                      state.last_update_s >= state.t0,
                  "dynamic predictor state has observations before t0");
  started_ = true;
  t0_ = state.t0;
  gamma_ = state.gamma;
  last_update_s_ = state.last_update_s;
  last_observed_s_ = state.last_observed_s;
  phi0_ = state.phi0;
  psi_stable_ = state.psi_stable;
  curve_ = PredefinedCurve(phi0_, psi_stable_, options_.t_break_s,
                           options_.curvature);
}

const PredefinedCurve& DynamicTemperaturePredictor::curve() const {
  require_started();
  return curve_;
}

}  // namespace vmtherm::core
