#include "core/online.h"

#include <algorithm>

namespace vmtherm::core {

OnlineTrainer::OnlineTrainer(OnlineTrainerOptions options)
    : options_(std::move(options)),
      drift_(options_.drift_slack_c, options_.drift_threshold_c) {
  options_.validate();
}

const StableTemperaturePredictor& OnlineTrainer::model() const {
  detail::require(model_.has_value(), "online trainer has no model yet");
  return *model_;
}

double OnlineTrainer::prequential_mse() const noexcept {
  // RunningStats of squared errors: the mean IS the MSE.
  return prequential_.mean();
}

bool OnlineTrainer::add_record(const Record& record) {
  ++records_seen_;

  if (model_.has_value()) {
    const double residual = model_->predict(record) - record.stable_temp_c;
    prequential_.add(residual * residual);
    drift_.observe(residual);
  }

  buffer_.push_back(record);
  if (options_.max_records > 0 && buffer_.size() > options_.max_records) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() +
                      static_cast<long>(buffer_.size() - options_.max_records));
  }
  ++new_since_fit_;

  if (!model_.has_value()) {
    if (buffer_.size() >= options_.min_records_for_training) {
      retrain(RetrainReason::kInitial);
      return true;
    }
    return false;
  }
  if (options_.retrain_on_drift && drift_.drifted()) {
    // The model went stale: older records describe the previous regime and
    // would poison a refit. Keep only the most recent ones and wait until
    // enough new-regime data accumulated to train on.
    if (!drift_trimmed_) {
      const std::size_t keep =
          std::max<std::size_t>(1, options_.drift_keep_recent);
      if (buffer_.size() > keep) {
        buffer_.erase(buffer_.begin(),
                      buffer_.begin() + static_cast<long>(buffer_.size() - keep));
      }
      drift_trimmed_ = true;
    }
    if (buffer_.size() >= options_.min_records_for_training) {
      retrain(RetrainReason::kDrift);
      return true;
    }
    return false;
  }
  if (new_since_fit_ >= options_.retrain_batch) {
    retrain(RetrainReason::kBatch);
    return true;
  }
  return false;
}

void OnlineTrainer::retrain(RetrainReason reason) {
  model_ = StableTemperaturePredictor::train(buffer_, options_.train_options);
  ++version_;
  reason_ = reason;
  new_since_fit_ = 0;
  drift_.reset();
  drift_trimmed_ = false;
  prequential_ = RunningStats{};
}

}  // namespace vmtherm::core
