// vmtherm/core/record_store.h
//
// CSV persistence for Eq. (2) records. Profiling experiments are expensive
// (minutes of wall-clock per record on a real testbed); a deployment
// collects them continuously and retrains offline. This module round-trips
// record corpora through CSV so the training pipeline can run from files.

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/record.h"

namespace vmtherm::core {

/// Writes records as CSV: one column per feature (named as in
/// feature_names()) plus the label column "stable_temp_c".
void write_records_csv(std::ostream& os, const std::vector<Record>& records);

/// Reads records from CSV produced by write_records_csv (column order free;
/// columns are matched by name). Throws IoError on missing columns or
/// unparseable numbers.
std::vector<Record> read_records_csv(std::istream& is);

/// File-path conveniences; throw IoError on open/create failure.
void write_records_csv_file(const std::string& path,
                            const std::vector<Record>& records);
std::vector<Record> read_records_csv_file(const std::string& path);

}  // namespace vmtherm::core
