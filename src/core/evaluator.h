// vmtherm/core/evaluator.h
//
// End-to-end evaluation harness: corpus generation, stable-prediction
// scoring (Fig. 1a), online dynamic-prediction scoring on scripted
// scenarios (Fig. 1b) and the prediction-gap x update-interval sweep
// (Fig. 1c). Benches and examples drive everything through this header.

#pragma once

#include <string>
#include <vector>

#include "core/dynamic_predictor.h"
#include "core/stable_predictor.h"
#include "sim/experiment.h"

namespace vmtherm::core {

// ---------------------------------------------------------------- corpus --

/// Samples `n` random experiment configurations, runs each on the simulated
/// testbed and profiles it into a labelled Record. Deterministic in `seed`.
std::vector<Record> generate_corpus(const sim::ScenarioRanges& ranges,
                                    std::size_t n, std::uint64_t seed,
                                    double t_break_s = kDefaultTbreakS);

// -------------------------------------------------- stable (Fig. 1a) -----

/// One stable-prediction test case.
struct StableCasePoint {
  std::size_t case_index = 0;
  int vm_count = 0;
  double measured_c = 0.0;   ///< ψ_stable from the testbed (Eq. 1)
  double predicted_c = 0.0;  ///< model output
};

/// Scoring of a predictor over held-out records.
struct StableEvalResult {
  std::vector<StableCasePoint> cases;
  double mse = 0.0;
  double mae = 0.0;
  double max_abs_error = 0.0;
};

/// Scores `predictor` against the labels of `test_records`.
StableEvalResult evaluate_stable(const StableTemperaturePredictor& predictor,
                                 const std::vector<Record>& test_records);

// -------------------------------------------------- dynamic (Fig. 1b/1c) --

/// A scripted run-time change to the machine under test.
struct ScenarioEvent {
  enum class Kind { kAddVm, kRemoveVm, kSetFans };
  Kind kind = Kind::kAddVm;
  double time_s = 0.0;
  sim::VmConfig vm;     ///< for kAddVm
  std::string vm_id;    ///< for kRemoveVm ("vm-<i>" of the initial set, or
                        ///< "dyn-<i>" for the i-th added VM)
  int fans = 4;         ///< for kSetFans
};

/// A dynamic scenario: an initial experiment configuration plus scripted
/// events. Events must be sorted by time.
struct DynamicScenario {
  sim::ExperimentConfig base;
  std::vector<ScenarioEvent> events;
};

/// Options for online dynamic evaluation.
struct DynamicEvalOptions {
  double gap_s = 60.0;     ///< Δ_gap: how far ahead each prediction looks
  DynamicOptions dynamic;  ///< λ, Δ_update, t_break, curvature, on/off
};

/// One matched (prediction, later measurement) pair.
struct DynamicEvalPoint {
  double target_time_s = 0.0;  ///< when the prediction was for
  double predicted_c = 0.0;
  double measured_c = 0.0;     ///< sensed temperature at target time
};

/// Outcome of one online dynamic run.
struct DynamicEvalResult {
  std::vector<DynamicEvalPoint> points;
  double mse = 0.0;
  double mae = 0.0;
  sim::TemperatureTrace trace;  ///< full trace, for plotting/case studies
  /// ψ*(t)+γ evaluated at every trace point (the model's own trajectory,
  /// aligned with trace — used for Fig. 1(b) style plots).
  std::vector<double> model_trajectory;
};

/// Runs the scenario online: at every sample the predictor observes the
/// sensed temperature, then issues a prediction Δ_gap ahead; predictions
/// are later matched against the sensed value at their target time. The
/// stable predictor supplies ψ_stable at start and after every event
/// (retargeting).
DynamicEvalResult evaluate_dynamic(
    const StableTemperaturePredictor& stable_predictor,
    const DynamicScenario& scenario, const DynamicEvalOptions& options);

// ------------------------------------------------------------ sweeps -----

/// MSE for every (gap, update-interval) combination, averaged over
/// `scenarios`. Result is row-major: result[i][j] is gaps[i] x updates[j].
std::vector<std::vector<double>> sweep_gap_update(
    const StableTemperaturePredictor& stable_predictor,
    const std::vector<DynamicScenario>& scenarios,
    const std::vector<double>& gaps, const std::vector<double>& updates,
    const DynamicOptions& base_options);

/// Builds a randomized dynamic scenario: random initial placement plus a
/// few VM add/remove events mid-run. `fans` pins θ_fan (Fig. 1c uses 4).
DynamicScenario make_random_dynamic_scenario(const sim::ScenarioRanges& ranges,
                                             int fans, std::uint64_t seed);

}  // namespace vmtherm::core
