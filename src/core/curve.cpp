#include "core/curve.h"

#include <algorithm>
#include <cmath>

namespace vmtherm::core {

PredefinedCurve::PredefinedCurve(double phi0, double psi_stable,
                                 double t_break_s, double curvature)
    : phi0_(phi0),
      psi_stable_(psi_stable),
      t_break_s_(t_break_s),
      curvature_(curvature),
      log_denominator_(std::log(curvature * t_break_s + 1.0)) {
  detail::require(std::isfinite(phi0), "curve phi0 must be finite");
  detail::require(std::isfinite(psi_stable), "curve psi_stable must be finite");
  detail::require(t_break_s > 0.0, "curve t_break must be positive");
  detail::require(curvature > 0.0, "curve curvature must be positive");
}

double PredefinedCurve::value(double t) const noexcept {
  t = std::max(0.0, t);
  if (t >= t_break_s_) return psi_stable_;
  const double frac = std::log(curvature_ * t + 1.0) / log_denominator_;
  return phi0_ + (psi_stable_ - phi0_) * frac;
}

}  // namespace vmtherm::core
