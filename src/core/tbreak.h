// vmtherm/core/tbreak.h
//
// Data-driven selection of t_break. The paper sets t_break = 600 s,
// "deduced from experiments"; this module reproduces that deduction: the
// settling time of a trace is when the temperature enters (and stays in) a
// band around its final stable value, and t_break is chosen as a high
// quantile of settling times over a corpus of experiments.

#pragma once

#include <vector>

#include "sim/experiment.h"
#include "sim/trace.h"

namespace vmtherm::core {

/// Settling-time analysis of one trace.
///
/// "Settled" means the cold-start transient has decayed and the trace has
/// entered its *stationary* regime — which may be a noisy level or a
/// steady oscillation (diurnal web workloads). The analysis therefore
/// widens the user band to the spread the trace exhibits in its own tail
/// (the stationary envelope), and separately flags traces whose tail still
/// trends (those never settle within the run).
struct SettlingAnalysis {
  /// The trace's final stable value (mean of the last 10% of samples,
  /// smoothed).
  double final_value_c = 0.0;
  /// Band actually used: max(band_c, 1.1 x max tail deviation).
  double effective_band_c = 0.0;
  /// Linear trend of the smoothed tail (deg C per second).
  double tail_trend_c_per_s = 0.0;
  /// First time after which the smoothed temperature stays within
  /// effective_band_c of final_value_c. 0 when stable from the start;
  /// equal to the trace duration when it never settles.
  double settling_time_s = 0.0;
  bool settled = false;
};

/// Computes the settling time of a trace for the given tolerance band.
/// Throws DataError on traces with fewer than 10 points.
SettlingAnalysis analyze_settling(const sim::TemperatureTrace& trace,
                                  double band_c = 1.0);

/// Study over a corpus of experiment configurations: runs each, extracts
/// settling times, and recommends t_break as the `quantile`-quantile
/// settling time (paper uses what amounts to a high quantile -> 600 s).
struct TbreakStudy {
  std::vector<double> settling_times_s;  ///< one per experiment, sorted
  double recommended_t_break_s = 0.0;
  std::size_t unsettled_count = 0;  ///< traces that never settled
};

TbreakStudy study_t_break(const std::vector<sim::ExperimentConfig>& configs,
                          double band_c = 1.0, double quantile = 0.9);

}  // namespace vmtherm::core
