// vmtherm/baselines/rc_predictor.h
//
// RC-circuit-model baseline, after Zhang et al. (the paper's reference
// [5]): steady-state CPU temperature from a fitted resistor-capacitor
// abstraction under the classical single-homogeneous-task assumption:
//
//   ψ = δ_env + R(f) * P(n),   R(f) = r * (f_ref / f)^e,
//   P(n) ∝ 1 + k * min(1, u0 * n)
//
// where n is the number of resident tasks (VMs) — every task is assumed to
// contribute the same utilization u0. The fan law exponent e is granted to
// the baseline (it matches the simulator), making the comparison
// conservative; what the baseline cannot express is heterogeneity (task
// types, VM shapes, server capacity), which is where the SVR wins.

#pragma once

#include <vector>

#include "core/record.h"

namespace vmtherm::baselines {

/// Fitted steady-state RC predictor.
class RcBaseline {
 public:
  /// Fits (u0, idle term, load term) on labelled records: grid over u0,
  /// least squares for the linear terms. Throws DataError on empty input.
  static RcBaseline fit(const std::vector<core::Record>& records);

  double predict(const core::Record& record) const;

  double homogeneous_utilization() const noexcept { return u0_; }

  /// Dynamic variant: the classical RC exponential step response toward
  /// this baseline's own steady-state prediction,
  ///   T(t) = ψ + (φ0 − ψ) * exp(−t / τ),
  /// with time constant τ (seconds). Used as a dynamic-prediction
  /// comparator in Fig. 1(b)-style studies.
  double dynamic_value(const core::Record& record, double phi0, double t,
                       double tau_s = 250.0) const;

 private:
  RcBaseline(double u0, double idle_coeff, double load_coeff,
             double fan_exponent, double reference_fans);

  /// R(f)/r relative to the reference fan configuration.
  double fan_factor(double fans) const noexcept;

  double u0_;          ///< assumed per-task utilization
  double idle_coeff_;  ///< r * P_idle
  double load_coeff_;  ///< r * P_span
  double fan_exponent_;
  double reference_fans_;
};

}  // namespace vmtherm::baselines
