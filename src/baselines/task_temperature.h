// vmtherm/baselines/task_temperature.h
//
// Task-temperature-profile baseline, after Wang/Khan/Dayal (the paper's
// reference [4]): classical thermal-aware placement keeps a per-task-type
// temperature profile and composes profiles additively. It ignores server
// heterogeneity, fan configuration and environment — exactly the modeling
// gap the paper's VM-level features close — so it serves as the "what the
// state of the art did before" comparator in the ablation bench.

#pragma once

#include <vector>

#include "core/record.h"
#include "ml/linreg.h"

namespace vmtherm::baselines {

/// Additive task-profile model:
///   ψ = base + Σ_type (number of VMs running type) * contribution_type
/// fit by least squares on training records. Only task counts are used —
/// the fidelity ceiling of task-temperature profiling in a multi-tenant,
/// heterogeneous-host cloud.
class TaskTemperatureBaseline {
 public:
  /// Fits profiles from labelled records; throws DataError on empty input.
  static TaskTemperatureBaseline fit(const std::vector<core::Record>& records);

  double predict(const core::Record& record) const;

  /// Per-task-type temperature contribution (°C per VM of that type), in
  /// sim::all_task_types() order.
  std::vector<double> contributions() const;

  /// Base temperature (°C) of an empty server under the profile model.
  double base_temperature() const;

 private:
  explicit TaskTemperatureBaseline(ml::LinearRegression model);

  static std::vector<double> features(const core::Record& record);

  ml::LinearRegression model_;
};

}  // namespace vmtherm::baselines
