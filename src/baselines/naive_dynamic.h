// vmtherm/baselines/naive_dynamic.h
//
// Trivial dynamic-prediction comparators: persistence (last value) and
// exponential moving average. Any useful dynamic model must beat these; the
// Fig. 1(b)-style case-study bench reports them alongside the paper's
// calibrated / uncalibrated curve predictions.

#pragma once

#include "util/error.h"

namespace vmtherm::baselines {

/// Persistence: the temperature Δ_gap from now equals the temperature now.
class LastValuePredictor {
 public:
  void observe(double /*t*/, double measured) noexcept {
    last_ = measured;
    seen_ = true;
  }

  /// Prediction for any horizon; throws DataError before any observation.
  double predict_ahead(double /*gap_s*/) const {
    detail::require_data(seen_, "last-value predictor has no observations");
    return last_;
  }

 private:
  double last_ = 0.0;
  bool seen_ = false;
};

/// Exponential moving average of the measurements, used as the forecast.
/// Smoothing factor alpha in (0, 1]; larger tracks faster.
class EmaPredictor {
 public:
  explicit EmaPredictor(double alpha = 0.3) : alpha_(alpha) {
    detail::require(alpha > 0.0 && alpha <= 1.0, "ema alpha must be in (0,1]");
  }

  void observe(double /*t*/, double measured) noexcept {
    if (!seen_) {
      ema_ = measured;
      seen_ = true;
    } else {
      ema_ = alpha_ * measured + (1.0 - alpha_) * ema_;
    }
  }

  double predict_ahead(double /*gap_s*/) const {
    detail::require_data(seen_, "ema predictor has no observations");
    return ema_;
  }

 private:
  double alpha_;
  double ema_ = 0.0;
  bool seen_ = false;
};

/// Linear-trend extrapolation from the last two observations — slightly
/// smarter persistence that can overshoot on noisy traces.
class TrendPredictor {
 public:
  void observe(double t, double measured) noexcept {
    prev_t_ = last_t_;
    prev_ = last_;
    have_prev_ = seen_;
    last_t_ = t;
    last_ = measured;
    seen_ = true;
  }

  double predict_ahead(double gap_s) const {
    detail::require_data(seen_, "trend predictor has no observations");
    if (!have_prev_ || last_t_ <= prev_t_) return last_;
    const double slope = (last_ - prev_) / (last_t_ - prev_t_);
    return last_ + slope * gap_s;
  }

 private:
  double last_t_ = 0.0;
  double last_ = 0.0;
  double prev_t_ = 0.0;
  double prev_ = 0.0;
  bool seen_ = false;
  bool have_prev_ = false;
};

}  // namespace vmtherm::baselines
