#include "baselines/rc_predictor.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/matrix.h"

namespace vmtherm::baselines {

namespace {

constexpr double kFanExponent = 0.65;
constexpr double kReferenceFans = 4.0;

double saturation(double u0, double vm_count) noexcept {
  return std::min(1.0, u0 * vm_count);
}

}  // namespace

double RcBaseline::fan_factor(double fans) const noexcept {
  return std::pow(reference_fans_ / std::max(1.0, fans), fan_exponent_);
}

RcBaseline RcBaseline::fit(const std::vector<core::Record>& records) {
  detail::require_data(!records.empty(), "rc baseline: no records");

  // For each candidate u0, the model is linear in (idle_coeff, load_coeff):
  //   psi - env = idle_coeff * F + load_coeff * F * sat(u0, n)
  // with F the fan factor. Solve 2x2 normal equations and keep the u0 with
  // the lowest training MSE.
  double best_u0 = 0.5;
  double best_idle = 0.0;
  double best_load = 0.0;
  double best_mse = std::numeric_limits<double>::infinity();

  for (double u0 = 0.05; u0 <= 1.0 + 1e-9; u0 += 0.05) {
    Matrix a(2, 2);
    std::vector<double> b(2, 0.0);
    for (const auto& r : records) {
      const double f =
          std::pow(kReferenceFans / std::max(1.0, r.fan_count), kFanExponent);
      const double z0 = f;
      const double z1 = f * saturation(u0, r.vm.vm_count);
      const double y = r.stable_temp_c - r.env_temp_c;
      a(0, 0) += z0 * z0;
      a(0, 1) += z0 * z1;
      a(1, 0) += z1 * z0;
      a(1, 1) += z1 * z1;
      b[0] += z0 * y;
      b[1] += z1 * y;
    }
    std::vector<double> sol;
    try {
      sol = gaussian_solve(a.add_scaled_identity(1e-9), b);
    } catch (const NumericError&) {
      continue;
    }

    double sq = 0.0;
    for (const auto& r : records) {
      const double f =
          std::pow(kReferenceFans / std::max(1.0, r.fan_count), kFanExponent);
      const double pred =
          r.env_temp_c + sol[0] * f + sol[1] * f * saturation(u0, r.vm.vm_count);
      const double e = pred - r.stable_temp_c;
      sq += e * e;
    }
    const double train_mse = sq / static_cast<double>(records.size());
    if (train_mse < best_mse) {
      best_mse = train_mse;
      best_u0 = u0;
      best_idle = sol[0];
      best_load = sol[1];
    }
  }

  return RcBaseline(best_u0, best_idle, best_load, kFanExponent,
                    kReferenceFans);
}

RcBaseline::RcBaseline(double u0, double idle_coeff, double load_coeff,
                       double fan_exponent, double reference_fans)
    : u0_(u0),
      idle_coeff_(idle_coeff),
      load_coeff_(load_coeff),
      fan_exponent_(fan_exponent),
      reference_fans_(reference_fans) {}

double RcBaseline::predict(const core::Record& record) const {
  const double f = fan_factor(record.fan_count);
  return record.env_temp_c + idle_coeff_ * f +
         load_coeff_ * f * saturation(u0_, record.vm.vm_count);
}

double RcBaseline::dynamic_value(const core::Record& record, double phi0,
                                 double t, double tau_s) const {
  const double psi = predict(record);
  return psi + (phi0 - psi) * std::exp(-std::max(0.0, t) / tau_s);
}

}  // namespace vmtherm::baselines
