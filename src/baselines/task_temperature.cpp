#include "baselines/task_temperature.h"

namespace vmtherm::baselines {

std::vector<double> TaskTemperatureBaseline::features(
    const core::Record& record) {
  // Count of VMs per task type = share * vm_count.
  std::vector<double> x;
  x.reserve(sim::kTaskTypeCount);
  for (double share : record.vm.task_share) {
    x.push_back(share * record.vm.vm_count);
  }
  return x;
}

TaskTemperatureBaseline TaskTemperatureBaseline::fit(
    const std::vector<core::Record>& records) {
  detail::require_data(!records.empty(),
                       "task-temperature baseline: no records");
  ml::Dataset data;
  for (const auto& r : records) {
    data.add(ml::Sample{features(r), r.stable_temp_c});
  }
  return TaskTemperatureBaseline(ml::LinearRegression::fit(data, 1e-6));
}

TaskTemperatureBaseline::TaskTemperatureBaseline(ml::LinearRegression model)
    : model_(std::move(model)) {}

double TaskTemperatureBaseline::predict(const core::Record& record) const {
  return model_.predict(features(record));
}

std::vector<double> TaskTemperatureBaseline::contributions() const {
  return model_.weights();
}

double TaskTemperatureBaseline::base_temperature() const {
  return model_.intercept();
}

}  // namespace vmtherm::baselines
