#include "serve/engine.h"

#include <algorithm>
#include <chrono>

#include "obs/trace.h"
#include "util/hash.h"

namespace vmtherm::serve {

namespace {

bool has_whitespace(const std::string& s) {
  return s.find_first_of(" \t\r\n") != std::string::npos;
}

/// Microsecond latency buckets: 16 us .. ~1 s, powers of 4.
std::vector<double> latency_bounds_us() {
  return {16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0,
          1048576.0};
}

/// Calibration |error| buckets in deg C.
std::vector<double> calibration_bounds_c() {
  return {0.25, 0.5, 1.0, 2.0, 4.0, 8.0};
}

}  // namespace

FleetEngine::FleetEngine(core::StableTemperaturePredictor predictor,
                         FleetEngineOptions options)
    : predictor_(std::move(predictor)),
      options_(options),
      pool_(options.drain == DrainMode::kManual
                ? 0
                : util::ThreadPool::resolve_thread_count(options.threads)) {
  options_.validate();

  shard_metrics_.ingested = &metrics_.counter("ingest.events");
  shard_metrics_.dropped = &metrics_.counter("ingest.dropped");
  shard_metrics_.observe_applied = &metrics_.counter("apply.observe");
  shard_metrics_.config_applied = &metrics_.counter("apply.config_update");
  shard_metrics_.apply_errors = &metrics_.counter("apply.errors");
  shard_metrics_.drift_signals = &metrics_.counter("drift.signals");
  shard_metrics_.queue_high_water =
      &metrics_.gauge("queue.high_water", MetricKind::kTiming);
  // Timing-class on purpose: per-shard caching makes the hit/miss split a
  // function of host->shard placement, so the counts legitimately differ
  // across shard topologies while every forecast stays bitwise-identical.
  shard_metrics_.psi_cache_hits =
      &metrics_.counter("psi_cache.hits", MetricKind::kTiming);
  shard_metrics_.psi_cache_misses =
      &metrics_.counter("psi_cache.misses", MetricKind::kTiming);
  shard_metrics_.calibration_abs_error_c =
      &metrics_.histogram("calibration.abs_error_c", calibration_bounds_c());
  shard_metrics_.drain_batch_us = &metrics_.histogram(
      "latency.drain_batch_us", latency_bounds_us(), MetricKind::kTiming);

  batches_ = &metrics_.counter("ingest.batches");
  forecasts_ = &metrics_.counter("forecast.requests");
  scans_ = &metrics_.counter("hotspot.scans");
  hosts_gauge_ = &metrics_.gauge("fleet.hosts");
  forecast_batch_us_ = &metrics_.histogram(
      "latency.forecast_batch_us", latency_bounds_us(), MetricKind::kTiming);

  shards_.reserve(options_.shards);
  for (std::size_t i = 0; i < options_.shards; ++i) {
    shards_.push_back(
        std::make_unique<Shard>(&predictor_, &options_, shard_metrics_));
  }
}

FleetEngine::~FleetEngine() {
  // Apply everything still queued so no producer's events vanish; the pool
  // then joins its workers in its own destructor.
  flush();
}

std::size_t FleetEngine::shard_of(const std::string& host_id) const noexcept {
  return util::fnv1a64(host_id) % shards_.size();
}

HostHandle FleetEngine::register_host(const std::string& host_id,
                                      mgmt::MonitoredConfig config, double t0,
                                      double measured_c) {
  detail::require(!host_id.empty(), "host id must be non-empty");
  detail::require(!has_whitespace(host_id),
                  "host id must not contain whitespace");
  const auto shard = static_cast<std::uint32_t>(shard_of(host_id));
  std::unique_lock<std::shared_mutex> lock(routes_mutex_);
  detail::require(names_.find(host_id) == names_.end(),
                  "host already registered");
  const std::uint32_t slot =
      shards_[shard]->add_host(host_id, std::move(config), t0, measured_c);
  const auto handle = static_cast<HostHandle>(routes_.size());
  routes_.push_back(Route{shard, slot, true});
  names_.emplace(host_id, handle);
  hosts_gauge_->add(1);
  return handle;
}

HostHandle FleetEngine::import_host(const HostSnapshot& snapshot) {
  detail::require(!snapshot.host_id.empty(), "host id must be non-empty");
  detail::require(!has_whitespace(snapshot.host_id),
                  "host id must not contain whitespace");
  const auto shard = static_cast<std::uint32_t>(shard_of(snapshot.host_id));
  std::unique_lock<std::shared_mutex> lock(routes_mutex_);
  detail::require(names_.find(snapshot.host_id) == names_.end(),
                  "host already registered");
  const std::uint32_t slot = shards_[shard]->import_host(snapshot);
  const auto handle = static_cast<HostHandle>(routes_.size());
  routes_.push_back(Route{shard, slot, true});
  names_.emplace(snapshot.host_id, handle);
  hosts_gauge_->add(1);
  return handle;
}

void FleetEngine::unregister_host(HostHandle handle) {
  std::unique_lock<std::shared_mutex> lock(routes_mutex_);
  detail::require(handle < routes_.size() && routes_[handle].live,
                  "unknown host handle");
  Route& route = routes_[handle];
  shards_[route.shard]->remove_host(route.slot);
  route.live = false;
  for (auto it = names_.begin(); it != names_.end(); ++it) {
    if (it->second == handle) {
      names_.erase(it);
      break;
    }
  }
  hosts_gauge_->add(-1);
}

HostHandle FleetEngine::handle_of(const std::string& host_id) const {
  std::shared_lock<std::shared_mutex> lock(routes_mutex_);
  const auto it = names_.find(host_id);
  return it == names_.end() ? kInvalidHostHandle : it->second;
}

bool FleetEngine::has_host(const std::string& host_id) const {
  return handle_of(host_id) != kInvalidHostHandle;
}

std::size_t FleetEngine::host_count() const {
  std::shared_lock<std::shared_mutex> lock(routes_mutex_);
  return names_.size();
}

FleetEngine::Route FleetEngine::route_of(HostHandle handle) const {
  std::shared_lock<std::shared_mutex> lock(routes_mutex_);
  detail::require(handle < routes_.size() && routes_[handle].live,
                  "unknown host handle");
  return routes_[handle];
}

void FleetEngine::ingest(TelemetryEvent event) {
  std::vector<TelemetryEvent> one;
  one.push_back(std::move(event));
  ingest_batch(std::move(one));
}

void FleetEngine::ingest_batch(std::vector<TelemetryEvent> events) {
  if (events.empty()) return;
  VMTHERM_SPAN_ARG("serve.ingest_batch", "serve", "events", events.size());
  batches_->add(1);
  util::ThreadPool* drain_pool =
      options_.drain == DrainMode::kAuto ? &pool_ : nullptr;

  // Group into per-shard runs (batch order preserved within each shard),
  // resolving handles to shard slots under one shared lock. Nothing is
  // enqueued until the whole batch groups cleanly, so a bad handle throws
  // without poisoning any shard. Each run reserves for a balanced split up
  // front — per-event growth reallocations would otherwise dominate the
  // producer-visible ingest cost at high shard counts, and the FNV hash
  // keeps real fleets close to balanced (a skewed batch merely falls back
  // to amortized growth).
  std::vector<Shard::Run> runs(shards_.size());
  const std::size_t balanced = events.size() / shards_.size() + 1;
  {
    std::shared_lock<std::shared_mutex> lock(routes_mutex_);
    // Local copies so the per-event stores can't force member reloads
    // (the optimizer must otherwise assume runs/routes alias).
    const Route* const routes = routes_.data();
    const std::size_t route_count = routes_.size();
    Shard::Run* const run_data = runs.data();
    for (TelemetryEvent& event : events) {
      detail::require(event.host < route_count && routes[event.host].live,
                      "unknown host handle in batch");
      const Route& route = routes[event.host];
      Shard::Run& run = run_data[route.shard];
      if (run.events.capacity() == 0) run.events.reserve(balanced);
      const mgmt::MonitoredConfig* config = nullptr;
      if (event.config != nullptr) {  // rare: config updates only
        run.configs.push_back(std::move(event.config));
        config = run.configs.back().get();
      }
      run.events.push_back(Shard::QueuedEvent{
          event.type, route.slot, event.time_s, event.measured_c, config});
    }
  }
  for (std::size_t s = 0; s < runs.size(); ++s) {
    if (runs[s].events.empty()) continue;
    shards_[s]->enqueue_run(std::move(runs[s]), drain_pool);
  }
}

void FleetEngine::flush() {
  VMTHERM_SPAN("serve.flush", "serve");
  const bool inline_drain = options_.drain == DrainMode::kManual;
  for (const auto& shard : shards_) shard->flush(inline_drain);
}

double FleetEngine::forecast(HostHandle handle, double gap_s) const {
  const Route route = route_of(handle);
  forecasts_->add(1);
  return shards_[route.shard]->forecast(route.slot, gap_s);
}

std::vector<double> FleetEngine::forecast_batch(
    const std::vector<ForecastRequest>& requests) const {
  std::vector<double> results(requests.size(), 0.0);
  if (requests.empty()) return results;
  VMTHERM_SPAN_ARG("serve.forecast_batch", "serve", "requests",
                   requests.size());
  // Timing-only metric; never observable in forecast output.
  const auto start =
      std::chrono::steady_clock::now();  // vmtherm-lint: allow(det-clock)

  // Group request (index, slot) pairs per shard, then evaluate shard
  // groups in parallel; each result lands in its pre-sized slot keyed by
  // request index, so output order never depends on scheduling.
  struct Item {
    std::size_t index;
    std::uint32_t slot;
  };
  std::vector<std::vector<Item>> groups(shards_.size());
  {
    std::shared_lock<std::shared_mutex> lock(routes_mutex_);
    for (std::size_t i = 0; i < requests.size(); ++i) {
      const HostHandle handle = requests[i].host;
      detail::require(handle < routes_.size() && routes_[handle].live,
                      "unknown host handle in forecast batch");
      groups[routes_[handle].shard].push_back(Item{i, routes_[handle].slot});
    }
  }
  pool_.parallel_for(0, shards_.size(), [&](std::size_t s) {
    for (const Item& item : groups[s]) {
      results[item.index] =
          shards_[s]->forecast(item.slot, requests[item.index].gap_s);
    }
  });
  forecasts_->add(requests.size());

  const auto elapsed =
      std::chrono::steady_clock::now() - start;  // vmtherm-lint: allow(det-clock)
  forecast_batch_us_->record(
      std::chrono::duration<double, std::micro>(elapsed).count());
  return results;
}

std::vector<mgmt::HotspotRisk> FleetEngine::hotspot_scan(
    double horizon_s, double threshold_c) const {
  VMTHERM_SPAN("serve.hotspot_scan", "serve");
  scans_->add(1);
  std::vector<std::vector<mgmt::HotspotRisk>> per_shard(shards_.size());
  pool_.parallel_for(0, shards_.size(), [&](std::size_t s) {
    shards_[s]->append_risks(horizon_s, threshold_c, per_shard[s]);
  });

  std::vector<mgmt::HotspotRisk> risks;
  std::size_t total = 0;
  for (const auto& rows : per_shard) total += rows.size();
  risks.reserve(total);
  for (auto& rows : per_shard) {
    for (auto& row : rows) risks.push_back(std::move(row));
  }
  std::sort(risks.begin(), risks.end(),
            [](const mgmt::HotspotRisk& a, const mgmt::HotspotRisk& b) {
              if (a.forecast_c != b.forecast_c) {
                return a.forecast_c > b.forecast_c;
              }
              return a.host_id < b.host_id;
            });
  return risks;
}

mgmt::MonitoredConfig FleetEngine::config_of(HostHandle handle) const {
  const Route route = route_of(handle);
  return shards_[route.shard]->config_of(route.slot);
}

double FleetEngine::calibration_of(HostHandle handle) const {
  const Route route = route_of(handle);
  return shards_[route.shard]->calibration_of(route.slot);
}

bool FleetEngine::drifted(HostHandle handle) const {
  const Route route = route_of(handle);
  return shards_[route.shard]->drifted(route.slot);
}

std::vector<HostSnapshot> FleetEngine::export_hosts() const {
  std::vector<HostSnapshot> hosts;
  for (const auto& shard : shards_) shard->append_snapshots(hosts);
  std::sort(hosts.begin(), hosts.end(),
            [](const HostSnapshot& a, const HostSnapshot& b) {
              return a.host_id < b.host_id;
            });
  return hosts;
}

obs::FleetAccuracyStats FleetEngine::accuracy_report() const {
  std::vector<obs::HostAccuracyStats> rows;
  for (const auto& shard : shards_) shard->append_accuracy(rows);
  obs::FleetAccuracyStats fleet = obs::aggregate_fleet(std::move(rows));
  // Registry pointers the engine already holds; the const registry has no
  // name lookup by design.
  fleet.psi_cache_hits = shard_metrics_.psi_cache_hits->value();
  fleet.psi_cache_misses = shard_metrics_.psi_cache_misses->value();
  fleet.queue_high_water = shard_metrics_.queue_high_water->value();
  return fleet;
}

}  // namespace vmtherm::serve
