// vmtherm/serve/snapshot.h
//
// Versioned text snapshot of a FleetEngine: the trained stable model
// (embedded ml/model_io sections), the dynamic/drift configuration, every
// live host's exact tracker/residual/drift state, and the deterministic
// metric counters. Doubles are written with 17 significant digits, so a
// save → load → save round-trip is byte-identical and a restored engine
// continues bitwise-exactly where the saved one stopped.
//
// Format ("vmtherm_fleet v1"):
//   vmtherm_fleet v1
//   dynamic <lr> <update_s> <t_break_s> <curvature> <calib> <retain>
//   drift <slack_c> <threshold_c>
//   <ml::save_scaler section>
//   <ml::save_svr section>
//   hosts <n>
//     host <id> fans <f> env <e> vms <k>
//     vm <task> <vcpus> <memory_gb>                       (x k)
//     server <name> <cores> <ghz> <mem_gb> <fan_slots>
//            <idle_w> <max_cpu_w> <cpu_exp> <mem_w_per_gb>
//            <c_die> <c_sink> <r_ds> <r_sa> <ref_fans> <fan_exp>
//     tracker <started> <t0> <gamma> <last_upd> <last_obs> <phi0> <psi>
//     resid <n> <mean> <m2> <min> <max>
//     cusum <pos> <neg> <drifted> <count>
//   metrics <n>
//     counter <name> <value>
//     hist <name> <n_bounds> <bounds...> <counts...>      (counts: n_bounds+1)
//   end
//
// Host ids, server names and metric names must be whitespace-free (enforced
// at save time; register_host already guarantees it for host ids).

#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "serve/engine.h"

namespace vmtherm::serve {

/// Writes the engine's full logical state. The engine is flushed first so
/// the snapshot reflects every event ingested before the call.
void save_fleet(std::ostream& os, FleetEngine& engine);

/// Reconstructs an engine from a snapshot. Serving knobs (shards, threads,
/// queue capacity, backpressure, drain mode) come from `options`; the
/// dynamic and drift parameters are overridden from the file so restored
/// trackers behave identically. Host handles are reassigned (hosts are
/// imported in the file's sorted order) — re-resolve via handle_of().
/// Throws IoError on malformed input.
std::unique_ptr<FleetEngine> load_fleet(std::istream& is,
                                        FleetEngineOptions options = {});

/// File-path conveniences (throw IoError if the file cannot be
/// opened/created).
void save_fleet_file(const std::string& path, FleetEngine& engine);
std::unique_ptr<FleetEngine> load_fleet_file(const std::string& path,
                                             FleetEngineOptions options = {});

}  // namespace vmtherm::serve
