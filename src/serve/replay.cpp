#include "serve/replay.h"

#include <bit>
#include <utility>

#include "sim/experiment.h"
#include "util/hash.h"

namespace vmtherm::serve {

void ReplayOptions::validate() const {
  detail::require(hosts >= 1, "replay needs at least one host");
  detail::require(steps >= 1, "replay needs at least one step");
  detail::require(sample_interval_s > 0.0,
                  "replay sample interval must be positive");
  detail::require(gap_s > 0.0, "replay gap must be positive");
  detail::require(horizon_s > 0.0, "replay horizon must be positive");
  engine.validate();
}

std::string replay_host_id(std::size_t index) {
  std::string digits = std::to_string(index);
  if (digits.size() < 4) digits.insert(0, 4 - digits.size(), '0');
  return "host-" + digits;
}

ReplayReport run_fleet_replay(core::StableTemperaturePredictor predictor,
                              const ReplayOptions& options) {
  options.validate();

  // Per-host traces: one simulated experiment per host, long enough to
  // cover every replay step. Deterministic given the seed.
  sim::ScenarioRanges ranges;
  ranges.duration_s =
      static_cast<double>(options.steps) * options.sample_interval_s;
  ranges.sample_interval_s = options.sample_interval_s;
  sim::ScenarioSampler sampler(ranges, options.seed);
  const std::vector<sim::ExperimentConfig> configs =
      sampler.sample(options.hosts);
  std::vector<sim::TemperatureTrace> traces;
  traces.reserve(options.hosts);
  for (const sim::ExperimentConfig& config : configs) {
    traces.push_back(sim::run_experiment(config).trace);
  }

  ReplayReport report;
  report.hosts = options.hosts;
  report.steps = options.steps;
  report.engine =
      std::make_unique<FleetEngine>(std::move(predictor), options.engine);
  FleetEngine& engine = *report.engine;

  std::vector<HostHandle> handles;
  std::vector<ForecastRequest> requests;
  handles.reserve(options.hosts);
  requests.reserve(options.hosts);
  for (std::size_t h = 0; h < options.hosts; ++h) {
    mgmt::MonitoredConfig config;
    config.server = configs[h].server;
    config.fans = configs[h].active_fans;
    config.vms = configs[h].vms;
    config.env_temp_c = configs[h].environment.base_c;
    const sim::TracePoint& first = traces[h][0];
    handles.push_back(engine.register_host(replay_host_id(h), config,
                                           first.time_s,
                                           first.cpu_temp_sensed_c));
    requests.push_back(ForecastRequest{handles[h], options.gap_s});
  }

  std::uint64_t digest = util::kFnv1a64Offset;
  std::vector<TelemetryEvent> batch;
  for (std::size_t step = 1; step <= options.steps; ++step) {
    batch.clear();
    batch.reserve(options.hosts);
    for (std::size_t h = 0; h < options.hosts; ++h) {
      const sim::TemperatureTrace& trace = traces[h];
      const std::size_t index = std::min(step, trace.size() - 1);
      const sim::TracePoint& point = trace[index];
      const bool churn = options.churn_every > 0 &&
                         step % options.churn_every == 0 &&
                         (step / options.churn_every - 1) % options.hosts == h;
      if (churn) {
        // Cycle the host's active fan count: a realistic management action
        // that retargets the stable temperature mid-stream.
        mgmt::MonitoredConfig next = engine.config_of(handles[h]);
        next.fans = next.fans % next.server.fan_slots + 1;
        batch.push_back(TelemetryEvent::update_config(
            handles[h], point.time_s, point.cpu_temp_sensed_c,
            std::move(next)));
      } else {
        batch.push_back(TelemetryEvent::observe(handles[h], point.time_s,
                                                point.cpu_temp_sensed_c));
      }
    }
    engine.ingest_batch(std::move(batch));
    batch = {};
    engine.flush();
    const std::vector<double> forecasts = engine.forecast_batch(requests);
    for (const double forecast : forecasts) {
      digest = util::fnv1a64_mix(digest, std::bit_cast<std::uint64_t>(forecast));
    }
  }

  report.forecast_digest = digest;
  report.risks = engine.hotspot_scan(options.horizon_s, options.threshold_c);
  report.events_ingested = engine.metrics().counter("ingest.events").value();
  report.metrics_json = engine.metrics().to_json(/*include_timing=*/false);
  return report;
}

}  // namespace vmtherm::serve
