#include "serve/shard.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "obs/trace.h"

namespace vmtherm::serve {

namespace {

/// Events applied per state-lock acquisition: large enough to amortize the
/// lock, small enough that synchronous reads interleave with a busy drain.
constexpr std::size_t kDrainChunk = 256;

}  // namespace

Shard::Shard(const core::StableTemperaturePredictor* predictor,
             const FleetEngineOptions* options, ShardMetrics metrics)
    : predictor_(predictor),
      options_(options),
      metrics_(metrics),
      psi_cache_(options->psi_cache_capacity) {}

double Shard::psi_stable(const mgmt::MonitoredConfig& config) {
  VMTHERM_SPAN("serve.featurize", "serve");
  core::encode_features(core::make_record_inputs(config.server, config.vms,
                                                 config.fans,
                                                 config.env_temp_c),
                        psi_scratch_.features);
  if (const double* hit = psi_cache_.find(psi_scratch_.features)) {
    metrics_.psi_cache_hits->add(1);
    return *hit;
  }
  metrics_.psi_cache_misses->add(1);
  VMTHERM_SPAN("serve.psi_predict", "serve");
  const double psi = predictor_->predict_from_features(psi_scratch_.features,
                                                       psi_scratch_.scaled);
  psi_cache_.insert(psi_scratch_.features, psi);
  return psi;
}

std::uint32_t Shard::add_host(std::string host_id,
                              mgmt::MonitoredConfig config, double t0,
                              double measured_c) {
  config.server.validate();
  std::lock_guard<std::mutex> lock(state_mutex_);
  // ψ under the state lock: the cache and scratch buffers are shard state.
  const double psi = psi_stable(config);
  HostState host{std::move(host_id),
                 std::move(config),
                 core::DynamicTemperaturePredictor(options_->dynamic),
                 core::CusumDetector(options_->drift_slack_c,
                                     options_->drift_threshold_c),
                 {},
                 obs::HostAccuracy(options_->accuracy_window),
                 true};
  host.tracker.begin(t0, measured_c, psi);
  hosts_.push_back(std::move(host));
  ++live_count_;
  return static_cast<std::uint32_t>(hosts_.size() - 1);
}

std::uint32_t Shard::import_host(const HostSnapshot& snapshot) {
  snapshot.config.server.validate();
  std::lock_guard<std::mutex> lock(state_mutex_);
  HostState host{snapshot.host_id,
                 snapshot.config,
                 core::DynamicTemperaturePredictor(options_->dynamic),
                 core::CusumDetector(options_->drift_slack_c,
                                     options_->drift_threshold_c),
                 snapshot.residuals,
                 obs::HostAccuracy(options_->accuracy_window),
                 true};
  host.tracker.restore_state(snapshot.tracker);
  host.drift.restore(snapshot.drift_positive, snapshot.drift_negative,
                     snapshot.drifted, snapshot.drift_observations);
  hosts_.push_back(std::move(host));
  ++live_count_;
  return static_cast<std::uint32_t>(hosts_.size() - 1);
}

void Shard::remove_host(std::uint32_t slot) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  detail::require(slot < hosts_.size() && hosts_[slot].live,
                  "shard slot is not live");
  hosts_[slot].live = false;
  --live_count_;
}

std::size_t Shard::live_host_count() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return live_count_;
}

void Shard::enqueue_run(Run&& run, util::ThreadPool* pool) {
  if (run.events.empty()) return;
  bool schedule_drain = false;
  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    if (options_->backpressure == BackpressurePolicy::kBlock) {
      // Watermark semantics: wait until the backlog is below capacity, then
      // admit the whole run (overshoot is bounded by one run). Admitting
      // runs whole keeps producer-visible enqueue cost O(1) per run.
      space_available_.wait(lock, [this] {
        return queued_events_ < options_->queue_capacity;
      });
    } else {
      const std::size_t space = options_->queue_capacity > queued_events_
                                    ? options_->queue_capacity - queued_events_
                                    : 0;
      if (space < run.events.size()) {
        // Tail-drop; surviving config payloads stay owned by the run.
        metrics_.dropped->add(
            static_cast<std::uint64_t>(run.events.size() - space));
        run.events.resize(space);
      }
      if (run.events.empty()) return;
    }
    queued_events_ += run.events.size();
    metrics_.ingested->add(static_cast<std::uint64_t>(run.events.size()));
    metrics_.queue_high_water->update_max(
        static_cast<std::int64_t>(queued_events_));
    queue_.push_back(std::move(run));
    if (pool != nullptr && !drain_active_) {
      drain_active_ = true;
      schedule_drain = true;
    }
  }
  if (schedule_drain) {
    pool->submit([this] { drain_until_empty(); });
  }
}

void Shard::flush(bool drain_inline) {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  if (drain_inline) {
    // Claim the drain (mirrors the pool task's protocol so a manual flush
    // is safe even if another drainer is mid-flight).
    drained_.wait(lock, [this] { return !drain_active_; });
    if (queue_.empty()) return;
    drain_active_ = true;
    lock.unlock();
    drain_until_empty();
    return;
  }
  drained_.wait(lock, [this] { return queue_.empty() && !drain_active_; });
}

void Shard::drain_until_empty() {
  for (;;) {
    Run run;
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      if (queue_.empty()) {
        drain_active_ = false;
        drained_.notify_all();
        return;
      }
      run = std::move(queue_.front());
      queue_.pop_front();
      queued_events_ -= run.events.size();
    }
    // Space frees at dequeue (not at apply), matching queued_events_.
    space_available_.notify_all();

    // Apply in chunks so synchronous reads interleave with a busy drain.
    const std::size_t count = run.events.size();
    for (std::size_t begin = 0; begin < count; begin += kDrainChunk) {
      const std::size_t end = std::min(count, begin + kDrainChunk);
      VMTHERM_SPAN_ARG("serve.drain_chunk", "serve", "events", end - begin);
      // Timing-only metric; drain results do not depend on the clock.
      const auto start =
          std::chrono::steady_clock::now();  // vmtherm-lint: allow(det-clock)
      {
        std::lock_guard<std::mutex> lock(state_mutex_);
        for (std::size_t i = begin; i < end; ++i) apply(run.events[i]);
      }
      const auto elapsed =
          std::chrono::steady_clock::now() -  // vmtherm-lint: allow(det-clock)
          start;
      metrics_.drain_batch_us->record(
          std::chrono::duration<double, std::micro>(elapsed).count());
    }
  }
}

void Shard::apply(const QueuedEvent& event) {
  if (event.slot >= hosts_.size() || !hosts_[event.slot].live) {
    metrics_.apply_errors->add(1);
    return;
  }
  HostState& host = hosts_[event.slot];
  try {
    switch (event.type) {
      case TelemetryEvent::Type::kObserve: {
        VMTHERM_SPAN("serve.observe", "serve");
        // Prequential residual: score the current calibrated prediction
        // before the observation updates it.
        const double predicted = host.tracker.predict_at(event.time_s);
        const double residual = event.measured_c - predicted;
        host.residuals.add(residual);
        metrics_.calibration_abs_error_c->record(std::abs(residual));
        const bool was_drifted = host.drift.drifted();
        host.drift.observe(residual);
        if (!was_drifted && host.drift.drifted()) {
          metrics_.drift_signals->add(1);
        }
        // Eq. 6 calibration update (covered by the serve.observe span —
        // one span per applied event keeps disabled-tracer cost < 1% of
        // the serving budget; perf_serve enforces this).
        host.tracker.observe(event.time_s, event.measured_c);
        // The Eq. 5 error and the Eq. 6 γ it produced, for serve-stats.
        host.accuracy.record(residual, host.tracker.calibration());
        metrics_.observe_applied->add(1);
        break;
      }
      case TelemetryEvent::Type::kUpdateConfig: {
        VMTHERM_SPAN("serve.update_config", "serve");
        detail::require(event.config != nullptr,
                        "update_config event without a config payload");
        event.config->server.validate();
        host.config = *event.config;
        const double psi = psi_stable(host.config);
        host.tracker.retarget(event.time_s, event.measured_c, psi);
        metrics_.config_applied->add(1);
        break;
      }
    }
  } catch (const Error&) {
    // Async path: producers are long gone, so malformed events (time going
    // backwards, invalid configs) are counted, never thrown.
    metrics_.apply_errors->add(1);
  }
}

double Shard::forecast(std::uint32_t slot, double gap_s) const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  detail::require(slot < hosts_.size() && hosts_[slot].live,
                  "shard slot is not live");
  return hosts_[slot].tracker.predict_ahead(gap_s);
}

mgmt::MonitoredConfig Shard::config_of(std::uint32_t slot) const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  detail::require(slot < hosts_.size() && hosts_[slot].live,
                  "shard slot is not live");
  return hosts_[slot].config;
}

double Shard::calibration_of(std::uint32_t slot) const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  detail::require(slot < hosts_.size() && hosts_[slot].live,
                  "shard slot is not live");
  return hosts_[slot].tracker.calibration();
}

bool Shard::drifted(std::uint32_t slot) const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  detail::require(slot < hosts_.size() && hosts_[slot].live,
                  "shard slot is not live");
  return hosts_[slot].drift.drifted();
}

void Shard::append_risks(double horizon_s, double threshold_c,
                         std::vector<mgmt::HotspotRisk>& out) const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  for (const HostState& host : hosts_) {
    if (!host.live) continue;
    mgmt::HotspotRisk risk;
    risk.host_id = host.host_id;
    risk.forecast_c = host.tracker.predict_ahead(horizon_s);
    risk.at_risk = risk.forecast_c >= threshold_c;
    out.push_back(std::move(risk));
  }
}

void Shard::append_snapshots(std::vector<HostSnapshot>& out) const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  for (const HostState& host : hosts_) {
    if (!host.live) continue;
    HostSnapshot snapshot;
    snapshot.host_id = host.host_id;
    snapshot.config = host.config;
    snapshot.tracker = host.tracker.export_state();
    snapshot.residuals = host.residuals;
    snapshot.drift_positive = host.drift.positive_sum();
    snapshot.drift_negative = host.drift.negative_sum();
    snapshot.drifted = host.drift.drifted();
    snapshot.drift_observations = host.drift.observation_count();
    out.push_back(std::move(snapshot));
  }
}

void Shard::append_accuracy(std::vector<obs::HostAccuracyStats>& out) const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  for (const HostState& host : hosts_) {
    if (!host.live) continue;
    obs::HostAccuracyStats stats;
    stats.host_id = host.host_id;
    stats.observations = host.accuracy.observations();
    stats.window = host.accuracy.window();
    stats.in_window = host.accuracy.in_window();
    stats.sums = host.accuracy.window_sums();
    if (stats.sums.samples > 0) {
      const double n = static_cast<double>(stats.sums.samples);
      stats.rolling_mse = stats.sums.sum_sq_dif / n;
      stats.rolling_mae = stats.sums.sum_abs_dif / n;
      stats.rolling_mean_dif = stats.sums.sum_dif / n;
    }
    stats.gamma = host.tracker.calibration();
    stats.gamma_drift = host.accuracy.gamma_drift();
    stats.drift_positive = host.drift.positive_sum();
    stats.drift_negative = host.drift.negative_sum();
    stats.drifted = host.drift.drifted();
    out.push_back(std::move(stats));
  }
}

}  // namespace vmtherm::serve
