// vmtherm/serve/shard.h
//
// One shard of the fleet-serving engine: a bounded MPSC ingestion queue
// plus the owned state of every host the stable hash assigned here (config,
// calibrated dynamic predictor, residual statistics, CUSUM drift state).
//
// Concurrency protocol (see DESIGN.md §7):
//  * queue_mutex_ guards the event queue and the drain-claim flag; any
//    thread may enqueue (MPSC producers).
//  * At most one drainer is active per shard at any time (drain_active_),
//    so events apply strictly in queue order — this is what preserves
//    per-host event ordering while different shards drain in parallel.
//  * state_mutex_ guards the host table; the drainer takes it per chunk,
//    synchronous reads (forecast, scans, snapshot export) take it briefly.
//
// Shards are engine-internal: FleetEngine owns slot assignment and
// validates handles before events reach a shard.

#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "core/drift.h"
#include "core/stable_predictor.h"
#include "obs/accuracy.h"
#include "serve/event.h"
#include "serve/metrics.h"
#include "serve/psi_cache.h"
#include "util/thread_pool.h"

namespace vmtherm::serve {

/// Metric handles shared by every shard of one engine (all updates are
/// atomic; the engine registers these once at construction).
struct ShardMetrics {
  Counter* ingested = nullptr;       ///< events accepted into a queue
  Counter* dropped = nullptr;        ///< events rejected (kDropNewest)
  Counter* observe_applied = nullptr;
  Counter* config_applied = nullptr;
  Counter* apply_errors = nullptr;   ///< unknown host / bad event payload
  Counter* drift_signals = nullptr;  ///< hosts whose CUSUM newly latched
  Gauge* queue_high_water = nullptr; ///< max queue depth seen (timing)
  /// ψ_stable memoization traffic. Timing-class: the hit/miss split
  /// depends on how hosts land on shards, not on what the engine computes.
  Counter* psi_cache_hits = nullptr;
  Counter* psi_cache_misses = nullptr;
  Histogram* calibration_abs_error_c = nullptr;
  Histogram* drain_batch_us = nullptr;  ///< per-chunk apply latency (timing)
};

class Shard {
 public:
  /// An event routed to this shard: like TelemetryEvent but addressed by
  /// the shard-local slot the engine resolved from the host handle.
  /// Trivially copyable on purpose — the producer-visible grouping loop
  /// writes one of these per event, so config ownership lives out-of-band
  /// in the run (Run::configs) and the event only carries a raw pointer.
  struct QueuedEvent {
    TelemetryEvent::Type type = TelemetryEvent::Type::kObserve;
    std::uint32_t slot = 0;
    double time_s = 0.0;
    double measured_c = 0.0;
    const mgmt::MonitoredConfig* config = nullptr;  ///< owned by the run
  };

  /// One ingest batch's events for this shard, queued whole. `configs`
  /// keeps every kUpdateConfig payload alive until the run is applied
  /// (QueuedEvent::config points into it); observes carry no ownership.
  struct Run {
    std::vector<QueuedEvent> events;
    std::vector<std::shared_ptr<const mgmt::MonitoredConfig>> configs;
  };

  Shard(const core::StableTemperaturePredictor* predictor,
        const FleetEngineOptions* options, ShardMetrics metrics);

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  // --- control plane (called by the engine) -------------------------------

  /// Adds a host and begins its tracker at a fresh stable prediction.
  /// Returns the shard-local slot.
  std::uint32_t add_host(std::string host_id, mgmt::MonitoredConfig config,
                         double t0, double measured_c);

  /// Restores a host from a snapshot (exact tracker state, no begin()).
  std::uint32_t import_host(const HostSnapshot& snapshot);

  /// Tombstones a slot; queued events addressed to it count as apply
  /// errors.
  void remove_host(std::uint32_t slot);

  std::size_t live_host_count() const;

  // --- data plane ---------------------------------------------------------

  /// Enqueues one event run (order-preserving, O(1) in the run size once
  /// grouped — runs are queued whole, which is what keeps producer-visible
  /// ingestion cheap). queue_capacity is an event-count watermark: under
  /// kBlock a producer waits until the backlog is below capacity and its
  /// entire run is then admitted (bounded overshoot of one run); under
  /// kDropNewest the run's tail beyond the remaining space is counted in
  /// ingest.dropped and discarded. When `pool` is non-null (auto drain) a
  /// drain task is scheduled if none is active.
  void enqueue_run(Run&& run, util::ThreadPool* pool);

  /// Blocks until every queued event has been applied. With `drain_inline`
  /// (manual mode) the calling thread drains the queue itself.
  void flush(bool drain_inline);

  // --- synchronous reads (state lock) -------------------------------------

  double forecast(std::uint32_t slot, double gap_s) const;
  mgmt::MonitoredConfig config_of(std::uint32_t slot) const;
  double calibration_of(std::uint32_t slot) const;
  bool drifted(std::uint32_t slot) const;

  /// Appends one HotspotRisk per live host (unsorted; the engine merges
  /// and sorts).
  void append_risks(double horizon_s, double threshold_c,
                    std::vector<mgmt::HotspotRisk>& out) const;

  /// Appends one HostSnapshot per live host (unsorted).
  void append_snapshots(std::vector<HostSnapshot>& out) const;

  /// Appends one accuracy row per live host (unsorted; the engine
  /// aggregates via obs::aggregate_fleet).
  void append_accuracy(std::vector<obs::HostAccuracyStats>& out) const;

 private:
  struct HostState {
    std::string host_id;
    mgmt::MonitoredConfig config;
    core::DynamicTemperaturePredictor tracker;
    core::CusumDetector drift;
    RunningStats residuals;
    obs::HostAccuracy accuracy;
    bool live = false;
  };

  /// Drains queue chunks until the queue is empty; requires the caller to
  /// have claimed drain_active_. Clears the claim and notifies flushers
  /// before returning. noexcept-in-effect: event errors are counted, never
  /// thrown.
  void drain_until_empty();

  /// Applies one event under state_mutex_.
  void apply(const QueuedEvent& event);

  /// ψ_stable for a running condition, memoized in psi_cache_ and
  /// featurized through the shard scratch buffers (no per-event
  /// allocation). Requires state_mutex_ to be held.
  double psi_stable(const mgmt::MonitoredConfig& config);

  const core::StableTemperaturePredictor* predictor_;
  const FleetEngineOptions* options_;
  ShardMetrics metrics_;

  /// guards: hosts_/live_count_/psi_cache_/psi_scratch_ — held per drain
  /// chunk by the drainer, briefly by synchronous readers (forecast,
  /// snapshot).
  mutable std::mutex state_mutex_;
  std::vector<HostState> hosts_;  ///< indexed by slot; tombstoned when !live
  std::size_t live_count_ = 0;
  PsiStableCache psi_cache_;            ///< running condition -> ψ_stable
  core::StablePredictScratch psi_scratch_;  ///< reused featurization buffers

  /// guards: queue_/queued_events_/drain_active_ (producer/drainer handoff).
  std::mutex queue_mutex_;
  /// sync: signaled under queue_mutex_ when dequeueing frees capacity
  /// (kBlock backpressure waiters).
  std::condition_variable space_available_;
  /// sync: signaled under queue_mutex_ when the queue empties and the
  /// drainer retires (flush barrier).
  std::condition_variable drained_;
  std::deque<Run> queue_;          ///< whole runs, FIFO
  std::size_t queued_events_ = 0;  ///< total events across queued runs
  bool drain_active_ = false;
};

}  // namespace vmtherm::serve
