// vmtherm/serve/event.h
//
// Plain-data vocabulary of the fleet-serving engine: host handles,
// telemetry events, forecast requests, engine options and the per-host
// snapshot record. Split from engine.h so producers that only *build*
// event streams need none of the engine machinery.

#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/dynamic_predictor.h"
#include "mgmt/monitor.h"
#include "util/error.h"
#include "util/stats.h"

namespace vmtherm::serve {

/// Dense per-process identifier of a registered host, assigned by
/// FleetEngine::register_host in registration order. Handles keep the
/// data-plane hot path free of string hashing; they are NOT stable across
/// snapshot/restore — re-resolve with FleetEngine::handle_of after a
/// restore.
using HostHandle = std::uint32_t;

inline constexpr HostHandle kInvalidHostHandle =
    std::numeric_limits<HostHandle>::max();

/// One data-plane event. Events for the same host are applied in ingestion
/// order; events for different hosts have no ordering relationship unless
/// they share a shard.
struct TelemetryEvent {
  enum class Type { kObserve, kUpdateConfig };

  Type type = Type::kObserve;
  HostHandle host = kInvalidHostHandle;
  double time_s = 0.0;
  double measured_c = 0.0;
  /// New configuration for kUpdateConfig (shared so batches stay copyable;
  /// the engine never mutates it). Must be null for kObserve.
  std::shared_ptr<const mgmt::MonitoredConfig> config;

  static TelemetryEvent observe(HostHandle host, double time_s,
                                double measured_c) {
    TelemetryEvent event;
    event.type = Type::kObserve;
    event.host = host;
    event.time_s = time_s;
    event.measured_c = measured_c;
    return event;
  }

  static TelemetryEvent update_config(HostHandle host, double time_s,
                                      double measured_c,
                                      mgmt::MonitoredConfig config) {
    TelemetryEvent event;
    event.type = Type::kUpdateConfig;
    event.host = host;
    event.time_s = time_s;
    event.measured_c = measured_c;
    event.config =
        std::make_shared<const mgmt::MonitoredConfig>(std::move(config));
    return event;
  }
};

/// One entry of a forecast_batch call.
struct ForecastRequest {
  HostHandle host = kInvalidHostHandle;
  double gap_s = 60.0;
};

/// What happens when a shard's ingestion queue is full. Each ingest call
/// delivers one *run* of events per shard, admitted atomically; the queue
/// capacity is an event-count watermark over those runs.
enum class BackpressurePolicy {
  /// ingest() blocks the producer until the backlog drops below capacity,
  /// then admits its whole run (lossless; backlog may overshoot capacity
  /// by at most one run).
  kBlock,
  /// ingest() admits events up to the remaining capacity and discards the
  /// run's tail, counting each discarded event in ingest.dropped (lossy,
  /// non-blocking).
  kDropNewest,
};

/// How queued events reach the per-shard state.
enum class DrainMode {
  /// Ingestion schedules drain tasks on the engine's thread pool (the
  /// production mode).
  kAuto,
  /// Nothing drains until flush() is called, which drains on the calling
  /// thread. Gives tests and strictly serial replays full control.
  kManual,
};

/// FleetEngine construction parameters.
struct FleetEngineOptions {
  std::size_t shards = 4;
  /// Worker threads of the engine-owned pool (0 = all hardware threads).
  std::size_t threads = 0;
  /// Per-shard ingestion queue capacity (events).
  std::size_t queue_capacity = 4096;
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
  DrainMode drain = DrainMode::kAuto;
  /// Dynamic-prediction configuration shared by every host tracker.
  core::DynamicOptions dynamic;
  /// Per-host CUSUM drift detection over observation residuals (see
  /// core/drift.h; defaults match core::OnlineTrainerOptions).
  double drift_slack_c = 0.5;
  double drift_threshold_c = 8.0;
  /// Per-shard ψ_stable memoization budget (entries): identical running
  /// conditions (server config, VM set, fans, env) reuse the cached SVR
  /// prediction instead of re-evaluating the kernel expansion. 0 disables
  /// memoization (see serve/psi_cache.h for the keying discipline).
  std::size_t psi_cache_capacity = 4096;
  /// Per-host rolling accuracy window (observations of dif = φ − ψ) kept
  /// for serve-stats / accuracy_report (see obs/accuracy.h). Runtime-only
  /// state: not part of snapshots.
  std::size_t accuracy_window = 128;

  void validate() const {
    detail::require(shards >= 1, "fleet engine needs at least one shard");
    detail::require(queue_capacity >= 1,
                    "fleet engine queue capacity must be >= 1");
    detail::require(
        backpressure != BackpressurePolicy::kBlock ||
            drain != DrainMode::kManual,
        "blocking backpressure requires auto draining (manual drains would "
        "deadlock a blocked producer)");
    detail::require(drift_slack_c >= 0.0, "drift slack must be >= 0");
    detail::require(drift_threshold_c > 0.0, "drift threshold must be > 0");
    detail::require(accuracy_window >= 1,
                    "accuracy window must hold at least one observation");
    dynamic.validate();
  }
};

/// Full per-host engine state as plain data (snapshot support).
struct HostSnapshot {
  std::string host_id;
  mgmt::MonitoredConfig config;
  core::DynamicPredictorState tracker;
  RunningStats residuals;
  double drift_positive = 0.0;
  double drift_negative = 0.0;
  bool drifted = false;
  std::size_t drift_observations = 0;
};

}  // namespace vmtherm::serve
