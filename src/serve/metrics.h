// vmtherm/serve/metrics.h
//
// Compatibility alias: the metrics registry moved to src/obs (see
// obs/metrics.h) so the tracer and accuracy tracker can publish into it
// without a serve-dependency cycle. Serve code keeps using the
// vmtherm::serve spellings below.

#pragma once

#include "obs/metrics.h"

namespace vmtherm::serve {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::MetricKind;
using obs::MetricsRegistry;

}  // namespace vmtherm::serve
