#include "serve/snapshot.h"

#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "ml/model_io.h"
#include "sim/workload.h"

namespace vmtherm::serve {

namespace {

void expect(std::istream& is, const std::string& token) {
  std::string got;
  if (!(is >> got) || got != token) {
    throw IoError("fleet snapshot: expected token '" + token + "', got '" +
                  got + "'");
  }
}

template <typename T>
T read_value(std::istream& is, const char* what) {
  T v{};
  if (!(is >> v)) {
    throw IoError(std::string("fleet snapshot: bad ") + what);
  }
  return v;
}

/// Element-count fields cap out well above any real fleet so a corrupted
/// count fails with IoError instead of driving a std::vector allocation
/// into length_error/bad_alloc.
std::size_t read_count_capped(std::istream& is, const char* what,
                              std::size_t cap) {
  const auto v = read_value<std::size_t>(is, what);
  if (v > cap) {
    throw IoError(std::string("fleet snapshot: implausible ") + what + " (" +
                  std::to_string(v) + " > " + std::to_string(cap) + ")");
  }
  return v;
}

constexpr std::size_t kMaxVmsPerHost = 1u << 16;
constexpr std::size_t kMaxHistogramBounds = 1u << 16;

bool read_flag(std::istream& is, const char* what) {
  const int v = read_value<int>(is, what);
  if (v != 0 && v != 1) {
    throw IoError(std::string("fleet snapshot: flag ") + what +
                  " must be 0 or 1");
  }
  return v == 1;
}

std::string read_token(std::istream& is, const char* what) {
  std::string v;
  if (!(is >> v)) {
    throw IoError(std::string("fleet snapshot: bad ") + what);
  }
  return v;
}

void require_token_safe(const std::string& s, const char* what) {
  if (s.empty() || s.find_first_of(" \t\r\n") != std::string::npos) {
    throw IoError(std::string("fleet snapshot: ") + what +
                  " must be non-empty and whitespace-free: '" + s + "'");
  }
}

void save_host(std::ostream& os, const HostSnapshot& host) {
  os << "host " << host.host_id << " fans " << host.config.fans << " env "
     << host.config.env_temp_c << " vms " << host.config.vms.size() << "\n";
  for (const sim::VmConfig& vm : host.config.vms) {
    os << "vm " << sim::task_type_name(vm.task) << " " << vm.vcpus << " "
       << vm.memory_gb << "\n";
  }
  const sim::ServerSpec& s = host.config.server;
  require_token_safe(s.name, "server name");
  os << "server " << s.name << " " << s.physical_cores << " " << s.core_ghz
     << " " << s.memory_gb << " " << s.fan_slots << " " << s.power.idle_watts
     << " " << s.power.max_cpu_watts << " " << s.power.cpu_exponent << " "
     << s.power.memory_watts_per_gb << " "
     << s.thermal.die_capacitance_j_per_k << " "
     << s.thermal.sink_capacitance_j_per_k << " "
     << s.thermal.die_to_sink_resistance << " "
     << s.thermal.sink_to_ambient_resistance << " "
     << s.thermal.reference_fans << " " << s.thermal.fan_exponent << "\n";
  const core::DynamicPredictorState& t = host.tracker;
  os << "tracker " << (t.started ? 1 : 0) << " " << t.t0 << " " << t.gamma
     << " " << t.last_update_s << " " << t.last_observed_s << " " << t.phi0
     << " " << t.psi_stable << "\n";
  const RunningStats& r = host.residuals;
  os << "resid " << r.count() << " " << r.mean() << " "
     << r.sum_squared_deviations() << " " << r.min() << " " << r.max()
     << "\n";
  os << "cusum " << host.drift_positive << " " << host.drift_negative << " "
     << (host.drifted ? 1 : 0) << " " << host.drift_observations << "\n";
}

HostSnapshot load_host(std::istream& is) {
  HostSnapshot host;
  expect(is, "host");
  host.host_id = read_token(is, "host id");
  expect(is, "fans");
  host.config.fans = read_value<int>(is, "fan count");
  expect(is, "env");
  host.config.env_temp_c = read_value<double>(is, "env temperature");
  expect(is, "vms");
  const auto vm_count = read_count_capped(is, "vm count", kMaxVmsPerHost);
  host.config.vms.reserve(vm_count);
  for (std::size_t i = 0; i < vm_count; ++i) {
    expect(is, "vm");
    sim::VmConfig vm;
    vm.task = sim::task_type_from_name(read_token(is, "vm task"));
    vm.vcpus = read_value<int>(is, "vm vcpus");
    vm.memory_gb = read_value<double>(is, "vm memory");
    host.config.vms.push_back(vm);
  }
  expect(is, "server");
  sim::ServerSpec& s = host.config.server;
  s.name = read_token(is, "server name");
  s.physical_cores = read_value<int>(is, "physical cores");
  s.core_ghz = read_value<double>(is, "core ghz");
  s.memory_gb = read_value<double>(is, "server memory");
  s.fan_slots = read_value<int>(is, "fan slots");
  s.power.idle_watts = read_value<double>(is, "idle watts");
  s.power.max_cpu_watts = read_value<double>(is, "max cpu watts");
  s.power.cpu_exponent = read_value<double>(is, "cpu exponent");
  s.power.memory_watts_per_gb = read_value<double>(is, "memory watts");
  s.thermal.die_capacitance_j_per_k = read_value<double>(is, "C_die");
  s.thermal.sink_capacitance_j_per_k = read_value<double>(is, "C_sink");
  s.thermal.die_to_sink_resistance = read_value<double>(is, "R_ds");
  s.thermal.sink_to_ambient_resistance = read_value<double>(is, "R_sa");
  s.thermal.reference_fans = read_value<int>(is, "reference fans");
  s.thermal.fan_exponent = read_value<double>(is, "fan exponent");
  expect(is, "tracker");
  host.tracker.started = read_flag(is, "tracker started");
  host.tracker.t0 = read_value<double>(is, "tracker t0");
  host.tracker.gamma = read_value<double>(is, "tracker gamma");
  host.tracker.last_update_s = read_value<double>(is, "tracker last update");
  host.tracker.last_observed_s =
      read_value<double>(is, "tracker last observed");
  host.tracker.phi0 = read_value<double>(is, "tracker phi0");
  host.tracker.psi_stable = read_value<double>(is, "tracker psi_stable");
  expect(is, "resid");
  const auto n = read_value<std::size_t>(is, "residual count");
  const auto mean = read_value<double>(is, "residual mean");
  const auto m2 = read_value<double>(is, "residual m2");
  const auto min = read_value<double>(is, "residual min");
  const auto max = read_value<double>(is, "residual max");
  try {
    host.residuals = RunningStats::from_parts(n, mean, m2, min, max);
  } catch (const ConfigError& e) {
    throw IoError(std::string("fleet snapshot: ") + e.what());
  }
  expect(is, "cusum");
  host.drift_positive = read_value<double>(is, "cusum positive");
  host.drift_negative = read_value<double>(is, "cusum negative");
  host.drifted = read_flag(is, "cusum drifted");
  host.drift_observations = read_value<std::size_t>(is, "cusum count");
  return host;
}

}  // namespace

void save_fleet(std::ostream& os, FleetEngine& engine) {
  engine.flush();
  os << std::setprecision(17);
  os << "vmtherm_fleet v1\n";
  const FleetEngineOptions& opt = engine.options();
  os << "dynamic " << opt.dynamic.learning_rate << " "
     << opt.dynamic.update_interval_s << " " << opt.dynamic.t_break_s << " "
     << opt.dynamic.curvature << " " << (opt.dynamic.calibration_enabled ? 1 : 0)
     << " " << (opt.dynamic.retain_calibration_on_retarget ? 1 : 0) << "\n";
  os << "drift " << opt.drift_slack_c << " " << opt.drift_threshold_c << "\n";
  ml::save_scaler(os, engine.stable_predictor().scaler());
  ml::save_svr(os, engine.stable_predictor().model());
  os << std::setprecision(17);

  const std::vector<HostSnapshot> hosts = engine.export_hosts();
  os << "hosts " << hosts.size() << "\n";
  for (const HostSnapshot& host : hosts) save_host(os, host);

  // Deterministic counters and histograms only: timing metrics are
  // wall-clock artifacts of the saved process, and gauges (fleet size)
  // re-derive from the imported hosts.
  std::size_t metric_count = 0;
  std::ostringstream metrics;
  metrics << std::setprecision(17);
  engine.metrics().for_each_counter(
      [&](const std::string& name, MetricKind kind, const Counter& counter) {
        if (kind != MetricKind::kDeterministic) return;
        require_token_safe(name, "metric name");
        metrics << "counter " << name << " " << counter.value() << "\n";
        ++metric_count;
      });
  engine.metrics().for_each_histogram(
      [&](const std::string& name, MetricKind kind, const Histogram& hist) {
        if (kind != MetricKind::kDeterministic) return;
        require_token_safe(name, "metric name");
        metrics << "hist " << name << " " << hist.upper_bounds().size();
        for (const double bound : hist.upper_bounds()) {
          metrics << " " << bound;
        }
        for (std::size_t i = 0; i < hist.bucket_count(); ++i) {
          metrics << " " << hist.count_in_bucket(i);
        }
        metrics << "\n";
        ++metric_count;
      });
  os << "metrics " << metric_count << "\n" << metrics.str();
  os << "end\n";
  if (!os) throw IoError("fleet snapshot: write failed");
}

std::unique_ptr<FleetEngine> load_fleet(std::istream& is,
                                        FleetEngineOptions options) {
  expect(is, "vmtherm_fleet");
  expect(is, "v1");
  expect(is, "dynamic");
  options.dynamic.learning_rate = read_value<double>(is, "learning rate");
  options.dynamic.update_interval_s =
      read_value<double>(is, "update interval");
  options.dynamic.t_break_s = read_value<double>(is, "t_break");
  options.dynamic.curvature = read_value<double>(is, "curvature");
  options.dynamic.calibration_enabled = read_flag(is, "calibration flag");
  options.dynamic.retain_calibration_on_retarget =
      read_flag(is, "retain-calibration flag");
  expect(is, "drift");
  options.drift_slack_c = read_value<double>(is, "drift slack");
  options.drift_threshold_c = read_value<double>(is, "drift threshold");

  ml::MinMaxScaler scaler = ml::load_scaler(is);
  ml::SvrModel model = ml::load_svr(is);
  auto engine = std::make_unique<FleetEngine>(
      core::StableTemperaturePredictor(std::move(scaler), std::move(model)),
      options);

  expect(is, "hosts");
  const auto host_count = read_value<std::size_t>(is, "host count");
  for (std::size_t i = 0; i < host_count; ++i) {
    engine->import_host(load_host(is));
  }

  expect(is, "metrics");
  const auto metric_count = read_value<std::size_t>(is, "metric count");
  for (std::size_t i = 0; i < metric_count; ++i) {
    const std::string family = read_token(is, "metric family");
    if (family == "counter") {
      const std::string name = read_token(is, "counter name");
      engine->metrics().counter(name).set(
          read_value<std::uint64_t>(is, "counter value"));
    } else if (family == "hist") {
      const std::string name = read_token(is, "histogram name");
      const auto n_bounds =
          read_count_capped(is, "histogram bounds", kMaxHistogramBounds);
      std::vector<double> bounds(n_bounds);
      for (double& bound : bounds) {
        bound = read_value<double>(is, "histogram bound");
      }
      std::vector<std::uint64_t> counts(n_bounds + 1);
      for (std::uint64_t& count : counts) {
        count = read_value<std::uint64_t>(is, "histogram count");
      }
      try {
        engine->metrics().histogram(name, std::move(bounds)).set_counts(counts);
      } catch (const ConfigError& e) {
        throw IoError(std::string("fleet snapshot: ") + e.what());
      }
    } else {
      throw IoError("fleet snapshot: unknown metric family '" + family + "'");
    }
  }
  expect(is, "end");
  return engine;
}

void save_fleet_file(const std::string& path, FleetEngine& engine) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot create fleet snapshot file: " + path);
  save_fleet(out, engine);
}

std::unique_ptr<FleetEngine> load_fleet_file(const std::string& path,
                                             FleetEngineOptions options) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open fleet snapshot file: " + path);
  return load_fleet(in, std::move(options));
}

}  // namespace vmtherm::serve
