// vmtherm/serve/psi_cache.h
//
// Running-condition-keyed memoization of ψ_stable predictions. The key is
// the raw (unscaled) Eq. (2) feature vector of a host's running condition
// — server spec, VM set, fan count, environment temperature — which is the
// complete input of the stable predictor, so a hit returns exactly the
// value a fresh SVR evaluation would produce. An identical server
// config/VM set/environment therefore costs one hash probe instead of a
// full kernel expansion over every support vector.
//
// Keying discipline: keys hash and compare BITWISE (FNV-1a over the
// double bit patterns, equality over the same bits). Value semantics
// would be wrong here: -0.0 == 0.0 yet the two can scale to different SVR
// inputs downstream of a min-max range edge, and bitwise keying keeps
// hash/equality trivially consistent.
//
// Eviction: generational clear-on-full. When the table reaches its entry
// budget the whole generation is dropped (slot buffers keep their
// capacity, so a steady-state cache allocates nothing per event). Entries
// can never go stale within an engine: the predictor is immutable for the
// engine's lifetime and the key captures every prediction input.
//
// Thread safety: none — each Shard owns one cache and accesses it under
// its state mutex, exactly like the host table it sits next to.

#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace vmtherm::serve {

/// Fixed-budget open-addressing map: feature-vector bits -> ψ_stable.
/// A zero-capacity cache is valid and never hits (memoization disabled).
class PsiStableCache {
 public:
  explicit PsiStableCache(std::size_t capacity) {
    if (capacity == 0) return;
    // Slot count: next power of two holding `capacity` entries under a
    // 1/2 load factor, so probe chains stay short near the clear point.
    std::size_t slots = 2;
    while (slots < capacity * 2) slots *= 2;
    slots_.resize(slots);
    mask_ = slots - 1;
    budget_ = capacity;
  }

  /// Pointer to the memoized value for `key`, or nullptr on a miss. The
  /// pointer is invalidated by the next insert().
  const double* find(std::span<const double> key) const noexcept {
    if (budget_ == 0) return nullptr;
    const std::uint64_t h = hash_bits(key);
    for (std::size_t i = h & mask_;; i = (i + 1) & mask_) {
      const Slot& slot = slots_[i];
      if (!slot.used) return nullptr;
      if (slot.hash == h && keys_equal(slot.key, key)) return &slot.value;
    }
  }

  /// Memoizes `value` for `key`. On reaching the entry budget the current
  /// generation is cleared first (capacity of the slot buffers is kept).
  /// Inserting a key that is already present is a no-op — the memoized
  /// value is authoritative for the engine's lifetime.
  void insert(std::span<const double> key, double value) {
    if (budget_ == 0) return;
    if (size_ >= budget_) clear();
    const std::uint64_t h = hash_bits(key);
    for (std::size_t i = h & mask_;; i = (i + 1) & mask_) {
      Slot& slot = slots_[i];
      if (!slot.used) {
        slot.used = true;
        slot.hash = h;
        slot.key.assign(key.begin(), key.end());
        slot.value = value;
        ++size_;
        return;
      }
      if (slot.hash == h && keys_equal(slot.key, key)) return;
    }
  }

  /// Drops every entry; slot key buffers keep their capacity.
  void clear() noexcept {
    for (Slot& slot : slots_) {
      slot.used = false;
      slot.key.clear();
    }
    size_ = 0;
  }

  std::size_t size() const noexcept { return size_; }
  std::size_t capacity() const noexcept { return budget_; }

 private:
  struct Slot {
    std::uint64_t hash = 0;
    std::vector<double> key;
    double value = 0.0;
    bool used = false;
  };

  /// FNV-1a over the key's double bit patterns.
  static std::uint64_t hash_bits(std::span<const double> key) noexcept {
    std::uint64_t h = 14695981039346656037ull;
    for (const double v : key) {
      std::uint64_t bits = std::bit_cast<std::uint64_t>(v);
      for (int byte = 0; byte < 8; ++byte) {
        h = (h ^ (bits & 0xffu)) * 1099511628211ull;
        bits >>= 8;
      }
    }
    return h;
  }

  /// Bitwise equality, consistent with hash_bits (unlike operator== on
  /// doubles, which conflates -0.0/0.0 and breaks on NaN).
  static bool keys_equal(const std::vector<double>& a,
                         std::span<const double> b) noexcept {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (std::bit_cast<std::uint64_t>(a[i]) !=
          std::bit_cast<std::uint64_t>(b[i])) {
        return false;
      }
    }
    return true;
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t budget_ = 0;  ///< max entries before a generational clear
  std::size_t size_ = 0;
};

}  // namespace vmtherm::serve
