// vmtherm/serve/replay.h
//
// Deterministic fleet replay: synthesize a fleet of simulated hosts
// (ScenarioSampler + run_experiment), pump their temperature traces through
// a FleetEngine step by step, and fold every forecast's exact bit pattern
// into an FNV-1a digest. Because the engine is deterministic in the logical
// event stream, the digest — and the deterministic metrics JSON — are
// identical for a fixed (seed, hosts, steps) at ANY shard/thread count;
// the replay tests and the `vmtherm serve-replay` subcommand rely on this.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/stable_predictor.h"
#include "serve/engine.h"

namespace vmtherm::serve {

/// Replay configuration.
struct ReplayOptions {
  std::size_t hosts = 32;          ///< fleet size
  std::size_t steps = 120;         ///< observe events pumped per host
  double sample_interval_s = 5.0;  ///< trace sampling interval
  double gap_s = 60.0;             ///< forecast gap Δ_gap
  double horizon_s = 60.0;         ///< final hotspot-scan horizon
  double threshold_c = 75.0;       ///< hotspot threshold
  std::uint64_t seed = 1;          ///< scenario sampler seed
  /// Every `churn_every` steps one host (round-robin) receives an
  /// update_config event cycling its active fan count (0 = no churn).
  std::size_t churn_every = 0;
  /// Engine knobs (shards/threads/queue/backpressure/drain are taken from
  /// here; dynamic/drift defaults apply).
  FleetEngineOptions engine;

  void validate() const;
};

/// Replay outcome. Move-only: carries the engine for snapshotting and
/// further inspection.
struct ReplayReport {
  std::size_t hosts = 0;
  std::size_t steps = 0;
  std::uint64_t events_ingested = 0;
  /// FNV-1a fold of every per-step forecast's IEEE-754 bit pattern, in
  /// (step, host) order. Equal digests mean bitwise-equal forecast streams.
  std::uint64_t forecast_digest = 0;
  /// Final fleet-wide scan, hottest first.
  std::vector<mgmt::HotspotRisk> risks;
  /// Deterministic metrics subset (to_json(include_timing=false)).
  std::string metrics_json;
  std::unique_ptr<FleetEngine> engine;
};

/// Runs the replay. Deterministic given `options` (including at any
/// shards/threads setting). Throws ConfigError on invalid options.
ReplayReport run_fleet_replay(core::StableTemperaturePredictor predictor,
                              const ReplayOptions& options);

/// Stable host naming used by the replay fleet: "host-0000", "host-0001"...
std::string replay_host_id(std::size_t index);

}  // namespace vmtherm::serve
