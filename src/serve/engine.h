// vmtherm/serve/engine.h
//
// FleetEngine: the sharded, internally synchronized fleet-serving engine.
// Hosts are partitioned across N shards by a stable FNV-1a hash of their
// id; each shard owns a bounded MPSC ingestion queue plus its hosts'
// calibrated dynamic predictors, and drains on a shared util::ThreadPool —
// per-host event ordering is preserved (a shard has at most one active
// drainer) while cross-shard processing is fully parallel.
//
// Results are bitwise-deterministic in the logical event stream: for a
// fixed per-host event sequence, forecasts, hotspot scans, snapshots and
// every kDeterministic metric are identical at any shard/thread count
// (per-host state only ever depends on that host's own events). See
// DESIGN.md §7 for the ordering and backpressure contract.
//
// This is the one *internally synchronized* service façade in the library
// (DESIGN.md §6); ThermalMonitorService remains the externally
// synchronized single-control-plane variant.

#pragma once

#include <iosfwd>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/stable_predictor.h"
#include "obs/accuracy.h"
#include "serve/event.h"
#include "serve/metrics.h"
#include "serve/shard.h"
#include "util/thread_pool.h"

namespace vmtherm::serve {

class FleetEngine {
 public:
  /// The engine copies the predictor; shards share it read-only
  /// (SvrModel::predict is const and touches no mutable state).
  explicit FleetEngine(core::StableTemperaturePredictor predictor,
                       FleetEngineOptions options = {});

  /// Drains every queue before destruction (no event is lost).
  ~FleetEngine();

  FleetEngine(const FleetEngine&) = delete;
  FleetEngine& operator=(const FleetEngine&) = delete;

  // --- control plane ------------------------------------------------------
  // Synchronous and internally synchronized. Ordering caveat: a synchronous
  // control-plane call takes effect immediately, *before* any still-queued
  // telemetry drains; call flush() first when that ordering matters.

  /// Registers a host and returns its handle. Host ids must be non-empty,
  /// whitespace-free (snapshot format tokens) and unique; throws
  /// ConfigError otherwise.
  HostHandle register_host(const std::string& host_id,
                           mgmt::MonitoredConfig config, double t0,
                           double measured_c);

  /// Unregisters; queued events still addressed to the handle are counted
  /// as apply errors when they drain. Throws ConfigError when unknown.
  void unregister_host(HostHandle handle);

  /// Handle lookup; returns kInvalidHostHandle when unknown/unregistered.
  HostHandle handle_of(const std::string& host_id) const;
  bool has_host(const std::string& host_id) const;
  std::size_t host_count() const;

  std::size_t shard_count() const noexcept { return shards_.size(); }

  /// Stable shard assignment: fnv1a64(host_id) % shards.
  std::size_t shard_of(const std::string& host_id) const noexcept;

  // --- data plane ---------------------------------------------------------

  /// Enqueues one event. Throws ConfigError on an invalid handle; delivery
  /// then follows the backpressure policy (block or drop + count).
  void ingest(TelemetryEvent event);

  /// Enqueues a batch: events are grouped per shard with one lock
  /// acquisition per shard run, preserving the batch's relative order
  /// within each shard. Throws ConfigError if any handle is invalid (no
  /// event of the batch is enqueued in that case).
  void ingest_batch(std::vector<TelemetryEvent> events);

  /// Barrier: returns once every event ingested before the call has been
  /// applied. In manual drain mode this drains on the calling thread.
  void flush();

  // --- queries ------------------------------------------------------------
  // Safe to call concurrently with ingestion; for deterministic results
  // relative to the event stream, flush() first.

  double forecast(HostHandle handle, double gap_s) const;

  /// Batched forecasting: requests are grouped per shard and evaluated in
  /// parallel on the pool, results land in request order.
  std::vector<double> forecast_batch(
      const std::vector<ForecastRequest>& requests) const;

  /// Fleet-wide risk scan, parallel over shards. Rows sorted hottest
  /// first, host id ascending on ties (deterministic merge).
  std::vector<mgmt::HotspotRisk> hotspot_scan(double horizon_s,
                                              double threshold_c) const;

  mgmt::MonitoredConfig config_of(HostHandle handle) const;
  double calibration_of(HostHandle handle) const;
  bool drifted(HostHandle handle) const;

  /// Live host states sorted by host id (snapshot support; deterministic
  /// output at any shard count).
  std::vector<HostSnapshot> export_hosts() const;

  /// Re-creates a host from a snapshot with its exact tracker/drift state
  /// (no begin()); same id rules as register_host.
  HostHandle import_host(const HostSnapshot& snapshot);

  /// Prediction-quality telemetry: per-host rolling dif = φ − ψ windows
  /// (MSE/MAE, γ and its in-window drift, CUSUM sums) plus fleet-wide
  /// aggregates, ψ_stable cache traffic and the queue high-water mark.
  /// Rows are sorted by host id; aggregates merge in host-id order, so the
  /// report is deterministic at any shard/thread count once flushed.
  obs::FleetAccuracyStats accuracy_report() const;

  MetricsRegistry& metrics() noexcept { return metrics_; }
  const MetricsRegistry& metrics() const noexcept { return metrics_; }
  const core::StableTemperaturePredictor& stable_predictor() const noexcept {
    return predictor_;
  }
  const FleetEngineOptions& options() const noexcept { return options_; }

 private:
  struct Route {
    std::uint32_t shard = 0;
    std::uint32_t slot = 0;
    bool live = false;
  };

  HostHandle add_route(const std::string& host_id, std::uint32_t shard,
                       std::uint32_t slot);
  Route route_of(HostHandle handle) const;

  core::StableTemperaturePredictor predictor_;
  FleetEngineOptions options_;
  MetricsRegistry metrics_;
  ShardMetrics shard_metrics_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// mutable: const queries (forecast_batch, hotspot_scan) parallelize on
  /// the pool without mutating engine state.
  mutable util::ThreadPool pool_;

  /// guards: routes_/names_ — shared for the per-event hot path,
  /// exclusive for (un)registration.
  mutable std::shared_mutex routes_mutex_;
  std::vector<Route> routes_;  ///< indexed by handle
  std::unordered_map<std::string, HostHandle> names_;

  Counter* batches_ = nullptr;
  Counter* forecasts_ = nullptr;
  Counter* scans_ = nullptr;
  Gauge* hosts_gauge_ = nullptr;
  Histogram* forecast_batch_us_ = nullptr;
};

}  // namespace vmtherm::serve
