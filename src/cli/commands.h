// vmtherm/cli/commands.h
//
// The vmtherm command-line tool, as a library so tests can drive it.
//
//   vmtherm simulate  --count 400 --seed 42 --out records.csv
//   vmtherm train     --data records.csv --model model.txt [--fast]
//   vmtherm evaluate  --model model.txt --data test.csv
//   vmtherm predict   --model model.txt --server medium --fans 4 --env 23
//                     --vm cpu_burn:4:8 --vm web_server:2:4
//   vmtherm tbreak    --count 16 --seed 7 --fans 4
//   vmtherm serve-replay --model model.txt --hosts 64 --steps 120
//                     --shards 4 [--snapshot fleet.txt] [--json]
//   vmtherm serve-stats  --model model.txt --hosts 64 --steps 120
//                     --window 128 [--top 10] [--json]
//   vmtherm trace     --model model.txt --hosts 64 --steps 120
//                     --out trace.json
//   vmtherm help [command]

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace vmtherm::cli {

/// Runs the CLI. `args` excludes the program name (so {"train", "--data",
/// ...}). Normal output goes to `out`, errors to `err`. Returns the process
/// exit code (0 success, 1 user error, 2 internal error).
int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err);

/// Parses a "--vm task:vcpus:memory_gb" specification, e.g. "cpu_burn:4:8".
/// Exposed for tests. Throws ConfigError on malformed specs.
struct VmSpecParts {
  std::string task;
  int vcpus = 0;
  double memory_gb = 0.0;
};
VmSpecParts parse_vm_spec(const std::string& spec);

}  // namespace vmtherm::cli
