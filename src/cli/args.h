// vmtherm/cli/args.h
//
// Minimal declarative command-line argument parsing for the vmtherm CLI.
// Long options only (--name value / --name=value / boolean --flag),
// repeatable options (e.g. --vm, once per VM), usage-text generation.

#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/error.h"

namespace vmtherm::cli {

/// Declaration of one option.
struct OptionSpec {
  std::string name;         ///< without the leading "--"
  std::string description;
  bool required = false;
  bool is_flag = false;     ///< boolean switch (takes no value)
  bool repeatable = false;  ///< may appear multiple times (values collected)
  std::string default_value;  ///< used when absent and not required
};

/// Convenience maker (avoids partially-initialized aggregate warnings and
/// reads better at call sites).
inline OptionSpec make_option(std::string name, std::string description,
                              bool required = false, bool is_flag = false,
                              bool repeatable = false,
                              std::string default_value = {}) {
  OptionSpec opt;
  opt.name = std::move(name);
  opt.description = std::move(description);
  opt.required = required;
  opt.is_flag = is_flag;
  opt.repeatable = repeatable;
  opt.default_value = std::move(default_value);
  return opt;
}

/// Parsed arguments for one command.
class ParsedArgs {
 public:
  ParsedArgs(std::map<std::string, std::vector<std::string>> values,
             std::map<std::string, OptionSpec> specs);

  bool has(const std::string& name) const;

  /// Single string value (last occurrence wins for non-repeatable);
  /// falls back to the declared default. Throws ConfigError for undeclared
  /// names (programmer error).
  std::string get(const std::string& name) const;

  /// All values of a repeatable option (empty if absent).
  std::vector<std::string> get_all(const std::string& name) const;

  /// Typed conveniences; throw ConfigError on unparseable values.
  double get_double(const std::string& name) const;
  long get_long(const std::string& name) const;
  bool get_flag(const std::string& name) const;

 private:
  std::map<std::string, std::vector<std::string>> values_;
  std::map<std::string, OptionSpec> specs_;
};

/// One command's schema.
class CommandSpec {
 public:
  CommandSpec(std::string name, std::string summary);

  CommandSpec& add(OptionSpec option);

  const std::string& name() const noexcept { return name_; }
  const std::string& summary() const noexcept { return summary_; }

  /// Parses `args` (tokens after the command name). Throws ConfigError on
  /// unknown options, missing required options, missing values or
  /// duplicate non-repeatable options.
  ParsedArgs parse(const std::vector<std::string>& args) const;

  /// Usage text for --help.
  std::string usage() const;

 private:
  std::string name_;
  std::string summary_;
  std::vector<OptionSpec> options_;
};

}  // namespace vmtherm::cli
