// Entry point of the vmtherm command-line tool.

#include <iostream>
#include <string>
#include <vector>

#include "cli/commands.h"

int main(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return vmtherm::cli::run_cli(args, std::cout, std::cerr);
}
