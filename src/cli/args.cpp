#include "cli/args.h"

#include <sstream>

namespace vmtherm::cli {

ParsedArgs::ParsedArgs(std::map<std::string, std::vector<std::string>> values,
                       std::map<std::string, OptionSpec> specs)
    : values_(std::move(values)), specs_(std::move(specs)) {}

bool ParsedArgs::has(const std::string& name) const {
  return values_.find(name) != values_.end();
}

std::string ParsedArgs::get(const std::string& name) const {
  const auto spec = specs_.find(name);
  detail::require(spec != specs_.end(), "undeclared option queried: " + name);
  const auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) {
    return spec->second.default_value;
  }
  return it->second.back();
}

std::vector<std::string> ParsedArgs::get_all(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return {};
  return it->second;
}

double ParsedArgs::get_double(const std::string& name) const {
  const std::string value = get(name);
  try {
    std::size_t consumed = 0;
    const double v = std::stod(value, &consumed);
    detail::require(consumed == value.size(), "trailing characters");
    return v;
  } catch (const std::exception&) {
    throw ConfigError("option --" + name + ": expected a number, got '" +
                      value + "'");
  }
}

long ParsedArgs::get_long(const std::string& name) const {
  const std::string value = get(name);
  try {
    std::size_t consumed = 0;
    const long v = std::stol(value, &consumed);
    detail::require(consumed == value.size(), "trailing characters");
    return v;
  } catch (const std::exception&) {
    throw ConfigError("option --" + name + ": expected an integer, got '" +
                      value + "'");
  }
}

bool ParsedArgs::get_flag(const std::string& name) const { return has(name); }

CommandSpec::CommandSpec(std::string name, std::string summary)
    : name_(std::move(name)), summary_(std::move(summary)) {}

CommandSpec& CommandSpec::add(OptionSpec option) {
  options_.push_back(std::move(option));
  return *this;
}

ParsedArgs CommandSpec::parse(const std::vector<std::string>& args) const {
  std::map<std::string, OptionSpec> specs;
  for (const auto& opt : options_) specs[opt.name] = opt;

  std::map<std::string, std::vector<std::string>> values;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& token = args[i];
    detail::require(token.rfind("--", 0) == 0,
                    "expected an option, got '" + token + "'");
    std::string name = token.substr(2);
    std::optional<std::string> inline_value;
    const auto eq = name.find('=');
    if (eq != std::string::npos) {
      inline_value = name.substr(eq + 1);
      name = name.substr(0, eq);
    }

    const auto spec_it = specs.find(name);
    detail::require(spec_it != specs.end(), "unknown option --" + name);
    const OptionSpec& spec = spec_it->second;

    std::string value;
    if (spec.is_flag) {
      detail::require(!inline_value.has_value(),
                      "option --" + name + " takes no value");
      value = "true";
    } else if (inline_value.has_value()) {
      value = *inline_value;
    } else {
      detail::require(i + 1 < args.size(),
                      "option --" + name + " needs a value");
      value = args[++i];
    }

    auto& bucket = values[name];
    detail::require(spec.repeatable || bucket.empty(),
                    "option --" + name + " given more than once");
    bucket.push_back(std::move(value));
  }

  for (const auto& opt : options_) {
    detail::require(!opt.required || values.find(opt.name) != values.end(),
                    "missing required option --" + opt.name);
  }
  return ParsedArgs(std::move(values), std::move(specs));
}

std::string CommandSpec::usage() const {
  std::ostringstream oss;
  oss << "vmtherm " << name_ << " - " << summary_ << "\n\noptions:\n";
  for (const auto& opt : options_) {
    oss << "  --" << opt.name;
    if (!opt.is_flag) oss << " <value>";
    if (opt.required) oss << "  (required)";
    else if (!opt.default_value.empty()) {
      oss << "  (default: " << opt.default_value << ")";
    }
    if (opt.repeatable) oss << "  (repeatable)";
    oss << "\n      " << opt.description << "\n";
  }
  return oss.str();
}

}  // namespace vmtherm::cli
