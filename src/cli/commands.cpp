#include "cli/commands.h"

#include <iostream>
#include <map>
#include <ostream>

#include <iomanip>
#include <sstream>

#include <fstream>

#include "cli/args.h"
#include "core/evaluator.h"
#include "core/record_store.h"
#include "core/tbreak.h"
#include "obs/chrome_trace.h"
#include "obs/trace.h"
#include "serve/replay.h"
#include "serve/snapshot.h"
#include "util/json.h"
#include "util/stats.h"
#include "util/table.h"

namespace vmtherm::cli {

namespace {

CommandSpec simulate_spec() {
  CommandSpec spec("simulate",
                   "run randomized profiling experiments on the simulated "
                   "testbed and write Eq.(2) records as CSV");
  spec.add(make_option("count", "number of experiments to run", true));
  spec.add(make_option("out", "output records CSV path", true));
  spec.add(make_option("seed", "random seed", false, false, false, "42"));
  spec.add(make_option("duration", "experiment duration t_exp in seconds", false, false,
            false, "1800"));
  spec.add(make_option("min-vms", "minimum VMs per experiment", false, false, false, "2"));
  spec.add(make_option("max-vms", "maximum VMs per experiment", false, false, false,
            "12"));
  spec.add(make_option("fans", "pin the fan count (0 = randomize 1..6)", false, false,
            false, "0"));
  return spec;
}

CommandSpec train_spec() {
  CommandSpec spec("train",
                   "train the stable-temperature SVR from a records CSV "
                   "(grid search + 10-fold CV, like the paper)");
  spec.add(make_option("data", "training records CSV", true));
  spec.add(make_option("model", "output model path", true));
  spec.add(make_option("folds", "cross-validation folds", false, false, false, "10"));
  spec.add(make_option("threads",
            "threads for the grid search (0 = all hardware threads); the "
            "result does not depend on this", false, false, false, "1"));
  spec.add(make_option("fast", "skip the grid search (fixed good parameters)", false,
            true));
  return spec;
}

CommandSpec evaluate_spec() {
  CommandSpec spec("evaluate",
                   "score a trained model against labelled records");
  spec.add(make_option("model", "trained model path", true));
  spec.add(make_option("data", "test records CSV", true));
  return spec;
}

CommandSpec predict_spec() {
  CommandSpec spec("predict",
                   "predict the stable CPU temperature of a placement");
  spec.add(make_option("model", "trained model path", true));
  spec.add(make_option("server", "server kind: small | medium | large", true));
  spec.add(make_option("fans", "active fans", true));
  spec.add(make_option("env", "environment temperature in deg C", true));
  spec.add(make_option("vm", "VM spec task:vcpus:memory_gb (e.g. cpu_burn:4:8)", false,
            false, true));
  return spec;
}

CommandSpec tbreak_spec() {
  CommandSpec spec("tbreak",
                   "deduce t_break from settling times of randomized "
                   "experiments");
  spec.add(make_option("count", "number of experiments", false, false, false, "16"));
  spec.add(make_option("seed", "random seed", false, false, false, "7"));
  spec.add(make_option("fans", "pin the fan count (0 = randomize)", false, false, false,
            "4"));
  spec.add(make_option("band", "stability band in deg C", false, false, false, "2.0"));
  spec.add(make_option("quantile", "settling-time quantile to recommend", false, false,
            false, "0.5"));
  return spec;
}

CommandSpec dynamic_spec() {
  CommandSpec spec("dynamic",
                   "evaluate online dynamic prediction (Eqs. 4-8) on a "
                   "randomized VM-churn scenario, with and without "
                   "calibration");
  spec.add(make_option("model", "trained model path", true));
  spec.add(make_option("seed", "scenario seed", false, false, false, "1"));
  spec.add(make_option("gap", "prediction gap in seconds", false, false,
                       false, "60"));
  spec.add(make_option("update", "calibration update interval in seconds",
                       false, false, false, "15"));
  spec.add(make_option("lambda", "calibration learning rate", false, false,
                       false, "0.8"));
  spec.add(make_option("fans", "server fans", false, false, false, "4"));
  return spec;
}

/// Replay knobs shared by serve-replay, trace and serve-stats: one spec
/// helper and one parse helper so the three commands can't drift apart.
void add_replay_options(CommandSpec& spec) {
  spec.add(make_option("model", "trained model path", true));
  spec.add(make_option("hosts", "fleet size", false, false, false, "32"));
  spec.add(make_option("steps", "observe events per host", false, false,
                       false, "120"));
  spec.add(make_option("interval", "trace sampling interval in seconds",
                       false, false, false, "5"));
  spec.add(make_option("gap", "forecast gap in seconds", false, false, false,
                       "60"));
  spec.add(make_option("horizon", "hotspot-scan horizon in seconds", false,
                       false, false, "60"));
  spec.add(make_option("threshold", "hotspot threshold in deg C", false,
                       false, false, "75"));
  spec.add(make_option("shards", "engine shard count", false, false, false,
                       "4"));
  spec.add(make_option("threads", "engine worker threads (0 = hardware)",
                       false, false, false, "0"));
  spec.add(make_option("queue-capacity", "per-shard queue capacity", false,
                       false, false, "4096"));
  spec.add(make_option("seed", "scenario seed", false, false, false, "1"));
  spec.add(make_option("churn-every",
                       "config-churn period in steps (0 = no churn)", false,
                       false, false, "0"));
}

serve::ReplayOptions replay_options_from(const ParsedArgs& args) {
  serve::ReplayOptions options;
  options.hosts = static_cast<std::size_t>(args.get_long("hosts"));
  options.steps = static_cast<std::size_t>(args.get_long("steps"));
  options.sample_interval_s = args.get_double("interval");
  options.gap_s = args.get_double("gap");
  options.horizon_s = args.get_double("horizon");
  options.threshold_c = args.get_double("threshold");
  options.seed = static_cast<std::uint64_t>(args.get_long("seed"));
  options.churn_every = static_cast<std::size_t>(args.get_long("churn-every"));
  options.engine.shards = static_cast<std::size_t>(args.get_long("shards"));
  options.engine.threads = static_cast<std::size_t>(args.get_long("threads"));
  options.engine.queue_capacity =
      static_cast<std::size_t>(args.get_long("queue-capacity"));
  return options;
}

CommandSpec serve_replay_spec() {
  CommandSpec spec("serve-replay",
                   "pump a simulated fleet's temperature traces through the "
                   "sharded serving engine and report forecasts, hotspots "
                   "and metrics (bitwise-deterministic per seed at any "
                   "shard/thread count)");
  add_replay_options(spec);
  spec.add(make_option("top", "hotspot rows to print", false, false, false,
                       "5"));
  spec.add(make_option("snapshot", "write a fleet snapshot to this path",
                       false));
  spec.add(make_option("json", "print the deterministic metrics JSON", false,
                       true));
  return spec;
}

CommandSpec trace_spec() {
  CommandSpec spec("trace",
                   "run a serve replay with span tracing enabled and export "
                   "a Chrome trace-event JSON (load at chrome://tracing or "
                   "ui.perfetto.dev) plus a per-span latency summary");
  add_replay_options(spec);
  spec.add(make_option("out", "Chrome trace-event JSON output path", false,
                       false, false, "trace.json"));
  return spec;
}

CommandSpec serve_stats_spec() {
  CommandSpec spec("serve-stats",
                   "run a serve replay and report prediction-quality "
                   "telemetry: per-host rolling MSE/MAE of dif = phi - psi, "
                   "calibration gamma and its drift, CUSUM state and cache/"
                   "queue health");
  add_replay_options(spec);
  spec.add(make_option("window",
                       "per-host rolling accuracy window (observations)",
                       false, false, false, "128"));
  spec.add(make_option("top",
                       "host rows to print (sorted by rolling MSE, worst "
                       "first); 0 = all",
                       false, false, false, "10"));
  spec.add(make_option("json", "print the full report as JSON", false, true));
  return spec;
}

const std::vector<CommandSpec>& all_specs() {
  static const std::vector<CommandSpec> specs = {
      simulate_spec(),     train_spec(),  evaluate_spec(), predict_spec(),
      dynamic_spec(),      tbreak_spec(), serve_replay_spec(),
      serve_stats_spec(),  trace_spec()};
  return specs;
}

sim::ScenarioRanges ranges_from(const ParsedArgs& args) {
  sim::ScenarioRanges ranges;
  ranges.duration_s = args.get_double("duration");
  ranges.min_vms = static_cast<int>(args.get_long("min-vms"));
  ranges.max_vms = static_cast<int>(args.get_long("max-vms"));
  const auto fans = static_cast<int>(args.get_long("fans"));
  if (fans > 0) {
    ranges.min_fans = fans;
    ranges.max_fans = fans;
  }
  ranges.validate();
  return ranges;
}

int cmd_simulate(const ParsedArgs& args, std::ostream& out) {
  const auto count = static_cast<std::size_t>(args.get_long("count"));
  const auto seed = static_cast<std::uint64_t>(args.get_long("seed"));
  const auto ranges = ranges_from(args);

  out << "running " << count << " profiling experiments...\n";
  const auto records = core::generate_corpus(ranges, count, seed);
  core::write_records_csv_file(args.get("out"), records);
  out << "wrote " << records.size() << " records to " << args.get("out")
      << "\n";
  return 0;
}

int cmd_train(const ParsedArgs& args, std::ostream& out) {
  const long threads = args.get_long("threads");
  detail::require(threads >= 0, "option --threads must be >= 0");
  const auto records = core::read_records_csv_file(args.get("data"));
  out << "training on " << records.size() << " records";

  core::StableTrainOptions options;
  if (args.get_flag("fast")) {
    out << " (fast mode: fixed parameters)";
    ml::SvrParams params;
    params.kernel.gamma = 1.0 / 32;
    params.c = 512.0;
    params.epsilon = 0.05;
    options.fixed_params = params;
  } else {
    options.grid.folds = static_cast<std::size_t>(args.get_long("folds"));
    options.grid.threads = static_cast<std::size_t>(threads);
  }
  out << "...\n";

  core::StableTrainReport report;
  const auto predictor =
      core::StableTemperaturePredictor::train(records, options, &report);
  predictor.save(args.get("model"));

  print_kv(out, "chosen C", Table::num(report.chosen_params.c, 4));
  print_kv(out, "chosen gamma", Table::num(report.chosen_params.kernel.gamma, 6));
  print_kv(out, "chosen epsilon", Table::num(report.chosen_params.epsilon, 3));
  if (report.grid_points_evaluated > 0) {
    print_kv(out, "cv mse", Table::num(report.cv_mse, 3));
  }
  print_kv(out, "support vectors",
           std::to_string(report.final_fit.support_vector_count));
  out << "model saved to " << args.get("model") << "\n";
  return 0;
}

int cmd_evaluate(const ParsedArgs& args, std::ostream& out) {
  const auto predictor =
      core::StableTemperaturePredictor::load(args.get("model"));
  const auto records = core::read_records_csv_file(args.get("data"));
  const auto result = core::evaluate_stable(predictor, records);

  Table table({"case", "vms", "measured_C", "predicted_C", "abs_err_C"});
  for (const auto& c : result.cases) {
    table.add_row({Table::num(static_cast<long long>(c.case_index + 1)),
                   Table::num(static_cast<long long>(c.vm_count)),
                   Table::num(c.measured_c, 2), Table::num(c.predicted_c, 2),
                   Table::num(std::abs(c.predicted_c - c.measured_c), 2)});
  }
  table.print(out);
  print_kv(out, "mse", Table::num(result.mse, 3));
  print_kv(out, "mae", Table::num(result.mae, 3));
  print_kv(out, "max abs error", Table::num(result.max_abs_error, 3));
  return 0;
}

int cmd_predict(const ParsedArgs& args, std::ostream& out) {
  const auto predictor =
      core::StableTemperaturePredictor::load(args.get("model"));
  const auto server = sim::make_server_spec(args.get("server"));
  const auto fans = static_cast<int>(args.get_long("fans"));
  const double env = args.get_double("env");

  std::vector<sim::VmConfig> vms;
  for (const auto& spec : args.get_all("vm")) {
    const VmSpecParts parts = parse_vm_spec(spec);
    sim::VmConfig vm;
    vm.task = sim::task_type_from_name(parts.task);
    vm.vcpus = parts.vcpus;
    vm.memory_gb = parts.memory_gb;
    vm.validate();
    vms.push_back(vm);
  }

  const double psi = predictor.predict(server, vms, fans, env);
  print_kv(out, "server", server.name);
  print_kv(out, "vms", std::to_string(vms.size()));
  print_kv(out, "fans", std::to_string(fans));
  print_kv(out, "env temp", Table::num(env, 1) + " C");
  print_kv(out, "predicted stable CPU temp", Table::num(psi, 2) + " C");
  return 0;
}

int cmd_dynamic(const ParsedArgs& args, std::ostream& out) {
  const auto predictor =
      core::StableTemperaturePredictor::load(args.get("model"));

  sim::ScenarioRanges ranges;
  ranges.duration_s = 1800.0;
  ranges.sample_interval_s = 5.0;
  const auto scenario = core::make_random_dynamic_scenario(
      ranges, static_cast<int>(args.get_long("fans")),
      static_cast<std::uint64_t>(args.get_long("seed")));

  core::DynamicEvalOptions calibrated;
  calibrated.gap_s = args.get_double("gap");
  calibrated.dynamic.update_interval_s = args.get_double("update");
  calibrated.dynamic.learning_rate = args.get_double("lambda");
  core::DynamicEvalOptions uncalibrated = calibrated;
  uncalibrated.dynamic.calibration_enabled = false;

  const auto with_cal = evaluate_dynamic(predictor, scenario, calibrated);
  const auto without_cal = evaluate_dynamic(predictor, scenario, uncalibrated);

  print_kv(out, "scenario VMs (initial)",
           std::to_string(scenario.base.vms.size()));
  print_kv(out, "scripted events", std::to_string(scenario.events.size()));
  print_kv(out, "prediction gap", Table::num(calibrated.gap_s, 0) + " s");
  print_kv(out, "update interval",
           Table::num(calibrated.dynamic.update_interval_s, 0) + " s");
  print_kv(out, "lambda",
           Table::num(calibrated.dynamic.learning_rate, 2));
  Table table({"predictor", "mse", "mae"});
  table.add_row({"with calibration", Table::num(with_cal.mse, 3),
                 Table::num(with_cal.mae, 3)});
  table.add_row({"without calibration", Table::num(without_cal.mse, 3),
                 Table::num(without_cal.mae, 3)});
  table.print(out);
  print_kv(out, "calibration lowers mse",
           with_cal.mse < without_cal.mse ? "yes" : "no");
  return 0;
}

int cmd_tbreak(const ParsedArgs& args, std::ostream& out) {
  sim::ScenarioRanges ranges;
  ranges.duration_s = 2400.0;
  ranges.sample_interval_s = 10.0;
  ranges.dynamic_env_probability = 0.0;
  const auto fans = static_cast<int>(args.get_long("fans"));
  if (fans > 0) {
    ranges.min_fans = fans;
    ranges.max_fans = fans;
  }
  sim::ScenarioSampler sampler(
      ranges, static_cast<std::uint64_t>(args.get_long("seed")));
  const auto configs =
      sampler.sample(static_cast<std::size_t>(args.get_long("count")));
  const auto study = core::study_t_break(configs, args.get_double("band"),
                                         args.get_double("quantile"));

  print_kv(out, "experiments", std::to_string(study.settling_times_s.size()));
  print_kv(out, "unsettled", std::to_string(study.unsettled_count));
  print_kv(out, "median settling",
           Table::num(quantile(study.settling_times_s, 0.5), 0) + " s");
  print_kv(out, "p90 settling",
           Table::num(quantile(study.settling_times_s, 0.9), 0) + " s");
  print_kv(out, "recommended t_break",
           Table::num(study.recommended_t_break_s, 0) + " s");
  print_kv(out, "paper's choice", "600 s");
  return 0;
}

std::string hex_digest(std::uint64_t digest);

int cmd_serve_replay(const ParsedArgs& args, std::ostream& out) {
  auto predictor = core::StableTemperaturePredictor::load(args.get("model"));
  const serve::ReplayOptions options = replay_options_from(args);

  out << "replaying " << options.hosts << " hosts x " << options.steps
      << " steps across " << options.engine.shards << " shards...\n";
  auto report = serve::run_fleet_replay(std::move(predictor), options);

  print_kv(out, "events ingested", std::to_string(report.events_ingested));
  print_kv(out, "forecast digest", hex_digest(report.forecast_digest));

  const auto top = static_cast<std::size_t>(args.get_long("top"));
  Table table({"host", "forecast_C", "at_risk"});
  for (std::size_t i = 0; i < report.risks.size() && i < top; ++i) {
    const auto& risk = report.risks[i];
    table.add_row({risk.host_id, Table::num(risk.forecast_c, 2),
                   risk.at_risk ? "yes" : "no"});
  }
  table.print(out);

  if (args.get_flag("json")) out << report.metrics_json << "\n";
  if (args.has("snapshot")) {
    serve::save_fleet_file(args.get("snapshot"), *report.engine);
    out << "snapshot saved to " << args.get("snapshot") << "\n";
  }
  return 0;
}

std::string hex_digest(std::uint64_t digest) {
  std::ostringstream os;
  os << std::hex << std::setw(16) << std::setfill('0') << digest;
  return os.str();
}

int cmd_trace(const ParsedArgs& args, std::ostream& out) {
  auto predictor = core::StableTemperaturePredictor::load(args.get("model"));
  const serve::ReplayOptions options = replay_options_from(args);

  // One recorder per process: start from a clean slate so back-to-back
  // invocations (tests drive run_cli repeatedly) don't accumulate spans.
  obs::TraceRecorder& recorder = obs::global_trace();
  recorder.clear();
  recorder.set_enabled(true);

  out << "tracing " << options.hosts << " hosts x " << options.steps
      << " steps across " << options.engine.shards << " shards...\n";
  auto report = serve::run_fleet_replay(std::move(predictor), options);
  recorder.set_enabled(false);

  // Span summaries land in the engine registry as timing-class metrics;
  // the deterministic subset (report.metrics_json) is untouched.
  obs::publish_trace_summary(recorder, report.engine->metrics());

  const std::string path = args.get("out");
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  detail::require(file.good(), "cannot open trace output: " + path);
  obs::write_chrome_trace(recorder, file);
  file.close();
  detail::require(file.good(), "failed writing trace output: " + path);

  print_kv(out, "events ingested", std::to_string(report.events_ingested));
  print_kv(out, "forecast digest", hex_digest(report.forecast_digest));
  print_kv(out, "trace events", std::to_string(recorder.event_count()));
  print_kv(out, "trace threads",
           std::to_string(recorder.thread_buffer_count()));
  print_kv(out, "trace dropped", std::to_string(recorder.dropped()));

  Table table({"span", "count", "total_us", "mean_us", "max_us"});
  for (const auto& row : obs::summarize_spans(recorder)) {
    table.add_row({row.name,
                   Table::num(static_cast<long long>(row.count)),
                   Table::num(row.total_us, 1), Table::num(row.mean_us, 2),
                   Table::num(row.max_us, 1)});
  }
  table.print(out);
  out << "trace written to " << path << "\n";
  recorder.clear();
  return 0;
}

void write_stats_json(std::ostream& os, const obs::FleetAccuracyStats& stats) {
  const auto num = [&os](double v) {
    std::ostringstream tmp;
    tmp.precision(17);
    tmp << v;
    os << tmp.str();
  };
  os << "{\"fleet\":{\"hosts\":" << stats.hosts.size()
     << ",\"observations\":" << stats.observations
     << ",\"samples_in_window\":" << stats.samples_in_window
     << ",\"rolling_mse\":";
  num(stats.rolling_mse);
  os << ",\"rolling_mae\":";
  num(stats.rolling_mae);
  os << ",\"rolling_mean_dif\":";
  num(stats.rolling_mean_dif);
  os << ",\"hosts_drifted\":" << stats.hosts_drifted
     << ",\"psi_cache_hits\":" << stats.psi_cache_hits
     << ",\"psi_cache_misses\":" << stats.psi_cache_misses
     << ",\"queue_high_water\":" << stats.queue_high_water << "},\"hosts\":[";
  bool first = true;
  for (const auto& host : stats.hosts) {
    if (!first) os << ",";
    first = false;
    os << "{\"host_id\":\"" << util::json_escape(host.host_id)
       << "\",\"observations\":" << host.observations
       << ",\"window\":" << host.window << ",\"in_window\":" << host.in_window
       << ",\"rolling_mse\":";
    num(host.rolling_mse);
    os << ",\"rolling_mae\":";
    num(host.rolling_mae);
    os << ",\"rolling_mean_dif\":";
    num(host.rolling_mean_dif);
    os << ",\"gamma\":";
    num(host.gamma);
    os << ",\"gamma_drift\":";
    num(host.gamma_drift);
    os << ",\"drift_positive\":";
    num(host.drift_positive);
    os << ",\"drift_negative\":";
    num(host.drift_negative);
    os << ",\"drifted\":" << (host.drifted ? "true" : "false") << "}";
  }
  os << "]}\n";
}

int cmd_serve_stats(const ParsedArgs& args, std::ostream& out) {
  const long window = args.get_long("window");
  detail::require(window >= 1, "option --window must be >= 1");
  auto predictor = core::StableTemperaturePredictor::load(args.get("model"));
  serve::ReplayOptions options = replay_options_from(args);
  options.engine.accuracy_window = static_cast<std::size_t>(window);

  auto report = serve::run_fleet_replay(std::move(predictor), options);
  const obs::FleetAccuracyStats stats = report.engine->accuracy_report();

  if (args.get_flag("json")) {
    write_stats_json(out, stats);
    return 0;
  }

  print_kv(out, "hosts", std::to_string(stats.hosts.size()));
  print_kv(out, "observations", std::to_string(stats.observations));
  print_kv(out, "accuracy window",
           std::to_string(options.engine.accuracy_window) + " obs/host");
  print_kv(out, "fleet rolling mse", Table::num(stats.rolling_mse, 4));
  print_kv(out, "fleet rolling mae", Table::num(stats.rolling_mae, 4));
  print_kv(out, "fleet mean dif", Table::num(stats.rolling_mean_dif, 4));
  print_kv(out, "hosts drifted", std::to_string(stats.hosts_drifted));
  print_kv(out, "psi cache hits", std::to_string(stats.psi_cache_hits));
  print_kv(out, "psi cache misses", std::to_string(stats.psi_cache_misses));
  print_kv(out, "queue high water", std::to_string(stats.queue_high_water));
  print_kv(out, "forecast digest", hex_digest(report.forecast_digest));

  // Worst predictions first: rolling MSE descending, host id on ties.
  std::vector<obs::HostAccuracyStats> rows = stats.hosts;
  std::sort(rows.begin(), rows.end(),
            [](const obs::HostAccuracyStats& a,
               const obs::HostAccuracyStats& b) {
              if (a.rolling_mse != b.rolling_mse) {
                return a.rolling_mse > b.rolling_mse;
              }
              return a.host_id < b.host_id;
            });
  const auto top = static_cast<std::size_t>(args.get_long("top"));
  Table table({"host", "obs", "mse", "mae", "gamma", "g_drift", "drifted"});
  for (std::size_t i = 0; i < rows.size() && (top == 0 || i < top); ++i) {
    const auto& host = rows[i];
    table.add_row({host.host_id,
                   Table::num(static_cast<long long>(host.observations)),
                   Table::num(host.rolling_mse, 4),
                   Table::num(host.rolling_mae, 4),
                   Table::num(host.gamma, 3),
                   Table::num(host.gamma_drift, 3),
                   host.drifted ? "yes" : "no"});
  }
  table.print(out);
  return 0;
}

void print_global_help(std::ostream& out) {
  out << "vmtherm - VM-level temperature profiling and prediction\n\n"
      << "commands:\n";
  for (const auto& spec : all_specs()) {
    out << "  " << spec.name() << "\n      " << spec.summary() << "\n";
  }
  out << "  help [command]\n      show this text, or one command's options\n";
}

}  // namespace

VmSpecParts parse_vm_spec(const std::string& spec) {
  const auto first = spec.find(':');
  const auto second = first == std::string::npos
                          ? std::string::npos
                          : spec.find(':', first + 1);
  detail::require(first != std::string::npos && second != std::string::npos,
                  "vm spec must be task:vcpus:memory_gb, got '" + spec + "'");
  VmSpecParts parts;
  parts.task = spec.substr(0, first);
  try {
    parts.vcpus = std::stoi(spec.substr(first + 1, second - first - 1));
    parts.memory_gb = std::stod(spec.substr(second + 1));
  } catch (const std::exception&) {
    throw ConfigError("vm spec has bad numbers: '" + spec + "'");
  }
  detail::require(parts.vcpus >= 1, "vm spec vcpus must be >= 1");
  detail::require(parts.memory_gb > 0.0, "vm spec memory must be positive");
  return parts;
}

int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  if (args.empty() || args[0] == "help" || args[0] == "--help") {
    if (args.size() >= 2) {
      for (const auto& spec : all_specs()) {
        if (spec.name() == args[1]) {
          out << spec.usage();
          return 0;
        }
      }
      err << "unknown command: " << args[1] << "\n";
      return 1;
    }
    print_global_help(out);
    return args.empty() ? 1 : 0;
  }

  const std::string& command = args[0];
  const std::vector<std::string> rest(args.begin() + 1, args.end());

  try {
    for (const auto& spec : all_specs()) {
      if (spec.name() != command) continue;
      const ParsedArgs parsed = spec.parse(rest);
      if (command == "simulate") return cmd_simulate(parsed, out);
      if (command == "train") return cmd_train(parsed, out);
      if (command == "evaluate") return cmd_evaluate(parsed, out);
      if (command == "predict") return cmd_predict(parsed, out);
      if (command == "dynamic") return cmd_dynamic(parsed, out);
      if (command == "tbreak") return cmd_tbreak(parsed, out);
      if (command == "serve-replay") return cmd_serve_replay(parsed, out);
      if (command == "serve-stats") return cmd_serve_stats(parsed, out);
      if (command == "trace") return cmd_trace(parsed, out);
    }
    err << "unknown command: " << command << "\n\n";
    print_global_help(err);
    return 1;
  } catch (const ConfigError& e) {
    err << e.what() << "\n";
    return 1;
  } catch (const Error& e) {
    err << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    err << "internal error: " << e.what() << "\n";
    return 2;
  }
}

}  // namespace vmtherm::cli
