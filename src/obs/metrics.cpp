#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/json.h"

namespace vmtherm::obs {

namespace {

const char* kind_name(MetricKind kind) {
  return kind == MetricKind::kDeterministic ? "deterministic" : "timing";
}

void append_json_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    // JSON has no Inf/NaN; quote them (only user-supplied bounds can be
    // non-finite, and Histogram rejects those — this is belt and braces).
    os << "\"" << v << "\"";
    return;
  }
  std::ostringstream tmp;
  tmp.precision(17);
  tmp << v;
  os << tmp.str();
}

// Metric names are caller-chosen strings; quotes and control characters
// must not corrupt the JSON document.
void append_json_name(std::ostream& os, const std::string& name) {
  os << "\"";
  util::write_json_escaped(os, name);
  os << "\"";
}

}  // namespace

void Gauge::update_max(std::int64_t v) noexcept {
  std::int64_t current = value_.load(std::memory_order_relaxed);
  while (v > current &&
         !value_.compare_exchange_weak(current, v, std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1) {
  detail::require(!bounds_.empty(), "histogram needs at least one bound");
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    detail::require(std::isfinite(bounds_[i]),
                    "histogram bounds must be finite");
    detail::require(i == 0 || bounds_[i - 1] < bounds_[i],
                    "histogram bounds must be strictly ascending");
  }
}

void Histogram::record(double value) noexcept {
  // Inclusive upper bounds (Prometheus `le` convention): value lands in the
  // first bucket whose bound is >= value.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Histogram::count_in_bucket(std::size_t i) const {
  detail::require(i < counts_.size(), "histogram bucket index out of range");
  return counts_[i].load(std::memory_order_relaxed);
}

std::uint64_t Histogram::total_count() const noexcept {
  std::uint64_t total = 0;
  for (const auto& c : counts_) total += c.load(std::memory_order_relaxed);
  return total;
}

double Histogram::quantile(double q) const {
  detail::require(q >= 0.0 && q <= 1.0, "quantile q must be in [0, 1]");
  const std::uint64_t total = total_count();
  if (total == 0) return 0.0;
  const double target = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::uint64_t in_bucket = counts_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    const auto before = static_cast<double>(cumulative);
    cumulative += in_bucket;
    if (static_cast<double>(cumulative) < target) continue;
    if (i >= bounds_.size()) return bounds_.back();  // overflow bucket
    const double lower = i == 0 ? 0.0 : bounds_[i - 1];
    const double fraction =
        std::clamp((target - before) / static_cast<double>(in_bucket), 0.0, 1.0);
    return lower + fraction * (bounds_[i] - lower);
  }
  return bounds_.back();
}

void Histogram::set_counts(const std::vector<std::uint64_t>& counts) {
  detail::require(counts.size() == counts_.size(),
                  "histogram restore: bucket count mismatch");
  for (std::size_t i = 0; i < counts.size(); ++i) {
    counts_[i].store(counts[i], std::memory_order_relaxed);
  }
}

Counter& MetricsRegistry::counter(const std::string& name, MetricKind kind) {
  detail::require(!name.empty(), "metric name must be non-empty");
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) {
    detail::require(it->second.kind == kind,
                    "counter re-registered with a different kind: " + name);
    return it->second.counter;
  }
  return counters_.try_emplace(name, kind).first->second.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, MetricKind kind) {
  detail::require(!name.empty(), "metric name must be non-empty");
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) {
    detail::require(it->second.kind == kind,
                    "gauge re-registered with a different kind: " + name);
    return it->second.gauge;
  }
  return gauges_.try_emplace(name, kind).first->second.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds,
                                      MetricKind kind) {
  detail::require(!name.empty(), "metric name must be non-empty");
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    detail::require(it->second.kind == kind,
                    "histogram re-registered with a different kind: " + name);
    detail::require(it->second.histogram.upper_bounds() == upper_bounds,
                    "histogram re-registered with different bounds: " + name);
    return it->second.histogram;
  }
  return histograms_
      .try_emplace(name, kind, std::move(upper_bounds))
      .first->second.histogram;
}

Table MetricsRegistry::to_table() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Table table({"metric", "type", "kind", "value"});
  for (const auto& [name, entry] : counters_) {
    table.add_row({name, "counter", kind_name(entry.kind),
                   Table::num(static_cast<long long>(entry.counter.value()))});
  }
  for (const auto& [name, entry] : gauges_) {
    table.add_row({name, "gauge", kind_name(entry.kind),
                   Table::num(static_cast<long long>(entry.gauge.value()))});
  }
  for (const auto& [name, entry] : histograms_) {
    const auto& h = entry.histogram;
    const std::string summary =
        "n=" + std::to_string(h.total_count()) +
        " p50=" + Table::num(h.quantile(0.5), 2) +
        " p99=" + Table::num(h.quantile(0.99), 2);
    table.add_row({name, "histogram", kind_name(entry.kind), summary});
  }
  return table;
}

std::string MetricsRegistry::to_json(bool include_timing) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto included = [include_timing](MetricKind kind) {
    return include_timing || kind == MetricKind::kDeterministic;
  };

  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, entry] : counters_) {
    if (!included(entry.kind)) continue;
    if (!first) os << ",";
    first = false;
    append_json_name(os, name);
    os << ":" << entry.counter.value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, entry] : gauges_) {
    if (!included(entry.kind)) continue;
    if (!first) os << ",";
    first = false;
    append_json_name(os, name);
    os << ":" << entry.gauge.value();
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, entry] : histograms_) {
    if (!included(entry.kind)) continue;
    if (!first) os << ",";
    first = false;
    const auto& h = entry.histogram;
    append_json_name(os, name);
    os << ":{\"bounds\":[";
    for (std::size_t i = 0; i < h.upper_bounds().size(); ++i) {
      if (i > 0) os << ",";
      append_json_number(os, h.upper_bounds()[i]);
    }
    os << "],\"counts\":[";
    for (std::size_t i = 0; i < h.bucket_count(); ++i) {
      if (i > 0) os << ",";
      os << h.count_in_bucket(i);
    }
    os << "],\"total\":" << h.total_count() << ",\"p50\":";
    append_json_number(os, h.quantile(0.5));
    os << ",\"p99\":";
    append_json_number(os, h.quantile(0.99));
    os << "}";
  }
  os << "}}";
  return os.str();
}

void MetricsRegistry::for_each_counter(
    const std::function<void(const std::string&, MetricKind, const Counter&)>&
        fn) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, entry] : counters_) {
    fn(name, entry.kind, entry.counter);
  }
}

void MetricsRegistry::for_each_histogram(
    const std::function<void(const std::string&, MetricKind, const Histogram&)>&
        fn) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, entry] : histograms_) {
    fn(name, entry.kind, entry.histogram);
  }
}

}  // namespace vmtherm::obs
