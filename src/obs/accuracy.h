// vmtherm/obs/accuracy.h
//
// Online prediction-quality telemetry for the Eq. 5–8 feedback loop: the
// paper corrects the dynamic prediction ψ(t) with γ ← γ + λ·dif where
// dif = φ(t) − ψ(t) (observed minus predicted). `HostAccuracy` keeps a
// bounded rolling window of (dif, γ) pairs per host with O(1),
// allocation-free records on the shard hot path (this file is in the lint
// hot-path scope); queries walk the window in chronological order, so the
// reported sums are bitwise-reproducible against a reference that sums
// the same samples oldest-to-newest.
//
// Fleet aggregation (`aggregate_fleet`) merges per-host window sums in
// host-id order, making fleet-wide MSE/MAE independent of shard count and
// drain interleaving — the same determinism contract the forecast digest
// obeys.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace vmtherm::obs {

/// Exact sums over the samples currently in a host's window, accumulated
/// oldest-to-newest. Kept separate from the derived stats so fleet
/// aggregation can merge sums (order-deterministically) before dividing.
struct WindowSums {
  double sum_sq_dif = 0.0;
  double sum_abs_dif = 0.0;
  double sum_dif = 0.0;
  std::size_t samples = 0;
};

/// Rolling accuracy window for one host. Fixed capacity, preallocated;
/// record() is O(1) and never allocates. Not thread-safe — lives inside a
/// shard's state, which is single-drainer by construction.
class HostAccuracy {
 public:
  /// `window` >= 1 (the shard validates via FleetEngineOptions).
  explicit HostAccuracy(std::size_t window)
      : ring_(window == 0 ? 1 : window) {}

  /// Records one observation: dif = φ(t) − ψ(t) and the calibration γ
  /// *after* the Eq. 6 update it triggered.
  void record(double dif, double gamma) noexcept {
    ring_[next_] = Entry{dif, gamma};
    next_ = next_ + 1 == ring_.size() ? 0 : next_ + 1;
    ++total_;
  }

  /// Observations ever recorded (not capped by the window).
  std::uint64_t observations() const noexcept { return total_; }
  std::size_t window() const noexcept { return ring_.size(); }
  std::size_t in_window() const noexcept {
    return total_ < ring_.size() ? static_cast<std::size_t>(total_)
                                 : ring_.size();
  }

  /// Sums over the current window, oldest-to-newest (bitwise-stable).
  WindowSums window_sums() const noexcept;

  double rolling_mse() const noexcept;
  double rolling_mae() const noexcept;
  double rolling_mean_dif() const noexcept;

  /// γ recorded with the newest observation (0 before any observation).
  double latest_gamma() const noexcept;
  /// Newest γ minus the oldest γ still in the window: how far Eq. 6 moved
  /// the calibration across the window. 0 with fewer than 2 samples.
  double gamma_drift() const noexcept;

 private:
  struct Entry {
    double dif = 0.0;
    double gamma = 0.0;
  };

  /// Index of the oldest sample in the window.
  std::size_t oldest() const noexcept {
    return total_ < ring_.size() ? 0 : next_;
  }

  std::vector<Entry> ring_;
  std::size_t next_ = 0;
  std::uint64_t total_ = 0;
};

/// One host's accuracy snapshot, as reported by `vmtherm serve-stats` and
/// FleetEngine::accuracy_report(). Combines the rolling window with the
/// host's CUSUM drift state (core::CusumDetector sums — not duplicated
/// here; the shard copies them out of its per-host detector).
struct HostAccuracyStats {
  std::string host_id;
  std::uint64_t observations = 0;
  std::size_t window = 0;
  std::size_t in_window = 0;
  double rolling_mse = 0.0;
  double rolling_mae = 0.0;
  double rolling_mean_dif = 0.0;
  double gamma = 0.0;
  double gamma_drift = 0.0;
  double drift_positive = 0.0;
  double drift_negative = 0.0;
  bool drifted = false;
  WindowSums sums;
};

/// Fleet-wide aggregate plus the sorted per-host rows.
struct FleetAccuracyStats {
  std::vector<HostAccuracyStats> hosts;
  std::uint64_t observations = 0;
  std::size_t samples_in_window = 0;
  double rolling_mse = 0.0;
  double rolling_mae = 0.0;
  double rolling_mean_dif = 0.0;
  std::uint64_t hosts_drifted = 0;
  std::uint64_t psi_cache_hits = 0;
  std::uint64_t psi_cache_misses = 0;
  std::int64_t queue_high_water = 0;
};

/// Sorts `hosts` by host_id and merges their window sums in that order —
/// the result is independent of how hosts were distributed over shards.
/// Cache/queue fields are left zero for the caller to fill.
FleetAccuracyStats aggregate_fleet(std::vector<HostAccuracyStats> hosts);

}  // namespace vmtherm::obs
