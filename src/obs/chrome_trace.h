// vmtherm/obs/chrome_trace.h
//
// Cold-path consumers of TraceRecorder data: Chrome trace-event (catapult)
// JSON export — load the file at chrome://tracing or https://ui.perfetto.dev
// — plus per-span-name summaries as table rows and as timing-class metrics
// in a MetricsRegistry. This TU is deliberately outside the lint hot-path
// scope: it runs once per export, strings and streams are fine here.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace vmtherm::obs {

/// Writes the recorder's published events as a Chrome trace-event JSON
/// document: {"traceEvents":[...]} of "X" (complete) events with ts/dur in
/// microseconds, pid 1 and tid = the buffer's registration index + 1.
/// Events are sorted by (tid, start, -dur, name) so the output is a pure
/// function of the recorded data. Call with recording quiesced (disable
/// the recorder first).
void write_chrome_trace(const TraceRecorder& recorder, std::ostream& os);

/// Per-span-name aggregate over every published event.
struct SpanSummaryRow {
  std::string name;
  std::uint64_t count = 0;
  double total_us = 0.0;
  double mean_us = 0.0;
  double max_us = 0.0;
};

/// Aggregates published events by span name, sorted by name.
std::vector<SpanSummaryRow> summarize_spans(const TraceRecorder& recorder);

/// Publishes per-name summaries into `registry` as timing-class metrics:
/// counter `trace.spans.<name>` (adds the current count) and histogram
/// `trace.span_us.<name>` (one sample per event). Everything is
/// MetricKind::kTiming, so the deterministic metrics subset — and with it
/// the replay byte-compare — is untouched by tracing.
void publish_trace_summary(const TraceRecorder& recorder,
                           MetricsRegistry& registry);

}  // namespace vmtherm::obs
