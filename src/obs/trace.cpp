#include "obs/trace.h"

namespace vmtherm::obs {

namespace {

std::uint64_t next_recorder_id() {
  /// sync: relaxed monotonic id source; uniqueness is all that matters.
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

// Per-thread fast path: the (recorder address, recorder id) pair the
// thread last recorded to, and its buffer there. The id disambiguates a
// new recorder allocated at a recycled address; a thread alternating
// between recorders just falls back to the map lookup.
struct ThreadCache {
  const TraceRecorder* recorder = nullptr;
  std::uint64_t recorder_id = 0;
  ThreadBuffer* buffer = nullptr;
};

thread_local ThreadCache t_cache;

/// sync: relaxed pointer to the global recorder, set once when
/// global_trace() first constructs it; set_enabled compares against it to
/// know when to mirror the fast gate.
std::atomic<TraceRecorder*> g_global_instance{nullptr};

}  // namespace

namespace detail {
std::atomic<bool> g_global_trace_enabled{false};
}  // namespace detail

TraceRecorder::TraceRecorder(std::size_t capacity_per_thread)
    : id_(next_recorder_id()),
      capacity_(capacity_per_thread == 0 ? 1 : capacity_per_thread),
      epoch_(std::chrono::steady_clock::now()) {}

void TraceRecorder::set_enabled(bool on) noexcept {
  enabled_.store(on, std::memory_order_relaxed);
  if (this == g_global_instance.load(std::memory_order_relaxed)) {
    detail::g_global_trace_enabled.store(on, std::memory_order_relaxed);
  }
}

void TraceRecorder::record(const TraceEvent& event) noexcept {
  ThreadBuffer* buffer;
  if (t_cache.recorder == this && t_cache.recorder_id == id_) {
    buffer = t_cache.buffer;
  } else {
    buffer = register_this_thread();
    t_cache.recorder = this;
    t_cache.recorder_id = id_;
    t_cache.buffer = buffer;
  }
  if (!buffer->try_record(event)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

ThreadBuffer* TraceRecorder::register_this_thread() {
  const std::thread::id self = std::this_thread::get_id();
  std::lock_guard<std::mutex> lock(registry_mutex_);
  const auto it = by_thread_.find(self);
  if (it != by_thread_.end()) return it->second;
  buffers_.push_back(std::make_unique<ThreadBuffer>(capacity_));
  ThreadBuffer* buffer = buffers_.back().get();
  by_thread_.emplace(self, buffer);
  return buffer;
}

std::size_t TraceRecorder::thread_buffer_count() const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  return buffers_.size();
}

const ThreadBuffer& TraceRecorder::thread_buffer(std::size_t i) const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  return *buffers_[i];
}

std::size_t TraceRecorder::event_count() const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  std::size_t total = 0;
  for (const auto& buffer : buffers_) total += buffer->published();
  return total;
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  for (auto& buffer : buffers_) buffer->reset();
  dropped_.store(0, std::memory_order_relaxed);
}

TraceRecorder& global_trace() {
  static TraceRecorder* const instance = [] {
    static TraceRecorder recorder;
    g_global_instance.store(&recorder, std::memory_order_relaxed);
    return &recorder;
  }();
  return *instance;
}

}  // namespace vmtherm::obs
