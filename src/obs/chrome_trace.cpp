#include "obs/chrome_trace.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <ostream>
#include <sstream>

#include "util/json.h"

namespace vmtherm::obs {

namespace {

struct FlatEvent {
  std::size_t tid;
  TraceEvent event;
};

std::vector<FlatEvent> collect_sorted(const TraceRecorder& recorder) {
  std::vector<FlatEvent> events;
  const std::size_t buffers = recorder.thread_buffer_count();
  for (std::size_t b = 0; b < buffers; ++b) {
    const ThreadBuffer& buffer = recorder.thread_buffer(b);
    const std::size_t n = buffer.published();
    for (std::size_t i = 0; i < n; ++i) {
      events.push_back({b + 1, buffer.event(i)});
    }
  }
  std::sort(events.begin(), events.end(),
            [](const FlatEvent& a, const FlatEvent& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.event.start_ns != b.event.start_ns) {
                return a.event.start_ns < b.event.start_ns;
              }
              // Longer spans first so parents precede their children.
              if (a.event.dur_ns != b.event.dur_ns) {
                return a.event.dur_ns > b.event.dur_ns;
              }
              return std::strcmp(a.event.name, b.event.name) < 0;
            });
  return events;
}

// Microseconds with fixed 3-digit fraction (nanosecond resolution), the
// unit Chrome's trace viewer expects for ts/dur.
void append_us(std::ostream& os, std::uint64_t ns) {
  os << (ns / 1000) << "." << static_cast<char>('0' + ns % 1000 / 100)
     << static_cast<char>('0' + ns % 100 / 10)
     << static_cast<char>('0' + ns % 10);
}

void append_quoted(std::ostream& os, const char* s) {
  os << "\"";
  util::write_json_escaped(os, s);
  os << "\"";
}

void append_json_double(std::ostream& os, double v) {
  std::ostringstream tmp;
  tmp.precision(17);
  tmp << v;
  os << tmp.str();
}

// Span-duration histogram bounds in microseconds: sub-μs spans (cache
// hits) up to the latency ceiling used by the serve engine.
const std::vector<double> kSpanBoundsUs = {1,    4,     16,    64,     256,
                                           1024, 4096,  16384, 65536,  262144};

}  // namespace

void write_chrome_trace(const TraceRecorder& recorder, std::ostream& os) {
  const std::vector<FlatEvent> events = collect_sorted(recorder);
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const FlatEvent& fe : events) {
    if (!first) os << ",\n";
    first = false;
    const TraceEvent& e = fe.event;
    os << "{\"name\":";
    append_quoted(os, e.name);
    os << ",\"cat\":";
    append_quoted(os, e.category);
    os << ",\"ph\":\"X\",\"ts\":";
    append_us(os, e.start_ns);
    os << ",\"dur\":";
    append_us(os, e.dur_ns);
    os << ",\"pid\":1,\"tid\":" << fe.tid;
    if (e.arg_name != nullptr) {
      os << ",\"args\":{";
      append_quoted(os, e.arg_name);
      os << ":";
      append_json_double(os, e.arg_value);
      os << "}";
    }
    os << "}";
  }
  os << "],\"displayTimeUnit\":\"ms\"}\n";
}

std::vector<SpanSummaryRow> summarize_spans(const TraceRecorder& recorder) {
  std::map<std::string, SpanSummaryRow> by_name;
  const std::size_t buffers = recorder.thread_buffer_count();
  for (std::size_t b = 0; b < buffers; ++b) {
    const ThreadBuffer& buffer = recorder.thread_buffer(b);
    const std::size_t n = buffer.published();
    for (std::size_t i = 0; i < n; ++i) {
      const TraceEvent& e = buffer.event(i);
      SpanSummaryRow& row = by_name[e.name];
      const double us = static_cast<double>(e.dur_ns) / 1000.0;
      row.count += 1;
      row.total_us += us;
      row.max_us = std::max(row.max_us, us);
    }
  }
  std::vector<SpanSummaryRow> rows;
  rows.reserve(by_name.size());
  for (auto& [name, row] : by_name) {
    row.name = name;
    row.mean_us = row.total_us / static_cast<double>(row.count);
    rows.push_back(std::move(row));
  }
  return rows;
}

void publish_trace_summary(const TraceRecorder& recorder,
                           MetricsRegistry& registry) {
  const std::size_t buffers = recorder.thread_buffer_count();
  for (std::size_t b = 0; b < buffers; ++b) {
    const ThreadBuffer& buffer = recorder.thread_buffer(b);
    const std::size_t n = buffer.published();
    for (std::size_t i = 0; i < n; ++i) {
      const TraceEvent& e = buffer.event(i);
      registry.counter("trace.spans." + std::string(e.name), MetricKind::kTiming)
          .add(1);
      registry
          .histogram("trace.span_us." + std::string(e.name), kSpanBoundsUs,
                     MetricKind::kTiming)
          .record(static_cast<double>(e.dur_ns) / 1000.0);
    }
  }
  registry.counter("trace.dropped", MetricKind::kTiming).add(recorder.dropped());
}

}  // namespace vmtherm::obs
