// vmtherm/obs/trace.h
//
// Low-overhead span tracing for the serve and ml hot paths.
//
// Design:
//  * `TraceRecorder` owns one bounded buffer per recording thread. A thread
//    registers lazily on its first span (mutex-protected, once per
//    thread×recorder); after that, recording a span is lock-free: the
//    owning thread writes the next slot and release-publishes the new
//    count. Published slots are immutable until `clear()`, so concurrent
//    readers (export, summaries) acquire-load the count and read only
//    published slots — no torn or lost events, clean under TSan.
//  * Buffers are *bounded, drop-newest*: when a thread's buffer fills, new
//    spans are counted in `dropped()` instead of overwriting history. This
//    keeps slots immutable (a wrap-around ring would mutate published
//    slots) and keeps the worst-case memory exact.
//  * Zero cost when off: spans check one relaxed atomic flag at
//    construction and destruction (measured < 1ns; see perf_serve's
//    trace_disabled_span_ns), and the `VMTHERM_TRACE=0` compile-time
//    kill-switch makes the macros expand to nothing at all.
//  * Span names/categories/arg names must be string literals (or otherwise
//    outlive the recorder): events store `const char*`, never copies —
//    this file is in the lint hot-path scope (no string construction).
//
// Timestamps are steady-clock nanoseconds relative to the recorder's
// construction. Trace data is wall-clock dependent and therefore
// timing-class throughout: summaries publish as MetricKind::kTiming and
// never appear in the deterministic metrics subset (DESIGN.md §10).

#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

namespace vmtherm::obs {

/// One completed span. Name/category/arg_name point at caller-owned
/// storage (string literals in practice); arg_name is nullptr when the
/// span carries no argument.
struct TraceEvent {
  const char* name;
  const char* category;
  const char* arg_name;
  double arg_value;
  std::uint64_t start_ns;
  std::uint64_t dur_ns;
};

/// Bounded single-producer event buffer owned by one recording thread.
/// The owner appends; any thread may read the published prefix.
class ThreadBuffer {
 public:
  explicit ThreadBuffer(std::size_t capacity) : slots_(capacity) {}

  ThreadBuffer(const ThreadBuffer&) = delete;
  ThreadBuffer& operator=(const ThreadBuffer&) = delete;

  /// Owner thread only. Returns false (and records nothing) when full.
  bool try_record(const TraceEvent& event) noexcept {
    const std::size_t n = count_.load(std::memory_order_relaxed);
    if (n == slots_.size()) return false;
    slots_[n] = event;
    count_.store(n + 1, std::memory_order_release);
    return true;
  }

  /// Number of published events; slots [0, published()) are immutable
  /// and safe to read from any thread.
  std::size_t published() const noexcept {
    return count_.load(std::memory_order_acquire);
  }

  /// Precondition: i < published().
  const TraceEvent& event(std::size_t i) const noexcept { return slots_[i]; }

  std::size_t capacity() const noexcept { return slots_.size(); }

  /// Owner-or-quiesced only (see TraceRecorder::clear()).
  void reset() noexcept { count_.store(0, std::memory_order_release); }

 private:
  std::vector<TraceEvent> slots_;
  /// sync: release-stored by the owning thread after writing slot
  /// [count]; acquire-loaded by readers, making slots [0, count)
  /// immutable published data. reset() only runs quiesced.
  std::atomic<std::size_t> count_{0};
};

/// Collects spans from any number of threads. One instance usually serves
/// a whole process (`global_trace()`), but tests create their own.
class TraceRecorder {
 public:
  static constexpr std::size_t kDefaultCapacityPerThread = std::size_t{1} << 16;

  explicit TraceRecorder(
      std::size_t capacity_per_thread = kDefaultCapacityPerThread);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Runtime gate. Spans constructed while disabled record nothing. For
  /// the global recorder this also flips the process-wide fast gate the
  /// VMTHERM_SPAN macros check before touching the recorder at all.
  void set_enabled(bool on) noexcept;
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Nanoseconds since recorder construction (steady clock).
  std::uint64_t now_ns() const noexcept {
    const auto now = std::chrono::steady_clock::now();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(now - epoch_)
            .count());
  }

  /// Records one completed event from the calling thread (Span's
  /// destructor calls this). Lock-free after the thread's first call.
  void record(const TraceEvent& event) noexcept;

  /// Events that did not fit in their thread's buffer.
  std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Readers (export/summaries): buffers in registration order. The
  /// returned reference stays valid for the recorder's lifetime; read
  /// each buffer's published() prefix.
  std::size_t thread_buffer_count() const;
  const ThreadBuffer& thread_buffer(std::size_t i) const;

  /// Total published events across all thread buffers.
  std::size_t event_count() const;

  /// Discards all recorded events and the dropped counter. Caller must
  /// guarantee no concurrent recording or reading (disable first, join or
  /// quiesce recording threads).
  void clear();

  std::size_t capacity_per_thread() const noexcept { return capacity_; }

  /// Unique per-recorder id (monotonic across the process); used by the
  /// thread-local fast path to detect recorder reuse at the same address.
  std::uint64_t id() const noexcept { return id_; }

 private:
  ThreadBuffer* register_this_thread();

  const std::uint64_t id_;
  const std::size_t capacity_;
  const std::chrono::steady_clock::time_point epoch_;
  /// sync: relaxed on/off flag; gates recording only, orders nothing.
  std::atomic<bool> enabled_{false};
  /// sync: relaxed count of events dropped by full buffers.
  std::atomic<std::uint64_t> dropped_{0};
  /// guards: buffers_/by_thread_ (registration and reader iteration;
  /// recording goes through the per-thread buffer without this lock).
  mutable std::mutex registry_mutex_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::unordered_map<std::thread::id, ThreadBuffer*> by_thread_;
};

/// The process-wide recorder used by the VMTHERM_SPAN macros. Disabled
/// until someone (the `vmtherm trace` command, perf_serve --trace, tests)
/// calls set_enabled(true).
TraceRecorder& global_trace();

namespace detail {
/// Fast gate mirroring global_trace().enabled(): constant-initialized, so
/// the macro-path Span constructor can bail with one inline relaxed load
/// — no cross-TU call, no static-local init guard — while tracing is off
/// (the overwhelmingly common state; perf_serve asserts this path costs
/// < 1% of the serving budget).
/// sync: relaxed on/off flag, written only by
/// TraceRecorder::set_enabled on the global recorder; orders nothing.
extern std::atomic<bool> g_global_trace_enabled;
}  // namespace detail

/// RAII span: captures the start time at construction and records one
/// TraceEvent at destruction. When the recorder is disabled at
/// construction, both ends cost one relaxed atomic load.
class Span {
 public:
  Span(const char* name, const char* category,
       const char* arg_name = nullptr, double arg_value = 0.0) noexcept
      : recorder_(nullptr) {
    if (!detail::g_global_trace_enabled.load(std::memory_order_relaxed)) {
      return;
    }
    attach(global_trace(), name, category, arg_name, arg_value);
  }

  Span(TraceRecorder& recorder, const char* name, const char* category,
       const char* arg_name = nullptr, double arg_value = 0.0) noexcept
      : recorder_(nullptr) {
    attach(recorder, name, category, arg_name, arg_value);
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() {
    if (recorder_ == nullptr || !recorder_->enabled()) return;
    event_.dur_ns = recorder_->now_ns() - event_.start_ns;
    recorder_->record(event_);
  }

  /// Attaches (or replaces) the span's argument after construction.
  void set_arg(const char* arg_name, double arg_value) noexcept {
    if (recorder_ == nullptr) return;
    event_.arg_name = arg_name;
    event_.arg_value = arg_value;
  }

 private:
  void attach(TraceRecorder& recorder, const char* name,
              const char* category, const char* arg_name,
              double arg_value) noexcept {
    if (!recorder.enabled()) return;
    recorder_ = &recorder;
    event_.name = name;
    event_.category = category;
    event_.arg_name = arg_name;
    event_.arg_value = arg_value;
    event_.start_ns = recorder.now_ns();
  }

  TraceRecorder* recorder_;
  /// Deliberately not default-initialized: zero-filling 48 bytes per span
  /// would dominate the disabled path. attach() writes every field before
  /// recorder_ becomes non-null, and nothing reads it while null.
  TraceEvent event_;
};

}  // namespace vmtherm::obs

// Compile-time kill-switch: -DVMTHERM_TRACE=0 removes every span from the
// build entirely. Default is compiled-in (runtime-gated, off by default).
#ifndef VMTHERM_TRACE
#define VMTHERM_TRACE 1
#endif

#define VMTHERM_OBS_CONCAT_IMPL(a, b) a##b
#define VMTHERM_OBS_CONCAT(a, b) VMTHERM_OBS_CONCAT_IMPL(a, b)

#if VMTHERM_TRACE
/// Opens a span covering the rest of the enclosing scope. `name` and
/// `category` must be string literals.
#define VMTHERM_SPAN(name, category)                              \
  ::vmtherm::obs::Span VMTHERM_OBS_CONCAT(vmtherm_obs_span_,      \
                                          __LINE__)((name), (category))
/// Like VMTHERM_SPAN with one numeric argument (e.g. a batch size).
#define VMTHERM_SPAN_ARG(name, category, arg_name, arg_value)     \
  ::vmtherm::obs::Span VMTHERM_OBS_CONCAT(vmtherm_obs_span_,      \
                                          __LINE__)(              \
      (name), (category), (arg_name), static_cast<double>(arg_value))
#else
#define VMTHERM_SPAN(name, category) ((void)0)
#define VMTHERM_SPAN_ARG(name, category, arg_name, arg_value) ((void)0)
#endif
