// vmtherm/obs/metrics.h
//
// A lightweight metrics registry: named counters, gauges and fixed-bucket
// histograms, updatable concurrently (relaxed atomics — metrics never
// synchronize anything), queryable as an ASCII table and as JSON. Born in
// src/serve for the fleet engine, promoted to src/obs so the tracer and
// accuracy tracker can publish into the same registry without a
// serve-dependency cycle; serve/metrics.h aliases everything back into
// vmtherm::serve for existing callers.
//
// Every metric is registered as either *deterministic* (its value is a
// pure function of the logical event stream: event counts, calibration
// error distribution) or *timing* (wall-clock dependent: latency
// histograms, queue high-water marks). `to_json(/*include_timing=*/false)`
// emits only the deterministic subset, which the replay determinism tests
// compare byte-for-byte across shard/thread counts.

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/error.h"
#include "util/table.h"

namespace vmtherm::obs {

/// Whether a metric's value depends only on the logical event stream
/// (kDeterministic) or also on wall-clock scheduling (kTiming).
enum class MetricKind { kDeterministic, kTiming };

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  /// Overwrites the count (snapshot restore only).
  void set(std::uint64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }

 private:
  /// sync: relaxed — counters never order other memory.
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous signed value (fleet size, queue depth, high-water marks).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  /// Raises the gauge to `v` if it is currently lower (high-water marks).
  void update_max(std::int64_t v) noexcept;
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  /// sync: relaxed loads/stores; update_max uses a CAS loop, still relaxed.
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram. Buckets are defined by ascending *inclusive*
/// upper bounds (Prometheus `le` convention: a value lands in the first
/// bucket whose bound is >= value); an implicit overflow bucket catches
/// everything above the last bound
/// (bucket_count() == upper_bounds().size() + 1). Not movable — lives in
/// the registry's node-stable map.
class Histogram {
 public:
  /// Throws ConfigError unless bounds are non-empty, finite and strictly
  /// ascending.
  explicit Histogram(std::vector<double> upper_bounds);

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(double value) noexcept;

  const std::vector<double>& upper_bounds() const noexcept { return bounds_; }
  std::size_t bucket_count() const noexcept { return counts_.size(); }
  std::uint64_t count_in_bucket(std::size_t i) const;
  std::uint64_t total_count() const noexcept;

  /// Quantile estimate (linear interpolation inside the bucket; the
  /// overflow bucket reports the last finite bound). q in [0, 1]; returns
  /// 0 on an empty histogram.
  double quantile(double q) const;

  /// Overwrites all bucket counts (snapshot restore only). Throws
  /// ConfigError on size mismatch.
  void set_counts(const std::vector<std::uint64_t>& counts);

 private:
  std::vector<double> bounds_;
  /// sync: relaxed per-bucket increments; totals are eventually consistent.
  std::vector<std::atomic<std::uint64_t>> counts_;
};

/// Named metric registry. Registration (the named accessors) is
/// mutex-protected and idempotent — repeat lookups return the same object;
/// re-registering a name with a different kind (or different histogram
/// bounds) throws ConfigError. Returned references stay valid for the
/// registry's lifetime. Updates through the returned objects are lock-free.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name,
                   MetricKind kind = MetricKind::kDeterministic);
  Gauge& gauge(const std::string& name,
               MetricKind kind = MetricKind::kDeterministic);
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds,
                       MetricKind kind = MetricKind::kDeterministic);

  /// One row per metric, sorted by name ("metric | kind | value" with
  /// histograms summarized as count/p50/p99).
  Table to_table() const;

  /// JSON object {"counters": {...}, "gauges": {...}, "histograms": {...}}
  /// with names sorted and JSON-escaped, doubles printed with 17
  /// significant digits. include_timing=false omits kTiming metrics
  /// (deterministic subset).
  std::string to_json(bool include_timing = true) const;

  /// Visits every metric of one family in name order (snapshot support).
  void for_each_counter(
      const std::function<void(const std::string&, MetricKind,
                               const Counter&)>& fn) const;
  void for_each_histogram(
      const std::function<void(const std::string&, MetricKind,
                               const Histogram&)>& fn) const;

 private:
  struct CounterEntry {
    MetricKind kind;
    Counter counter;
    explicit CounterEntry(MetricKind k) : kind(k) {}
  };
  struct GaugeEntry {
    MetricKind kind;
    Gauge gauge;
    explicit GaugeEntry(MetricKind k) : kind(k) {}
  };
  struct HistogramEntry {
    MetricKind kind;
    Histogram histogram;
    HistogramEntry(MetricKind k, std::vector<double> bounds)
        : kind(k), histogram(std::move(bounds)) {}
  };

  /// guards: counters_/gauges_/histograms_ (registration and iteration;
  /// metric updates go through node-stable pointers without this lock).
  mutable std::mutex mutex_;
  std::map<std::string, CounterEntry> counters_;
  std::map<std::string, GaugeEntry> gauges_;
  std::map<std::string, HistogramEntry> histograms_;
};

}  // namespace vmtherm::obs
