#include "obs/accuracy.h"

#include <algorithm>
#include <cmath>

namespace vmtherm::obs {

WindowSums HostAccuracy::window_sums() const noexcept {
  WindowSums sums;
  const std::size_t n = in_window();
  std::size_t i = oldest();
  for (std::size_t k = 0; k < n; ++k) {
    const double dif = ring_[i].dif;
    sums.sum_sq_dif += dif * dif;
    sums.sum_abs_dif += std::abs(dif);
    sums.sum_dif += dif;
    i = i + 1 == ring_.size() ? 0 : i + 1;
  }
  sums.samples = n;
  return sums;
}

double HostAccuracy::rolling_mse() const noexcept {
  const WindowSums sums = window_sums();
  return sums.samples == 0 ? 0.0
                           : sums.sum_sq_dif / static_cast<double>(sums.samples);
}

double HostAccuracy::rolling_mae() const noexcept {
  const WindowSums sums = window_sums();
  return sums.samples == 0
             ? 0.0
             : sums.sum_abs_dif / static_cast<double>(sums.samples);
}

double HostAccuracy::rolling_mean_dif() const noexcept {
  const WindowSums sums = window_sums();
  return sums.samples == 0 ? 0.0
                           : sums.sum_dif / static_cast<double>(sums.samples);
}

double HostAccuracy::latest_gamma() const noexcept {
  if (total_ == 0) return 0.0;
  const std::size_t newest = next_ == 0 ? ring_.size() - 1 : next_ - 1;
  return ring_[newest].gamma;
}

double HostAccuracy::gamma_drift() const noexcept {
  if (in_window() < 2) return 0.0;
  const std::size_t newest = next_ == 0 ? ring_.size() - 1 : next_ - 1;
  return ring_[newest].gamma - ring_[oldest()].gamma;
}

FleetAccuracyStats aggregate_fleet(std::vector<HostAccuracyStats> hosts) {
  std::sort(hosts.begin(), hosts.end(),
            [](const HostAccuracyStats& a, const HostAccuracyStats& b) {
              return a.host_id < b.host_id;
            });
  FleetAccuracyStats fleet;
  WindowSums merged;
  for (const HostAccuracyStats& host : hosts) {
    fleet.observations += host.observations;
    merged.sum_sq_dif += host.sums.sum_sq_dif;
    merged.sum_abs_dif += host.sums.sum_abs_dif;
    merged.sum_dif += host.sums.sum_dif;
    merged.samples += host.sums.samples;
    if (host.drifted) ++fleet.hosts_drifted;
  }
  fleet.samples_in_window = merged.samples;
  if (merged.samples > 0) {
    const double n = static_cast<double>(merged.samples);
    fleet.rolling_mse = merged.sum_sq_dif / n;
    fleet.rolling_mae = merged.sum_abs_dif / n;
    fleet.rolling_mean_dif = merged.sum_dif / n;
  }
  fleet.hosts = std::move(hosts);
  return fleet;
}

}  // namespace vmtherm::obs
