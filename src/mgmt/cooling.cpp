#include "mgmt/cooling.h"

#include <algorithm>

namespace vmtherm::mgmt {

double CoolingModel::cop(double supply_c) noexcept {
  return 0.0068 * supply_c * supply_c + 0.0008 * supply_c + 0.458;
}

double CoolingModel::cooling_power_watts(double it_watts, double supply_c) {
  detail::require(it_watts >= 0.0, "it_watts must be >= 0");
  const double c = cop(supply_c);
  detail::require(c > 0.0, "cooling COP non-positive at this supply temp");
  return it_watts / c;
}

double CoolingModel::saving_fraction(double from_c, double to_c) {
  const double before = cooling_power_watts(1.0, from_c);
  const double after = cooling_power_watts(1.0, to_c);
  return (before - after) / before;
}

SetpointPlan plan_setpoint(const core::StableTemperaturePredictor& predictor,
                           const std::vector<PlannedHost>& fleet,
                           double baseline_supply_c, double max_supply_c,
                           double cpu_limit_c, double safety_margin_c,
                           double step_c) {
  detail::require(!fleet.empty(), "setpoint planning needs hosts");
  detail::require(max_supply_c >= baseline_supply_c,
                  "max supply must be >= baseline supply");
  detail::require(step_c > 0.0, "setpoint step must be positive");
  detail::require(safety_margin_c >= 0.0, "safety margin must be >= 0");

  const double budget_c = cpu_limit_c - safety_margin_c;

  auto hottest_at = [&](double supply_c) {
    double hottest = -1e30;
    std::size_t who = 0;
    for (std::size_t h = 0; h < fleet.size(); ++h) {
      const double predicted = predictor.predict(
          fleet[h].server, fleet[h].vms, fleet[h].fans, supply_c);
      if (predicted > hottest) {
        hottest = predicted;
        who = h;
      }
    }
    return std::pair<double, std::size_t>{hottest, who};
  };

  SetpointPlan plan;
  plan.baseline_supply_c = baseline_supply_c;
  plan.recommended_supply_c = baseline_supply_c;
  auto [hottest, who] = hottest_at(baseline_supply_c);
  plan.hottest_predicted_c = hottest;
  plan.hottest_host = who;

  // Walk the setpoint up while the hottest prediction stays within budget.
  for (double supply = baseline_supply_c + step_c;
       supply <= max_supply_c + 1e-9; supply += step_c) {
    auto [h, w] = hottest_at(supply);
    if (h > budget_c) break;
    plan.recommended_supply_c = supply;
    plan.hottest_predicted_c = h;
    plan.hottest_host = w;
  }

  plan.cooling_saving_fraction = CoolingModel::saving_fraction(
      baseline_supply_c, plan.recommended_supply_c);
  return plan;
}

}  // namespace vmtherm::mgmt
