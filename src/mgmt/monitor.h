// vmtherm/mgmt/monitor.h
//
// ThermalMonitorService: the online serving layer. One service instance
// holds the trained stable-temperature model plus a calibrated dynamic
// predictor per registered host; the control plane feeds it sensor samples
// and configuration changes (VM placement / migration / fan changes), and
// queries temperature forecasts and hotspot risks.

#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/dynamic_predictor.h"
#include "core/stable_predictor.h"

namespace vmtherm::mgmt {

/// A host's logical configuration as known to the monitor.
struct MonitoredConfig {
  sim::ServerSpec server;
  int fans = 4;
  std::vector<sim::VmConfig> vms;
  double env_temp_c = 23.0;
};

/// One hotspot-risk row from ThermalMonitorService::hotspot_risks.
struct HotspotRisk {
  std::string host_id;
  double forecast_c = 0.0;   ///< predicted temperature at now + horizon
  bool at_risk = false;      ///< forecast >= threshold
};

/// Online thermal monitoring over a fleet.
///
/// Thread-compatibility: externally synchronized (one control-plane
/// thread), per the DESIGN.md §6 rule — service façades stay single-
/// threaded; concurrency lives in serve::FleetEngine, the library's one
/// internally synchronized service.
class ThermalMonitorService {
 public:
  /// The service copies the predictor (value semantics; the model is a few
  /// hundred support vectors at most).
  ThermalMonitorService(core::StableTemperaturePredictor predictor,
                        core::DynamicOptions dynamic_options = {});

  /// Registers a host at absolute time t0 with its current measured
  /// temperature. Throws ConfigError if the id is already registered.
  void register_host(const std::string& host_id, MonitoredConfig config,
                     double t0, double measured_c);

  /// Unregisters; throws ConfigError when unknown.
  void unregister_host(const std::string& host_id);

  bool has_host(const std::string& host_id) const noexcept;
  std::size_t host_count() const noexcept { return hosts_.size(); }

  /// Feeds one sensor sample (time-ordered per host).
  void observe(const std::string& host_id, double t, double measured_c);

  /// Applies a configuration change (placement/migration/fans/env) at time
  /// t with the current measured temperature; retargets the host's dynamic
  /// predictor at a fresh stable prediction.
  void update_config(const std::string& host_id, MonitoredConfig config,
                     double t, double measured_c);

  /// Current configuration of a host (throws ConfigError when unknown).
  const MonitoredConfig& config_of(const std::string& host_id) const;

  /// Forecast gap_s seconds after the host's latest observation.
  double forecast(const std::string& host_id, double gap_s) const;

  /// Stable temperature the host is predicted to converge to under its
  /// current configuration.
  double stable_prediction(const std::string& host_id) const;

  /// Fleet-wide risk scan: forecast each host `horizon_s` ahead and flag
  /// those at or above `threshold_c`. Rows sorted hottest first.
  std::vector<HotspotRisk> hotspot_risks(double horizon_s,
                                         double threshold_c) const;

  const core::StableTemperaturePredictor& stable_predictor() const noexcept {
    return predictor_;
  }

 private:
  struct Host {
    MonitoredConfig config;
    core::DynamicTemperaturePredictor tracker;
  };

  const Host& host(const std::string& host_id) const;
  Host& host(const std::string& host_id);

  core::StableTemperaturePredictor predictor_;
  core::DynamicOptions dynamic_options_;
  std::map<std::string, Host> hosts_;
};

}  // namespace vmtherm::mgmt
