// vmtherm/mgmt/autopilot.h
//
// Closed-loop thermal autopilot: the full proactive control loop running
// against a live (simulated) cluster. Periodically, it predicts each
// host's stable temperature under its *current* placement; when a host is
// headed over the target, it asks the MigrationPlanner for relieving moves
// and executes them as live migrations on the cluster — before the hotspot
// materializes. This is the end state the paper's introduction argues
// temperature prediction enables.

#pragma once

#include <string>
#include <vector>

#include "core/stable_predictor.h"
#include "mgmt/planner.h"
#include "sim/cluster.h"

namespace vmtherm::mgmt {

/// Control-loop policy.
struct AutopilotOptions {
  double scan_interval_s = 60.0;  ///< how often to re-evaluate the fleet
  PlannerOptions planner;         ///< target, headroom, per-scan move budget
  std::size_t max_migrations_total = 16;  ///< lifetime budget

  void validate() const {
    detail::require(scan_interval_s > 0.0, "scan interval must be positive");
    detail::require(max_migrations_total >= 1,
                    "autopilot needs a migration budget");
  }
};

/// One executed action (audit log).
struct AutopilotAction {
  double time_s = 0.0;
  std::string vm_id;
  std::size_t from_host = 0;
  std::size_t to_host = 0;
  double source_predicted_after_c = 0.0;
};

/// The controller. Owns a copy of the trained predictor; the caller owns
/// the cluster and drives time (call step() after every cluster.step()).
class Autopilot {
 public:
  Autopilot(core::StableTemperaturePredictor predictor,
            AutopilotOptions options = {});

  /// Evaluates the fleet if a scan is due and executes any planned
  /// migrations (skipping VMs already in flight). `env_c` is the room
  /// temperature to predict against (typically the cluster's current or
  /// nominal ambient). Returns the number of migrations started.
  std::size_t step(sim::Cluster& cluster, double env_c);

  const std::vector<AutopilotAction>& actions() const noexcept {
    return actions_;
  }
  std::size_t migrations_started() const noexcept { return actions_.size(); }

  /// Most recent per-host stable predictions (empty before the first scan).
  const std::vector<double>& last_predictions() const noexcept {
    return last_predictions_;
  }

 private:
  core::StableTemperaturePredictor predictor_;
  AutopilotOptions options_;
  double last_scan_s_ = -1e300;
  std::vector<AutopilotAction> actions_;
  std::vector<double> last_predictions_;
};

}  // namespace vmtherm::mgmt
