#include "mgmt/planner.h"

#include <algorithm>
#include <limits>

namespace vmtherm::mgmt {

double HostPlacement::used_memory_gb() const noexcept {
  double total = 0.0;
  for (const auto& vm : vms) total += vm.config.memory_gb;
  return total;
}

bool HostPlacement::fits(const sim::VmConfig& vm) const noexcept {
  return used_memory_gb() + vm.memory_gb <= server.memory_gb;
}

std::vector<sim::VmConfig> HostPlacement::configs() const {
  std::vector<sim::VmConfig> out;
  out.reserve(vms.size());
  for (const auto& vm : vms) out.push_back(vm.config);
  return out;
}

namespace {

double predict_host(const core::StableTemperaturePredictor& predictor,
                    const HostPlacement& host, double env_c) {
  return predictor.predict(host.server, host.configs(), host.fans, env_c);
}

}  // namespace

MigrationPlan plan_migrations(const core::StableTemperaturePredictor& predictor,
                              std::vector<HostPlacement> fleet,
                              const PlannerOptions& options) {
  detail::require(!fleet.empty(), "migration planning needs hosts");
  detail::require(options.max_moves > 0, "max_moves must be positive");

  MigrationPlan plan;
  for (const auto& host : fleet) {
    plan.predicted_before_c.push_back(
        predict_host(predictor, host, options.env_temp_c));
  }

  std::vector<double> current = plan.predicted_before_c;

  while (plan.moves.size() < options.max_moves) {
    // Hottest host over target.
    std::size_t hot = 0;
    double hottest = -std::numeric_limits<double>::infinity();
    for (std::size_t h = 0; h < fleet.size(); ++h) {
      if (current[h] > hottest) {
        hottest = current[h];
        hot = h;
      }
    }
    if (hottest <= options.target_c) break;  // fleet is healthy
    if (fleet[hot].vms.empty()) break;       // nothing to move

    // Best (vm, destination): maximize the source's cooling while keeping
    // the destination below target - headroom.
    struct Candidate {
      std::size_t vm_index = 0;
      std::size_t dest = 0;
      double source_after = 0.0;
      double dest_after = 0.0;
      bool valid = false;
    };
    Candidate best;
    double best_source_after = std::numeric_limits<double>::infinity();

    for (std::size_t v = 0; v < fleet[hot].vms.size(); ++v) {
      // Source prediction without this VM.
      HostPlacement source_without = fleet[hot];
      source_without.vms.erase(source_without.vms.begin() +
                               static_cast<long>(v));
      const double source_after =
          predict_host(predictor, source_without, options.env_temp_c);

      for (std::size_t d = 0; d < fleet.size(); ++d) {
        if (d == hot) continue;
        if (!fleet[d].fits(fleet[hot].vms[v].config)) continue;
        HostPlacement dest_with = fleet[d];
        dest_with.vms.push_back(fleet[hot].vms[v]);
        const double dest_after =
            predict_host(predictor, dest_with, options.env_temp_c);
        if (dest_after > options.target_c - options.dest_headroom_c) continue;

        // Prefer the move that cools the source the most; among equals the
        // coolest destination.
        if (source_after < best_source_after - 1e-9 ||
            (std::abs(source_after - best_source_after) <= 1e-9 &&
             best.valid && dest_after < best.dest_after)) {
          best_source_after = source_after;
          best = Candidate{v, d, source_after, dest_after, true};
        }
      }
    }

    if (!best.valid) break;  // no feasible relieving move

    MigrationMove move;
    move.vm_id = fleet[hot].vms[best.vm_index].id;
    move.from_host = hot;
    move.to_host = best.dest;
    move.source_predicted_after_c = best.source_after;
    move.dest_predicted_after_c = best.dest_after;
    plan.moves.push_back(move);

    // Apply to the working copy.
    fleet[best.dest].vms.push_back(fleet[hot].vms[best.vm_index]);
    fleet[hot].vms.erase(fleet[hot].vms.begin() +
                         static_cast<long>(best.vm_index));
    current[hot] = best.source_after;
    current[best.dest] = best.dest_after;
  }

  plan.predicted_after_c = current;
  plan.target_met = true;
  for (double temp : current) {
    if (temp > options.target_c) plan.target_met = false;
  }
  return plan;
}

}  // namespace vmtherm::mgmt
