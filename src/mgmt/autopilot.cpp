#include "mgmt/autopilot.h"

namespace vmtherm::mgmt {

Autopilot::Autopilot(core::StableTemperaturePredictor predictor,
                     AutopilotOptions options)
    : predictor_(std::move(predictor)), options_(options) {
  options_.validate();
}

std::size_t Autopilot::step(sim::Cluster& cluster, double env_c) {
  if (cluster.time_s() - last_scan_s_ < options_.scan_interval_s) return 0;
  last_scan_s_ = cluster.time_s();
  if (actions_.size() >= options_.max_migrations_total) return 0;

  // Snapshot the fleet's logical state.
  std::vector<HostPlacement> fleet;
  fleet.reserve(cluster.machine_count());
  for (std::size_t h = 0; h < cluster.machine_count(); ++h) {
    const auto& machine = cluster.machine(h);
    HostPlacement host;
    host.server = machine.spec();
    host.fans = machine.active_fans();
    for (const auto& vm : machine.vms()) {
      host.vms.push_back(PlacedVm{vm.id(), vm.config()});
    }
    fleet.push_back(std::move(host));
  }

  PlannerOptions planner_options = options_.planner;
  planner_options.env_temp_c = env_c;
  const MigrationPlan plan =
      plan_migrations(predictor_, fleet, planner_options);
  last_predictions_ = plan.predicted_before_c;
  if (plan.moves.empty()) return 0;

  std::size_t started = 0;
  for (const auto& move : plan.moves) {
    if (actions_.size() >= options_.max_migrations_total) break;
    // Skip anything already in flight (the planner cannot see transfers)
    // or that moved since the snapshot.
    if (cluster.is_migrating(move.vm_id)) continue;
    if (cluster.host_of(move.vm_id) != move.from_host) continue;
    // The plan may schedule chained moves whose preconditions (an earlier
    // move completing) do not hold yet; the cluster enforces memory, so a
    // temporarily infeasible move is simply dropped until the next scan.
    try {
      cluster.migrate(move.vm_id, move.to_host);
    } catch (const ConfigError&) {
      continue;  // destination filled up mid-plan; retry next scan
    }
    AutopilotAction action;
    action.time_s = cluster.time_s();
    action.vm_id = move.vm_id;
    action.from_host = move.from_host;
    action.to_host = move.to_host;
    action.source_predicted_after_c = move.source_predicted_after_c;
    actions_.push_back(std::move(action));
    ++started;
  }
  return started;
}

}  // namespace vmtherm::mgmt
