// vmtherm/mgmt/cooling.h
//
// Cooling-energy model and predictive setpoint planning. The paper's
// motivation: cooling is ~half of datacenter energy, and temperature
// prediction lets thermal management run the room warmer (higher CRAC
// supply temperature -> better chiller COP) without risking hotspots.
//
// COP model: the widely used HP Labs water-chiller fit
//   COP(T_supply) = 0.0068 T^2 + 0.0008 T + 0.458   (T in deg C)
// (Moore et al., "Making Scheduling 'Cool'", USENIX ATC 2005), so
// cooling_power = it_power / COP(T_supply).

#pragma once

#include <vector>

#include "core/stable_predictor.h"

namespace vmtherm::mgmt {

/// Chiller efficiency model.
class CoolingModel {
 public:
  /// Coefficient-of-performance at a CRAC supply temperature (> 0 over the
  /// physically sensible 10-40 C range this library targets).
  static double cop(double supply_c) noexcept;

  /// Watts of cooling power needed to remove `it_watts` of heat at the
  /// given supply temperature. Throws ConfigError for non-positive COP
  /// (supply far below freezing).
  static double cooling_power_watts(double it_watts, double supply_c);

  /// Fractional cooling-energy saving from raising the supply temperature
  /// `from_c` -> `to_c` at constant IT load (positive = saving).
  static double saving_fraction(double from_c, double to_c);
};

/// A host whose placement is known to the planner.
struct PlannedHost {
  sim::ServerSpec server;
  int fans = 4;
  std::vector<sim::VmConfig> vms;
  /// Estimated IT power draw of the host (for the cooling-energy account).
  double it_watts = 250.0;
};

/// Result of predictive setpoint planning.
struct SetpointPlan {
  double baseline_supply_c = 0.0;
  double recommended_supply_c = 0.0;
  /// Predicted stable temperature of the hottest host at the recommended
  /// setpoint.
  double hottest_predicted_c = 0.0;
  /// Index of that host.
  std::size_t hottest_host = 0;
  /// Fractional cooling-energy saving vs the baseline setpoint.
  double cooling_saving_fraction = 0.0;
};

/// Finds the highest CRAC supply temperature (searched in `step_c`
/// increments within [baseline_supply_c, max_supply_c]) such that every
/// host's predicted stable CPU temperature stays at or below
/// `cpu_limit_c - safety_margin_c`. This is the proactive decision the
/// paper's prediction enables. Throws ConfigError on empty fleets or an
/// inverted search range; returns the baseline if even it violates the
/// limit (saving 0).
SetpointPlan plan_setpoint(const core::StableTemperaturePredictor& predictor,
                           const std::vector<PlannedHost>& fleet,
                           double baseline_supply_c, double max_supply_c,
                           double cpu_limit_c, double safety_margin_c = 2.0,
                           double step_c = 0.5);

}  // namespace vmtherm::mgmt
