#include "mgmt/monitor.h"

#include <algorithm>

namespace vmtherm::mgmt {

ThermalMonitorService::ThermalMonitorService(
    core::StableTemperaturePredictor predictor,
    core::DynamicOptions dynamic_options)
    : predictor_(std::move(predictor)), dynamic_options_(dynamic_options) {
  dynamic_options_.validate();
}

void ThermalMonitorService::register_host(const std::string& host_id,
                                          MonitoredConfig config, double t0,
                                          double measured_c) {
  detail::require(!host_id.empty(), "host id must be non-empty");
  detail::require(hosts_.find(host_id) == hosts_.end(),
                  "host already registered: " + host_id);
  config.server.validate();

  Host host{std::move(config),
            core::DynamicTemperaturePredictor(dynamic_options_)};
  const double psi = predictor_.predict(host.config.server, host.config.vms,
                                        host.config.fans,
                                        host.config.env_temp_c);
  host.tracker.begin(t0, measured_c, psi);
  hosts_.emplace(host_id, std::move(host));
}

void ThermalMonitorService::unregister_host(const std::string& host_id) {
  const auto it = hosts_.find(host_id);
  detail::require(it != hosts_.end(), "unknown host: " + host_id);
  hosts_.erase(it);
}

bool ThermalMonitorService::has_host(const std::string& host_id) const noexcept {
  return hosts_.find(host_id) != hosts_.end();
}

const ThermalMonitorService::Host& ThermalMonitorService::host(
    const std::string& host_id) const {
  const auto it = hosts_.find(host_id);
  detail::require(it != hosts_.end(), "unknown host: " + host_id);
  return it->second;
}

ThermalMonitorService::Host& ThermalMonitorService::host(
    const std::string& host_id) {
  const auto it = hosts_.find(host_id);
  detail::require(it != hosts_.end(), "unknown host: " + host_id);
  return it->second;
}

void ThermalMonitorService::observe(const std::string& host_id, double t,
                                    double measured_c) {
  host(host_id).tracker.observe(t, measured_c);
}

void ThermalMonitorService::update_config(const std::string& host_id,
                                          MonitoredConfig config, double t,
                                          double measured_c) {
  Host& h = host(host_id);
  config.server.validate();
  h.config = std::move(config);
  const double psi = predictor_.predict(h.config.server, h.config.vms,
                                        h.config.fans, h.config.env_temp_c);
  h.tracker.retarget(t, measured_c, psi);
}

const MonitoredConfig& ThermalMonitorService::config_of(
    const std::string& host_id) const {
  return host(host_id).config;
}

double ThermalMonitorService::forecast(const std::string& host_id,
                                       double gap_s) const {
  return host(host_id).tracker.predict_ahead(gap_s);
}

double ThermalMonitorService::stable_prediction(
    const std::string& host_id) const {
  const Host& h = host(host_id);
  return predictor_.predict(h.config.server, h.config.vms, h.config.fans,
                            h.config.env_temp_c);
}

std::vector<HotspotRisk> ThermalMonitorService::hotspot_risks(
    double horizon_s, double threshold_c) const {
  std::vector<HotspotRisk> risks;
  risks.reserve(hosts_.size());
  for (const auto& [id, h] : hosts_) {
    HotspotRisk risk;
    risk.host_id = id;
    risk.forecast_c = h.tracker.predict_ahead(horizon_s);
    risk.at_risk = risk.forecast_c >= threshold_c;
    risks.push_back(std::move(risk));
  }
  std::sort(risks.begin(), risks.end(),
            [](const HotspotRisk& a, const HotspotRisk& b) {
              return a.forecast_c > b.forecast_c;
            });
  return risks;
}

}  // namespace vmtherm::mgmt
