// vmtherm/mgmt/planner.h
//
// Predictive migration planning: given the fleet's current placements and
// the stable-temperature predictor, compute a small set of VM migrations
// that brings every host's *predicted* stable temperature under a target —
// hotspot mitigation before the hotspot exists, which is exactly the
// proactive thermal management the paper motivates.

#pragma once

#include <string>
#include <vector>

#include "core/stable_predictor.h"

namespace vmtherm::mgmt {

/// A named VM as the planner sees it.
struct PlacedVm {
  std::string id;
  sim::VmConfig config;
};

/// A host and its resident VMs.
struct HostPlacement {
  sim::ServerSpec server;
  int fans = 4;
  std::vector<PlacedVm> vms;

  double used_memory_gb() const noexcept;
  bool fits(const sim::VmConfig& vm) const noexcept;
  std::vector<sim::VmConfig> configs() const;
};

/// One recommended move.
struct MigrationMove {
  std::string vm_id;
  std::size_t from_host = 0;
  std::size_t to_host = 0;
  double source_predicted_after_c = 0.0;
  double dest_predicted_after_c = 0.0;
};

/// Plan output: the moves plus per-host predictions before/after.
struct MigrationPlan {
  std::vector<MigrationMove> moves;
  std::vector<double> predicted_before_c;
  std::vector<double> predicted_after_c;
  bool target_met = false;  ///< all hosts under target after the plan
};

/// Planner options.
struct PlannerOptions {
  double target_c = 70.0;       ///< per-host predicted ceiling
  double env_temp_c = 23.0;     ///< room temperature used for predictions
  std::size_t max_moves = 8;    ///< plan size budget
  /// A destination must stay at least this far below target after
  /// receiving a VM (hysteresis so the plan does not create new hotspots).
  double dest_headroom_c = 2.0;
};

/// Greedy hotspot-relief planner. Each iteration takes the hottest
/// over-target host and moves the VM whose relocation yields the largest
/// reduction of that host's predicted temperature, to the feasible
/// destination that stays coolest. Deterministic; ties break toward lower
/// host/VM indices. Throws ConfigError on an empty fleet.
MigrationPlan plan_migrations(const core::StableTemperaturePredictor& predictor,
                              std::vector<HostPlacement> fleet,
                              const PlannerOptions& options = {});

}  // namespace vmtherm::mgmt
