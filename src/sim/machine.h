// vmtherm/sim/machine.h
//
// PhysicalMachine: a server with resident VMs, its thermal network and
// temperature sensor. Stepping a machine advances workloads, converts
// aggregate demand to power, integrates the RC network and takes a sensor
// reading. This is the simulated unit-under-test that replaces the paper's
// physical server.

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sim/sensor.h"
#include "sim/server.h"
#include "sim/thermal.h"
#include "sim/vm.h"
#include "util/rng.h"

namespace vmtherm::sim {

/// Snapshot of one machine step (feeds TracePoint / online predictors).
struct MachineSample {
  double time_s = 0.0;
  double cpu_temp_true_c = 0.0;
  double cpu_temp_sensed_c = 0.0;
  double power_watts = 0.0;
  double utilization = 0.0;  ///< aggregate CPU utilization [0, 1]
  int vm_count = 0;
};

/// Options controlling machine behaviour beyond the server spec.
struct MachineOptions {
  SensorSpec sensor;
  int active_fans = 4;          ///< θ_fan: fans running (1..fan_slots)
  double initial_temp_c = 22.0; ///< thermal state at t=0 (cold start)
  /// Extra CPU utilization on the host while a VM is migrating in or out
  /// (pre-copy dirty-page tracking / transfer overhead).
  double migration_cpu_overhead = 0.08;
  /// Migration duration per GB of VM memory (seconds/GB).
  double migration_s_per_gb = 2.5;
};

/// A live server hosting VMs.
///
/// Invariants (established at construction / mutation):
///  * resident VM memory never exceeds server memory;
///  * active_fans in [1, fan_slots].
class PhysicalMachine {
 public:
  PhysicalMachine(ServerSpec spec, MachineOptions options, Rng rng);

  const ServerSpec& spec() const noexcept { return spec_; }
  int active_fans() const noexcept { return options_.active_fans; }
  double time_s() const noexcept { return time_s_; }

  /// Changes the fan configuration at run time (clamped to [1, fan_slots]).
  void set_active_fans(int fans);

  /// Places a VM. Throws ConfigError when memory capacity would be
  /// exceeded or a VM with the same id is already resident.
  void add_vm(Vm vm);

  /// Removes and returns a VM (for migration); throws ConfigError when the
  /// id is not resident.
  Vm remove_vm(const std::string& vm_id);

  /// Starts a migration-overhead window of `duration_s` seconds (called by
  /// the cluster on both source and destination hosts).
  void begin_migration_overhead(double duration_s);

  bool has_vm(const std::string& vm_id) const noexcept;
  std::size_t vm_count() const noexcept { return vms_.size(); }
  const std::vector<Vm>& vms() const noexcept { return vms_; }

  double used_memory_gb() const noexcept;
  double free_memory_gb() const noexcept {
    return spec_.memory_gb - used_memory_gb();
  }
  int total_vcpus() const noexcept;

  /// Advances the machine by dt seconds under ambient temperature
  /// `ambient_c`; returns the post-step sample.
  MachineSample step(double dt, double ambient_c);

  /// Most recent sample (zeroed before the first step).
  const MachineSample& last_sample() const noexcept { return last_; }

  /// Ground-truth steady-state die temperature if current utilization and
  /// ambient persisted forever — used by tests.
  double steady_state_die_c(double utilization, double ambient_c) const;

  /// Direct access to the thermal network (tests / scenario setup).
  ThermalNetwork& thermal() noexcept { return thermal_; }
  const ThermalNetwork& thermal() const noexcept { return thermal_; }

 private:
  double power_at(double utilization) const noexcept;

  ServerSpec spec_;
  MachineOptions options_;
  std::vector<Vm> vms_;
  ThermalNetwork thermal_;
  TemperatureSensor sensor_;
  double time_s_ = 0.0;
  double migration_overhead_until_s_ = 0.0;
  MachineSample last_{};
};

}  // namespace vmtherm::sim
