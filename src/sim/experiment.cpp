#include "sim/experiment.h"

#include <algorithm>
#include <cmath>

namespace vmtherm::sim {

void ExperimentConfig::validate() const {
  server.validate();
  for (const auto& vm : vms) vm.validate();
  environment.validate();
  sensor.validate();
  detail::require(active_fans >= 1 && active_fans <= server.fan_slots,
                  "experiment active_fans out of range");
  detail::require(duration_s > 0.0, "experiment duration must be positive");
  detail::require(sample_interval_s > 0.0 && sample_interval_s <= duration_s,
                  "sample interval must be in (0, duration]");
  double mem = 0.0;
  for (const auto& vm : vms) mem += vm.memory_gb;
  detail::require(mem <= server.memory_gb,
                  "experiment vm memory exceeds server memory");
}

ExperimentResult run_experiment(const ExperimentConfig& config) {
  config.validate();

  Rng rng(config.seed);
  EnvironmentSpec env_spec = config.environment;
  env_spec.duration_s = config.duration_s;
  Environment env(env_spec, rng.fork(101));

  MachineOptions options;
  options.sensor = config.sensor;
  options.active_fans = config.active_fans;
  options.initial_temp_c = config.initial_temp_c;
  PhysicalMachine machine(config.server, options, rng.fork(102));

  Rng vm_rng = rng.fork(103);
  for (std::size_t i = 0; i < config.vms.size(); ++i) {
    machine.add_vm(
        Vm("vm-" + std::to_string(i), config.vms[i], vm_rng.fork(i)));
  }

  TemperatureTrace trace(config.sample_interval_s);

  // Initial point: temperature before the experiment starts (phi(0)).
  TracePoint p0;
  p0.time_s = 0.0;
  p0.cpu_temp_true_c = machine.thermal().die_temp_c();
  p0.cpu_temp_sensed_c = p0.cpu_temp_true_c;  // cold reading, no load noise
  p0.env_temp_c = env.current_c();
  p0.power_watts = 0.0;
  p0.utilization = 0.0;
  p0.vm_count = static_cast<int>(machine.vm_count());
  trace.push_back(p0);

  const double dt = config.sample_interval_s;
  const auto steps = static_cast<std::size_t>(
      std::llround(config.duration_s / config.sample_interval_s));
  for (std::size_t i = 1; i <= steps; ++i) {
    const double ambient = env.step(dt);
    const MachineSample s = machine.step(dt, ambient);
    TracePoint p;
    p.time_s = s.time_s;
    p.cpu_temp_true_c = s.cpu_temp_true_c;
    p.cpu_temp_sensed_c = s.cpu_temp_sensed_c;
    p.env_temp_c = ambient;
    p.power_watts = s.power_watts;
    p.utilization = s.utilization;
    p.vm_count = s.vm_count;
    trace.push_back(p);
  }

  return ExperimentResult{config, std::move(trace)};
}

void ScenarioRanges::validate() const {
  detail::require(min_vms >= 0 && max_vms >= min_vms,
                  "scenario vm range invalid");
  detail::require(min_fans >= 1 && max_fans >= min_fans,
                  "scenario fan range invalid");
  detail::require(max_env_c >= min_env_c, "scenario env range invalid");
  detail::require(!server_kinds.empty(), "scenario needs server kinds");
  detail::require(!vm_vcpu_choices.empty(), "scenario needs vcpu choices");
  detail::require(!vm_memory_choices_gb.empty(),
                  "scenario needs memory choices");
  detail::require(duration_s > 0.0 && sample_interval_s > 0.0,
                  "scenario durations must be positive");
  detail::require(dynamic_env_probability >= 0.0 &&
                      dynamic_env_probability <= 1.0,
                  "dynamic_env_probability must be in [0, 1]");
}

ScenarioSampler::ScenarioSampler(ScenarioRanges ranges, std::uint64_t seed)
    : ranges_(std::move(ranges)), rng_(seed) {
  ranges_.validate();
}

ExperimentConfig ScenarioSampler::next() {
  ExperimentConfig config;
  config.seed = rng_.next_u64();
  ++counter_;

  const auto kind_idx = static_cast<std::size_t>(rng_.uniform_int(
      0, static_cast<int>(ranges_.server_kinds.size()) - 1));
  config.server = make_server_spec(ranges_.server_kinds[kind_idx]);

  config.active_fans = std::clamp(
      rng_.uniform_int(ranges_.min_fans, ranges_.max_fans), 1,
      config.server.fan_slots);

  // Environment: mostly constant supply temperature; occasionally dynamic.
  config.environment.base_c = rng_.uniform(ranges_.min_env_c, ranges_.max_env_c);
  if (rng_.bernoulli(ranges_.dynamic_env_probability)) {
    // Magnitudes stay small (<= ~1 C): the schedule perturbs the run but the
    // base temperature remains an honest delta_env feature for Eq. (2).
    switch (rng_.uniform_int(0, 2)) {
      case 0:
        config.environment.kind = EnvScheduleKind::kDrift;
        config.environment.delta_c = rng_.uniform(-1.0, 1.0);
        break;
      case 1:
        config.environment.kind = EnvScheduleKind::kDiurnal;
        config.environment.amplitude_c = rng_.uniform(0.3, 1.0);
        config.environment.period_s = rng_.uniform(1200.0, 3600.0);
        break;
      default:
        config.environment.kind = EnvScheduleKind::kStep;
        config.environment.delta_c = rng_.uniform(-1.0, 1.0);
        config.environment.step_time_s = rng_.uniform(
            0.2 * ranges_.duration_s, 0.8 * ranges_.duration_s);
        break;
    }
  }

  // Machine starts thermally relaxed at (roughly) room temperature.
  config.initial_temp_c = config.environment.base_c + rng_.uniform(0.0, 1.0);
  config.duration_s = ranges_.duration_s;
  config.sample_interval_s = ranges_.sample_interval_s;

  // VM set: count then shapes, keeping within 90% of server memory and
  // reserving the smallest choice for each VM yet to be drawn.
  const int vm_count = rng_.uniform_int(ranges_.min_vms, ranges_.max_vms);
  const double smallest_mem = *std::min_element(
      ranges_.vm_memory_choices_gb.begin(), ranges_.vm_memory_choices_gb.end());
  const double budget = 0.9 * config.server.memory_gb;
  double used = 0.0;
  for (int i = 0; i < vm_count; ++i) {
    VmConfig vm;
    const auto vcpu_idx = static_cast<std::size_t>(rng_.uniform_int(
        0, static_cast<int>(ranges_.vm_vcpu_choices.size()) - 1));
    vm.vcpus = ranges_.vm_vcpu_choices[vcpu_idx];

    const double reserve = smallest_mem * static_cast<double>(vm_count - i - 1);
    std::vector<double> eligible;
    for (double m : ranges_.vm_memory_choices_gb) {
      if (used + m + reserve <= budget) eligible.push_back(m);
    }
    vm.memory_gb = eligible.empty()
                       ? smallest_mem
                       : eligible[static_cast<std::size_t>(rng_.uniform_int(
                             0, static_cast<int>(eligible.size()) - 1))];
    used += vm.memory_gb;

    const auto types = all_task_types();
    vm.task = types[static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<int>(types.size()) - 1))];
    config.vms.push_back(vm);
  }

  config.validate();
  return config;
}

std::vector<ExperimentConfig> ScenarioSampler::sample(std::size_t n) {
  std::vector<ExperimentConfig> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(next());
  return out;
}

}  // namespace vmtherm::sim
