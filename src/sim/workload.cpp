#include "sim/workload.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/error.h"

namespace vmtherm::sim {

std::string task_type_name(TaskType type) {
  switch (type) {
    case TaskType::kIdle: return "idle";
    case TaskType::kCpuBurn: return "cpu_burn";
    case TaskType::kMemoryBound: return "memory_bound";
    case TaskType::kWebServer: return "web_server";
    case TaskType::kBatch: return "batch";
    case TaskType::kBursty: return "bursty";
  }
  return "unknown";
}

TaskType task_type_from_name(const std::string& name) {
  for (TaskType t : all_task_types()) {
    if (task_type_name(t) == name) return t;
  }
  throw ConfigError("unknown task type name: " + name);
}

double task_type_mean_utilization(TaskType type) noexcept {
  switch (type) {
    case TaskType::kIdle: return 0.02;
    case TaskType::kCpuBurn: return 0.95;
    case TaskType::kMemoryBound: return 0.55;
    case TaskType::kWebServer: return 0.45;
    case TaskType::kBatch: return 0.75;
    case TaskType::kBursty: return 0.40;
  }
  return 0.0;
}

double task_type_memory_activity(TaskType type) noexcept {
  switch (type) {
    case TaskType::kIdle: return 0.05;
    case TaskType::kCpuBurn: return 0.25;
    case TaskType::kMemoryBound: return 0.95;
    case TaskType::kWebServer: return 0.45;
    case TaskType::kBatch: return 0.50;
    case TaskType::kBursty: return 0.35;
  }
  return 0.0;
}

namespace {

/// Utilization that fluctuates around a fixed mean with bounded Gaussian
/// noise and slow AR(1) drift — models idle / cpu-burn / memory / batch.
class SteadyUtilization final : public UtilizationModel {
 public:
  SteadyUtilization(double mean_util, double noise_sigma, Rng rng)
      : mean_(mean_util), sigma_(noise_sigma), rng_(rng), drift_(0.0) {}

  double step(double dt) override {
    // AR(1) drift with ~120 s correlation time keeps consecutive samples
    // realistic rather than white noise.
    const double rho = std::exp(-dt / 120.0);
    drift_ = rho * drift_ + std::sqrt(std::max(0.0, 1.0 - rho * rho)) *
                                rng_.normal(0.0, sigma_);
    return std::clamp(mean_ + drift_, 0.0, 1.0);
  }

  double mean_utilization() const noexcept override { return mean_; }

 private:
  double mean_;
  double sigma_;
  Rng rng_;
  double drift_;
};

/// Sinusoidal diurnal pattern plus request noise — models a web server.
/// The "day" is compressed to diurnal_period_s so that multi-hour dynamics
/// appear within experiment-length runs.
class DiurnalUtilization final : public UtilizationModel {
 public:
  DiurnalUtilization(double mean_util, double amplitude, double period_s,
                     Rng rng)
      : mean_(mean_util),
        amplitude_(amplitude),
        period_s_(period_s),
        rng_(rng),
        // Random phase so co-located web VMs are not synchronized.
        phase_(rng_.uniform(0.0, 2.0 * std::numbers::pi)),
        t_(0.0) {}

  double step(double dt) override {
    t_ += dt;
    const double angle = 2.0 * std::numbers::pi * t_ / period_s_ + phase_;
    const double base = mean_ + amplitude_ * std::sin(angle);
    const double noise = rng_.normal(0.0, 0.05);
    return std::clamp(base + noise, 0.0, 1.0);
  }

  double mean_utilization() const noexcept override { return mean_; }

 private:
  double mean_;
  double amplitude_;
  double period_s_;
  Rng rng_;
  double phase_;
  double t_;
};

/// Two-state Markov-modulated process: ON at high utilization, OFF near
/// zero, exponential dwell times — models bursty analytics jobs.
class BurstyUtilization final : public UtilizationModel {
 public:
  BurstyUtilization(double on_util, double off_util, double mean_on_s,
                    double mean_off_s, Rng rng)
      : on_util_(on_util),
        off_util_(off_util),
        mean_on_s_(mean_on_s),
        mean_off_s_(mean_off_s),
        rng_(rng) {
    on_ = rng_.bernoulli(duty_cycle());
    remaining_s_ = rng_.exponential(1.0 / (on_ ? mean_on_s_ : mean_off_s_));
  }

  double step(double dt) override {
    // Weighted-average utilization across possibly multiple state changes
    // within dt.
    double remaining_dt = dt;
    double acc = 0.0;
    while (remaining_dt > 0.0) {
      const double span = std::min(remaining_dt, remaining_s_);
      acc += span * (on_ ? on_util_ : off_util_);
      remaining_dt -= span;
      remaining_s_ -= span;
      if (remaining_s_ <= 0.0) {
        on_ = !on_;
        remaining_s_ = rng_.exponential(1.0 / (on_ ? mean_on_s_ : mean_off_s_));
      }
    }
    const double util = acc / dt + rng_.normal(0.0, 0.02);
    return std::clamp(util, 0.0, 1.0);
  }

  double mean_utilization() const noexcept override {
    return duty_cycle() * on_util_ + (1.0 - duty_cycle()) * off_util_;
  }

 private:
  double duty_cycle() const noexcept {
    return mean_on_s_ / (mean_on_s_ + mean_off_s_);
  }

  double on_util_;
  double off_util_;
  double mean_on_s_;
  double mean_off_s_;
  Rng rng_;
  bool on_ = false;
  double remaining_s_ = 0.0;
};

}  // namespace

ReplayUtilization::ReplayUtilization(std::vector<double> samples,
                                     double sample_interval_s)
    : samples_(std::move(samples)), interval_s_(sample_interval_s) {
  detail::require(!samples_.empty(), "replay series must be non-empty");
  detail::require(interval_s_ > 0.0, "replay interval must be positive");
  double sum = 0.0;
  for (double& v : samples_) {
    v = std::clamp(v, 0.0, 1.0);
    sum += v;
  }
  mean_ = sum / static_cast<double>(samples_.size());
}

double ReplayUtilization::step(double dt) {
  // Average the replayed signal over [t_, t_ + dt] (piecewise constant
  // samples, looping series).
  const double period = interval_s_ * static_cast<double>(samples_.size());
  double remaining = dt;
  double pos = std::fmod(t_, period);
  double acc = 0.0;
  while (remaining > 1e-12) {
    const auto idx = static_cast<std::size_t>(pos / interval_s_) %
                     samples_.size();
    const double sample_end =
        (static_cast<double>(idx) + 1.0) * interval_s_;
    const double span = std::min(remaining, sample_end - pos);
    acc += samples_[idx] * span;
    pos = std::fmod(pos + span, period);
    remaining -= span;
  }
  t_ += dt;
  return acc / dt;
}

std::unique_ptr<UtilizationModel> make_replay_model(
    std::vector<double> samples, double sample_interval_s) {
  return std::make_unique<ReplayUtilization>(std::move(samples),
                                             sample_interval_s);
}

std::unique_ptr<UtilizationModel> make_utilization_model(TaskType type,
                                                         Rng rng) {
  switch (type) {
    case TaskType::kIdle:
      return std::make_unique<SteadyUtilization>(0.02, 0.01, rng);
    case TaskType::kCpuBurn:
      return std::make_unique<SteadyUtilization>(0.95, 0.03, rng);
    case TaskType::kMemoryBound:
      return std::make_unique<SteadyUtilization>(0.55, 0.05, rng);
    case TaskType::kWebServer:
      // Period 600 s divides the profiling window [t_break, t_exp] for the
      // standard durations, so the random phase cancels out of psi_stable
      // (window-mean) while per-sample dynamics stay strongly diurnal.
      return std::make_unique<DiurnalUtilization>(0.45, 0.25, 600.0, rng);
    case TaskType::kBatch:
      return std::make_unique<SteadyUtilization>(0.75, 0.04, rng);
    case TaskType::kBursty:
      // 70% duty at 0.55 on-util -> mean ~= 0.40. Short on/off dwells keep
      // the realized window-mean close to the duty cycle (low label noise)
      // while individual samples still swing between regimes.
      return std::make_unique<BurstyUtilization>(0.55, 0.05, 35.0, 15.0, rng);
  }
  throw ConfigError("unknown task type in make_utilization_model");
}

}  // namespace vmtherm::sim
