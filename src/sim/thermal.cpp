#include "sim/thermal.h"

#include <algorithm>
#include <cmath>

namespace vmtherm::sim {

ThermalNetwork::ThermalNetwork(const ThermalParams& params,
                               double initial_temp_c)
    : params_(params), die_c_(initial_temp_c), sink_c_(initial_temp_c) {
  params_.validate();
}

void ThermalNetwork::step(double dt, double power_watts, double ambient_c,
                          int active_fans) noexcept {
  if (dt <= 0.0) return;
  active_fans = std::max(1, active_fans);
  const double r_ds = params_.die_to_sink_resistance;
  const double r_sa = params_.sink_to_ambient(active_fans);
  const double c_die = params_.die_capacitance_j_per_k;
  const double c_sink = params_.sink_capacitance_j_per_k;

  // Fast time constant bounds the stable Euler step.
  const double tau_fast = std::min(c_die * r_ds, c_sink * r_sa);
  const double dt_sub_max = tau_fast / 20.0;
  const int n_sub = std::max(1, static_cast<int>(std::ceil(dt / dt_sub_max)));
  const double h = dt / static_cast<double>(n_sub);

  for (int i = 0; i < n_sub; ++i) {
    const double q_ds = (die_c_ - sink_c_) / r_ds;   // die -> sink flow [W]
    const double q_sa = (sink_c_ - ambient_c) / r_sa; // sink -> ambient [W]
    die_c_ += h * (power_watts - q_ds) / c_die;
    sink_c_ += h * (q_ds - q_sa) / c_sink;
  }
}

double ThermalNetwork::steady_state_die_c(double power_watts, double ambient_c,
                                          int active_fans) const {
  const double r_total = params_.die_to_sink_resistance +
                         params_.sink_to_ambient(std::max(1, active_fans));
  return ambient_c + power_watts * r_total;
}

double ThermalNetwork::slow_time_constant_s(int active_fans) const {
  return params_.sink_capacitance_j_per_k *
         params_.sink_to_ambient(std::max(1, active_fans));
}

void ThermalNetwork::reset(double die_c, double sink_c) noexcept {
  die_c_ = die_c;
  sink_c_ = sink_c;
}

}  // namespace vmtherm::sim
