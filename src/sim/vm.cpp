#include "sim/vm.h"

namespace vmtherm::sim {

Vm::Vm(std::string id, const VmConfig& config, Rng rng)
    : id_(std::move(id)), config_(config) {
  detail::require(!id_.empty(), "vm id must be non-empty");
  config_.validate();
  model_ = make_utilization_model(config_.task, rng);
}

Vm::Vm(std::string id, const VmConfig& config,
       std::unique_ptr<UtilizationModel> model)
    : id_(std::move(id)), config_(config), model_(std::move(model)) {
  detail::require(!id_.empty(), "vm id must be non-empty");
  detail::require(model_ != nullptr, "vm utilization model must be non-null");
  config_.validate();
}

double Vm::step(double dt) {
  last_util_ = model_->step(dt);
  return last_util_;
}

}  // namespace vmtherm::sim
