// vmtherm/sim/trace.h
//
// Temperature traces: the time series a simulated experiment produces and
// the profiling/prediction layers consume.

#pragma once

#include <iosfwd>
#include <vector>

#include "util/error.h"

namespace vmtherm::sim {

/// One sampling instant of a machine under test.
struct TracePoint {
  double time_s = 0.0;        ///< seconds since experiment start
  double cpu_temp_true_c = 0.0;   ///< ground-truth die temperature
  double cpu_temp_sensed_c = 0.0; ///< sensor reading (what models see)
  double env_temp_c = 0.0;    ///< ambient at this instant
  double power_watts = 0.0;   ///< server power draw
  double utilization = 0.0;   ///< aggregate CPU utilization [0, 1]
  int vm_count = 0;           ///< VMs resident at this instant
};

/// A uniformly sampled experiment trace.
class TemperatureTrace {
 public:
  TemperatureTrace() = default;

  /// Declares the sampling interval; points appended with push_back must be
  /// interval_s apart (not enforced per point — experiment runners produce
  /// uniform traces by construction).
  explicit TemperatureTrace(double interval_s);

  void push_back(const TracePoint& p) { points_.push_back(p); }

  bool empty() const noexcept { return points_.empty(); }
  std::size_t size() const noexcept { return points_.size(); }
  double interval_s() const noexcept { return interval_s_; }

  const TracePoint& operator[](std::size_t i) const noexcept {
    return points_[i];
  }
  const std::vector<TracePoint>& points() const noexcept { return points_; }

  /// Total covered time (time of last point; 0 if empty).
  double duration_s() const noexcept {
    return points_.empty() ? 0.0 : points_.back().time_s;
  }

  /// Sensed temperatures of all points, in order.
  std::vector<double> sensed_temps() const;

  /// True temperatures of all points, in order.
  std::vector<double> true_temps() const;

  /// Mean *sensed* temperature over [from_s, to_s] (inclusive).
  /// Throws DataError if no point falls in the window.
  double mean_sensed_between(double from_s, double to_s) const;

  /// Mean *true* temperature over [from_s, to_s] (inclusive).
  double mean_true_between(double from_s, double to_s) const;

  /// Linear interpolation of the sensed temperature at time t (clamped to
  /// the trace ends). Throws DataError on an empty trace.
  double sensed_at(double t) const;

  /// Writes the trace as CSV (header + one row per point).
  void write_csv(std::ostream& os) const;

 private:
  double interval_s_ = 1.0;
  std::vector<TracePoint> points_;
};

}  // namespace vmtherm::sim
