#include "sim/cluster.h"

#include <algorithm>

namespace vmtherm::sim {

Cluster::Cluster(EnvironmentSpec env_spec, Rng rng)
    : env_(env_spec, rng.fork(1)), rng_(rng) {}

std::size_t Cluster::add_machine(ServerSpec spec, MachineOptions options) {
  machines_.emplace_back(std::move(spec), options,
                         rng_.fork(1000 + machines_.size()));
  return machines_.size() - 1;
}

void Cluster::place_vm(std::size_t machine_idx, Vm vm) {
  machines_.at(machine_idx).add_vm(std::move(vm));
}

std::size_t Cluster::host_of(const std::string& vm_id) const {
  for (std::size_t i = 0; i < machines_.size(); ++i) {
    if (machines_[i].has_vm(vm_id)) return i;
  }
  throw ConfigError("vm not found in cluster: " + vm_id);
}

bool Cluster::is_migrating(const std::string& vm_id) const noexcept {
  for (const auto& m : in_flight_) {
    if (m.vm_id == vm_id) return true;
  }
  return false;
}

void Cluster::migrate(const std::string& vm_id, std::size_t to_machine) {
  detail::require(to_machine < machines_.size(),
                  "migration destination out of range");
  for (const auto& m : in_flight_) {
    detail::require(m.vm_id != vm_id, "vm already migrating: " + vm_id);
  }
  const std::size_t from = host_of(vm_id);
  detail::require(from != to_machine, "migration to the same machine");

  // Find the VM to size the transfer.
  double vm_memory_gb = 0.0;
  for (const auto& vm : machines_[from].vms()) {
    if (vm.id() == vm_id) vm_memory_gb = vm.config().memory_gb;
  }
  detail::require(machines_[to_machine].free_memory_gb() >= vm_memory_gb,
                  "migration destination lacks memory for " + vm_id);

  // Transfer duration scales with VM memory (pre-copy transfer).
  const double duration =
      std::max(1.0, vm_memory_gb * 2.5 /* s per GB, matches MachineOptions */);

  MigrationEvent ev;
  ev.vm_id = vm_id;
  ev.from_machine = from;
  ev.to_machine = to_machine;
  ev.start_s = time_s_;
  ev.duration_s = duration;
  in_flight_.push_back(ev);

  machines_[from].begin_migration_overhead(duration);
  machines_[to_machine].begin_migration_overhead(duration);
}

void Cluster::step(double dt) {
  detail::require(dt > 0.0, "cluster step dt must be positive");
  time_s_ += dt;
  const double ambient = env_.step(dt);
  for (auto& machine : machines_) machine.step(dt, ambient);

  // Complete migrations whose transfer has finished: the VM switches hosts
  // at the end of the pre-copy (stop-and-copy instant).
  for (auto it = in_flight_.begin(); it != in_flight_.end();) {
    if (time_s_ >= it->start_s + it->duration_s) {
      Vm vm = machines_[it->from_machine].remove_vm(it->vm_id);
      machines_[it->to_machine].add_vm(std::move(vm));
      completed_.push_back(*it);
      it = in_flight_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace vmtherm::sim
