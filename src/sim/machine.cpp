#include "sim/machine.h"

#include <algorithm>
#include <cmath>

namespace vmtherm::sim {

PhysicalMachine::PhysicalMachine(ServerSpec spec, MachineOptions options,
                                 Rng rng)
    : spec_(std::move(spec)),
      options_(options),
      thermal_(spec_.thermal, options.initial_temp_c),
      sensor_(options.sensor, rng.fork(1)) {
  spec_.validate();
  detail::require(options_.active_fans >= 1 &&
                      options_.active_fans <= spec_.fan_slots,
                  "active_fans must be in [1, fan_slots]");
  detail::require(options_.migration_cpu_overhead >= 0.0 &&
                      options_.migration_cpu_overhead <= 1.0,
                  "migration_cpu_overhead must be in [0, 1]");
  detail::require(options_.migration_s_per_gb >= 0.0,
                  "migration_s_per_gb must be >= 0");
}

void PhysicalMachine::set_active_fans(int fans) {
  options_.active_fans = std::clamp(fans, 1, spec_.fan_slots);
}

void PhysicalMachine::add_vm(Vm vm) {
  detail::require(!has_vm(vm.id()),
                  "vm already resident on machine: " + vm.id());
  detail::require(used_memory_gb() + vm.config().memory_gb <= spec_.memory_gb,
                  "vm does not fit in machine memory: " + vm.id());
  vms_.push_back(std::move(vm));
}

Vm PhysicalMachine::remove_vm(const std::string& vm_id) {
  for (auto it = vms_.begin(); it != vms_.end(); ++it) {
    if (it->id() == vm_id) {
      Vm vm = std::move(*it);
      vms_.erase(it);
      return vm;
    }
  }
  throw ConfigError("vm not resident on machine: " + vm_id);
}

void PhysicalMachine::begin_migration_overhead(double duration_s) {
  migration_overhead_until_s_ =
      std::max(migration_overhead_until_s_, time_s_ + duration_s);
}

bool PhysicalMachine::has_vm(const std::string& vm_id) const noexcept {
  for (const auto& vm : vms_) {
    if (vm.id() == vm_id) return true;
  }
  return false;
}

double PhysicalMachine::used_memory_gb() const noexcept {
  double total = 0.0;
  for (const auto& vm : vms_) total += vm.config().memory_gb;
  return total;
}

int PhysicalMachine::total_vcpus() const noexcept {
  int total = 0;
  for (const auto& vm : vms_) total += vm.config().vcpus;
  return total;
}

double PhysicalMachine::power_at(double utilization) const noexcept {
  const auto& p = spec_.power;
  double active_mem = 0.0;
  for (const auto& vm : vms_) active_mem += vm.active_memory_gb();
  const double cpu_term = (p.max_cpu_watts - p.idle_watts) *
                          std::pow(std::clamp(utilization, 0.0, 1.0),
                                   p.cpu_exponent);
  return p.idle_watts + cpu_term + p.memory_watts_per_gb * active_mem;
}

MachineSample PhysicalMachine::step(double dt, double ambient_c) {
  detail::require(dt > 0.0, "machine step dt must be positive");
  time_s_ += dt;

  // Aggregate CPU demand: each VM demands vcpus * util cores; the server can
  // deliver at most physical_cores. Oversubscription saturates at 1.0.
  double demanded_cores = 0.0;
  for (auto& vm : vms_) {
    const double util = vm.step(dt);
    demanded_cores += util * static_cast<double>(vm.config().vcpus);
  }
  if (time_s_ < migration_overhead_until_s_) {
    demanded_cores +=
        options_.migration_cpu_overhead * static_cast<double>(spec_.physical_cores);
  }
  const double utilization =
      std::clamp(demanded_cores / static_cast<double>(spec_.physical_cores),
                 0.0, 1.0);

  const double watts = power_at(utilization);
  thermal_.step(dt, watts, ambient_c, options_.active_fans);

  last_.time_s = time_s_;
  last_.cpu_temp_true_c = thermal_.die_temp_c();
  last_.cpu_temp_sensed_c = sensor_.read(thermal_.die_temp_c());
  last_.power_watts = watts;
  last_.utilization = utilization;
  last_.vm_count = static_cast<int>(vms_.size());
  return last_;
}

double PhysicalMachine::steady_state_die_c(double utilization,
                                           double ambient_c) const {
  return thermal_.steady_state_die_c(power_at(utilization), ambient_c,
                                     options_.active_fans);
}

}  // namespace vmtherm::sim
