// vmtherm/sim/environment.h
//
// Datacenter environment (CRAC / room) temperature — the δ_env input of
// Eq. (2). The paper observes that environment temperature has a
// non-negligible impact on CPU temperature, so scenarios vary it through a
// handful of schedules.

#pragma once

#include <string>

#include "util/error.h"
#include "util/rng.h"

namespace vmtherm::sim {

/// Shape of the ambient-temperature trajectory over an experiment.
enum class EnvScheduleKind {
  kConstant,  ///< fixed supply temperature
  kDrift,     ///< linear drift from base to base+delta over the run
  kDiurnal,   ///< sinusoid around base with given amplitude/period
  kStep,      ///< jumps from base to base+delta at step_time_s (CRAC event)
};

/// Parameters for the ambient schedule + small high-frequency fluctuation.
struct EnvironmentSpec {
  EnvScheduleKind kind = EnvScheduleKind::kConstant;
  double base_c = 22.0;        ///< supply/base temperature
  double delta_c = 0.0;        ///< drift or step magnitude
  double amplitude_c = 0.0;    ///< diurnal amplitude
  double period_s = 3600.0;    ///< diurnal period
  double step_time_s = 0.0;    ///< when the step occurs
  double duration_s = 1800.0;  ///< experiment duration (drift normalization)
  double fluctuation_stddev_c = 0.10;  ///< AR(1) micro-fluctuation sigma

  void validate() const {
    detail::require(base_c > -20.0 && base_c < 60.0,
                    "environment base temperature implausible");
    detail::require(period_s > 0.0, "environment period must be positive");
    detail::require(duration_s > 0.0, "environment duration must be positive");
    detail::require(fluctuation_stddev_c >= 0.0,
                    "environment fluctuation must be >= 0");
  }
};

/// Stateful environment process: deterministic schedule + AR(1) fluctuation
/// from a private RNG substream.
class Environment {
 public:
  Environment(const EnvironmentSpec& spec, Rng rng);

  /// Advances by dt seconds and returns the ambient temperature for the new
  /// time.
  double step(double dt);

  /// Ambient temperature most recently produced (schedule value at t=0
  /// before the first step()).
  double current_c() const noexcept { return current_; }

  /// The deterministic schedule value at absolute time t (no fluctuation) —
  /// used by tests and by feature extraction of the "nominal" env.
  double schedule_at(double t) const noexcept;

  const EnvironmentSpec& spec() const noexcept { return spec_; }

 private:
  EnvironmentSpec spec_;
  Rng rng_;
  double t_ = 0.0;
  double fluct_ = 0.0;
  double current_;
};

}  // namespace vmtherm::sim
