// vmtherm/sim/experiment.h
//
// Experiment orchestration: configure a machine + VM set + environment, run
// it for t_exp seconds sampling at a fixed interval, and return the
// temperature trace. Also provides the randomized scenario sampler used to
// build training/test corpora (the paper's "numerous experiments ...
// altering running conditions").

#pragma once

#include <string>
#include <vector>

#include "sim/environment.h"
#include "sim/machine.h"
#include "sim/trace.h"

namespace vmtherm::sim {

/// Everything needed to reproduce one profiling experiment.
struct ExperimentConfig {
  ServerSpec server;
  std::vector<VmConfig> vms;
  EnvironmentSpec environment;
  SensorSpec sensor;
  int active_fans = 4;
  double initial_temp_c = 22.0;  ///< thermal state at t=0
  double duration_s = 1800.0;    ///< t_exp
  double sample_interval_s = 5.0;
  std::uint64_t seed = 1;

  void validate() const;
};

/// Output of run_experiment.
struct ExperimentResult {
  ExperimentConfig config;
  TemperatureTrace trace;
};

/// Runs one experiment end-to-end. Deterministic given the config.
ExperimentResult run_experiment(const ExperimentConfig& config);

/// Parameter ranges for the randomized scenario sampler (defaults follow
/// the paper's evaluation: 2-12 VMs, varying fans and room temperature).
struct ScenarioRanges {
  int min_vms = 2;
  int max_vms = 12;
  int min_fans = 1;
  int max_fans = 6;  ///< clamped per sampled server's fan_slots
  double min_env_c = 18.0;
  double max_env_c = 30.0;
  std::vector<std::string> server_kinds = {"small", "medium", "large"};
  std::vector<int> vm_vcpu_choices = {1, 2, 4, 8};
  std::vector<double> vm_memory_choices_gb = {2.0, 4.0, 8.0, 16.0};
  double duration_s = 1800.0;
  double sample_interval_s = 5.0;
  /// Probability that a scenario uses a non-constant environment schedule.
  double dynamic_env_probability = 0.25;

  void validate() const;
};

/// Draws independent random experiment configurations. Deterministic given
/// the seed; configuration i is independent of how many were drawn before
/// it only through the shared stream (sample in order to reproduce).
class ScenarioSampler {
 public:
  ScenarioSampler(ScenarioRanges ranges, std::uint64_t seed);

  /// Samples the next scenario.
  ExperimentConfig next();

  /// Samples n scenarios.
  std::vector<ExperimentConfig> sample(std::size_t n);

 private:
  ScenarioRanges ranges_;
  Rng rng_;
  std::uint64_t counter_ = 0;
};

}  // namespace vmtherm::sim
