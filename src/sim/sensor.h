// vmtherm/sim/sensor.h
//
// Temperature sensor model. Real digital thermal sensors report quantized,
// noisy readings; the prediction pipeline only ever sees sensor output, so
// the simulated testbed reproduces those imperfections.

#pragma once

#include "util/error.h"
#include "util/rng.h"

namespace vmtherm::sim {

/// Sensor imperfection parameters.
struct SensorSpec {
  double noise_stddev_c = 0.30;   ///< zero-mean Gaussian read noise
  double quantization_c = 0.25;   ///< reading resolution (0 disables)
  double bias_c = 0.0;            ///< constant calibration offset

  void validate() const {
    detail::require(noise_stddev_c >= 0.0, "sensor noise must be >= 0");
    detail::require(quantization_c >= 0.0, "sensor quantization must be >= 0");
  }
};

/// Stateful sensor bound to its own RNG substream.
class TemperatureSensor {
 public:
  TemperatureSensor(const SensorSpec& spec, Rng rng);

  /// Produces a reading of the true temperature `true_c`.
  double read(double true_c);

  const SensorSpec& spec() const noexcept { return spec_; }

 private:
  SensorSpec spec_;
  Rng rng_;
};

}  // namespace vmtherm::sim
