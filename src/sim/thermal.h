// vmtherm/sim/thermal.h
//
// Lumped RC thermal network of a CPU package. This is the ground-truth
// physics of the simulated testbed (the paper's reference [5] uses the same
// abstraction): heat generated on the die flows through a die->sink
// resistance into the heatsink mass, and from the heatsink through a
// fan-dependent resistance into ambient air.
//
//        P(t) --> [die: C_die] --R_ds--> [sink: C_sink] --R_sa(f)--> T_amb
//
// The resulting die-temperature step response is a sum of two exponentials
// with time constants of roughly seconds (die) and minutes (sink) — the
// slow mode is why the paper needs t_break = 600 s before temperatures are
// "stable", and its exponential shape is deliberately different from the
// logarithmic pre-defined curve of Eq. (3), which run-time calibration must
// then correct.

#pragma once

#include "sim/server.h"

namespace vmtherm::sim {

/// State + integrator for the two-node RC network above.
class ThermalNetwork {
 public:
  /// Initializes both nodes at `initial_temp_c` (typically the ambient
  /// temperature of a machine that has been off/idle).
  ThermalNetwork(const ThermalParams& params, double initial_temp_c);

  /// Advances the network by dt seconds with constant heat input
  /// `power_watts` and boundary condition `ambient_c`, with `active_fans`
  /// fans running. Uses sub-stepped forward Euler with a step small enough
  /// for stability (dt_sub <= tau_min / 20). noexcept: params were
  /// validated at construction. Requires active_fans >= 1 (clamped).
  void step(double dt, double power_watts, double ambient_c,
            int active_fans) noexcept;

  double die_temp_c() const noexcept { return die_c_; }
  double sink_temp_c() const noexcept { return sink_c_; }

  /// Analytic steady-state die temperature under constant conditions:
  /// T_amb + P * (R_ds + R_sa(f)). Used by tests and the RC baseline.
  double steady_state_die_c(double power_watts, double ambient_c,
                            int active_fans) const;

  /// Dominant (slow) time constant of the network in seconds, for the fan
  /// configuration given. Approximated as C_sink * R_sa(f) — tests use it
  /// to size experiment durations.
  double slow_time_constant_s(int active_fans) const;

  /// Forces the state (used when constructing scenarios that begin mid-run).
  void reset(double die_c, double sink_c) noexcept;

 private:
  ThermalParams params_;
  double die_c_;
  double sink_c_;
};

}  // namespace vmtherm::sim
