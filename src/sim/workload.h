// vmtherm/sim/workload.h
//
// Per-VM utilization generators. Each VM carries a task of one TaskType;
// the generator produces per-vCPU utilization in [0, 1] as a function of
// time, driven by a private deterministic RNG substream. This is the
// synthetic stand-in for the heterogeneous tenant workloads of the paper's
// testbed: the prediction model never sees these internals, only the
// aggregate features of Eq. (2).

#pragma once

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.h"

namespace vmtherm::sim {

/// Task categories deployed inside VMs. Mirrors the heterogeneity the paper
/// attributes to multi-tenant clouds.
enum class TaskType {
  kIdle = 0,        ///< parked VM, ~2% CPU
  kCpuBurn,         ///< compute-bound batch, ~95% CPU
  kMemoryBound,     ///< memory-streaming job: moderate CPU, high memory power
  kWebServer,       ///< diurnal request-driven load with noise
  kBatch,           ///< steady medium-high CPU
  kBursty,          ///< on/off Markov-modulated load
};

inline constexpr std::size_t kTaskTypeCount = 6;

/// All task types, in enum order — for iteration in feature encoders and
/// scenario samplers.
constexpr std::array<TaskType, kTaskTypeCount> all_task_types() {
  return {TaskType::kIdle,        TaskType::kCpuBurn, TaskType::kMemoryBound,
          TaskType::kWebServer,   TaskType::kBatch,   TaskType::kBursty};
}

/// Human-readable task name ("idle", "cpu_burn", ...).
std::string task_type_name(TaskType type);

/// Inverse of task_type_name; throws ConfigError on unknown names.
TaskType task_type_from_name(const std::string& name);

/// Expected long-run per-vCPU utilization of a task type (the model feature
/// "utilization demand"; the realized value fluctuates around this).
double task_type_mean_utilization(TaskType type) noexcept;

/// Fraction of a VM's memory actively touched by this task type (drives the
/// memory term of the power model).
double task_type_memory_activity(TaskType type) noexcept;

/// Stateful utilization process for one VM.
///
/// Implementations are deterministic functions of (construction params,
/// seed, sequence of step() calls).
class UtilizationModel {
 public:
  virtual ~UtilizationModel() = default;

  /// Advances the process by dt seconds and returns per-vCPU utilization in
  /// [0, 1] for the elapsed interval.
  virtual double step(double dt) = 0;

  /// Long-run mean utilization of this process (constant; used as the
  /// demand feature).
  virtual double mean_utilization() const noexcept = 0;
};

/// Factory: builds the generator matching a task type.
/// `rng` seeds the private substream of the returned model.
std::unique_ptr<UtilizationModel> make_utilization_model(TaskType type,
                                                         Rng rng);

/// Utilization replayed from a recorded series: sample i covers
/// [i*interval, (i+1)*interval); the series loops when exhausted. This is
/// the hook for driving the testbed with real datacenter traces instead of
/// the synthetic generators (values are clamped to [0, 1]).
class ReplayUtilization final : public UtilizationModel {
 public:
  /// Throws ConfigError on an empty series or non-positive interval.
  ReplayUtilization(std::vector<double> samples, double sample_interval_s);

  double step(double dt) override;
  double mean_utilization() const noexcept override { return mean_; }

 private:
  std::vector<double> samples_;
  double interval_s_;
  double t_ = 0.0;
  double mean_ = 0.0;
};

/// Convenience factory for replay models.
std::unique_ptr<UtilizationModel> make_replay_model(
    std::vector<double> samples, double sample_interval_s);

}  // namespace vmtherm::sim
