#include "sim/environment.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace vmtherm::sim {

Environment::Environment(const EnvironmentSpec& spec, Rng rng)
    : spec_(spec), rng_(rng) {
  spec_.validate();
  current_ = schedule_at(0.0);
}

double Environment::schedule_at(double t) const noexcept {
  switch (spec_.kind) {
    case EnvScheduleKind::kConstant:
      return spec_.base_c;
    case EnvScheduleKind::kDrift: {
      const double frac = std::clamp(t / spec_.duration_s, 0.0, 1.0);
      return spec_.base_c + spec_.delta_c * frac;
    }
    case EnvScheduleKind::kDiurnal: {
      const double angle = 2.0 * std::numbers::pi * t / spec_.period_s;
      return spec_.base_c + spec_.amplitude_c * std::sin(angle);
    }
    case EnvScheduleKind::kStep:
      return t >= spec_.step_time_s ? spec_.base_c + spec_.delta_c
                                    : spec_.base_c;
  }
  return spec_.base_c;
}

double Environment::step(double dt) {
  t_ += dt;
  if (spec_.fluctuation_stddev_c > 0.0) {
    // AR(1) with ~300 s correlation time: slow room-air wander.
    const double rho = std::exp(-dt / 300.0);
    fluct_ = rho * fluct_ + std::sqrt(std::max(0.0, 1.0 - rho * rho)) *
                                rng_.normal(0.0, spec_.fluctuation_stddev_c);
  }
  current_ = schedule_at(t_) + fluct_;
  return current_;
}

}  // namespace vmtherm::sim
