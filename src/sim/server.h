// vmtherm/sim/server.h
//
// Static description of a physical server: compute capacity, memory, power
// envelope and fan configuration. These are the θ_cpu / θ_memory / θ_fan
// inputs of the paper's Eq. (2), plus the power/thermal parameters our
// simulated testbed needs to produce ground-truth temperature traces.

#pragma once

#include <cstddef>
#include <string>

#include "util/error.h"

namespace vmtherm::sim {

/// Power envelope of a server: how utilization maps to heat.
///
/// P(u, m) = idle_watts
///         + (max_cpu_watts - idle_watts) * u^cpu_exponent
///         + memory_watts_per_gb * m
/// where u in [0,1] is aggregate CPU utilization and m is actively used
/// memory in GB. The mild superlinearity (cpu_exponent slightly > 1)
/// reflects voltage/frequency scaling on real parts.
struct PowerEnvelope {
  double idle_watts = 70.0;          ///< whole-server power at idle
  double max_cpu_watts = 260.0;      ///< whole-server power at 100% CPU
  double cpu_exponent = 1.15;        ///< superlinearity of the CPU term
  double memory_watts_per_gb = 0.35; ///< additional draw per GB in active use

  /// Validates physical plausibility; throws ConfigError.
  void validate() const {
    detail::require(idle_watts > 0.0, "idle_watts must be positive");
    detail::require(max_cpu_watts > idle_watts,
                    "max_cpu_watts must exceed idle_watts");
    detail::require(cpu_exponent >= 1.0 && cpu_exponent <= 2.0,
                    "cpu_exponent must be in [1, 2]");
    detail::require(memory_watts_per_gb >= 0.0,
                    "memory_watts_per_gb must be non-negative");
  }
};

/// Lumped-RC thermal parameters of the CPU package + heatsink stack.
/// See sim/thermal.h for the network these parametrize.
struct ThermalParams {
  double die_capacitance_j_per_k = 120.0;   ///< C_die
  double sink_capacitance_j_per_k = 2200.0; ///< C_sink (heatsink + case)
  double die_to_sink_resistance = 0.06;     ///< R_ds [K/W]
  /// Sink-to-ambient resistance with the reference fan configuration
  /// (reference_fans fans at full speed) [K/W].
  double sink_to_ambient_resistance = 0.10;
  int reference_fans = 4;                   ///< fans the R above refers to
  /// Exponent of the fan law: R_sa(f) = R_ref * (reference_fans/f)^fan_exponent.
  double fan_exponent = 0.65;

  void validate() const {
    detail::require(die_capacitance_j_per_k > 0.0, "C_die must be positive");
    detail::require(sink_capacitance_j_per_k > 0.0, "C_sink must be positive");
    detail::require(die_to_sink_resistance > 0.0, "R_ds must be positive");
    detail::require(sink_to_ambient_resistance > 0.0, "R_sa must be positive");
    detail::require(reference_fans >= 1, "reference_fans must be >= 1");
    detail::require(fan_exponent > 0.0 && fan_exponent <= 2.0,
                    "fan_exponent must be in (0, 2]");
  }

  /// Sink-to-ambient resistance for a given number of active fans (>= 1).
  double sink_to_ambient(int active_fans) const;
};

/// Complete static server description.
struct ServerSpec {
  std::string name = "server";
  int physical_cores = 16;
  double core_ghz = 2.4;
  double memory_gb = 64.0;
  int fan_slots = 6;  ///< maximum number of fans that can be active
  PowerEnvelope power;
  ThermalParams thermal;

  /// Total CPU capacity in GHz — the paper's θ_cpu.
  double cpu_capacity_ghz() const noexcept {
    return static_cast<double>(physical_cores) * core_ghz;
  }

  void validate() const {
    detail::require(!name.empty(), "server name must be non-empty");
    detail::require(physical_cores >= 1, "physical_cores must be >= 1");
    detail::require(core_ghz > 0.0, "core_ghz must be positive");
    detail::require(memory_gb > 0.0, "memory_gb must be positive");
    detail::require(fan_slots >= 1, "fan_slots must be >= 1");
    power.validate();
    thermal.validate();
  }
};

/// A few ready-made server models used by tests, examples and benches.
/// `kind` in {"small", "medium", "large"}; throws ConfigError otherwise.
ServerSpec make_server_spec(const std::string& kind);

}  // namespace vmtherm::sim
