#include "sim/multicore.h"

#include <algorithm>
#include <cmath>

namespace vmtherm::sim {

void MultiCoreThermalParams::validate() const {
  detail::require(cores >= 1, "multicore: cores must be >= 1");
  detail::require(core_capacitance_j_per_k > 0.0, "multicore: C_core > 0");
  detail::require(core_to_sink_resistance > 0.0, "multicore: R_cs > 0");
  detail::require(core_to_core_resistance > 0.0, "multicore: R_cc > 0");
  detail::require(sink_capacitance_j_per_k > 0.0, "multicore: C_sink > 0");
  detail::require(sink_to_ambient_resistance > 0.0, "multicore: R_sa > 0");
  detail::require(reference_fans >= 1, "multicore: reference_fans >= 1");
  detail::require(fan_exponent > 0.0 && fan_exponent <= 2.0,
                  "multicore: fan exponent in (0, 2]");
}

double MultiCoreThermalParams::sink_to_ambient(int active_fans) const {
  detail::require(active_fans >= 1, "multicore: active_fans >= 1");
  const double ratio =
      static_cast<double>(reference_fans) / static_cast<double>(active_fans);
  return sink_to_ambient_resistance * std::pow(ratio, fan_exponent);
}

MultiCoreThermalNetwork::MultiCoreThermalNetwork(
    const MultiCoreThermalParams& params, double initial_temp_c)
    : params_(params),
      core_c_(static_cast<std::size_t>(params.cores), initial_temp_c),
      sink_c_(initial_temp_c) {
  params_.validate();
}

void MultiCoreThermalNetwork::step(double dt,
                                   const std::vector<double>& core_power_watts,
                                   double ambient_c, int active_fans) {
  detail::require(core_power_watts.size() == core_c_.size(),
                  "multicore: power vector size mismatch");
  if (dt <= 0.0) return;
  active_fans = std::max(1, active_fans);

  const double r_cs = params_.core_to_sink_resistance;
  const double r_cc = params_.core_to_core_resistance;
  const double r_sa = params_.sink_to_ambient(active_fans);
  const double c_core = params_.core_capacitance_j_per_k;
  const double c_sink = params_.sink_capacitance_j_per_k;
  const std::size_t n = core_c_.size();

  // Stability: the fastest mode involves a core coupled to sink and both
  // neighbours.
  const double g_core = 1.0 / r_cs + 2.0 / r_cc;
  const double tau_fast =
      std::min(c_core / g_core, c_sink * r_sa);
  const double h_max = tau_fast / 20.0;
  const int n_sub = std::max(1, static_cast<int>(std::ceil(dt / h_max)));
  const double h = dt / static_cast<double>(n_sub);

  std::vector<double> next(n);
  for (int s = 0; s < n_sub; ++s) {
    double q_into_sink = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double q_cs = (core_c_[i] - sink_c_) / r_cs;
      // Ring neighbours (single core: no lateral flow).
      double q_cc = 0.0;
      if (n > 1) {
        const std::size_t left = (i + n - 1) % n;
        const std::size_t right = (i + 1) % n;
        q_cc = (core_c_[i] - core_c_[left]) / r_cc +
               (core_c_[i] - core_c_[right]) / r_cc;
      }
      next[i] = core_c_[i] + h * (core_power_watts[i] - q_cs - q_cc) / c_core;
      q_into_sink += q_cs;
    }
    const double q_sa = (sink_c_ - ambient_c) / r_sa;
    sink_c_ += h * (q_into_sink - q_sa) / c_sink;
    core_c_ = next;
  }
}

double MultiCoreThermalNetwork::max_core_temp_c() const {
  return *std::max_element(core_c_.begin(), core_c_.end());
}

double MultiCoreThermalNetwork::core_spread_c() const {
  const auto [lo, hi] = std::minmax_element(core_c_.begin(), core_c_.end());
  return *hi - *lo;
}

MultiCorePhysicalMachine::MultiCorePhysicalMachine(
    ServerSpec spec, MultiCoreThermalParams thermal, int active_fans,
    double initial_temp_c, Rng /*rng*/)
    : spec_(std::move(spec)),
      active_fans_(active_fans),
      thermal_(
          [&] {
            thermal.cores = spec_.physical_cores;
            return thermal;
          }(),
          initial_temp_c),
      core_util_(static_cast<std::size_t>(spec_.physical_cores), 0.0) {
  spec_.validate();
  detail::require(active_fans_ >= 1 && active_fans_ <= spec_.fan_slots,
                  "multicore: active_fans in [1, fan_slots]");
}

void MultiCorePhysicalMachine::add_vm(Vm vm, std::vector<int> pinned_cores) {
  detail::require(static_cast<int>(pinned_cores.size()) == vm.config().vcpus,
                  "multicore: need one pinned core per vCPU");
  for (int core : pinned_cores) {
    detail::require(core >= 0 && core < spec_.physical_cores,
                    "multicore: pinned core out of range");
  }
  vms_.push_back(PinnedVm{std::move(vm), std::move(pinned_cores)});
}

void MultiCorePhysicalMachine::add_vm_round_robin(Vm vm, int first_core) {
  std::vector<int> pins;
  for (int v = 0; v < vm.config().vcpus; ++v) {
    pins.push_back((first_core + v) % spec_.physical_cores);
  }
  add_vm(std::move(vm), std::move(pins));
}

const std::vector<double>& MultiCorePhysicalMachine::step(double dt,
                                                          double ambient_c) {
  detail::require(dt > 0.0, "multicore: step dt must be positive");
  std::fill(core_util_.begin(), core_util_.end(), 0.0);
  for (auto& pinned : vms_) {
    const double util = pinned.vm.step(dt);
    for (int core : pinned.cores) {
      core_util_[static_cast<std::size_t>(core)] += util;
    }
  }
  for (double& u : core_util_) u = std::clamp(u, 0.0, 1.0);

  // Per-core power: even split of idle power plus per-core dynamic power.
  const auto n = static_cast<double>(spec_.physical_cores);
  const double idle_per_core = spec_.power.idle_watts / n;
  const double span_per_core =
      (spec_.power.max_cpu_watts - spec_.power.idle_watts) / n;
  std::vector<double> watts(core_util_.size());
  for (std::size_t i = 0; i < core_util_.size(); ++i) {
    watts[i] = idle_per_core +
               span_per_core * std::pow(core_util_[i], spec_.power.cpu_exponent);
  }
  thermal_.step(dt, watts, ambient_c, active_fans_);
  return core_util_;
}

}  // namespace vmtherm::sim
