// vmtherm/sim/cluster.h
//
// A small cluster of physical machines sharing a room environment, with a
// live-migration engine. Exercises the dynamic scenarios the paper calls
// out (VM migration changing a server's thermal input at run time).

#pragma once

#include <string>
#include <vector>

#include "sim/environment.h"
#include "sim/machine.h"

namespace vmtherm::sim {

/// A completed or in-flight migration.
struct MigrationEvent {
  std::string vm_id;
  std::size_t from_machine = 0;
  std::size_t to_machine = 0;
  double start_s = 0.0;
  double duration_s = 0.0;
};

/// Cluster of machines under one environment. Machines are indexed by
/// position; the cluster owns them.
class Cluster {
 public:
  Cluster(EnvironmentSpec env_spec, Rng rng);

  /// Adds a machine built from the spec/options; returns its index.
  std::size_t add_machine(ServerSpec spec, MachineOptions options);

  std::size_t machine_count() const noexcept { return machines_.size(); }
  PhysicalMachine& machine(std::size_t i) { return machines_.at(i); }
  const PhysicalMachine& machine(std::size_t i) const {
    return machines_.at(i);
  }

  double time_s() const noexcept { return time_s_; }
  double ambient_c() const noexcept { return env_.current_c(); }

  /// Places a fresh VM on machine `machine_idx`.
  void place_vm(std::size_t machine_idx, Vm vm);

  /// Starts a live migration of `vm_id` from its current host to
  /// `to_machine`. The VM keeps running on the source until the transfer
  /// completes (pre-copy model); both hosts pay CPU overhead during the
  /// transfer. Throws ConfigError if the VM is not found, already
  /// migrating, or the destination lacks memory.
  void migrate(const std::string& vm_id, std::size_t to_machine);

  /// Advances every machine and the environment by dt; completes any
  /// migrations whose transfer finished during this step.
  void step(double dt);

  /// Index of the machine currently hosting `vm_id`; throws ConfigError if
  /// not found.
  std::size_t host_of(const std::string& vm_id) const;

  /// Whether `vm_id` has a transfer in flight.
  bool is_migrating(const std::string& vm_id) const noexcept;

  /// Migrations completed so far (audit log for tests/examples).
  const std::vector<MigrationEvent>& completed_migrations() const noexcept {
    return completed_;
  }

 private:
  Environment env_;
  Rng rng_;
  std::vector<PhysicalMachine> machines_;
  std::vector<MigrationEvent> in_flight_;
  std::vector<MigrationEvent> completed_;
  double time_s_ = 0.0;
};

}  // namespace vmtherm::sim
