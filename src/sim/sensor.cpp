#include "sim/sensor.h"

#include <cmath>

namespace vmtherm::sim {

TemperatureSensor::TemperatureSensor(const SensorSpec& spec, Rng rng)
    : spec_(spec), rng_(rng) {
  spec_.validate();
}

double TemperatureSensor::read(double true_c) {
  double value = true_c + spec_.bias_c;
  if (spec_.noise_stddev_c > 0.0) {
    value += rng_.normal(0.0, spec_.noise_stddev_c);
  }
  if (spec_.quantization_c > 0.0) {
    value = std::round(value / spec_.quantization_c) * spec_.quantization_c;
  }
  return value;
}

}  // namespace vmtherm::sim
