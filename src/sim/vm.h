// vmtherm/sim/vm.h
//
// Virtual machines: configuration (the per-VM part of ξ_VM in Eq. 2) and a
// running instance bound to a utilization generator.

#pragma once

#include <memory>
#include <string>

#include "sim/workload.h"
#include "util/error.h"
#include "util/rng.h"

namespace vmtherm::sim {

/// Static VM shape + deployed task. This is what a scheduler knows about a
/// VM before placing it, and what the prediction model receives.
struct VmConfig {
  int vcpus = 2;
  double memory_gb = 4.0;
  TaskType task = TaskType::kBatch;

  void validate() const {
    detail::require(vcpus >= 1, "vm vcpus must be >= 1");
    detail::require(memory_gb > 0.0, "vm memory must be positive");
  }
};

/// A running VM: config + live utilization process + identity.
///
/// Move-only (owns its utilization model). Migration moves the Vm object
/// between machines, preserving workload state — utilization does not reset
/// when a VM lands on a new host.
class Vm {
 public:
  /// Creates a VM running its task's utilization process, seeded from `rng`.
  Vm(std::string id, const VmConfig& config, Rng rng);

  /// Creates a VM driven by a caller-supplied utilization process (e.g. a
  /// ReplayUtilization over a recorded trace). Throws ConfigError on a null
  /// model.
  Vm(std::string id, const VmConfig& config,
     std::unique_ptr<UtilizationModel> model);

  Vm(Vm&&) noexcept = default;
  Vm& operator=(Vm&&) noexcept = default;
  Vm(const Vm&) = delete;
  Vm& operator=(const Vm&) = delete;

  const std::string& id() const noexcept { return id_; }
  const VmConfig& config() const noexcept { return config_; }

  /// Advances the workload by dt seconds; returns per-vCPU utilization in
  /// [0, 1] and caches it for last_utilization().
  double step(double dt);

  /// Utilization produced by the most recent step() (0 before any step).
  double last_utilization() const noexcept { return last_util_; }

  /// Demanded CPU in GHz at the last step: vcpus * core_ghz * utilization.
  double cpu_demand_ghz(double core_ghz) const noexcept {
    return static_cast<double>(config_.vcpus) * core_ghz * last_util_;
  }

  /// Actively used memory in GB (config memory x task's activity factor).
  double active_memory_gb() const noexcept {
    return config_.memory_gb * task_type_memory_activity(config_.task);
  }

  /// Long-run mean per-vCPU utilization of the deployed task.
  double mean_utilization_demand() const noexcept {
    return model_->mean_utilization();
  }

 private:
  std::string id_;
  VmConfig config_;
  std::unique_ptr<UtilizationModel> model_;
  double last_util_ = 0.0;
};

}  // namespace vmtherm::sim
