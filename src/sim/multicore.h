// vmtherm/sim/multicore.h
//
// Per-core thermal extension. The paper models one CPU temperature per
// server; real dies have per-core sensors and per-core hotspots, and the
// paper's introduction frames single-core-single-task models as the state
// of the art it generalizes. This module refines the testbed to core
// granularity:
//
//   core_0 [C_core] --R_cs--+
//   core_1 [C_core] --R_cs--+--> [spreader+sink: C_sink] --R_sa(f)--> T_amb
//   ...                     |
//   core_{n-1} ------R_cs---+
//
// plus a lateral core-to-core coupling R_cc between ring neighbours (heat
// spreading through the die). VMs are pinned to cores; an unbalanced
// pinning produces per-core temperature spreads that a server-level model
// cannot see — quantified by the extension bench.

#pragma once

#include <vector>

#include "sim/server.h"
#include "sim/vm.h"
#include "util/rng.h"

namespace vmtherm::sim {

/// Parameters of the per-core RC network.
struct MultiCoreThermalParams {
  int cores = 16;
  double core_capacitance_j_per_k = 12.0;   ///< C_core (die is split)
  double core_to_sink_resistance = 0.9;     ///< R_cs per core [K/W]
  double core_to_core_resistance = 2.5;     ///< R_cc lateral [K/W]
  double sink_capacitance_j_per_k = 2200.0; ///< shared heatsink
  double sink_to_ambient_resistance = 0.10; ///< at reference_fans
  int reference_fans = 4;
  double fan_exponent = 0.65;

  void validate() const;

  double sink_to_ambient(int active_fans) const;
};

/// State + integrator for the per-core network.
class MultiCoreThermalNetwork {
 public:
  MultiCoreThermalNetwork(const MultiCoreThermalParams& params,
                          double initial_temp_c);

  /// Advances by dt seconds. `core_power_watts` holds the heat injected
  /// into each core this interval (size must equal cores; throws
  /// ConfigError otherwise).
  void step(double dt, const std::vector<double>& core_power_watts,
            double ambient_c, int active_fans);

  int cores() const noexcept { return params_.cores; }
  double core_temp_c(int core) const { return core_c_.at(static_cast<std::size_t>(core)); }
  const std::vector<double>& core_temps_c() const noexcept { return core_c_; }
  double sink_temp_c() const noexcept { return sink_c_; }

  /// Hottest core temperature.
  double max_core_temp_c() const;
  /// Hottest minus coolest core (the per-core spread a server-level model
  /// cannot represent).
  double core_spread_c() const;

 private:
  MultiCoreThermalParams params_;
  std::vector<double> core_c_;
  double sink_c_;
};

/// A machine refined to core granularity: VMs are pinned to explicit cores.
class MultiCorePhysicalMachine {
 public:
  /// The power envelope is split evenly across cores: a core at utilization
  /// u draws (max-idle)/cores * u^exponent plus its share of idle power.
  MultiCorePhysicalMachine(ServerSpec spec, MultiCoreThermalParams thermal,
                           int active_fans, double initial_temp_c, Rng rng);

  /// Pins a VM to specific cores (one entry per vCPU; a core may appear
  /// multiple times / host multiple vCPUs — it saturates at 100%). Throws
  /// ConfigError on out-of-range cores or mismatched pin counts.
  void add_vm(Vm vm, std::vector<int> pinned_cores);

  /// Round-robin convenience pinning starting at `first_core`.
  void add_vm_round_robin(Vm vm, int first_core);

  /// Advances dt seconds; returns per-core utilization for inspection.
  const std::vector<double>& step(double dt, double ambient_c);

  const MultiCoreThermalNetwork& thermal() const noexcept { return thermal_; }
  const ServerSpec& spec() const noexcept { return spec_; }
  std::size_t vm_count() const noexcept { return vms_.size(); }

 private:
  struct PinnedVm {
    Vm vm;
    std::vector<int> cores;
  };

  ServerSpec spec_;
  int active_fans_;
  MultiCoreThermalNetwork thermal_;
  std::vector<PinnedVm> vms_;
  std::vector<double> core_util_;
};

}  // namespace vmtherm::sim
