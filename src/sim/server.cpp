#include "sim/server.h"

#include <cmath>

namespace vmtherm::sim {

double ThermalParams::sink_to_ambient(int active_fans) const {
  detail::require(active_fans >= 1, "active_fans must be >= 1");
  const double ratio =
      static_cast<double>(reference_fans) / static_cast<double>(active_fans);
  return sink_to_ambient_resistance * std::pow(ratio, fan_exponent);
}

ServerSpec make_server_spec(const std::string& kind) {
  ServerSpec spec;
  if (kind == "small") {
    spec.name = "small-1u";
    spec.physical_cores = 8;
    spec.core_ghz = 2.0;
    spec.memory_gb = 32.0;
    spec.fan_slots = 4;
    spec.power.idle_watts = 45.0;
    spec.power.max_cpu_watts = 160.0;
    spec.thermal.sink_capacitance_j_per_k = 1600.0;
    spec.thermal.sink_to_ambient_resistance = 0.13;
  } else if (kind == "medium") {
    spec.name = "medium-2u";
    spec.physical_cores = 16;
    spec.core_ghz = 2.4;
    spec.memory_gb = 64.0;
    spec.fan_slots = 6;
    // Defaults from the struct definitions.
  } else if (kind == "large") {
    spec.name = "large-2u";
    spec.physical_cores = 32;
    spec.core_ghz = 2.8;
    spec.memory_gb = 192.0;
    spec.fan_slots = 8;
    spec.power.idle_watts = 110.0;
    spec.power.max_cpu_watts = 420.0;
    spec.thermal.sink_capacitance_j_per_k = 3200.0;
    spec.thermal.sink_to_ambient_resistance = 0.075;
  } else {
    throw ConfigError("unknown server kind: " + kind);
  }
  spec.validate();
  return spec;
}

}  // namespace vmtherm::sim
