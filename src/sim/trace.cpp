#include "sim/trace.h"

#include <algorithm>
#include <ostream>

#include "util/csv.h"
#include "util/table.h"

namespace vmtherm::sim {

TemperatureTrace::TemperatureTrace(double interval_s)
    : interval_s_(interval_s) {
  detail::require(interval_s > 0.0, "trace interval must be positive");
}

std::vector<double> TemperatureTrace::sensed_temps() const {
  std::vector<double> out;
  out.reserve(points_.size());
  for (const auto& p : points_) out.push_back(p.cpu_temp_sensed_c);
  return out;
}

std::vector<double> TemperatureTrace::true_temps() const {
  std::vector<double> out;
  out.reserve(points_.size());
  for (const auto& p : points_) out.push_back(p.cpu_temp_true_c);
  return out;
}

namespace {

template <typename Getter>
double mean_between(const std::vector<TracePoint>& points, double from_s,
                    double to_s, Getter get) {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& p : points) {
    if (p.time_s >= from_s && p.time_s <= to_s) {
      sum += get(p);
      ++n;
    }
  }
  vmtherm::detail::require_data(n > 0, "no trace points in requested window");
  return sum / static_cast<double>(n);
}

}  // namespace

double TemperatureTrace::mean_sensed_between(double from_s, double to_s) const {
  return mean_between(points_, from_s, to_s,
                      [](const TracePoint& p) { return p.cpu_temp_sensed_c; });
}

double TemperatureTrace::mean_true_between(double from_s, double to_s) const {
  return mean_between(points_, from_s, to_s,
                      [](const TracePoint& p) { return p.cpu_temp_true_c; });
}

double TemperatureTrace::sensed_at(double t) const {
  detail::require_data(!points_.empty(), "sensed_at on empty trace");
  if (t <= points_.front().time_s) return points_.front().cpu_temp_sensed_c;
  if (t >= points_.back().time_s) return points_.back().cpu_temp_sensed_c;
  // Uniform sampling -> direct index; fall back to search if needed.
  auto it = std::lower_bound(
      points_.begin(), points_.end(), t,
      [](const TracePoint& p, double value) { return p.time_s < value; });
  const auto& hi = *it;
  if (hi.time_s == t || it == points_.begin()) return hi.cpu_temp_sensed_c;
  const auto& lo = *(it - 1);
  const double frac = (t - lo.time_s) / (hi.time_s - lo.time_s);
  return lo.cpu_temp_sensed_c +
         frac * (hi.cpu_temp_sensed_c - lo.cpu_temp_sensed_c);
}

void TemperatureTrace::write_csv(std::ostream& os) const {
  CsvWriter writer(os);
  writer.write_row({"time_s", "cpu_temp_true_c", "cpu_temp_sensed_c",
                    "env_temp_c", "power_watts", "utilization", "vm_count"});
  for (const auto& p : points_) {
    writer.write_row({Table::num(p.time_s, 1), Table::num(p.cpu_temp_true_c, 4),
                      Table::num(p.cpu_temp_sensed_c, 4),
                      Table::num(p.env_temp_c, 4), Table::num(p.power_watts, 2),
                      Table::num(p.utilization, 4),
                      Table::num(static_cast<long long>(p.vm_count))});
  }
}

}  // namespace vmtherm::sim
