#include "ml/linreg.h"

#include "util/matrix.h"

namespace vmtherm::ml {

LinearRegression LinearRegression::fit(const Dataset& data, double lambda) {
  detail::require_data(!data.empty(), "linreg training set is empty");
  detail::require(lambda >= 0.0, "linreg lambda must be >= 0");

  const std::size_t n = data.size();
  const std::size_t d = data.dim();
  // Augment with an intercept column (unpenalized).
  Matrix x(n, d + 1);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) x(i, j) = data[i].x[j];
    x(i, d) = 1.0;
    y[i] = data[i].y;
  }

  const Matrix xt = x.transposed();
  Matrix xtx = xt.multiply(x);
  // Penalize weights but not the intercept.
  for (std::size_t j = 0; j < d; ++j) xtx(j, j) += lambda;
  // Tiny jitter on the full diagonal keeps the system SPD when features are
  // collinear (e.g. one-hot shares summing to 1).
  Matrix a = xtx.add_scaled_identity(1e-10);

  std::vector<double> xty(d + 1, 0.0);
  for (std::size_t j = 0; j <= d; ++j) {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) acc += x(i, j) * y[i];
    xty[j] = acc;
  }

  std::vector<double> solution;
  try {
    solution = cholesky_solve(a, xty);
  } catch (const NumericError&) {
    solution = gaussian_solve(a, xty);
  }

  std::vector<double> weights(solution.begin(), solution.begin() +
                                                    static_cast<long>(d));
  return LinearRegression(std::move(weights), solution[d]);
}

LinearRegression::LinearRegression(std::vector<double> weights,
                                   double intercept)
    : weights_(std::move(weights)), intercept_(intercept) {}

double LinearRegression::predict(std::span<const double> x) const {
  detail::require_data(x.size() == weights_.size(),
                       "linreg predict dimension mismatch");
  double acc = intercept_;
  for (std::size_t j = 0; j < x.size(); ++j) acc += weights_[j] * x[j];
  return acc;
}

std::vector<double> LinearRegression::predict(const Dataset& data) const {
  std::vector<double> out;
  out.reserve(data.size());
  for (const auto& s : data.samples()) out.push_back(predict(s.x));
  return out;
}

}  // namespace vmtherm::ml
