#include "ml/scaler.h"

#include <algorithm>

namespace vmtherm::ml {

MinMaxScaler MinMaxScaler::fit(const Dataset& data) {
  detail::require_data(!data.empty(), "cannot fit scaler on empty dataset");
  const std::size_t d = data.dim();
  std::vector<double> mins(d, 0.0);
  std::vector<double> maxs(d, 0.0);
  for (std::size_t j = 0; j < d; ++j) {
    mins[j] = data[0].x[j];
    maxs[j] = data[0].x[j];
  }
  for (std::size_t i = 1; i < data.size(); ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      mins[j] = std::min(mins[j], data[i].x[j]);
      maxs[j] = std::max(maxs[j], data[i].x[j]);
    }
  }
  return MinMaxScaler(std::move(mins), std::move(maxs));
}

MinMaxScaler::MinMaxScaler(std::vector<double> mins, std::vector<double> maxs)
    : mins_(std::move(mins)), maxs_(std::move(maxs)) {
  detail::require(mins_.size() == maxs_.size(),
                  "scaler min/max size mismatch");
  for (std::size_t j = 0; j < mins_.size(); ++j) {
    detail::require(mins_[j] <= maxs_[j], "scaler min exceeds max");
  }
}

std::vector<double> MinMaxScaler::transform(std::span<const double> x) const {
  std::vector<double> out;
  transform_into(x, out);
  return out;
}

void MinMaxScaler::transform_into(std::span<const double> x,
                                  std::vector<double>& out) const {
  detail::require_data(x.size() == mins_.size(),
                       "scaler input dimension mismatch");
  out.resize(x.size());
  for (std::size_t j = 0; j < x.size(); ++j) {
    const double span = maxs_[j] - mins_[j];
    out[j] = span > 0.0 ? -1.0 + 2.0 * (x[j] - mins_[j]) / span : 0.0;
  }
}

Dataset MinMaxScaler::transform(const Dataset& data) const {
  Dataset out;
  for (const auto& s : data.samples()) {
    out.add(Sample{transform(s.x), s.y});
  }
  return out;
}

std::vector<double> MinMaxScaler::inverse(
    std::span<const double> scaled) const {
  detail::require_data(scaled.size() == mins_.size(),
                       "scaler input dimension mismatch");
  std::vector<double> out(scaled.size());
  for (std::size_t j = 0; j < scaled.size(); ++j) {
    const double span = maxs_[j] - mins_[j];
    out[j] = span > 0.0 ? mins_[j] + (scaled[j] + 1.0) * 0.5 * span : mins_[j];
  }
  return out;
}

}  // namespace vmtherm::ml
