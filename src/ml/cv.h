// vmtherm/ml/cv.h
//
// k-fold cross-validation — the validation procedure easygrid runs inside
// its parameter search (the paper uses 10-fold).

#pragma once

#include <functional>
#include <vector>

#include "ml/dataset.h"

namespace vmtherm::util {
class ThreadPool;
}

namespace vmtherm::ml {

/// Index sets for k-fold CV: fold f is the validation set, the rest train.
struct FoldIndices {
  std::vector<std::size_t> train;
  std::vector<std::size_t> validation;
};

/// Builds k folds over n samples after a seeded shuffle. Every sample
/// appears in exactly one validation fold. Throws DataError when
/// n < folds or folds < 2.
std::vector<FoldIndices> make_folds(std::size_t n, std::size_t folds,
                                    Rng& rng);

/// A model-under-validation: fit on train, return predictions on the
/// validation features.
using FitPredictFn = std::function<std::vector<double>(
    const Dataset& train, const Dataset& validation)>;

/// Runs k-fold CV and returns the MSE averaged over folds (each fold's MSE
/// weighted by its validation size, i.e. pooled squared error).
///
/// When `pool` is non-null the folds are evaluated concurrently on it
/// (fit_predict must then be safe to call from multiple threads). The
/// result is bitwise identical to the serial path: per-fold squared-error
/// partials are reduced in fold order regardless of completion order.
double cross_validated_mse(const Dataset& data, std::size_t folds, Rng& rng,
                           const FitPredictFn& fit_predict,
                           util::ThreadPool* pool = nullptr);

}  // namespace vmtherm::ml
