#include "ml/cv.h"

#include "obs/trace.h"
#include "util/thread_pool.h"

namespace vmtherm::ml {

std::vector<FoldIndices> make_folds(std::size_t n, std::size_t folds,
                                    Rng& rng) {
  detail::require_data(folds >= 2, "cross-validation needs >= 2 folds");
  detail::require_data(n >= folds,
                       "cross-validation needs at least one sample per fold");
  const auto perm = rng.permutation(n);

  // Assign shuffled samples round-robin so fold sizes differ by at most 1.
  std::vector<std::size_t> fold_of(n);
  for (std::size_t i = 0; i < n; ++i) fold_of[perm[i]] = i % folds;

  std::vector<FoldIndices> out(folds);
  // Round-robin assignment puts base + 1 samples in the first n % folds
  // folds and base in the rest.
  const std::size_t base = n / folds;
  const std::size_t extra = n % folds;
  for (std::size_t f = 0; f < folds; ++f) {
    const std::size_t validation_size = base + (f < extra ? 1 : 0);
    out[f].validation.reserve(validation_size);
    out[f].train.reserve(n - validation_size);
  }

  // Single pass over fold_of: sample i lands in its home fold's validation
  // list and every other fold's train list, all in increasing-i order.
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t home = fold_of[i];
    out[home].validation.push_back(i);
    for (std::size_t f = 0; f < folds; ++f) {
      if (f != home) out[f].train.push_back(i);
    }
  }
  return out;
}

double cross_validated_mse(const Dataset& data, std::size_t folds, Rng& rng,
                           const FitPredictFn& fit_predict,
                           util::ThreadPool* pool) {
  const auto fold_sets = make_folds(data.size(), folds, rng);

  // Per-fold partials reduced in fold order below: the reduction is
  // associativity-stable, so serial and pooled runs agree bitwise.
  std::vector<double> fold_squared_error(fold_sets.size(), 0.0);
  std::vector<std::size_t> fold_count(fold_sets.size(), 0);
  const auto evaluate_fold = [&](std::size_t f) {
    VMTHERM_SPAN("ml.cv_fold", "ml");
    const Dataset train = data.subset(fold_sets[f].train);
    const Dataset validation = data.subset(fold_sets[f].validation);
    const std::vector<double> pred = fit_predict(train, validation);
    detail::require_data(pred.size() == validation.size(),
                         "cv fit_predict returned wrong prediction count");
    double squared_error = 0.0;
    for (std::size_t i = 0; i < validation.size(); ++i) {
      const double e = pred[i] - validation[i].y;
      squared_error += e * e;
    }
    fold_squared_error[f] = squared_error;
    fold_count[f] = validation.size();
  };

  if (pool != nullptr) {
    pool->parallel_for(0, fold_sets.size(), evaluate_fold);
  } else {
    for (std::size_t f = 0; f < fold_sets.size(); ++f) evaluate_fold(f);
  }

  double squared_error = 0.0;
  std::size_t count = 0;
  for (std::size_t f = 0; f < fold_sets.size(); ++f) {
    squared_error += fold_squared_error[f];
    count += fold_count[f];
  }
  return squared_error / static_cast<double>(count);
}

}  // namespace vmtherm::ml
