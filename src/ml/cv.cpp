#include "ml/cv.h"

namespace vmtherm::ml {

std::vector<FoldIndices> make_folds(std::size_t n, std::size_t folds,
                                    Rng& rng) {
  detail::require_data(folds >= 2, "cross-validation needs >= 2 folds");
  detail::require_data(n >= folds,
                       "cross-validation needs at least one sample per fold");
  const auto perm = rng.permutation(n);

  std::vector<FoldIndices> out(folds);
  // Assign shuffled samples round-robin so fold sizes differ by at most 1.
  std::vector<std::size_t> fold_of(n);
  for (std::size_t i = 0; i < n; ++i) fold_of[perm[i]] = i % folds;

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t f = 0; f < folds; ++f) {
      if (fold_of[i] == f) out[f].validation.push_back(i);
      else out[f].train.push_back(i);
    }
  }
  return out;
}

double cross_validated_mse(const Dataset& data, std::size_t folds, Rng& rng,
                           const FitPredictFn& fit_predict) {
  const auto fold_sets = make_folds(data.size(), folds, rng);
  double squared_error = 0.0;
  std::size_t count = 0;
  for (const auto& f : fold_sets) {
    const Dataset train = data.subset(f.train);
    const Dataset validation = data.subset(f.validation);
    const std::vector<double> pred = fit_predict(train, validation);
    detail::require_data(pred.size() == validation.size(),
                         "cv fit_predict returned wrong prediction count");
    for (std::size_t i = 0; i < validation.size(); ++i) {
      const double e = pred[i] - validation[i].y;
      squared_error += e * e;
    }
    count += validation.size();
  }
  return squared_error / static_cast<double>(count);
}

}  // namespace vmtherm::ml
