// vmtherm/ml/linreg.h
//
// Ridge / ordinary least squares linear regression — a closed-form baseline
// against which the paper's SVR is compared, and the fitting engine of the
// task-temperature baseline.

#pragma once

#include <span>
#include <vector>

#include "ml/dataset.h"

namespace vmtherm::ml {

/// Linear model y = w . x + b fit by (regularized) normal equations.
class LinearRegression {
 public:
  /// Fits on `data`; lambda >= 0 is the L2 penalty on w (not on b).
  /// Throws DataError on empty data, NumericError if the system is
  /// degenerate even after regularization.
  static LinearRegression fit(const Dataset& data, double lambda = 1e-8);

  /// Reconstructs from persisted parts.
  LinearRegression(std::vector<double> weights, double intercept);

  double predict(std::span<const double> x) const;
  std::vector<double> predict(const Dataset& data) const;

  const std::vector<double>& weights() const noexcept { return weights_; }
  double intercept() const noexcept { return intercept_; }

 private:
  std::vector<double> weights_;
  double intercept_ = 0.0;
};

}  // namespace vmtherm::ml
