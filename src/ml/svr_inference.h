// vmtherm/ml/svr_inference.h
//
// Batched, vectorized SVR inference engine — the serve-side hot path of the
// paper's stable-temperature predictor (Eq. 1 / Fig. 1a).
//
// At construction the support vectors are packed into ONE contiguous
// row-major matrix (n_sv x dim) with per-SV squared norms precomputed, so
// an RBF evaluation becomes
//
//   K(x, s_k) = exp(-gamma * (|x|^2 + |s_k|^2 - 2 x.s_k))
//
// and a whole query reduces to a blocked GEMV-style dot-product pass over
// the packed matrix followed by a fused kernel-transform/coefficient-
// reduction pass. The compute kernel streams a second, blocked-transposed
// copy of the matrix (feature-major within each 128-SV block) so the dot
// products accumulate with unit stride across support vectors — the inner
// loop auto-vectorizes. No ragged vector<vector<double>> pointer chasing,
// no per-query allocation.
//
// Determinism contract (matches the PR 1 thread-pool contract): every
// query is evaluated by exactly the same instruction sequence — same SV
// blocking, same fixed ascending-k reduction order, same exp_det
// polynomial — whether it arrives through predict(), predict_batch() on
// the calling thread, or predict_batch() sharded across a ThreadPool.
// Results are therefore bitwise-identical at any batch size and any
// thread count. (They are NOT bitwise-identical to a naive
// kernel_eval-summation for the RBF kernel, whose squared-distance
// summation order and libm exp differ; the equivalence is within a few
// ulps and the inference engine itself is the reference.)

#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ml/kernel.h"

namespace vmtherm::util {
class ThreadPool;
}

namespace vmtherm::ml {

/// Deterministic, branch-free exp: argument reduction by log2(e) plus a
/// Cephes-style rational approximation, scaled back with bit-twiddled
/// powers of two (no libm call, auto-vectorizable, <= 2 ulp). Identical
/// bits for identical inputs on every code path — the property the
/// bitwise-determinism contract of predict_batch is built on.
double exp_det(double x) noexcept;

/// Packed SVR decision function f(x) = sum_k beta_k K(s_k, x) + b.
/// Immutable after construction; safe to share across threads.
class SvrInference {
 public:
  /// Empty model: zero support vectors, f(x) = 0.
  SvrInference() = default;

  /// Packs ragged support vectors (all rows must share one dimension;
  /// throws ConfigError otherwise, or on a sv/coef count mismatch).
  SvrInference(KernelParams kernel,
               const std::vector<std::vector<double>>& support_vectors,
               std::vector<double> coefficients, double bias);

  /// Single-query prediction. Throws DataError on dimension mismatch
  /// (empty models accept any dimension and return the bias).
  double predict(std::span<const double> x) const;

  /// Batched prediction over `query_count` queries packed row-major into
  /// `queries` (query_count x dim). Results land in `out` in query order.
  /// When `pool` is non-null, query blocks are sharded across the pool
  /// with each result written to its pre-sized slot — bitwise-identical
  /// to the pool-less run at any thread count. Throws DataError when the
  /// flattened extents disagree.
  void predict_batch(std::span<const double> queries, std::size_t query_count,
                     std::span<double> out,
                     util::ThreadPool* pool = nullptr) const;

  std::size_t support_vector_count() const noexcept { return count_; }
  std::size_t dim() const noexcept { return dim_; }
  double bias() const noexcept { return bias_; }
  const KernelParams& kernel() const noexcept { return kernel_; }
  const std::vector<double>& coefficients() const noexcept {
    return coefficients_;
  }
  /// The packed row-major n_sv x dim support-vector matrix.
  std::span<const double> packed() const noexcept { return packed_; }
  /// Row view of one support vector.
  std::span<const double> support_vector(std::size_t k) const noexcept {
    return std::span<const double>(packed_.data() + k * dim_, dim_);
  }

 private:
  /// Unchecked single-query kernel over the packed matrix; the one code
  /// path every public entry point funnels through.
  double predict_one(const double* x) const noexcept;

  KernelParams kernel_;
  std::vector<double> packed_;    ///< n_sv x dim, row-major (API view)
  /// Blocked transpose of packed_: for each 128-SV block, dim x 128 in
  /// feature-major order, zero-padded to a full block. The GEMV kernel
  /// reads this copy so the SV-indexed inner loop has unit stride.
  std::vector<double> packed_t_;
  std::vector<double> sq_norms_;  ///< |s_k|^2 per SV, zero-padded (RBF)
  std::vector<double> coefficients_;  ///< beta_k, ascending k
  double bias_ = 0.0;
  std::size_t dim_ = 0;
  std::size_t count_ = 0;
};

}  // namespace vmtherm::ml
