#include "ml/grid.h"

#include <limits>
#include <optional>

#include "ml/cv.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace vmtherm::ml {

GridSearchResult grid_search_svr(const Dataset& data, const GridSpec& spec,
                                 util::ThreadPool* pool) {
  VMTHERM_SPAN_ARG("ml.grid_search", "ml", "points",
                   spec.c_values.size() * spec.gamma_values.size() *
                       spec.epsilon_values.size());
  spec.validate();
  detail::require_data(data.size() >= spec.folds,
                       "grid search needs at least `folds` samples");

  // One shared fold assignment: paired comparisons across grid points.
  Rng fold_rng(spec.seed);
  const auto folds = make_folds(data.size(), spec.folds, fold_rng);

  // Materialize each fold's train/validation datasets once for the whole
  // search instead of once per grid point (folds x |C|*|gamma|*|epsilon|
  // copies otherwise).
  struct FoldData {
    Dataset train;
    Dataset validation;
  };
  std::vector<FoldData> fold_data;
  fold_data.reserve(folds.size());
  for (const auto& f : folds) {
    fold_data.push_back(FoldData{data.subset(f.train),
                                 data.subset(f.validation)});
  }

  // Canonical grid order: C outer, gamma middle, epsilon inner.
  std::vector<SvrParams> points;
  points.reserve(spec.c_values.size() * spec.gamma_values.size() *
                 spec.epsilon_values.size());
  for (double c : spec.c_values) {
    for (double gamma : spec.gamma_values) {
      for (double eps : spec.epsilon_values) {
        SvrParams params;
        params.kernel.kind = spec.kernel;
        params.kernel.gamma = gamma;
        params.c = c;
        params.epsilon = eps;
        points.push_back(params);
      }
    }
  }

  GridSearchResult result;
  result.evaluated.resize(points.size());

  // Each grid point is evaluated by exactly one thread, with a fully
  // serial fold loop, into its own slot — so every cv_mse is bitwise
  // independent of the schedule.
  const auto evaluate_point = [&](std::size_t idx) {
    VMTHERM_SPAN("ml.grid_point", "ml");
    const SvrParams& params = points[idx];
    double squared_error = 0.0;
    std::size_t count = 0;
    for (const auto& fd : fold_data) {
      const SvrModel model = SvrModel::train(fd.train, params);
      for (const auto& s : fd.validation.samples()) {
        const double e = model.predict(s.x) - s.y;
        squared_error += e * e;
      }
      count += fd.validation.size();
    }
    result.evaluated[idx] =
        GridPoint{params, squared_error / static_cast<double>(count)};
  };

  std::optional<util::ThreadPool> local_pool;
  if (pool == nullptr) {
    const std::size_t threads =
        util::ThreadPool::resolve_thread_count(spec.threads);
    if (threads > 1) {
      // parallel_for also runs on the calling thread, so `threads` total.
      local_pool.emplace(threads - 1);
      pool = &*local_pool;
    }
  }
  if (pool != nullptr) {
    pool->parallel_for(0, points.size(), evaluate_point);
  } else {
    for (std::size_t idx = 0; idx < points.size(); ++idx) evaluate_point(idx);
  }

  // Explicit tie-breaking: strict < over a scan in grid order means the
  // lowest grid index wins among equal-MSE points, independent of the
  // order evaluations completed in.
  result.best_cv_mse = std::numeric_limits<double>::infinity();
  for (const auto& point : result.evaluated) {
    if (point.cv_mse < result.best_cv_mse) {
      result.best_cv_mse = point.cv_mse;
      result.best_params = point.params;
    }
  }
  return result;
}

}  // namespace vmtherm::ml
