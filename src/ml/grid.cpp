#include "ml/grid.h"

#include <limits>

#include "ml/cv.h"

namespace vmtherm::ml {

GridSearchResult grid_search_svr(const Dataset& data, const GridSpec& spec) {
  spec.validate();
  detail::require_data(data.size() >= spec.folds,
                       "grid search needs at least `folds` samples");

  // One shared fold assignment: paired comparisons across grid points.
  Rng fold_rng(spec.seed);
  const auto folds = make_folds(data.size(), spec.folds, fold_rng);

  GridSearchResult result;
  result.best_cv_mse = std::numeric_limits<double>::infinity();

  for (double c : spec.c_values) {
    for (double gamma : spec.gamma_values) {
      for (double eps : spec.epsilon_values) {
        SvrParams params;
        params.kernel.kind = spec.kernel;
        params.kernel.gamma = gamma;
        params.c = c;
        params.epsilon = eps;

        double squared_error = 0.0;
        std::size_t count = 0;
        for (const auto& f : folds) {
          const Dataset train = data.subset(f.train);
          const Dataset validation = data.subset(f.validation);
          const SvrModel model = SvrModel::train(train, params);
          for (const auto& s : validation.samples()) {
            const double e = model.predict(s.x) - s.y;
            squared_error += e * e;
          }
          count += validation.size();
        }
        const double cv_mse = squared_error / static_cast<double>(count);

        result.evaluated.push_back(GridPoint{params, cv_mse});
        if (cv_mse < result.best_cv_mse) {
          result.best_cv_mse = cv_mse;
          result.best_params = params;
        }
      }
    }
  }
  return result;
}

}  // namespace vmtherm::ml
