// vmtherm/ml/forest.h
//
// Random-forest regression: bootstrap-aggregated CART trees with per-split
// feature subsampling. A stronger generic baseline than linreg/kNN for the
// model-selection ablation — if the paper's SVR only won because the
// competition was weak, this is where it would show.

#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "ml/dataset.h"

namespace vmtherm::ml {

/// Forest hyper-parameters.
struct ForestParams {
  std::size_t n_trees = 100;
  std::size_t max_depth = 12;
  std::size_t min_samples_leaf = 2;
  /// Fraction of features considered at each split (0 < f <= 1).
  double feature_fraction = 0.5;
  bool bootstrap = true;
  std::uint64_t seed = 1;

  void validate() const {
    detail::require(n_trees >= 1, "forest needs >= 1 tree");
    detail::require(max_depth >= 1, "forest max_depth >= 1");
    detail::require(min_samples_leaf >= 1, "forest min_samples_leaf >= 1");
    detail::require(feature_fraction > 0.0 && feature_fraction <= 1.0,
                    "forest feature_fraction in (0, 1]");
  }
};

/// A trained regression forest. Deterministic given (data order, params).
class RandomForest {
 public:
  /// Trains on `data`; throws DataError on empty input.
  static RandomForest train(const Dataset& data, const ForestParams& params);

  double predict(std::span<const double> x) const;
  std::vector<double> predict(const Dataset& data) const;

  std::size_t tree_count() const noexcept { return trees_.size(); }

  /// Total node count over all trees (size/diagnostics).
  std::size_t node_count() const noexcept;

 private:
  struct Node {
    // Leaf when feature < 0.
    int feature = -1;
    double threshold = 0.0;
    double value = 0.0;  ///< leaf prediction
    int left = -1;
    int right = -1;
  };
  using Tree = std::vector<Node>;

  explicit RandomForest(std::vector<Tree> trees);

  static double predict_tree(const Tree& tree, std::span<const double> x);

  std::vector<Tree> trees_;
};

}  // namespace vmtherm::ml
