#include "ml/dataset.h"

#include <algorithm>

namespace vmtherm::ml {

Dataset::Dataset(std::vector<Sample> samples) {
  for (auto& s : samples) add(std::move(s));
}

void Dataset::add(Sample sample) {
  if (samples_.empty()) {
    dim_ = sample.x.size();
  } else {
    detail::require_data(sample.x.size() == dim_,
                         "sample feature dimension mismatch");
  }
  samples_.push_back(std::move(sample));
}

std::vector<double> Dataset::targets() const {
  std::vector<double> out;
  out.reserve(samples_.size());
  for (const auto& s : samples_) out.push_back(s.y);
  return out;
}

Dataset Dataset::shuffled(Rng& rng) const {
  const auto perm = rng.permutation(samples_.size());
  Dataset out;
  for (std::size_t i : perm) out.add(samples_[i]);
  return out;
}

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  Dataset out;
  for (std::size_t i : indices) {
    detail::require_data(i < samples_.size(), "subset index out of range");
    out.add(samples_[i]);
  }
  return out;
}

SplitResult train_test_split(const Dataset& data, double train_fraction,
                             Rng& rng) {
  detail::require_data(data.size() >= 2,
                       "train_test_split needs at least two samples");
  detail::require(train_fraction > 0.0 && train_fraction < 1.0,
                  "train_fraction must be in (0, 1)");
  Dataset shuffled = data.shuffled(rng);
  auto n_train = static_cast<std::size_t>(
      static_cast<double>(data.size()) * train_fraction);
  n_train = std::clamp<std::size_t>(n_train, 1, data.size() - 1);

  SplitResult result;
  for (std::size_t i = 0; i < shuffled.size(); ++i) {
    if (i < n_train) result.train.add(shuffled[i]);
    else result.test.add(shuffled[i]);
  }
  return result;
}

}  // namespace vmtherm::ml
