#include "ml/kernel.h"

#include <cmath>

namespace vmtherm::ml {

std::string kernel_kind_name(KernelKind kind) {
  switch (kind) {
    case KernelKind::kLinear: return "linear";
    case KernelKind::kPolynomial: return "polynomial";
    case KernelKind::kRbf: return "rbf";
    case KernelKind::kSigmoid: return "sigmoid";
  }
  return "unknown";
}

KernelKind kernel_kind_from_name(const std::string& name) {
  if (name == "linear") return KernelKind::kLinear;
  if (name == "polynomial") return KernelKind::kPolynomial;
  if (name == "rbf") return KernelKind::kRbf;
  if (name == "sigmoid") return KernelKind::kSigmoid;
  throw ConfigError("unknown kernel name: " + name);
}

double dot(std::span<const double> x, std::span<const double> z) noexcept {
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * z[i];
  return acc;
}

double squared_distance(std::span<const double> x,
                        std::span<const double> z) noexcept {
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double d = x[i] - z[i];
    acc += d * d;
  }
  return acc;
}

double kernel_eval(const KernelParams& params, std::span<const double> x,
                   std::span<const double> z) noexcept {
  switch (params.kind) {
    case KernelKind::kLinear:
      return dot(x, z);
    case KernelKind::kPolynomial:
      return std::pow(params.gamma * dot(x, z) + params.coef0, params.degree);
    case KernelKind::kRbf:
      return std::exp(-params.gamma * squared_distance(x, z));
    case KernelKind::kSigmoid:
      return std::tanh(params.gamma * dot(x, z) + params.coef0);
  }
  return 0.0;
}

}  // namespace vmtherm::ml
