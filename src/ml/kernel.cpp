#include "ml/kernel.h"

#include <cmath>
#include <string>

namespace vmtherm::ml {

std::string_view kernel_kind_name(KernelKind kind) noexcept {
  switch (kind) {
    case KernelKind::kLinear: return "linear";
    case KernelKind::kPolynomial: return "polynomial";
    case KernelKind::kRbf: return "rbf";
    case KernelKind::kSigmoid: return "sigmoid";
  }
  return "unknown";
}

KernelKind kernel_kind_from_name(std::string_view name) {
  if (name == "linear") return KernelKind::kLinear;
  if (name == "polynomial") return KernelKind::kPolynomial;
  if (name == "rbf") return KernelKind::kRbf;
  if (name == "sigmoid") return KernelKind::kSigmoid;
  throw ConfigError(std::string("unknown kernel name: ").append(name));
}

double pow_integer(double base, int exponent) noexcept {
  const bool negative = exponent < 0;
  // Magnitude via long long so INT_MIN does not overflow on negation.
  auto e = static_cast<unsigned long long>(
      negative ? -static_cast<long long>(exponent)
               : static_cast<long long>(exponent));
  double result = 1.0;
  double square = base;
  while (e != 0) {
    if ((e & 1u) != 0) result *= square;
    e >>= 1;
    if (e != 0) square *= square;
  }
  return negative ? 1.0 / result : result;
}

double dot(std::span<const double> x, std::span<const double> z) noexcept {
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * z[i];
  return acc;
}

double squared_distance(std::span<const double> x,
                        std::span<const double> z) noexcept {
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double d = x[i] - z[i];
    acc += d * d;
  }
  return acc;
}

double kernel_eval(const KernelParams& params, std::span<const double> x,
                   std::span<const double> z) noexcept {
  switch (params.kind) {
    case KernelKind::kLinear:
      return dot(x, z);
    case KernelKind::kPolynomial:
      return pow_integer(params.gamma * dot(x, z) + params.coef0,
                         params.degree);
    case KernelKind::kRbf:
      return std::exp(-params.gamma * squared_distance(x, z));
    case KernelKind::kSigmoid:
      return std::tanh(params.gamma * dot(x, z) + params.coef0);
  }
  return 0.0;
}

}  // namespace vmtherm::ml
