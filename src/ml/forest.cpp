#include "ml/forest.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/rng.h"

namespace vmtherm::ml {

RandomForest RandomForest::train(const Dataset& data,
                                 const ForestParams& params) {
  params.validate();
  detail::require_data(!data.empty(), "forest training set is empty");

  const std::size_t n = data.size();
  const std::size_t d = data.dim();
  Rng rng(params.seed);

  auto leaf_value = [&](const std::vector<std::size_t>& idx) {
    double sum = 0.0;
    for (std::size_t i : idx) sum += data[i].y;
    return sum / static_cast<double>(idx.size());
  };

  // Builds one tree; returns node storage.
  auto build_tree = [&](Rng tree_rng) {
    Tree tree;

    // Bootstrap sample (or the full index set).
    std::vector<std::size_t> root_idx;
    root_idx.reserve(n);
    if (params.bootstrap) {
      for (std::size_t i = 0; i < n; ++i) {
        root_idx.push_back(tree_rng.next_u64() % n);
      }
    } else {
      for (std::size_t i = 0; i < n; ++i) root_idx.push_back(i);
    }

    const auto features_per_split = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::ceil(
               params.feature_fraction * static_cast<double>(d))));

    // Iterative recursion via explicit stack of (node index, indices, depth).
    struct Work {
      int node;
      std::vector<std::size_t> idx;
      std::size_t depth;
    };
    std::vector<Work> stack;
    tree.push_back(Node{});
    stack.push_back({0, std::move(root_idx), 0});

    while (!stack.empty()) {
      Work work = std::move(stack.back());
      stack.pop_back();
      Node& placeholder = tree[static_cast<std::size_t>(work.node)];

      const bool must_leaf =
          work.depth >= params.max_depth ||
          work.idx.size() < 2 * params.min_samples_leaf;

      // Also leaf when the target is constant on this subset.
      bool constant = true;
      for (std::size_t i = 1; i < work.idx.size(); ++i) {
        if (data[work.idx[i]].y != data[work.idx[0]].y) {
          constant = false;
          break;
        }
      }

      if (must_leaf || constant) {
        placeholder.feature = -1;
        placeholder.value = leaf_value(work.idx);
        continue;
      }

      // Candidate features for this split.
      std::vector<std::size_t> features(d);
      std::iota(features.begin(), features.end(), 0);
      for (std::size_t i = 0; i < features_per_split && i + 1 < d; ++i) {
        const std::size_t j =
            i + tree_rng.next_u64() % (d - i);
        std::swap(features[i], features[j]);
      }
      features.resize(features_per_split);

      // Best split: minimize total SSE of the two children. For each
      // candidate feature, sort the subset by that feature and scan with
      // prefix sums.
      double best_sse = std::numeric_limits<double>::infinity();
      int best_feature = -1;
      double best_threshold = 0.0;

      std::vector<std::size_t> sorted = work.idx;
      for (std::size_t f : features) {
        std::sort(sorted.begin(), sorted.end(),
                  [&](std::size_t a, std::size_t b) {
                    return data[a].x[f] < data[b].x[f];
                  });
        double left_sum = 0.0;
        double left_sq = 0.0;
        double right_sum = 0.0;
        double right_sq = 0.0;
        for (std::size_t i : sorted) {
          right_sum += data[i].y;
          right_sq += data[i].y * data[i].y;
        }
        const auto m = sorted.size();
        for (std::size_t k = 0; k + 1 < m; ++k) {
          const double y = data[sorted[k]].y;
          left_sum += y;
          left_sq += y * y;
          right_sum -= y;
          right_sq -= y * y;
          const std::size_t nl = k + 1;
          const std::size_t nr = m - nl;
          if (nl < params.min_samples_leaf || nr < params.min_samples_leaf) {
            continue;
          }
          const double xa = data[sorted[k]].x[f];
          const double xb = data[sorted[k + 1]].x[f];
          if (xa == xb) continue;  // cannot split between equal values
          const double sse =
              (left_sq - left_sum * left_sum / static_cast<double>(nl)) +
              (right_sq - right_sum * right_sum / static_cast<double>(nr));
          if (sse < best_sse) {
            best_sse = sse;
            best_feature = static_cast<int>(f);
            best_threshold = 0.5 * (xa + xb);
          }
        }
      }

      if (best_feature < 0) {
        placeholder.feature = -1;
        placeholder.value = leaf_value(work.idx);
        continue;
      }

      std::vector<std::size_t> left_idx;
      std::vector<std::size_t> right_idx;
      for (std::size_t i : work.idx) {
        if (data[i].x[static_cast<std::size_t>(best_feature)] <=
            best_threshold) {
          left_idx.push_back(i);
        } else {
          right_idx.push_back(i);
        }
      }
      // Defensive: a degenerate partition becomes a leaf.
      if (left_idx.empty() || right_idx.empty()) {
        placeholder.feature = -1;
        placeholder.value = leaf_value(work.idx);
        continue;
      }

      const int left_node = static_cast<int>(tree.size());
      tree.push_back(Node{});
      const int right_node = static_cast<int>(tree.size());
      tree.push_back(Node{});
      // `placeholder` may dangle after push_back: reindex.
      Node& me = tree[static_cast<std::size_t>(work.node)];
      me.feature = best_feature;
      me.threshold = best_threshold;
      me.left = left_node;
      me.right = right_node;

      stack.push_back({left_node, std::move(left_idx), work.depth + 1});
      stack.push_back({right_node, std::move(right_idx), work.depth + 1});
    }
    return tree;
  };

  std::vector<Tree> trees;
  trees.reserve(params.n_trees);
  for (std::size_t t = 0; t < params.n_trees; ++t) {
    trees.push_back(build_tree(rng.fork(t)));
  }
  return RandomForest(std::move(trees));
}

RandomForest::RandomForest(std::vector<Tree> trees)
    : trees_(std::move(trees)) {}

double RandomForest::predict_tree(const Tree& tree,
                                  std::span<const double> x) {
  std::size_t node = 0;
  while (tree[node].feature >= 0) {
    const auto f = static_cast<std::size_t>(tree[node].feature);
    node = static_cast<std::size_t>(
        x[f] <= tree[node].threshold ? tree[node].left : tree[node].right);
  }
  return tree[node].value;
}

double RandomForest::predict(std::span<const double> x) const {
  detail::require_data(!trees_.empty(), "forest has no trees");
  double sum = 0.0;
  for (const auto& tree : trees_) sum += predict_tree(tree, x);
  return sum / static_cast<double>(trees_.size());
}

std::vector<double> RandomForest::predict(const Dataset& data) const {
  std::vector<double> out;
  out.reserve(data.size());
  for (const auto& s : data.samples()) out.push_back(predict(s.x));
  return out;
}

std::size_t RandomForest::node_count() const noexcept {
  std::size_t total = 0;
  for (const auto& tree : trees_) total += tree.size();
  return total;
}

}  // namespace vmtherm::ml
