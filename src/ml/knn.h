// vmtherm/ml/knn.h
//
// k-nearest-neighbour regression — a nonparametric baseline. Brute-force
// search is fine at the corpus sizes of this system (hundreds of records).

#pragma once

#include <span>
#include <vector>

#include "ml/dataset.h"

namespace vmtherm::ml {

/// kNN regressor over Euclidean distance, with optional inverse-distance
/// weighting of the neighbour targets.
class KnnRegressor {
 public:
  /// Stores the training set. k is clamped to [1, data.size()].
  /// Throws DataError on an empty training set.
  KnnRegressor(Dataset data, std::size_t k, bool distance_weighted = true);

  double predict(std::span<const double> x) const;
  std::vector<double> predict(const Dataset& data) const;

  std::size_t k() const noexcept { return k_; }

 private:
  Dataset data_;
  std::size_t k_;
  bool distance_weighted_;
};

}  // namespace vmtherm::ml
