#include "ml/model_io.h"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.h"

namespace vmtherm::ml {

namespace {

constexpr const char* kSvrMagic = "vmtherm_svr v1";
constexpr const char* kScalerMagic = "vmtherm_scaler v1";

void expect_token(std::istream& is, const std::string& expected) {
  std::string token;
  if (!(is >> token) || token != expected) {
    throw IoError("model file: expected token '" + expected + "', got '" +
                  token + "'");
  }
}

/// Reads the next non-empty line (tolerates a trailing newline left by a
/// previous token-wise reader sharing the stream).
std::string next_content_line(std::istream& is) {
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty() && line.find_first_not_of(" \t\r") != std::string::npos) {
      return line;
    }
  }
  return {};
}

double read_double(std::istream& is, const char* what) {
  double v = 0.0;
  if (!(is >> v)) throw IoError(std::string("model file: bad ") + what);
  return v;
}

long read_long(std::istream& is, const char* what) {
  long v = 0;
  if (!(is >> v) || v < 0) {
    throw IoError(std::string("model file: bad ") + what);
  }
  return v;
}

// Sanity caps on parsed element counts: a corrupted or hostile file must
// fail with IoError, not drive std::vector into length_error/bad_alloc.
constexpr long kMaxDim = 1 << 16;        ///< features per vector
constexpr long kMaxSupportVectors = 1 << 24;

long read_count(std::istream& is, const char* what, long cap) {
  const long v = read_long(is, what);
  if (v > cap) {
    throw IoError(std::string("model file: implausible ") + what + " (" +
                  std::to_string(v) + " > " + std::to_string(cap) + ")");
  }
  return v;
}

}  // namespace

void save_svr(std::ostream& os, const SvrModel& model) {
  os << kSvrMagic << '\n';
  os << std::setprecision(17);
  const auto& k = model.kernel();
  os << "kernel " << kernel_kind_name(k.kind) << " gamma " << k.gamma
     << " degree " << k.degree << " coef0 " << k.coef0 << '\n';
  os << "bias " << model.bias() << '\n';
  // Serialized straight from the packed row-major matrix; row k of the
  // engine is support vector k, so the on-disk format is unchanged.
  const SvrInference& inference = model.inference();
  os << "dim " << inference.dim() << " nsv " << inference.support_vector_count()
     << '\n';
  for (std::size_t i = 0; i < inference.support_vector_count(); ++i) {
    os << inference.coefficients()[i];
    for (double v : inference.support_vector(i)) os << ' ' << v;
    os << '\n';
  }
}

SvrModel load_svr(std::istream& is) {
  if (next_content_line(is) != kSvrMagic) {
    throw IoError("svr model file: bad magic");
  }

  KernelParams kernel;
  expect_token(is, "kernel");
  std::string kernel_name;
  if (!(is >> kernel_name)) throw IoError("svr model file: missing kernel");
  kernel.kind = kernel_kind_from_name(kernel_name);
  expect_token(is, "gamma");
  kernel.gamma = read_double(is, "gamma");
  expect_token(is, "degree");
  kernel.degree = static_cast<int>(read_long(is, "degree"));
  expect_token(is, "coef0");
  kernel.coef0 = read_double(is, "coef0");

  expect_token(is, "bias");
  const double bias = read_double(is, "bias");

  expect_token(is, "dim");
  const auto dim = static_cast<std::size_t>(read_count(is, "dim", kMaxDim));
  expect_token(is, "nsv");
  const auto nsv =
      static_cast<std::size_t>(read_count(is, "nsv", kMaxSupportVectors));

  std::vector<std::vector<double>> svs;
  std::vector<double> coefs;
  svs.reserve(nsv);
  coefs.reserve(nsv);
  for (std::size_t i = 0; i < nsv; ++i) {
    coefs.push_back(read_double(is, "coefficient"));
    std::vector<double> sv(dim);
    for (std::size_t j = 0; j < dim; ++j) {
      sv[j] = read_double(is, "support vector value");
    }
    svs.push_back(std::move(sv));
  }
  return SvrModel(kernel, std::move(svs), std::move(coefs), bias);
}

void save_scaler(std::ostream& os, const MinMaxScaler& scaler) {
  os << kScalerMagic << '\n';
  os << std::setprecision(17);
  os << "dim " << scaler.dim() << '\n';
  for (std::size_t j = 0; j < scaler.dim(); ++j) {
    os << scaler.mins()[j] << ' ' << scaler.maxs()[j] << '\n';
  }
}

MinMaxScaler load_scaler(std::istream& is) {
  if (next_content_line(is) != kScalerMagic) {
    throw IoError("scaler file: bad magic");
  }
  expect_token(is, "dim");
  const auto dim = static_cast<std::size_t>(read_count(is, "dim", kMaxDim));
  std::vector<double> mins(dim);
  std::vector<double> maxs(dim);
  for (std::size_t j = 0; j < dim; ++j) {
    mins[j] = read_double(is, "scaler min");
    maxs[j] = read_double(is, "scaler max");
  }
  return MinMaxScaler(std::move(mins), std::move(maxs));
}

namespace {

std::ofstream open_out(const std::string& path) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot create file: " + path);
  return out;
}

std::ifstream open_in(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open file: " + path);
  return in;
}

}  // namespace

void save_svr_file(const std::string& path, const SvrModel& model) {
  auto out = open_out(path);
  save_svr(out, model);
}

SvrModel load_svr_file(const std::string& path) {
  auto in = open_in(path);
  return load_svr(in);
}

void save_scaler_file(const std::string& path, const MinMaxScaler& scaler) {
  auto out = open_out(path);
  save_scaler(out, scaler);
}

MinMaxScaler load_scaler_file(const std::string& path) {
  auto in = open_in(path);
  return load_scaler(in);
}

}  // namespace vmtherm::ml
