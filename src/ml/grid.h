// vmtherm/ml/grid.h
//
// Grid search over SVR hyper-parameters with k-fold cross-validation — the
// functional equivalent of `easygrid`, the tool the paper uses to select
// (C, gamma) for its LIBSVM model.

#pragma once

#include <vector>

#include "ml/svr.h"

namespace vmtherm::util {
class ThreadPool;
}

namespace vmtherm::ml {

/// Search space. Defaults follow the classic LIBSVM grid recommendation
/// (log2-spaced C and gamma) trimmed to ranges that matter at this
/// dataset's scale.
struct GridSpec {
  std::vector<double> c_values = {0.5, 2.0, 8.0, 32.0, 128.0, 512.0, 2048.0};
  std::vector<double> gamma_values = {1.0 / 128, 1.0 / 32, 1.0 / 8,
                                      0.5, 2.0};
  std::vector<double> epsilon_values = {0.05, 0.2};
  KernelKind kernel = KernelKind::kRbf;
  std::size_t folds = 10;
  std::uint64_t seed = 42;  ///< fold-assignment seed
  /// Total threads evaluating grid points: 1 = serial (default), 0 = all
  /// hardware threads. Ignored when an external pool is passed to
  /// grid_search_svr. Results do not depend on this value.
  std::size_t threads = 1;

  void validate() const {
    detail::require(!c_values.empty(), "grid needs C values");
    detail::require(!gamma_values.empty(), "grid needs gamma values");
    detail::require(!epsilon_values.empty(), "grid needs epsilon values");
    detail::require(folds >= 2, "grid needs >= 2 folds");
  }
};

/// One evaluated grid point.
struct GridPoint {
  SvrParams params;
  double cv_mse = 0.0;
};

/// Search outcome: the winning parameters plus the full sweep (for
/// reporting / ablation plots).
struct GridSearchResult {
  SvrParams best_params;
  double best_cv_mse = 0.0;
  std::vector<GridPoint> evaluated;
};

/// Exhaustive search: trains folds x |C| x |gamma| x |epsilon| SVRs on
/// `data` (which should already be scaled) and returns the point with the
/// lowest cross-validated MSE. Fold assignment is seeded by `spec.seed`
/// and shared across grid points so comparisons are paired.
///
/// Deterministic regardless of thread count: `evaluated` is always in
/// canonical grid order (C outer, gamma middle, epsilon inner), each grid
/// point's CV evaluation is fully serial and independent, and equal-MSE
/// ties break explicitly toward the lowest grid index — never toward
/// whichever evaluation happened to finish first. Serial and parallel runs
/// therefore return bitwise-identical results.
///
/// Concurrency: with `pool` non-null the grid points are evaluated on that
/// (possibly shared) pool; otherwise a private pool is spun up when
/// `spec.threads` resolves to more than one thread.
GridSearchResult grid_search_svr(const Dataset& data, const GridSpec& spec,
                                 util::ThreadPool* pool = nullptr);

}  // namespace vmtherm::ml
