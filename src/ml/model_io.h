// vmtherm/ml/model_io.h
//
// Text serialization of trained models (SVR + scaler), in the spirit of
// LIBSVM's model files: a deployed predictor can be trained offline,
// persisted, and loaded by the online prediction service.

#pragma once

#include <iosfwd>
#include <string>

#include "ml/scaler.h"
#include "ml/svr.h"

namespace vmtherm::ml {

/// Writes the SVR model as text. Format:
///   vmtherm_svr v1
///   kernel <name> gamma <g> degree <d> coef0 <r>
///   bias <b>
///   dim <d> nsv <n>
///   <coef> <x_1> ... <x_d>     (one line per support vector)
void save_svr(std::ostream& os, const SvrModel& model);

/// Parses the format above. Throws IoError on malformed input.
SvrModel load_svr(std::istream& is);

/// Writes the scaler ranges as text.
void save_scaler(std::ostream& os, const MinMaxScaler& scaler);

/// Parses scaler ranges. Throws IoError on malformed input.
MinMaxScaler load_scaler(std::istream& is);

/// File-path conveniences (throw IoError if the file cannot be
/// opened/created).
void save_svr_file(const std::string& path, const SvrModel& model);
SvrModel load_svr_file(const std::string& path);
void save_scaler_file(const std::string& path, const MinMaxScaler& scaler);
MinMaxScaler load_scaler_file(const std::string& path);

}  // namespace vmtherm::ml
