// vmtherm/ml/scaler.h
//
// Min-max feature scaling to [-1, 1] — the equivalent of LIBSVM's
// svm-scale preprocessing, which the paper's pipeline (LIBSVM + easygrid)
// applies before training RBF models.

#pragma once

#include <span>
#include <vector>

#include "ml/dataset.h"

namespace vmtherm::ml {

/// Per-feature affine scaler fit on training data. Constant features map
/// to 0. Test-time values outside the training range extrapolate linearly
/// (not clipped) so the model sees their direction.
class MinMaxScaler {
 public:
  MinMaxScaler() = default;

  /// Learns per-feature ranges; throws DataError on empty data.
  static MinMaxScaler fit(const Dataset& data);

  /// Reconstructs a scaler from persisted ranges (model_io).
  MinMaxScaler(std::vector<double> mins, std::vector<double> maxs);

  std::size_t dim() const noexcept { return mins_.size(); }
  const std::vector<double>& mins() const noexcept { return mins_; }
  const std::vector<double>& maxs() const noexcept { return maxs_; }

  /// Scales one feature vector; throws DataError on dimension mismatch.
  std::vector<double> transform(std::span<const double> x) const;

  /// Allocation-free variant for hot paths: scales into `out`, reusing
  /// its capacity. `x` and `out` must not alias.
  void transform_into(std::span<const double> x,
                      std::vector<double>& out) const;

  /// Scales every sample of a dataset (targets unchanged).
  Dataset transform(const Dataset& data) const;

  /// Inverse of transform for one vector.
  std::vector<double> inverse(std::span<const double> scaled) const;

 private:
  std::vector<double> mins_;
  std::vector<double> maxs_;
};

}  // namespace vmtherm::ml
