// vmtherm/ml/dataset.h
//
// Dataset container for regression: dense feature vectors with scalar
// targets, plus split/shuffle utilities.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/error.h"
#include "util/rng.h"

namespace vmtherm::ml {

/// One labelled example.
struct Sample {
  std::vector<double> x;
  double y = 0.0;
};

/// An ordered collection of samples with a consistent feature dimension.
class Dataset {
 public:
  Dataset() = default;

  /// Builds from samples; throws DataError if feature dimensions are
  /// inconsistent.
  explicit Dataset(std::vector<Sample> samples);

  void add(Sample sample);

  bool empty() const noexcept { return samples_.empty(); }
  std::size_t size() const noexcept { return samples_.size(); }

  /// Feature dimension (0 for an empty dataset).
  std::size_t dim() const noexcept { return dim_; }

  const Sample& operator[](std::size_t i) const noexcept {
    return samples_[i];
  }
  const std::vector<Sample>& samples() const noexcept { return samples_; }

  /// All targets, in order.
  std::vector<double> targets() const;

  /// Returns a dataset with the same samples in permuted order.
  Dataset shuffled(Rng& rng) const;

  /// Subset by indices (indices may repeat; out-of-range throws DataError).
  Dataset subset(std::span<const std::size_t> indices) const;

 private:
  std::vector<Sample> samples_;
  std::size_t dim_ = 0;
};

/// Train/test split result.
struct SplitResult {
  Dataset train;
  Dataset test;
};

/// Shuffles then splits with `train_fraction` in (0, 1); both parts are
/// non-empty for datasets of size >= 2 (throws DataError otherwise).
SplitResult train_test_split(const Dataset& data, double train_fraction,
                             Rng& rng);

}  // namespace vmtherm::ml
