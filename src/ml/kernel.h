// vmtherm/ml/kernel.h
//
// Kernel functions for the SVR. The paper uses LIBSVM's RBF kernel; the
// other standard kernels are provided for the model-selection ablation.

#pragma once

#include <span>
#include <string_view>

#include "util/error.h"

namespace vmtherm::ml {

enum class KernelKind {
  kLinear,      ///< x . z
  kPolynomial,  ///< (gamma * x.z + coef0)^degree
  kRbf,         ///< exp(-gamma * |x - z|^2)
  kSigmoid,     ///< tanh(gamma * x.z + coef0)
};

/// Returns a view of a static name literal (no allocation).
std::string_view kernel_kind_name(KernelKind kind) noexcept;
/// Looks a kernel up by name without materializing a std::string; throws
/// ConfigError on unknown names.
KernelKind kernel_kind_from_name(std::string_view name);

/// Kernel hyper-parameters (interpretation depends on kind; matches
/// LIBSVM's -g/-d/-r flags).
struct KernelParams {
  KernelKind kind = KernelKind::kRbf;
  double gamma = 0.5;
  int degree = 3;
  double coef0 = 0.0;

  void validate() const {
    detail::require(gamma > 0.0 || kind == KernelKind::kLinear,
                    "kernel gamma must be positive");
    detail::require(degree >= 1, "kernel degree must be >= 1");
  }
};

/// Evaluates k(x, z). Requires x.size() == z.size() (unchecked on the hot
/// path; callers validate at the API boundary).
double kernel_eval(const KernelParams& params, std::span<const double> x,
                   std::span<const double> z) noexcept;

/// Squared Euclidean distance (exposed for kNN and tests).
double squared_distance(std::span<const double> x,
                        std::span<const double> z) noexcept;

/// Dot product.
double dot(std::span<const double> x, std::span<const double> z) noexcept;

/// base^exponent by exponentiation-by-squaring — O(log n) multiplies
/// instead of a transcendental std::pow call for the polynomial kernel's
/// integer degree. Negative exponents go through the reciprocal.
double pow_integer(double base, int exponent) noexcept;

}  // namespace vmtherm::ml
