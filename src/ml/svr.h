// vmtherm/ml/svr.h
//
// Epsilon-Support-Vector Regression trained by Sequential Minimal
// Optimization — a from-scratch replacement for the LIBSVM 3.17 ε-SVR the
// paper uses.
//
// The solver optimizes LIBSVM's dual formulation: with l training samples
// it introduces 2l variables α (the first l play the role of α, the second
// l of α*), labels y_i = +1 (i < l) / -1 (i >= l), linear term
// p_i = ε - t_i / ε + t_i, and Q~(i,j) = y_i y_j K(x_{i mod l}, x_{j mod l}):
//
//   min_α  1/2 αᵀ Q~ α + pᵀ α   s.t.  yᵀα = 0,  0 <= α_i <= C
//
// solved by maximal-violating-pair SMO with an LRU kernel-row cache. The
// regression coefficients are β_k = α_k - α_{k+l} and the decision function
// is f(x) = Σ_k β_k K(x_k, x) + b with b = -ρ from the solver's optimality
// conditions. Deterministic given the dataset order.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/dataset.h"
#include "ml/kernel.h"
#include "ml/svr_inference.h"

namespace vmtherm::ml {

/// Training hyper-parameters (mirrors LIBSVM's -c/-p/-e/-m flags plus the
/// kernel parameters).
struct SvrParams {
  KernelParams kernel;
  double c = 8.0;            ///< box constraint C (> 0)
  double epsilon = 0.1;      ///< ε-insensitive tube half-width (>= 0)
  double tolerance = 1e-3;   ///< KKT violation stopping threshold
  std::size_t max_iterations = 0;  ///< 0 = auto (max(100000, 200*l))
  double cache_mb = 16.0;    ///< kernel row cache budget
  /// Working-set selection: second-order (LIBSVM's WSS2; picks the pair
  /// with the largest objective decrease — fewer iterations per solve) or
  /// the simpler maximal-violating-pair rule (WSS1) when false. Both reach
  /// the same optimum; the perf_svr bench quantifies the difference.
  bool second_order_working_set = true;

  void validate() const {
    kernel.validate();
    detail::require(c > 0.0, "svr C must be positive");
    detail::require(epsilon >= 0.0, "svr epsilon must be >= 0");
    detail::require(tolerance > 0.0, "svr tolerance must be positive");
    detail::require(cache_mb > 0.0, "svr cache_mb must be positive");
  }
};

/// Diagnostics from a training run.
struct SvrTrainReport {
  std::size_t iterations = 0;
  bool converged = false;
  std::size_t support_vector_count = 0;
  double bias = 0.0;
  /// Final maximal KKT violation (< tolerance when converged).
  double final_violation = 0.0;
};

/// A trained ε-SVR model: support vectors, their coefficients and the bias.
class SvrModel {
 public:
  /// Trains on `data` (which must be non-empty and finite). If `report` is
  /// non-null it receives training diagnostics. Throws DataError /
  /// ConfigError on invalid inputs; a run that hits max_iterations returns
  /// the best-so-far model with report->converged = false.
  static SvrModel train(const Dataset& data, const SvrParams& params,
                        SvrTrainReport* report = nullptr);

  /// Reconstructs a model from persisted parts (model_io).
  SvrModel(KernelParams kernel, std::vector<std::vector<double>> support_vectors,
           std::vector<double> coefficients, double bias);

  /// f(x) = Σ β_k K(sv_k, x) + b. Throws DataError on dimension mismatch.
  /// Evaluated by the packed SvrInference engine (see svr_inference.h for
  /// the bitwise-determinism contract).
  double predict(std::span<const double> x) const;

  /// Batch prediction over a dataset's features — routed through the
  /// packed engine; bitwise-identical to calling predict() per sample.
  std::vector<double> predict(const Dataset& data) const;

  /// Batch prediction over a dataset, optionally sharded across `pool`
  /// (bitwise-identical at any thread count).
  std::vector<double> predict_batch(const Dataset& data,
                                    util::ThreadPool* pool = nullptr) const;

  /// Batched prediction over `query_count` queries packed row-major into
  /// `queries`; see SvrInference::predict_batch.
  void predict_batch(std::span<const double> queries, std::size_t query_count,
                     std::span<double> out,
                     util::ThreadPool* pool = nullptr) const;

  std::size_t support_vector_count() const noexcept {
    return support_vectors_.size();
  }
  const std::vector<std::vector<double>>& support_vectors() const noexcept {
    return support_vectors_;
  }
  const std::vector<double>& coefficients() const noexcept {
    return coefficients_;
  }
  double bias() const noexcept { return bias_; }
  const KernelParams& kernel() const noexcept { return kernel_; }
  /// The packed inference engine that evaluates this model.
  const SvrInference& inference() const noexcept { return inference_; }

 private:
  KernelParams kernel_;
  std::vector<std::vector<double>> support_vectors_;
  std::vector<double> coefficients_;  ///< β_k, aligned with support_vectors_
  double bias_ = 0.0;
  SvrInference inference_;  ///< packed evaluator; built last from the above
};

}  // namespace vmtherm::ml
