#include "ml/knn.h"

#include <algorithm>
#include <cmath>

#include "ml/kernel.h"

namespace vmtherm::ml {

KnnRegressor::KnnRegressor(Dataset data, std::size_t k, bool distance_weighted)
    : data_(std::move(data)),
      k_(std::clamp<std::size_t>(k, 1, data_.empty() ? 1 : data_.size())),
      distance_weighted_(distance_weighted) {
  detail::require_data(!data_.empty(), "knn training set is empty");
}

double KnnRegressor::predict(std::span<const double> x) const {
  detail::require_data(x.size() == data_.dim(),
                       "knn predict dimension mismatch");
  // Partial sort of (distance, index) pairs for the k nearest.
  std::vector<std::pair<double, std::size_t>> dist(data_.size());
  for (std::size_t i = 0; i < data_.size(); ++i) {
    dist[i] = {squared_distance(data_[i].x, x), i};
  }
  const std::size_t k = std::min(k_, dist.size());
  std::partial_sort(dist.begin(), dist.begin() + static_cast<long>(k),
                    dist.end());

  if (!distance_weighted_) {
    double acc = 0.0;
    for (std::size_t i = 0; i < k; ++i) acc += data_[dist[i].second].y;
    return acc / static_cast<double>(k);
  }

  // Inverse-distance weights; an exact match dominates.
  double wsum = 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const double w = 1.0 / (std::sqrt(dist[i].first) + 1e-9);
    wsum += w;
    acc += w * data_[dist[i].second].y;
  }
  return acc / wsum;
}

std::vector<double> KnnRegressor::predict(const Dataset& data) const {
  std::vector<double> out;
  out.reserve(data.size());
  for (const auto& s : data.samples()) out.push_back(predict(s.x));
  return out;
}

}  // namespace vmtherm::ml
