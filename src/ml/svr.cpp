#include "ml/svr.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <list>
#include <unordered_map>

namespace vmtherm::ml {

namespace {

constexpr double kTau = 1e-12;  // floor for non-positive-definite 2x2 blocks

/// LRU cache of kernel rows K(i, .) over the l base samples.
class KernelRowCache {
 public:
  KernelRowCache(const Dataset& data, const KernelParams& kernel,
                 double cache_mb)
      : data_(data), kernel_(kernel) {
    const std::size_t l = data.size();
    const double bytes_per_row = static_cast<double>(l) * sizeof(double);
    max_rows_ = std::max<std::size_t>(
        2, static_cast<std::size_t>(cache_mb * 1024.0 * 1024.0 /
                                    std::max(1.0, bytes_per_row)));
  }

  /// Returns K(i, t) for all base t; the reference is valid until the next
  /// call to row().
  const std::vector<double>& row(std::size_t i) {
    auto it = map_.find(i);
    if (it != map_.end()) {
      // Move to front of the LRU list.
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      return it->second.values;
    }
    if (map_.size() >= max_rows_) {
      const std::size_t victim = lru_.back();
      lru_.pop_back();
      map_.erase(victim);
    }
    lru_.push_front(i);
    Entry entry;
    entry.lru_it = lru_.begin();
    entry.values.resize(data_.size());
    const auto& xi = data_[i].x;
    for (std::size_t t = 0; t < data_.size(); ++t) {
      entry.values[t] = kernel_eval(kernel_, xi, data_[t].x);
    }
    auto [ins_it, inserted] = map_.emplace(i, std::move(entry));
    return ins_it->second.values;
  }

 private:
  struct Entry {
    std::vector<double> values;
    std::list<std::size_t>::iterator lru_it;
  };

  const Dataset& data_;
  const KernelParams& kernel_;
  std::size_t max_rows_;
  std::unordered_map<std::size_t, Entry> map_;
  std::list<std::size_t> lru_;
};

/// SMO solver state for the 2l-variable SVR dual.
class SvrSolver {
 public:
  SvrSolver(const Dataset& data, const SvrParams& params)
      : data_(data),
        params_(params),
        l_(data.size()),
        n_(2 * data.size()),
        cache_(data, params.kernel, params.cache_mb) {
    alpha_.assign(n_, 0.0);
    grad_.resize(n_);
    qdiag_.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      grad_[i] = p(i);  // alpha = 0 -> G = p
      const auto& xi = data_[base(i)].x;
      qdiag_[i] = kernel_eval(params_.kernel, xi, xi);  // y_i^2 = 1
    }
  }

  SvrTrainReport solve() {
    SvrTrainReport report;
    const std::size_t max_iter =
        params_.max_iterations > 0
            ? params_.max_iterations
            : std::max<std::size_t>(100000, 200 * l_);

    std::size_t iter = 0;
    double violation = std::numeric_limits<double>::infinity();
    while (iter < max_iter) {
      auto [i, j, viol] = params_.second_order_working_set
                              ? select_working_set_second_order()
                              : select_working_set();
      violation = viol;
      if (viol < params_.tolerance) break;
      update_pair(i, j);
      ++iter;
    }

    report.iterations = iter;
    report.final_violation = violation;
    report.converged = violation < params_.tolerance;
    report.bias = -calculate_rho();
    return report;
  }

  /// β_k = α_k − α_{k+l} after solve().
  std::vector<double> betas() const {
    std::vector<double> out(l_);
    for (std::size_t k = 0; k < l_; ++k) out[k] = alpha_[k] - alpha_[k + l_];
    return out;
  }

 private:
  std::size_t base(std::size_t i) const noexcept { return i < l_ ? i : i - l_; }
  double sign(std::size_t i) const noexcept { return i < l_ ? 1.0 : -1.0; }
  double p(std::size_t i) const noexcept {
    return i < l_ ? params_.epsilon - data_[i].y
                  : params_.epsilon + data_[i - l_].y;
  }

  /// Q~(i, t) for all t, via one cached kernel row of base(i).
  /// The returned vector aliases internal scratch; valid until next call.
  const std::vector<double>& q_row(std::size_t i) {
    const auto& krow = cache_.row(base(i));
    qrow_scratch_.resize(n_);
    const double yi = sign(i);
    for (std::size_t t = 0; t < n_; ++t) {
      qrow_scratch_[t] = yi * sign(t) * krow[base(t)];
    }
    return qrow_scratch_;
  }

  /// Maximal-violating-pair selection (LIBSVM WSS1).
  /// Returns (i, j, violation).
  std::tuple<std::size_t, std::size_t, double> select_working_set() const {
    double gmax = -std::numeric_limits<double>::infinity();
    double gmin = std::numeric_limits<double>::infinity();
    std::size_t i_sel = 0;
    std::size_t j_sel = 0;
    for (std::size_t t = 0; t < n_; ++t) {
      const double y = sign(t);
      const bool at_upper = alpha_[t] >= params_.c;
      const bool at_lower = alpha_[t] <= 0.0;
      // I_up: can increase y*alpha
      if ((y > 0 && !at_upper) || (y < 0 && !at_lower)) {
        const double v = -y * grad_[t];
        if (v > gmax) {
          gmax = v;
          i_sel = t;
        }
      }
      // I_low: can decrease y*alpha
      if ((y > 0 && !at_lower) || (y < 0 && !at_upper)) {
        const double v = -y * grad_[t];
        if (v < gmin) {
          gmin = v;
          j_sel = t;
        }
      }
    }
    return {i_sel, j_sel, gmax - gmin};
  }

  /// Second-order selection (LIBSVM WSS2): i is the maximal violator from
  /// I_up; j is the I_low index giving the largest guaranteed decrease of
  /// the dual objective for the (i, j) subproblem.
  std::tuple<std::size_t, std::size_t, double>
  select_working_set_second_order() {
    double gmax = -std::numeric_limits<double>::infinity();
    std::size_t i_sel = 0;
    for (std::size_t t = 0; t < n_; ++t) {
      const double y = sign(t);
      const bool at_upper = alpha_[t] >= params_.c;
      const bool at_lower = alpha_[t] <= 0.0;
      if ((y > 0 && !at_upper) || (y < 0 && !at_lower)) {
        const double v = -y * grad_[t];
        if (v > gmax) {
          gmax = v;
          i_sel = t;
        }
      }
    }
    if (!std::isfinite(gmax)) return {0, 0, 0.0};  // I_up empty: optimal

    const std::vector<double>& qi = q_row(i_sel);
    const double yi = sign(i_sel);

    double gmax2 = -std::numeric_limits<double>::infinity();
    double best_obj = std::numeric_limits<double>::infinity();
    std::size_t j_sel = n_;  // sentinel: no improving j found
    for (std::size_t t = 0; t < n_; ++t) {
      const double y = sign(t);
      const bool at_upper = alpha_[t] >= params_.c;
      const bool at_lower = alpha_[t] <= 0.0;
      if (!((y > 0 && !at_lower) || (y < 0 && !at_upper))) continue;  // I_low
      gmax2 = std::max(gmax2, y * grad_[t]);

      const double grad_diff = gmax + y * grad_[t];
      if (grad_diff <= 0.0) continue;
      // Curvature of the (i, t) subproblem: K_ii + K_tt - 2 K_it. qi[t]
      // carries the y_i y_t sign, which the explicit factor cancels.
      double a = qdiag_[i_sel] + qdiag_[t] - 2.0 * yi * sign(t) * qi[t];
      if (a <= 0.0) a = kTau;
      const double obj = -(grad_diff * grad_diff) / a;
      if (obj < best_obj) {
        best_obj = obj;
        j_sel = t;
      }
    }
    const double violation = gmax + gmax2;
    if (j_sel == n_) {
      // No pair yields progress: report the raw violation with a dummy j;
      // the caller stops if it is under tolerance.
      return {i_sel, i_sel, violation};
    }
    return {i_sel, j_sel, violation};
  }

  void update_pair(std::size_t i, std::size_t j) {
    const double c = params_.c;
    const double yi = sign(i);
    const double yj = sign(j);

    // Snapshot Q entries before alpha changes. Copy row i (scratch is
    // reused by the second q_row call).
    const std::vector<double> qi = q_row(i);
    const std::vector<double>& qj = q_row(j);

    const double old_ai = alpha_[i];
    const double old_aj = alpha_[j];

    if (yi != yj) {
      double quad = qdiag_[i] + qdiag_[j] + 2.0 * qi[j];
      if (quad <= 0.0) quad = kTau;
      const double delta = (-grad_[i] - grad_[j]) / quad;
      const double diff = alpha_[i] - alpha_[j];
      alpha_[i] += delta;
      alpha_[j] += delta;
      if (diff > 0.0) {
        if (alpha_[j] < 0.0) {
          alpha_[j] = 0.0;
          alpha_[i] = diff;
        }
      } else {
        if (alpha_[i] < 0.0) {
          alpha_[i] = 0.0;
          alpha_[j] = -diff;
        }
      }
      if (diff > 0.0) {
        if (alpha_[i] > c) {
          alpha_[i] = c;
          alpha_[j] = c - diff;
        }
      } else {
        if (alpha_[j] > c) {
          alpha_[j] = c;
          alpha_[i] = c + diff;
        }
      }
    } else {
      double quad = qdiag_[i] + qdiag_[j] - 2.0 * qi[j];
      if (quad <= 0.0) quad = kTau;
      const double delta = (grad_[i] - grad_[j]) / quad;
      const double sum = alpha_[i] + alpha_[j];
      alpha_[i] -= delta;
      alpha_[j] += delta;
      if (sum > c) {
        if (alpha_[i] > c) {
          alpha_[i] = c;
          alpha_[j] = sum - c;
        }
      } else {
        if (alpha_[j] < 0.0) {
          alpha_[j] = 0.0;
          alpha_[i] = sum;
        }
      }
      if (sum > c) {
        if (alpha_[j] > c) {
          alpha_[j] = c;
          alpha_[i] = sum - c;
        }
      } else {
        if (alpha_[i] < 0.0) {
          alpha_[i] = 0.0;
          alpha_[j] = sum;
        }
      }
    }

    const double dai = alpha_[i] - old_ai;
    const double daj = alpha_[j] - old_aj;
    if (dai == 0.0 && daj == 0.0) return;
    for (std::size_t t = 0; t < n_; ++t) {
      grad_[t] += qi[t] * dai + qj[t] * daj;
    }
  }

  /// LIBSVM's calculate_rho over the unified solver variables.
  double calculate_rho() const {
    double ub = std::numeric_limits<double>::infinity();
    double lb = -std::numeric_limits<double>::infinity();
    double sum_free = 0.0;
    std::size_t nr_free = 0;
    for (std::size_t t = 0; t < n_; ++t) {
      const double y = sign(t);
      const double yg = y * grad_[t];
      if (alpha_[t] >= params_.c) {
        if (y < 0) ub = std::min(ub, yg);
        else lb = std::max(lb, yg);
      } else if (alpha_[t] <= 0.0) {
        if (y > 0) ub = std::min(ub, yg);
        else lb = std::max(lb, yg);
      } else {
        ++nr_free;
        sum_free += yg;
      }
    }
    if (nr_free > 0) return sum_free / static_cast<double>(nr_free);
    return (ub + lb) / 2.0;
  }

  const Dataset& data_;
  const SvrParams& params_;
  std::size_t l_;
  std::size_t n_;
  KernelRowCache cache_;
  std::vector<double> alpha_;
  std::vector<double> grad_;
  std::vector<double> qdiag_;
  mutable std::vector<double> qrow_scratch_;
};

}  // namespace

SvrModel SvrModel::train(const Dataset& data, const SvrParams& params,
                         SvrTrainReport* report) {
  params.validate();
  detail::require_data(!data.empty(), "svr training set is empty");
  for (const auto& s : data.samples()) {
    detail::require_data(std::isfinite(s.y), "svr target must be finite");
    for (double v : s.x) {
      detail::require_data(std::isfinite(v), "svr feature must be finite");
    }
  }

  SvrSolver solver(data, params);
  SvrTrainReport local = solver.solve();
  const std::vector<double> betas = solver.betas();

  std::vector<std::vector<double>> svs;
  std::vector<double> coefs;
  for (std::size_t k = 0; k < data.size(); ++k) {
    if (betas[k] != 0.0) {
      svs.push_back(data[k].x);
      coefs.push_back(betas[k]);
    }
  }
  local.support_vector_count = svs.size();
  if (report != nullptr) *report = local;

  return SvrModel(params.kernel, std::move(svs), std::move(coefs), local.bias);
}

SvrModel::SvrModel(KernelParams kernel,
                   std::vector<std::vector<double>> support_vectors,
                   std::vector<double> coefficients, double bias)
    : kernel_(kernel),
      support_vectors_(std::move(support_vectors)),
      coefficients_(std::move(coefficients)),
      bias_(bias),
      // Validates the kernel, the sv/coef alignment and the row
      // dimensions, and packs the evaluator in one pass.
      inference_(kernel_, support_vectors_, coefficients_, bias_) {}

double SvrModel::predict(std::span<const double> x) const {
  return inference_.predict(x);
}

std::vector<double> SvrModel::predict(const Dataset& data) const {
  return predict_batch(data, nullptr);
}

std::vector<double> SvrModel::predict_batch(const Dataset& data,
                                            util::ThreadPool* pool) const {
  std::vector<double> out(data.size());
  if (inference_.support_vector_count() == 0) {
    std::fill(out.begin(), out.end(), bias_);
    return out;
  }
  const std::size_t dim = inference_.dim();
  std::vector<double> flat;
  flat.reserve(data.size() * dim);
  for (const auto& s : data.samples()) {
    detail::require_data(s.x.size() == dim, "svr predict dimension mismatch");
    flat.insert(flat.end(), s.x.begin(), s.x.end());
  }
  inference_.predict_batch(flat, data.size(), out, pool);
  return out;
}

void SvrModel::predict_batch(std::span<const double> queries,
                             std::size_t query_count, std::span<double> out,
                             util::ThreadPool* pool) const {
  inference_.predict_batch(queries, query_count, out, pool);
}

}  // namespace vmtherm::ml
