#include "ml/svr_inference.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>

#include "obs/trace.h"
#include "util/thread_pool.h"

namespace vmtherm::ml {

namespace {

/// Support vectors processed per blocked pass: the dot-product scratch for
/// one block (1 KiB) stays in L1 while the transposed rows stream through.
constexpr std::size_t kSvBlock = 128;

/// Queries per parallel_for task in predict_batch: large enough to
/// amortize scheduling, small enough to balance ragged tails.
constexpr std::size_t kQueryBlock = 64;

/// 2^n as a double via exponent-field construction, n in [-1022, 1023].
inline double pow2(int n) noexcept {
  return std::bit_cast<double>(static_cast<std::uint64_t>(1023 + n) << 52);
}

/// v * 2^n with the scale split in two so gradual underflow and the full
/// double range behave exactly like a correctly scaled libm result.
inline double scale_pow2(double v, int n) noexcept {
  n = std::clamp(n, -2044, 2046);
  const int half = n / 2;
  return v * pow2(half) * pow2(n - half);
}

/// exp_det core, file-local so the kernel-transform loops inline it and
/// vectorize. Strictly branch-free: the clamps are written as ternary
/// selects (min/max instructions, no libm calls, no jumps).
inline double exp_det_core(double x) noexcept {
  // Cephes-style expansion: x = n*ln2 + r with |r| <= ln2/2, then
  // e^r = 1 + 2r P(r^2) / (Q(r^2) - r P(r^2)), finally scale by 2^n.
  constexpr double kLog2e = 1.4426950408889634073599;
  constexpr double kLn2Hi = 6.93145751953125e-1;
  constexpr double kLn2Lo = 1.42860682030941723212e-6;
  // Out-of-range inputs saturate. A NaN falls through both selects and
  // poisons r, so NaN in -> NaN out; `nd == nd` keeps the int conversion
  // defined in that case.
  // Round-to-nearest via the 2^52 magic constant: exact for |y| < 2^51
  // and, unlike std::floor, it auto-vectorizes.
  constexpr double kRound = 6755399441055744.0;  // 1.5 * 2^52
  double xc = x < -746.0 ? -746.0 : x;
  xc = xc > 710.0 ? 710.0 : xc;
  const double nd = (kLog2e * xc + kRound) - kRound;
  const int n = static_cast<int>(nd == nd ? nd : 0.0);
  const double r = (xc - nd * kLn2Hi) - nd * kLn2Lo;
  const double rr = r * r;
  const double p =
      r * ((1.26177193074810590878e-4 * rr + 3.02994407707441961300e-2) * rr +
           9.99999999999999999910e-1);
  const double q =
      ((3.00198505138664455042e-6 * rr + 2.52448340349684104192e-3) * rr +
       2.27265548208155028766e-1) *
          rr +
      2.00000000000000000005e0;
  const double e = 1.0 + 2.0 * p / (q - p);
  return scale_pow2(e, n);
}

}  // namespace

double exp_det(double x) noexcept { return exp_det_core(x); }

SvrInference::SvrInference(
    KernelParams kernel,
    const std::vector<std::vector<double>>& support_vectors,
    std::vector<double> coefficients, double bias)
    : kernel_(kernel), coefficients_(std::move(coefficients)), bias_(bias) {
  kernel_.validate();
  detail::require(support_vectors.size() == coefficients_.size(),
                  "svr inference: sv/coef count mismatch");
  count_ = support_vectors.size();
  dim_ = count_ == 0 ? 0 : support_vectors.front().size();
  const std::size_t padded =
      (count_ + kSvBlock - 1) / kSvBlock * kSvBlock;
  packed_.reserve(count_ * dim_);
  sq_norms_.assign(padded, 0.0);
  packed_t_.assign(padded * dim_, 0.0);
  for (std::size_t k = 0; k < count_; ++k) {
    const std::vector<double>& sv = support_vectors[k];
    detail::require(sv.size() == dim_,
                    "svr inference: inconsistent sv dimensions");
    double norm = 0.0;
    for (const double v : sv) norm += v * v;
    sq_norms_[k] = norm;
    packed_.insert(packed_.end(), sv.begin(), sv.end());
    // Blocked transpose: element j of SV k lands in block k/128 at
    // feature-major offset j*128 + (k mod 128).
    double* block = packed_t_.data() + (k / kSvBlock) * kSvBlock * dim_;
    for (std::size_t j = 0; j < dim_; ++j) {
      block[j * kSvBlock + (k % kSvBlock)] = sv[j];
    }
  }
}

double SvrInference::predict_one(const double* x) const noexcept {
  const double gamma = kernel_.gamma;
  const double coef0 = kernel_.coef0;
  const int degree = kernel_.degree;
  const std::size_t dim = dim_;

  double sq_x = 0.0;
  if (kernel_.kind == KernelKind::kRbf) {
    for (std::size_t j = 0; j < dim; ++j) sq_x += x[j] * x[j];
  }

  double acc = bias_;
  alignas(64) double dots[kSvBlock];
  for (std::size_t begin = 0; begin < count_; begin += kSvBlock) {
    const std::size_t block = std::min(kSvBlock, count_ - begin);
    const double* cols = packed_t_.data() + begin * dim;

    // GEMV-style pass over the transposed block: each dots[k] accumulates
    // x.s_k in ascending-j order; the k-indexed inner loop is unit-stride
    // with a constant trip count, so it vectorizes cleanly. Padding lanes
    // accumulate zeros.
    for (std::size_t k = 0; k < kSvBlock; ++k) dots[k] = 0.0;
    for (std::size_t j = 0; j < dim; ++j) {
      const double xj = x[j];
      const double* col = cols + j * kSvBlock;
      for (std::size_t k = 0; k < kSvBlock; ++k) dots[k] += xj * col[k];
    }

    // Fused kernel-transform pass (vectorizable: exp_det is branch-free).
    // Full-width on purpose: padding lanes hold harmless finite values and
    // are never read by the reduction below.
    switch (kernel_.kind) {
      case KernelKind::kLinear:
        break;
      case KernelKind::kPolynomial:
        for (std::size_t k = 0; k < kSvBlock; ++k) {
          dots[k] = pow_integer(gamma * dots[k] + coef0, degree);
        }
        break;
      case KernelKind::kRbf: {
        const double* norms = sq_norms_.data() + begin;
        for (std::size_t k = 0; k < kSvBlock; ++k) {
          dots[k] = exp_det_core(-gamma * (sq_x + norms[k] - 2.0 * dots[k]));
        }
        break;
      }
      case KernelKind::kSigmoid:
        for (std::size_t k = 0; k < kSvBlock; ++k) {
          dots[k] = std::tanh(gamma * dots[k] + coef0);
        }
        break;
    }

    // Coefficient reduction in fixed ascending-k order: the accumulation
    // sequence never depends on batch shape or thread count.
    const double* coefs = coefficients_.data() + begin;
    for (std::size_t k = 0; k < block; ++k) acc += coefs[k] * dots[k];
  }
  return acc;
}

double SvrInference::predict(std::span<const double> x) const {
  if (count_ != 0) {
    detail::require_data(x.size() == dim_, "svr predict dimension mismatch");
  }
  return predict_one(x.data());
}

void SvrInference::predict_batch(std::span<const double> queries,
                                 std::size_t query_count,
                                 std::span<double> out,
                                 util::ThreadPool* pool) const {
  VMTHERM_SPAN_ARG("ml.predict_batch", "ml", "queries", query_count);
  detail::require_data(out.size() == query_count,
                       "svr predict_batch output size mismatch");
  if (count_ == 0) {
    std::fill(out.begin(), out.end(), bias_);
    return;
  }
  detail::require_data(queries.size() == query_count * dim_,
                       "svr predict_batch query extent mismatch");
  if (query_count == 0) return;

  const double* q = queries.data();
  double* results = out.data();
  if (pool == nullptr || query_count <= kQueryBlock) {
    for (std::size_t i = 0; i < query_count; ++i) {
      results[i] = predict_one(q + i * dim_);
    }
    return;
  }
  const std::size_t blocks = (query_count + kQueryBlock - 1) / kQueryBlock;
  pool->parallel_for(0, blocks, [&](std::size_t b) {
    const std::size_t begin = b * kQueryBlock;
    const std::size_t end = std::min(query_count, begin + kQueryBlock);
    for (std::size_t i = begin; i < end; ++i) {
      results[i] = predict_one(q + i * dim_);
    }
  });
}

}  // namespace vmtherm::ml
