// Ablation C: model-selection choices behind the stable predictor —
// kernel family, training-corpus size (learning curve) and the ξ_VM
// feature groups of Eq. (2).
//
// Expected shape: RBF ~ best; accuracy improves with corpus size and
// saturates; dropping the VM-set features (the paper's contribution over
// server-level modeling) hurts the most.

#include <iostream>

#include "bench_common.h"
#include "ml/scaler.h"
#include "util/stats.h"

namespace {

using namespace vmtherm;

/// Held-out MSE of an SVR trained on `records` restricted to feature
/// indices `keep` (empty = all features).
double subset_mse(const std::vector<core::Record>& train,
                  const std::vector<core::Record>& test,
                  const std::vector<std::size_t>& keep,
                  const ml::SvrParams& params) {
  auto encode = [&](const core::Record& r) {
    const auto full = core::to_feature_vector(r);
    if (keep.empty()) return full;
    std::vector<double> x;
    x.reserve(keep.size());
    for (std::size_t i : keep) x.push_back(full[i]);
    return x;
  };
  ml::Dataset train_data;
  for (const auto& r : train) {
    train_data.add(ml::Sample{encode(r), r.stable_temp_c});
  }
  const auto scaler = ml::MinMaxScaler::fit(train_data);
  const auto model = ml::SvrModel::train(scaler.transform(train_data), params);

  std::vector<double> predicted;
  std::vector<double> actual;
  for (const auto& r : test) {
    predicted.push_back(model.predict(scaler.transform(encode(r))));
    actual.push_back(r.stable_temp_c);
  }
  return mse(predicted, actual);
}

}  // namespace

int main() {
  using namespace vmtherm;
  bench::print_bench_header(
      "Ablation C - kernel, corpus size, and feature groups",
      "RBF competitive; accuracy saturates with data; VM-set features "
      "matter most");

  const auto ranges = bench::standard_ranges();
  std::cout << "\nGenerating corpora...\n";
  const auto train_records =
      core::generate_corpus(ranges, bench::kTrainRecords, /*seed=*/42);
  const auto test_records = core::generate_corpus(ranges, 60, /*seed=*/4242);

  // Well-performing fixed parameters (from the Fig. 1(a) grid region) so the
  // sweeps isolate one variable at a time.
  ml::SvrParams base_params;
  base_params.kernel.kind = ml::KernelKind::kRbf;
  base_params.kernel.gamma = 1.0 / 32;
  base_params.c = 512.0;
  base_params.epsilon = 0.05;

  print_section(std::cout, "Kernel family (all Eq.(2) features, N=400)");
  Table kernel_table({"kernel", "mse"});
  for (auto kind : {ml::KernelKind::kLinear, ml::KernelKind::kPolynomial,
                    ml::KernelKind::kRbf, ml::KernelKind::kSigmoid}) {
    ml::SvrParams params = base_params;
    params.kernel.kind = kind;
    if (kind == ml::KernelKind::kPolynomial) params.kernel.coef0 = 1.0;
    if (kind == ml::KernelKind::kSigmoid) {
      params.kernel.gamma = 1.0 / 64;  // tanh saturates otherwise
      params.c = 32.0;
    }
    kernel_table.add_row(
        {std::string(ml::kernel_kind_name(kind)),
         Table::num(subset_mse(train_records, test_records, {}, params), 3)});
  }
  kernel_table.print(std::cout, 2);

  print_section(std::cout, "Learning curve (RBF)");
  Table size_table({"train_records", "mse"});
  for (std::size_t n : {25u, 50u, 100u, 200u, 400u}) {
    const std::vector<core::Record> subset(train_records.begin(),
                                           train_records.begin() +
                                               static_cast<long>(n));
    size_table.add_row(
        {Table::num(static_cast<long long>(n)),
         Table::num(subset_mse(subset, test_records, {}, base_params), 3)});
  }
  size_table.print(std::cout, 2);

  // Feature groups by index (see core::feature_names()):
  //   0..4  server + env: cpu_capacity, cores, memory, fans, env
  //   5..12 vm-set scalars incl. derived expected_utilization
  //   13..  task shares
  print_section(std::cout, "Feature-group ablation (RBF, N=400)");
  const auto& names = core::feature_names();
  std::vector<std::size_t> all(names.size());
  for (std::size_t i = 0; i < names.size(); ++i) all[i] = i;

  auto drop = [&](std::size_t from, std::size_t to) {
    std::vector<std::size_t> keep;
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (i < from || i > to) keep.push_back(i);
    }
    return keep;
  };

  Table feat_table({"features", "mse"});
  feat_table.add_row(
      {"full Eq.(2) record",
       Table::num(subset_mse(train_records, test_records, all, base_params),
                  3)});
  feat_table.add_row(
      {"without task shares",
       Table::num(subset_mse(train_records, test_records, drop(13, 18),
                             base_params),
                  3)});
  feat_table.add_row(
      {"without vm-set scalars (xi_VM)",
       Table::num(subset_mse(train_records, test_records, drop(5, 12),
                             base_params),
                  3)});
  feat_table.add_row(
      {"without env temperature",
       Table::num(subset_mse(train_records, test_records, drop(4, 4),
                             base_params),
                  3)});
  feat_table.add_row(
      {"without fan status",
       Table::num(subset_mse(train_records, test_records, drop(3, 3),
                             base_params),
                  3)});
  feat_table.add_row(
      {"server + env only (no xi_VM at all)",
       Table::num(subset_mse(train_records, test_records, {0, 1, 2, 3, 4},
                             base_params),
                  3)});
  feat_table.print(std::cout, 2);

  std::cout << "\n  reading: removing xi_VM (the paper's VM-level inputs)"
            << "\n  degrades accuracy far more than removing any single"
            << "\n  server-level input - the core claim of the paper.\n";
  return 0;
}
