// bench/bench_common.h
//
// Shared setup for the figure-reproduction benches: corpus generation and
// predictor training with the configuration used throughout the evaluation
// (mirrors the paper's testbed scale where practical).

#pragma once

#include <iostream>

#include "core/evaluator.h"
#include "util/table.h"

namespace vmtherm::bench {

/// Scenario ranges used by all stable-prediction benches: the paper's
/// evaluation space (2-12 VMs, 1-6 fans, 18-30 C room temperature) on the
/// three simulated server models.
inline sim::ScenarioRanges standard_ranges() {
  sim::ScenarioRanges ranges;
  ranges.duration_s = 1800.0;       // t_exp
  ranges.sample_interval_s = 5.0;   // sensor sampling period
  return ranges;
}

/// Corpus sizes: the paper trains on "numerous experiments"; 400 records is
/// enough for the SVR to reach its noise floor on this testbed.
inline constexpr std::size_t kTrainRecords = 400;

/// Trains the stable predictor exactly as the paper describes: scaled
/// features, RBF kernel, easygrid-style (C, gamma, epsilon) search with
/// 10-fold cross-validation.
inline core::StableTemperaturePredictor train_standard_predictor(
    const std::vector<core::Record>& records,
    core::StableTrainReport* report = nullptr) {
  core::StableTrainOptions options;  // default grid: RBF, 10-fold
  return core::StableTemperaturePredictor::train(records, options, report);
}

/// Prints the standard bench header.
inline void print_bench_header(const std::string& name,
                               const std::string& paper_target) {
  std::cout << "# " << name << "\n";
  std::cout << "# paper target: " << paper_target << "\n";
}

}  // namespace vmtherm::bench
