// Ablation table A: the paper's SVR against every baseline on the same
// held-out test set — task-temperature profiles [4], the RC-circuit model
// [5], plus linear regression and kNN as generic regressors.
//
// The paper's argument is that VM-level features + SVR capture what the
// classical approaches cannot (multi-tenancy, heterogeneity, environment);
// this table quantifies that on the simulated testbed.

#include <cmath>
#include <iostream>

#include "baselines/rc_predictor.h"
#include "baselines/task_temperature.h"
#include "bench_common.h"
#include "ml/forest.h"
#include "ml/knn.h"
#include "ml/linreg.h"
#include "util/stats.h"

namespace {

using namespace vmtherm;

struct Scores {
  double mse = 0.0;
  double mae = 0.0;
  double max_err = 0.0;
};

Scores score(const std::vector<double>& predicted,
             const std::vector<double>& actual) {
  return {mse(predicted, actual), mae(predicted, actual),
          max_abs_error(predicted, actual)};
}

}  // namespace

int main() {
  using namespace vmtherm;
  bench::print_bench_header(
      "Ablation A - stable prediction: SVR vs baselines",
      "SVR (VM-level features) wins; task-profile and RC models degrade "
      "under heterogeneity");

  const auto ranges = bench::standard_ranges();
  std::cout << "\nGenerating corpora...\n";
  const auto train_records =
      core::generate_corpus(ranges, bench::kTrainRecords, /*seed=*/42);
  const auto test_records = core::generate_corpus(ranges, 60, /*seed=*/4242);

  std::vector<double> actual;
  for (const auto& r : test_records) actual.push_back(r.stable_temp_c);

  std::cout << "Training all models on the same corpus...\n";

  // Paper's model.
  const auto svr = bench::train_standard_predictor(train_records);
  std::vector<double> svr_pred;
  for (const auto& r : test_records) svr_pred.push_back(svr.predict(r));

  // Task-temperature profiles [4].
  const auto task_model = baselines::TaskTemperatureBaseline::fit(train_records);
  std::vector<double> task_pred;
  for (const auto& r : test_records) task_pred.push_back(task_model.predict(r));

  // RC-circuit model [5].
  const auto rc_model = baselines::RcBaseline::fit(train_records);
  std::vector<double> rc_pred;
  for (const auto& r : test_records) rc_pred.push_back(rc_model.predict(r));

  // Generic regressors on the same features.
  const auto train_data = core::records_to_dataset(train_records);
  const auto scaler = ml::MinMaxScaler::fit(train_data);
  const auto scaled_train = scaler.transform(train_data);

  const auto linreg = ml::LinearRegression::fit(scaled_train, 1e-6);
  const ml::KnnRegressor knn(scaled_train, 5);
  ml::ForestParams forest_params;
  forest_params.n_trees = 150;
  const auto forest = ml::RandomForest::train(scaled_train, forest_params);
  std::vector<double> lin_pred;
  std::vector<double> knn_pred;
  std::vector<double> forest_pred;
  for (const auto& r : test_records) {
    const auto x = scaler.transform(core::to_feature_vector(r));
    lin_pred.push_back(linreg.predict(x));
    knn_pred.push_back(knn.predict(x));
    forest_pred.push_back(forest.predict(x));
  }

  // Mean predictor = the floor any model must beat.
  const double label_mean = mean(actual);
  std::vector<double> mean_pred(actual.size(), label_mean);

  print_section(std::cout, "Held-out accuracy (60 fresh cases)");
  Table table({"model", "features", "mse", "mae", "max_abs_err"});
  auto add = [&](const std::string& name, const std::string& feats,
                 const std::vector<double>& pred) {
    const Scores s = score(pred, actual);
    table.add_row({name, feats, Table::num(s.mse, 3), Table::num(s.mae, 3),
                   Table::num(s.max_err, 2)});
  };
  add("SVR + RBF (paper)", "full Eq.(2) record", svr_pred);
  add("random forest (150 trees)", "full Eq.(2) record", forest_pred);
  add("linear regression", "full Eq.(2) record", lin_pred);
  add("kNN (k=5)", "full Eq.(2) record", knn_pred);
  add("task-temperature profiles [4]", "task counts only", task_pred);
  add("RC circuit model [5]", "vm count, fans, env", rc_pred);
  add("corpus mean", "none", mean_pred);
  table.print(std::cout, 2);

  const double svr_mse = score(svr_pred, actual).mse;
  print_kv(std::cout, "SVR beats task profiles",
           svr_mse < score(task_pred, actual).mse ? "yes" : "NO");
  print_kv(std::cout, "SVR beats RC model",
           svr_mse < score(rc_pred, actual).mse ? "yes" : "NO");
  return 0;
}
