// Reproduces Figure 1(c): dynamic prediction accuracy (MSE) when varying
// the prediction gap and the calibration update interval, with 4 server
// fans.
//
// Paper result: MSE varies from 0.70 to 1.50 across the grid — larger
// prediction gaps are harder, more frequent calibration updates help.

#include <iostream>

#include "bench_common.h"

int main() {
  using namespace vmtherm;
  bench::print_bench_header(
      "Fig 1(c) - MSE vs (prediction gap x update interval), 4 fans",
      "MSE in [0.70, 1.50]; grows with gap, shrinks with faster updates");

  const auto ranges = bench::standard_ranges();
  std::cout << "\nTraining stable-temperature predictor ("
            << bench::kTrainRecords << " records)...\n";
  const auto train_records =
      core::generate_corpus(ranges, bench::kTrainRecords, /*seed=*/42);
  const auto predictor = bench::train_standard_predictor(train_records);

  // Randomized dynamic scenarios, all pinned to 4 fans as in the figure.
  std::cout << "Building dynamic scenarios (4 fans, VM churn)...\n";
  std::vector<core::DynamicScenario> scenarios;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    scenarios.push_back(
        core::make_random_dynamic_scenario(ranges, /*fans=*/4, 9000 + seed));
  }

  const std::vector<double> gaps = {15.0, 30.0, 45.0, 60.0, 90.0, 120.0};
  const std::vector<double> updates = {5.0, 10.0, 15.0, 30.0, 45.0, 60.0};

  const auto grid = core::sweep_gap_update(predictor, scenarios, gaps,
                                           updates, core::DynamicOptions{});

  print_section(std::cout,
                "Fig 1(c) grid: MSE by prediction gap (rows) x update "
                "interval (columns)");
  std::vector<std::string> headers = {"gap_s \\ update_s"};
  for (double u : updates) headers.push_back(Table::num(u, 0));
  Table table(headers);
  double lo = grid[0][0];
  double hi = grid[0][0];
  for (std::size_t gi = 0; gi < gaps.size(); ++gi) {
    std::vector<std::string> row = {Table::num(gaps[gi], 0)};
    for (std::size_t ui = 0; ui < updates.size(); ++ui) {
      row.push_back(Table::num(grid[gi][ui], 3));
      lo = std::min(lo, grid[gi][ui]);
      hi = std::max(hi, grid[gi][ui]);
    }
    table.add_row(row);
  }
  table.print(std::cout, 2);

  print_section(std::cout, "Aggregate");
  print_kv(std::cout, "min MSE in grid", Table::num(lo, 3));
  print_kv(std::cout, "max MSE in grid", Table::num(hi, 3));
  print_kv(std::cout, "paper reports", "0.70 to 1.50");

  // Shape checks the paper's figure shows.
  const bool gap_monotone = grid.front().front() < grid.back().front();
  const bool update_helps_short_gap = grid.front().front() < grid.front().back();
  print_kv(std::cout, "MSE grows with gap", gap_monotone ? "yes" : "NO");
  print_kv(std::cout, "faster updates help (short gaps)",
           update_helps_short_gap ? "yes" : "NO");
  std::cout << "\n  reading: frequent calibration pays off when predictions"
            << "\n  are near-term; at long gaps the freshly-learned offset is"
            << "\n  stale by the target time, so the update interval matters"
            << "\n  less (and can even reverse) - visible as the flattening"
            << "\n  of the bottom rows.\n";
  return 0;
}
