// bench/perf_svr_infer.cpp
//
// Batched SVR inference throughput: the packed SvrInference engine vs. a
// scalar reference that replays the pre-engine code path (per-SV
// kernel_eval over ragged vector<vector<double>> storage plus libm exp).
// Emits machine-readable JSON (BENCH_svr_infer.json) next to the
// human-readable table.
//
// Methodology: the model is constructed directly from a deterministic
// pseudo-random support set at the paper's scale (Eq. (2) feature count,
// a few hundred SVs) so the bench measures inference, not SMO training.
// Every throughput number is best-of `--trials`; the scalar and batched
// paths are cross-checked to a few ulps and the threaded path must be
// bitwise-identical to the single-thread batched run before any number
// is reported.
//
//   perf_svr_infer [--svs N] [--dim N] [--queries N] [--trials N]
//                  [--out PATH]

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "ml/svr.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace {

using Clock = std::chrono::steady_clock;
namespace ml = vmtherm::ml;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Args {
  std::size_t svs = 512;     ///< paper-scale support set (N=400 corpus)
  std::size_t dim = 19;      ///< Eq. (2) feature count
  std::size_t queries = 4096;
  std::size_t trials = 5;    ///< best-of trials per throughput number
  std::string out = "BENCH_svr_infer.json";
};

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string name = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << name << "\n";
        std::exit(1);
      }
      return argv[++i];
    };
    if (name == "--svs") {
      args.svs = std::stoul(next());
    } else if (name == "--dim") {
      args.dim = std::stoul(next());
    } else if (name == "--queries") {
      args.queries = std::stoul(next());
    } else if (name == "--trials") {
      args.trials = std::stoul(next());
    } else if (name == "--out") {
      args.out = next();
    } else {
      std::cerr << "usage: perf_svr_infer [--svs N] [--dim N] [--queries N] "
                   "[--trials N] [--out PATH]\n";
      std::exit(name == "--help" ? 0 : 1);
    }
  }
  if (args.svs == 0 || args.dim == 0 || args.queries == 0 ||
      args.trials == 0) {
    std::cerr << "--svs, --dim, --queries and --trials must be >= 1\n";
    std::exit(1);
  }
  return args;
}

/// Deterministic uniform [0, 1) stream (SplitMix64) — scaled-feature-like
/// inputs without touching any global RNG.
struct Rng {
  std::uint64_t state;
  double next() {
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    return static_cast<double>(z >> 11) * 0x1.0p-53;
  }
};

/// The pre-engine prediction path, kept verbatim as the scalar baseline:
/// ragged storage, per-SV kernel_eval, accumulate in SV order.
double scalar_predict(const ml::KernelParams& kernel,
                      const std::vector<std::vector<double>>& svs,
                      const std::vector<double>& coefs, double bias,
                      std::span<const double> x) {
  double acc = bias;
  for (std::size_t k = 0; k < svs.size(); ++k) {
    acc += coefs[k] * ml::kernel_eval(kernel, svs[k], x);
  }
  return acc;
}

struct KernelResult {
  std::string name;
  double scalar_qps = 0.0;
  double batched_qps = 0.0;
};

struct ThreadResult {
  std::size_t threads = 0;
  double qps = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);

  std::cout << "# perf_svr_infer: packed batched inference vs scalar "
               "kernel_eval baseline\n"
            << "# svs=" << args.svs << " dim=" << args.dim
            << " queries=" << args.queries << "\n";

  Rng rng{12345};
  std::vector<std::vector<double>> svs(args.svs,
                                       std::vector<double>(args.dim));
  std::vector<double> coefs(args.svs);
  for (auto& sv : svs) {
    for (double& v : sv) v = rng.next();
  }
  for (double& c : coefs) c = 2.0 * rng.next() - 1.0;
  std::vector<double> queries(args.queries * args.dim);
  for (double& q : queries) q = rng.next();

  const double bias = 0.3;
  const auto make_kernel = [](ml::KernelKind kind) {
    ml::KernelParams kernel;
    kernel.kind = kind;
    kernel.gamma = 1.0 / 32;
    kernel.coef0 = 1.0;
    kernel.degree = 3;
    return kernel;
  };

  std::vector<KernelResult> kernel_results;
  std::vector<ThreadResult> thread_results;
  double rbf_batched_qps = 0.0;

  for (const ml::KernelKind kind :
       {ml::KernelKind::kLinear, ml::KernelKind::kPolynomial,
        ml::KernelKind::kRbf, ml::KernelKind::kSigmoid}) {
    const ml::KernelParams kernel = make_kernel(kind);
    const ml::SvrModel model(kernel, svs, coefs, bias);

    std::vector<double> scalar_out(args.queries);
    std::vector<double> batched_out(args.queries);

    double scalar_best_s = 0.0;
    double batched_best_s = 0.0;
    for (std::size_t trial = 0; trial < args.trials; ++trial) {
      auto start = Clock::now();
      for (std::size_t i = 0; i < args.queries; ++i) {
        scalar_out[i] = scalar_predict(
            kernel, svs, coefs, bias,
            std::span<const double>(queries.data() + i * args.dim, args.dim));
      }
      const double scalar_s = seconds_since(start);

      start = Clock::now();
      model.predict_batch(queries, args.queries, batched_out);
      const double batched_s = seconds_since(start);

      if (trial == 0 || scalar_s < scalar_best_s) scalar_best_s = scalar_s;
      if (trial == 0 || batched_s < batched_best_s) batched_best_s = batched_s;
    }

    // Correctness gate: the packed engine must agree with the pre-engine
    // path to a few ulps (the RBF summation order differs by design).
    for (std::size_t i = 0; i < args.queries; ++i) {
      const double tolerance =
          1e-9 * std::max(1.0, std::abs(scalar_out[i]));
      if (std::abs(scalar_out[i] - batched_out[i]) > tolerance) {
        std::cerr << "MISMATCH kernel=" << ml::kernel_kind_name(kind)
                  << " query " << i << ": scalar=" << scalar_out[i]
                  << " batched=" << batched_out[i] << "\n";
        return 1;
      }
    }

    KernelResult r;
    r.name = std::string(ml::kernel_kind_name(kind));
    r.scalar_qps = static_cast<double>(args.queries) / scalar_best_s;
    r.batched_qps = static_cast<double>(args.queries) / batched_best_s;
    kernel_results.push_back(r);

    if (kind == ml::KernelKind::kRbf) {
      rbf_batched_qps = r.batched_qps;
      // Thread sweep on the RBF model; every run must be bitwise-identical
      // to the single-thread batched result (the determinism contract).
      for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
        vmtherm::util::ThreadPool pool(threads);
        std::vector<double> threaded_out(args.queries);
        double best_s = 0.0;
        for (std::size_t trial = 0; trial < args.trials; ++trial) {
          const auto start = Clock::now();
          model.predict_batch(queries, args.queries, threaded_out, &pool);
          const double elapsed_s = seconds_since(start);
          if (trial == 0 || elapsed_s < best_s) best_s = elapsed_s;
        }
        if (std::memcmp(threaded_out.data(), batched_out.data(),
                        args.queries * sizeof(double)) != 0) {
          std::cerr << "DETERMINISM VIOLATION: threads=" << threads
                    << " differs from single-thread batch\n";
          return 1;
        }
        thread_results.push_back(
            {threads, static_cast<double>(args.queries) / best_s});
      }
    }
  }

  vmtherm::Table table({"kernel", "scalar_q_s", "batched_q_s", "speedup"});
  for (const KernelResult& r : kernel_results) {
    table.add_row({r.name, vmtherm::Table::num(r.scalar_qps, 0),
                   vmtherm::Table::num(r.batched_qps, 0),
                   vmtherm::Table::num(r.batched_qps / r.scalar_qps, 2)});
  }
  table.print(std::cout);

  std::cout << "\nRBF thread sweep (hardware_concurrency="
            << std::thread::hardware_concurrency() << ")\n";
  vmtherm::Table sweep({"threads", "q_s", "vs_1thread"});
  for (const ThreadResult& r : thread_results) {
    sweep.add_row({vmtherm::Table::num(static_cast<long long>(r.threads)),
                   vmtherm::Table::num(r.qps, 0),
                   vmtherm::Table::num(r.qps / thread_results.front().qps, 2)});
  }
  sweep.print(std::cout);

  std::ofstream json(args.out);
  if (!json) {
    std::cerr << "cannot create " << args.out << "\n";
    return 1;
  }
  json.precision(17);
  json << "{\"svs\":" << args.svs << ",\"dim\":" << args.dim
       << ",\"queries\":" << args.queries
       << ",\"hardware_concurrency\":" << std::thread::hardware_concurrency()
       << ",\"kernels\":[";
  for (std::size_t i = 0; i < kernel_results.size(); ++i) {
    const KernelResult& r = kernel_results[i];
    if (i > 0) json << ",";
    json << "{\"kernel\":\"" << r.name
         << "\",\"scalar_queries_per_sec\":" << r.scalar_qps
         << ",\"batched_queries_per_sec\":" << r.batched_qps
         << ",\"speedup\":" << r.batched_qps / r.scalar_qps << "}";
  }
  json << "],\"rbf_thread_sweep\":[";
  for (std::size_t i = 0; i < thread_results.size(); ++i) {
    const ThreadResult& r = thread_results[i];
    if (i > 0) json << ",";
    json << "{\"threads\":" << r.threads
         << ",\"queries_per_sec\":" << r.qps << ",\"scaling_vs_1thread\":"
         << r.qps / thread_results.front().qps
         << ",\"scaling_vs_batched\":" << r.qps / rbf_batched_qps << "}";
  }
  json << "]}\n";
  std::cout << "wrote " << args.out << "\n";
  return 0;
}
