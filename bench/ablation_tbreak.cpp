// Ablation D: reproducing the paper's choice of t_break = 600 s, "deduced
// from experiments". Runs profiling experiments across fan configurations,
// extracts settling times (transient end, stationary-envelope criterion)
// and reports the quantiles a practitioner would use to pick t_break —
// plus the cost of picking it wrong (label error of Eq. (1) when the
// averaging window starts too early).

#include <iostream>

#include "bench_common.h"
#include "core/record_store.h"
#include "core/tbreak.h"
#include "util/stats.h"

int main() {
  using namespace vmtherm;
  bench::print_bench_header(
      "Ablation D - deducing t_break from experiments",
      "paper fixes t_break = 600 s; the testbed's settling quantiles should "
      "justify it");

  auto ranges = bench::standard_ranges();
  ranges.dynamic_env_probability = 0.0;  // settling is a machine property
  const double band_c = 2.0;

  print_section(std::cout, "Settling-time quantiles by fan configuration");
  Table table({"fans", "experiments", "p50_s", "p90_s", "p100_s",
               "unsettled"});
  for (int fans : {1, 2, 4, 6}) {
    sim::ScenarioRanges pinned = ranges;
    pinned.min_fans = fans;
    pinned.max_fans = fans;
    pinned.duration_s = 2400.0;  // room for slow 1-fan transients
    sim::ScenarioSampler sampler(pinned, 500 + static_cast<std::uint64_t>(fans));
    const auto study = core::study_t_break(sampler.sample(16), band_c, 0.9);
    table.add_row({Table::num(static_cast<long long>(fans)),
                   Table::num(static_cast<long long>(16)),
                   Table::num(quantile(study.settling_times_s, 0.5), 0),
                   Table::num(quantile(study.settling_times_s, 0.9), 0),
                   Table::num(quantile(study.settling_times_s, 1.0), 0),
                   Table::num(static_cast<long long>(study.unsettled_count))});
  }
  table.print(std::cout, 2);

  // The paper's evaluation uses 4 server fans (Fig. 1c); deduce t_break for
  // that configuration, as the authors would have on their testbed.
  sim::ScenarioRanges paper_cfg = ranges;
  paper_cfg.min_fans = 4;
  paper_cfg.max_fans = 4;
  sim::ScenarioSampler paper_sampler(paper_cfg, 4242);
  const auto paper_study =
      core::study_t_break(paper_sampler.sample(24), band_c, 0.5);
  print_section(std::cout, "Paper-configuration (4 fans) recommendation");
  print_kv(std::cout, "median settling time",
           Table::num(paper_study.recommended_t_break_s, 0) + " s");
  print_kv(std::cout, "paper's choice", "600 s");

  // Cost of a wrong t_break: label shift of Eq. (1) vs a late reference
  // window when averaging starts mid-transient.
  print_section(std::cout,
                "Label error of Eq.(1) when t_break starts mid-transient");
  sim::ScenarioSampler cost_sampler(ranges, 777);
  const auto configs = cost_sampler.sample(12);
  std::vector<sim::ExperimentResult> results;
  for (const auto& c : configs) results.push_back(sim::run_experiment(c));

  Table cost({"t_break_s", "mean_abs_label_shift_C"});
  for (double tb : {60.0, 150.0, 300.0, 450.0, 600.0, 900.0}) {
    double shift = 0.0;
    for (const auto& r : results) {
      const double early = core::stable_temperature(r.trace, tb);
      const double reference = core::stable_temperature(r.trace, 1200.0);
      shift += std::abs(early - reference);
    }
    cost.add_row({Table::num(tb, 0),
                  Table::num(shift / static_cast<double>(results.size()), 3)});
  }
  cost.print(std::cout, 2);

  std::cout << "\n  reading: labels stabilize once t_break clears the slow\n"
            << "  thermal mode; at 600 s the residual label shift (~0.9 C)\n"
            << "  is already below the paper's reported prediction MSE, and\n"
            << "  the 4-fan median settling time lands at almost exactly the\n"
            << "  paper's 600 s. Larger t_break buys little accuracy and\n"
            << "  wastes profiling time; smaller contaminates the labels.\n";
  return 0;
}
