// Microbenchmarks of the ML substrate (google-benchmark): SMO training,
// prediction throughput, kernel evaluation and grid-search cost. These
// bound the offline training and online serving cost of the paper's
// pipeline.

#include <benchmark/benchmark.h>

#include <cmath>
#include <string>

#include "ml/forest.h"
#include "ml/grid.h"
#include "ml/svr.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

using namespace vmtherm;

ml::Dataset synthetic_data(std::size_t n, std::size_t dim,
                           std::uint64_t seed) {
  Rng rng(seed);
  ml::Dataset data;
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> x(dim);
    double y = 0.0;
    for (std::size_t j = 0; j < dim; ++j) {
      x[j] = rng.uniform(-1.0, 1.0);
      y += std::sin(static_cast<double>(j + 1) * x[j]) /
           static_cast<double>(j + 1);
    }
    data.add(ml::Sample{std::move(x), y});
  }
  return data;
}

ml::SvrParams rbf_params() {
  ml::SvrParams params;
  params.kernel.gamma = 0.5;
  params.c = 10.0;
  params.epsilon = 0.05;
  return params;
}

void BM_SvrTrain(benchmark::State& state) {
  const auto data = synthetic_data(static_cast<std::size_t>(state.range(0)),
                                   16, 1);
  const auto params = rbf_params();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ml::SvrModel::train(data, params));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SvrTrain)->Arg(64)->Arg(128)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMillisecond);

void BM_SvrPredict(benchmark::State& state) {
  const auto data = synthetic_data(static_cast<std::size_t>(state.range(0)),
                                   16, 2);
  const auto model = ml::SvrModel::train(data, rbf_params());
  const std::vector<double> x(16, 0.25);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict(x));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SvrPredict)->Arg(128)->Arg(512);

void BM_SvrPredictBatch(benchmark::State& state) {
  // Batched inference over the packed engine; items/sec here divided by
  // BM_SvrPredict's rate is the batching win at equal support size.
  const auto data = synthetic_data(static_cast<std::size_t>(state.range(0)),
                                   16, 2);
  const auto model = ml::SvrModel::train(data, rbf_params());
  constexpr std::size_t kQueries = 1024;
  Rng rng(9);
  std::vector<double> queries(kQueries * 16);
  for (double& q : queries) q = rng.uniform(-1.0, 1.0);
  std::vector<double> out(kQueries);
  for (auto _ : state) {
    model.predict_batch(queries, kQueries, out);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * kQueries);
}
BENCHMARK(BM_SvrPredictBatch)->Arg(128)->Arg(512);

void BM_SvrPredictBatchThreaded(benchmark::State& state) {
  // predict_batch sharded over a pool; bitwise-identical results to the
  // single-thread run by the engine's determinism contract.
  const auto data = synthetic_data(512, 16, 2);
  const auto model = ml::SvrModel::train(data, rbf_params());
  constexpr std::size_t kQueries = 4096;
  Rng rng(10);
  std::vector<double> queries(kQueries * 16);
  for (double& q : queries) q = rng.uniform(-1.0, 1.0);
  std::vector<double> out(kQueries);
  util::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    model.predict_batch(queries, kQueries, out, &pool);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * kQueries);
}
BENCHMARK(BM_SvrPredictBatchThreaded)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_ExpDet(benchmark::State& state) {
  // Deterministic exp vs libm: the transform at the heart of the RBF row.
  Rng rng(11);
  std::vector<double> xs(1024);
  for (double& v : xs) v = rng.uniform(-30.0, 0.0);
  std::vector<double> out(1024);
  const bool use_det = state.range(0) == 1;
  for (auto _ : state) {
    if (use_det) {
      for (std::size_t i = 0; i < xs.size(); ++i) out[i] = ml::exp_det(xs[i]);
    } else {
      for (std::size_t i = 0; i < xs.size(); ++i) out[i] = std::exp(xs[i]);
    }
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetLabel(use_det ? "exp_det" : "std::exp");
  state.SetItemsProcessed(state.iterations() * xs.size());
}
BENCHMARK(BM_ExpDet)->Arg(0)->Arg(1);

void BM_KernelEvalRbf(benchmark::State& state) {
  Rng rng(3);
  const auto dim = static_cast<std::size_t>(state.range(0));
  std::vector<double> a(dim);
  std::vector<double> b(dim);
  for (std::size_t j = 0; j < dim; ++j) {
    a[j] = rng.uniform(-1, 1);
    b[j] = rng.uniform(-1, 1);
  }
  ml::KernelParams params;
  params.kind = ml::KernelKind::kRbf;
  params.gamma = 0.5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ml::kernel_eval(params, a, b));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KernelEvalRbf)->Arg(16)->Arg(64);

void BM_GridSearchSmall(benchmark::State& state) {
  const auto data = synthetic_data(96, 16, 4);
  ml::GridSpec spec;
  spec.c_values = {1.0, 10.0};
  spec.gamma_values = {0.1, 1.0};
  spec.epsilon_values = {0.05};
  spec.folds = 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ml::grid_search_svr(data, spec));
  }
  state.SetLabel("2x2x1 grid, 4-fold, 96 samples");
}
BENCHMARK(BM_GridSearchSmall)->Unit(benchmark::kMillisecond);

void BM_GridSearchPaperScale(benchmark::State& state) {
  // The paper-scale search: default 7x5x2 (C, gamma, epsilon) grid with
  // 10-fold CV, swept over thread counts. UseRealTime makes the threaded
  // runs report wall clock, so the serial-vs-parallel speedup reads
  // directly off the table.
  const auto data = synthetic_data(96, 16, 8);
  ml::GridSpec spec;
  spec.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ml::grid_search_svr(data, spec));
  }
  state.SetLabel("7x5x2 grid, 10-fold, 96 samples, " +
                 std::to_string(state.range(0)) + " thread(s)");
}
BENCHMARK(BM_GridSearchPaperScale)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_SvrTrainCacheConstrained(benchmark::State& state) {
  // Cache thrashing cost: tiny kernel cache vs roomy one.
  const auto data = synthetic_data(256, 16, 5);
  auto params = rbf_params();
  params.cache_mb = state.range(0) == 0 ? 1e-5 : 16.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ml::SvrModel::train(data, params));
  }
  state.SetLabel(state.range(0) == 0 ? "2-row cache" : "16 MB cache");
}
BENCHMARK(BM_SvrTrainCacheConstrained)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);


void BM_ForestTrain(benchmark::State& state) {
  const auto data = synthetic_data(static_cast<std::size_t>(state.range(0)),
                                   16, 6);
  ml::ForestParams params;
  params.n_trees = 50;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ml::RandomForest::train(data, params));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ForestTrain)->Arg(128)->Arg(512)->Unit(benchmark::kMillisecond);

void BM_ForestPredict(benchmark::State& state) {
  const auto data = synthetic_data(256, 16, 7);
  ml::ForestParams params;
  params.n_trees = 50;
  const auto forest = ml::RandomForest::train(data, params);
  const std::vector<double> x(16, 0.25);
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.predict(x));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ForestPredict);

}  // namespace

BENCHMARK_MAIN();
