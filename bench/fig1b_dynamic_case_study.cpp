// Reproduces Figure 1(b): a case study of dynamic CPU temperature modeling
// with and without run-time calibration, against empirical data.
//
// Paper result: dynamic modeling *with* calibration at run time produces a
// lower MSE than the uncalibrated pre-defined curve. The case study here
// includes VM churn mid-run (the "Cloud dynamics" the paper motivates):
// two cpu-burn VMs join at t=600 s and one initial VM leaves at t=1200 s.

#include <cmath>
#include <iostream>

#include "baselines/naive_dynamic.h"
#include "bench_common.h"
#include "util/stats.h"

namespace {

using namespace vmtherm;

core::DynamicScenario case_study_scenario() {
  core::DynamicScenario scenario;
  scenario.base.server = sim::make_server_spec("medium");

  sim::VmConfig batch;
  batch.vcpus = 4;
  batch.memory_gb = 4.0;
  batch.task = sim::TaskType::kBatch;
  sim::VmConfig web = batch;
  web.task = sim::TaskType::kWebServer;
  scenario.base.vms = {batch, web, batch};

  scenario.base.duration_s = 1800.0;
  scenario.base.sample_interval_s = 5.0;
  scenario.base.active_fans = 4;
  scenario.base.environment.base_c = 23.0;
  scenario.base.initial_temp_c = 23.5;
  scenario.base.seed = 20160627;  // ICDCS'16 :-)

  core::ScenarioEvent add;
  add.kind = core::ScenarioEvent::Kind::kAddVm;
  add.time_s = 600.0;
  add.vm.vcpus = 4;
  add.vm.memory_gb = 4.0;
  add.vm.task = sim::TaskType::kCpuBurn;
  scenario.events.push_back(add);
  add.time_s = 605.0;
  scenario.events.push_back(add);

  core::ScenarioEvent remove;
  remove.kind = core::ScenarioEvent::Kind::kRemoveVm;
  remove.time_s = 1200.0;
  remove.vm_id = "vm-0";
  scenario.events.push_back(remove);
  return scenario;
}

/// Scores a naive streaming predictor on the same observe-then-predict
/// protocol evaluate_dynamic uses.
template <typename Predictor>
double naive_mse(const sim::TemperatureTrace& trace, double gap_s,
                 Predictor predictor) {
  std::vector<double> predicted;
  std::vector<double> measured;
  for (const auto& p : trace.points()) {
    predictor.observe(p.time_s, p.cpu_temp_sensed_c);
    const double target_t = p.time_s + gap_s;
    if (target_t > trace.duration_s()) continue;
    predicted.push_back(predictor.predict_ahead(gap_s));
    measured.push_back(trace.sensed_at(target_t));
  }
  return mse(predicted, measured);
}

}  // namespace

int main() {
  using namespace vmtherm;
  bench::print_bench_header(
      "Fig 1(b) - dynamic CPU temperature modeling case study",
      "calibrated prediction tracks empirical data; lower MSE than "
      "uncalibrated");

  const auto ranges = bench::standard_ranges();
  std::cout << "\nTraining stable-temperature predictor ("
            << bench::kTrainRecords << " records)...\n";
  const auto train_records =
      core::generate_corpus(ranges, bench::kTrainRecords, /*seed=*/42);
  const auto predictor = bench::train_standard_predictor(train_records);

  const auto scenario = case_study_scenario();
  core::DynamicEvalOptions calibrated;  // gap 60 s, update 15 s, lambda 0.8
  core::DynamicEvalOptions uncalibrated = calibrated;
  uncalibrated.dynamic.calibration_enabled = false;

  const auto with_cal = evaluate_dynamic(predictor, scenario, calibrated);
  const auto without_cal = evaluate_dynamic(predictor, scenario, uncalibrated);

  print_section(std::cout,
                "Fig 1(b) series: empirical vs model trajectories (60 s grid)");
  Table table({"time_s", "empirical_C", "with_calibration_C",
               "without_calibration_C"});
  for (std::size_t i = 0; i < with_cal.trace.size(); i += 12) {  // every 60 s
    table.add_row({Table::num(with_cal.trace[i].time_s, 0),
                   Table::num(with_cal.trace[i].cpu_temp_sensed_c, 2),
                   Table::num(with_cal.model_trajectory[i], 2),
                   Table::num(without_cal.model_trajectory[i], 2)});
  }
  table.print(std::cout, 2);

  print_section(std::cout, "60 s look-ahead MSE (the Fig 1(b) comparison)");
  Table summary({"predictor", "mse", "mae"});
  summary.add_row({"pre-defined curve + calibration (paper)",
                   Table::num(with_cal.mse, 3), Table::num(with_cal.mae, 3)});
  summary.add_row({"pre-defined curve only (no calibration)",
                   Table::num(without_cal.mse, 3),
                   Table::num(without_cal.mae, 3)});
  summary.add_row({"last-value persistence",
                   Table::num(naive_mse(with_cal.trace, calibrated.gap_s,
                                        baselines::LastValuePredictor{}),
                              3),
                   "-"});
  summary.add_row({"exponential moving average",
                   Table::num(naive_mse(with_cal.trace, calibrated.gap_s,
                                        baselines::EmaPredictor{0.3}),
                              3),
                   "-"});
  summary.add_row({"linear trend extrapolation",
                   Table::num(naive_mse(with_cal.trace, calibrated.gap_s,
                                        baselines::TrendPredictor{}),
                              3),
                   "-"});
  summary.print(std::cout, 2);

  print_kv(std::cout, "calibration lowers MSE",
           with_cal.mse < without_cal.mse ? "yes (matches paper)"
                                          : "NO - investigate");
  return 0;
}
