// bench/perf_serve.cpp
//
// Fleet-serving throughput bench: single-thread ThermalMonitorService
// ingestion (the serial baseline) vs. the sharded FleetEngine at 1/2/4/8
// shards, plus batched-forecast latency quantiles. Emits machine-readable
// JSON (BENCH_serve.json) next to the human-readable table.
//
// Methodology: per-step event batches are pre-built outside every timed
// region. Engine ingestion is timed in manual-drain mode (producer-visible
// enqueue cost — what a telemetry source waits for), apply cost is timed
// as the matching flush, and end-to-end throughput combines both. Every
// throughput number is best-of `--trials` with a fresh engine/monitor per
// trial, so scheduler noise on a shared box doesn't land in the report.
//
// The bench also guards the tracing contract: spans are compiled into the
// serving hot path (see obs/trace.h), so it measures the cost of one
// *disabled* span and fails (exit 1) if the ~2 spans per applied event
// would cost >= 1% of the measured per-event serving time. `--trace PATH`
// additionally runs one traced (untimed) pass and exports it as Chrome
// trace-event JSON.
//
//   perf_serve [--hosts N] [--steps N] [--trials N] [--repeats N]
//              [--out PATH] [--trace PATH]

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/evaluator.h"
#include "mgmt/monitor.h"
#include "obs/chrome_trace.h"
#include "obs/trace.h"
#include "serve/engine.h"
#include "util/table.h"

namespace {

using Clock = std::chrono::steady_clock;
namespace serve = vmtherm::serve;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Args {
  std::size_t hosts = 512;  ///< fleet-scale default; batch = one step's scrape
  std::size_t steps = 200;
  std::size_t trials = 5;   ///< best-of trials per throughput number
  std::size_t repeats = 50;  ///< forecast_batch calls for the latency sample
  std::string out = "BENCH_serve.json";
  std::string trace;  ///< Chrome trace output path ("" = no traced pass)
};

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string name = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << name << "\n";
        std::exit(1);
      }
      return argv[++i];
    };
    if (name == "--hosts") {
      args.hosts = std::stoul(next());
    } else if (name == "--steps") {
      args.steps = std::stoul(next());
    } else if (name == "--trials") {
      args.trials = std::stoul(next());
    } else if (name == "--repeats") {
      args.repeats = std::stoul(next());
    } else if (name == "--out") {
      args.out = next();
    } else if (name == "--trace") {
      args.trace = next();
    } else {
      std::cerr << "usage: perf_serve [--hosts N] [--steps N] [--trials N] "
                   "[--repeats N] [--out PATH] [--trace PATH]\n";
      std::exit(name == "--help" ? 0 : 1);
    }
  }
  if (args.trials == 0 || args.repeats == 0) {
    std::cerr << "--trials and --repeats must be >= 1\n";
    std::exit(1);
  }
  return args;
}

vmtherm::mgmt::MonitoredConfig host_config(std::size_t index) {
  vmtherm::mgmt::MonitoredConfig config;
  config.server = vmtherm::sim::make_server_spec(
      index % 3 == 0 ? "small" : (index % 3 == 1 ? "medium" : "large"));
  config.fans = 4;
  vmtherm::sim::VmConfig vm;
  vm.vcpus = 2 + static_cast<int>(index % 4);
  vm.memory_gb = 4.0;
  vm.task = vmtherm::sim::TaskType::kWebServer;
  config.vms.assign(1 + index % 4, vm);
  config.env_temp_c = 23.0;
  return config;
}

/// Synthetic but deterministic measurement stream (the bench measures the
/// serving layer, not the simulator).
double measured_c(std::size_t step, std::size_t host) {
  return 30.0 + 0.02 * static_cast<double>(step) +
         0.1 * static_cast<double>(host % 13);
}

std::string host_name(std::size_t index) {
  return "host-" + std::to_string(index);
}

struct EngineResult {
  std::size_t shards = 0;
  double ingest_events_per_sec = 0.0;    ///< producer-visible enqueue rate
  double apply_events_per_sec = 0.0;     ///< flush (drain + apply) rate
  double end_to_end_events_per_sec = 0.0;
  double forecast_p50_us = 0.0;
  double forecast_p99_us = 0.0;
  std::uint64_t psi_cache_hits = 0;    ///< ψ_stable memoization traffic
  std::uint64_t psi_cache_misses = 0;  ///< (final trial's engine)
  double fleet_rolling_mse = 0.0;  ///< accuracy_report() over the final trial
  double fleet_rolling_mae = 0.0;  ///< (identical at every shard count)
};

double latency_quantile(std::vector<double> sorted_us, double q) {
  if (sorted_us.empty()) return 0.0;
  std::sort(sorted_us.begin(), sorted_us.end());
  const auto index = static_cast<std::size_t>(
      q * static_cast<double>(sorted_us.size() - 1) + 0.5);
  return sorted_us[std::min(index, sorted_us.size() - 1)];
}

/// Pre-builds the per-step batches one trial moves into the engine — a real
/// producer builds its batch once and hands it over, so only the hand-over
/// (routing + enqueue) is engine-attributable ingest cost.
std::vector<std::vector<serve::TelemetryEvent>> build_batches(
    const Args& args, const std::vector<serve::HostHandle>& handles) {
  std::vector<std::vector<serve::TelemetryEvent>> batches(args.steps);
  for (std::size_t step = 0; step < args.steps; ++step) {
    batches[step].reserve(args.hosts);
    for (std::size_t h = 0; h < args.hosts; ++h) {
      batches[step].push_back(serve::TelemetryEvent::observe(
          handles[h], 5.0 * static_cast<double>(step + 1),
          measured_c(step, h)));
    }
  }
  return batches;
}

EngineResult bench_engine(const vmtherm::core::StableTemperaturePredictor& predictor,
                          const Args& args, std::size_t shards) {
  serve::FleetEngineOptions options;
  options.shards = shards;
  options.drain = serve::DrainMode::kManual;
  options.backpressure = serve::BackpressurePolicy::kDropNewest;
  options.queue_capacity = args.hosts * args.steps + 1;  // lossless here
  const double total_events =
      static_cast<double>(args.hosts) * static_cast<double>(args.steps);

  double best_ingest_s = 0.0;
  double best_apply_s = 0.0;
  std::uint64_t result_hits = 0;
  std::uint64_t result_misses = 0;
  double result_mse = 0.0;
  double result_mae = 0.0;
  std::vector<double> latencies_us;
  latencies_us.reserve(args.repeats);

  // Best-of trials, each on a fresh engine (re-ingesting into a stateful
  // engine would send time backwards and bench the error path instead).
  for (std::size_t trial = 0; trial < args.trials; ++trial) {
    serve::FleetEngine engine(predictor, options);
    std::vector<serve::HostHandle> handles;
    handles.reserve(args.hosts);
    for (std::size_t h = 0; h < args.hosts; ++h) {
      handles.push_back(
          engine.register_host(host_name(h), host_config(h), 0.0, 25.0));
    }
    auto batches = build_batches(args, handles);

    const auto ingest_start = Clock::now();
    for (auto& batch : batches) engine.ingest_batch(std::move(batch));
    const double ingest_s = seconds_since(ingest_start);

    const auto apply_start = Clock::now();
    engine.flush();
    const double apply_s = seconds_since(apply_start);

    if (trial == 0 || ingest_s < best_ingest_s) best_ingest_s = ingest_s;
    if (trial == 0 || apply_s < best_apply_s) best_apply_s = apply_s;

    if (trial + 1 == args.trials) {
      result_hits = engine.metrics()
                        .counter("psi_cache.hits", serve::MetricKind::kTiming)
                        .value();
      result_misses =
          engine.metrics()
              .counter("psi_cache.misses", serve::MetricKind::kTiming)
              .value();
      std::vector<serve::ForecastRequest> requests;
      requests.reserve(args.hosts);
      for (const serve::HostHandle h : handles) {
        requests.push_back(serve::ForecastRequest{h, 60.0});
      }
      for (std::size_t r = 0; r < args.repeats; ++r) {
        const auto start = Clock::now();
        const auto forecasts = engine.forecast_batch(requests);
        latencies_us.push_back(seconds_since(start) * 1e6);
        if (forecasts.empty()) std::abort();  // keep the call observable
      }
      const auto accuracy = engine.accuracy_report();
      result_mse = accuracy.rolling_mse;
      result_mae = accuracy.rolling_mae;
    }
  }

  EngineResult result;
  result.shards = shards;
  result.ingest_events_per_sec = total_events / best_ingest_s;
  result.apply_events_per_sec = total_events / best_apply_s;
  result.end_to_end_events_per_sec =
      total_events / (best_ingest_s + best_apply_s);
  result.forecast_p50_us = latency_quantile(latencies_us, 0.5);
  result.forecast_p99_us = latency_quantile(latencies_us, 0.99);
  result.psi_cache_hits = result_hits;
  result.psi_cache_misses = result_misses;
  result.fleet_rolling_mse = result_mse;
  result.fleet_rolling_mae = result_mae;
  return result;
}

struct OverheadResult {
  double disabled_span_ns = 0.0;   ///< marginal cost of one disabled Span
  double per_event_ns = 0.0;       ///< fastest end-to-end serving cost
  double overhead_percent = 0.0;   ///< 1 span/event vs per_event_ns
};

/// Volatile seed: keeps the payload's start value and coefficients out of
/// reach of constant folding / final-value replacement (with a literal
/// seed GCC folds the whole 2M-iteration loop to its result and the
/// "payload" vanishes from both timing loops).
volatile double g_overhead_seed = 0.0125;

/// Serially-dependent double chain standing in for the per-event serving
/// work a span rides on (residual + Eq. 6 calibration update scale). The
/// loop-carried dependency keeps it non-vectorizable; noinline keeps both
/// timing loops compiled identically.
__attribute__((noinline)) double overhead_payload(std::size_t iters) {
  const double seed = g_overhead_seed;
  const double up = 1.0 + seed * 1e-8;
  const double down = 1.0 - seed * 1e-8;
  double acc = seed;
  for (std::size_t i = 0; i < iters; ++i) {
    acc = acc * up + 1e-9;
    acc = acc * down - 1e-9;
    acc = acc * up + 1e-9;
    acc = acc * down - 1e-9;
  }
  return acc;
}

/// Identical payload with one disabled span per iteration — the shape the
/// serving hot path has (one serve.observe span around each applied
/// event, surrounded by dependent arithmetic).
__attribute__((noinline)) double overhead_payload_with_span(
    std::size_t iters) {
  const double seed = g_overhead_seed;
  const double up = 1.0 + seed * 1e-8;
  const double down = 1.0 - seed * 1e-8;
  double acc = seed;
  for (std::size_t i = 0; i < iters; ++i) {
    // Not elidable: the gate check is a (relaxed) atomic load, which the
    // compiler must perform every iteration.
    vmtherm::obs::Span span("bench.disabled", "bench");
    acc = acc * up + 1e-9;
    acc = acc * down - 1e-9;
    acc = acc * up + 1e-9;
    acc = acc * down - 1e-9;
  }
  return acc;
}

/// The serving hot path constructs one span per applied observation
/// (serve.observe; drain-chunk and ingest-batch spans amortize over 256+
/// events). With the recorder disabled a span is one inline relaxed
/// atomic load plus a predicted branch — independent of the surrounding
/// computation, so on the real path it executes in the shadow of the
/// serving work's dependency chains. Measuring it back-to-back in an
/// empty loop would overstate that marginal cost several-fold; instead
/// this times a representative dependent-arithmetic payload with and
/// without an embedded span and takes the delta.
OverheadResult measure_disabled_span_overhead(double events_per_sec) {
  vmtherm::obs::TraceRecorder& recorder = vmtherm::obs::global_trace();
  recorder.set_enabled(false);
  constexpr std::size_t kIterations = 2000000;
  volatile double sink = 0.0;
  double best_plain_s = 0.0;
  double best_span_s = 0.0;
  // Best-of-5 each: min() filters scheduler noise from both loops
  // independently, so one quiet pass per variant suffices.
  for (int trial = 0; trial < 5; ++trial) {
    auto start = Clock::now();
    sink = overhead_payload(kIterations);
    const double plain_s = seconds_since(start);
    if (trial == 0 || plain_s < best_plain_s) best_plain_s = plain_s;

    start = Clock::now();
    sink = overhead_payload_with_span(kIterations);
    const double span_s = seconds_since(start);
    if (trial == 0 || span_s < best_span_s) best_span_s = span_s;
  }
  (void)sink;
  OverheadResult result;
  result.disabled_span_ns = std::max(0.0, best_span_s - best_plain_s) * 1e9 /
                            static_cast<double>(kIterations);
  result.per_event_ns = 1e9 / events_per_sec;
  result.overhead_percent =
      100.0 * result.disabled_span_ns / result.per_event_ns;
  return result;
}

/// One untimed pass with the span recorder on, exported as Chrome
/// trace-event JSON (load at chrome://tracing or ui.perfetto.dev).
int write_traced_pass(
    const vmtherm::core::StableTemperaturePredictor& predictor,
    const Args& args) {
  Args traced_args = args;
  traced_args.trials = 1;
  traced_args.repeats = 1;
  vmtherm::obs::TraceRecorder& recorder = vmtherm::obs::global_trace();
  recorder.clear();
  recorder.set_enabled(true);
  (void)bench_engine(predictor, traced_args, 4);
  recorder.set_enabled(false);

  std::ofstream file(args.trace, std::ios::binary | std::ios::trunc);
  if (!file) {
    std::cerr << "cannot create " << args.trace << "\n";
    return 1;
  }
  vmtherm::obs::write_chrome_trace(recorder, file);
  std::cout << "trace (" << recorder.event_count() << " events, "
            << recorder.dropped() << " dropped) written to " << args.trace
            << "\n";
  recorder.clear();
  return 0;
}

double bench_monitor(const vmtherm::core::StableTemperaturePredictor& predictor,
                     const Args& args) {
  std::vector<std::string> names;
  names.reserve(args.hosts);
  for (std::size_t h = 0; h < args.hosts; ++h) names.push_back(host_name(h));

  double best_s = 0.0;
  for (std::size_t trial = 0; trial < args.trials; ++trial) {
    vmtherm::mgmt::ThermalMonitorService monitor(predictor);
    for (std::size_t h = 0; h < args.hosts; ++h) {
      monitor.register_host(names[h], host_config(h), 0.0, 25.0);
    }
    const auto start = Clock::now();
    for (std::size_t step = 0; step < args.steps; ++step) {
      for (std::size_t h = 0; h < args.hosts; ++h) {
        monitor.observe(names[h], 5.0 * static_cast<double>(step + 1),
                        measured_c(step, h));
      }
    }
    const double elapsed_s = seconds_since(start);
    if (trial == 0 || elapsed_s < best_s) best_s = elapsed_s;
  }
  return static_cast<double>(args.hosts) * static_cast<double>(args.steps) /
         best_s;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);

  std::cout << "# perf_serve: fleet ingestion throughput and forecast latency\n"
            << "# hosts=" << args.hosts << " steps=" << args.steps << "\n";

  vmtherm::sim::ScenarioRanges ranges;
  ranges.duration_s = 900.0;
  ranges.sample_interval_s = 10.0;
  vmtherm::core::StableTrainOptions train_options;
  vmtherm::ml::SvrParams params;
  params.kernel.gamma = 1.0 / 32;
  params.c = 512.0;
  params.epsilon = 0.05;
  train_options.fixed_params = params;
  const auto predictor = vmtherm::core::StableTemperaturePredictor::train(
      vmtherm::core::generate_corpus(ranges, 60, 7), train_options);

  const double monitor_eps = bench_monitor(predictor, args);

  std::vector<EngineResult> results;
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    results.push_back(bench_engine(predictor, args, shards));
  }

  vmtherm::Table table({"configuration", "ingest_ev_s", "apply_ev_s",
                        "speedup_vs_monitor", "fc_p50_us", "fc_p99_us",
                        "psi_hit", "psi_miss"});
  table.add_row({"monitor (serial)", vmtherm::Table::num(monitor_eps, 0), "-",
                 "1.00", "-", "-", "-", "-"});
  for (const EngineResult& r : results) {
    table.add_row({"engine x" + std::to_string(r.shards),
                   vmtherm::Table::num(r.ingest_events_per_sec, 0),
                   vmtherm::Table::num(r.apply_events_per_sec, 0),
                   vmtherm::Table::num(
                       r.ingest_events_per_sec / monitor_eps, 2),
                   vmtherm::Table::num(r.forecast_p50_us, 1),
                   vmtherm::Table::num(r.forecast_p99_us, 1),
                   vmtherm::Table::num(
                       static_cast<long long>(r.psi_cache_hits)),
                   vmtherm::Table::num(
                       static_cast<long long>(r.psi_cache_misses))});
  }
  table.print(std::cout);

  double best_end_to_end = 0.0;
  for (const EngineResult& r : results) {
    best_end_to_end = std::max(best_end_to_end, r.end_to_end_events_per_sec);
  }
  const OverheadResult overhead =
      measure_disabled_span_overhead(best_end_to_end);
  std::cout << "fleet rolling mse/mae (any shard count): "
            << results.front().fleet_rolling_mse << " / "
            << results.front().fleet_rolling_mae << "\n"
            << "disabled-span cost: " << overhead.disabled_span_ns
            << " ns/span; 1 span over " << overhead.per_event_ns
            << " ns/event = " << overhead.overhead_percent
            << "% overhead\n";

  std::ofstream json(args.out);
  if (!json) {
    std::cerr << "cannot create " << args.out << "\n";
    return 1;
  }
  json.precision(17);
  json << "{\"hosts\":" << args.hosts << ",\"steps\":" << args.steps
       << ",\"events\":" << args.hosts * args.steps
       << ",\"monitor_ingest_events_per_sec\":" << monitor_eps
       << ",\"engine\":[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const EngineResult& r = results[i];
    if (i > 0) json << ",";
    json << "{\"shards\":" << r.shards
         << ",\"ingest_events_per_sec\":" << r.ingest_events_per_sec
         << ",\"apply_events_per_sec\":" << r.apply_events_per_sec
         << ",\"end_to_end_events_per_sec\":" << r.end_to_end_events_per_sec
         << ",\"speedup_vs_monitor\":" << r.ingest_events_per_sec / monitor_eps
         << ",\"forecast_p50_us\":" << r.forecast_p50_us
         << ",\"forecast_p99_us\":" << r.forecast_p99_us
         << ",\"psi_cache_hits\":" << r.psi_cache_hits
         << ",\"psi_cache_misses\":" << r.psi_cache_misses
         << ",\"fleet_rolling_mse\":" << r.fleet_rolling_mse
         << ",\"fleet_rolling_mae\":" << r.fleet_rolling_mae << "}";
  }
  json << "],\"trace_overhead\":{\"disabled_span_ns\":"
       << overhead.disabled_span_ns
       << ",\"per_event_ns\":" << overhead.per_event_ns
       << ",\"overhead_percent\":" << overhead.overhead_percent << "}}\n";
  std::cout << "wrote " << args.out << "\n";

  if (!args.trace.empty()) {
    const int rc = write_traced_pass(predictor, args);
    if (rc != 0) return rc;
  }

  // The zero-cost-when-disabled contract, enforced: tracing compiled into
  // the hot path must stay under 1% of the serving budget.
  if (overhead.overhead_percent >= 1.0) {
    std::cerr << "FAIL: disabled-tracer overhead "
              << overhead.overhead_percent << "% >= 1% of per-event cost\n";
    return 1;
  }
  return 0;
}
