// Ablation E: the cooling-energy payoff of temperature prediction — the
// paper's motivation ("thermal management ... minimizing cooling power
// draw"). Uses the predictive setpoint planner: raise the CRAC supply
// temperature as far as predicted stable CPU temperatures allow, and
// account the chiller energy saved (HP COP model).

#include <iostream>

#include "bench_common.h"
#include "mgmt/cooling.h"

namespace {

using namespace vmtherm;

std::vector<mgmt::PlannedHost> make_fleet(double load_scale) {
  sim::VmConfig burn;
  burn.vcpus = 4;
  burn.memory_gb = 4.0;
  burn.task = sim::TaskType::kCpuBurn;
  sim::VmConfig batch = burn;
  batch.task = sim::TaskType::kBatch;
  sim::VmConfig web = burn;
  web.task = sim::TaskType::kWebServer;

  std::vector<mgmt::PlannedHost> fleet;
  for (int i = 0; i < 6; ++i) {
    mgmt::PlannedHost host;
    host.server = sim::make_server_spec(i % 3 == 0 ? "large" : "medium");
    host.fans = 4;
    const int vms = std::max(1, static_cast<int>(load_scale * (3 + i % 3)));
    for (int v = 0; v < vms; ++v) {
      host.vms.push_back(v % 3 == 0 ? burn : (v % 3 == 1 ? batch : web));
    }
    host.it_watts = 150.0 + 40.0 * vms;
    fleet.push_back(std::move(host));
  }
  return fleet;
}

}  // namespace

int main() {
  using namespace vmtherm;
  bench::print_bench_header(
      "Ablation E - predictive CRAC setpoint and cooling energy",
      "prediction lets the room run warmer; cooling power drops ~3-5% per "
      "deg C of supply-temperature raise");

  const auto ranges = bench::standard_ranges();
  std::cout << "\nTraining stable-temperature predictor ("
            << bench::kTrainRecords << " records)...\n";
  const auto train_records =
      core::generate_corpus(ranges, bench::kTrainRecords, /*seed=*/42);
  const auto predictor = bench::train_standard_predictor(train_records);

  print_section(std::cout, "Chiller COP vs supply temperature (HP model)");
  Table cop_table({"supply_C", "COP", "kW cooling per 100 kW IT"});
  for (double t : {15.0, 18.0, 21.0, 24.0, 27.0, 30.0}) {
    cop_table.add_row(
        {Table::num(t, 0), Table::num(mgmt::CoolingModel::cop(t), 2),
         Table::num(mgmt::CoolingModel::cooling_power_watts(100.0, t), 1)});
  }
  cop_table.print(std::cout, 2);

  print_section(std::cout,
                "Predictive setpoint plan by fleet load (CPU limit 75 C, "
                "2 C margin, baseline supply 18 C)");
  Table plan_table({"fleet load", "recommended_supply_C", "hottest_pred_C",
                    "cooling_saving_%"});
  for (double load : {0.5, 1.0, 1.5, 2.0}) {
    const auto fleet = make_fleet(load);
    const auto plan =
        mgmt::plan_setpoint(predictor, fleet, 18.0, 32.0, 75.0, 2.0);
    plan_table.add_row(
        {Table::num(load, 1), Table::num(plan.recommended_supply_c, 1),
         Table::num(plan.hottest_predicted_c, 1),
         Table::num(100.0 * plan.cooling_saving_fraction, 1)});
  }
  plan_table.print(std::cout, 2);

  // Validate one plan against the testbed: run the hottest host at the
  // recommended supply temperature and confirm it stays under the limit.
  const auto fleet = make_fleet(1.5);
  const auto plan = mgmt::plan_setpoint(predictor, fleet, 18.0, 32.0, 75.0,
                                        2.0);
  sim::ExperimentConfig config;
  config.server = fleet[plan.hottest_host].server;
  config.vms = fleet[plan.hottest_host].vms;
  config.active_fans = fleet[plan.hottest_host].fans;
  config.environment.base_c = plan.recommended_supply_c;
  config.initial_temp_c = plan.recommended_supply_c;
  config.duration_s = 1800.0;
  config.sample_interval_s = 5.0;
  config.seed = 99;
  const auto measured =
      core::stable_temperature(sim::run_experiment(config).trace);

  print_section(std::cout, "Testbed validation of the load-1.5 plan");
  print_kv(std::cout, "hottest host predicted",
           Table::num(plan.hottest_predicted_c, 2) + " C");
  print_kv(std::cout, "hottest host measured", Table::num(measured, 2) + " C");
  print_kv(std::cout, "CPU limit", "75 C");
  print_kv(std::cout, "limit respected on testbed",
           measured <= 75.0 ? "yes" : "NO - prediction unsafe");
  return 0;
}
