// Extension F: per-core temperature granularity. The paper predicts one
// CPU temperature per server; this bench quantifies what that abstraction
// hides — the per-core spread created by VM pinning — and shows that
// pinning policy changes the hottest-core temperature at identical
// placements (i.e. identical Eq. (2) inputs), bounding the accuracy any
// server-level model can reach on per-core sensors.

#include <iostream>

#include "bench_common.h"
#include "sim/multicore.h"

namespace {

using namespace vmtherm;

struct PinningOutcome {
  double hottest_core_c = 0.0;
  double coolest_core_c = 0.0;
  double spread_c = 0.0;
};

PinningOutcome run_pinning(const std::string& policy, std::uint64_t seed) {
  sim::MultiCorePhysicalMachine machine(sim::make_server_spec("medium"),
                                        sim::MultiCoreThermalParams{}, 4,
                                        22.0, Rng(seed));
  sim::VmConfig burn;
  burn.vcpus = 4;
  burn.memory_gb = 4.0;
  burn.task = sim::TaskType::kCpuBurn;
  sim::VmConfig web = burn;
  web.task = sim::TaskType::kWebServer;

  // 3 VMs, 12 vCPUs on 16 cores.
  int rr_cursor = 0;
  for (int v = 0; v < 3; ++v) {
    const sim::VmConfig& config = v == 2 ? web : burn;
    sim::Vm vm("vm" + std::to_string(v), config,
               Rng(seed).fork(static_cast<std::uint64_t>(v)));
    if (policy == "adjacent_blocks") {
      // Each VM owns a contiguous block of cores: a thermal cluster.
      std::vector<int> pins;
      for (int c = 0; c < config.vcpus; ++c) pins.push_back(4 * v + c);
      machine.add_vm(std::move(vm), std::move(pins));
    } else if (policy == "interleaved") {
      // Stride-4 interleave: every vCPU surrounded by other VMs' cores.
      std::vector<int> pins;
      for (int c = 0; c < config.vcpus; ++c) pins.push_back(4 * c + v);
      machine.add_vm(std::move(vm), std::move(pins));
    } else {  // corner_packed: everything crammed into one die corner
      std::vector<int> pins;
      for (int c = 0; c < config.vcpus; ++c) {
        pins.push_back((rr_cursor + c) % 8);  // only cores 0-7 used
      }
      rr_cursor += config.vcpus;
      machine.add_vm(std::move(vm), std::move(pins));
    }
  }

  for (int i = 0; i < 400; ++i) machine.step(5.0, 22.0);

  PinningOutcome outcome;
  outcome.hottest_core_c = machine.thermal().max_core_temp_c();
  outcome.spread_c = machine.thermal().core_spread_c();
  outcome.coolest_core_c = outcome.hottest_core_c - outcome.spread_c;
  return outcome;
}

}  // namespace

int main() {
  using namespace vmtherm;
  bench::print_bench_header(
      "Extension F - per-core granularity (beyond the paper)",
      "identical Eq.(2) inputs, different pinning -> different hottest "
      "core; quantifies the server-level model's granularity floor");

  print_section(std::cout,
                "Per-core outcome by pinning policy (same VM set, 1800 s)");
  Table table({"pinning", "hottest_core_C", "coolest_core_C", "spread_C"});
  PinningOutcome packed{};
  PinningOutcome spread{};
  for (const std::string policy :
       {"corner_packed", "adjacent_blocks", "interleaved"}) {
    // Average over seeds for stable numbers.
    PinningOutcome mean{};
    const int seeds = 5;
    for (std::uint64_t s = 1; s <= seeds; ++s) {
      const auto outcome = run_pinning(policy, s);
      mean.hottest_core_c += outcome.hottest_core_c / seeds;
      mean.coolest_core_c += outcome.coolest_core_c / seeds;
      mean.spread_c += outcome.spread_c / seeds;
    }
    if (policy == "adjacent_blocks") packed = mean;
    if (policy == "interleaved") spread = mean;
    table.add_row({policy, Table::num(mean.hottest_core_c, 2),
                   Table::num(mean.coolest_core_c, 2),
                   Table::num(mean.spread_c, 2)});
  }
  table.print(std::cout, 2);

  print_section(std::cout, "Reading");
  print_kv(std::cout, "hottest-core delta (adjacent - interleaved)",
           Table::num(packed.hottest_core_c - spread.hottest_core_c, 2) +
               " C");
  std::cout
      << "\n  The server-level model of the paper necessarily predicts the\n"
      << "  same temperature for all three rows (identical theta/xi/delta\n"
      << "  inputs). The spread column is therefore an irreducible error\n"
      << "  floor for per-core prediction, and the packed-vs-spread delta\n"
      << "  is the accuracy a pinning-aware (per-core) extension of the\n"
      << "  paper's features would recover.\n";
  return 0;
}
