// Ablation B: sensitivity of dynamic prediction to the calibration learning
// rate lambda (the paper fixes lambda = 0.8 without justification) and to
// the pre-defined curve's curvature delta.
//
// Expected shape: lambda = 0 equals the uncalibrated curve; moderate-to-
// high lambda minimizes MSE; the exact curvature matters much less once
// calibration is on (the calibration absorbs curve mismatch).

#include <iostream>

#include "bench_common.h"

int main() {
  using namespace vmtherm;
  bench::print_bench_header(
      "Ablation B - calibration learning rate and curve curvature",
      "lambda=0.8 (paper) near-optimal; calibration absorbs curve mismatch");

  const auto ranges = bench::standard_ranges();
  std::cout << "\nTraining stable-temperature predictor...\n";
  const auto train_records =
      core::generate_corpus(ranges, bench::kTrainRecords, /*seed=*/42);
  const auto predictor = bench::train_standard_predictor(train_records);

  std::vector<core::DynamicScenario> scenarios;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    scenarios.push_back(
        core::make_random_dynamic_scenario(ranges, /*fans=*/4, 7000 + seed));
  }

  auto mean_mse = [&](const core::DynamicEvalOptions& options) {
    double total = 0.0;
    for (const auto& s : scenarios) {
      total += evaluate_dynamic(predictor, s, options).mse;
    }
    return total / static_cast<double>(scenarios.size());
  };

  print_section(std::cout, "Learning-rate sweep (gap 60 s, update 15 s)");
  Table lambda_table({"lambda", "mse", "note"});
  for (double lambda : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    core::DynamicEvalOptions options;
    options.dynamic.learning_rate = lambda;
    std::string note;
    if (lambda == 0.0) note = "equivalent to no calibration";
    if (lambda == 0.8) note = "paper value";
    lambda_table.add_row(
        {Table::num(lambda, 1), Table::num(mean_mse(options), 3), note});
  }
  lambda_table.print(std::cout, 2);

  print_section(std::cout,
                "Curvature sweep (delta of psi*(t); lambda=0.8 vs disabled)");
  Table curve_table({"curvature", "mse_calibrated", "mse_uncalibrated"});
  for (double delta : {0.005, 0.02, 0.05, 0.2, 1.0}) {
    core::DynamicEvalOptions calibrated;
    calibrated.dynamic.curvature = delta;
    core::DynamicEvalOptions uncalibrated = calibrated;
    uncalibrated.dynamic.calibration_enabled = false;
    curve_table.add_row({Table::num(delta, 3),
                         Table::num(mean_mse(calibrated), 3),
                         Table::num(mean_mse(uncalibrated), 3)});
  }
  curve_table.print(std::cout, 2);

  std::cout << "\n  reading: the uncalibrated column swings with curvature;"
            << "\n  the calibrated column barely moves - run-time calibration"
            << "\n  absorbs the pre-defined curve's shape error, which is why"
            << "\n  the paper can fix the curve a priori.\n";
  return 0;
}
