// Microbenchmarks of the thermal testbed simulator (google-benchmark):
// per-step machine cost, whole-experiment cost, and corpus-record cost.
// These bound how fast training corpora can be regenerated.

#include <benchmark/benchmark.h>

#include "core/profiler.h"
#include "sim/experiment.h"

namespace {

using namespace vmtherm;

sim::ExperimentConfig standard_config(int vms) {
  sim::ExperimentConfig config;
  config.server = sim::make_server_spec("medium");
  sim::VmConfig vm;
  vm.vcpus = 2;
  vm.memory_gb = 4.0;
  vm.task = sim::TaskType::kBatch;
  for (int i = 0; i < vms; ++i) config.vms.push_back(vm);
  config.duration_s = 1800.0;
  config.sample_interval_s = 5.0;
  config.seed = 7;
  return config;
}

void BM_ThermalStep(benchmark::State& state) {
  sim::ThermalNetwork net(sim::ThermalParams{}, 22.0);
  for (auto _ : state) {
    net.step(5.0, 180.0, 22.0, 4);
    benchmark::DoNotOptimize(net.die_temp_c());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ThermalStep);

void BM_MachineStep(benchmark::State& state) {
  sim::MachineOptions options;
  sim::PhysicalMachine machine(sim::make_server_spec("medium"), options,
                               Rng(1));
  sim::VmConfig vm;
  vm.vcpus = 2;
  vm.memory_gb = 4.0;
  vm.task = sim::TaskType::kBatch;
  for (int i = 0; i < state.range(0); ++i) {
    machine.add_vm(sim::Vm("vm-" + std::to_string(i), vm,
                           Rng(static_cast<std::uint64_t>(i))));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(machine.step(5.0, 22.0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MachineStep)->Arg(2)->Arg(12);

void BM_RunExperiment(benchmark::State& state) {
  const auto config = standard_config(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_experiment(config));
  }
  state.SetLabel("1800 s @ 5 s sampling");
}
BENCHMARK(BM_RunExperiment)->Arg(2)->Arg(12)->Unit(benchmark::kMillisecond);

void BM_ProfileExperimentRecord(benchmark::State& state) {
  const auto config = standard_config(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::profile_experiment(config));
  }
  state.SetLabel("one Eq.(2) training record");
}
BENCHMARK(BM_ProfileExperimentRecord)->Unit(benchmark::kMillisecond);

void BM_ScenarioSampling(benchmark::State& state) {
  sim::ScenarioSampler sampler(sim::ScenarioRanges{}, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.next());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScenarioSampling);

}  // namespace

BENCHMARK_MAIN();
