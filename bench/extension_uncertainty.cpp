// Extension G: serving-layer safety features beyond the paper —
// (1) conformal prediction intervals around the SVR's point predictions
//     (calibrated coverage for thermal-safety decisions), and
// (2) CUSUM drift detection on residuals (when does the deployed model
//     need retraining after the datacenter changes under it?).

#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "core/drift.h"
#include "core/uncertainty.h"
#include "util/stats.h"

int main() {
  using namespace vmtherm;
  bench::print_bench_header(
      "Extension G - prediction intervals and drift detection",
      "conformal intervals reach nominal coverage; CUSUM flags a changed "
      "testbed within tens of records");

  const auto ranges = bench::standard_ranges();
  std::cout << "\nTraining + calibrating...\n";
  const auto train_records =
      core::generate_corpus(ranges, bench::kTrainRecords, /*seed=*/42);
  const auto predictor = bench::train_standard_predictor(train_records);

  const auto calibration = core::generate_corpus(ranges, 80, /*seed=*/9001);
  const auto test = core::generate_corpus(ranges, 120, /*seed=*/9002);
  const core::ConformalPredictor conformal(predictor, calibration);

  print_section(std::cout, "Conformal interval coverage (120 fresh cases)");
  Table coverage({"nominal coverage", "interval half-width_C",
                  "empirical coverage"});
  for (double alpha : {0.5, 0.2, 0.1, 0.05}) {
    std::size_t covered = 0;
    for (const auto& r : test) {
      if (conformal.interval(r, alpha).contains(r.stable_temp_c)) ++covered;
    }
    coverage.add_row(
        {Table::num(100.0 * (1.0 - alpha), 0) + " %",
         Table::num(conformal.quantile_c(alpha), 2),
         Table::num(100.0 * static_cast<double>(covered) /
                        static_cast<double>(test.size()),
                    1) +
             " %"});
  }
  coverage.print(std::cout, 2);

  // ---- drift: the testbed changes under the model -----------------------
  print_section(std::cout,
                "Residual drift after a fleet change (CUSUM, k=s/2, h=10s)");

  // Residual scale from calibration.
  std::vector<double> cal_residuals;
  for (const auto& r : calibration) {
    cal_residuals.push_back(predictor.predict(r) - r.stable_temp_c);
  }
  const double sigma = stddev(cal_residuals);

  // Stream 1: same testbed -> no drift expected.
  core::CusumDetector same(sigma / 2.0, 10.0 * sigma);
  std::size_t fired_same = 0;
  for (const auto& r : test) {
    if (same.observe(predictor.predict(r) - r.stable_temp_c)) ++fired_same;
  }

  // Stream 2: the fleet is re-fitted with degraded heatsinks (higher
  // thermal resistance) -- the model was never trained on this hardware.
  sim::ScenarioRanges changed = ranges;
  sim::ScenarioSampler sampler(changed, 9003);
  auto configs = sampler.sample(120);
  for (auto& config : configs) {
    config.server.thermal.sink_to_ambient_resistance *= 1.3;  // dust/age
  }
  const auto changed_records = core::profile_experiments(configs);

  core::CusumDetector drifted(sigma / 2.0, 10.0 * sigma);
  std::size_t records_to_detect = 0;
  bool detected = false;
  for (const auto& r : changed_records) {
    ++records_to_detect;
    if (drifted.observe(predictor.predict(r) - r.stable_temp_c)) {
      detected = true;
      break;
    }
  }

  Table drift({"stream", "records", "drift detected", "records to detect"});
  drift.add_row({"unchanged testbed", Table::num(static_cast<long long>(
                                          test.size())),
                 fired_same > 0 ? "YES (false alarm)" : "no", "-"});
  drift.add_row({"heatsinks degraded 30%",
                 Table::num(static_cast<long long>(changed_records.size())),
                 detected ? "yes" : "NO (missed)",
                 detected ? Table::num(static_cast<long long>(
                                records_to_detect))
                          : "-"});
  drift.print(std::cout, 2);

  print_kv(std::cout, "residual sigma (calibration)", Table::num(sigma, 3));
  std::cout << "\n  reading: the serving layer knows *how much* to trust a\n"
            << "  prediction (intervals) and *when* to stop trusting the\n"
            << "  model entirely (drift) - the two properties a thermal\n"
            << "  safety controller needs before acting on Eq.(8) outputs.\n";
  return 0;
}
