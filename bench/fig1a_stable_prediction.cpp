// Reproduces Figure 1(a): stable CPU temperature prediction vs. empirical
// readings for 20 randomized experiment cases with 2-12 VMs.
//
// Paper result: the model predicts stable CPU temperature with an average
// MSE within 1.10. This bench regenerates the series (measured vs.
// predicted per case) and the aggregate MSE on the simulated testbed.

#include <iostream>

#include "bench_common.h"
#include "util/stats.h"

int main() {
  using namespace vmtherm;
  bench::print_bench_header(
      "Fig 1(a) - stable CPU temperature prediction",
      "20 random cases, 2-12 VMs, average MSE within 1.10");

  const auto ranges = bench::standard_ranges();

  std::cout << "\nGenerating training corpus (" << bench::kTrainRecords
            << " profiling experiments)...\n";
  const auto train_records =
      core::generate_corpus(ranges, bench::kTrainRecords, /*seed=*/42);

  std::cout << "Training SVR (RBF kernel, grid search, 10-fold CV)...\n";
  core::StableTrainReport report;
  const auto predictor = bench::train_standard_predictor(train_records,
                                                         &report);

  print_section(std::cout, "Model selection (easygrid equivalent)");
  print_kv(std::cout, "grid points evaluated",
           std::to_string(report.grid_points_evaluated));
  print_kv(std::cout, "chosen C", Table::num(report.chosen_params.c, 4));
  print_kv(std::cout, "chosen gamma",
           Table::num(report.chosen_params.kernel.gamma, 6));
  print_kv(std::cout, "chosen epsilon",
           Table::num(report.chosen_params.epsilon, 3));
  print_kv(std::cout, "10-fold CV MSE", Table::num(report.cv_mse, 3));
  print_kv(std::cout, "support vectors",
           std::to_string(report.final_fit.support_vector_count));

  // 20 fresh randomized cases, 2-12 VMs (the default ranges).
  const auto test_records = core::generate_corpus(ranges, 20, /*seed=*/777);
  const auto result = core::evaluate_stable(predictor, test_records);

  print_section(std::cout, "Fig 1(a) series: measured vs predicted");
  Table table({"case", "vms", "measured_C", "predicted_C", "abs_err_C",
               "sq_err"});
  for (const auto& c : result.cases) {
    const double err = c.predicted_c - c.measured_c;
    table.add_row({Table::num(static_cast<long long>(c.case_index + 1)),
                   Table::num(static_cast<long long>(c.vm_count)),
                   Table::num(c.measured_c, 2), Table::num(c.predicted_c, 2),
                   Table::num(std::abs(err), 2), Table::num(err * err, 3)});
  }
  table.print(std::cout, 2);

  print_section(std::cout, "Aggregate");
  print_kv(std::cout, "average MSE", Table::num(result.mse, 3));
  print_kv(std::cout, "average MAE", Table::num(result.mae, 3));
  print_kv(std::cout, "max abs error", Table::num(result.max_abs_error, 3));
  print_kv(std::cout, "paper reports", "MSE within 1.10");
  print_kv(std::cout, "shape holds",
           result.mse < 2.0 ? "yes (same order as paper)" : "NO - investigate");
  return 0;
}
