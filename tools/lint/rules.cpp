#include "lint/rules.h"

#include <algorithm>
#include <map>
#include <set>

#include "lint/lexer.h"

namespace vmtherm::lint {

namespace {

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::string suf(suffix);
  return s.size() >= suf.size() &&
         s.compare(s.size() - suf.size(), suf.size(), suf) == 0;
}

const std::set<std::string>& det_rand_idents() {
  static const std::set<std::string> kIdents{
      "rand", "srand", "rand_r", "drand48", "lrand48", "mrand48",
      "random_shuffle"};
  return kIdents;
}

const std::set<std::string>& det_clock_idents() {
  static const std::set<std::string> kIdents{
      "system_clock",   "steady_clock", "high_resolution_clock",
      "clock_gettime",  "gettimeofday", "timespec_get"};
  return kIdents;
}

const std::set<std::string>& det_env_idents() {
  static const std::set<std::string> kIdents{"getenv", "secure_getenv",
                                             "setenv", "putenv"};
  return kIdents;
}

const std::set<std::string>& det_locale_idents() {
  static const std::set<std::string> kIdents{"setlocale", "localeconv",
                                             "imbue"};
  return kIdents;
}

const std::set<std::string>& conc_member_idents() {
  static const std::set<std::string> kIdents{
      "mutex",          "shared_mutex",
      "recursive_mutex", "timed_mutex",
      "condition_variable", "condition_variable_any",
      "atomic",         "atomic_flag"};
  return kIdents;
}

const std::set<std::string>& conc_lock_idents() {
  static const std::set<std::string> kIdents{
      "unique_lock", "shared_lock", "lock_guard", "scoped_lock",
      "memory_order"};
  return kIdents;
}

const std::set<std::string>& iostream_idents() {
  static const std::set<std::string> kIdents{"cout", "cerr", "clog", "endl"};
  return kIdents;
}

/// Per-file derived state shared by every check.
struct FileContext {
  std::vector<Token> code;  ///< non-comment tokens, in order
  /// Rules suppressed on a given line by a vmtherm-lint allow() comment.
  std::map<int, std::set<std::string>> suppressions;
  /// Concatenated comment text per line the comment covers (guard scans).
  std::map<int, std::string> comment_text;
  std::vector<Violation> bad_suppressions;
};

int comment_end_line(const Token& comment) {
  int line = comment.line;
  for (const char c : comment.text) {
    if (c == '\n') ++line;
  }
  return line;
}

/// Parses every vmtherm-lint allow() clause in `text` into its rule ids.
std::vector<std::string> parse_allow_ids(const std::string& text) {
  std::vector<std::string> ids;
  const std::string marker = "vmtherm-lint:";
  std::size_t pos = text.find(marker);
  while (pos != std::string::npos) {
    const std::size_t open = text.find("allow(", pos);
    if (open == std::string::npos) break;
    const std::size_t close = text.find(')', open);
    if (close == std::string::npos) break;
    std::string id;
    for (std::size_t i = open + 6; i < close; ++i) {
      const char c = text[i];
      if (c == ',' ) {
        if (!id.empty()) ids.push_back(id);
        id.clear();
      } else if (c != ' ' && c != '\t') {
        id.push_back(c);
      }
    }
    if (!id.empty()) ids.push_back(id);
    pos = text.find(marker, close);
  }
  return ids;
}

FileContext build_context(const std::string& path, const LexedFile& lexed) {
  FileContext ctx;
  std::set<int> code_lines;
  for (const Token& token : lexed.tokens) {
    if (token.kind != TokenKind::kComment) {
      ctx.code.push_back(token);
      code_lines.insert(token.line);
    }
  }
  for (const Token& token : lexed.tokens) {
    if (token.kind != TokenKind::kComment) continue;
    const int end_line = comment_end_line(token);
    for (int line = token.line; line <= end_line; ++line) {
      ctx.comment_text[line] += token.text;
    }
    const std::vector<std::string> ids = parse_allow_ids(token.text);
    if (ids.empty()) continue;
    // A suppression on a code line covers that line; a comment-only line
    // covers the line below it (annotation-above style).
    const bool on_code_line = code_lines.count(token.line) != 0;
    const int target = on_code_line ? token.line : end_line + 1;
    for (const std::string& id : ids) {
      if (!is_known_rule(id)) {
        Violation v;
        v.file = path;
        v.line = token.line;
        v.rule = "lint-bad-suppression";
        v.message = "suppression names unknown rule '" + id +
                    "' (catalog v" + std::to_string(kCatalogVersion) + ")";
        ctx.bad_suppressions.push_back(std::move(v));
        continue;
      }
      ctx.suppressions[target].insert(id);
      if (!on_code_line) ctx.suppressions[token.line].insert(id);
    }
  }
  return ctx;
}

class Checker {
 public:
  Checker(const std::string& path, const FileContext& ctx)
      : path_(path), ctx_(ctx) {}

  void add(int line, const char* rule, std::string message) {
    const auto it = ctx_.suppressions.find(line);
    if (it != ctx_.suppressions.end() && it->second.count(rule) != 0) return;
    Violation v;
    v.file = path_;
    v.line = line;
    v.rule = rule;
    v.message = std::move(message);
    out_.push_back(std::move(v));
  }

  const Token* prev(std::size_t i, std::size_t back) const {
    return i >= back ? &ctx_.code[i - back] : nullptr;
  }

  const Token* next(std::size_t i, std::size_t ahead) const {
    return i + ahead < ctx_.code.size() ? &ctx_.code[i + ahead] : nullptr;
  }

  // --- determinism -------------------------------------------------------

  void check_determinism() {
    for (std::size_t i = 0; i < ctx_.code.size(); ++i) {
      const Token& t = ctx_.code[i];
      if (t.kind != TokenKind::kIdentifier) continue;
      if (t.text == "random_device") {
        add(t.line, "det-random-device",
            "std::random_device is nondeterministic across runs; "
            "deterministic paths must use an explicitly seeded util::Rng");
      } else if (det_rand_idents().count(t.text) != 0) {
        add(t.line, "det-rand",
            "'" + t.text +
                "' draws from hidden global RNG state; use a seeded "
                "util::Rng so results are reproducible");
      } else if (det_clock_idents().count(t.text) != 0) {
        add(t.line, "det-clock",
            "wall-clock read ('" + t.text +
                "') in deterministic code; simulated time must come from "
                "the event stream (timing metrics: suppress with "
                "allow(det-clock) at the kTiming call site)");
      } else if (det_env_idents().count(t.text) != 0) {
        add(t.line, "det-getenv",
            "'" + t.text +
                "' makes results depend on the process environment; thread "
                "configuration through options structs instead");
      } else if (det_locale_idents().count(t.text) != 0 ||
                 (t.text == "locale" && is_std_qualified(i))) {
        add(t.line, "det-locale",
            "locale-dependent formatting ('" + t.text +
                "') can change numeric output between machines; vmtherm "
                "formats numbers locale-independently");
      }
    }
  }

  // --- hot path ----------------------------------------------------------

  void check_hot_path() {
    compute_require_spans();
    for (std::size_t i = 0; i < ctx_.code.size(); ++i) {
      const Token& t = ctx_.code[i];
      if (t.kind == TokenKind::kIdentifier) {
        if (t.text == "to_string") {
          add_hot_string(i, t.line,
                         "std::to_string allocates on every call");
        } else if (t.text == "string" && is_std_qualified(i) &&
                   next_is_call_or_brace(i)) {
          add_hot_string(i, t.line,
                         "std::string temporary constructed on a hot path");
        } else if (iostream_idents().count(t.text) != 0) {
          add(t.line, "hot-iostream",
              "iostream use ('" + t.text +
                  "') on a hot-path file; stream formatting locks and "
                  "allocates — emit through metrics or return data instead");
        }
        continue;
      }
      if (t.kind == TokenKind::kPunct && t.text == "+") {
        const Token* p = prev(i, 1);
        const Token* n1 = next(i, 1);
        const Token* n2 = next(i, 2);
        const bool concat =
            (p != nullptr && p->kind == TokenKind::kString) ||
            (n1 != nullptr && n1->kind == TokenKind::kString) ||
            (n1 != nullptr && n1->text == "=" && n2 != nullptr &&
             n2->kind == TokenKind::kString);
        if (concat) {
          add_hot_string(i, t.line,
                         "string-literal concatenation builds a "
                         "std::string temporary");
        }
      }
      if (t.in_pp_directive && t.kind == TokenKind::kPunct &&
          t.text == "<") {
        const Token* inc = prev(i, 1);
        const Token* hdr = next(i, 1);
        if (inc != nullptr && inc->text == "include" && hdr != nullptr &&
            (hdr->text == "iostream" || hdr->text == "sstream")) {
          add(t.line, "hot-iostream",
              "<" + hdr->text +
                  "> included from a hot-path file; use <iosfwd> in "
                  "headers and keep formatting off the data plane");
        }
      }
    }
  }

  // --- headers -----------------------------------------------------------

  void check_header_discipline() {
    check_pragma_once();
    for (std::size_t i = 0; i + 1 < ctx_.code.size(); ++i) {
      const Token& t = ctx_.code[i];
      if (t.kind == TokenKind::kIdentifier && t.text == "using" &&
          ctx_.code[i + 1].kind == TokenKind::kIdentifier &&
          ctx_.code[i + 1].text == "namespace") {
        add(t.line, "hdr-using-namespace",
            "'using namespace' in a header leaks into every includer; "
            "qualify names or restrict the using-declaration");
      }
    }
  }

  // --- concurrency -------------------------------------------------------

  void check_concurrency_annotations() {
    std::map<int, std::vector<const Token*>> by_line;
    for (const Token& t : ctx_.code) {
      if (t.kind == TokenKind::kIdentifier && !t.in_pp_directive) {
        by_line[t.line].push_back(&t);
      }
    }
    for (const auto& [line, idents] : by_line) {
      bool has_member_type = false;
      bool has_lock_use = false;
      for (const Token* t : idents) {
        if (conc_member_idents().count(t->text) != 0) has_member_type = true;
        if (conc_lock_idents().count(t->text) != 0) has_lock_use = true;
      }
      if (!has_member_type || has_lock_use) continue;
      if (has_guard_comment(line)) continue;
      add(line, "conc-guard-comment",
          "mutex/atomic declaration without a '// guards:' or '// sync:' "
          "comment naming the state it protects (DESIGN.md §6 external-"
          "synchronization rule)");
    }
  }

  std::vector<Violation> take() { return std::move(out_); }

 private:
  bool is_std_qualified(std::size_t i) const {
    const Token* colons = prev(i, 1);
    const Token* ns = prev(i, 2);
    return colons != nullptr && colons->text == "::" && ns != nullptr &&
           ns->text == "std";
  }

  bool next_is_call_or_brace(std::size_t i) const {
    const Token* n = next(i, 1);
    return n != nullptr && n->kind == TokenKind::kPunct &&
           (n->text == "(" || n->text == "{");
  }

  void compute_require_spans() {
    require_spans_.clear();
    for (std::size_t i = 0; i + 1 < ctx_.code.size(); ++i) {
      const Token& t = ctx_.code[i];
      if (t.kind != TokenKind::kIdentifier ||
          (t.text != "require" && t.text != "require_data")) {
        continue;
      }
      if (ctx_.code[i + 1].text != "(") continue;
      int depth = 0;
      for (std::size_t j = i + 1; j < ctx_.code.size(); ++j) {
        const std::string& p = ctx_.code[j].text;
        if (ctx_.code[j].kind != TokenKind::kPunct) continue;
        if (p == "(") ++depth;
        if (p == ")" && --depth == 0) {
          require_spans_.emplace_back(i + 1, j);
          break;
        }
      }
    }
  }

  bool in_require_span(std::size_t i) const {
    for (const auto& [begin, end] : require_spans_) {
      if (i > begin && i < end) return true;
    }
    return false;
  }

  void add_hot_string(std::size_t i, int line, const std::string& detail) {
    if (in_require_span(i)) {
      add(line, "hot-require-string",
          detail + "; use the require(bool, const char*) overload so the "
                   "check costs a branch, not an allocation");
    } else {
      add(line, "hot-string", detail + " (hot-path file)");
    }
  }

  void check_pragma_once() {
    if (ctx_.code.empty()) return;
    const std::vector<Token>& c = ctx_.code;
    const bool pragma_once = c.size() >= 3 && c[0].text == "#" &&
                             c[1].text == "pragma" && c[2].text == "once";
    bool include_guard = false;
    if (c.size() >= 6 && c[0].text == "#" && c[1].text == "ifndef" &&
        c[3].text == "#" && c[4].text == "define" &&
        c[2].text == c[5].text) {
      include_guard = true;
    }
    if (!pragma_once && !include_guard) {
      add(c[0].line, "hdr-pragma-once",
          "header must start with '#pragma once' or a matching "
          "#ifndef/#define include guard (before any other code)");
    }
  }

  bool has_guard_comment(int line) const {
    for (int l = line; l >= line - 3 && l >= 1; --l) {
      const auto it = ctx_.comment_text.find(l);
      if (it == ctx_.comment_text.end()) continue;
      if (it->second.find("guards:") != std::string::npos ||
          it->second.find("sync:") != std::string::npos) {
        return true;
      }
    }
    return false;
  }

  const std::string& path_;
  const FileContext& ctx_;
  std::vector<std::pair<std::size_t, std::size_t>> require_spans_;
  std::vector<Violation> out_;
};

}  // namespace

const std::vector<Rule>& rule_catalog() {
  static const std::vector<Rule> kCatalog{
      {"det-random-device", "determinism",
       "std::random_device banned in deterministic code"},
      {"det-rand", "determinism",
       "global-state RNG (rand/srand/drand48/...) banned in deterministic "
       "code"},
      {"det-clock", "determinism",
       "wall-clock reads (system_clock/steady_clock/...) banned in "
       "deterministic code"},
      {"det-getenv", "determinism",
       "environment lookups banned in deterministic code"},
      {"det-locale", "determinism",
       "locale-dependent formatting banned in deterministic code"},
      {"hot-string", "hot-path",
       "std::string construction banned in hot-path files"},
      {"hot-require-string", "hot-path",
       "require() calls in hot-path files must use const char* messages"},
      {"hot-iostream", "hot-path",
       "iostream formatting banned in hot-path files"},
      {"hdr-pragma-once", "header",
       "headers must begin with #pragma once or an include guard"},
      {"hdr-using-namespace", "header",
       "'using namespace' banned in headers"},
      {"conc-guard-comment", "concurrency",
       "mutex/atomic members need a guards:/sync: comment"},
      {"lint-bad-suppression", "meta",
       "allow() suppression names a rule that is not in the catalog"},
  };
  return kCatalog;
}

bool is_known_rule(const std::string& id) {
  for (const Rule& rule : rule_catalog()) {
    if (id == rule.id) return true;
  }
  return false;
}

bool in_determinism_scope(const std::string& path) {
  // src/obs is intentionally NOT here: observability is wall-clock business
  // (span timestamps, latency summaries) and everything it publishes is
  // timing-class, outside the deterministic metrics subset. The serve
  // metrics files are back in scope since the registry moved to src/obs
  // (serve/metrics.h is now a clean alias header).
  return starts_with(path, "src/core/") || starts_with(path, "src/ml/") ||
         starts_with(path, "src/sim/") || starts_with(path, "src/serve/");
}

bool is_hot_path_file(const std::string& path) {
  return path == "src/serve/engine.cpp" || path == "src/serve/shard.cpp" ||
         path == "src/serve/event.h" || path == "src/serve/psi_cache.h" ||
         path == "src/ml/svr_inference.cpp" ||
         path == "src/ml/svr_inference.h" || path == "src/obs/trace.h" ||
         path == "src/obs/trace.cpp" || path == "src/obs/accuracy.h" ||
         path == "src/obs/accuracy.cpp";
}

bool in_header_scope(const std::string& path) {
  return (ends_with(path, ".h") || ends_with(path, ".hpp")) &&
         (starts_with(path, "src/") || starts_with(path, "tools/"));
}

bool in_concurrency_scope(const std::string& path) {
  return (starts_with(path, "src/serve/") || starts_with(path, "src/obs/")) &&
         (ends_with(path, ".h") || ends_with(path, ".hpp"));
}

std::vector<Violation> lint_source(const std::string& logical_path,
                                   const std::string& source) {
  const LexedFile lexed = lex(source);
  FileContext ctx = build_context(logical_path, lexed);
  Checker checker(logical_path, ctx);
  if (in_determinism_scope(logical_path)) checker.check_determinism();
  if (is_hot_path_file(logical_path)) checker.check_hot_path();
  if (in_header_scope(logical_path)) checker.check_header_discipline();
  if (in_concurrency_scope(logical_path)) {
    checker.check_concurrency_annotations();
  }
  std::vector<Violation> out = checker.take();
  for (Violation& v : ctx.bad_suppressions) out.push_back(std::move(v));
  std::sort(out.begin(), out.end(),
            [](const Violation& a, const Violation& b) {
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });
  // One diagnostic per (line, rule): a single expression can trip the same
  // rule several times (e.g. "a" + x + "b") without adding information.
  out.erase(std::unique(out.begin(), out.end(),
                        [](const Violation& a, const Violation& b) {
                          return a.line == b.line && a.rule == b.rule;
                        }),
            out.end());
  return out;
}

}  // namespace vmtherm::lint
