// vmtherm-lint — project-specific static analysis for vmtherm.
//
// Enforces the invariant catalog of DESIGN.md §8 (determinism, hot-path
// hygiene, header discipline, concurrency annotations) over the repo's
// sources. Tokenizes every file (comment/string aware), so banned names in
// comments or string literals never fire, and honors per-line suppression
// comments of the form `vmtherm-lint: allow(det-clock)`.
//
// Usage:
//   vmtherm-lint [--root DIR] [--json PATH] [--list-rules] [files...]
//
// With no explicit files, scans DIR/src and DIR/tools (skipping lint
// fixture directories, which contain violations on purpose). Exit status:
// 0 clean, 1 violations found, 2 usage or I/O error.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/report.h"
#include "lint/rules.h"

namespace fs = std::filesystem;

namespace {

bool has_source_extension(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

std::string to_logical(const fs::path& path, const fs::path& root) {
  std::error_code ec;
  fs::path rel = fs::relative(path, root, ec);
  if (ec || rel.empty()) rel = path;
  return rel.generic_string();
}

/// Collects every lintable source under root/src and root/tools, sorted by
/// logical path so diagnostics and the JSON report are byte-deterministic.
std::vector<fs::path> collect_sources(const fs::path& root) {
  std::vector<fs::path> files;
  for (const char* subdir : {"src", "tools"}) {
    const fs::path base = root / subdir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      if (!has_source_extension(entry.path())) continue;
      const std::string generic = entry.path().generic_string();
      if (generic.find("/fixtures/") != std::string::npos) continue;
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end(),
            [&root](const fs::path& a, const fs::path& b) {
              return to_logical(a, root) < to_logical(b, root);
            });
  return files;
}

bool read_file(const fs::path& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

int usage(std::ostream& os, int code) {
  os << "usage: vmtherm-lint [--root DIR] [--json PATH] [--list-rules] "
        "[files...]\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::string json_path;
  bool list_rules = false;
  std::vector<std::string> explicit_files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) return usage(std::cerr, 2);
      root = argv[++i];
    } else if (arg == "--json") {
      if (i + 1 >= argc) return usage(std::cerr, 2);
      json_path = argv[++i];
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--help" || arg == "-h") {
      return usage(std::cout, 0);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "vmtherm-lint: unknown option '" << arg << "'\n";
      return usage(std::cerr, 2);
    } else {
      explicit_files.push_back(arg);
    }
  }

  if (list_rules) {
    std::cout << "vmtherm-lint rule catalog v" << vmtherm::lint::kCatalogVersion
              << "\n";
    for (const auto& rule : vmtherm::lint::rule_catalog()) {
      std::cout << "  " << rule.id << " (" << rule.category << "): "
                << rule.summary << "\n";
    }
    return 0;
  }

  std::vector<fs::path> files;
  if (explicit_files.empty()) {
    files = collect_sources(root);
  } else {
    for (const std::string& f : explicit_files) files.emplace_back(f);
  }

  std::vector<vmtherm::lint::Violation> violations;
  for (const fs::path& path : files) {
    std::string source;
    if (!read_file(path, source)) {
      std::cerr << "vmtherm-lint: cannot read '" << path.string() << "'\n";
      return 2;
    }
    const std::string logical = to_logical(path, root);
    for (auto& v : vmtherm::lint::lint_source(logical, source)) {
      violations.push_back(std::move(v));
    }
  }

  for (const auto& violation : violations) {
    std::cout << vmtherm::lint::format_diagnostic(violation) << "\n";
  }
  std::cout << "vmtherm-lint: " << violations.size() << " violation(s) in "
            << files.size() << " file(s) scanned (catalog v"
            << vmtherm::lint::kCatalogVersion << ")\n";

  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary);
    if (!out) {
      std::cerr << "vmtherm-lint: cannot write '" << json_path << "'\n";
      return 2;
    }
    out << vmtherm::lint::to_json(violations, files.size());
  }
  return violations.empty() ? 0 : 1;
}
