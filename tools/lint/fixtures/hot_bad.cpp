// Fixture: hot-path violations. Linted as src/serve/engine.cpp (a
// designated hot-path file). Expected: hot-iostream(5, 14),
// hot-string(9, 19), hot-require-string(24).
#include <iostream>
#include <string>

namespace fixture {

std::string label(int id) { return "host-" + std::to_string(id); }

void log_host(const std::string& id) {
  // line 14: hot-iostream (cout)
  std::cout << id << std::endl;
}

void build(const std::string& id) {
  // line 19: hot-string (temporary construction)
  auto copy = std::string(id);
  (void)copy;
}

void check(bool ok, const std::string& id) {
  // line 24: hot-require-string (concatenation inside require args)
  require(ok, "bad host: " + id);
}

}  // namespace fixture
