// Fixture: determinism violations. Linted under a src/core logical path.
// Expected: det-random-device(6), det-rand(12), det-clock(17),
// det-getenv(22), det-locale(27).
#include <random>

std::random_device entropy;  // line 6: det-random-device

namespace fixture {

int roll() {
  // line 12: det-rand
  return rand() % 6;
}

double now_s() {
  // line 17: det-clock
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

// line 22: det-getenv
const char* home() { return getenv("HOME"); }

void set_classic_locale() {
  // line 27: det-locale
  std::locale::global(std::locale("C"));
}

}  // namespace fixture
