// Fixture: suppression handling. Linted under a src/core logical path.
// Expected: NO determinism violations (both sites are suppressed), but one
// lint-bad-suppression for the clause naming a rule that does not exist.

namespace fixture {

double timing_probe() {
  // Same-line suppression (must sit on the violating token's line).
  const auto now =
      std::chrono::steady_clock::now();  // vmtherm-lint: allow(det-clock)
  return std::chrono::duration<double>(now.time_since_epoch()).count();
}

// vmtherm-lint: allow(det-rand)
int seeded_roll() { return rand() % 6; }

// vmtherm-lint: allow(no-such-rule)
int stray = 0;

}  // namespace fixture
