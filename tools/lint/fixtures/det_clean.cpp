// Fixture: determinism non-violations — every banned name appears only in
// a comment or a string literal, which a naive grep would flag but the
// token-aware linter must not. Linted under a src/core logical path.
//
// Mentions in this comment: rand(), srand(), std::random_device,
// system_clock, steady_clock, getenv("PATH"), setlocale(LC_ALL, "").

namespace fixture {

const char* kDoc =
    "do not call rand() or srand(); never read system_clock or "
    "getenv or setlocale in deterministic code";

const char* kRaw = R"(random_device steady_clock getenv)";

// Identifiers that merely *contain* banned names must not fire either.
int rand_count = 0;
double steady_clock_skew_model = 0.0;

}  // namespace fixture
