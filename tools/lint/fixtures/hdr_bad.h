// Fixture: header-discipline violations. Linted as src/mgmt/fixture.h.
// Expected: hdr-pragma-once (first code line), hdr-using-namespace(8).
#include <vector>

namespace fixture {

// line 8: hdr-using-namespace
using namespace std;

inline int count(const vector<int>& v) { return static_cast<int>(v.size()); }

}  // namespace fixture
