// Fixture: concurrency-annotation checks. Linted as src/serve/fixture.h.
// Expected: conc-guard-comment on lines 15 and 18 only — the annotated
// members and the lock-acquisition line must not fire.
#pragma once

#include <atomic>
#include <mutex>

namespace fixture {

class Annotated {
 public:
  void touch() {
    // Lock *uses* never need annotations (only member declarations do).
    std::lock_guard<std::mutex> lock(bare_mutex_);
  }

  std::atomic<int> bare_counter_{0};

 private:
  std::mutex bare_mutex_;

  std::mutex ok_mutex_;  // guards: ok_value_ (registration and iteration)
  /// sync: external — callers serialize access per DESIGN.md §6.
  std::atomic<long> ok_counter_{0};
  int ok_value_ = 0;
};

}  // namespace fixture
