// Fixture: classic include guards satisfy hdr-pragma-once (either style
// is accepted). Linted as src/mgmt/guarded.h. Expected: clean.
#ifndef VMTHERM_FIXTURE_HDR_GUARDED_H
#define VMTHERM_FIXTURE_HDR_GUARDED_H

namespace fixture {

inline int answer() { return 42; }

}  // namespace fixture

#endif  // VMTHERM_FIXTURE_HDR_GUARDED_H
