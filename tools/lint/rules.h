// vmtherm/tools/lint/rules.h
//
// The vmtherm-lint rule catalog and the per-file checker. Rules encode the
// invariants the library's determinism and serving guarantees rest on (see
// DESIGN.md §8); each rule carries an id used both in diagnostics
// (`file:line: [rule-id] message`) and in suppression comments:
//
//   timed_section();  // vmtherm-lint: allow(det-clock, hot-string)
//
// A suppression on a line of its own applies to the next line. Naming a
// rule that does not exist in the catalog is itself a violation
// (lint-bad-suppression), so stale suppressions cannot rot silently.
//
// Rule scopes are derived from the *logical* (repo-relative, forward-slash)
// path, so tests can lint fixture content under any claimed path.

#pragma once

#include <string>
#include <vector>

namespace vmtherm::lint {

/// Catalog version — bump when a rule is added, removed or changes
/// meaning, so JSON reports from different tool builds are comparable.
/// v2: hot-path and concurrency scopes grew the src/obs tracer/accuracy
/// files; the serve metrics files rejoined the determinism scope after
/// the registry moved to src/obs.
inline constexpr int kCatalogVersion = 2;

struct Rule {
  const char* id;
  const char* category;  ///< determinism | hot-path | header | concurrency | meta
  const char* summary;
};

/// The full versioned catalog, in stable (documentation) order.
const std::vector<Rule>& rule_catalog();

/// True when `id` names a catalog rule.
bool is_known_rule(const std::string& id);

struct Violation {
  std::string file;  ///< logical path the content was linted as
  int line = 0;
  std::string rule;
  std::string message;
};

/// Lints one file's `source` under the scopes implied by `logical_path`.
/// Returned violations are sorted by line, then rule id.
std::vector<Violation> lint_source(const std::string& logical_path,
                                   const std::string& source);

/// Scope predicates, exposed for tests and for the scanner's file filter.
/// All take logical repo-relative paths with forward slashes.
bool in_determinism_scope(const std::string& path);
bool is_hot_path_file(const std::string& path);
bool in_header_scope(const std::string& path);
bool in_concurrency_scope(const std::string& path);

}  // namespace vmtherm::lint
