#include "lint/report.h"

namespace vmtherm::lint {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out.push_back(kHex[(c >> 4) & 0xF]);
          out.push_back(kHex[c & 0xF]);
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

std::string format_diagnostic(const Violation& violation) {
  return violation.file + ":" + std::to_string(violation.line) + ": [" +
         violation.rule + "] " + violation.message;
}

std::string to_json(const std::vector<Violation>& violations,
                    std::size_t files_scanned) {
  std::string out;
  out += "{\n";
  out += "  \"tool\": \"vmtherm-lint\",\n";
  out += "  \"catalog_version\": " + std::to_string(kCatalogVersion) + ",\n";
  out += "  \"files_scanned\": " + std::to_string(files_scanned) + ",\n";
  out +=
      "  \"violation_count\": " + std::to_string(violations.size()) + ",\n";
  out += "  \"rules\": [\n";
  const std::vector<Rule>& catalog = rule_catalog();
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    out += "    {\"id\": ";
    append_escaped(out, catalog[i].id);
    out += ", \"category\": ";
    append_escaped(out, catalog[i].category);
    out += ", \"summary\": ";
    append_escaped(out, catalog[i].summary);
    out += i + 1 < catalog.size() ? "},\n" : "}\n";
  }
  out += "  ],\n";
  out += "  \"violations\": [\n";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    out += "    {\"file\": ";
    append_escaped(out, violations[i].file);
    out += ", \"line\": " + std::to_string(violations[i].line);
    out += ", \"rule\": ";
    append_escaped(out, violations[i].rule);
    out += ", \"message\": ";
    append_escaped(out, violations[i].message);
    out += i + 1 < violations.size() ? "},\n" : "}\n";
  }
  out += "  ]\n";
  out += "}\n";
  return out;
}

}  // namespace vmtherm::lint
