// vmtherm/tools/lint/lexer.h
//
// Minimal C++ lexer for vmtherm-lint. Splits a translation unit into
// tokens that are *comment- and string-literal-aware*: rule checks walk
// identifiers/punctuation without ever matching text that only appears in
// a comment, a string literal (including raw strings) or a char literal,
// while suppression and annotation scans read exactly the comment tokens.
//
// This is not a full C++ lexer — it does not splice universal-character
// names or distinguish keywords from identifiers — but it understands
// everything the rule catalog needs: line comments, block comments,
// escaped string/char literals, raw string literals R"tag(...)tag",
// numbers (including 1.0e-5 and hex), multi-char punctuation (`::`), and
// preprocessor directives (tokens on a `#...` line are marked, with
// backslash line continuations honored).

#pragma once

#include <string>
#include <vector>

namespace vmtherm::lint {

enum class TokenKind {
  kIdentifier,
  kNumber,
  kString,   ///< text is the literal including quotes
  kCharLit,
  kPunct,    ///< one of the operator/punctuator spellings (":: " merged)
  kComment,  ///< text includes the // or /* */ delimiters
};

struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string text;
  int line = 0;            ///< 1-based line of the token's first character
  bool in_pp_directive = false;  ///< on a `#...` preprocessor line
};

struct LexedFile {
  std::vector<Token> tokens;
  int line_count = 0;
};

/// Tokenizes `source`. Never throws on malformed input: an unterminated
/// literal or comment simply consumes the rest of the file as one token,
/// which keeps the linter robust on fixture files built to be broken.
LexedFile lex(const std::string& source);

}  // namespace vmtherm::lint
