// vmtherm/tools/lint/report.h
//
// Diagnostic rendering for vmtherm-lint: GCC-style one-line diagnostics
// (`file:line: [rule] message`) for humans/editors, and a machine-readable
// JSON report (catalog version, rule list, violations, scan summary) for
// tooling. JSON output is byte-deterministic: violations are emitted in
// their sorted order and contain no timestamps.

#pragma once

#include <string>
#include <vector>

#include "lint/rules.h"

namespace vmtherm::lint {

/// `file:line: [rule] message` (no trailing newline).
std::string format_diagnostic(const Violation& violation);

/// JSON object:
///   {"tool": "vmtherm-lint", "catalog_version": 1,
///    "files_scanned": N, "violation_count": M,
///    "rules": [{"id": ..., "category": ..., "summary": ...}, ...],
///    "violations": [{"file": ..., "line": L, "rule": ..., "message": ...}]}
std::string to_json(const std::vector<Violation>& violations,
                    std::size_t files_scanned);

}  // namespace vmtherm::lint
