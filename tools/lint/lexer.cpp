#include "lint/lexer.h"

#include <cctype>
#include <cstddef>

namespace vmtherm::lint {

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_digit(char c) {
  return std::isdigit(static_cast<unsigned char>(c)) != 0;
}

class Lexer {
 public:
  explicit Lexer(const std::string& source) : src_(source) {}

  LexedFile run() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        in_pp_ = in_pp_ && pending_splice_;
        pending_splice_ = false;
        ++pos_;
        continue;
      }
      if (c == '\\' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '\n') {
        // Line continuation: a `#define`/`#include` logically continues.
        pending_splice_ = true;
        ++pos_;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v') {
        ++pos_;
        continue;
      }
      pending_splice_ = false;
      if (c == '/' && peek(1) == '/') {
        lex_line_comment();
      } else if (c == '/' && peek(1) == '*') {
        lex_block_comment();
      } else if (c == '"') {
        lex_string(pos_);
      } else if (c == '\'') {
        lex_char();
      } else if (c == 'R' && peek(1) == '"') {
        lex_raw_string();
      } else if (is_ident_start(c)) {
        lex_identifier();
      } else if (is_digit(c) || (c == '.' && is_digit(peek(1)))) {
        lex_number();
      } else {
        lex_punct();
      }
    }
    LexedFile out;
    out.tokens = std::move(tokens_);
    out.line_count = line_;
    return out;
  }

 private:
  char peek(std::size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  void emit(TokenKind kind, std::size_t begin, std::size_t end,
            int start_line) {
    Token token;
    token.kind = kind;
    token.text = src_.substr(begin, end - begin);
    token.line = start_line;
    token.in_pp_directive = in_pp_;
    tokens_.push_back(std::move(token));
  }

  void lex_line_comment() {
    const std::size_t begin = pos_;
    const int start_line = line_;
    while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
    emit(TokenKind::kComment, begin, pos_, start_line);
  }

  void lex_block_comment() {
    const std::size_t begin = pos_;
    const int start_line = line_;
    pos_ += 2;
    while (pos_ < src_.size() &&
           !(src_[pos_] == '*' && peek(1) == '/')) {
      if (src_[pos_] == '\n') ++line_;
      ++pos_;
    }
    if (pos_ < src_.size()) pos_ += 2;  // consume `*/`
    emit(TokenKind::kComment, begin, pos_, start_line);
  }

  void lex_string(std::size_t begin) {
    const int start_line = line_;
    ++pos_;  // opening quote
    while (pos_ < src_.size() && src_[pos_] != '"' && src_[pos_] != '\n') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) ++pos_;
      ++pos_;
    }
    if (pos_ < src_.size() && src_[pos_] == '"') ++pos_;
    emit(TokenKind::kString, begin, pos_, start_line);
  }

  void lex_char() {
    const std::size_t begin = pos_;
    const int start_line = line_;
    ++pos_;
    while (pos_ < src_.size() && src_[pos_] != '\'' && src_[pos_] != '\n') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) ++pos_;
      ++pos_;
    }
    if (pos_ < src_.size() && src_[pos_] == '\'') ++pos_;
    emit(TokenKind::kCharLit, begin, pos_, start_line);
  }

  void lex_raw_string() {
    const std::size_t begin = pos_;
    const int start_line = line_;
    pos_ += 2;  // R"
    std::string delim;
    while (pos_ < src_.size() && src_[pos_] != '(') {
      delim.push_back(src_[pos_]);
      ++pos_;
    }
    const std::string close = ")" + delim + "\"";
    const std::size_t end = src_.find(close, pos_);
    if (end == std::string::npos) {
      for (std::size_t i = pos_; i < src_.size(); ++i) {
        if (src_[i] == '\n') ++line_;
      }
      pos_ = src_.size();
    } else {
      for (std::size_t i = pos_; i < end; ++i) {
        if (src_[i] == '\n') ++line_;
      }
      pos_ = end + close.size();
    }
    emit(TokenKind::kString, begin, pos_, start_line);
  }

  void lex_identifier() {
    const std::size_t begin = pos_;
    while (pos_ < src_.size() && is_ident_char(src_[pos_])) ++pos_;
    emit(TokenKind::kIdentifier, begin, pos_, line_);
  }

  void lex_number() {
    const std::size_t begin = pos_;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (is_ident_char(c) || c == '.' || c == '\'') {
        // Exponent sign: 1.0e-5 / 0x1p+3 keep the sign inside the number.
        if ((c == 'e' || c == 'E' || c == 'p' || c == 'P') &&
            (peek(1) == '+' || peek(1) == '-')) {
          pos_ += 2;
          continue;
        }
        ++pos_;
        continue;
      }
      break;
    }
    emit(TokenKind::kNumber, begin, pos_, line_);
  }

  void lex_punct() {
    const std::size_t begin = pos_;
    const char c = src_[pos_];
    if (c == '#' && tokens_line_empty()) in_pp_ = true;
    if (c == ':' && peek(1) == ':') {
      pos_ += 2;  // merge `::` so rules can match qualified names
    } else {
      ++pos_;
    }
    emit(TokenKind::kPunct, begin, pos_, line_);
  }

  /// True when no token has been emitted yet on the current line — a `#`
  /// here starts a preprocessor directive.
  bool tokens_line_empty() const {
    for (auto it = tokens_.rbegin(); it != tokens_.rend(); ++it) {
      if (it->kind == TokenKind::kComment) continue;  // comments may precede
      return it->line != line_;
    }
    return true;
  }

  const std::string& src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  bool in_pp_ = false;
  bool pending_splice_ = false;
  std::vector<Token> tokens_;
};

}  // namespace

LexedFile lex(const std::string& source) { return Lexer(source).run(); }

}  // namespace vmtherm::lint
