#!/usr/bin/env sh
# Fleet-serving bench: configures a Release build, builds perf_serve and
# writes BENCH_serve.json (ingest/apply throughput per shard count, forecast
# latency quantiles) to the repo root. Run from the repo root:
#
#   scripts/bench_serve.sh [build-dir] [-- perf_serve args...]
set -eu

BUILD_DIR="${1:-build-release}"
[ $# -gt 0 ] && shift
[ "${1:-}" = "--" ] && shift

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j --target perf_serve

"$BUILD_DIR"/bench/perf_serve --out BENCH_serve.json "$@"
