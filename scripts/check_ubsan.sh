#!/usr/bin/env sh
# UndefinedBehaviorSanitizer check (mirror of check_asan.sh): configures a
# UBSan build (-DVMTHERM_SANITIZE=undefined) and runs the concurrent,
# serving and malformed-input robustness suites under it. Run from the
# repo root:
#
#   scripts/check_ubsan.sh [build-dir]
#
# Benches and examples are skipped — only the tested paths need the
# instrumented build.
set -eu

BUILD_DIR="${1:-build-ubsan}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DVMTHERM_SANITIZE=undefined \
  -DVMTHERM_WERROR=ON \
  -DVMTHERM_BUILD_BENCH=OFF \
  -DVMTHERM_BUILD_EXAMPLES=OFF
cmake --build "$BUILD_DIR" -j \
  --target util_thread_pool_test ml_cv_test ml_grid_test ml_svr_inference_test cli_test \
           serve_metrics_test serve_engine_test serve_snapshot_test serve_psi_cache_test \
           serve_replay_test obs_trace_test obs_accuracy_test robustness_corruption_test

UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}" \
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j 2 \
  -L 'concurrency|robustness'
