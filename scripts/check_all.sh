#!/usr/bin/env sh
# Full verification matrix. Runs, in order:
#
#   release — Release build (-DVMTHERM_WERROR=ON), full ctest suite
#   lint    — vmtherm-lint over the whole tree (also a ctest in `release`,
#             run standalone here so its diagnostics reach the console)
#   asan    — scripts/check_asan.sh  (concurrency + robustness suites)
#   tsan    — scripts/check_tsan.sh  (concurrency suites)
#   ubsan   — scripts/check_ubsan.sh (concurrency + robustness suites)
#
# Prints one PASS/FAIL line per stage, keeps going after a failure so one
# run reports the whole matrix, and exits nonzero if any stage failed.
# Run from the repo root:
#
#   scripts/check_all.sh [log-dir]
#
# Per-stage output goes to <log-dir>/<stage>.log (default: check-logs/).
set -u

LOG_DIR="${1:-check-logs}"
mkdir -p "$LOG_DIR"

failures=0

run_stage() {
  stage="$1"
  shift
  log="$LOG_DIR/$stage.log"
  if "$@" >"$log" 2>&1; then
    echo "PASS  $stage"
  else
    echo "FAIL  $stage  (see $log)"
    failures=$((failures + 1))
  fi
}

release_stage() {
  cmake -B build-release -S . \
    -DCMAKE_BUILD_TYPE=Release -DVMTHERM_WERROR=ON &&
    cmake --build build-release -j &&
    ctest --test-dir build-release --output-on-failure -j 2
}

lint_stage() {
  ./build-release/tools/lint/vmtherm-lint --root . \
    --json build-release/lint_report.json
}

run_stage release release_stage
run_stage lint lint_stage
run_stage asan scripts/check_asan.sh
run_stage tsan scripts/check_tsan.sh
run_stage ubsan scripts/check_ubsan.sh

if [ "$failures" -ne 0 ]; then
  echo "$failures stage(s) failed"
  exit 1
fi
echo "all stages passed"
