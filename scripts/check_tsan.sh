#!/usr/bin/env sh
# ThreadSanitizer check for the concurrent paths: configures a TSan build
# (-DVMTHERM_SANITIZE=thread) and runs the thread-pool, CV, grid-search and
# fleet-serving test suites under it. Run from the repo root:
#
#   scripts/check_tsan.sh [build-dir]
#
# Benches and examples are skipped — only the code the pool touches needs
# the (slow) instrumented build.
set -eu

BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DVMTHERM_SANITIZE=thread \
  -DVMTHERM_WERROR=ON \
  -DVMTHERM_BUILD_BENCH=OFF \
  -DVMTHERM_BUILD_EXAMPLES=OFF
cmake --build "$BUILD_DIR" -j \
  --target util_thread_pool_test ml_cv_test ml_grid_test ml_svr_inference_test cli_test \
           serve_metrics_test serve_engine_test serve_snapshot_test serve_psi_cache_test \
           serve_replay_test obs_trace_test obs_accuracy_test

TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j 2 \
  -L concurrency
