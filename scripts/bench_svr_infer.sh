#!/usr/bin/env sh
# SVR inference bench: configures a Release build, builds perf_svr_infer
# and writes BENCH_svr_infer.json (batched-vs-scalar speedup per kernel,
# RBF thread-scaling sweep) to the repo root. Run from the repo root:
#
#   scripts/bench_svr_infer.sh [build-dir] [-- perf_svr_infer args...]
set -eu

BUILD_DIR="${1:-build-release}"
[ $# -gt 0 ] && shift
[ "${1:-}" = "--" ] && shift

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j --target perf_svr_infer

"$BUILD_DIR"/bench/perf_svr_infer --out BENCH_svr_infer.json "$@"
