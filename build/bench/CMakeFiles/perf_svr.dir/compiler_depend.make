# Empty compiler generated dependencies file for perf_svr.
# This may be replaced when dependencies are built.
