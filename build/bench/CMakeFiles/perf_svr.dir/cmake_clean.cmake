file(REMOVE_RECURSE
  "CMakeFiles/perf_svr.dir/perf_svr.cpp.o"
  "CMakeFiles/perf_svr.dir/perf_svr.cpp.o.d"
  "perf_svr"
  "perf_svr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_svr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
