file(REMOVE_RECURSE
  "CMakeFiles/ablation_learning_rate.dir/ablation_learning_rate.cpp.o"
  "CMakeFiles/ablation_learning_rate.dir/ablation_learning_rate.cpp.o.d"
  "ablation_learning_rate"
  "ablation_learning_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_learning_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
