# Empty compiler generated dependencies file for ablation_learning_rate.
# This may be replaced when dependencies are built.
