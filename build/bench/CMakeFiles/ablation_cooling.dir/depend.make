# Empty dependencies file for ablation_cooling.
# This may be replaced when dependencies are built.
