file(REMOVE_RECURSE
  "CMakeFiles/ablation_cooling.dir/ablation_cooling.cpp.o"
  "CMakeFiles/ablation_cooling.dir/ablation_cooling.cpp.o.d"
  "ablation_cooling"
  "ablation_cooling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cooling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
