file(REMOVE_RECURSE
  "CMakeFiles/ablation_model_selection.dir/ablation_model_selection.cpp.o"
  "CMakeFiles/ablation_model_selection.dir/ablation_model_selection.cpp.o.d"
  "ablation_model_selection"
  "ablation_model_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_model_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
