# Empty compiler generated dependencies file for extension_uncertainty.
# This may be replaced when dependencies are built.
