file(REMOVE_RECURSE
  "CMakeFiles/extension_uncertainty.dir/extension_uncertainty.cpp.o"
  "CMakeFiles/extension_uncertainty.dir/extension_uncertainty.cpp.o.d"
  "extension_uncertainty"
  "extension_uncertainty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_uncertainty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
