file(REMOVE_RECURSE
  "CMakeFiles/perf_sim.dir/perf_sim.cpp.o"
  "CMakeFiles/perf_sim.dir/perf_sim.cpp.o.d"
  "perf_sim"
  "perf_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
