# Empty dependencies file for ablation_tbreak.
# This may be replaced when dependencies are built.
