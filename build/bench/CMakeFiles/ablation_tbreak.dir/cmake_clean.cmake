file(REMOVE_RECURSE
  "CMakeFiles/ablation_tbreak.dir/ablation_tbreak.cpp.o"
  "CMakeFiles/ablation_tbreak.dir/ablation_tbreak.cpp.o.d"
  "ablation_tbreak"
  "ablation_tbreak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tbreak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
