file(REMOVE_RECURSE
  "CMakeFiles/fig1a_stable_prediction.dir/fig1a_stable_prediction.cpp.o"
  "CMakeFiles/fig1a_stable_prediction.dir/fig1a_stable_prediction.cpp.o.d"
  "fig1a_stable_prediction"
  "fig1a_stable_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1a_stable_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
