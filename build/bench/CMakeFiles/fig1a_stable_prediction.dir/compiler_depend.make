# Empty compiler generated dependencies file for fig1a_stable_prediction.
# This may be replaced when dependencies are built.
