file(REMOVE_RECURSE
  "CMakeFiles/fig1c_gap_update_sweep.dir/fig1c_gap_update_sweep.cpp.o"
  "CMakeFiles/fig1c_gap_update_sweep.dir/fig1c_gap_update_sweep.cpp.o.d"
  "fig1c_gap_update_sweep"
  "fig1c_gap_update_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1c_gap_update_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
