# Empty dependencies file for fig1c_gap_update_sweep.
# This may be replaced when dependencies are built.
