# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig1c_gap_update_sweep.
