# Empty dependencies file for fig1b_dynamic_case_study.
# This may be replaced when dependencies are built.
