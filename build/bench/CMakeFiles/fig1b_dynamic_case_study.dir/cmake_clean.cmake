file(REMOVE_RECURSE
  "CMakeFiles/fig1b_dynamic_case_study.dir/fig1b_dynamic_case_study.cpp.o"
  "CMakeFiles/fig1b_dynamic_case_study.dir/fig1b_dynamic_case_study.cpp.o.d"
  "fig1b_dynamic_case_study"
  "fig1b_dynamic_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1b_dynamic_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
