file(REMOVE_RECURSE
  "CMakeFiles/extension_percore.dir/extension_percore.cpp.o"
  "CMakeFiles/extension_percore.dir/extension_percore.cpp.o.d"
  "extension_percore"
  "extension_percore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_percore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
