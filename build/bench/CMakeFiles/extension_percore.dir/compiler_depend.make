# Empty compiler generated dependencies file for extension_percore.
# This may be replaced when dependencies are built.
