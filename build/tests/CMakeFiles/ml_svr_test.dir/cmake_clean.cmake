file(REMOVE_RECURSE
  "CMakeFiles/ml_svr_test.dir/ml_svr_test.cpp.o"
  "CMakeFiles/ml_svr_test.dir/ml_svr_test.cpp.o.d"
  "ml_svr_test"
  "ml_svr_test.pdb"
  "ml_svr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_svr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
