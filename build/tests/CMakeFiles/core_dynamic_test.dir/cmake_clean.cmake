file(REMOVE_RECURSE
  "CMakeFiles/core_dynamic_test.dir/core_dynamic_test.cpp.o"
  "CMakeFiles/core_dynamic_test.dir/core_dynamic_test.cpp.o.d"
  "core_dynamic_test"
  "core_dynamic_test.pdb"
  "core_dynamic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_dynamic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
