# Empty compiler generated dependencies file for core_dynamic_test.
# This may be replaced when dependencies are built.
