# Empty dependencies file for sim_multicore_test.
# This may be replaced when dependencies are built.
