file(REMOVE_RECURSE
  "CMakeFiles/sim_multicore_test.dir/sim_multicore_test.cpp.o"
  "CMakeFiles/sim_multicore_test.dir/sim_multicore_test.cpp.o.d"
  "sim_multicore_test"
  "sim_multicore_test.pdb"
  "sim_multicore_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_multicore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
