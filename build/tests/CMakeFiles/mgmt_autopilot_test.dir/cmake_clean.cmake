file(REMOVE_RECURSE
  "CMakeFiles/mgmt_autopilot_test.dir/mgmt_autopilot_test.cpp.o"
  "CMakeFiles/mgmt_autopilot_test.dir/mgmt_autopilot_test.cpp.o.d"
  "mgmt_autopilot_test"
  "mgmt_autopilot_test.pdb"
  "mgmt_autopilot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mgmt_autopilot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
