# Empty compiler generated dependencies file for mgmt_autopilot_test.
# This may be replaced when dependencies are built.
