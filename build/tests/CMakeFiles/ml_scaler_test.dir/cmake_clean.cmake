file(REMOVE_RECURSE
  "CMakeFiles/ml_scaler_test.dir/ml_scaler_test.cpp.o"
  "CMakeFiles/ml_scaler_test.dir/ml_scaler_test.cpp.o.d"
  "ml_scaler_test"
  "ml_scaler_test.pdb"
  "ml_scaler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_scaler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
