# Empty dependencies file for core_drift_test.
# This may be replaced when dependencies are built.
