file(REMOVE_RECURSE
  "CMakeFiles/core_drift_test.dir/core_drift_test.cpp.o"
  "CMakeFiles/core_drift_test.dir/core_drift_test.cpp.o.d"
  "core_drift_test"
  "core_drift_test.pdb"
  "core_drift_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_drift_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
