file(REMOVE_RECURSE
  "CMakeFiles/ml_knn_test.dir/ml_knn_test.cpp.o"
  "CMakeFiles/ml_knn_test.dir/ml_knn_test.cpp.o.d"
  "ml_knn_test"
  "ml_knn_test.pdb"
  "ml_knn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_knn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
