# Empty dependencies file for ml_knn_test.
# This may be replaced when dependencies are built.
