file(REMOVE_RECURSE
  "CMakeFiles/ml_cv_test.dir/ml_cv_test.cpp.o"
  "CMakeFiles/ml_cv_test.dir/ml_cv_test.cpp.o.d"
  "ml_cv_test"
  "ml_cv_test.pdb"
  "ml_cv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_cv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
