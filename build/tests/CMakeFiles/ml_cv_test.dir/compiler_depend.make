# Empty compiler generated dependencies file for ml_cv_test.
# This may be replaced when dependencies are built.
