# Empty dependencies file for sim_environment_test.
# This may be replaced when dependencies are built.
