file(REMOVE_RECURSE
  "CMakeFiles/sim_environment_test.dir/sim_environment_test.cpp.o"
  "CMakeFiles/sim_environment_test.dir/sim_environment_test.cpp.o.d"
  "sim_environment_test"
  "sim_environment_test.pdb"
  "sim_environment_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_environment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
