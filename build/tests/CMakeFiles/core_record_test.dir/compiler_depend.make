# Empty compiler generated dependencies file for core_record_test.
# This may be replaced when dependencies are built.
