file(REMOVE_RECURSE
  "CMakeFiles/util_matrix_test.dir/util_matrix_test.cpp.o"
  "CMakeFiles/util_matrix_test.dir/util_matrix_test.cpp.o.d"
  "util_matrix_test"
  "util_matrix_test.pdb"
  "util_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
