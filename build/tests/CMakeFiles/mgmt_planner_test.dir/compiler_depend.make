# Empty compiler generated dependencies file for mgmt_planner_test.
# This may be replaced when dependencies are built.
