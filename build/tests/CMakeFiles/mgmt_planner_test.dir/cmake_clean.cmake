file(REMOVE_RECURSE
  "CMakeFiles/mgmt_planner_test.dir/mgmt_planner_test.cpp.o"
  "CMakeFiles/mgmt_planner_test.dir/mgmt_planner_test.cpp.o.d"
  "mgmt_planner_test"
  "mgmt_planner_test.pdb"
  "mgmt_planner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mgmt_planner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
