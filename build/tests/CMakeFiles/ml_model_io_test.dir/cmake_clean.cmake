file(REMOVE_RECURSE
  "CMakeFiles/ml_model_io_test.dir/ml_model_io_test.cpp.o"
  "CMakeFiles/ml_model_io_test.dir/ml_model_io_test.cpp.o.d"
  "ml_model_io_test"
  "ml_model_io_test.pdb"
  "ml_model_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_model_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
