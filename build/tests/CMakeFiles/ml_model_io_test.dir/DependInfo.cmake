
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ml_model_io_test.cpp" "tests/CMakeFiles/ml_model_io_test.dir/ml_model_io_test.cpp.o" "gcc" "tests/CMakeFiles/ml_model_io_test.dir/ml_model_io_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cli/CMakeFiles/vmtherm_cli.dir/DependInfo.cmake"
  "/root/repo/build/src/mgmt/CMakeFiles/vmtherm_mgmt.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/vmtherm_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vmtherm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vmtherm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/vmtherm_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vmtherm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
