file(REMOVE_RECURSE
  "CMakeFiles/sim_thermal_test.dir/sim_thermal_test.cpp.o"
  "CMakeFiles/sim_thermal_test.dir/sim_thermal_test.cpp.o.d"
  "sim_thermal_test"
  "sim_thermal_test.pdb"
  "sim_thermal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_thermal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
