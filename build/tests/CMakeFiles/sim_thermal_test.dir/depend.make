# Empty dependencies file for sim_thermal_test.
# This may be replaced when dependencies are built.
