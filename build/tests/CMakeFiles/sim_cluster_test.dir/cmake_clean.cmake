file(REMOVE_RECURSE
  "CMakeFiles/sim_cluster_test.dir/sim_cluster_test.cpp.o"
  "CMakeFiles/sim_cluster_test.dir/sim_cluster_test.cpp.o.d"
  "sim_cluster_test"
  "sim_cluster_test.pdb"
  "sim_cluster_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_cluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
