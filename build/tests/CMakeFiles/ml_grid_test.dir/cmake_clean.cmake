file(REMOVE_RECURSE
  "CMakeFiles/ml_grid_test.dir/ml_grid_test.cpp.o"
  "CMakeFiles/ml_grid_test.dir/ml_grid_test.cpp.o.d"
  "ml_grid_test"
  "ml_grid_test.pdb"
  "ml_grid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_grid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
