# Empty dependencies file for core_stable_predictor_test.
# This may be replaced when dependencies are built.
