# Empty dependencies file for sim_server_test.
# This may be replaced when dependencies are built.
