file(REMOVE_RECURSE
  "CMakeFiles/sim_server_test.dir/sim_server_test.cpp.o"
  "CMakeFiles/sim_server_test.dir/sim_server_test.cpp.o.d"
  "sim_server_test"
  "sim_server_test.pdb"
  "sim_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
