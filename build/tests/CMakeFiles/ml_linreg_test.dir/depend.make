# Empty dependencies file for ml_linreg_test.
# This may be replaced when dependencies are built.
