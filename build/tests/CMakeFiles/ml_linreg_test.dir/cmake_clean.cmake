file(REMOVE_RECURSE
  "CMakeFiles/ml_linreg_test.dir/ml_linreg_test.cpp.o"
  "CMakeFiles/ml_linreg_test.dir/ml_linreg_test.cpp.o.d"
  "ml_linreg_test"
  "ml_linreg_test.pdb"
  "ml_linreg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_linreg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
