# Empty compiler generated dependencies file for ml_kernel_test.
# This may be replaced when dependencies are built.
