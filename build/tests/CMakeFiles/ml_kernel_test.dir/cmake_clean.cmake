file(REMOVE_RECURSE
  "CMakeFiles/ml_kernel_test.dir/ml_kernel_test.cpp.o"
  "CMakeFiles/ml_kernel_test.dir/ml_kernel_test.cpp.o.d"
  "ml_kernel_test"
  "ml_kernel_test.pdb"
  "ml_kernel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_kernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
