# Empty compiler generated dependencies file for mgmt_cooling_test.
# This may be replaced when dependencies are built.
