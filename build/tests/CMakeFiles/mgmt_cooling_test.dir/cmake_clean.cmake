file(REMOVE_RECURSE
  "CMakeFiles/mgmt_cooling_test.dir/mgmt_cooling_test.cpp.o"
  "CMakeFiles/mgmt_cooling_test.dir/mgmt_cooling_test.cpp.o.d"
  "mgmt_cooling_test"
  "mgmt_cooling_test.pdb"
  "mgmt_cooling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mgmt_cooling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
