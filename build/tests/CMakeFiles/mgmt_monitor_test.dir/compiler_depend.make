# Empty compiler generated dependencies file for mgmt_monitor_test.
# This may be replaced when dependencies are built.
