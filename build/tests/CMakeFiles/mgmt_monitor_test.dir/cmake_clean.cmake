file(REMOVE_RECURSE
  "CMakeFiles/mgmt_monitor_test.dir/mgmt_monitor_test.cpp.o"
  "CMakeFiles/mgmt_monitor_test.dir/mgmt_monitor_test.cpp.o.d"
  "mgmt_monitor_test"
  "mgmt_monitor_test.pdb"
  "mgmt_monitor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mgmt_monitor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
