# Empty dependencies file for core_tbreak_test.
# This may be replaced when dependencies are built.
