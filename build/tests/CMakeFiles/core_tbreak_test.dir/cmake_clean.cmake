file(REMOVE_RECURSE
  "CMakeFiles/core_tbreak_test.dir/core_tbreak_test.cpp.o"
  "CMakeFiles/core_tbreak_test.dir/core_tbreak_test.cpp.o.d"
  "core_tbreak_test"
  "core_tbreak_test.pdb"
  "core_tbreak_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tbreak_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
