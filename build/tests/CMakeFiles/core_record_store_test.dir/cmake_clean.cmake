file(REMOVE_RECURSE
  "CMakeFiles/core_record_store_test.dir/core_record_store_test.cpp.o"
  "CMakeFiles/core_record_store_test.dir/core_record_store_test.cpp.o.d"
  "core_record_store_test"
  "core_record_store_test.pdb"
  "core_record_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_record_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
