file(REMOVE_RECURSE
  "CMakeFiles/fleet_advisor.dir/fleet_advisor.cpp.o"
  "CMakeFiles/fleet_advisor.dir/fleet_advisor.cpp.o.d"
  "fleet_advisor"
  "fleet_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
