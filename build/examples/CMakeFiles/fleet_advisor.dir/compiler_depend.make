# Empty compiler generated dependencies file for fleet_advisor.
# This may be replaced when dependencies are built.
