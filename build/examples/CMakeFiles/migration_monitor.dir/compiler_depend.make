# Empty compiler generated dependencies file for migration_monitor.
# This may be replaced when dependencies are built.
