file(REMOVE_RECURSE
  "CMakeFiles/migration_monitor.dir/migration_monitor.cpp.o"
  "CMakeFiles/migration_monitor.dir/migration_monitor.cpp.o.d"
  "migration_monitor"
  "migration_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/migration_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
