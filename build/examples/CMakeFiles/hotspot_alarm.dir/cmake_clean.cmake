file(REMOVE_RECURSE
  "CMakeFiles/hotspot_alarm.dir/hotspot_alarm.cpp.o"
  "CMakeFiles/hotspot_alarm.dir/hotspot_alarm.cpp.o.d"
  "hotspot_alarm"
  "hotspot_alarm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotspot_alarm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
