# Empty compiler generated dependencies file for hotspot_alarm.
# This may be replaced when dependencies are built.
