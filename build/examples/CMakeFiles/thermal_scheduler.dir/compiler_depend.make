# Empty compiler generated dependencies file for thermal_scheduler.
# This may be replaced when dependencies are built.
