file(REMOVE_RECURSE
  "CMakeFiles/thermal_scheduler.dir/thermal_scheduler.cpp.o"
  "CMakeFiles/thermal_scheduler.dir/thermal_scheduler.cpp.o.d"
  "thermal_scheduler"
  "thermal_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thermal_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
