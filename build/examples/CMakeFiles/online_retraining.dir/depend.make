# Empty dependencies file for online_retraining.
# This may be replaced when dependencies are built.
