file(REMOVE_RECURSE
  "CMakeFiles/online_retraining.dir/online_retraining.cpp.o"
  "CMakeFiles/online_retraining.dir/online_retraining.cpp.o.d"
  "online_retraining"
  "online_retraining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_retraining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
