file(REMOVE_RECURSE
  "libvmtherm_ml.a"
)
