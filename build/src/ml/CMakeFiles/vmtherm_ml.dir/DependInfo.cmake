
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/cv.cpp" "src/ml/CMakeFiles/vmtherm_ml.dir/cv.cpp.o" "gcc" "src/ml/CMakeFiles/vmtherm_ml.dir/cv.cpp.o.d"
  "/root/repo/src/ml/dataset.cpp" "src/ml/CMakeFiles/vmtherm_ml.dir/dataset.cpp.o" "gcc" "src/ml/CMakeFiles/vmtherm_ml.dir/dataset.cpp.o.d"
  "/root/repo/src/ml/forest.cpp" "src/ml/CMakeFiles/vmtherm_ml.dir/forest.cpp.o" "gcc" "src/ml/CMakeFiles/vmtherm_ml.dir/forest.cpp.o.d"
  "/root/repo/src/ml/grid.cpp" "src/ml/CMakeFiles/vmtherm_ml.dir/grid.cpp.o" "gcc" "src/ml/CMakeFiles/vmtherm_ml.dir/grid.cpp.o.d"
  "/root/repo/src/ml/kernel.cpp" "src/ml/CMakeFiles/vmtherm_ml.dir/kernel.cpp.o" "gcc" "src/ml/CMakeFiles/vmtherm_ml.dir/kernel.cpp.o.d"
  "/root/repo/src/ml/knn.cpp" "src/ml/CMakeFiles/vmtherm_ml.dir/knn.cpp.o" "gcc" "src/ml/CMakeFiles/vmtherm_ml.dir/knn.cpp.o.d"
  "/root/repo/src/ml/linreg.cpp" "src/ml/CMakeFiles/vmtherm_ml.dir/linreg.cpp.o" "gcc" "src/ml/CMakeFiles/vmtherm_ml.dir/linreg.cpp.o.d"
  "/root/repo/src/ml/model_io.cpp" "src/ml/CMakeFiles/vmtherm_ml.dir/model_io.cpp.o" "gcc" "src/ml/CMakeFiles/vmtherm_ml.dir/model_io.cpp.o.d"
  "/root/repo/src/ml/scaler.cpp" "src/ml/CMakeFiles/vmtherm_ml.dir/scaler.cpp.o" "gcc" "src/ml/CMakeFiles/vmtherm_ml.dir/scaler.cpp.o.d"
  "/root/repo/src/ml/svr.cpp" "src/ml/CMakeFiles/vmtherm_ml.dir/svr.cpp.o" "gcc" "src/ml/CMakeFiles/vmtherm_ml.dir/svr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/vmtherm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
