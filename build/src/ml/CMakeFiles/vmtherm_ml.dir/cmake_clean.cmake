file(REMOVE_RECURSE
  "CMakeFiles/vmtherm_ml.dir/cv.cpp.o"
  "CMakeFiles/vmtherm_ml.dir/cv.cpp.o.d"
  "CMakeFiles/vmtherm_ml.dir/dataset.cpp.o"
  "CMakeFiles/vmtherm_ml.dir/dataset.cpp.o.d"
  "CMakeFiles/vmtherm_ml.dir/forest.cpp.o"
  "CMakeFiles/vmtherm_ml.dir/forest.cpp.o.d"
  "CMakeFiles/vmtherm_ml.dir/grid.cpp.o"
  "CMakeFiles/vmtherm_ml.dir/grid.cpp.o.d"
  "CMakeFiles/vmtherm_ml.dir/kernel.cpp.o"
  "CMakeFiles/vmtherm_ml.dir/kernel.cpp.o.d"
  "CMakeFiles/vmtherm_ml.dir/knn.cpp.o"
  "CMakeFiles/vmtherm_ml.dir/knn.cpp.o.d"
  "CMakeFiles/vmtherm_ml.dir/linreg.cpp.o"
  "CMakeFiles/vmtherm_ml.dir/linreg.cpp.o.d"
  "CMakeFiles/vmtherm_ml.dir/model_io.cpp.o"
  "CMakeFiles/vmtherm_ml.dir/model_io.cpp.o.d"
  "CMakeFiles/vmtherm_ml.dir/scaler.cpp.o"
  "CMakeFiles/vmtherm_ml.dir/scaler.cpp.o.d"
  "CMakeFiles/vmtherm_ml.dir/svr.cpp.o"
  "CMakeFiles/vmtherm_ml.dir/svr.cpp.o.d"
  "libvmtherm_ml.a"
  "libvmtherm_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmtherm_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
