# Empty dependencies file for vmtherm_ml.
# This may be replaced when dependencies are built.
