file(REMOVE_RECURSE
  "libvmtherm_sim.a"
)
