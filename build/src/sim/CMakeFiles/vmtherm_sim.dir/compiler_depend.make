# Empty compiler generated dependencies file for vmtherm_sim.
# This may be replaced when dependencies are built.
