
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cluster.cpp" "src/sim/CMakeFiles/vmtherm_sim.dir/cluster.cpp.o" "gcc" "src/sim/CMakeFiles/vmtherm_sim.dir/cluster.cpp.o.d"
  "/root/repo/src/sim/environment.cpp" "src/sim/CMakeFiles/vmtherm_sim.dir/environment.cpp.o" "gcc" "src/sim/CMakeFiles/vmtherm_sim.dir/environment.cpp.o.d"
  "/root/repo/src/sim/experiment.cpp" "src/sim/CMakeFiles/vmtherm_sim.dir/experiment.cpp.o" "gcc" "src/sim/CMakeFiles/vmtherm_sim.dir/experiment.cpp.o.d"
  "/root/repo/src/sim/machine.cpp" "src/sim/CMakeFiles/vmtherm_sim.dir/machine.cpp.o" "gcc" "src/sim/CMakeFiles/vmtherm_sim.dir/machine.cpp.o.d"
  "/root/repo/src/sim/multicore.cpp" "src/sim/CMakeFiles/vmtherm_sim.dir/multicore.cpp.o" "gcc" "src/sim/CMakeFiles/vmtherm_sim.dir/multicore.cpp.o.d"
  "/root/repo/src/sim/sensor.cpp" "src/sim/CMakeFiles/vmtherm_sim.dir/sensor.cpp.o" "gcc" "src/sim/CMakeFiles/vmtherm_sim.dir/sensor.cpp.o.d"
  "/root/repo/src/sim/server.cpp" "src/sim/CMakeFiles/vmtherm_sim.dir/server.cpp.o" "gcc" "src/sim/CMakeFiles/vmtherm_sim.dir/server.cpp.o.d"
  "/root/repo/src/sim/thermal.cpp" "src/sim/CMakeFiles/vmtherm_sim.dir/thermal.cpp.o" "gcc" "src/sim/CMakeFiles/vmtherm_sim.dir/thermal.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/sim/CMakeFiles/vmtherm_sim.dir/trace.cpp.o" "gcc" "src/sim/CMakeFiles/vmtherm_sim.dir/trace.cpp.o.d"
  "/root/repo/src/sim/vm.cpp" "src/sim/CMakeFiles/vmtherm_sim.dir/vm.cpp.o" "gcc" "src/sim/CMakeFiles/vmtherm_sim.dir/vm.cpp.o.d"
  "/root/repo/src/sim/workload.cpp" "src/sim/CMakeFiles/vmtherm_sim.dir/workload.cpp.o" "gcc" "src/sim/CMakeFiles/vmtherm_sim.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/vmtherm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
