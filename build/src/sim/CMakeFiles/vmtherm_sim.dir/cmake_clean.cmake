file(REMOVE_RECURSE
  "CMakeFiles/vmtherm_sim.dir/cluster.cpp.o"
  "CMakeFiles/vmtherm_sim.dir/cluster.cpp.o.d"
  "CMakeFiles/vmtherm_sim.dir/environment.cpp.o"
  "CMakeFiles/vmtherm_sim.dir/environment.cpp.o.d"
  "CMakeFiles/vmtherm_sim.dir/experiment.cpp.o"
  "CMakeFiles/vmtherm_sim.dir/experiment.cpp.o.d"
  "CMakeFiles/vmtherm_sim.dir/machine.cpp.o"
  "CMakeFiles/vmtherm_sim.dir/machine.cpp.o.d"
  "CMakeFiles/vmtherm_sim.dir/multicore.cpp.o"
  "CMakeFiles/vmtherm_sim.dir/multicore.cpp.o.d"
  "CMakeFiles/vmtherm_sim.dir/sensor.cpp.o"
  "CMakeFiles/vmtherm_sim.dir/sensor.cpp.o.d"
  "CMakeFiles/vmtherm_sim.dir/server.cpp.o"
  "CMakeFiles/vmtherm_sim.dir/server.cpp.o.d"
  "CMakeFiles/vmtherm_sim.dir/thermal.cpp.o"
  "CMakeFiles/vmtherm_sim.dir/thermal.cpp.o.d"
  "CMakeFiles/vmtherm_sim.dir/trace.cpp.o"
  "CMakeFiles/vmtherm_sim.dir/trace.cpp.o.d"
  "CMakeFiles/vmtherm_sim.dir/vm.cpp.o"
  "CMakeFiles/vmtherm_sim.dir/vm.cpp.o.d"
  "CMakeFiles/vmtherm_sim.dir/workload.cpp.o"
  "CMakeFiles/vmtherm_sim.dir/workload.cpp.o.d"
  "libvmtherm_sim.a"
  "libvmtherm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmtherm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
