
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/curve.cpp" "src/core/CMakeFiles/vmtherm_core.dir/curve.cpp.o" "gcc" "src/core/CMakeFiles/vmtherm_core.dir/curve.cpp.o.d"
  "/root/repo/src/core/drift.cpp" "src/core/CMakeFiles/vmtherm_core.dir/drift.cpp.o" "gcc" "src/core/CMakeFiles/vmtherm_core.dir/drift.cpp.o.d"
  "/root/repo/src/core/dynamic_predictor.cpp" "src/core/CMakeFiles/vmtherm_core.dir/dynamic_predictor.cpp.o" "gcc" "src/core/CMakeFiles/vmtherm_core.dir/dynamic_predictor.cpp.o.d"
  "/root/repo/src/core/evaluator.cpp" "src/core/CMakeFiles/vmtherm_core.dir/evaluator.cpp.o" "gcc" "src/core/CMakeFiles/vmtherm_core.dir/evaluator.cpp.o.d"
  "/root/repo/src/core/online.cpp" "src/core/CMakeFiles/vmtherm_core.dir/online.cpp.o" "gcc" "src/core/CMakeFiles/vmtherm_core.dir/online.cpp.o.d"
  "/root/repo/src/core/profiler.cpp" "src/core/CMakeFiles/vmtherm_core.dir/profiler.cpp.o" "gcc" "src/core/CMakeFiles/vmtherm_core.dir/profiler.cpp.o.d"
  "/root/repo/src/core/record.cpp" "src/core/CMakeFiles/vmtherm_core.dir/record.cpp.o" "gcc" "src/core/CMakeFiles/vmtherm_core.dir/record.cpp.o.d"
  "/root/repo/src/core/record_store.cpp" "src/core/CMakeFiles/vmtherm_core.dir/record_store.cpp.o" "gcc" "src/core/CMakeFiles/vmtherm_core.dir/record_store.cpp.o.d"
  "/root/repo/src/core/stable_predictor.cpp" "src/core/CMakeFiles/vmtherm_core.dir/stable_predictor.cpp.o" "gcc" "src/core/CMakeFiles/vmtherm_core.dir/stable_predictor.cpp.o.d"
  "/root/repo/src/core/tbreak.cpp" "src/core/CMakeFiles/vmtherm_core.dir/tbreak.cpp.o" "gcc" "src/core/CMakeFiles/vmtherm_core.dir/tbreak.cpp.o.d"
  "/root/repo/src/core/uncertainty.cpp" "src/core/CMakeFiles/vmtherm_core.dir/uncertainty.cpp.o" "gcc" "src/core/CMakeFiles/vmtherm_core.dir/uncertainty.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/vmtherm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/vmtherm_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vmtherm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
