file(REMOVE_RECURSE
  "libvmtherm_core.a"
)
