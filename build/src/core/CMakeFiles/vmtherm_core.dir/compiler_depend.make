# Empty compiler generated dependencies file for vmtherm_core.
# This may be replaced when dependencies are built.
