file(REMOVE_RECURSE
  "CMakeFiles/vmtherm_core.dir/curve.cpp.o"
  "CMakeFiles/vmtherm_core.dir/curve.cpp.o.d"
  "CMakeFiles/vmtherm_core.dir/drift.cpp.o"
  "CMakeFiles/vmtherm_core.dir/drift.cpp.o.d"
  "CMakeFiles/vmtherm_core.dir/dynamic_predictor.cpp.o"
  "CMakeFiles/vmtherm_core.dir/dynamic_predictor.cpp.o.d"
  "CMakeFiles/vmtherm_core.dir/evaluator.cpp.o"
  "CMakeFiles/vmtherm_core.dir/evaluator.cpp.o.d"
  "CMakeFiles/vmtherm_core.dir/online.cpp.o"
  "CMakeFiles/vmtherm_core.dir/online.cpp.o.d"
  "CMakeFiles/vmtherm_core.dir/profiler.cpp.o"
  "CMakeFiles/vmtherm_core.dir/profiler.cpp.o.d"
  "CMakeFiles/vmtherm_core.dir/record.cpp.o"
  "CMakeFiles/vmtherm_core.dir/record.cpp.o.d"
  "CMakeFiles/vmtherm_core.dir/record_store.cpp.o"
  "CMakeFiles/vmtherm_core.dir/record_store.cpp.o.d"
  "CMakeFiles/vmtherm_core.dir/stable_predictor.cpp.o"
  "CMakeFiles/vmtherm_core.dir/stable_predictor.cpp.o.d"
  "CMakeFiles/vmtherm_core.dir/tbreak.cpp.o"
  "CMakeFiles/vmtherm_core.dir/tbreak.cpp.o.d"
  "CMakeFiles/vmtherm_core.dir/uncertainty.cpp.o"
  "CMakeFiles/vmtherm_core.dir/uncertainty.cpp.o.d"
  "libvmtherm_core.a"
  "libvmtherm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmtherm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
