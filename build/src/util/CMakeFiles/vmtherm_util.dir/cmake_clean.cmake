file(REMOVE_RECURSE
  "CMakeFiles/vmtherm_util.dir/csv.cpp.o"
  "CMakeFiles/vmtherm_util.dir/csv.cpp.o.d"
  "CMakeFiles/vmtherm_util.dir/matrix.cpp.o"
  "CMakeFiles/vmtherm_util.dir/matrix.cpp.o.d"
  "CMakeFiles/vmtherm_util.dir/rng.cpp.o"
  "CMakeFiles/vmtherm_util.dir/rng.cpp.o.d"
  "CMakeFiles/vmtherm_util.dir/stats.cpp.o"
  "CMakeFiles/vmtherm_util.dir/stats.cpp.o.d"
  "CMakeFiles/vmtherm_util.dir/table.cpp.o"
  "CMakeFiles/vmtherm_util.dir/table.cpp.o.d"
  "libvmtherm_util.a"
  "libvmtherm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmtherm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
