# Empty compiler generated dependencies file for vmtherm_util.
# This may be replaced when dependencies are built.
