file(REMOVE_RECURSE
  "libvmtherm_util.a"
)
