file(REMOVE_RECURSE
  "libvmtherm_baselines.a"
)
