file(REMOVE_RECURSE
  "CMakeFiles/vmtherm_baselines.dir/rc_predictor.cpp.o"
  "CMakeFiles/vmtherm_baselines.dir/rc_predictor.cpp.o.d"
  "CMakeFiles/vmtherm_baselines.dir/task_temperature.cpp.o"
  "CMakeFiles/vmtherm_baselines.dir/task_temperature.cpp.o.d"
  "libvmtherm_baselines.a"
  "libvmtherm_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmtherm_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
