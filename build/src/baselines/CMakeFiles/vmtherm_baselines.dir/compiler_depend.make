# Empty compiler generated dependencies file for vmtherm_baselines.
# This may be replaced when dependencies are built.
