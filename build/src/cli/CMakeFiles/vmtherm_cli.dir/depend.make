# Empty dependencies file for vmtherm_cli.
# This may be replaced when dependencies are built.
