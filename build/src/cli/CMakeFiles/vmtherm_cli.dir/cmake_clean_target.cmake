file(REMOVE_RECURSE
  "libvmtherm_cli.a"
)
