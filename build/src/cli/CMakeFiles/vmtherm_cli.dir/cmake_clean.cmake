file(REMOVE_RECURSE
  "CMakeFiles/vmtherm_cli.dir/args.cpp.o"
  "CMakeFiles/vmtherm_cli.dir/args.cpp.o.d"
  "CMakeFiles/vmtherm_cli.dir/commands.cpp.o"
  "CMakeFiles/vmtherm_cli.dir/commands.cpp.o.d"
  "libvmtherm_cli.a"
  "libvmtherm_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmtherm_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
