# Empty compiler generated dependencies file for vmtherm.
# This may be replaced when dependencies are built.
