file(REMOVE_RECURSE
  "CMakeFiles/vmtherm.dir/tools_main.cpp.o"
  "CMakeFiles/vmtherm.dir/tools_main.cpp.o.d"
  "vmtherm"
  "vmtherm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmtherm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
