file(REMOVE_RECURSE
  "CMakeFiles/vmtherm_mgmt.dir/autopilot.cpp.o"
  "CMakeFiles/vmtherm_mgmt.dir/autopilot.cpp.o.d"
  "CMakeFiles/vmtherm_mgmt.dir/cooling.cpp.o"
  "CMakeFiles/vmtherm_mgmt.dir/cooling.cpp.o.d"
  "CMakeFiles/vmtherm_mgmt.dir/monitor.cpp.o"
  "CMakeFiles/vmtherm_mgmt.dir/monitor.cpp.o.d"
  "CMakeFiles/vmtherm_mgmt.dir/planner.cpp.o"
  "CMakeFiles/vmtherm_mgmt.dir/planner.cpp.o.d"
  "libvmtherm_mgmt.a"
  "libvmtherm_mgmt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmtherm_mgmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
