file(REMOVE_RECURSE
  "libvmtherm_mgmt.a"
)
