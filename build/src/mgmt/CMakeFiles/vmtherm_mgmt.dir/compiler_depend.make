# Empty compiler generated dependencies file for vmtherm_mgmt.
# This may be replaced when dependencies are built.
