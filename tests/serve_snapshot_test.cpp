// Tests for serve/snapshot: versioned save/restore of a FleetEngine —
// byte-stable round-trips, bitwise-equal resumed forecasts, and metric
// continuity across a restart.

#include "serve/snapshot.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/evaluator.h"

namespace vmtherm::serve {
namespace {

const core::StableTemperaturePredictor& shared_predictor() {
  static const core::StableTemperaturePredictor predictor = [] {
    sim::ScenarioRanges ranges;
    ranges.duration_s = 1200.0;
    ranges.sample_interval_s = 10.0;
    core::StableTrainOptions options;
    ml::SvrParams params;
    params.kernel.gamma = 1.0 / 32;
    params.c = 512.0;
    params.epsilon = 0.05;
    options.fixed_params = params;
    return core::StableTemperaturePredictor::train(
        core::generate_corpus(ranges, 80, 73), options);
  }();
  return predictor;
}

mgmt::MonitoredConfig host_config(int vms) {
  mgmt::MonitoredConfig config;
  config.server = sim::make_server_spec("medium");
  config.fans = 4;
  sim::VmConfig burn;
  burn.vcpus = 4;
  burn.memory_gb = 8.0;
  burn.task = sim::TaskType::kCpuBurn;
  config.vms.assign(static_cast<std::size_t>(vms), burn);
  config.env_temp_c = 23.0;
  return config;
}

FleetEngineOptions engine_options(std::size_t shards) {
  FleetEngineOptions options;
  options.shards = shards;
  options.drain = DrainMode::kManual;
  options.backpressure = BackpressurePolicy::kDropNewest;
  options.dynamic.learning_rate = 0.7;  // non-default: must survive the trip
  options.drift_threshold_c = 6.5;
  return options;
}

/// Builds an engine with three hosts and `steps` observations each.
std::unique_ptr<FleetEngine> make_fed_engine(std::size_t shards,
                                             int steps) {
  auto engine = std::make_unique<FleetEngine>(shared_predictor(),
                                              engine_options(shards));
  std::vector<HostHandle> handles;
  for (int i = 0; i < 3; ++i) {
    handles.push_back(engine->register_host("host-" + std::to_string(i),
                                            host_config(i + 1), 0.0,
                                            22.0 + i));
  }
  for (int step = 1; step <= steps; ++step) {
    std::vector<TelemetryEvent> batch;
    for (std::size_t i = 0; i < handles.size(); ++i) {
      batch.push_back(TelemetryEvent::observe(
          handles[i], step * 15.0,
          28.0 + static_cast<double>(i) + 0.2 * step));
    }
    engine->ingest_batch(std::move(batch));
  }
  engine->flush();
  return engine;
}

TEST(FleetSnapshotTest, SaveLoadSaveIsByteIdentical) {
  auto engine = make_fed_engine(2, 20);
  std::ostringstream first;
  save_fleet(first, *engine);

  std::istringstream in(first.str());
  auto restored = load_fleet(in, engine_options(2));
  std::ostringstream second;
  save_fleet(second, *restored);
  EXPECT_EQ(first.str(), second.str());
}

TEST(FleetSnapshotTest, RestoredEngineForecastsBitwiseEqual) {
  auto engine = make_fed_engine(2, 20);
  std::ostringstream snapshot;
  save_fleet(snapshot, *engine);

  // Restore at a different shard count: host handles are reassigned but
  // per-host state must be exact.
  std::istringstream in(snapshot.str());
  auto restored = load_fleet(in, engine_options(5));
  EXPECT_EQ(restored->host_count(), 3u);
  EXPECT_EQ(restored->shard_count(), 5u);
  EXPECT_EQ(restored->options().dynamic.learning_rate, 0.7);
  EXPECT_EQ(restored->options().drift_threshold_c, 6.5);

  for (int i = 0; i < 3; ++i) {
    const std::string id = "host-" + std::to_string(i);
    const HostHandle a = engine->handle_of(id);
    const HostHandle b = restored->handle_of(id);
    for (const double gap : {0.0, 30.0, 60.0, 600.0}) {
      EXPECT_EQ(engine->forecast(a, gap), restored->forecast(b, gap));
    }
    EXPECT_EQ(engine->calibration_of(a), restored->calibration_of(b));
    EXPECT_EQ(engine->config_of(a).vms.size(),
              restored->config_of(b).vms.size());
  }
  EXPECT_EQ(engine->metrics().to_json(false),
            restored->metrics().to_json(false));
}

TEST(FleetSnapshotTest, ResumeEquivalence) {
  // Run 40 steps straight through vs. 20 steps -> snapshot -> restore ->
  // 20 more steps: final forecasts and deterministic metrics must match.
  auto full = make_fed_engine(3, 40);

  auto half = make_fed_engine(3, 20);
  std::ostringstream snapshot;
  save_fleet(snapshot, *half);
  std::istringstream in(snapshot.str());
  auto resumed = load_fleet(in, engine_options(3));

  std::vector<HostHandle> handles;
  for (int i = 0; i < 3; ++i) {
    handles.push_back(resumed->handle_of("host-" + std::to_string(i)));
  }
  for (int step = 21; step <= 40; ++step) {
    std::vector<TelemetryEvent> batch;
    for (std::size_t i = 0; i < handles.size(); ++i) {
      batch.push_back(TelemetryEvent::observe(
          handles[i], step * 15.0,
          28.0 + static_cast<double>(i) + 0.2 * step));
    }
    resumed->ingest_batch(std::move(batch));
  }
  resumed->flush();

  for (int i = 0; i < 3; ++i) {
    const std::string id = "host-" + std::to_string(i);
    EXPECT_EQ(full->forecast(full->handle_of(id), 60.0),
              resumed->forecast(resumed->handle_of(id), 60.0));
  }
  EXPECT_EQ(full->metrics().to_json(false), resumed->metrics().to_json(false));
}

TEST(FleetSnapshotTest, FileRoundTrip) {
  auto engine = make_fed_engine(2, 5);
  const std::string path = ::testing::TempDir() + "fleet_snapshot_test.txt";
  save_fleet_file(path, *engine);
  auto restored = load_fleet_file(path, engine_options(2));
  EXPECT_EQ(restored->host_count(), 3u);
  const std::string id = "host-0";
  EXPECT_EQ(engine->forecast(engine->handle_of(id), 60.0),
            restored->forecast(restored->handle_of(id), 60.0));
}

TEST(FleetSnapshotTest, MalformedInputThrows) {
  std::istringstream bad_magic("not_a_fleet v1\n");
  EXPECT_THROW((void)load_fleet(bad_magic), IoError);

  auto engine = make_fed_engine(1, 3);
  std::ostringstream snapshot;
  save_fleet(snapshot, *engine);
  const std::string text = snapshot.str();
  std::istringstream truncated(text.substr(0, text.size() / 2));
  EXPECT_THROW((void)load_fleet(truncated), IoError);

  EXPECT_THROW((void)load_fleet_file("/nonexistent/fleet.txt"), IoError);
}

}  // namespace
}  // namespace vmtherm::serve
