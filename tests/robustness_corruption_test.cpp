// Malformed-input robustness: table-driven corruption of `vmtherm_fleet v1`
// snapshots and ml/model_io files (truncation, field swaps, NaN injection,
// implausible counts, garbage tokens). Every corrupted input must fail with
// a clean vmtherm::Error (IoError/ConfigError/DataError) — never UB, a
// std::length_error from a poisoned vector size, or a silent wrong load.
// The check scripts run this suite under ASan/UBSan as well.

#include <gtest/gtest.h>

#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "core/evaluator.h"
#include "ml/model_io.h"
#include "serve/snapshot.h"

namespace vmtherm {
namespace {

// --- helpers ------------------------------------------------------------

/// Replaces the first occurrence of `from`; fails the test when absent so a
/// format change cannot silently turn a corruption case into a no-op.
std::string replace_first(const std::string& text, const std::string& from,
                          const std::string& to) {
  const std::size_t pos = text.find(from);
  EXPECT_NE(pos, std::string::npos) << "corruption target not found: " << from;
  if (pos == std::string::npos) return text;
  std::string out = text;
  out.replace(pos, from.size(), to);
  return out;
}

struct Corruption {
  const char* name;
  std::function<std::string(const std::string&)> mutate;
};

// --- fleet snapshot corpus ----------------------------------------------

const core::StableTemperaturePredictor& tiny_predictor() {
  static const core::StableTemperaturePredictor predictor = [] {
    sim::ScenarioRanges ranges;
    ranges.duration_s = 1200.0;
    ranges.sample_interval_s = 10.0;
    core::StableTrainOptions options;
    ml::SvrParams params;
    params.kernel.gamma = 1.0 / 32;
    params.c = 64.0;
    params.epsilon = 0.1;
    options.fixed_params = params;
    return core::StableTemperaturePredictor::train(
        core::generate_corpus(ranges, 10, 7), options);
  }();
  return predictor;
}

serve::FleetEngineOptions manual_options() {
  serve::FleetEngineOptions options;
  options.shards = 2;
  options.drain = serve::DrainMode::kManual;
  options.backpressure = serve::BackpressurePolicy::kDropNewest;
  return options;
}

mgmt::MonitoredConfig host_config(int vms) {
  mgmt::MonitoredConfig config;
  config.server = sim::make_server_spec("medium");
  config.fans = 4;
  sim::VmConfig vm;
  vm.vcpus = 2;
  vm.memory_gb = 4.0;
  vm.task = sim::TaskType::kCpuBurn;
  config.vms.assign(static_cast<std::size_t>(vms), vm);
  config.env_temp_c = 23.0;
  return config;
}

/// A small but fully populated snapshot: three hosts, observations applied,
/// deterministic metrics non-zero.
std::string good_snapshot() {
  static const std::string snapshot = [] {
    serve::FleetEngine engine(tiny_predictor(), manual_options());
    std::vector<serve::HostHandle> handles;
    for (int i = 0; i < 3; ++i) {
      handles.push_back(engine.register_host("host-" + std::to_string(i),
                                             host_config(i + 1), 0.0,
                                             22.0 + i));
    }
    for (int step = 1; step <= 10; ++step) {
      std::vector<serve::TelemetryEvent> batch;
      for (const serve::HostHandle handle : handles) {
        batch.push_back(serve::TelemetryEvent::observe(
            handle, step * 20.0, 26.0 + 0.3 * step));
      }
      engine.ingest_batch(std::move(batch));
    }
    engine.flush();
    std::ostringstream out;
    serve::save_fleet(out, engine);
    return out.str();
  }();
  return snapshot;
}

TEST(SnapshotCorruptionTest, IntactSnapshotLoads) {
  std::istringstream in(good_snapshot());
  const auto engine = serve::load_fleet(in, manual_options());
  EXPECT_EQ(engine->host_count(), 3u);
  EXPECT_TRUE(engine->has_host("host-1"));
}

TEST(SnapshotCorruptionTest, CorruptedSnapshotsFailCleanly) {
  const std::vector<Corruption> corruptions = {
      {"bad-magic",
       [](const std::string& s) {
         return replace_first(s, "vmtherm_fleet v1", "vmtherm_fleet v9");
       }},
      {"truncated-quarter",
       [](const std::string& s) { return s.substr(0, s.size() / 4); }},
      {"truncated-half",
       [](const std::string& s) { return s.substr(0, s.size() / 2); }},
      {"truncated-90-percent",
       [](const std::string& s) { return s.substr(0, s.size() * 9 / 10); }},
      {"missing-end-marker",
       [](const std::string& s) { return replace_first(s, "end", "En"); }},
      {"field-swapped-headers",
       // `drift` tokens where `dynamic` tokens are expected and vice versa.
       [](const std::string& s) {
         return replace_first(replace_first(s, "dynamic ", "@TMP@ "),
                              "drift ", "dynamic ") ;
       }},
      {"nan-injected-learning-rate",
       [](const std::string& s) {
         return replace_first(s, "dynamic 0.", "dynamic nan0.");
       }},
      {"nan-injected-tracker",
       [](const std::string& s) {
         return replace_first(s, "tracker 1 ", "tracker 1 nan ");
       }},
      {"flag-out-of-range",
       [](const std::string& s) {
         return replace_first(s, "tracker 1 ", "tracker 7 ");
       }},
      {"garbage-host-count",
       [](const std::string& s) {
         return replace_first(s, "hosts 3", "hosts banana");
       }},
      {"implausible-vm-count",
       [](const std::string& s) {
         return replace_first(s, "vms 1", "vms 18446744073709551615");
       }},
      {"implausible-histogram-bounds",
       [](const std::string& s) {
         return replace_first(s, "hist calibration.abs_error_c 6",
                              "hist calibration.abs_error_c 999999999999");
       }},
      {"unknown-metric-family",
       [](const std::string& s) {
         return replace_first(s, "counter apply.observe",
                              "banana apply.observe");
       }},
      {"garbage-counter-value",
       [](const std::string& s) {
         return replace_first(s, "counter apply.observe ",
                              "counter apply.observe x");
       }},
  };

  const std::string good = good_snapshot();
  for (const Corruption& corruption : corruptions) {
    SCOPED_TRACE(corruption.name);
    const std::string bad = corruption.mutate(good);
    ASSERT_NE(bad, good) << "corruption was a no-op";
    std::istringstream in(bad);
    EXPECT_THROW(serve::load_fleet(in, manual_options()), Error);
  }
}

// --- model_io corpus ----------------------------------------------------

ml::SvrModel tiny_svr() {
  ml::KernelParams kernel;
  kernel.kind = ml::KernelKind::kRbf;
  kernel.gamma = 0.25;
  return ml::SvrModel(kernel, {{0.1, 0.2}, {0.6, 0.8}}, {1.5, -1.5}, 0.25);
}

std::string good_svr_text() {
  std::ostringstream out;
  ml::save_svr(out, tiny_svr());
  return out.str();
}

std::string good_scaler_text() {
  std::ostringstream out;
  ml::save_scaler(out, ml::MinMaxScaler({0.0, -1.0}, {1.0, 2.0}));
  return out.str();
}

TEST(ModelIoCorruptionTest, IntactFilesLoad) {
  std::istringstream svr_in(good_svr_text());
  const ml::SvrModel model = ml::load_svr(svr_in);
  EXPECT_EQ(model.support_vector_count(), 2u);
  std::istringstream scaler_in(good_scaler_text());
  const ml::MinMaxScaler scaler = ml::load_scaler(scaler_in);
  EXPECT_EQ(scaler.dim(), 2u);
}

TEST(ModelIoCorruptionTest, CorruptedSvrFilesFailCleanly) {
  const std::vector<Corruption> corruptions = {
      {"bad-magic",
       [](const std::string& s) {
         return replace_first(s, "vmtherm_svr v1", "vmtherm_svr v0");
       }},
      {"truncated-half",
       [](const std::string& s) { return s.substr(0, s.size() / 2); }},
      {"field-swapped-kernel",
       [](const std::string& s) {
         return replace_first(s, "gamma", "degree");
       }},
      {"nan-injected-gamma",
       [](const std::string& s) {
         return replace_first(s, "gamma 0.25", "gamma nan");
       }},
      {"negative-dim",
       [](const std::string& s) { return replace_first(s, "dim 2", "dim -2"); }},
      {"implausible-dim",
       [](const std::string& s) {
         return replace_first(s, "dim 2", "dim 8589934592");
       }},
      {"inflated-nsv",
       [](const std::string& s) {
         return replace_first(s, "nsv 2", "nsv 4096");
       }},
  };

  const std::string good = good_svr_text();
  for (const Corruption& corruption : corruptions) {
    SCOPED_TRACE(corruption.name);
    const std::string bad = corruption.mutate(good);
    ASSERT_NE(bad, good) << "corruption was a no-op";
    std::istringstream in(bad);
    EXPECT_THROW(ml::load_svr(in), Error);
  }
}

TEST(ModelIoCorruptionTest, CorruptedScalerFilesFailCleanly) {
  const std::vector<Corruption> corruptions = {
      {"bad-magic",
       [](const std::string& s) {
         return replace_first(s, "vmtherm_scaler v1", "vmtherm_scale v1");
       }},
      {"truncated-after-dim",
       [](const std::string& s) {
         return s.substr(0, s.find("dim 2") + 5);
       }},
      {"implausible-dim",
       [](const std::string& s) {
         return replace_first(s, "dim 2", "dim 281474976710656");
       }},
      {"garbage-range",
       [](const std::string& s) { return replace_first(s, "0 1", "zero one"); }},
  };

  const std::string good = good_scaler_text();
  for (const Corruption& corruption : corruptions) {
    SCOPED_TRACE(corruption.name);
    const std::string bad = corruption.mutate(good);
    ASSERT_NE(bad, good) << "corruption was a no-op";
    std::istringstream in(bad);
    EXPECT_THROW(ml::load_scaler(in), Error);
  }
}

}  // namespace
}  // namespace vmtherm
