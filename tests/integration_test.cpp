// End-to-end integration tests: the full pipeline the paper describes —
// randomized testbed experiments -> Eq. (1) profiling -> Eq. (2) records ->
// scaled grid-searched SVR -> stable + dynamic prediction — exercised at
// reduced scale, asserting the qualitative claims of the evaluation.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "baselines/rc_predictor.h"
#include "baselines/task_temperature.h"
#include "core/evaluator.h"
#include "sim/cluster.h"
#include "util/rng.h"
#include "util/stats.h"

namespace vmtherm {
namespace {

using core::DynamicEvalOptions;
using core::DynamicScenario;
using core::Record;
using core::StableTemperaturePredictor;
using core::StableTrainOptions;

sim::ScenarioRanges fast_ranges() {
  sim::ScenarioRanges ranges;
  ranges.duration_s = 1200.0;
  ranges.sample_interval_s = 10.0;
  return ranges;
}

struct Pipeline {
  std::vector<Record> train_records;
  std::vector<Record> test_records;
  StableTemperaturePredictor predictor;
};

const Pipeline& pipeline() {
  static const Pipeline p = [] {
    auto train = core::generate_corpus(fast_ranges(), 220, 1001);
    auto test = core::generate_corpus(fast_ranges(), 20, 2002);
    StableTrainOptions options;
    options.grid.c_values = {64.0, 512.0, 2048.0};
    options.grid.gamma_values = {1.0 / 64, 1.0 / 16, 0.25};
    options.grid.epsilon_values = {0.05};
    options.grid.folds = 5;
    auto predictor = StableTemperaturePredictor::train(train, options);
    return Pipeline{std::move(train), std::move(test), std::move(predictor)};
  }();
  return p;
}

TEST(IntegrationStableTest, HeldOutMseIsSmall) {
  // Paper: average MSE within 1.10 on 20 random 2-12 VM cases. Our testbed
  // is synthetic, so assert the same order of magnitude.
  const auto result = evaluate_stable(pipeline().predictor,
                                      pipeline().test_records);
  EXPECT_EQ(result.cases.size(), 20u);
  EXPECT_LT(result.mse, 4.0);
  // And vastly better than predicting the corpus mean.
  std::vector<double> labels;
  for (const auto& r : pipeline().test_records) {
    labels.push_back(r.stable_temp_c);
  }
  EXPECT_LT(result.mse, variance(labels) / 4.0);
}

TEST(IntegrationStableTest, PredictionsCorrelateWithMeasurements) {
  const auto result = evaluate_stable(pipeline().predictor,
                                      pipeline().test_records);
  std::vector<double> pred;
  std::vector<double> meas;
  for (const auto& c : result.cases) {
    pred.push_back(c.predicted_c);
    meas.push_back(c.measured_c);
  }
  EXPECT_GT(pearson(pred, meas), 0.9);
}

TEST(IntegrationStableTest, BeatsBothPaperBaselines) {
  const auto& test = pipeline().test_records;
  const auto task_model =
      baselines::TaskTemperatureBaseline::fit(pipeline().train_records);
  const auto rc_model = baselines::RcBaseline::fit(pipeline().train_records);

  double se_svr = 0.0;
  double se_task = 0.0;
  double se_rc = 0.0;
  for (const auto& r : test) {
    se_svr += std::pow(pipeline().predictor.predict(r) - r.stable_temp_c, 2);
    se_task += std::pow(task_model.predict(r) - r.stable_temp_c, 2);
    se_rc += std::pow(rc_model.predict(r) - r.stable_temp_c, 2);
  }
  EXPECT_LT(se_svr, se_task);
  EXPECT_LT(se_svr, se_rc);
}

TEST(IntegrationDynamicTest, CalibratedTrackingThroughVmChurn) {
  // A full dynamic scenario with VM add/remove; calibrated MSE must beat
  // uncalibrated on average (Fig. 1(b) claim), and stay small in absolute
  // terms.
  double total_cal = 0.0;
  double total_uncal = 0.0;
  int n = 0;
  for (std::uint64_t seed : {11, 22, 33, 44}) {
    const DynamicScenario scenario =
        core::make_random_dynamic_scenario(fast_ranges(), 4, seed);
    DynamicEvalOptions calibrated;
    DynamicEvalOptions uncalibrated;
    uncalibrated.dynamic.calibration_enabled = false;
    total_cal +=
        evaluate_dynamic(pipeline().predictor, scenario, calibrated).mse;
    total_uncal +=
        evaluate_dynamic(pipeline().predictor, scenario, uncalibrated).mse;
    ++n;
  }
  EXPECT_LT(total_cal / n, total_uncal / n);
  EXPECT_LT(total_cal / n, 8.0);
}

TEST(IntegrationDynamicTest, MseGrowsWithPredictionGap) {
  // Fig. 1(c) shape: farther look-ahead is harder. Compare extreme gaps
  // averaged over scenarios.
  std::vector<DynamicScenario> scenarios;
  for (std::uint64_t seed : {5, 6, 7}) {
    scenarios.push_back(
        core::make_random_dynamic_scenario(fast_ranges(), 4, seed));
  }
  const auto grid = core::sweep_gap_update(
      pipeline().predictor, scenarios, {15.0, 180.0}, {15.0},
      core::DynamicOptions{});
  EXPECT_LT(grid[0][0], grid[1][0]);
}

TEST(IntegrationDynamicTest, FrequentUpdatesBeatRareUpdates) {
  std::vector<DynamicScenario> scenarios;
  for (std::uint64_t seed : {8, 9, 10}) {
    scenarios.push_back(
        core::make_random_dynamic_scenario(fast_ranges(), 4, seed));
  }
  const auto grid = core::sweep_gap_update(
      pipeline().predictor, scenarios, {60.0}, {15.0, 300.0},
      core::DynamicOptions{});
  EXPECT_LT(grid[0][0], grid[0][1]);
}

TEST(IntegrationPersistenceTest, DeployedModelMatchesTrainedModel) {
  // Train offline, persist, load in the "online service", predict: the
  // paper's deployment story.
  const auto path = std::string("/tmp/vmtherm_integration_model.txt");
  pipeline().predictor.save(path);
  const auto deployed = StableTemperaturePredictor::load(path);
  for (const auto& r : pipeline().test_records) {
    ASSERT_DOUBLE_EQ(deployed.predict(r), pipeline().predictor.predict(r));
  }
  std::remove(path.c_str());
}

TEST(IntegrationMigrationTest, PredictorFollowsVmAcrossHosts) {
  // Simulate a migration in a 2-machine cluster and check a freshly
  // retargeted dynamic predictor tracks the destination's warm-up.
  sim::EnvironmentSpec env;
  env.base_c = 22.0;
  env.fluctuation_stddev_c = 0.0;
  sim::Cluster cluster(env, Rng(3));
  sim::MachineOptions options;
  options.sensor.noise_stddev_c = 0.1;
  options.sensor.quantization_c = 0.25;
  cluster.add_machine(sim::make_server_spec("medium"), options);
  cluster.add_machine(sim::make_server_spec("medium"), options);

  sim::VmConfig hot;
  hot.vcpus = 8;
  hot.memory_gb = 8.0;
  hot.task = sim::TaskType::kCpuBurn;
  cluster.place_vm(0, sim::Vm("hot", hot, Rng(4)));

  // Warm up source, then migrate.
  for (int i = 0; i < 240; ++i) cluster.step(5.0);
  cluster.migrate("hot", 1);

  // Dynamic predictor for the destination, seeded with the stable
  // prediction for (machine 1 + hot VM).
  core::DynamicOptions dyn_options;
  core::DynamicTemperaturePredictor predictor(dyn_options);
  const double t0 = cluster.time_s();
  const double phi0 = cluster.machine(1).last_sample().cpu_temp_sensed_c;
  const double psi = pipeline().predictor.predict(
      cluster.machine(1).spec(), {hot}, cluster.machine(1).active_fans(),
      22.0);
  predictor.begin(t0, phi0, psi);

  std::vector<double> predicted;
  std::vector<double> measured;
  for (int i = 0; i < 300; ++i) {
    cluster.step(5.0);
    const double t = cluster.time_s();
    const double m = cluster.machine(1).last_sample().cpu_temp_sensed_c;
    predicted.push_back(predictor.predict_at(t));
    measured.push_back(m);
    predictor.observe(t, m);
  }
  // Tracking error stays moderate through the migration transient.
  EXPECT_LT(mse(predicted, measured), 6.0);
  // And the destination did heat up substantially.
  EXPECT_GT(measured.back(), phi0 + 5.0);
}

}  // namespace
}  // namespace vmtherm
