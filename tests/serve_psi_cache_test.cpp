// Tests for serve/psi_cache and its wiring into the Shard hot path: the
// cache keys on the raw Eq. (2) feature vector bitwise, evicts by
// generational clear, and — the contract that matters — memoization must
// leave every forecast and every deterministic metric bitwise identical
// to an uncached engine fed the same event stream.

#include "serve/psi_cache.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "core/evaluator.h"
#include "serve/engine.h"

namespace vmtherm::serve {
namespace {

TEST(PsiStableCacheTest, InsertThenFindReturnsStoredValue) {
  PsiStableCache cache(8);
  const std::vector<double> key{1.0, 2.5, -3.75};
  EXPECT_EQ(cache.find(key), nullptr);
  cache.insert(key, 42.5);
  ASSERT_NE(cache.find(key), nullptr);
  EXPECT_EQ(*cache.find(key), 42.5);
  EXPECT_EQ(cache.size(), 1u);
  // A different key of the same length misses.
  const std::vector<double> other{1.0, 2.5, -3.5};
  EXPECT_EQ(cache.find(other), nullptr);
  // A prefix of the key misses (length is part of equality).
  EXPECT_EQ(cache.find(std::span<const double>(key.data(), 2)), nullptr);
}

TEST(PsiStableCacheTest, DuplicateInsertIsNoOp) {
  PsiStableCache cache(8);
  const std::vector<double> key{7.0};
  cache.insert(key, 1.0);
  cache.insert(key, 999.0);  // first value stays authoritative
  ASSERT_NE(cache.find(key), nullptr);
  EXPECT_EQ(*cache.find(key), 1.0);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PsiStableCacheTest, KeysAreBitwiseNotValueEqual) {
  PsiStableCache cache(8);
  const std::vector<double> pos{0.0};
  const std::vector<double> neg{-0.0};
  cache.insert(pos, 10.0);
  ASSERT_NE(cache.find(pos), nullptr);
  // -0.0 == 0.0 by value, but the cache must treat them as distinct keys.
  EXPECT_EQ(cache.find(neg), nullptr);
  cache.insert(neg, 20.0);
  EXPECT_EQ(*cache.find(pos), 10.0);
  EXPECT_EQ(*cache.find(neg), 20.0);

  // A NaN key is consistently findable (bitwise, so NaN != NaN is moot).
  const std::vector<double> nan_key{std::numeric_limits<double>::quiet_NaN()};
  cache.insert(nan_key, 30.0);
  ASSERT_NE(cache.find(nan_key), nullptr);
  EXPECT_EQ(*cache.find(nan_key), 30.0);
}

TEST(PsiStableCacheTest, ClearsGenerationOnReachingBudget) {
  PsiStableCache cache(4);
  EXPECT_EQ(cache.capacity(), 4u);
  for (int i = 0; i < 4; ++i) {
    cache.insert(std::vector<double>{static_cast<double>(i)}, i * 10.0);
  }
  EXPECT_EQ(cache.size(), 4u);
  // The 5th distinct key trips the generational clear: the old entries
  // vanish, the new one is memoized in the fresh generation.
  const std::vector<double> fresh{99.0};
  cache.insert(fresh, 990.0);
  EXPECT_EQ(cache.size(), 1u);
  ASSERT_NE(cache.find(fresh), nullptr);
  EXPECT_EQ(*cache.find(fresh), 990.0);
  const std::vector<double> old_key{0.0};
  EXPECT_EQ(cache.find(old_key), nullptr);
}

TEST(PsiStableCacheTest, ZeroCapacityDisablesMemoization) {
  PsiStableCache cache(0);
  EXPECT_EQ(cache.capacity(), 0u);
  const std::vector<double> key{1.0, 2.0};
  cache.insert(key, 5.0);
  EXPECT_EQ(cache.find(key), nullptr);
  EXPECT_EQ(cache.size(), 0u);
  cache.clear();  // harmless on a disabled cache
}

TEST(PsiStableCacheTest, SurvivesManyInsertsAcrossGenerations) {
  PsiStableCache cache(16);
  for (int i = 0; i < 1000; ++i) {
    const std::vector<double> key{static_cast<double>(i), 0.5};
    cache.insert(key, static_cast<double>(i));
    ASSERT_NE(cache.find(key), nullptr) << "entry " << i;
    EXPECT_EQ(*cache.find(key), static_cast<double>(i));
    EXPECT_LE(cache.size(), 16u);
  }
}

// ---------------------------------------------------------------------
// Engine-level contract: memoization is invisible except in the timing
// metrics. Same stream, cache on vs off → bitwise-identical forecasts
// and byte-identical deterministic metric JSON.
// ---------------------------------------------------------------------

const core::StableTemperaturePredictor& shared_predictor() {
  static const core::StableTemperaturePredictor predictor = [] {
    sim::ScenarioRanges ranges;
    ranges.duration_s = 1200.0;
    ranges.sample_interval_s = 10.0;
    core::StableTrainOptions options;
    ml::SvrParams params;
    params.kernel.gamma = 1.0 / 32;
    params.c = 512.0;
    params.epsilon = 0.05;
    options.fixed_params = params;
    return core::StableTemperaturePredictor::train(
        core::generate_corpus(ranges, 80, 73), options);
  }();
  return predictor;
}

mgmt::MonitoredConfig config_variant(int variant) {
  mgmt::MonitoredConfig config;
  config.server = sim::make_server_spec("medium");
  config.fans = 4;
  sim::VmConfig vm;
  vm.vcpus = 2 + variant % 3;
  vm.memory_gb = 4.0;
  vm.task = variant % 2 == 0 ? sim::TaskType::kCpuBurn : sim::TaskType::kIdle;
  config.vms.assign(1 + static_cast<std::size_t>(variant % 2), vm);
  config.env_temp_c = 22.0 + variant % 3;
  return config;
}

FleetEngineOptions cached_options(std::size_t psi_capacity) {
  FleetEngineOptions options;
  options.shards = 2;
  options.drain = DrainMode::kManual;
  options.backpressure = BackpressurePolicy::kDropNewest;
  options.psi_cache_capacity = psi_capacity;
  return options;
}

struct RunResult {
  std::vector<double> forecasts;
  std::string deterministic_metrics;
  std::uint64_t psi_hits = 0;
  std::uint64_t psi_misses = 0;
};

// Registers 12 hosts cycling through 3 config variants, streams observe +
// update_config events (re-applying the same variants, so ψ inputs
// repeat), then forecasts every host at several gaps.
RunResult run_fleet(std::size_t psi_capacity) {
  FleetEngine engine(shared_predictor(), cached_options(psi_capacity));
  std::vector<HostHandle> hosts;
  for (int i = 0; i < 12; ++i) {
    hosts.push_back(engine.register_host("host-" + std::to_string(i),
                                         config_variant(i % 3), 0.0, 23.0));
  }
  for (double t = 15.0; t <= 120.0; t += 15.0) {
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      engine.ingest(TelemetryEvent::observe(
          hosts[i], t, 28.0 + t * 0.05 + static_cast<double>(i)));
    }
  }
  // Config churn over the same small variant set: every re-application
  // re-derives ψ_stable from an already-seen feature vector.
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    engine.ingest(TelemetryEvent::update_config(
        hosts[i], 135.0, 34.0, config_variant(static_cast<int>(i + 1) % 3)));
  }
  engine.flush();

  RunResult result;
  for (const HostHandle h : hosts) {
    for (const double gap : {0.0, 30.0, 300.0}) {
      result.forecasts.push_back(engine.forecast(h, gap));
    }
  }
  result.deterministic_metrics =
      engine.metrics().to_json(/*include_timing=*/false);
  result.psi_hits =
      engine.metrics().counter("psi_cache.hits", MetricKind::kTiming).value();
  result.psi_misses =
      engine.metrics()
          .counter("psi_cache.misses", MetricKind::kTiming)
          .value();
  return result;
}

TEST(PsiCacheEngineTest, MemoizationHitsWithoutChangingForecasts) {
  const RunResult cached = run_fleet(4096);
  const RunResult uncached = run_fleet(0);

  // The cache saw repeated running conditions and exploited them.
  EXPECT_GT(cached.psi_hits, 0u);
  EXPECT_GT(cached.psi_misses, 0u);
  // A disabled cache counts every lookup as a miss.
  EXPECT_EQ(uncached.psi_hits, 0u);

  // Bitwise-identical forecasts: EXPECT_EQ on doubles, not EXPECT_NEAR.
  ASSERT_EQ(cached.forecasts.size(), uncached.forecasts.size());
  for (std::size_t i = 0; i < cached.forecasts.size(); ++i) {
    EXPECT_EQ(cached.forecasts[i], uncached.forecasts[i]) << "forecast " << i;
  }
  // The deterministic metric subset is byte-identical — cache hit/miss
  // counters are registered as timing metrics precisely so they stay out
  // of this comparison.
  EXPECT_EQ(cached.deterministic_metrics, uncached.deterministic_metrics);
  EXPECT_EQ(cached.deterministic_metrics.find("psi_cache"), std::string::npos);
}

TEST(PsiCacheEngineTest, RepeatedRunsAreFullyDeterministic) {
  const RunResult a = run_fleet(4096);
  const RunResult b = run_fleet(4096);
  ASSERT_EQ(a.forecasts.size(), b.forecasts.size());
  for (std::size_t i = 0; i < a.forecasts.size(); ++i) {
    EXPECT_EQ(a.forecasts[i], b.forecasts[i]);
  }
  EXPECT_EQ(a.deterministic_metrics, b.deterministic_metrics);
  // Same placement, same stream → even the timing-class cache counters
  // agree between identical single-threaded runs.
  EXPECT_EQ(a.psi_hits, b.psi_hits);
  EXPECT_EQ(a.psi_misses, b.psi_misses);
}

}  // namespace
}  // namespace vmtherm::serve
