// Tests for ml/model_io: text round-trips and format errors.

#include "ml/model_io.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <sstream>

#include "util/rng.h"

namespace vmtherm::ml {
namespace {

SvrModel trained_model(KernelKind kind = KernelKind::kRbf) {
  Rng rng(1);
  Dataset data;
  for (int i = 0; i < 50; ++i) {
    const double x = rng.uniform(-1, 1);
    data.add(Sample{{x, x * x}, std::sin(3.0 * x)});
  }
  SvrParams params;
  params.kernel.kind = kind;
  params.kernel.gamma = 1.5;
  params.kernel.coef0 = 0.5;
  params.c = 10.0;
  params.epsilon = 0.05;
  return SvrModel::train(data, params);
}

TEST(SvrIoTest, RoundTripPreservesPredictions) {
  const auto model = trained_model();
  std::stringstream ss;
  save_svr(ss, model);
  const auto loaded = load_svr(ss);

  EXPECT_EQ(loaded.support_vector_count(), model.support_vector_count());
  EXPECT_DOUBLE_EQ(loaded.bias(), model.bias());
  Rng rng(2);
  for (int i = 0; i < 20; ++i) {
    const std::vector<double> x = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
    ASSERT_DOUBLE_EQ(loaded.predict(x), model.predict(x));
  }
}

TEST(SvrIoTest, RoundTripEveryKernel) {
  for (KernelKind kind : {KernelKind::kLinear, KernelKind::kPolynomial,
                          KernelKind::kRbf, KernelKind::kSigmoid}) {
    const auto model = trained_model(kind);
    std::stringstream ss;
    save_svr(ss, model);
    const auto loaded = load_svr(ss);
    EXPECT_EQ(loaded.kernel().kind, kind);
    const std::vector<double> x = {0.3, 0.1};
    EXPECT_DOUBLE_EQ(loaded.predict(x), model.predict(x));
  }
}

TEST(SvrIoTest, EmptyModelRoundTrips) {
  // A model with no support vectors (everything inside the tube).
  Dataset data;
  for (int i = 0; i < 10; ++i) {
    data.add(Sample{{static_cast<double>(i)}, 1.0});
  }
  SvrParams params;
  params.epsilon = 100.0;
  const auto model = SvrModel::train(data, params);
  ASSERT_EQ(model.support_vector_count(), 0u);
  std::stringstream ss;
  save_svr(ss, model);
  const auto loaded = load_svr(ss);
  EXPECT_EQ(loaded.support_vector_count(), 0u);
  EXPECT_DOUBLE_EQ(loaded.bias(), model.bias());
}

TEST(SvrIoTest, BadMagicThrows) {
  std::stringstream ss("not_a_model v9\n");
  EXPECT_THROW((void)load_svr(ss), IoError);
}

TEST(SvrIoTest, TruncatedFileThrows) {
  const auto model = trained_model();
  std::stringstream ss;
  save_svr(ss, model);
  std::string text = ss.str();
  text.resize(text.size() / 2);
  std::stringstream truncated(text);
  EXPECT_THROW((void)load_svr(truncated), IoError);
}

TEST(ScalerIoTest, RoundTrip) {
  Dataset data;
  data.add(Sample{{0.0, -5.0}, 0.0});
  data.add(Sample{{10.0, 5.0}, 0.0});
  const auto scaler = MinMaxScaler::fit(data);
  std::stringstream ss;
  save_scaler(ss, scaler);
  const auto loaded = load_scaler(ss);
  EXPECT_EQ(loaded.mins(), scaler.mins());
  EXPECT_EQ(loaded.maxs(), scaler.maxs());
}

TEST(ScalerIoTest, BadMagicThrows) {
  std::stringstream ss("vmtherm_scaler v999\n");
  EXPECT_THROW((void)load_scaler(ss), IoError);
}

TEST(FileIoTest, SvrFileRoundTrip) {
  const auto path =
      (std::filesystem::temp_directory_path() / "vmtherm_model_io_test.svr")
          .string();
  const auto model = trained_model();
  save_svr_file(path, model);
  const auto loaded = load_svr_file(path);
  EXPECT_EQ(loaded.support_vector_count(), model.support_vector_count());
  std::filesystem::remove(path);
}

TEST(FileIoTest, MissingFileThrows) {
  EXPECT_THROW((void)load_svr_file("/nonexistent/dir/model.svr"), IoError);
  EXPECT_THROW((void)load_scaler_file("/nonexistent/dir/scaler.txt"), IoError);
}

TEST(FileIoTest, UnwritablePathThrows) {
  const auto model = trained_model();
  EXPECT_THROW(save_svr_file("/nonexistent/dir/model.svr", model), IoError);
}

}  // namespace
}  // namespace vmtherm::ml
