// Tests for obs/accuracy: the rolling prediction-quality window against a
// brute-force reference, γ/CUSUM agreement with standalone core
// components, order-independent fleet aggregation, and the engine-level
// determinism contracts (shard count, ψ-cache on/off, tracing on/off).

#include "obs/accuracy.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "core/drift.h"
#include "core/dynamic_predictor.h"
#include "core/evaluator.h"
#include "core/record.h"
#include "obs/trace.h"
#include "serve/engine.h"

namespace vmtherm::obs {
namespace {

// Deterministic pseudo-random doubles in [-1, 1) (no global RNG state).
class Lcg {
 public:
  double next() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>(state_ >> 11) /
               static_cast<double>(1ULL << 52) -
           1.0;
  }

 private:
  std::uint64_t state_ = 42;
};

TEST(HostAccuracyTest, MatchesBruteForceReference) {
  constexpr std::size_t kWindow = 64;
  HostAccuracy accuracy(kWindow);
  std::deque<double> reference;  // the same samples, oldest first
  Lcg rng;
  for (int i = 0; i < 1000; ++i) {
    const double dif = 3.0 * rng.next();
    accuracy.record(dif, 0.1 * i);
    reference.push_back(dif);
    if (reference.size() > kWindow) reference.pop_front();

    // Brute-force sums in the same (chronological) order: the class's
    // results must be bitwise-identical, not merely close.
    double sum_sq = 0.0;
    double sum_abs = 0.0;
    double sum = 0.0;
    for (const double d : reference) {
      sum_sq += d * d;
      sum_abs += std::abs(d);
      sum += d;
    }
    const WindowSums sums = accuracy.window_sums();
    ASSERT_EQ(sums.samples, reference.size());
    ASSERT_EQ(sums.sum_sq_dif, sum_sq);
    ASSERT_EQ(sums.sum_abs_dif, sum_abs);
    ASSERT_EQ(sums.sum_dif, sum);
    const double n = static_cast<double>(reference.size());
    ASSERT_EQ(accuracy.rolling_mse(), sum_sq / n);
    ASSERT_EQ(accuracy.rolling_mae(), sum_abs / n);
    ASSERT_EQ(accuracy.rolling_mean_dif(), sum / n);
  }
  EXPECT_EQ(accuracy.observations(), 1000u);
  EXPECT_EQ(accuracy.in_window(), kWindow);
}

TEST(HostAccuracyTest, GammaDriftSpansTheCurrentWindow) {
  HostAccuracy accuracy(3);
  EXPECT_EQ(accuracy.latest_gamma(), 0.0);
  EXPECT_EQ(accuracy.gamma_drift(), 0.0);
  accuracy.record(0.0, 1.0);
  EXPECT_EQ(accuracy.latest_gamma(), 1.0);
  EXPECT_EQ(accuracy.gamma_drift(), 0.0);  // one sample: no drift yet
  accuracy.record(0.0, 1.5);
  EXPECT_EQ(accuracy.gamma_drift(), 0.5);  // 1.5 - 1.0
  accuracy.record(0.0, 3.0);
  EXPECT_EQ(accuracy.gamma_drift(), 2.0);  // 3.0 - 1.0
  accuracy.record(0.0, 2.0);  // evicts γ=1.0; oldest is now 1.5
  EXPECT_EQ(accuracy.latest_gamma(), 2.0);
  EXPECT_EQ(accuracy.gamma_drift(), 0.5);  // 2.0 - 1.5
}

TEST(HostAccuracyTest, ZeroWindowIsClampedToOne) {
  HostAccuracy accuracy(0);
  EXPECT_EQ(accuracy.window(), 1u);
  accuracy.record(2.0, 0.5);
  accuracy.record(4.0, 0.7);
  EXPECT_EQ(accuracy.in_window(), 1u);
  EXPECT_EQ(accuracy.rolling_mse(), 16.0);
  EXPECT_EQ(accuracy.latest_gamma(), 0.7);
}

HostAccuracyStats make_host_stats(const std::string& id, double sum_sq,
                                  double sum_abs, double sum,
                                  std::size_t samples, bool drifted) {
  HostAccuracyStats stats;
  stats.host_id = id;
  stats.observations = samples;
  stats.window = 8;
  stats.in_window = samples;
  stats.sums = WindowSums{sum_sq, sum_abs, sum, samples};
  stats.drifted = drifted;
  return stats;
}

TEST(AggregateFleetTest, ResultIsIndependentOfInputOrder) {
  const std::vector<HostAccuracyStats> rows = {
      make_host_stats("c", 9.0, 3.0, -3.0, 3, true),
      make_host_stats("a", 1.0, 1.0, 1.0, 1, false),
      make_host_stats("b", 0.25, 0.5, 0.5, 2, true),
  };
  std::vector<HostAccuracyStats> shuffled = {rows[1], rows[2], rows[0]};

  const FleetAccuracyStats x = aggregate_fleet(rows);
  const FleetAccuracyStats y = aggregate_fleet(shuffled);
  ASSERT_EQ(x.hosts.size(), 3u);
  EXPECT_EQ(x.hosts[0].host_id, "a");  // sorted by id
  EXPECT_EQ(x.hosts[1].host_id, "b");
  EXPECT_EQ(x.hosts[2].host_id, "c");
  EXPECT_EQ(y.hosts[0].host_id, "a");
  EXPECT_EQ(x.observations, 6u);
  EXPECT_EQ(x.samples_in_window, 6u);
  EXPECT_EQ(x.hosts_drifted, 2u);
  EXPECT_EQ(x.rolling_mse, y.rolling_mse);
  EXPECT_EQ(x.rolling_mae, y.rolling_mae);
  EXPECT_EQ(x.rolling_mean_dif, y.rolling_mean_dif);
  // Spot-check the merged math: sums merged in host-id order, then divided.
  EXPECT_EQ(x.rolling_mse, (1.0 + 0.25 + 9.0) / 6.0);
  EXPECT_EQ(x.rolling_mean_dif, (1.0 + 0.5 + -3.0) / 6.0);
}

TEST(AggregateFleetTest, EmptyFleetReportsZeros) {
  const FleetAccuracyStats fleet = aggregate_fleet({});
  EXPECT_TRUE(fleet.hosts.empty());
  EXPECT_EQ(fleet.observations, 0u);
  EXPECT_EQ(fleet.rolling_mse, 0.0);
  EXPECT_EQ(fleet.hosts_drifted, 0u);
}

// ---------------------------------------------------------------------------
// Engine-level contracts (same shared predictor pattern as
// serve_engine_test).

const core::StableTemperaturePredictor& shared_predictor() {
  static const core::StableTemperaturePredictor predictor = [] {
    sim::ScenarioRanges ranges;
    ranges.duration_s = 1200.0;
    ranges.sample_interval_s = 10.0;
    core::StableTrainOptions options;
    ml::SvrParams params;
    params.kernel.gamma = 1.0 / 32;
    params.c = 512.0;
    params.epsilon = 0.05;
    options.fixed_params = params;
    return core::StableTemperaturePredictor::train(
        core::generate_corpus(ranges, 80, 73), options);
  }();
  return predictor;
}

mgmt::MonitoredConfig busy_config() {
  mgmt::MonitoredConfig config;
  config.server = sim::make_server_spec("medium");
  config.fans = 4;
  sim::VmConfig burn;
  burn.vcpus = 8;
  burn.memory_gb = 8.0;
  burn.task = sim::TaskType::kCpuBurn;
  config.vms = {burn, burn};
  config.env_temp_c = 23.0;
  return config;
}

mgmt::MonitoredConfig idle_config() {
  mgmt::MonitoredConfig config = busy_config();
  sim::VmConfig idle;
  idle.vcpus = 2;
  idle.memory_gb = 4.0;
  idle.task = sim::TaskType::kIdle;
  config.vms = {idle};
  return config;
}

serve::FleetEngineOptions manual_options(std::size_t shards) {
  serve::FleetEngineOptions options;
  options.shards = shards;
  options.drain = serve::DrainMode::kManual;
  options.backpressure = serve::BackpressurePolicy::kDropNewest;
  options.accuracy_window = 32;
  return options;
}

struct RunResult {
  FleetAccuracyStats report;
  std::vector<double> forecasts;
};

// One fixed 6-host, 40-step telemetry stream; the tests below replay it
// under different engine configurations and demand identical results.
RunResult run_fixed_stream(serve::FleetEngineOptions options) {
  serve::FleetEngine engine(shared_predictor(), options);
  std::vector<serve::HostHandle> handles;
  std::vector<serve::ForecastRequest> requests;
  for (int i = 0; i < 6; ++i) {
    handles.push_back(engine.register_host(
        "host-" + std::to_string(i),
        i % 2 == 0 ? busy_config() : idle_config(), 0.0, 22.0 + i));
    requests.push_back(serve::ForecastRequest{handles.back(), 120.0});
  }
  for (int step = 1; step <= 40; ++step) {
    std::vector<serve::TelemetryEvent> batch;
    for (int i = 0; i < 6; ++i) {
      batch.push_back(serve::TelemetryEvent::observe(
          handles[i], step * 15.0, 25.0 + i + 0.2 * step));
    }
    engine.ingest_batch(std::move(batch));
    engine.flush();
  }
  RunResult result;
  result.forecasts = engine.forecast_batch(requests);
  result.report = engine.accuracy_report();
  return result;
}

// Bitwise equality of everything except the cache/queue diagnostics,
// which legitimately vary with shard count and cache configuration.
void expect_accuracy_equal(const FleetAccuracyStats& a,
                           const FleetAccuracyStats& b) {
  ASSERT_EQ(a.hosts.size(), b.hosts.size());
  for (std::size_t i = 0; i < a.hosts.size(); ++i) {
    const HostAccuracyStats& x = a.hosts[i];
    const HostAccuracyStats& y = b.hosts[i];
    EXPECT_EQ(x.host_id, y.host_id);
    EXPECT_EQ(x.observations, y.observations);
    EXPECT_EQ(x.in_window, y.in_window);
    EXPECT_EQ(x.rolling_mse, y.rolling_mse);
    EXPECT_EQ(x.rolling_mae, y.rolling_mae);
    EXPECT_EQ(x.rolling_mean_dif, y.rolling_mean_dif);
    EXPECT_EQ(x.gamma, y.gamma);
    EXPECT_EQ(x.gamma_drift, y.gamma_drift);
    EXPECT_EQ(x.drift_positive, y.drift_positive);
    EXPECT_EQ(x.drift_negative, y.drift_negative);
    EXPECT_EQ(x.drifted, y.drifted);
  }
  EXPECT_EQ(a.observations, b.observations);
  EXPECT_EQ(a.samples_in_window, b.samples_in_window);
  EXPECT_EQ(a.rolling_mse, b.rolling_mse);
  EXPECT_EQ(a.rolling_mae, b.rolling_mae);
  EXPECT_EQ(a.rolling_mean_dif, b.rolling_mean_dif);
  EXPECT_EQ(a.hosts_drifted, b.hosts_drifted);
}

TEST(EngineAccuracyTest, MatchesStandaloneCoreReplica) {
  // One engine-managed host against a hand-rolled replica built from the
  // same core components (Eq. 5–8 tracker + CUSUM + rolling window) fed
  // the identical observation stream: every reported number must agree.
  serve::FleetEngineOptions options = manual_options(1);
  serve::FleetEngine engine(shared_predictor(), options);
  const mgmt::MonitoredConfig config = busy_config();
  const serve::HostHandle h =
      engine.register_host("h1", config, 0.0, 23.0);

  std::vector<double> features;
  std::vector<double> scaled;
  core::encode_features(
      core::make_record_inputs(config.server, config.vms, config.fans,
                               config.env_temp_c),
      features);
  const double psi =
      shared_predictor().predict_from_features(features, scaled);
  core::DynamicTemperaturePredictor replica(options.dynamic);
  replica.begin(0.0, 23.0, psi);
  core::CusumDetector cusum(options.drift_slack_c,
                            options.drift_threshold_c);
  HostAccuracy accuracy(options.accuracy_window);

  for (int step = 1; step <= 40; ++step) {
    const double t = step * 15.0;
    const double measured = 30.0 + 0.15 * t;  // strays: exercises CUSUM
    const double dif = measured - replica.predict_at(t);
    cusum.observe(dif);
    replica.observe(t, measured);
    accuracy.record(dif, replica.calibration());
    engine.ingest(serve::TelemetryEvent::observe(h, t, measured));
  }
  engine.flush();

  const FleetAccuracyStats fleet = engine.accuracy_report();
  ASSERT_EQ(fleet.hosts.size(), 1u);
  const HostAccuracyStats& host = fleet.hosts[0];
  EXPECT_EQ(host.host_id, "h1");
  EXPECT_EQ(host.observations, accuracy.observations());
  EXPECT_EQ(host.in_window, accuracy.in_window());
  EXPECT_EQ(host.rolling_mse, accuracy.rolling_mse());
  EXPECT_EQ(host.rolling_mae, accuracy.rolling_mae());
  EXPECT_EQ(host.rolling_mean_dif, accuracy.rolling_mean_dif());
  EXPECT_EQ(host.gamma, replica.calibration());
  EXPECT_EQ(host.gamma, engine.calibration_of(h));
  EXPECT_EQ(host.gamma_drift, accuracy.gamma_drift());
  EXPECT_EQ(host.drift_positive, cusum.positive_sum());
  EXPECT_EQ(host.drift_negative, cusum.negative_sum());
  EXPECT_EQ(host.drifted, cusum.drifted());
  EXPECT_TRUE(host.drifted);  // the ramp is a genuine mean shift
  EXPECT_EQ(fleet.hosts_drifted, 1u);
  EXPECT_EQ(fleet.rolling_mse, host.rolling_mse);  // single host
}

TEST(EngineAccuracyTest, IdenticalWithAndWithoutPsiCache) {
  serve::FleetEngineOptions cached = manual_options(2);
  serve::FleetEngineOptions uncached = manual_options(2);
  uncached.psi_cache_capacity = 0;
  const RunResult with_cache = run_fixed_stream(cached);
  const RunResult without_cache = run_fixed_stream(uncached);
  EXPECT_EQ(with_cache.forecasts, without_cache.forecasts);
  expect_accuracy_equal(with_cache.report, without_cache.report);
  EXPECT_EQ(without_cache.report.psi_cache_hits, 0u);
}

TEST(EngineAccuracyTest, ReportIsDeterministicAcrossShardCounts) {
  const RunResult one = run_fixed_stream(manual_options(1));
  const RunResult seven = run_fixed_stream(manual_options(7));
  EXPECT_EQ(one.forecasts, seven.forecasts);
  expect_accuracy_equal(one.report, seven.report);
}

TEST(EngineAccuracyTest, TracingDoesNotPerturbResults) {
  // The acceptance contract: forecasts and accuracy stats are bitwise
  // identical whether the span recorder is enabled or not.
  const RunResult untraced = run_fixed_stream(manual_options(3));
  TraceRecorder& recorder = global_trace();
  recorder.clear();
  recorder.set_enabled(true);
  const RunResult traced = run_fixed_stream(manual_options(3));
  recorder.set_enabled(false);
  EXPECT_GT(recorder.event_count(), 0u);  // the hot path really recorded
  recorder.clear();
  EXPECT_EQ(untraced.forecasts, traced.forecasts);
  expect_accuracy_equal(untraced.report, traced.report);
}

}  // namespace
}  // namespace vmtherm::obs
