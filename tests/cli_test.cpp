// Tests for the vmtherm CLI: argument parsing and end-to-end command runs
// (driven through run_cli with temp files, no subprocesses).

#include "cli/commands.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "cli/args.h"

namespace vmtherm::cli {
namespace {

// ------------------------------------------------------------- args ------

CommandSpec demo_spec() {
  CommandSpec spec("demo", "demo command");
  spec.add(make_option("alpha", "a required value", true));
  spec.add(make_option("beta", "an optional value", false, false, false, "7"));
  spec.add(make_option("gamma", "a flag", false, true));
  spec.add(make_option("item", "repeatable", false, false, true));
  return spec;
}

TEST(ArgsTest, ParsesValuesFlagsAndRepeats) {
  const auto parsed = demo_spec().parse(
      {"--alpha", "5", "--gamma", "--item", "a", "--item=b"});
  EXPECT_EQ(parsed.get("alpha"), "5");
  EXPECT_EQ(parsed.get("beta"), "7");  // default
  EXPECT_TRUE(parsed.get_flag("gamma"));
  const auto items = parsed.get_all("item");
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0], "a");
  EXPECT_EQ(items[1], "b");
}

TEST(ArgsTest, EqualsSyntax) {
  const auto parsed = demo_spec().parse({"--alpha=hello"});
  EXPECT_EQ(parsed.get("alpha"), "hello");
}

TEST(ArgsTest, TypedAccessors) {
  const auto parsed = demo_spec().parse({"--alpha", "2.5", "--beta", "42"});
  EXPECT_DOUBLE_EQ(parsed.get_double("alpha"), 2.5);
  EXPECT_EQ(parsed.get_long("beta"), 42);
  EXPECT_FALSE(parsed.get_flag("gamma"));
}

TEST(ArgsTest, TypedAccessorErrors) {
  const auto parsed = demo_spec().parse({"--alpha", "abc"});
  EXPECT_THROW((void)parsed.get_double("alpha"), ConfigError);
  EXPECT_THROW((void)parsed.get_long("alpha"), ConfigError);
}

TEST(ArgsTest, MissingRequiredThrows) {
  EXPECT_THROW((void)demo_spec().parse({}), ConfigError);
}

TEST(ArgsTest, UnknownOptionThrows) {
  EXPECT_THROW((void)demo_spec().parse({"--alpha", "1", "--zeta", "2"}),
               ConfigError);
}

TEST(ArgsTest, MissingValueThrows) {
  EXPECT_THROW((void)demo_spec().parse({"--alpha"}), ConfigError);
}

TEST(ArgsTest, DuplicateNonRepeatableThrows) {
  EXPECT_THROW((void)demo_spec().parse({"--alpha", "1", "--alpha", "2"}),
               ConfigError);
}

TEST(ArgsTest, FlagWithValueThrows) {
  EXPECT_THROW((void)demo_spec().parse({"--alpha", "1", "--gamma=yes"}),
               ConfigError);
}

TEST(ArgsTest, PositionalTokenThrows) {
  EXPECT_THROW((void)demo_spec().parse({"positional"}), ConfigError);
}

TEST(ArgsTest, UndeclaredQueryThrows) {
  const auto parsed = demo_spec().parse({"--alpha", "1"});
  EXPECT_THROW((void)parsed.get("zeta"), ConfigError);
}

TEST(ArgsTest, UsageMentionsEveryOption) {
  const std::string usage = demo_spec().usage();
  EXPECT_NE(usage.find("--alpha"), std::string::npos);
  EXPECT_NE(usage.find("--beta"), std::string::npos);
  EXPECT_NE(usage.find("(required)"), std::string::npos);
  EXPECT_NE(usage.find("default: 7"), std::string::npos);
}

// --------------------------------------------------------- vm specs ------

TEST(VmSpecTest, ParsesWellFormed) {
  const auto parts = parse_vm_spec("cpu_burn:4:8.5");
  EXPECT_EQ(parts.task, "cpu_burn");
  EXPECT_EQ(parts.vcpus, 4);
  EXPECT_DOUBLE_EQ(parts.memory_gb, 8.5);
}

TEST(VmSpecTest, RejectsMalformed) {
  EXPECT_THROW((void)parse_vm_spec("cpu_burn"), ConfigError);
  EXPECT_THROW((void)parse_vm_spec("cpu_burn:4"), ConfigError);
  EXPECT_THROW((void)parse_vm_spec("cpu_burn:x:8"), ConfigError);
  EXPECT_THROW((void)parse_vm_spec("cpu_burn:0:8"), ConfigError);
  EXPECT_THROW((void)parse_vm_spec("cpu_burn:4:-1"), ConfigError);
}

// ----------------------------------------------------------- run_cli -----

struct CliResult {
  int code = 0;
  std::string out;
  std::string err;
};

CliResult run(const std::vector<std::string>& args) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = run_cli(args, out, err);
  return {code, out.str(), err.str()};
}

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(RunCliTest, NoArgsPrintsHelpAndFails) {
  const auto result = run({});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.out.find("commands:"), std::string::npos);
}

TEST(RunCliTest, HelpSucceeds) {
  const auto result = run({"help"});
  EXPECT_EQ(result.code, 0);
  EXPECT_NE(result.out.find("simulate"), std::string::npos);
}

TEST(RunCliTest, HelpForCommand) {
  const auto result = run({"help", "train"});
  EXPECT_EQ(result.code, 0);
  EXPECT_NE(result.out.find("--data"), std::string::npos);
}

TEST(RunCliTest, HelpForUnknownCommandFails) {
  const auto result = run({"help", "frobnicate"});
  EXPECT_EQ(result.code, 1);
}

TEST(RunCliTest, UnknownCommandFails) {
  const auto result = run({"frobnicate"});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("unknown command"), std::string::npos);
}

TEST(RunCliTest, UserErrorIsReportedNotThrown) {
  const auto result = run({"train", "--model", "x"});  // missing --data
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("--data"), std::string::npos);
}

TEST(RunCliTest, MissingDataFileIsUserError) {
  const auto result = run({"train", "--data", "/nonexistent/r.csv",
                           "--model", temp_path("never.model")});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("cannot open"), std::string::npos);
}

TEST(RunCliTest, FullPipelineSimulateTrainPredictEvaluate) {
  const std::string records = temp_path("vmtherm_cli_test_records.csv");
  const std::string model = temp_path("vmtherm_cli_test_model.txt");

  auto result = run({"simulate", "--count", "25", "--seed", "9", "--out",
                     records, "--duration", "1200"});
  ASSERT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("wrote 25 records"), std::string::npos);

  result = run({"train", "--data", records, "--model", model, "--fast"});
  ASSERT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("model saved"), std::string::npos);

  result = run({"predict", "--model", model, "--server", "medium", "--fans",
                "4", "--env", "23", "--vm", "cpu_burn:4:8", "--vm",
                "idle:2:4"});
  ASSERT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("predicted stable CPU temp"), std::string::npos);

  result = run({"evaluate", "--model", model, "--data", records});
  ASSERT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("mse"), std::string::npos);

  std::filesystem::remove(records);
  std::filesystem::remove(model);
}

TEST(RunCliTest, TrainThreadsProducesIdenticalModelAndOutput) {
  // --threads must not change anything observable: same stdout, same model
  // file bytes as the serial run.
  const std::string records = temp_path("vmtherm_cli_test_records_thr.csv");
  const std::string model1 = temp_path("vmtherm_cli_test_model_thr1.txt");
  const std::string model4 = temp_path("vmtherm_cli_test_model_thr4.txt");
  ASSERT_EQ(run({"simulate", "--count", "25", "--seed", "9", "--out", records,
                 "--duration", "1200"})
                .code,
            0);

  const auto serial = run({"train", "--data", records, "--model", model1,
                           "--folds", "2", "--threads", "1"});
  ASSERT_EQ(serial.code, 0) << serial.err;
  const auto threaded = run({"train", "--data", records, "--model", model4,
                             "--folds", "2", "--threads", "4"});
  ASSERT_EQ(threaded.code, 0) << threaded.err;
  // Identical up to the echoed output path on the last line.
  const auto strip_path_line = [](const std::string& s) {
    return s.substr(0, s.find("model saved to "));
  };
  EXPECT_EQ(strip_path_line(serial.out), strip_path_line(threaded.out));
  EXPECT_FALSE(strip_path_line(serial.out).empty());

  const auto slurp = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
  };
  const std::string bytes1 = slurp(model1);
  ASSERT_FALSE(bytes1.empty());
  EXPECT_EQ(bytes1, slurp(model4));

  std::filesystem::remove(records);
  std::filesystem::remove(model1);
  std::filesystem::remove(model4);
}

TEST(RunCliTest, TrainRejectsNegativeThreads) {
  const auto result = run({"train", "--data", "r.csv", "--model", "m.txt",
                           "--threads", "-2"});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("--threads"), std::string::npos);
}

TEST(RunCliTest, PredictRejectsBadTaskName) {
  const std::string records = temp_path("vmtherm_cli_test_records2.csv");
  const std::string model = temp_path("vmtherm_cli_test_model2.txt");
  ASSERT_EQ(run({"simulate", "--count", "12", "--seed", "2", "--out", records,
                 "--duration", "1200"})
                .code,
            0);
  ASSERT_EQ(run({"train", "--data", records, "--model", model, "--fast"}).code,
            0);
  const auto result = run({"predict", "--model", model, "--server", "medium",
                           "--fans", "4", "--env", "23", "--vm",
                           "quantum_miner:4:8"});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("unknown task type"), std::string::npos);
  std::filesystem::remove(records);
  std::filesystem::remove(model);
}

TEST(RunCliTest, TbreakReportsRecommendation) {
  const auto result = run({"tbreak", "--count", "6", "--seed", "3", "--fans",
                           "4"});
  ASSERT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("recommended t_break"), std::string::npos);
  EXPECT_NE(result.out.find("600 s"), std::string::npos);
}

TEST(RunCliTest, SimulatePinnedFansRespected) {
  const std::string records = temp_path("vmtherm_cli_test_records3.csv");
  ASSERT_EQ(run({"simulate", "--count", "8", "--seed", "4", "--out", records,
                 "--duration", "1200", "--fans", "2"})
                .code,
            0);
  // Read back and confirm every record has fan_count == 2.
  std::ifstream in(records);
  std::string header;
  std::getline(in, header);
  EXPECT_NE(header.find("fan_count"), std::string::npos);
  std::filesystem::remove(records);
}


TEST(RunCliTest, DynamicCommandComparesCalibration) {
  const std::string records = temp_path("vmtherm_cli_test_records4.csv");
  const std::string model = temp_path("vmtherm_cli_test_model4.txt");
  ASSERT_EQ(run({"simulate", "--count", "40", "--seed", "6", "--out", records,
                 "--duration", "1200"})
                .code,
            0);
  ASSERT_EQ(run({"train", "--data", records, "--model", model, "--fast"}).code,
            0);
  const auto result = run({"dynamic", "--model", model, "--seed", "3",
                           "--gap", "60", "--update", "15"});
  ASSERT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("with calibration"), std::string::npos);
  EXPECT_NE(result.out.find("without calibration"), std::string::npos);
  EXPECT_NE(result.out.find("calibration lowers mse"), std::string::npos);
  std::filesystem::remove(records);
  std::filesystem::remove(model);
}

// Pulls the value of one `print_kv` line ("  key:   value") out of a
// command's stdout.
std::string kv_value(const std::string& out, const std::string& key) {
  const auto pos = out.find("  " + key + ":");
  if (pos == std::string::npos) return {};
  const auto eol = out.find('\n', pos);
  std::string line = out.substr(pos, eol - pos);
  line.erase(0, line.find(':') + 1);
  line.erase(0, line.find_first_not_of(' '));
  return line;
}

TEST(RunCliTest, ServeStatsAndTraceAgreeOnTheReplayDigest) {
  const std::string records = temp_path("vmtherm_cli_test_records5.csv");
  const std::string model = temp_path("vmtherm_cli_test_model5.txt");
  const std::string trace_file = temp_path("vmtherm_cli_test_trace.json");
  ASSERT_EQ(run({"simulate", "--count", "25", "--seed", "9", "--out", records,
                 "--duration", "1200"})
                .code,
            0);
  ASSERT_EQ(run({"train", "--data", records, "--model", model, "--fast"}).code,
            0);
  const std::vector<std::string> replay = {"--model", model,   "--hosts", "8",
                                           "--steps", "30",    "--shards", "3",
                                           "--seed",  "11"};
  const auto with_command = [&replay](const std::string& command,
                                      std::vector<std::string> extra) {
    std::vector<std::string> args{command};
    args.insert(args.end(), replay.begin(), replay.end());
    args.insert(args.end(), extra.begin(), extra.end());
    return run(args);
  };

  const auto stats = with_command("serve-stats", {"--window", "16"});
  ASSERT_EQ(stats.code, 0) << stats.err;
  EXPECT_NE(stats.out.find("fleet rolling mse"), std::string::npos);
  EXPECT_NE(stats.out.find("g_drift"), std::string::npos);
  EXPECT_EQ(kv_value(stats.out, "hosts"), "8");

  // Tracing must not perturb the replay: same forecast digest with the
  // recorder on (trace) and off (serve-stats).
  const auto traced = with_command("trace", {"--out", trace_file});
  ASSERT_EQ(traced.code, 0) << traced.err;
  const std::string digest = kv_value(stats.out, "forecast digest");
  ASSERT_EQ(digest.size(), 16u);
  EXPECT_EQ(kv_value(traced.out, "forecast digest"), digest);
  EXPECT_NE(traced.out.find("serve.observe"), std::string::npos);
  EXPECT_NE(kv_value(traced.out, "trace events"), "0");

  // The exported file is a Chrome trace-event document.
  std::ifstream in(trace_file, std::ios::binary);
  std::ostringstream oss;
  oss << in.rdbuf();
  const std::string trace_json = oss.str();
  EXPECT_EQ(trace_json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(trace_json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace_json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);

  // JSON mode reports the same fleet in machine-readable form.
  const auto json = with_command("serve-stats", {"--window", "16", "--json"});
  ASSERT_EQ(json.code, 0) << json.err;
  EXPECT_EQ(json.out.rfind("{\"fleet\":{\"hosts\":8,", 0), 0u);
  EXPECT_NE(json.out.find("\"rolling_mse\":"), std::string::npos);
  EXPECT_NE(json.out.find("\"host_id\":"), std::string::npos);
  EXPECT_NE(json.out.find("\"gamma_drift\":"), std::string::npos);

  std::filesystem::remove(records);
  std::filesystem::remove(model);
  std::filesystem::remove(trace_file);
}

TEST(RunCliTest, ServeStatsRejectsBadWindow) {
  const auto result = run({"serve-stats", "--model", "m.txt", "--window", "0"});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("--window"), std::string::npos);
}

}  // namespace
}  // namespace vmtherm::cli
