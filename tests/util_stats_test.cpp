// Tests for util/stats: RunningStats, metrics, quantiles.

#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/error.h"
#include "util/rng.h"

namespace vmtherm {
namespace {

TEST(RunningStatsTest, EmptyDefaults) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStatsTest, MatchesNaiveComputation) {
  Rng rng(1);
  std::vector<double> xs;
  RunningStats s;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-10.0, 10.0);
    xs.push_back(x);
    s.add(x);
  }
  EXPECT_NEAR(s.mean(), mean(xs), 1e-9);
  EXPECT_NEAR(s.variance(), variance(xs), 1e-9);
}

TEST(RunningStatsTest, MinMaxTracked) {
  RunningStats s;
  s.add(3.0);
  s.add(-1.0);
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.min(), -1.0);
  EXPECT_DOUBLE_EQ(s.max(), 7.0);
}

TEST(RunningStatsTest, SampleVarianceUsesNMinusOne) {
  RunningStats s;
  s.add(1.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 1.0);         // population: /2
  EXPECT_DOUBLE_EQ(s.sample_variance(), 2.0);  // sample: /1
}

TEST(RunningStatsTest, MergeEqualsSequential) {
  Rng rng(2);
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_NEAR(empty.mean(), 1.5, 1e-12);
}

TEST(StatsFreeFunctionsTest, MeanAndVariance) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(variance(xs), 1.25);
  EXPECT_DOUBLE_EQ(stddev(xs), std::sqrt(1.25));
}

TEST(StatsFreeFunctionsTest, EmptyInputs) {
  const std::vector<double> empty;
  EXPECT_EQ(mean(empty), 0.0);
  EXPECT_EQ(variance(empty), 0.0);
  EXPECT_EQ(quantile(empty, 0.5), 0.0);
}

TEST(StatsFreeFunctionsTest, QuantileInterpolates) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.125), 1.5);
}

TEST(StatsFreeFunctionsTest, QuantileUnsortedInput) {
  const std::vector<double> xs = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
}

TEST(StatsFreeFunctionsTest, QuantileClampsQ) {
  const std::vector<double> xs = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(xs, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.5), 2.0);
}

TEST(MetricsTest, MseKnownValue) {
  const std::vector<double> pred = {1.0, 2.0, 3.0};
  const std::vector<double> act = {2.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(mse(pred, act), (1.0 + 0.0 + 4.0) / 3.0);
  EXPECT_DOUBLE_EQ(rmse(pred, act), std::sqrt(5.0 / 3.0));
  EXPECT_DOUBLE_EQ(mae(pred, act), 1.0);
  EXPECT_DOUBLE_EQ(max_abs_error(pred, act), 2.0);
}

TEST(MetricsTest, PerfectPredictionIsZero) {
  const std::vector<double> v = {1.0, 5.0, -3.0};
  EXPECT_DOUBLE_EQ(mse(v, v), 0.0);
  EXPECT_DOUBLE_EQ(mae(v, v), 0.0);
  EXPECT_DOUBLE_EQ(r_squared(v, v), 1.0);
}

TEST(MetricsTest, SizeMismatchThrows) {
  const std::vector<double> a = {1.0, 2.0};
  const std::vector<double> b = {1.0};
  EXPECT_THROW((void)mse(a, b), DataError);
  EXPECT_THROW((void)mae(a, b), DataError);
  EXPECT_THROW((void)r_squared(a, b), DataError);
}

TEST(MetricsTest, EmptyThrows) {
  const std::vector<double> empty;
  EXPECT_THROW((void)mse(empty, empty), DataError);
}

TEST(MetricsTest, RSquaredZeroVarianceActual) {
  const std::vector<double> pred = {1.0, 2.0};
  const std::vector<double> act = {3.0, 3.0};
  EXPECT_DOUBLE_EQ(r_squared(pred, act), 0.0);
}

TEST(MetricsTest, RSquaredMeanPredictorIsZero) {
  const std::vector<double> act = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> pred(4, 2.5);
  EXPECT_NEAR(r_squared(pred, act), 0.0, 1e-12);
}

TEST(MetricsTest, PearsonPerfectCorrelation) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  const std::vector<double> ys = {2.0, 4.0, 6.0};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  const std::vector<double> neg = {-2.0, -4.0, -6.0};
  EXPECT_NEAR(pearson(xs, neg), -1.0, 1e-12);
}

TEST(MetricsTest, PearsonConstantSeriesIsZero) {
  const std::vector<double> xs = {1.0, 1.0, 1.0};
  const std::vector<double> ys = {2.0, 4.0, 6.0};
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
}

TEST(MetricsTest, AbsResiduals) {
  const std::vector<double> pred = {1.0, 5.0};
  const std::vector<double> act = {3.0, 4.0};
  const auto res = abs_residuals(pred, act);
  ASSERT_EQ(res.size(), 2u);
  EXPECT_DOUBLE_EQ(res[0], 2.0);
  EXPECT_DOUBLE_EQ(res[1], 1.0);
}

}  // namespace
}  // namespace vmtherm
