// Tests for tools/lint (vmtherm-lint): each catalog rule fires on known-bad
// fixture input at the expected line, the lexer keeps banned names in
// comments/strings from matching, suppressions are honored (and stale ones
// reported), and the JSON report is well-formed and deterministic.

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lexer.h"
#include "lint/report.h"
#include "lint/rules.h"

namespace vmtherm::lint {
namespace {

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(VMTHERM_LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture: " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// 1-based line of the first line containing `needle`.
int line_of(const std::string& source, const std::string& needle) {
  std::istringstream in(source);
  std::string line;
  int number = 0;
  while (std::getline(in, line)) {
    ++number;
    if (line.find(needle) != std::string::npos) return number;
  }
  ADD_FAILURE() << "marker not found: " << needle;
  return -1;
}

bool has_violation(const std::vector<Violation>& violations,
                   const std::string& rule, int line) {
  return std::any_of(violations.begin(), violations.end(),
                     [&](const Violation& v) {
                       return v.rule == rule && v.line == line;
                     });
}

std::size_t count_rule(const std::vector<Violation>& violations,
                       const std::string& rule) {
  return static_cast<std::size_t>(
      std::count_if(violations.begin(), violations.end(),
                    [&](const Violation& v) { return v.rule == rule; }));
}

// --- lexer --------------------------------------------------------------

TEST(LintLexerTest, SkipsCommentsAndStringsButKeepsThemAsTokens) {
  const std::string src =
      "int a; // rand() in a comment\n"
      "const char* s = \"getenv inside\"; /* steady_clock */\n";
  const LexedFile lexed = lex(src);
  std::size_t comments = 0, strings = 0;
  for (const Token& t : lexed.tokens) {
    if (t.kind == TokenKind::kComment) ++comments;
    if (t.kind == TokenKind::kString) ++strings;
    if (t.kind == TokenKind::kIdentifier) {
      EXPECT_NE(t.text, "rand");
      EXPECT_NE(t.text, "getenv");
      EXPECT_NE(t.text, "steady_clock");
    }
  }
  EXPECT_EQ(comments, 2u);
  EXPECT_EQ(strings, 1u);
}

TEST(LintLexerTest, RawStringsAndEscapesDoNotLeakIdentifiers) {
  const std::string src =
      "auto r = R\"(rand() \" system_clock)\";\n"
      "auto e = \"a \\\" rand\";\n"
      "char c = '\\'';\n"
      "int after = 1;\n";
  const LexedFile lexed = lex(src);
  bool saw_after = false;
  for (const Token& t : lexed.tokens) {
    if (t.kind == TokenKind::kIdentifier) {
      EXPECT_NE(t.text, "rand");
      EXPECT_NE(t.text, "system_clock");
      if (t.text == "after") saw_after = true;
    }
  }
  EXPECT_TRUE(saw_after);
}

TEST(LintLexerTest, TracksLinesAcrossBlockCommentsAndRawStrings) {
  const std::string src = "/* line1\nline2 */\nint x;\n";
  const LexedFile lexed = lex(src);
  const auto it =
      std::find_if(lexed.tokens.begin(), lexed.tokens.end(),
                   [](const Token& t) { return t.text == "x"; });
  ASSERT_NE(it, lexed.tokens.end());
  EXPECT_EQ(it->line, 3);
}

TEST(LintLexerTest, MarksPreprocessorTokens) {
  const std::string src = "#include <mutex>\nstd::mutex m;\n";
  const LexedFile lexed = lex(src);
  bool saw_pp_mutex = false, saw_code_mutex = false;
  for (const Token& t : lexed.tokens) {
    if (t.text == "mutex") {
      (t.in_pp_directive ? saw_pp_mutex : saw_code_mutex) = true;
    }
  }
  EXPECT_TRUE(saw_pp_mutex);
  EXPECT_TRUE(saw_code_mutex);
}

// --- catalog ------------------------------------------------------------

TEST(LintCatalogTest, RuleIdsAreUniqueAndKnown) {
  const auto& catalog = rule_catalog();
  ASSERT_FALSE(catalog.empty());
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    EXPECT_TRUE(is_known_rule(catalog[i].id));
    for (std::size_t j = i + 1; j < catalog.size(); ++j) {
      EXPECT_STRNE(catalog[i].id, catalog[j].id);
    }
  }
  EXPECT_FALSE(is_known_rule("no-such-rule"));
}

TEST(LintCatalogTest, ScopesMatchTheDocumentedLayout) {
  EXPECT_TRUE(in_determinism_scope("src/core/online.cpp"));
  EXPECT_TRUE(in_determinism_scope("src/serve/engine.cpp"));
  // The registry moved to src/obs; the serve alias header is back in scope
  // while the observability subsystem (wall-clock business) stays out.
  EXPECT_TRUE(in_determinism_scope("src/serve/metrics.h"));
  EXPECT_FALSE(in_determinism_scope("src/obs/metrics.cpp"));
  EXPECT_FALSE(in_determinism_scope("src/obs/trace.cpp"));
  EXPECT_FALSE(in_determinism_scope("src/util/rng.cpp"));  // seeded RNG home
  EXPECT_FALSE(in_determinism_scope("tests/foo.cpp"));

  EXPECT_TRUE(is_hot_path_file("src/serve/engine.cpp"));
  EXPECT_TRUE(is_hot_path_file("src/serve/shard.cpp"));
  EXPECT_TRUE(is_hot_path_file("src/serve/event.h"));
  EXPECT_TRUE(is_hot_path_file("src/serve/psi_cache.h"));
  EXPECT_TRUE(is_hot_path_file("src/ml/svr_inference.cpp"));
  EXPECT_TRUE(is_hot_path_file("src/ml/svr_inference.h"));
  EXPECT_TRUE(is_hot_path_file("src/obs/trace.h"));
  EXPECT_TRUE(is_hot_path_file("src/obs/trace.cpp"));
  EXPECT_TRUE(is_hot_path_file("src/obs/accuracy.h"));
  EXPECT_TRUE(is_hot_path_file("src/obs/accuracy.cpp"));
  EXPECT_FALSE(is_hot_path_file("src/serve/snapshot.cpp"));
  EXPECT_FALSE(is_hot_path_file("src/obs/chrome_trace.cpp"));  // cold export

  EXPECT_TRUE(in_header_scope("src/mgmt/monitor.h"));
  EXPECT_FALSE(in_header_scope("src/mgmt/monitor.cpp"));
  EXPECT_TRUE(in_concurrency_scope("src/serve/shard.h"));
  EXPECT_TRUE(in_concurrency_scope("src/obs/trace.h"));
  EXPECT_TRUE(in_concurrency_scope("src/obs/metrics.h"));
  EXPECT_FALSE(in_concurrency_scope("src/obs/trace.cpp"));
  EXPECT_FALSE(in_concurrency_scope("src/core/online.h"));
}

// --- determinism rules --------------------------------------------------

TEST(LintRulesTest, DeterminismRulesFireOnFixture) {
  const std::string src = read_fixture("det_bad.cpp");
  const auto violations = lint_source("src/core/fixture.cpp", src);
  EXPECT_TRUE(has_violation(violations, "det-random-device",
                            line_of(src, "std::random_device entropy")));
  EXPECT_TRUE(has_violation(violations, "det-rand",
                            line_of(src, "return rand() % 6")));
  EXPECT_TRUE(has_violation(violations, "det-clock",
                            line_of(src, "system_clock::now")));
  EXPECT_TRUE(has_violation(violations, "det-getenv",
                            line_of(src, "getenv(\"HOME\")")));
  EXPECT_TRUE(has_violation(violations, "det-locale",
                            line_of(src, "std::locale::global")));
}

TEST(LintRulesTest, DeterminismScopeIsPathDependent) {
  const std::string src = read_fixture("det_bad.cpp");
  // util/ and tests/ are outside the deterministic scope: no det-* rules.
  for (const auto& v : lint_source("src/util/fixture.cpp", src)) {
    EXPECT_NE(v.rule.substr(0, 4), "det-") << v.message;
  }
  for (const auto& v : lint_source("tests/fixture.cpp", src)) {
    EXPECT_NE(v.rule.substr(0, 4), "det-") << v.message;
  }
}

TEST(LintRulesTest, CommentsAndStringsNeverFire) {
  const std::string src = read_fixture("det_clean.cpp");
  const auto violations = lint_source("src/core/fixture.cpp", src);
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? ""
                             : format_diagnostic(violations.front()));
}

// --- hot-path rules -----------------------------------------------------

TEST(LintRulesTest, HotPathRulesFireOnFixture) {
  const std::string src = read_fixture("hot_bad.cpp");
  const auto violations = lint_source("src/serve/engine.cpp", src);
  EXPECT_TRUE(has_violation(violations, "hot-iostream",
                            line_of(src, "#include <iostream>")));
  EXPECT_TRUE(has_violation(violations, "hot-iostream",
                            line_of(src, "std::cout << id")));
  EXPECT_TRUE(has_violation(violations, "hot-string",
                            line_of(src, "\"host-\" + std::to_string")));
  EXPECT_TRUE(has_violation(violations, "hot-string",
                            line_of(src, "std::string(id)")));
  EXPECT_TRUE(has_violation(violations, "hot-require-string",
                            line_of(src, "require(ok, \"bad host: \" + id)")));
}

TEST(LintRulesTest, HotPathRulesOnlyApplyToHotFiles) {
  const std::string src = read_fixture("hot_bad.cpp");
  for (const auto& v : lint_source("src/serve/snapshot.cpp", src)) {
    EXPECT_NE(v.rule.substr(0, 4), "hot-") << v.message;
  }
}

TEST(LintRulesTest, ReferencesToStringTypesAreNotConstruction) {
  // Parameters, members and npos lookups must not fire — only temporaries.
  const std::string src =
      "void f(const std::string& s);\n"
      "bool g(const std::string& s) {\n"
      "  return s.find(' ') != std::string::npos;\n"
      "}\n";
  const auto violations = lint_source("src/serve/engine.cpp", src);
  EXPECT_EQ(count_rule(violations, "hot-string"), 0u);
}

// --- header rules -------------------------------------------------------

TEST(LintRulesTest, HeaderRulesFireOnFixture) {
  const std::string src = read_fixture("hdr_bad.h");
  const auto violations = lint_source("src/mgmt/fixture.h", src);
  EXPECT_TRUE(has_violation(violations, "hdr-pragma-once",
                            line_of(src, "#include <vector>")));
  EXPECT_TRUE(has_violation(violations, "hdr-using-namespace",
                            line_of(src, "using namespace std")));
}

TEST(LintRulesTest, IncludeGuardsSatisfyPragmaOnceRule) {
  const std::string src = read_fixture("hdr_guarded.h");
  const auto violations = lint_source("src/mgmt/guarded.h", src);
  EXPECT_EQ(count_rule(violations, "hdr-pragma-once"), 0u)
      << format_diagnostic(violations.front());
}

// --- concurrency rules --------------------------------------------------

TEST(LintRulesTest, ConcurrencyAnnotationsRequiredInServeHeaders) {
  const std::string src = read_fixture("conc_bad.h");
  const auto violations = lint_source("src/serve/fixture.h", src);
  EXPECT_TRUE(has_violation(violations, "conc-guard-comment",
                            line_of(src, "std::atomic<int> bare_counter_")));
  EXPECT_TRUE(has_violation(violations, "conc-guard-comment",
                            line_of(src, "std::mutex bare_mutex_")));
  // Annotated members and lock acquisitions never fire.
  EXPECT_EQ(count_rule(violations, "conc-guard-comment"), 2u);
  EXPECT_FALSE(has_violation(violations, "conc-guard-comment",
                             line_of(src, "std::lock_guard")));
  EXPECT_FALSE(has_violation(violations, "conc-guard-comment",
                             line_of(src, "std::mutex ok_mutex_")));
  EXPECT_FALSE(has_violation(violations, "conc-guard-comment",
                             line_of(src, "std::atomic<long> ok_counter_")));
}

TEST(LintRulesTest, ConcurrencyRuleSkipsNonServePaths) {
  const std::string src = read_fixture("conc_bad.h");
  const auto violations = lint_source("src/util/fixture.h", src);
  EXPECT_EQ(count_rule(violations, "conc-guard-comment"), 0u);
}

// --- suppressions -------------------------------------------------------

TEST(LintRulesTest, SuppressionsAreHonoredAndStaleOnesReported) {
  const std::string src = read_fixture("suppressed.cpp");
  const auto violations = lint_source("src/core/fixture.cpp", src);
  EXPECT_EQ(count_rule(violations, "det-clock"), 0u);
  EXPECT_EQ(count_rule(violations, "det-rand"), 0u);
  EXPECT_TRUE(has_violation(violations, "lint-bad-suppression",
                            line_of(src, "allow(no-such-rule)")));
}

TEST(LintRulesTest, SuppressionOnlyCoversItsOwnLine) {
  const std::string src =
      "int a = rand();  // vmtherm-lint: allow(det-rand)\n"
      "int b = rand();\n";
  const auto violations = lint_source("src/core/fixture.cpp", src);
  ASSERT_EQ(count_rule(violations, "det-rand"), 1u);
  EXPECT_TRUE(has_violation(violations, "det-rand", 2));
}

TEST(LintRulesTest, SuppressionListAllowsMultipleRules) {
  const std::string src =
      "// vmtherm-lint: allow(det-rand, det-clock)\n"
      "int a = rand() + std::chrono::steady_clock::now().time_since_epoch()"
      ".count();\n";
  const auto violations = lint_source("src/core/fixture.cpp", src);
  EXPECT_EQ(count_rule(violations, "det-rand"), 0u);
  EXPECT_EQ(count_rule(violations, "det-clock"), 0u);
}

// --- report -------------------------------------------------------------

TEST(LintReportTest, DiagnosticFormatIsGccStyle) {
  Violation v;
  v.file = "src/core/online.cpp";
  v.line = 42;
  v.rule = "det-rand";
  v.message = "no";
  EXPECT_EQ(format_diagnostic(v), "src/core/online.cpp:42: [det-rand] no");
}

TEST(LintReportTest, JsonReportIsWellFormedAndDeterministic) {
  Violation v;
  v.file = "src/a.cpp";
  v.line = 7;
  v.rule = "det-rand";
  v.message = "quote \" and \\ backslash\nnewline";
  const std::string a = to_json({v}, 3);
  const std::string b = to_json({v}, 3);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"catalog_version\": 2"), std::string::npos);
  EXPECT_NE(a.find("\"files_scanned\": 3"), std::string::npos);
  EXPECT_NE(a.find("\"violation_count\": 1"), std::string::npos);
  EXPECT_NE(a.find("\\\" and \\\\ backslash\\nnewline"), std::string::npos);
  // Every catalog rule is documented in the report.
  for (const auto& rule : rule_catalog()) {
    std::string quoted = "\"";
    quoted += rule.id;
    quoted += "\"";
    EXPECT_NE(a.find(quoted), std::string::npos);
  }
}

TEST(LintReportTest, EmptyViolationListSerializes) {
  const std::string json = to_json({}, 0);
  EXPECT_NE(json.find("\"violation_count\": 0"), std::string::npos);
}

}  // namespace
}  // namespace vmtherm::lint
