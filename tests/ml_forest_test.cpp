// Tests for ml/forest: CART forest regression.

#include "ml/forest.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"
#include "util/stats.h"

namespace vmtherm::ml {
namespace {

Dataset step_data(std::size_t n, std::uint64_t seed) {
  // Piecewise-constant target: trees should nail this.
  Rng rng(seed);
  Dataset data;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rng.uniform(0.0, 1.0);
    data.add(Sample{{x}, x < 0.5 ? 1.0 : 5.0});
  }
  return data;
}

Dataset smooth_data(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Dataset data;
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> x = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
    const double y = std::sin(2.0 * x[0]) + 0.5 * x[1];
    data.add(Sample{std::move(x), y});
  }
  return data;
}

ForestParams fast_params() {
  ForestParams params;
  params.n_trees = 30;
  return params;
}

TEST(ForestTest, EmptyTrainingSetThrows) {
  EXPECT_THROW((void)RandomForest::train(Dataset{}, fast_params()), DataError);
}

TEST(ForestTest, InvalidParamsRejected) {
  const auto data = step_data(20, 1);
  ForestParams params;
  params.n_trees = 0;
  EXPECT_THROW((void)RandomForest::train(data, params), ConfigError);
  params = ForestParams{};
  params.feature_fraction = 0.0;
  EXPECT_THROW((void)RandomForest::train(data, params), ConfigError);
  params = ForestParams{};
  params.feature_fraction = 1.5;
  EXPECT_THROW((void)RandomForest::train(data, params), ConfigError);
}

TEST(ForestTest, LearnsStepFunction) {
  const auto data = step_data(200, 2);
  const auto forest = RandomForest::train(data, fast_params());
  EXPECT_NEAR(forest.predict(std::vector<double>{0.2}), 1.0, 0.3);
  EXPECT_NEAR(forest.predict(std::vector<double>{0.8}), 5.0, 0.3);
}

TEST(ForestTest, ConstantTargetPredictsConstant) {
  Dataset data;
  for (int i = 0; i < 30; ++i) {
    data.add(Sample{{static_cast<double>(i)}, 7.0});
  }
  const auto forest = RandomForest::train(data, fast_params());
  EXPECT_DOUBLE_EQ(forest.predict(std::vector<double>{15.5}), 7.0);
}

TEST(ForestTest, SmoothTargetRSquared) {
  const auto train = smooth_data(400, 3);
  const auto test = smooth_data(100, 4);
  ForestParams params;
  params.n_trees = 60;
  params.feature_fraction = 1.0;
  const auto forest = RandomForest::train(train, params);
  const auto pred = forest.predict(test);
  EXPECT_GT(r_squared(pred, test.targets()), 0.85);
}

TEST(ForestTest, DeterministicGivenSeed) {
  const auto data = smooth_data(100, 5);
  const auto a = RandomForest::train(data, fast_params());
  const auto b = RandomForest::train(data, fast_params());
  for (double x = -1.0; x <= 1.0; x += 0.25) {
    const std::vector<double> q = {x, 0.0};
    ASSERT_DOUBLE_EQ(a.predict(q), b.predict(q));
  }
}

TEST(ForestTest, DifferentSeedsDifferentForests) {
  const auto data = smooth_data(100, 6);
  ForestParams pa = fast_params();
  ForestParams pb = fast_params();
  pb.seed = 999;
  const auto a = RandomForest::train(data, pa);
  const auto b = RandomForest::train(data, pb);
  double diff = 0.0;
  for (double x = -1.0; x <= 1.0; x += 0.1) {
    const std::vector<double> q = {x, 0.0};
    diff += std::abs(a.predict(q) - b.predict(q));
  }
  EXPECT_GT(diff, 1e-6);
}

TEST(ForestTest, TreeAndNodeCounts) {
  const auto data = step_data(100, 7);
  const auto forest = RandomForest::train(data, fast_params());
  EXPECT_EQ(forest.tree_count(), 30u);
  // A step function needs few nodes per tree but more than a single leaf.
  EXPECT_GT(forest.node_count(), forest.tree_count());
}

TEST(ForestTest, MaxDepthOneGivesStumps) {
  const auto data = step_data(200, 8);
  ForestParams params = fast_params();
  params.max_depth = 1;
  const auto forest = RandomForest::train(data, params);
  // Stumps: at most 3 nodes per tree.
  EXPECT_LE(forest.node_count(), forest.tree_count() * 3);
  // Still splits at 0.5 on this target.
  EXPECT_LT(forest.predict(std::vector<double>{0.1}),
            forest.predict(std::vector<double>{0.9}));
}

TEST(ForestTest, MinSamplesLeafLimitsGrowth) {
  const auto data = smooth_data(200, 9);
  ForestParams fine = fast_params();
  fine.min_samples_leaf = 1;
  ForestParams coarse = fast_params();
  coarse.min_samples_leaf = 50;
  const auto forest_fine = RandomForest::train(data, fine);
  const auto forest_coarse = RandomForest::train(data, coarse);
  EXPECT_GT(forest_fine.node_count(), forest_coarse.node_count());
}

TEST(ForestTest, NoBootstrapStillWorks) {
  const auto data = step_data(100, 10);
  ForestParams params = fast_params();
  params.bootstrap = false;
  params.feature_fraction = 1.0;
  const auto forest = RandomForest::train(data, params);
  EXPECT_NEAR(forest.predict(std::vector<double>{0.2}), 1.0, 0.2);
}

TEST(ForestTest, BatchPredictMatchesPointwise) {
  const auto data = smooth_data(60, 11);
  const auto forest = RandomForest::train(data, fast_params());
  const auto batch = forest.predict(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch[i], forest.predict(data[i].x));
  }
}

}  // namespace
}  // namespace vmtherm::ml
