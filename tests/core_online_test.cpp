// Tests for core/online: the deploy-observe-retrain loop.

#include "core/online.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/evaluator.h"

namespace vmtherm::core {
namespace {

OnlineTrainerOptions fast_options(std::size_t min_records = 20,
                                  std::size_t batch = 20) {
  OnlineTrainerOptions options;
  options.min_records_for_training = min_records;
  options.retrain_batch = batch;
  options.retrain_on_drift = false;  // drift tests opt in explicitly
  ml::SvrParams params;
  params.kernel.gamma = 1.0 / 32;
  params.c = 512.0;
  params.epsilon = 0.05;
  options.train_options.fixed_params = params;
  return options;
}

std::vector<Record> corpus(std::size_t n, std::uint64_t seed,
                           double resistance_scale = 1.0) {
  sim::ScenarioRanges ranges;
  ranges.duration_s = 1200.0;
  ranges.sample_interval_s = 10.0;
  sim::ScenarioSampler sampler(ranges, seed);
  auto configs = sampler.sample(n);
  for (auto& config : configs) {
    config.server.thermal.sink_to_ambient_resistance *= resistance_scale;
  }
  return profile_experiments(configs);
}

TEST(OnlineTrainerTest, OptionValidation) {
  OnlineTrainerOptions options = fast_options();
  options.min_records_for_training = 1;
  EXPECT_THROW(OnlineTrainer{options}, ConfigError);
  options = fast_options();
  options.retrain_batch = 0;
  EXPECT_THROW(OnlineTrainer{options}, ConfigError);
}

TEST(OnlineTrainerTest, NoModelBeforeMinRecords) {
  OnlineTrainer trainer(fast_options(20));
  const auto records = corpus(19, 1);
  for (const auto& r : records) {
    EXPECT_FALSE(trainer.add_record(r));
  }
  EXPECT_FALSE(trainer.has_model());
  EXPECT_THROW((void)trainer.model(), ConfigError);
  EXPECT_EQ(trainer.model_version(), 0u);
}

TEST(OnlineTrainerTest, InitialFitAtThreshold) {
  OnlineTrainer trainer(fast_options(20));
  const auto records = corpus(20, 2);
  bool retrained = false;
  for (const auto& r : records) retrained = trainer.add_record(r);
  EXPECT_TRUE(retrained);
  EXPECT_TRUE(trainer.has_model());
  EXPECT_EQ(trainer.model_version(), 1u);
  EXPECT_EQ(trainer.last_retrain_reason(), RetrainReason::kInitial);
}

TEST(OnlineTrainerTest, BatchRetrainsIncrementVersion) {
  OnlineTrainer trainer(fast_options(20, 10));
  const auto records = corpus(50, 3);
  for (const auto& r : records) trainer.add_record(r);
  // Fit at 20, then retrains at 30, 40, 50.
  EXPECT_EQ(trainer.model_version(), 4u);
  EXPECT_EQ(trainer.last_retrain_reason(), RetrainReason::kBatch);
  EXPECT_EQ(trainer.records_seen(), 50u);
}

TEST(OnlineTrainerTest, PrequentialTracksLiveModel) {
  OnlineTrainer trainer(fast_options(30, 1000));
  const auto records = corpus(60, 4);
  for (const auto& r : records) trainer.add_record(r);
  // 30 records scored prequentially after the fit at 30.
  EXPECT_EQ(trainer.prequential_count(), 30u);
  EXPECT_GT(trainer.prequential_mse(), 0.0);
  EXPECT_LT(trainer.prequential_mse(), 25.0);
}

TEST(OnlineTrainerTest, DriftTriggersEarlyRetrain) {
  auto options = fast_options(30, 1000);  // batch would never fire
  options.retrain_on_drift = true;
  options.drift_slack_c = 0.5;
  options.drift_threshold_c = 8.0;
  OnlineTrainer trainer(options);

  for (const auto& r : corpus(30, 5)) trainer.add_record(r);
  ASSERT_EQ(trainer.model_version(), 1u);

  // The datacenter changes: heatsinks degrade 40%. Residuals shift, the
  // detector fires, the trainer refits on a buffer that now includes the
  // new regime.
  bool drift_retrain = false;
  for (const auto& r : corpus(40, 6, /*resistance_scale=*/1.4)) {
    if (trainer.add_record(r) &&
        trainer.last_retrain_reason() == RetrainReason::kDrift) {
      drift_retrain = true;
      break;
    }
  }
  EXPECT_TRUE(drift_retrain);
  EXPECT_GE(trainer.model_version(), 2u);
}

TEST(OnlineTrainerTest, DriftPendingObservableWhenAutoRetrainOff) {
  auto options = fast_options(30, 100000);
  options.retrain_on_drift = false;
  OnlineTrainer trainer(options);
  for (const auto& r : corpus(30, 7)) trainer.add_record(r);
  for (const auto& r : corpus(40, 8, 1.4)) trainer.add_record(r);
  EXPECT_TRUE(trainer.drift_pending());
  EXPECT_EQ(trainer.model_version(), 1u);  // never retrained
}

TEST(OnlineTrainerTest, SlidingWindowCapsBuffer) {
  auto options = fast_options(20, 10);
  options.max_records = 25;
  OnlineTrainer trainer(options);
  for (const auto& r : corpus(60, 9)) trainer.add_record(r);
  EXPECT_LE(trainer.buffered_records(), 25u);
  EXPECT_TRUE(trainer.has_model());
}

TEST(OnlineTrainerTest, RetrainedModelAdaptsToNewRegime) {
  // After drift-retraining on the changed testbed, held-out error on the
  // new regime should be much lower than the stale model's error.
  auto options = fast_options(40, 100000);
  options.retrain_on_drift = true;
  options.max_records = 80;  // window: old records age out
  OnlineTrainer trainer(options);
  for (const auto& r : corpus(40, 10)) trainer.add_record(r);
  const auto stale = trainer.model();

  for (const auto& r : corpus(80, 11, 1.4)) trainer.add_record(r);
  ASSERT_GE(trainer.model_version(), 2u);
  const auto& fresh = trainer.model();

  const auto held_out = corpus(25, 12, 1.4);
  double se_stale = 0.0;
  double se_fresh = 0.0;
  for (const auto& r : held_out) {
    se_stale += std::pow(stale.predict(r) - r.stable_temp_c, 2);
    se_fresh += std::pow(fresh.predict(r) - r.stable_temp_c, 2);
  }
  EXPECT_LT(se_fresh, se_stale);
}

}  // namespace
}  // namespace vmtherm::core
