// Tests for core/drift: CUSUM residual drift detection.

#include "core/drift.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace vmtherm::core {
namespace {

TEST(CusumTest, InvalidParamsRejected) {
  EXPECT_THROW(CusumDetector(-0.1, 1.0), ConfigError);
  EXPECT_THROW(CusumDetector(0.1, 0.0), ConfigError);
  EXPECT_THROW(CusumDetector(0.1, -1.0), ConfigError);
}

TEST(CusumTest, NoDriftOnZeroMeanNoise) {
  // sigma = 0.5; k = sigma/2, h = 10 sigma: with this tuning the
  // in-control average run length is far beyond the horizon below.
  CusumDetector detector(0.25, 5.0);
  Rng rng(1);
  for (int i = 0; i < 20000; ++i) {
    detector.observe(rng.normal(0.0, 0.5));
  }
  EXPECT_FALSE(detector.drifted());
  EXPECT_EQ(detector.observation_count(), 20000u);
}

TEST(CusumTest, DetectsPositiveMeanShift) {
  CusumDetector detector(0.25, 5.0);
  Rng rng(2);
  // Clean period...
  for (int i = 0; i < 500; ++i) detector.observe(rng.normal(0.0, 0.5));
  ASSERT_FALSE(detector.drifted());
  // ...then the model goes stale by +1 C.
  bool fired = false;
  int steps_to_fire = 0;
  for (int i = 0; i < 200 && !fired; ++i) {
    fired = detector.observe(rng.normal(1.0, 0.5));
    ++steps_to_fire;
  }
  EXPECT_TRUE(fired);
  EXPECT_LT(steps_to_fire, 30);  // a 2-sigma shift fires fast
}

TEST(CusumTest, DetectsNegativeMeanShift) {
  CusumDetector detector(0.25, 5.0);
  Rng rng(3);
  for (int i = 0; i < 500; ++i) detector.observe(rng.normal(0.0, 0.5));
  ASSERT_FALSE(detector.drifted());
  bool fired = false;
  for (int i = 0; i < 200 && !fired; ++i) {
    fired = detector.observe(rng.normal(-1.0, 0.5));
  }
  EXPECT_TRUE(fired);
  EXPECT_GT(detector.negative_sum(), detector.positive_sum());
}

TEST(CusumTest, DriftLatchesUntilReset) {
  CusumDetector detector(0.0, 1.0);
  detector.observe(2.0);  // fires immediately
  EXPECT_TRUE(detector.drifted());
  detector.observe(0.0);
  EXPECT_TRUE(detector.drifted());  // latched
  detector.reset();
  EXPECT_FALSE(detector.drifted());
  EXPECT_EQ(detector.observation_count(), 0u);
  EXPECT_DOUBLE_EQ(detector.positive_sum(), 0.0);
}

TEST(CusumTest, SlackAbsorbsSmallBias) {
  // A bias smaller than the slack never accumulates.
  CusumDetector detector(0.5, 2.0);
  for (int i = 0; i < 10000; ++i) {
    detector.observe(0.4);  // |bias| < slack
  }
  EXPECT_FALSE(detector.drifted());
}

TEST(CusumTest, AccumulatorsNonNegative) {
  CusumDetector detector(0.1, 5.0);
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    detector.observe(rng.normal(0.0, 1.0));
    ASSERT_GE(detector.positive_sum(), 0.0);
    ASSERT_GE(detector.negative_sum(), 0.0);
  }
}

TEST(CusumTest, DetectionDelayScalesWithShiftSize) {
  auto delay_for_shift = [](double shift) {
    CusumDetector detector(0.25, 5.0);
    Rng rng(5);
    int steps = 0;
    bool fired = false;
    while (!fired && steps < 100000) {
      fired = detector.observe(rng.normal(shift, 0.5));
      ++steps;
    }
    return steps;
  };
  EXPECT_LT(delay_for_shift(2.0), delay_for_shift(0.6));
}

}  // namespace
}  // namespace vmtherm::core
