// Tests for util/table: alignment, formatting, errors.

#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.h"

namespace vmtherm {
namespace {

TEST(TableTest, EmptyHeadersThrow) {
  EXPECT_THROW(Table({}), ConfigError);
}

TEST(TableTest, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), ConfigError);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), ConfigError);
}

TEST(TableTest, RowCount) {
  Table t({"a"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TableTest, RendersHeaderSeparatorAndRows) {
  Table t({"col", "x"});
  t.add_row({"a", "1"});
  const std::string out = t.to_string();
  // header, separator, one row
  EXPECT_NE(out.find("col  x"), std::string::npos);
  EXPECT_NE(out.find("---  -"), std::string::npos);
  EXPECT_NE(out.find("a    1"), std::string::npos);
}

TEST(TableTest, ColumnsWidenToFitCells) {
  Table t({"h"});
  t.add_row({"longcell"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("--------"), std::string::npos);
}

TEST(TableTest, IndentPrefixesEveryLine) {
  Table t({"a"});
  t.add_row({"1"});
  const std::string out = t.to_string(4);
  std::istringstream iss(out);
  std::string line;
  while (std::getline(iss, line)) {
    if (line.empty()) continue;
    EXPECT_EQ(line.substr(0, 4), "    ");
  }
}

TEST(TableNumTest, FixedPrecision) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(1.0, 3), "1.000");
  EXPECT_EQ(Table::num(-0.5, 1), "-0.5");
}

TEST(TableNumTest, Integers) {
  EXPECT_EQ(Table::num(42ll), "42");
  EXPECT_EQ(Table::num(-7ll), "-7");
}

TEST(PrintHelpersTest, SectionAndKv) {
  std::ostringstream oss;
  print_section(oss, "Title");
  print_kv(oss, "key", "value");
  const std::string out = oss.str();
  EXPECT_NE(out.find("## Title"), std::string::npos);
  EXPECT_NE(out.find("key:"), std::string::npos);
  EXPECT_NE(out.find("value"), std::string::npos);
}

}  // namespace
}  // namespace vmtherm
