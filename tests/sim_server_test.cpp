// Tests for sim/server: spec validation, fan law, presets.

#include "sim/server.h"

#include <gtest/gtest.h>

namespace vmtherm::sim {
namespace {

TEST(PowerEnvelopeTest, DefaultValidates) {
  PowerEnvelope p;
  EXPECT_NO_THROW(p.validate());
}

TEST(PowerEnvelopeTest, RejectsInvertedPower) {
  PowerEnvelope p;
  p.max_cpu_watts = p.idle_watts - 1.0;
  EXPECT_THROW(p.validate(), ConfigError);
}

TEST(PowerEnvelopeTest, RejectsNegativeIdle) {
  PowerEnvelope p;
  p.idle_watts = -1.0;
  EXPECT_THROW(p.validate(), ConfigError);
}

TEST(PowerEnvelopeTest, RejectsCrazyExponent) {
  PowerEnvelope p;
  p.cpu_exponent = 0.5;
  EXPECT_THROW(p.validate(), ConfigError);
  p.cpu_exponent = 2.5;
  EXPECT_THROW(p.validate(), ConfigError);
}

TEST(ThermalParamsTest, DefaultValidates) {
  ThermalParams t;
  EXPECT_NO_THROW(t.validate());
}

TEST(ThermalParamsTest, FanLawAtReferenceIsNominal) {
  ThermalParams t;
  EXPECT_DOUBLE_EQ(t.sink_to_ambient(t.reference_fans),
                   t.sink_to_ambient_resistance);
}

TEST(ThermalParamsTest, MoreFansLowerResistance) {
  ThermalParams t;
  double prev = t.sink_to_ambient(1);
  for (int f = 2; f <= 8; ++f) {
    const double r = t.sink_to_ambient(f);
    EXPECT_LT(r, prev) << "fans=" << f;
    prev = r;
  }
}

TEST(ThermalParamsTest, FanCountMustBePositive) {
  ThermalParams t;
  EXPECT_THROW((void)t.sink_to_ambient(0), ConfigError);
  EXPECT_THROW((void)t.sink_to_ambient(-1), ConfigError);
}

TEST(ServerSpecTest, CpuCapacityIsCoresTimesGhz) {
  ServerSpec s;
  s.physical_cores = 16;
  s.core_ghz = 2.5;
  EXPECT_DOUBLE_EQ(s.cpu_capacity_ghz(), 40.0);
}

TEST(ServerSpecTest, DefaultValidates) {
  ServerSpec s;
  EXPECT_NO_THROW(s.validate());
}

TEST(ServerSpecTest, RejectsEmptyName) {
  ServerSpec s;
  s.name = "";
  EXPECT_THROW(s.validate(), ConfigError);
}

TEST(ServerSpecTest, RejectsNonPositiveResources) {
  ServerSpec s;
  s.physical_cores = 0;
  EXPECT_THROW(s.validate(), ConfigError);
  s = ServerSpec{};
  s.memory_gb = 0.0;
  EXPECT_THROW(s.validate(), ConfigError);
  s = ServerSpec{};
  s.fan_slots = 0;
  EXPECT_THROW(s.validate(), ConfigError);
}

TEST(MakeServerSpecTest, KnownKindsValidate) {
  for (const char* kind : {"small", "medium", "large"}) {
    const ServerSpec s = make_server_spec(kind);
    EXPECT_NO_THROW(s.validate()) << kind;
  }
}

TEST(MakeServerSpecTest, KindsAreOrderedBySize) {
  const ServerSpec small = make_server_spec("small");
  const ServerSpec medium = make_server_spec("medium");
  const ServerSpec large = make_server_spec("large");
  EXPECT_LT(small.cpu_capacity_ghz(), medium.cpu_capacity_ghz());
  EXPECT_LT(medium.cpu_capacity_ghz(), large.cpu_capacity_ghz());
  EXPECT_LT(small.memory_gb, medium.memory_gb);
  EXPECT_LT(medium.memory_gb, large.memory_gb);
  EXPECT_LT(small.power.max_cpu_watts, large.power.max_cpu_watts);
}

TEST(MakeServerSpecTest, UnknownKindThrows) {
  EXPECT_THROW((void)make_server_spec("gargantuan"), ConfigError);
}

}  // namespace
}  // namespace vmtherm::sim
