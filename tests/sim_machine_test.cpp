// Tests for sim/machine: VM hosting, utilization aggregation, thermal
// coupling, migration overhead.

#include "sim/machine.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace vmtherm::sim {
namespace {

PhysicalMachine make_machine(int fans = 4, double initial_c = 22.0) {
  MachineOptions options;
  options.active_fans = fans;
  options.initial_temp_c = initial_c;
  options.sensor.noise_stddev_c = 0.0;
  options.sensor.quantization_c = 0.0;
  return PhysicalMachine(make_server_spec("medium"), options, Rng(1));
}

Vm make_vm(const std::string& id, TaskType task, int vcpus = 2,
           double mem = 4.0, std::uint64_t seed = 7) {
  VmConfig config;
  config.vcpus = vcpus;
  config.memory_gb = mem;
  config.task = task;
  return Vm(id, config, Rng(seed));
}

TEST(MachineTest, StartsEmptyAtInitialTemperature) {
  auto m = make_machine();
  EXPECT_EQ(m.vm_count(), 0u);
  EXPECT_DOUBLE_EQ(m.thermal().die_temp_c(), 22.0);
  EXPECT_DOUBLE_EQ(m.used_memory_gb(), 0.0);
}

TEST(MachineTest, AddRemoveVmTracksMembership) {
  auto m = make_machine();
  m.add_vm(make_vm("a", TaskType::kBatch));
  m.add_vm(make_vm("b", TaskType::kIdle));
  EXPECT_TRUE(m.has_vm("a"));
  EXPECT_TRUE(m.has_vm("b"));
  EXPECT_EQ(m.vm_count(), 2u);
  EXPECT_DOUBLE_EQ(m.used_memory_gb(), 8.0);
  EXPECT_EQ(m.total_vcpus(), 4);

  const Vm removed = m.remove_vm("a");
  EXPECT_EQ(removed.id(), "a");
  EXPECT_FALSE(m.has_vm("a"));
  EXPECT_EQ(m.vm_count(), 1u);
}

TEST(MachineTest, DuplicateVmIdRejected) {
  auto m = make_machine();
  m.add_vm(make_vm("a", TaskType::kBatch));
  EXPECT_THROW(m.add_vm(make_vm("a", TaskType::kIdle)), ConfigError);
}

TEST(MachineTest, RemovingAbsentVmThrows) {
  auto m = make_machine();
  EXPECT_THROW((void)m.remove_vm("ghost"), ConfigError);
}

TEST(MachineTest, MemoryCapacityEnforced) {
  auto m = make_machine();  // medium: 64 GB
  m.add_vm(make_vm("a", TaskType::kBatch, 2, 40.0));
  EXPECT_THROW(m.add_vm(make_vm("b", TaskType::kBatch, 2, 30.0)),
               ConfigError);
  // Fits exactly at the boundary.
  m.add_vm(make_vm("c", TaskType::kBatch, 2, 24.0));
  EXPECT_DOUBLE_EQ(m.free_memory_gb(), 0.0);
}

TEST(MachineTest, FanCountClamped) {
  auto m = make_machine();
  m.set_active_fans(100);
  EXPECT_EQ(m.active_fans(), m.spec().fan_slots);
  m.set_active_fans(0);
  EXPECT_EQ(m.active_fans(), 1);
}

TEST(MachineTest, InvalidOptionsRejected) {
  MachineOptions options;
  options.active_fans = 99;
  EXPECT_THROW(PhysicalMachine(make_server_spec("medium"), options, Rng(1)),
               ConfigError);
}

TEST(MachineTest, StepAdvancesTimeAndSamples) {
  auto m = make_machine();
  const auto s1 = m.step(5.0, 22.0);
  EXPECT_DOUBLE_EQ(s1.time_s, 5.0);
  const auto s2 = m.step(5.0, 22.0);
  EXPECT_DOUBLE_EQ(s2.time_s, 10.0);
  EXPECT_DOUBLE_EQ(m.last_sample().time_s, 10.0);
}

TEST(MachineTest, NonPositiveDtThrows) {
  auto m = make_machine();
  EXPECT_THROW((void)m.step(0.0, 22.0), ConfigError);
}

TEST(MachineTest, IdleMachineHasLowUtilization) {
  auto m = make_machine();
  m.add_vm(make_vm("a", TaskType::kIdle));
  const auto s = m.step(5.0, 22.0);
  EXPECT_LT(s.utilization, 0.05);
  EXPECT_GT(s.power_watts, 0.0);
}

TEST(MachineTest, CpuBurnDrivesUtilizationUp) {
  auto m = make_machine();  // 16 cores
  m.add_vm(make_vm("a", TaskType::kCpuBurn, 8, 4.0));
  const auto s = m.step(5.0, 22.0);
  // 8 vcpus * ~0.95 / 16 cores ~= 0.475
  EXPECT_NEAR(s.utilization, 0.475, 0.05);
}

TEST(MachineTest, OversubscriptionSaturatesAtOne) {
  auto m = make_machine();
  for (int i = 0; i < 6; ++i) {
    m.add_vm(make_vm("vm" + std::to_string(i), TaskType::kCpuBurn, 8, 4.0,
                     100 + static_cast<std::uint64_t>(i)));
  }
  const auto s = m.step(5.0, 22.0);
  EXPECT_DOUBLE_EQ(s.utilization, 1.0);
}

TEST(MachineTest, BusyMachineHeatsUp) {
  auto m = make_machine();
  m.add_vm(make_vm("a", TaskType::kCpuBurn, 8, 8.0));
  for (int i = 0; i < 400; ++i) m.step(5.0, 22.0);
  EXPECT_GT(m.thermal().die_temp_c(), 35.0);
}

TEST(MachineTest, MoreVmsRunHotter) {
  auto light = make_machine();
  light.add_vm(make_vm("a", TaskType::kBatch, 2, 4.0, 11));
  auto heavy = make_machine();
  for (int i = 0; i < 6; ++i) {
    heavy.add_vm(make_vm("vm" + std::to_string(i), TaskType::kBatch, 4, 4.0,
                         20 + static_cast<std::uint64_t>(i)));
  }
  for (int i = 0; i < 400; ++i) {
    light.step(5.0, 22.0);
    heavy.step(5.0, 22.0);
  }
  EXPECT_GT(heavy.thermal().die_temp_c(), light.thermal().die_temp_c() + 3.0);
}

TEST(MachineTest, MigrationOverheadRaisesUtilization) {
  auto quiet = make_machine();
  quiet.add_vm(make_vm("a", TaskType::kIdle));
  auto busy = make_machine();
  busy.add_vm(make_vm("a", TaskType::kIdle));
  busy.begin_migration_overhead(100.0);
  const double u_quiet = quiet.step(5.0, 22.0).utilization;
  const double u_busy = busy.step(5.0, 22.0).utilization;
  EXPECT_GT(u_busy, u_quiet + 0.05);
}

TEST(MachineTest, MigrationOverheadExpires) {
  auto m = make_machine();
  m.add_vm(make_vm("a", TaskType::kIdle));
  m.begin_migration_overhead(10.0);
  m.step(5.0, 22.0);  // t=5: overhead active
  EXPECT_GT(m.last_sample().utilization, 0.05);
  m.step(5.0, 22.0);   // t=10: boundary
  m.step(5.0, 22.0);   // t=15: expired
  EXPECT_LT(m.last_sample().utilization, 0.05);
}

TEST(MachineTest, SteadyStateMatchesThermalPrediction) {
  auto m = make_machine();
  m.add_vm(make_vm("a", TaskType::kCpuBurn, 8, 8.0));
  for (int i = 0; i < 1500; ++i) m.step(5.0, 22.0);
  // Utilization fluctuates slightly; compare against the machine's own
  // steady-state estimate at the observed utilization.
  const double expected =
      m.steady_state_die_c(m.last_sample().utilization, 22.0);
  EXPECT_NEAR(m.thermal().die_temp_c(), expected, 2.0);
}

TEST(MachineTest, SensedTracksTrueTemperature) {
  MachineOptions options;
  options.sensor.noise_stddev_c = 0.3;
  options.sensor.quantization_c = 0.25;
  PhysicalMachine m(make_server_spec("medium"), options, Rng(3));
  m.add_vm(make_vm("a", TaskType::kBatch));
  for (int i = 0; i < 100; ++i) {
    const auto s = m.step(5.0, 22.0);
    EXPECT_NEAR(s.cpu_temp_sensed_c, s.cpu_temp_true_c, 1.5);
  }
}

TEST(MachineTest, MoreFansCooler) {
  auto cool = make_machine(6);
  auto hot = make_machine(1);
  cool.add_vm(make_vm("a", TaskType::kCpuBurn, 8, 8.0, 42));
  hot.add_vm(make_vm("a", TaskType::kCpuBurn, 8, 8.0, 42));
  for (int i = 0; i < 500; ++i) {
    cool.step(5.0, 22.0);
    hot.step(5.0, 22.0);
  }
  EXPECT_GT(hot.thermal().die_temp_c(), cool.thermal().die_temp_c() + 3.0);
}

}  // namespace
}  // namespace vmtherm::sim
