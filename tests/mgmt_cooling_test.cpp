// Tests for mgmt/cooling: COP model and predictive setpoint planning.

#include "mgmt/cooling.h"

#include <gtest/gtest.h>

#include "core/evaluator.h"

namespace vmtherm::mgmt {
namespace {

const core::StableTemperaturePredictor& predictor() {
  static const core::StableTemperaturePredictor p = [] {
    sim::ScenarioRanges ranges;
    ranges.duration_s = 1200.0;
    ranges.sample_interval_s = 10.0;
    core::StableTrainOptions options;
    ml::SvrParams params;
    params.kernel.gamma = 1.0 / 32;
    params.c = 512.0;
    params.epsilon = 0.05;
    options.fixed_params = params;
    return core::StableTemperaturePredictor::train(
        core::generate_corpus(ranges, 150, 71), options);
  }();
  return p;
}

std::vector<PlannedHost> small_fleet() {
  sim::VmConfig batch;
  batch.vcpus = 4;
  batch.memory_gb = 4.0;
  batch.task = sim::TaskType::kBatch;
  sim::VmConfig burn = batch;
  burn.task = sim::TaskType::kCpuBurn;

  PlannedHost cool;
  cool.server = sim::make_server_spec("medium");
  cool.fans = 4;
  cool.vms = {batch, batch};
  PlannedHost warm;
  warm.server = sim::make_server_spec("medium");
  warm.fans = 4;
  warm.vms = {burn, burn, burn, batch};
  return {cool, warm};
}

TEST(CoolingModelTest, CopGrowsWithSupplyTemperature) {
  double prev = CoolingModel::cop(10.0);
  for (double t = 12.0; t <= 35.0; t += 2.0) {
    const double c = CoolingModel::cop(t);
    EXPECT_GT(c, prev);
    prev = c;
  }
}

TEST(CoolingModelTest, KnownCopValue) {
  // COP(25) = 0.0068*625 + 0.0008*25 + 0.458 = 4.25 + 0.02 + 0.458.
  EXPECT_NEAR(CoolingModel::cop(25.0), 4.728, 1e-9);
}

TEST(CoolingModelTest, CoolingPowerInverseInCop) {
  const double watts = CoolingModel::cooling_power_watts(1000.0, 25.0);
  EXPECT_NEAR(watts, 1000.0 / 4.728, 1e-6);
}

TEST(CoolingModelTest, NegativeItPowerRejected) {
  EXPECT_THROW((void)CoolingModel::cooling_power_watts(-1.0, 25.0),
               ConfigError);
}

TEST(CoolingModelTest, SavingFractionPositiveWhenWarming) {
  const double saving = CoolingModel::saving_fraction(18.0, 27.0);
  EXPECT_GT(saving, 0.2);
  EXPECT_LT(saving, 0.8);
  // No change -> no saving.
  EXPECT_DOUBLE_EQ(CoolingModel::saving_fraction(22.0, 22.0), 0.0);
  // Cooling down costs.
  EXPECT_LT(CoolingModel::saving_fraction(27.0, 18.0), 0.0);
}

TEST(PlanSetpointTest, RaisesSetpointUntilBudget) {
  const auto plan = plan_setpoint(predictor(), small_fleet(),
                                  /*baseline=*/18.0, /*max=*/32.0,
                                  /*cpu_limit=*/75.0, /*margin=*/2.0);
  EXPECT_GE(plan.recommended_supply_c, plan.baseline_supply_c);
  EXPECT_LE(plan.hottest_predicted_c, 73.0 + 1e-9);
  EXPECT_GE(plan.cooling_saving_fraction, 0.0);
}

TEST(PlanSetpointTest, TighterLimitMeansLowerSetpoint) {
  const auto loose = plan_setpoint(predictor(), small_fleet(), 18.0, 32.0,
                                   80.0, 2.0);
  const auto tight = plan_setpoint(predictor(), small_fleet(), 18.0, 32.0,
                                   65.0, 2.0);
  EXPECT_LE(tight.recommended_supply_c, loose.recommended_supply_c);
}

TEST(PlanSetpointTest, HotterFleetGetsLowerSetpoint) {
  auto hot_fleet = small_fleet();
  sim::VmConfig burn;
  burn.vcpus = 8;
  burn.memory_gb = 4.0;
  burn.task = sim::TaskType::kCpuBurn;
  hot_fleet[1].vms.push_back(burn);
  hot_fleet[1].fans = 2;

  const auto base = plan_setpoint(predictor(), small_fleet(), 18.0, 32.0,
                                  72.0, 2.0);
  const auto hot = plan_setpoint(predictor(), hot_fleet, 18.0, 32.0,
                                 72.0, 2.0);
  EXPECT_LE(hot.recommended_supply_c, base.recommended_supply_c);
}

TEST(PlanSetpointTest, BaselineViolationYieldsNoRaise) {
  const auto plan = plan_setpoint(predictor(), small_fleet(), 18.0, 32.0,
                                  /*cpu_limit=*/30.0, /*margin=*/2.0);
  EXPECT_DOUBLE_EQ(plan.recommended_supply_c, 18.0);
  EXPECT_DOUBLE_EQ(plan.cooling_saving_fraction, 0.0);
}

TEST(PlanSetpointTest, InvalidInputsThrow) {
  EXPECT_THROW((void)plan_setpoint(predictor(), {}, 18.0, 32.0, 70.0),
               ConfigError);
  EXPECT_THROW(
      (void)plan_setpoint(predictor(), small_fleet(), 30.0, 20.0, 70.0),
      ConfigError);
  EXPECT_THROW((void)plan_setpoint(predictor(), small_fleet(), 18.0, 32.0,
                                   70.0, 2.0, 0.0),
               ConfigError);
}

TEST(PlanSetpointTest, IdentifiesHottestHost) {
  const auto plan = plan_setpoint(predictor(), small_fleet(), 18.0, 32.0,
                                  80.0, 2.0);
  EXPECT_EQ(plan.hottest_host, 1u);  // the burn-heavy host
}

}  // namespace
}  // namespace vmtherm::mgmt
