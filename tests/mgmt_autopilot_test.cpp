// Tests for mgmt/autopilot: the closed thermal control loop on a live
// simulated cluster.

#include "mgmt/autopilot.h"

#include <gtest/gtest.h>

#include "core/evaluator.h"

namespace vmtherm::mgmt {
namespace {

core::StableTemperaturePredictor make_predictor() {
  sim::ScenarioRanges ranges;
  ranges.duration_s = 1200.0;
  ranges.sample_interval_s = 10.0;
  core::StableTrainOptions options;
  ml::SvrParams params;
  params.kernel.gamma = 1.0 / 32;
  params.c = 512.0;
  params.epsilon = 0.05;
  options.fixed_params = params;
  return core::StableTemperaturePredictor::train(
      core::generate_corpus(ranges, 150, 74), options);
}

/// A cluster with one overloaded host and two idle ones.
sim::Cluster make_hot_cluster() {
  sim::EnvironmentSpec env;
  env.base_c = 23.0;
  env.fluctuation_stddev_c = 0.0;
  sim::Cluster cluster(env, Rng(8));
  sim::MachineOptions options;
  options.initial_temp_c = 23.0;
  options.sensor.noise_stddev_c = 0.0;
  options.sensor.quantization_c = 0.0;
  for (int i = 0; i < 3; ++i) {
    cluster.add_machine(sim::make_server_spec("medium"), options);
  }
  sim::VmConfig burn;
  burn.vcpus = 4;
  burn.memory_gb = 4.0;
  burn.task = sim::TaskType::kCpuBurn;
  for (int v = 0; v < 6; ++v) {
    cluster.place_vm(0, sim::Vm("burn-" + std::to_string(v), burn,
                                Rng(100 + static_cast<std::uint64_t>(v))));
  }
  return cluster;
}

AutopilotOptions aggressive_options() {
  AutopilotOptions options;
  options.scan_interval_s = 60.0;
  options.planner.target_c = 55.0;
  options.planner.dest_headroom_c = 2.0;
  return options;
}

TEST(AutopilotTest, OptionValidation) {
  AutopilotOptions options;
  options.scan_interval_s = 0.0;
  EXPECT_THROW(Autopilot(make_predictor(), options), ConfigError);
  options = AutopilotOptions{};
  options.max_migrations_total = 0;
  EXPECT_THROW(Autopilot(make_predictor(), options), ConfigError);
}

TEST(AutopilotTest, HealthyClusterUntouched) {
  sim::EnvironmentSpec env;
  env.base_c = 23.0;
  sim::Cluster cluster(env, Rng(9));
  sim::MachineOptions options;
  cluster.add_machine(sim::make_server_spec("medium"), options);
  sim::VmConfig idle;
  idle.vcpus = 2;
  idle.memory_gb = 4.0;
  idle.task = sim::TaskType::kIdle;
  cluster.place_vm(0, sim::Vm("idle", idle, Rng(10)));

  Autopilot autopilot(make_predictor(), aggressive_options());
  for (int i = 0; i < 120; ++i) {
    cluster.step(5.0);
    autopilot.step(cluster, 23.0);
  }
  EXPECT_TRUE(autopilot.actions().empty());
}

TEST(AutopilotTest, RebalancesOverloadedHost) {
  auto cluster = make_hot_cluster();
  Autopilot autopilot(make_predictor(), aggressive_options());

  for (int i = 0; i < 240; ++i) {  // 1200 s
    cluster.step(5.0);
    autopilot.step(cluster, 23.0);
  }

  EXPECT_FALSE(autopilot.actions().empty());
  // Every action moves load off the hot host.
  for (const auto& action : autopilot.actions()) {
    EXPECT_EQ(action.from_host, 0u);
  }
  // VMs actually landed elsewhere.
  EXPECT_LT(cluster.machine(0).vm_count(), 6u);
  EXPECT_GT(cluster.machine(1).vm_count() + cluster.machine(2).vm_count(), 0u);
}

TEST(AutopilotTest, LowersPeakTemperatureVsNoControl) {
  auto controlled = make_hot_cluster();
  auto uncontrolled = make_hot_cluster();
  Autopilot autopilot(make_predictor(), aggressive_options());

  double controlled_peak = 0.0;
  double uncontrolled_peak = 0.0;
  for (int i = 0; i < 480; ++i) {  // 2400 s
    controlled.step(5.0);
    autopilot.step(controlled, 23.0);
    uncontrolled.step(5.0);
    for (std::size_t h = 0; h < 3; ++h) {
      controlled_peak = std::max(
          controlled_peak, controlled.machine(h).thermal().die_temp_c());
      uncontrolled_peak = std::max(
          uncontrolled_peak, uncontrolled.machine(h).thermal().die_temp_c());
    }
  }
  EXPECT_LT(controlled_peak, uncontrolled_peak - 3.0);
}

TEST(AutopilotTest, RespectsLifetimeBudget) {
  auto cluster = make_hot_cluster();
  AutopilotOptions options = aggressive_options();
  options.planner.target_c = 30.0;  // impossible: would move forever
  options.max_migrations_total = 2;
  Autopilot autopilot(make_predictor(), options);
  for (int i = 0; i < 480; ++i) {
    cluster.step(5.0);
    autopilot.step(cluster, 23.0);
  }
  EXPECT_LE(autopilot.migrations_started(), 2u);
}

TEST(AutopilotTest, ScanIntervalThrottlesEvaluation) {
  auto cluster = make_hot_cluster();
  AutopilotOptions options = aggressive_options();
  options.scan_interval_s = 1e9;  // one scan, at the first step
  Autopilot autopilot(make_predictor(), options);
  cluster.step(5.0);
  const std::size_t first = autopilot.step(cluster, 23.0);
  for (int i = 0; i < 100; ++i) {
    cluster.step(5.0);
    EXPECT_EQ(autopilot.step(cluster, 23.0), 0u);
  }
  EXPECT_EQ(autopilot.migrations_started(), first);
}

TEST(AutopilotTest, PredictionsExposedAfterScan) {
  auto cluster = make_hot_cluster();
  Autopilot autopilot(make_predictor(), aggressive_options());
  EXPECT_TRUE(autopilot.last_predictions().empty());
  cluster.step(5.0);
  autopilot.step(cluster, 23.0);
  ASSERT_EQ(autopilot.last_predictions().size(), 3u);
  // The overloaded host is predicted hottest.
  EXPECT_GT(autopilot.last_predictions()[0],
            autopilot.last_predictions()[1]);
}

}  // namespace
}  // namespace vmtherm::mgmt
