// Cross-cutting property tests: parameterized sweeps over the invariants
// the whole system rests on — thermal monotonicity, predictor physical
// plausibility, SMO feasibility across hyper-parameters, and evaluation
// harness gradients.

#include <gtest/gtest.h>

#include <cmath>

#include "core/evaluator.h"
#include "sim/thermal.h"
#include "util/stats.h"

namespace vmtherm {
namespace {

// -------------------------------------------------- thermal physics ------

class ThermalPowerSweep : public ::testing::TestWithParam<double> {};

INSTANTIATE_TEST_SUITE_P(Powers, ThermalPowerSweep,
                         ::testing::Values(30.0, 80.0, 150.0, 220.0, 300.0));

TEST_P(ThermalPowerSweep, SteadyStateLinearInPower) {
  sim::ThermalNetwork net(sim::ThermalParams{}, 22.0);
  const double p = GetParam();
  // T_ss - T_amb must be exactly R_total * P.
  const double r_total = sim::ThermalParams{}.die_to_sink_resistance +
                         sim::ThermalParams{}.sink_to_ambient(4);
  EXPECT_NEAR(net.steady_state_die_c(p, 22.0, 4) - 22.0, r_total * p, 1e-9);
}

TEST_P(ThermalPowerSweep, TransientNeverOvershootsSteadyState) {
  sim::ThermalNetwork net(sim::ThermalParams{}, 22.0);
  const double p = GetParam();
  const double target = net.steady_state_die_c(p, 22.0, 4);
  for (int i = 0; i < 2000; ++i) {
    net.step(5.0, p, 22.0, 4);
    ASSERT_LE(net.die_temp_c(), target + 1e-6);
  }
}

class ThermalFanSweep : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Fans, ThermalFanSweep, ::testing::Values(1, 2, 3, 4, 5, 6));

TEST_P(ThermalFanSweep, SteadyStateDecreasesWithEachExtraFan) {
  sim::ThermalNetwork net(sim::ThermalParams{}, 22.0);
  const int fans = GetParam();
  if (fans >= 6) return;
  EXPECT_GT(net.steady_state_die_c(200.0, 22.0, fans),
            net.steady_state_die_c(200.0, 22.0, fans + 1));
}

// ---------------------------------------- profiling + corpus physics -----

class CorpusSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, CorpusSeedSweep,
                         ::testing::Values(101, 202, 303, 404));

TEST_P(CorpusSeedSweep, EveryRecordIsPhysicallyPlausible) {
  sim::ScenarioRanges ranges;
  ranges.duration_s = 1200.0;
  ranges.sample_interval_s = 10.0;
  for (const auto& r : core::generate_corpus(ranges, 8, GetParam())) {
    // Hotter than the room, colder than silicon limits.
    EXPECT_GT(r.stable_temp_c, r.env_temp_c);
    EXPECT_LT(r.stable_temp_c, 110.0);
    // Feature sanity.
    EXPECT_GE(r.vm.vm_count, 2.0);
    EXPECT_LE(r.vm.vm_count, 12.0);
    EXPECT_GE(r.vm.active_memory_gb, 0.0);
    EXPECT_LE(r.vm.active_memory_gb, r.vm.total_memory_gb + 1e-9);
    EXPECT_LE(r.vm.mean_util_demand, r.vm.max_util_demand + 1e-9);
    double share_sum = 0.0;
    for (double s : r.vm.task_share) share_sum += s;
    EXPECT_NEAR(share_sum, 1.0, 1e-9);
  }
}

// --------------------------------------------- trained model physics -----

const core::StableTemperaturePredictor& shared_predictor() {
  static const core::StableTemperaturePredictor predictor = [] {
    sim::ScenarioRanges ranges;
    ranges.duration_s = 1500.0;
    ranges.sample_interval_s = 10.0;
    core::StableTrainOptions options;
    ml::SvrParams params;
    params.kernel.gamma = 1.0 / 32;
    params.c = 512.0;
    params.epsilon = 0.05;
    options.fixed_params = params;
    return core::StableTemperaturePredictor::train(
        core::generate_corpus(ranges, 250, 4040), options);
  }();
  return predictor;
}

class PredictorFanSweep : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Fans, PredictorFanSweep,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST_P(PredictorFanSweep, LearnedFanMonotonicity) {
  // The trained SVR must have internalized "more fans -> cooler" on a busy
  // box (the simulator's ground truth), fan count by fan count.
  const auto server = sim::make_server_spec("medium");
  sim::VmConfig burn;
  burn.vcpus = 4;
  burn.memory_gb = 4.0;
  burn.task = sim::TaskType::kCpuBurn;
  const std::vector<sim::VmConfig> vms = {burn, burn, burn};
  const int fans = GetParam();
  EXPECT_GT(shared_predictor().predict(server, vms, fans, 23.0),
            shared_predictor().predict(server, vms, fans + 1, 23.0) - 0.2)
      << "fans " << fans << " vs " << fans + 1;
}

class PredictorEnvSweep : public ::testing::TestWithParam<double> {};

INSTANTIATE_TEST_SUITE_P(Envs, PredictorEnvSweep,
                         ::testing::Values(18.0, 21.0, 24.0, 27.0));

TEST_P(PredictorEnvSweep, LearnedEnvironmentMonotonicity) {
  const auto server = sim::make_server_spec("medium");
  sim::VmConfig batch;
  batch.vcpus = 4;
  batch.memory_gb = 4.0;
  batch.task = sim::TaskType::kBatch;
  const std::vector<sim::VmConfig> vms = {batch, batch};
  const double env = GetParam();
  EXPECT_LT(shared_predictor().predict(server, vms, 4, env),
            shared_predictor().predict(server, vms, 4, env + 3.0) + 0.2);
}

TEST(PredictorPhysicsTest, PredictionMatchesFreshExperiment) {
  // Out-of-corpus spot check: predict a placement, then actually run it.
  const auto server = sim::make_server_spec("medium");
  sim::VmConfig web;
  web.vcpus = 4;
  web.memory_gb = 8.0;
  web.task = sim::TaskType::kWebServer;
  sim::VmConfig burn = web;
  burn.task = sim::TaskType::kCpuBurn;
  const std::vector<sim::VmConfig> vms = {web, burn, web};

  const double predicted = shared_predictor().predict(server, vms, 4, 24.0);

  sim::ExperimentConfig config;
  config.server = server;
  config.vms = vms;
  config.active_fans = 4;
  config.environment.base_c = 24.0;
  config.initial_temp_c = 24.0;
  config.duration_s = 1500.0;
  config.sample_interval_s = 10.0;
  config.seed = 31337;
  const double measured =
      core::stable_temperature(sim::run_experiment(config).trace);
  EXPECT_NEAR(predicted, measured, 3.5);
}

// ----------------------------------------------- dynamic predictor -------

class LambdaSweep : public ::testing::TestWithParam<double> {};

INSTANTIATE_TEST_SUITE_P(Lambdas, LambdaSweep,
                         ::testing::Values(0.1, 0.3, 0.5, 0.8, 1.0));

TEST_P(LambdaSweep, CalibrationConvergesForAllLambdas) {
  core::DynamicOptions options;
  options.learning_rate = GetParam();
  core::DynamicTemperaturePredictor predictor(options);
  predictor.begin(0.0, 30.0, 60.0);
  for (double t = 15.0; t <= 1200.0; t += 15.0) {
    predictor.observe(t, predictor.curve().value(t) + 2.5);
  }
  // gamma -> 2.5 for every lambda in (0, 1].
  EXPECT_NEAR(predictor.calibration(), 2.5, 0.01) << GetParam();
}

class GapSweep : public ::testing::TestWithParam<double> {};

INSTANTIATE_TEST_SUITE_P(Gaps, GapSweep,
                         ::testing::Values(15.0, 30.0, 60.0, 120.0));

TEST_P(GapSweep, DynamicEvaluationProducesFiniteSmallErrors) {
  sim::ScenarioRanges ranges;
  ranges.duration_s = 1200.0;
  ranges.sample_interval_s = 10.0;
  const auto scenario = core::make_random_dynamic_scenario(ranges, 4, 88);
  core::DynamicEvalOptions options;
  options.gap_s = GetParam();
  const auto result =
      core::evaluate_dynamic(shared_predictor(), scenario, options);
  EXPECT_TRUE(std::isfinite(result.mse));
  EXPECT_LT(result.mse, 50.0);
  EXPECT_GT(result.points.size(), 10u);
}

}  // namespace
}  // namespace vmtherm
