// Tests for ml/scaler: range mapping, degenerate features, inverse.

#include "ml/scaler.h"

#include <gtest/gtest.h>

namespace vmtherm::ml {
namespace {

Dataset two_feature_data() {
  Dataset data;
  data.add(Sample{{0.0, 10.0}, 1.0});
  data.add(Sample{{5.0, 10.0}, 2.0});
  data.add(Sample{{10.0, 10.0}, 3.0});
  return data;
}

TEST(ScalerTest, FitOnEmptyThrows) {
  EXPECT_THROW((void)MinMaxScaler::fit(Dataset{}), DataError);
}

TEST(ScalerTest, MapsRangeToMinusOnePlusOne) {
  const auto scaler = MinMaxScaler::fit(two_feature_data());
  const auto lo = scaler.transform(std::vector<double>{0.0, 10.0});
  EXPECT_DOUBLE_EQ(lo[0], -1.0);
  const auto mid = scaler.transform(std::vector<double>{5.0, 10.0});
  EXPECT_DOUBLE_EQ(mid[0], 0.0);
  const auto hi = scaler.transform(std::vector<double>{10.0, 10.0});
  EXPECT_DOUBLE_EQ(hi[0], 1.0);
}

TEST(ScalerTest, ConstantFeatureMapsToZero) {
  const auto scaler = MinMaxScaler::fit(two_feature_data());
  const auto v = scaler.transform(std::vector<double>{5.0, 10.0});
  EXPECT_DOUBLE_EQ(v[1], 0.0);
  // ... even for unseen values of the constant feature.
  const auto w = scaler.transform(std::vector<double>{5.0, 99.0});
  EXPECT_DOUBLE_EQ(w[1], 0.0);
}

TEST(ScalerTest, OutOfRangeExtrapolatesLinearly) {
  const auto scaler = MinMaxScaler::fit(two_feature_data());
  const auto v = scaler.transform(std::vector<double>{15.0, 10.0});
  EXPECT_DOUBLE_EQ(v[0], 2.0);
  const auto w = scaler.transform(std::vector<double>{-5.0, 10.0});
  EXPECT_DOUBLE_EQ(w[0], -2.0);
}

TEST(ScalerTest, DatasetTransformPreservesTargets) {
  const auto data = two_feature_data();
  const auto scaler = MinMaxScaler::fit(data);
  const Dataset scaled = scaler.transform(data);
  ASSERT_EQ(scaled.size(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_DOUBLE_EQ(scaled[i].y, data[i].y);
  }
}

TEST(ScalerTest, InverseRoundTrip) {
  const auto scaler = MinMaxScaler::fit(two_feature_data());
  const std::vector<double> x = {7.3, 10.0};
  const auto back = scaler.inverse(scaler.transform(x));
  EXPECT_NEAR(back[0], 7.3, 1e-12);
  EXPECT_NEAR(back[1], 10.0, 1e-12);  // constant feature restores to min
}

TEST(ScalerTest, DimensionMismatchThrows) {
  const auto scaler = MinMaxScaler::fit(two_feature_data());
  EXPECT_THROW((void)scaler.transform(std::vector<double>{1.0}), DataError);
  EXPECT_THROW((void)scaler.inverse(std::vector<double>{1.0, 2.0, 3.0}),
               DataError);
}

TEST(ScalerTest, ReconstructionValidatesRanges) {
  EXPECT_THROW(MinMaxScaler({1.0}, {0.0}), ConfigError);     // min > max
  EXPECT_THROW(MinMaxScaler({1.0, 2.0}, {3.0}), ConfigError);  // size mismatch
  EXPECT_NO_THROW(MinMaxScaler({0.0}, {0.0}));  // constant feature is fine
}

TEST(ScalerTest, PersistedRangesBehaveLikeFitted) {
  const auto fitted = MinMaxScaler::fit(two_feature_data());
  const MinMaxScaler rebuilt(fitted.mins(), fitted.maxs());
  const std::vector<double> x = {3.0, 10.0};
  EXPECT_EQ(fitted.transform(x), rebuilt.transform(x));
}

}  // namespace
}  // namespace vmtherm::ml
