// Tests for core/record: Eq. (2) feature encoding.

#include "core/record.h"

#include <gtest/gtest.h>

#include <numeric>

namespace vmtherm::core {
namespace {

std::vector<sim::VmConfig> mixed_vms() {
  sim::VmConfig a;
  a.vcpus = 2;
  a.memory_gb = 4.0;
  a.task = sim::TaskType::kCpuBurn;
  sim::VmConfig b;
  b.vcpus = 4;
  b.memory_gb = 8.0;
  b.task = sim::TaskType::kIdle;
  sim::VmConfig c;
  c.vcpus = 1;
  c.memory_gb = 2.0;
  c.task = sim::TaskType::kCpuBurn;
  return {a, b, c};
}

TEST(VmSetFeaturesTest, EmptySetIsAllZero) {
  const auto f = make_vm_set_features({});
  EXPECT_DOUBLE_EQ(f.vm_count, 0.0);
  EXPECT_DOUBLE_EQ(f.total_vcpus, 0.0);
  EXPECT_DOUBLE_EQ(f.total_memory_gb, 0.0);
  EXPECT_DOUBLE_EQ(f.mean_util_demand, 0.0);
  for (double share : f.task_share) EXPECT_DOUBLE_EQ(share, 0.0);
}

TEST(VmSetFeaturesTest, AggregatesResources) {
  const auto f = make_vm_set_features(mixed_vms());
  EXPECT_DOUBLE_EQ(f.vm_count, 3.0);
  EXPECT_DOUBLE_EQ(f.total_vcpus, 7.0);
  EXPECT_DOUBLE_EQ(f.total_memory_gb, 14.0);
}

TEST(VmSetFeaturesTest, UtilizationDemandAggregates) {
  const auto f = make_vm_set_features(mixed_vms());
  const double burn = sim::task_type_mean_utilization(sim::TaskType::kCpuBurn);
  const double idle = sim::task_type_mean_utilization(sim::TaskType::kIdle);
  EXPECT_NEAR(f.mean_util_demand, (2.0 * burn + idle) / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(f.max_util_demand, burn);
  EXPECT_NEAR(f.demanded_cores, burn * 2 + idle * 4 + burn * 1, 1e-12);
}

TEST(VmSetFeaturesTest, TaskSharesSumToOne) {
  const auto f = make_vm_set_features(mixed_vms());
  const double total = std::accumulate(f.task_share.begin(),
                                       f.task_share.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-12);
  // 2/3 cpu_burn, 1/3 idle.
  EXPECT_NEAR(f.task_share[static_cast<std::size_t>(sim::TaskType::kCpuBurn)],
              2.0 / 3.0, 1e-12);
  EXPECT_NEAR(f.task_share[static_cast<std::size_t>(sim::TaskType::kIdle)],
              1.0 / 3.0, 1e-12);
}

TEST(RecordTest, MakeRecordInputsCopiesServerFacts) {
  const auto server = sim::make_server_spec("medium");
  const Record r = make_record_inputs(server, mixed_vms(), 3, 24.5);
  EXPECT_DOUBLE_EQ(r.cpu_capacity_ghz, server.cpu_capacity_ghz());
  EXPECT_DOUBLE_EQ(r.memory_gb, server.memory_gb);
  EXPECT_DOUBLE_EQ(r.fan_count, 3.0);
  EXPECT_DOUBLE_EQ(r.env_temp_c, 24.5);
  EXPECT_DOUBLE_EQ(r.stable_temp_c, 0.0);  // unlabeled
}

TEST(RecordTest, FeatureVectorHasDeclaredLength) {
  const auto server = sim::make_server_spec("small");
  const Record r = make_record_inputs(server, mixed_vms(), 2, 20.0);
  const auto x = to_feature_vector(r);
  EXPECT_EQ(x.size(), kRecordFeatureCount);
  EXPECT_EQ(feature_names().size(), kRecordFeatureCount);
}

TEST(RecordTest, FeatureVectorOrderMatchesNames) {
  const auto server = sim::make_server_spec("medium");
  const Record r = make_record_inputs(server, mixed_vms(), 5, 27.0);
  const auto x = to_feature_vector(r);
  const auto& names = feature_names();

  auto index_of = [&](const std::string& name) {
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (names[i] == name) return i;
    }
    ADD_FAILURE() << "missing feature name " << name;
    return std::size_t{0};
  };

  EXPECT_DOUBLE_EQ(x[index_of("cpu_capacity_ghz")], server.cpu_capacity_ghz());
  EXPECT_DOUBLE_EQ(x[index_of("memory_gb")], server.memory_gb);
  EXPECT_DOUBLE_EQ(x[index_of("fan_count")], 5.0);
  EXPECT_DOUBLE_EQ(x[index_of("env_temp_c")], 27.0);
  EXPECT_DOUBLE_EQ(x[index_of("vm_count")], 3.0);
  EXPECT_DOUBLE_EQ(x[index_of("total_vcpus")], 7.0);
  EXPECT_DOUBLE_EQ(x[index_of("share_cpu_burn")], 2.0 / 3.0);
}

TEST(RecordTest, FeatureNamesAreUnique) {
  const auto& names = feature_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    for (std::size_t j = i + 1; j < names.size(); ++j) {
      EXPECT_NE(names[i], names[j]);
    }
  }
}

TEST(RecordTest, DifferentMixesProduceDifferentFeatures) {
  const auto server = sim::make_server_spec("medium");
  auto vms_a = mixed_vms();
  auto vms_b = mixed_vms();
  vms_b[0].task = sim::TaskType::kMemoryBound;
  const auto xa = to_feature_vector(make_record_inputs(server, vms_a, 4, 22.0));
  const auto xb = to_feature_vector(make_record_inputs(server, vms_b, 4, 22.0));
  EXPECT_NE(xa, xb);
}

}  // namespace
}  // namespace vmtherm::core
