// Tests for core/evaluator: corpus generation, stable/dynamic evaluation
// and the gap x update sweep — the machinery behind Fig. 1(a)-(c).

#include "core/evaluator.h"

#include <gtest/gtest.h>

namespace vmtherm::core {
namespace {

sim::ScenarioRanges fast_ranges() {
  sim::ScenarioRanges ranges;
  ranges.duration_s = 1200.0;
  ranges.sample_interval_s = 10.0;
  return ranges;
}

const StableTemperaturePredictor& shared_predictor() {
  static const StableTemperaturePredictor predictor = [] {
    StableTrainOptions options;
    ml::SvrParams params;
    params.kernel.gamma = 1.0 / 16;
    params.c = 256.0;
    params.epsilon = 0.05;
    options.fixed_params = params;
    return StableTemperaturePredictor::train(
        generate_corpus(fast_ranges(), 60, 21), options);
  }();
  return predictor;
}

TEST(GenerateCorpusTest, SizeAndDeterminism) {
  const auto a = generate_corpus(fast_ranges(), 5, 7);
  const auto b = generate_corpus(fast_ranges(), 5, 7);
  ASSERT_EQ(a.size(), 5u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].stable_temp_c, b[i].stable_temp_c);
    EXPECT_DOUBLE_EQ(a[i].vm.vm_count, b[i].vm.vm_count);
  }
}

TEST(GenerateCorpusTest, LabelsArePhysical) {
  for (const auto& r : generate_corpus(fast_ranges(), 10, 9)) {
    EXPECT_GT(r.stable_temp_c, r.env_temp_c);  // servers heat the air
    EXPECT_LT(r.stable_temp_c, 120.0);
  }
}

TEST(EvaluateStableTest, EmptyTestSetThrows) {
  EXPECT_THROW((void)evaluate_stable(shared_predictor(), {}), DataError);
}

TEST(EvaluateStableTest, MetricsConsistentWithCases) {
  const auto test_records = generate_corpus(fast_ranges(), 8, 33);
  const auto result = evaluate_stable(shared_predictor(), test_records);
  ASSERT_EQ(result.cases.size(), 8u);
  double se = 0.0;
  for (const auto& c : result.cases) {
    se += (c.predicted_c - c.measured_c) * (c.predicted_c - c.measured_c);
  }
  EXPECT_NEAR(result.mse, se / 8.0, 1e-9);
  EXPECT_LE(result.mae * result.mae, result.mse + 1e-9);
  EXPECT_GE(result.max_abs_error, result.mae);
}

DynamicScenario simple_scenario(std::uint64_t seed = 100) {
  DynamicScenario scenario;
  scenario.base.server = sim::make_server_spec("medium");
  sim::VmConfig vm;
  vm.vcpus = 4;
  vm.memory_gb = 4.0;
  vm.task = sim::TaskType::kBatch;
  scenario.base.vms = {vm, vm, vm};
  scenario.base.duration_s = 1500.0;
  scenario.base.sample_interval_s = 5.0;
  scenario.base.active_fans = 4;
  scenario.base.environment.base_c = 22.0;
  scenario.base.seed = seed;
  return scenario;
}

TEST(EvaluateDynamicTest, ProducesMatchedPredictions) {
  DynamicEvalOptions options;
  const auto result =
      evaluate_dynamic(shared_predictor(), simple_scenario(), options);
  EXPECT_FALSE(result.points.empty());
  EXPECT_EQ(result.model_trajectory.size(), result.trace.size());
  // Every matched point's target time lies within the run.
  for (const auto& p : result.points) {
    EXPECT_GE(p.target_time_s, options.gap_s - 1e-9);
    EXPECT_LE(p.target_time_s, result.trace.duration_s() + 1e-9);
  }
  EXPECT_GT(result.mse, 0.0);
}

TEST(EvaluateDynamicTest, DeterministicGivenScenario) {
  DynamicEvalOptions options;
  const auto a =
      evaluate_dynamic(shared_predictor(), simple_scenario(), options);
  const auto b =
      evaluate_dynamic(shared_predictor(), simple_scenario(), options);
  EXPECT_DOUBLE_EQ(a.mse, b.mse);
}

TEST(EvaluateDynamicTest, CalibrationLowersMse) {
  // The paper's Fig. 1(b) claim. Average over several scenarios so one
  // lucky uncalibrated run cannot flip the comparison.
  double total_cal = 0.0;
  double total_uncal = 0.0;
  for (std::uint64_t seed : {100, 101, 102}) {
    DynamicEvalOptions calibrated;
    DynamicEvalOptions uncalibrated;
    uncalibrated.dynamic.calibration_enabled = false;
    total_cal += evaluate_dynamic(shared_predictor(), simple_scenario(seed),
                                  calibrated)
                     .mse;
    total_uncal += evaluate_dynamic(shared_predictor(),
                                    simple_scenario(seed), uncalibrated)
                       .mse;
  }
  EXPECT_LT(total_cal, total_uncal);
}

TEST(EvaluateDynamicTest, EventsChangeTheTrace) {
  auto with_event = simple_scenario();
  ScenarioEvent add;
  add.kind = ScenarioEvent::Kind::kAddVm;
  add.time_s = 600.0;
  add.vm.vcpus = 8;
  add.vm.memory_gb = 8.0;
  add.vm.task = sim::TaskType::kCpuBurn;
  with_event.events.push_back(add);

  DynamicEvalOptions options;
  const auto base =
      evaluate_dynamic(shared_predictor(), simple_scenario(), options);
  const auto churned =
      evaluate_dynamic(shared_predictor(), with_event, options);
  // The added hot VM pushes the tail temperature up.
  const double base_tail =
      base.trace.mean_sensed_between(1200.0, 1500.0);
  const double churned_tail =
      churned.trace.mean_sensed_between(1200.0, 1500.0);
  EXPECT_GT(churned_tail, base_tail + 1.0);
}

TEST(EvaluateDynamicTest, RemoveVmEventCools) {
  auto scenario = simple_scenario();
  ScenarioEvent remove;
  remove.kind = ScenarioEvent::Kind::kRemoveVm;
  remove.time_s = 700.0;
  remove.vm_id = "vm-0";
  scenario.events.push_back(remove);

  DynamicEvalOptions options;
  const auto base =
      evaluate_dynamic(shared_predictor(), simple_scenario(), options);
  const auto result = evaluate_dynamic(shared_predictor(), scenario, options);
  EXPECT_LT(result.trace.mean_sensed_between(1200.0, 1500.0),
            base.trace.mean_sensed_between(1200.0, 1500.0) - 0.5);
}

TEST(EvaluateDynamicTest, SetFansEventTakesEffect) {
  auto scenario = simple_scenario();
  ScenarioEvent fans;
  fans.kind = ScenarioEvent::Kind::kSetFans;
  fans.time_s = 700.0;
  fans.fans = 1;
  scenario.events.push_back(fans);

  DynamicEvalOptions options;
  const auto base =
      evaluate_dynamic(shared_predictor(), simple_scenario(), options);
  const auto result = evaluate_dynamic(shared_predictor(), scenario, options);
  EXPECT_GT(result.trace.mean_sensed_between(1200.0, 1500.0),
            base.trace.mean_sensed_between(1200.0, 1500.0) + 1.0);
}

TEST(EvaluateDynamicTest, UnsortedEventsRejected) {
  auto scenario = simple_scenario();
  ScenarioEvent a;
  a.time_s = 900.0;
  ScenarioEvent b;
  b.time_s = 300.0;
  b.vm.task = sim::TaskType::kIdle;
  scenario.events = {a, b};
  EXPECT_THROW(
      (void)evaluate_dynamic(shared_predictor(), scenario, DynamicEvalOptions{}),
      ConfigError);
}

TEST(EvaluateDynamicTest, InvalidGapRejected) {
  DynamicEvalOptions options;
  options.gap_s = 0.0;
  EXPECT_THROW(
      (void)evaluate_dynamic(shared_predictor(), simple_scenario(), options),
      ConfigError);
}

TEST(SweepTest, ShapeMatchesInputs) {
  const std::vector<DynamicScenario> scenarios = {simple_scenario()};
  const std::vector<double> gaps = {30.0, 60.0};
  const std::vector<double> updates = {15.0, 30.0, 60.0};
  const auto grid = sweep_gap_update(shared_predictor(), scenarios, gaps,
                                     updates, DynamicOptions{});
  ASSERT_EQ(grid.size(), 2u);
  for (const auto& row : grid) {
    ASSERT_EQ(row.size(), 3u);
    for (double v : row) EXPECT_GT(v, 0.0);
  }
}

TEST(SweepTest, EmptyInputsRejected) {
  EXPECT_THROW((void)sweep_gap_update(shared_predictor(), {}, {60.0}, {15.0},
                                      DynamicOptions{}),
               ConfigError);
  EXPECT_THROW(
      (void)sweep_gap_update(shared_predictor(), {simple_scenario()}, {},
                             {15.0}, DynamicOptions{}),
      ConfigError);
}

TEST(MakeRandomDynamicScenarioTest, WellFormed) {
  for (std::uint64_t seed : {1, 2, 3}) {
    const auto scenario =
        make_random_dynamic_scenario(fast_ranges(), 4, seed);
    EXPECT_NO_THROW(scenario.base.validate());
    EXPECT_EQ(scenario.base.active_fans, 4);
    EXPECT_FALSE(scenario.events.empty());
    for (std::size_t i = 1; i < scenario.events.size(); ++i) {
      EXPECT_LE(scenario.events[i - 1].time_s, scenario.events[i].time_s);
    }
  }
}

TEST(MakeRandomDynamicScenarioTest, RunsEndToEnd) {
  const auto scenario = make_random_dynamic_scenario(fast_ranges(), 4, 5);
  DynamicEvalOptions options;
  const auto result = evaluate_dynamic(shared_predictor(), scenario, options);
  EXPECT_FALSE(result.points.empty());
}

}  // namespace
}  // namespace vmtherm::core
