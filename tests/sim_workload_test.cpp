// Tests for sim/workload: generator properties across all task types.

#include "sim/workload.h"

#include <gtest/gtest.h>

#include <string>

#include "util/error.h"
#include "util/stats.h"

namespace vmtherm::sim {
namespace {

class WorkloadTypeTest : public ::testing::TestWithParam<TaskType> {};

INSTANTIATE_TEST_SUITE_P(
    AllTypes, WorkloadTypeTest, ::testing::ValuesIn(all_task_types()),
    [](const ::testing::TestParamInfo<TaskType>& param_info) {
      return task_type_name(param_info.param);
    });

TEST_P(WorkloadTypeTest, UtilizationStaysInUnitInterval) {
  auto model = make_utilization_model(GetParam(), Rng(1));
  for (int i = 0; i < 2000; ++i) {
    const double u = model->step(5.0);
    ASSERT_GE(u, 0.0);
    ASSERT_LE(u, 1.0);
  }
}

TEST_P(WorkloadTypeTest, LongRunMeanMatchesDeclaredDemand) {
  // Average several seeds: each generator's realized long-run mean should
  // approach task_type_mean_utilization.
  RunningStats stats;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    auto model = make_utilization_model(GetParam(), Rng(seed));
    for (int i = 0; i < 3000; ++i) stats.add(model->step(5.0));
  }
  EXPECT_NEAR(stats.mean(), task_type_mean_utilization(GetParam()), 0.06)
      << task_type_name(GetParam());
}

TEST_P(WorkloadTypeTest, ModelMeanAccessorMatchesDeclared) {
  auto model = make_utilization_model(GetParam(), Rng(3));
  EXPECT_NEAR(model->mean_utilization(),
              task_type_mean_utilization(GetParam()), 0.02);
}

TEST_P(WorkloadTypeTest, DeterministicGivenSeed) {
  auto a = make_utilization_model(GetParam(), Rng(77));
  auto b = make_utilization_model(GetParam(), Rng(77));
  for (int i = 0; i < 500; ++i) {
    ASSERT_DOUBLE_EQ(a->step(5.0), b->step(5.0));
  }
}

TEST_P(WorkloadTypeTest, DifferentSeedsProduceDifferentPaths) {
  auto a = make_utilization_model(GetParam(), Rng(1));
  auto b = make_utilization_model(GetParam(), Rng(2));
  double total_diff = 0.0;
  for (int i = 0; i < 500; ++i) {
    total_diff += std::abs(a->step(5.0) - b->step(5.0));
  }
  // Idle is nearly deterministic at ~0.02 but still noise-driven; any
  // nonzero accumulated difference suffices.
  EXPECT_GT(total_diff, 0.0);
}

TEST(WorkloadNamesTest, NameRoundTrip) {
  for (TaskType t : all_task_types()) {
    EXPECT_EQ(task_type_from_name(task_type_name(t)), t);
  }
}

TEST(WorkloadNamesTest, UnknownNameThrows) {
  EXPECT_THROW((void)task_type_from_name("quantum"), ConfigError);
}

TEST(WorkloadSemanticsTest, CpuBurnHotterThanIdle) {
  EXPECT_GT(task_type_mean_utilization(TaskType::kCpuBurn),
            task_type_mean_utilization(TaskType::kIdle) + 0.5);
}

TEST(WorkloadSemanticsTest, MemoryBoundHasHighestMemoryActivity) {
  for (TaskType t : all_task_types()) {
    if (t == TaskType::kMemoryBound) continue;
    EXPECT_GT(task_type_memory_activity(TaskType::kMemoryBound),
              task_type_memory_activity(t));
  }
}

TEST(WorkloadSemanticsTest, MemoryActivityInUnitInterval) {
  for (TaskType t : all_task_types()) {
    EXPECT_GE(task_type_memory_activity(t), 0.0);
    EXPECT_LE(task_type_memory_activity(t), 1.0);
  }
}

TEST(BurstyWorkloadTest, VisitsBothRegimes) {
  auto model = make_utilization_model(TaskType::kBursty, Rng(5));
  int low = 0;
  int high = 0;
  for (int i = 0; i < 2000; ++i) {
    const double u = model->step(5.0);
    if (u < 0.2) ++low;
    if (u > 0.45) ++high;
  }
  EXPECT_GT(low, 50);
  EXPECT_GT(high, 50);
}

TEST(DiurnalWorkloadTest, OscillatesAroundMean) {
  auto model = make_utilization_model(TaskType::kWebServer, Rng(6));
  RunningStats stats;
  for (int i = 0; i < 2000; ++i) stats.add(model->step(5.0));
  // Amplitude 0.25 -> visible spread well above measurement noise.
  EXPECT_GT(stats.stddev(), 0.10);
  EXPECT_LT(stats.stddev(), 0.35);
}

}  // namespace
}  // namespace vmtherm::sim
