// Tests for util/rng: determinism, distribution sanity, substreams.

#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace vmtherm {
namespace {

TEST(SplitMix64Test, KnownSequenceIsStable) {
  SplitMix64 a(12345);
  SplitMix64 b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(SplitMix64Test, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(RngTest, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDifferentStreams) {
  Rng a(42);
  Rng b(43);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(13);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.uniform_int(2, 5);
    ASSERT_GE(v, 2);
    ASSERT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(13);
  EXPECT_EQ(rng.uniform_int(3, 3), 3);
  // hi < lo falls back to lo.
  EXPECT_EQ(rng.uniform_int(5, 2), 5);
}

TEST(RngTest, NormalMoments) {
  Rng rng(17);
  const int n = 200000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, NormalWithParamsShifts) {
  Rng rng(19);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, BernoulliEdges) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-1.0));
    EXPECT_TRUE(rng.bernoulli(2.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ExponentialMeanIsInverseRate) {
  Rng rng(31);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(0.25);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(37);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.weighted_index(weights)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(RngTest, WeightedIndexDegenerateInputs) {
  Rng rng(41);
  EXPECT_EQ(rng.weighted_index({}), 0u);
  EXPECT_EQ(rng.weighted_index({0.0, 0.0}), 0u);
  EXPECT_EQ(rng.weighted_index({-1.0, -2.0}), 0u);
}

TEST(RngTest, PermutationIsValid) {
  Rng rng(43);
  const auto perm = rng.permutation(100);
  ASSERT_EQ(perm.size(), 100u);
  std::set<std::size_t> unique(perm.begin(), perm.end());
  EXPECT_EQ(unique.size(), 100u);
  EXPECT_EQ(*unique.begin(), 0u);
  EXPECT_EQ(*unique.rbegin(), 99u);
}

TEST(RngTest, PermutationEmptyAndSingle) {
  Rng rng(47);
  EXPECT_TRUE(rng.permutation(0).empty());
  const auto one = rng.permutation(1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 0u);
}

TEST(RngTest, PermutationActuallyShuffles) {
  Rng rng(53);
  const auto perm = rng.permutation(50);
  bool any_moved = false;
  for (std::size_t i = 0; i < perm.size(); ++i) {
    if (perm[i] != i) any_moved = true;
  }
  EXPECT_TRUE(any_moved);
}

TEST(RngTest, ForkedStreamsAreIndependent) {
  Rng parent(59);
  Rng child_a = parent.fork(1);
  Rng child_b = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (child_a.next_u64() == child_b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, ForkIsDeterministicFromParentState) {
  Rng parent_a(61);
  Rng parent_b(61);
  Rng child_a = parent_a.fork(9);
  Rng child_b = parent_b.fork(9);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(child_a.next_u64(), child_b.next_u64());
  }
}

TEST(RngTest, RepeatedForkSameIdDiffers) {
  // fork advances the parent, so two forks with the same id differ.
  Rng parent(67);
  Rng child_a = parent.fork(3);
  Rng child_b = parent.fork(3);
  EXPECT_NE(child_a.next_u64(), child_b.next_u64());
}

}  // namespace
}  // namespace vmtherm
