// Tests for serve/metrics: counters, gauges, histograms and the registry.

#include "serve/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace vmtherm::serve {
namespace {

TEST(MetricsTest, CounterAccumulates) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.set(7);
  EXPECT_EQ(counter.value(), 7u);
}

TEST(MetricsTest, GaugeSetAddAndMax) {
  Gauge gauge;
  gauge.set(5);
  gauge.add(-8);
  EXPECT_EQ(gauge.value(), -3);
  gauge.update_max(10);
  EXPECT_EQ(gauge.value(), 10);
  gauge.update_max(4);  // lower: no change
  EXPECT_EQ(gauge.value(), 10);
}

TEST(MetricsTest, HistogramRejectsBadBounds) {
  EXPECT_THROW(Histogram(std::vector<double>{}), ConfigError);
  EXPECT_THROW(Histogram({1.0, 1.0}), ConfigError);
  EXPECT_THROW(Histogram({2.0, 1.0}), ConfigError);
}

TEST(MetricsTest, HistogramBucketsAndOverflow) {
  Histogram hist({1.0, 2.0, 4.0});
  EXPECT_EQ(hist.bucket_count(), 4u);  // 3 finite + overflow
  hist.record(0.5);   // bucket 0
  hist.record(1.0);   // bucket 0 (<= upper bound)
  hist.record(1.5);   // bucket 1
  hist.record(3.0);   // bucket 2
  hist.record(100.0); // overflow
  EXPECT_EQ(hist.count_in_bucket(0), 2u);
  EXPECT_EQ(hist.count_in_bucket(1), 1u);
  EXPECT_EQ(hist.count_in_bucket(2), 1u);
  EXPECT_EQ(hist.count_in_bucket(3), 1u);
  EXPECT_EQ(hist.total_count(), 5u);
}

TEST(MetricsTest, HistogramQuantiles) {
  Histogram hist({10.0, 20.0, 40.0});
  EXPECT_EQ(hist.quantile(0.5), 0.0);  // empty
  for (int i = 0; i < 100; ++i) hist.record(5.0);
  const double p50 = hist.quantile(0.5);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, 10.0);
  for (int i = 0; i < 900; ++i) hist.record(1000.0);  // overflow bucket
  // Overflow quantiles report the last finite bound.
  EXPECT_EQ(hist.quantile(0.99), 40.0);
}

TEST(MetricsTest, HistogramSetCountsValidatesSize) {
  Histogram hist({1.0, 2.0});
  EXPECT_THROW(hist.set_counts({1, 2}), ConfigError);  // needs 3
  hist.set_counts({1, 2, 3});
  EXPECT_EQ(hist.total_count(), 6u);
}

TEST(MetricsTest, RegistryIsIdempotent) {
  MetricsRegistry registry;
  Counter& a = registry.counter("x");
  Counter& b = registry.counter("x");
  EXPECT_EQ(&a, &b);
  Histogram& h1 = registry.histogram("h", {1.0, 2.0});
  Histogram& h2 = registry.histogram("h", {1.0, 2.0});
  EXPECT_EQ(&h1, &h2);
}

TEST(MetricsTest, RegistryRejectsKindAndBoundsMismatch) {
  MetricsRegistry registry;
  registry.counter("c", MetricKind::kDeterministic);
  EXPECT_THROW(registry.counter("c", MetricKind::kTiming), ConfigError);
  registry.histogram("h", {1.0, 2.0});
  EXPECT_THROW(registry.histogram("h", {1.0, 3.0}), ConfigError);
  registry.gauge("g");
  EXPECT_THROW(registry.gauge("g", MetricKind::kTiming), ConfigError);
}

TEST(MetricsTest, JsonFiltersTimingMetrics) {
  MetricsRegistry registry;
  registry.counter("events").add(3);
  registry.counter("wall_clock", MetricKind::kTiming).add(99);
  registry.histogram("lat_us", {1.0}, MetricKind::kTiming).record(0.5);
  registry.gauge("hosts").set(2);

  const std::string all = registry.to_json(/*include_timing=*/true);
  EXPECT_NE(all.find("wall_clock"), std::string::npos);
  EXPECT_NE(all.find("lat_us"), std::string::npos);

  const std::string deterministic = registry.to_json(/*include_timing=*/false);
  EXPECT_EQ(deterministic.find("wall_clock"), std::string::npos);
  EXPECT_EQ(deterministic.find("lat_us"), std::string::npos);
  EXPECT_NE(deterministic.find("\"events\":3"), std::string::npos);
  EXPECT_NE(deterministic.find("\"hosts\":2"), std::string::npos);
}

// Regression: metric names used to be emitted raw, so a quote, backslash
// or control character in a name corrupted the JSON document.
TEST(MetricsTest, JsonEscapesHostileMetricNames) {
  MetricsRegistry registry;
  registry.counter("evil\"name").add(1);
  registry.gauge("back\\slash").set(2);
  registry.histogram("tab\there\nnewline", {1.0}).record(0.5);
  registry.counter(std::string("ctrl\x01" "char")).add(3);

  const std::string json = registry.to_json();
  EXPECT_NE(json.find("\"evil\\\"name\":1"), std::string::npos);
  EXPECT_NE(json.find("\"back\\\\slash\":2"), std::string::npos);
  EXPECT_NE(json.find("tab\\there\\nnewline"), std::string::npos);
  EXPECT_NE(json.find("ctrl\\u0001char"), std::string::npos);
  // No raw quote survives inside any name: every interior '"' in the
  // document is structural or escaped.
  EXPECT_EQ(json.find("evil\"name"), std::string::npos);
  EXPECT_EQ(json.find("tab\there"), std::string::npos);
}

TEST(MetricsTest, TableListsEveryMetric) {
  MetricsRegistry registry;
  registry.counter("a").add(1);
  registry.gauge("b").set(2);
  registry.histogram("c", {1.0}).record(0.5);
  const Table table = registry.to_table();
  EXPECT_EQ(table.row_count(), 3u);
}

TEST(MetricsTest, ConcurrentUpdatesAreLossless) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("n");
  Histogram& hist = registry.histogram("h", {0.5});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&counter, &hist] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.add(1);
        hist.record(i % 2 == 0 ? 0.25 : 1.0);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(hist.total_count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace vmtherm::serve
