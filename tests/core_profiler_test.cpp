// Tests for core/profiler: Eq. (1) and stability diagnostics.

#include "core/profiler.h"

#include <gtest/gtest.h>

#include <cmath>

namespace vmtherm::core {
namespace {

sim::TemperatureTrace synthetic_trace(double duration_s, double interval_s,
                                      double (*temp_at)(double)) {
  sim::TemperatureTrace trace(interval_s);
  for (double t = 0.0; t <= duration_s + 1e-9; t += interval_s) {
    sim::TracePoint p;
    p.time_s = t;
    p.cpu_temp_sensed_c = temp_at(t);
    p.cpu_temp_true_c = temp_at(t);
    trace.push_back(p);
  }
  return trace;
}

double step_to_60(double t) { return t < 600.0 ? 30.0 + t / 20.0 : 60.0; }
double always_55(double) { return 55.0; }

TEST(StableTemperatureTest, AveragesPastTbreak) {
  const auto trace = synthetic_trace(1200.0, 5.0, step_to_60);
  EXPECT_DOUBLE_EQ(stable_temperature(trace, 600.0), 60.0);
}

TEST(StableTemperatureTest, ConstantTraceReturnsConstant) {
  const auto trace = synthetic_trace(1200.0, 5.0, always_55);
  EXPECT_DOUBLE_EQ(stable_temperature(trace), 55.0);
}

TEST(StableTemperatureTest, DefaultTbreakIs600s) {
  EXPECT_DOUBLE_EQ(kDefaultTbreakS, 600.0);
}

TEST(StableTemperatureTest, ShortTraceThrows) {
  const auto trace = synthetic_trace(500.0, 5.0, always_55);
  EXPECT_THROW((void)stable_temperature(trace, 600.0), DataError);
  sim::TemperatureTrace empty;
  EXPECT_THROW((void)stable_temperature(empty, 600.0), DataError);
}

TEST(StableTemperatureTest, CustomTbreakChangesWindow) {
  // Ramp from 0 to 100 over [0, 1000]: mean over [t_break, 1000] depends on
  // t_break.
  const auto trace = synthetic_trace(1000.0, 10.0, [](double t) {
    return t / 10.0;
  });
  const double late = stable_temperature(trace, 900.0);
  const double early = stable_temperature(trace, 100.0);
  EXPECT_GT(late, early);
  EXPECT_NEAR(late, 95.0, 1e-9);
  EXPECT_NEAR(early, 55.0, 1e-9);
}

TEST(ProfileTraceTest, StableTraceReportedStable) {
  const auto trace = synthetic_trace(1500.0, 5.0, step_to_60);
  const auto report = profile_trace(trace);
  EXPECT_TRUE(report.stable);
  EXPECT_DOUBLE_EQ(report.psi_stable, 60.0);
  EXPECT_LT(report.window_stddev_c, 0.01);
  // Temperature enters the +-1 band of 60 at t = 580 (30 + t/20 = 59).
  EXPECT_NEAR(report.settling_time_s, 580.0, 10.0);
}

TEST(ProfileTraceTest, NoisyTraceReportedUnstable) {
  const auto trace = synthetic_trace(1500.0, 5.0, [](double t) {
    return 50.0 + 5.0 * std::sin(t / 30.0);
  });
  ProfilerOptions options;
  options.stability_stddev_c = 0.8;
  const auto report = profile_trace(trace, options);
  EXPECT_FALSE(report.stable);
  EXPECT_GT(report.window_stddev_c, 2.0);
}

TEST(ProfileTraceTest, ConstantTraceSettlesImmediately) {
  const auto trace = synthetic_trace(1200.0, 5.0, always_55);
  const auto report = profile_trace(trace);
  EXPECT_DOUBLE_EQ(report.settling_time_s, 0.0);
}

TEST(ProfileExperimentTest, LabelsRecordFromSimulation) {
  sim::ExperimentConfig config;
  config.server = sim::make_server_spec("medium");
  sim::VmConfig vm;
  vm.vcpus = 4;
  vm.memory_gb = 4.0;
  vm.task = sim::TaskType::kCpuBurn;
  config.vms = {vm, vm};
  config.duration_s = 1500.0;
  config.active_fans = 4;
  config.environment.base_c = 22.0;
  config.seed = 5;

  const Record record = profile_experiment(config);
  EXPECT_DOUBLE_EQ(record.cpu_capacity_ghz, config.server.cpu_capacity_ghz());
  EXPECT_DOUBLE_EQ(record.vm.vm_count, 2.0);
  // Two cpu-burn VMs on a medium box at 22 C ambient: comfortably warmer
  // than ambient, well below boiling.
  EXPECT_GT(record.stable_temp_c, 30.0);
  EXPECT_LT(record.stable_temp_c, 90.0);
}

TEST(ProfileExperimentsTest, BatchMatchesIndividual) {
  sim::ScenarioRanges ranges;
  ranges.duration_s = 1200.0;
  sim::ScenarioSampler sampler(ranges, 9);
  const auto configs = sampler.sample(3);
  const auto batch = profile_experiments(configs);
  ASSERT_EQ(batch.size(), 3u);
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const Record single = profile_experiment(configs[i]);
    EXPECT_DOUBLE_EQ(batch[i].stable_temp_c, single.stable_temp_c);
  }
}

}  // namespace
}  // namespace vmtherm::core
