// Tests for sim/thermal: RC network physics.

#include "sim/thermal.h"

#include <gtest/gtest.h>

#include <cmath>

namespace vmtherm::sim {
namespace {

ThermalParams default_params() { return ThermalParams{}; }

TEST(ThermalNetworkTest, StartsAtInitialTemperature) {
  ThermalNetwork net(default_params(), 25.0);
  EXPECT_DOUBLE_EQ(net.die_temp_c(), 25.0);
  EXPECT_DOUBLE_EQ(net.sink_temp_c(), 25.0);
}

TEST(ThermalNetworkTest, ConvergesToAnalyticSteadyState) {
  ThermalNetwork net(default_params(), 22.0);
  const double power = 180.0;
  const double ambient = 22.0;
  const int fans = 4;
  const double expected = net.steady_state_die_c(power, ambient, fans);
  // Run long past the slow time constant.
  const double horizon = 12.0 * net.slow_time_constant_s(fans);
  for (double t = 0.0; t < horizon; t += 5.0) {
    net.step(5.0, power, ambient, fans);
  }
  EXPECT_NEAR(net.die_temp_c(), expected, 0.05);
}

TEST(ThermalNetworkTest, SteadyStateFormula) {
  ThermalParams p = default_params();
  ThermalNetwork net(p, 20.0);
  const double expected =
      25.0 + 100.0 * (p.die_to_sink_resistance + p.sink_to_ambient(4));
  EXPECT_NEAR(net.steady_state_die_c(100.0, 25.0, 4), expected, 1e-12);
}

TEST(ThermalNetworkTest, ZeroPowerDecaysToAmbient) {
  ThermalNetwork net(default_params(), 70.0);
  for (int i = 0; i < 2000; ++i) net.step(5.0, 0.0, 22.0, 4);
  EXPECT_NEAR(net.die_temp_c(), 22.0, 0.1);
  EXPECT_NEAR(net.sink_temp_c(), 22.0, 0.1);
}

TEST(ThermalNetworkTest, TemperatureRiseIsMonotonicFromCold) {
  ThermalNetwork net(default_params(), 22.0);
  double prev = net.die_temp_c();
  for (int i = 0; i < 200; ++i) {
    net.step(5.0, 200.0, 22.0, 4);
    EXPECT_GE(net.die_temp_c(), prev - 1e-9);
    prev = net.die_temp_c();
  }
}

TEST(ThermalNetworkTest, MorePowerMeansHotter) {
  ThermalNetwork low(default_params(), 22.0);
  ThermalNetwork high(default_params(), 22.0);
  for (int i = 0; i < 500; ++i) {
    low.step(5.0, 100.0, 22.0, 4);
    high.step(5.0, 220.0, 22.0, 4);
  }
  EXPECT_GT(high.die_temp_c(), low.die_temp_c() + 5.0);
}

TEST(ThermalNetworkTest, MoreFansMeansCooler) {
  ThermalNetwork few(default_params(), 22.0);
  ThermalNetwork many(default_params(), 22.0);
  for (int i = 0; i < 500; ++i) {
    few.step(5.0, 200.0, 22.0, 1);
    many.step(5.0, 200.0, 22.0, 6);
  }
  EXPECT_GT(few.die_temp_c(), many.die_temp_c() + 3.0);
}

TEST(ThermalNetworkTest, HotterAmbientShiftsSteadyState) {
  ThermalNetwork net(default_params(), 20.0);
  const double a = net.steady_state_die_c(150.0, 18.0, 4);
  const double b = net.steady_state_die_c(150.0, 30.0, 4);
  EXPECT_NEAR(b - a, 12.0, 1e-9);  // ambient shifts 1:1
}

TEST(ThermalNetworkTest, DieLeadsSinkDuringHeating) {
  ThermalNetwork net(default_params(), 22.0);
  for (int i = 0; i < 20; ++i) net.step(5.0, 200.0, 22.0, 4);
  EXPECT_GT(net.die_temp_c(), net.sink_temp_c());
}

TEST(ThermalNetworkTest, StepResponseIsExponentialNotLogarithmic) {
  // The half-way settling point of an exponential comes much later than a
  // log curve's: verify the distinctive slow tail that motivates the
  // paper's run-time calibration.
  ThermalNetwork net(default_params(), 22.0);
  const double target = net.steady_state_die_c(200.0, 22.0, 4);
  const double tau = net.slow_time_constant_s(4);
  // After one slow time constant the gap should be roughly exp(-1) of the
  // initial gap (within tolerance; the fast mode skews it slightly).
  double remaining = 0.0;
  for (double t = 0.0; t < tau; t += 1.0) net.step(1.0, 200.0, 22.0, 4);
  remaining = (target - net.die_temp_c()) / (target - 22.0);
  EXPECT_GT(remaining, 0.15);
  EXPECT_LT(remaining, 0.55);
}

TEST(ThermalNetworkTest, NegativeOrZeroDtIsNoop) {
  ThermalNetwork net(default_params(), 30.0);
  net.step(0.0, 500.0, 22.0, 4);
  EXPECT_DOUBLE_EQ(net.die_temp_c(), 30.0);
  net.step(-5.0, 500.0, 22.0, 4);
  EXPECT_DOUBLE_EQ(net.die_temp_c(), 30.0);
}

TEST(ThermalNetworkTest, ResetForcesState) {
  ThermalNetwork net(default_params(), 22.0);
  net.reset(55.0, 48.0);
  EXPECT_DOUBLE_EQ(net.die_temp_c(), 55.0);
  EXPECT_DOUBLE_EQ(net.sink_temp_c(), 48.0);
}

TEST(ThermalNetworkTest, LargeStepMatchesManySmallSteps) {
  // Sub-stepping makes a single 60 s call equivalent to 60 x 1 s calls
  // (both well-resolved).
  ThermalNetwork a(default_params(), 22.0);
  ThermalNetwork b(default_params(), 22.0);
  a.step(60.0, 200.0, 22.0, 4);
  for (int i = 0; i < 60; ++i) b.step(1.0, 200.0, 22.0, 4);
  EXPECT_NEAR(a.die_temp_c(), b.die_temp_c(), 0.05);
  EXPECT_NEAR(a.sink_temp_c(), b.sink_temp_c(), 0.05);
}

TEST(ThermalNetworkTest, SlowTimeConstantDependsOnFans) {
  ThermalNetwork net(default_params(), 22.0);
  EXPECT_GT(net.slow_time_constant_s(1), net.slow_time_constant_s(6));
}

TEST(ThermalNetworkTest, InvalidParamsRejectedAtConstruction) {
  ThermalParams p;
  p.die_capacitance_j_per_k = -1.0;
  EXPECT_THROW(ThermalNetwork(p, 22.0), ConfigError);
}

}  // namespace
}  // namespace vmtherm::sim
