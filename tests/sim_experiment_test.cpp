// Tests for sim/experiment: experiment runner + randomized scenario sampler.

#include "sim/experiment.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

namespace vmtherm::sim {
namespace {

ExperimentConfig small_config() {
  ExperimentConfig config;
  config.server = make_server_spec("medium");
  VmConfig vm;
  vm.vcpus = 4;
  vm.memory_gb = 4.0;
  vm.task = TaskType::kBatch;
  config.vms = {vm, vm};
  config.duration_s = 900.0;
  config.sample_interval_s = 5.0;
  config.active_fans = 4;
  config.seed = 123;
  return config;
}

TEST(RunExperimentTest, TraceCoversDuration) {
  const auto result = run_experiment(small_config());
  EXPECT_DOUBLE_EQ(result.trace.duration_s(), 900.0);
  EXPECT_EQ(result.trace.size(), 181u);  // t=0 plus 180 samples
  EXPECT_DOUBLE_EQ(result.trace[0].time_s, 0.0);
}

TEST(RunExperimentTest, DeterministicGivenConfig) {
  const auto a = run_experiment(small_config());
  const auto b = run_experiment(small_config());
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    ASSERT_DOUBLE_EQ(a.trace[i].cpu_temp_sensed_c,
                     b.trace[i].cpu_temp_sensed_c);
  }
}

TEST(RunExperimentTest, DifferentSeedsDifferentTraces) {
  auto config = small_config();
  const auto a = run_experiment(config);
  config.seed = 456;
  const auto b = run_experiment(config);
  double diff = 0.0;
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    diff += std::abs(a.trace[i].cpu_temp_sensed_c -
                     b.trace[i].cpu_temp_sensed_c);
  }
  EXPECT_GT(diff, 0.1);
}

TEST(RunExperimentTest, TemperatureRisesFromColdStart) {
  const auto result = run_experiment(small_config());
  const double first = result.trace[0].cpu_temp_true_c;
  const double last = result.trace[result.trace.size() - 1].cpu_temp_true_c;
  EXPECT_GT(last, first + 5.0);
}

TEST(RunExperimentTest, VmCountRecordedInTrace) {
  const auto result = run_experiment(small_config());
  for (const auto& p : result.trace.points()) {
    EXPECT_EQ(p.vm_count, 2);
  }
}

TEST(RunExperimentTest, InvalidConfigRejected) {
  auto config = small_config();
  config.active_fans = 99;
  EXPECT_THROW((void)run_experiment(config), ConfigError);

  config = small_config();
  config.sample_interval_s = 0.0;
  EXPECT_THROW((void)run_experiment(config), ConfigError);

  config = small_config();
  config.vms[0].memory_gb = 1000.0;
  EXPECT_THROW((void)run_experiment(config), ConfigError);
}

TEST(ScenarioSamplerTest, DeterministicGivenSeed) {
  ScenarioRanges ranges;
  ScenarioSampler a(ranges, 99);
  ScenarioSampler b(ranges, 99);
  for (int i = 0; i < 10; ++i) {
    const auto ca = a.next();
    const auto cb = b.next();
    EXPECT_EQ(ca.vms.size(), cb.vms.size());
    EXPECT_EQ(ca.active_fans, cb.active_fans);
    EXPECT_DOUBLE_EQ(ca.environment.base_c, cb.environment.base_c);
    EXPECT_EQ(ca.seed, cb.seed);
  }
}

class SamplerSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SamplerSeedTest,
                         ::testing::Values(1, 2, 3, 17, 99, 123456));

TEST_P(SamplerSeedTest, SampledConfigsRespectRanges) {
  ScenarioRanges ranges;
  ScenarioSampler sampler(ranges, GetParam());
  for (const auto& config : sampler.sample(20)) {
    EXPECT_NO_THROW(config.validate());
    EXPECT_GE(static_cast<int>(config.vms.size()), ranges.min_vms);
    EXPECT_LE(static_cast<int>(config.vms.size()), ranges.max_vms);
    EXPECT_GE(config.active_fans, 1);
    EXPECT_LE(config.active_fans, config.server.fan_slots);
    EXPECT_GE(config.environment.base_c, ranges.min_env_c);
    EXPECT_LE(config.environment.base_c, ranges.max_env_c);
    double mem = 0.0;
    for (const auto& vm : config.vms) mem += vm.memory_gb;
    EXPECT_LE(mem, config.server.memory_gb);
  }
}

TEST(ScenarioSamplerTest, ProducesVariety) {
  ScenarioRanges ranges;
  ScenarioSampler sampler(ranges, 7);
  std::set<std::size_t> vm_counts;
  std::set<int> fan_counts;
  std::set<std::string> servers;
  for (const auto& config : sampler.sample(60)) {
    vm_counts.insert(config.vms.size());
    fan_counts.insert(config.active_fans);
    servers.insert(config.server.name);
  }
  EXPECT_GE(vm_counts.size(), 5u);
  EXPECT_GE(fan_counts.size(), 3u);
  EXPECT_GE(servers.size(), 2u);
}

TEST(ScenarioSamplerTest, InvalidRangesRejected) {
  ScenarioRanges ranges;
  ranges.min_vms = 5;
  ranges.max_vms = 2;
  EXPECT_THROW(ScenarioSampler(ranges, 1), ConfigError);

  ranges = ScenarioRanges{};
  ranges.server_kinds.clear();
  EXPECT_THROW(ScenarioSampler(ranges, 1), ConfigError);
}

TEST(ScenarioSamplerTest, DynamicEnvironmentsAppearWithProbability) {
  ScenarioRanges ranges;
  ranges.dynamic_env_probability = 1.0;
  ScenarioSampler sampler(ranges, 3);
  for (const auto& config : sampler.sample(10)) {
    EXPECT_NE(config.environment.kind, EnvScheduleKind::kConstant);
  }

  ranges.dynamic_env_probability = 0.0;
  ScenarioSampler constant_sampler(ranges, 3);
  for (const auto& config : constant_sampler.sample(10)) {
    EXPECT_EQ(config.environment.kind, EnvScheduleKind::kConstant);
  }
}

}  // namespace
}  // namespace vmtherm::sim
