// Tests for core/curve: Eq. (3) boundary conditions and shape.

#include "core/curve.h"

#include <gtest/gtest.h>

#include <cmath>

namespace vmtherm::core {
namespace {

TEST(CurveTest, StartsAtPhi0) {
  const PredefinedCurve curve(30.0, 60.0, 600.0);
  EXPECT_DOUBLE_EQ(curve.value(0.0), 30.0);
}

TEST(CurveTest, ReachesPsiStableAtTbreak) {
  const PredefinedCurve curve(30.0, 60.0, 600.0);
  EXPECT_NEAR(curve.value(600.0), 60.0, 1e-9);
}

TEST(CurveTest, FlatAfterTbreak) {
  const PredefinedCurve curve(30.0, 60.0, 600.0);
  EXPECT_DOUBLE_EQ(curve.value(601.0), 60.0);
  EXPECT_DOUBLE_EQ(curve.value(1e6), 60.0);
}

TEST(CurveTest, NegativeTimeClampedToStart) {
  const PredefinedCurve curve(30.0, 60.0, 600.0);
  EXPECT_DOUBLE_EQ(curve.value(-50.0), 30.0);
}

TEST(CurveTest, MonotonicRiseWhenHeating) {
  const PredefinedCurve curve(30.0, 60.0, 600.0);
  double prev = curve.value(0.0);
  for (double t = 10.0; t <= 600.0; t += 10.0) {
    const double v = curve.value(t);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(CurveTest, MonotonicFallWhenCooling) {
  // phi0 above psi_stable: the curve descends (VM removed, machine cools).
  const PredefinedCurve curve(70.0, 45.0, 600.0);
  double prev = curve.value(0.0);
  for (double t = 10.0; t <= 600.0; t += 10.0) {
    const double v = curve.value(t);
    EXPECT_LE(v, prev);
    prev = v;
  }
  EXPECT_NEAR(curve.value(600.0), 45.0, 1e-9);
}

TEST(CurveTest, ValuesBoundedByEndpoints) {
  const PredefinedCurve curve(30.0, 60.0, 600.0);
  for (double t = 0.0; t <= 900.0; t += 7.0) {
    const double v = curve.value(t);
    EXPECT_GE(v, 30.0 - 1e-12);
    EXPECT_LE(v, 60.0 + 1e-12);
  }
}

TEST(CurveTest, LogShapeIsFrontLoaded) {
  // The log curve covers more than half the rise by half of t_break
  // (distinctly different from linear).
  const PredefinedCurve curve(0.0, 100.0, 600.0);
  EXPECT_GT(curve.value(300.0), 55.0);
}

TEST(CurveTest, LargerCurvatureRisesFaster) {
  const PredefinedCurve slow(0.0, 100.0, 600.0, 0.01);
  const PredefinedCurve fast(0.0, 100.0, 600.0, 1.0);
  for (double t = 50.0; t < 600.0; t += 100.0) {
    EXPECT_GT(fast.value(t), slow.value(t)) << "t=" << t;
  }
}

TEST(CurveTest, DegenerateFlatCurve) {
  // phi0 == psi_stable: constant.
  const PredefinedCurve curve(50.0, 50.0, 600.0);
  for (double t = 0.0; t <= 700.0; t += 50.0) {
    EXPECT_DOUBLE_EQ(curve.value(t), 50.0);
  }
}

TEST(CurveTest, AccessorsExposeParameters) {
  const PredefinedCurve curve(30.0, 60.0, 450.0, 0.2);
  EXPECT_DOUBLE_EQ(curve.phi0(), 30.0);
  EXPECT_DOUBLE_EQ(curve.psi_stable(), 60.0);
  EXPECT_DOUBLE_EQ(curve.t_break_s(), 450.0);
  EXPECT_DOUBLE_EQ(curve.curvature(), 0.2);
}

TEST(CurveTest, InvalidParametersRejected) {
  EXPECT_THROW(PredefinedCurve(30.0, 60.0, 0.0), ConfigError);
  EXPECT_THROW(PredefinedCurve(30.0, 60.0, -10.0), ConfigError);
  EXPECT_THROW(PredefinedCurve(30.0, 60.0, 600.0, 0.0), ConfigError);
  EXPECT_THROW(PredefinedCurve(std::nan(""), 60.0, 600.0), ConfigError);
  EXPECT_THROW(PredefinedCurve(30.0, std::nan(""), 600.0), ConfigError);
}

}  // namespace
}  // namespace vmtherm::core
