// Tests for core/record_store: CSV round-trip of Eq. (2) corpora.

#include "core/record_store.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "core/evaluator.h"
#include "util/csv.h"

namespace vmtherm::core {
namespace {

std::vector<Record> sample_records() {
  sim::ScenarioRanges ranges;
  ranges.duration_s = 1200.0;
  ranges.sample_interval_s = 10.0;
  return generate_corpus(ranges, 6, 321);
}

TEST(RecordStoreTest, RoundTripPreservesEverything) {
  const auto records = sample_records();
  std::stringstream ss;
  write_records_csv(ss, records);
  const auto loaded = read_records_csv(ss);

  ASSERT_EQ(loaded.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_NEAR(loaded[i].cpu_capacity_ghz, records[i].cpu_capacity_ghz, 1e-9);
    EXPECT_NEAR(loaded[i].physical_cores, records[i].physical_cores, 1e-9);
    EXPECT_NEAR(loaded[i].memory_gb, records[i].memory_gb, 1e-9);
    EXPECT_NEAR(loaded[i].fan_count, records[i].fan_count, 1e-9);
    EXPECT_NEAR(loaded[i].env_temp_c, records[i].env_temp_c, 1e-9);
    EXPECT_NEAR(loaded[i].vm.vm_count, records[i].vm.vm_count, 1e-9);
    EXPECT_NEAR(loaded[i].vm.total_vcpus, records[i].vm.total_vcpus, 1e-9);
    EXPECT_NEAR(loaded[i].vm.total_memory_gb, records[i].vm.total_memory_gb,
                1e-9);
    EXPECT_NEAR(loaded[i].vm.active_memory_gb, records[i].vm.active_memory_gb,
                1e-9);
    EXPECT_NEAR(loaded[i].vm.mean_util_demand, records[i].vm.mean_util_demand,
                1e-9);
    EXPECT_NEAR(loaded[i].vm.max_util_demand, records[i].vm.max_util_demand,
                1e-9);
    EXPECT_NEAR(loaded[i].vm.demanded_cores, records[i].vm.demanded_cores,
                1e-9);
    for (std::size_t t = 0; t < sim::kTaskTypeCount; ++t) {
      EXPECT_NEAR(loaded[i].vm.task_share[t], records[i].vm.task_share[t],
                  1e-9);
    }
    EXPECT_NEAR(loaded[i].stable_temp_c, records[i].stable_temp_c, 1e-9);
  }
}

TEST(RecordStoreTest, RoundTripPreservesFeatureVectors) {
  // The ML pipeline consumes to_feature_vector; round-tripped records must
  // encode to (numerically) identical features.
  const auto records = sample_records();
  std::stringstream ss;
  write_records_csv(ss, records);
  const auto loaded = read_records_csv(ss);
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto a = to_feature_vector(records[i]);
    const auto b = to_feature_vector(loaded[i]);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t j = 0; j < a.size(); ++j) {
      EXPECT_NEAR(a[j], b[j], 1e-9);
    }
  }
}

TEST(RecordStoreTest, EmptyCorpusWritesHeaderOnly) {
  std::stringstream ss;
  write_records_csv(ss, {});
  const auto loaded = read_records_csv(ss);
  EXPECT_TRUE(loaded.empty());
}

TEST(RecordStoreTest, ColumnOrderIndependent) {
  // Shuffle columns: read must match by name.
  std::stringstream ss;
  write_records_csv(ss, sample_records());
  std::string text = ss.str();
  // Swap the first two header names AND the first two data fields of every
  // row consistently by round-tripping through the csv module.
  std::istringstream in(text);
  auto doc = read_csv(in);
  std::swap(doc.header[0], doc.header[3]);
  for (auto& row : doc.rows) std::swap(row[0], row[3]);
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_row(doc.header);
  for (const auto& row : doc.rows) writer.write_row(row);

  std::istringstream shuffled(out.str());
  const auto loaded = read_records_csv(shuffled);
  const auto original = sample_records();
  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_NEAR(loaded[0].cpu_capacity_ghz, original[0].cpu_capacity_ghz, 1e-9);
  EXPECT_NEAR(loaded[0].fan_count, original[0].fan_count, 1e-9);
}

TEST(RecordStoreTest, MissingColumnThrows) {
  std::istringstream in("cpu_capacity_ghz\n38.4\n");
  EXPECT_THROW((void)read_records_csv(in), IoError);
}

TEST(RecordStoreTest, BadNumberThrows) {
  std::stringstream ss;
  write_records_csv(ss, sample_records());
  std::string text = ss.str();
  const auto pos = text.find('\n') + 1;  // first data row
  const auto end = text.find(',', pos);
  text.replace(pos, end - pos, "not_a_number");
  std::istringstream in(text);
  EXPECT_THROW((void)read_records_csv(in), IoError);
}

TEST(RecordStoreTest, FileRoundTrip) {
  const auto path = (std::filesystem::temp_directory_path() /
                     "vmtherm_record_store_test.csv")
                        .string();
  const auto records = sample_records();
  write_records_csv_file(path, records);
  const auto loaded = read_records_csv_file(path);
  EXPECT_EQ(loaded.size(), records.size());
  std::filesystem::remove(path);
}

TEST(RecordStoreTest, MissingFileThrows) {
  EXPECT_THROW((void)read_records_csv_file("/nonexistent/records.csv"),
               IoError);
  EXPECT_THROW(write_records_csv_file("/nonexistent/dir/records.csv", {}),
               IoError);
}

TEST(RecordStoreTest, TrainingFromPersistedCorpusWorks) {
  // The deployment story: profile -> persist -> train offline from file.
  const auto path = (std::filesystem::temp_directory_path() /
                     "vmtherm_record_store_train.csv")
                        .string();
  sim::ScenarioRanges ranges;
  ranges.duration_s = 1200.0;
  ranges.sample_interval_s = 10.0;
  write_records_csv_file(path, generate_corpus(ranges, 40, 99));

  const auto loaded = read_records_csv_file(path);
  StableTrainOptions options;
  ml::SvrParams params;
  params.kernel.gamma = 1.0 / 16;
  params.c = 256.0;
  params.epsilon = 0.05;
  options.fixed_params = params;
  const auto predictor = StableTemperaturePredictor::train(loaded, options);
  // Sanity: in-sample predictions are close.
  double se = 0.0;
  for (const auto& r : loaded) {
    se += (predictor.predict(r) - r.stable_temp_c) *
          (predictor.predict(r) - r.stable_temp_c);
  }
  EXPECT_LT(se / static_cast<double>(loaded.size()), 3.0);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace vmtherm::core
