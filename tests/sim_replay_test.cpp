// Tests for the trace-replay workload (sim/workload ReplayUtilization) and
// the custom-model Vm constructor.

#include <gtest/gtest.h>

#include "sim/machine.h"
#include "sim/workload.h"

namespace vmtherm::sim {
namespace {

TEST(ReplayTest, InvalidInputsRejected) {
  EXPECT_THROW(ReplayUtilization({}, 5.0), ConfigError);
  EXPECT_THROW(ReplayUtilization({0.5}, 0.0), ConfigError);
  EXPECT_THROW(ReplayUtilization({0.5}, -1.0), ConfigError);
}

TEST(ReplayTest, ValuesClampedToUnitInterval) {
  ReplayUtilization replay({-0.5, 2.0}, 10.0);
  EXPECT_DOUBLE_EQ(replay.step(10.0), 0.0);
  EXPECT_DOUBLE_EQ(replay.step(10.0), 1.0);
}

TEST(ReplayTest, ExactSampleAlignment) {
  ReplayUtilization replay({0.1, 0.5, 0.9}, 10.0);
  EXPECT_DOUBLE_EQ(replay.step(10.0), 0.1);
  EXPECT_DOUBLE_EQ(replay.step(10.0), 0.5);
  EXPECT_DOUBLE_EQ(replay.step(10.0), 0.9);
  // Loops.
  EXPECT_DOUBLE_EQ(replay.step(10.0), 0.1);
}

TEST(ReplayTest, SubSampleStepsAverageWithinSample) {
  ReplayUtilization replay({0.2, 0.8}, 10.0);
  EXPECT_DOUBLE_EQ(replay.step(5.0), 0.2);
  EXPECT_DOUBLE_EQ(replay.step(5.0), 0.2);
  EXPECT_DOUBLE_EQ(replay.step(5.0), 0.8);
}

TEST(ReplayTest, StepSpanningSamplesAverages) {
  ReplayUtilization replay({0.0, 1.0}, 10.0);
  // One 20 s step covers both samples equally.
  EXPECT_NEAR(replay.step(20.0), 0.5, 1e-12);
}

TEST(ReplayTest, MeanUtilizationIsSeriesMean) {
  ReplayUtilization replay({0.2, 0.4, 0.6}, 5.0);
  EXPECT_NEAR(replay.mean_utilization(), 0.4, 1e-12);
}

TEST(ReplayTest, LongRunAverageMatchesSeriesMean) {
  ReplayUtilization replay({0.1, 0.9, 0.5, 0.3}, 7.0);
  double acc = 0.0;
  const int steps = 4000;
  for (int i = 0; i < steps; ++i) acc += replay.step(3.0);
  EXPECT_NEAR(acc / steps, 0.45, 0.01);
}

TEST(ReplayVmTest, VmRunsOnReplayedTrace) {
  VmConfig config;
  config.vcpus = 4;
  config.memory_gb = 4.0;
  config.task = TaskType::kBatch;  // metadata only; the model drives util
  Vm vm("replayed", config, make_replay_model({0.25, 0.75}, 5.0));
  EXPECT_DOUBLE_EQ(vm.step(5.0), 0.25);
  EXPECT_DOUBLE_EQ(vm.step(5.0), 0.75);
  EXPECT_NEAR(vm.mean_utilization_demand(), 0.5, 1e-12);
}

TEST(ReplayVmTest, NullModelRejected) {
  VmConfig config;
  EXPECT_THROW(Vm("x", config, std::unique_ptr<UtilizationModel>{}),
               ConfigError);
}

TEST(ReplayVmTest, MachineHostsReplayedVm) {
  MachineOptions options;
  options.sensor.noise_stddev_c = 0.0;
  options.sensor.quantization_c = 0.0;
  PhysicalMachine machine(make_server_spec("medium"), options, Rng(1));
  VmConfig config;
  config.vcpus = 8;
  config.memory_gb = 8.0;
  config.task = TaskType::kCpuBurn;
  machine.add_vm(Vm("replay", config, make_replay_model({1.0}, 5.0)));

  const auto sample = machine.step(5.0, 22.0);
  // 8 vcpus at 100% on a 16-core box.
  EXPECT_DOUBLE_EQ(sample.utilization, 0.5);
}

}  // namespace
}  // namespace vmtherm::sim
