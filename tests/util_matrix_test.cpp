// Tests for util/matrix: products, solvers, error handling.

#include "util/matrix.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.h"
#include "util/rng.h"

namespace vmtherm {
namespace {

TEST(MatrixTest, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 0) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 0), -2.0);
}

TEST(MatrixTest, IdentityProperties) {
  const Matrix id = Matrix::identity(3);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(id(i, j), i == j ? 1.0 : 0.0);
    }
  }
}

TEST(MatrixTest, MultiplyKnownValues) {
  Matrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = 2;
  a(1, 0) = 3; a(1, 1) = 4;
  Matrix b(2, 2);
  b(0, 0) = 5; b(0, 1) = 6;
  b(1, 0) = 7; b(1, 1) = 8;
  const Matrix c = a.multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(MatrixTest, MultiplyByIdentityIsNoop) {
  Matrix a(2, 3);
  a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
  a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
  const Matrix c = Matrix::identity(2).multiply(a);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(c(i, j), a(i, j));
    }
  }
}

TEST(MatrixTest, MultiplyDimensionMismatchThrows) {
  Matrix a(2, 3);
  Matrix b(2, 2);
  EXPECT_THROW((void)a.multiply(b), ConfigError);
}

TEST(MatrixTest, Transposed) {
  Matrix a(2, 3);
  a(0, 2) = 7.0;
  a(1, 0) = -1.0;
  const Matrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 0), 7.0);
  EXPECT_DOUBLE_EQ(t(0, 1), -1.0);
}

TEST(MatrixTest, AddScaledIdentity) {
  Matrix a(2, 2, 1.0);
  const Matrix b = a.add_scaled_identity(0.5);
  EXPECT_DOUBLE_EQ(b(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(b(0, 1), 1.0);
  Matrix rect(2, 3);
  EXPECT_THROW((void)rect.add_scaled_identity(1.0), ConfigError);
}

TEST(CholeskySolveTest, SolvesSpdSystem) {
  // A = [[4,2],[2,3]], b = [2,3] -> x = [0, 1]
  Matrix a(2, 2);
  a(0, 0) = 4; a(0, 1) = 2;
  a(1, 0) = 2; a(1, 1) = 3;
  const std::vector<double> b = {2.0, 3.0};
  const auto x = cholesky_solve(a, b);
  EXPECT_NEAR(x[0], 0.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(CholeskySolveTest, RandomSpdRoundTrip) {
  Rng rng(5);
  const std::size_t n = 6;
  // A = M^T M + I is SPD.
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) m(i, j) = rng.uniform(-1.0, 1.0);
  }
  const Matrix a = m.transposed().multiply(m).add_scaled_identity(1.0);
  std::vector<double> x_true(n);
  for (auto& v : x_true) v = rng.uniform(-2.0, 2.0);
  std::vector<double> b(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b[i] += a(i, j) * x_true[j];
  }
  const auto x = cholesky_solve(a, b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

TEST(CholeskySolveTest, NonSpdThrows) {
  Matrix a(2, 2);
  a(0, 0) = 0.0; a(0, 1) = 1.0;
  a(1, 0) = 1.0; a(1, 1) = 0.0;
  EXPECT_THROW((void)cholesky_solve(a, {1.0, 1.0}), NumericError);
}

TEST(CholeskySolveTest, DimensionMismatchThrows) {
  Matrix a(2, 2);
  EXPECT_THROW((void)cholesky_solve(a, {1.0}), ConfigError);
  Matrix rect(2, 3);
  EXPECT_THROW((void)cholesky_solve(rect, {1.0, 1.0}), ConfigError);
}

TEST(GaussianSolveTest, SolvesGeneralSystem) {
  // Non-symmetric system.
  Matrix a(2, 2);
  a(0, 0) = 0.0; a(0, 1) = 2.0;  // needs pivoting
  a(1, 0) = 1.0; a(1, 1) = 1.0;
  const auto x = gaussian_solve(a, {4.0, 3.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(GaussianSolveTest, SingularThrows) {
  Matrix a(2, 2);
  a(0, 0) = 1.0; a(0, 1) = 2.0;
  a(1, 0) = 2.0; a(1, 1) = 4.0;
  EXPECT_THROW((void)gaussian_solve(a, {1.0, 2.0}), NumericError);
}

TEST(GaussianSolveTest, RandomRoundTrip) {
  Rng rng(9);
  const std::size_t n = 5;
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-3.0, 3.0);
    a(i, i) += 5.0;  // diagonally dominant -> nonsingular
  }
  std::vector<double> x_true(n);
  for (auto& v : x_true) v = rng.uniform(-1.0, 1.0);
  std::vector<double> b(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b[i] += a(i, j) * x_true[j];
  }
  const auto x = gaussian_solve(a, b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

}  // namespace
}  // namespace vmtherm
