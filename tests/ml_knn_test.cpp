// Tests for ml/knn.

#include "ml/knn.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace vmtherm::ml {
namespace {

Dataset grid_data() {
  Dataset data;
  data.add(Sample{{0.0}, 0.0});
  data.add(Sample{{1.0}, 10.0});
  data.add(Sample{{2.0}, 20.0});
  data.add(Sample{{3.0}, 30.0});
  return data;
}

TEST(KnnTest, EmptyTrainingSetThrows) {
  EXPECT_THROW(KnnRegressor(Dataset{}, 3), DataError);
}

TEST(KnnTest, KIsClampedToDatasetSize) {
  KnnRegressor model(grid_data(), 100);
  EXPECT_EQ(model.k(), 4u);
  KnnRegressor one(grid_data(), 0);
  EXPECT_EQ(one.k(), 1u);
}

TEST(KnnTest, ExactMatchDominatesWithWeighting) {
  KnnRegressor model(grid_data(), 3, /*distance_weighted=*/true);
  EXPECT_NEAR(model.predict(std::vector<double>{2.0}), 20.0, 0.01);
}

TEST(KnnTest, K1ReturnsNearestTarget) {
  KnnRegressor model(grid_data(), 1, /*distance_weighted=*/false);
  EXPECT_DOUBLE_EQ(model.predict(std::vector<double>{1.4}), 10.0);
  EXPECT_DOUBLE_EQ(model.predict(std::vector<double>{1.6}), 20.0);
}

TEST(KnnTest, UnweightedAveragesNeighbours) {
  KnnRegressor model(grid_data(), 2, /*distance_weighted=*/false);
  // Nearest two to 0.4 are x=0 and x=1.
  EXPECT_DOUBLE_EQ(model.predict(std::vector<double>{0.4}), 5.0);
}

TEST(KnnTest, WeightedInterpolatesBetweenNeighbours) {
  KnnRegressor model(grid_data(), 2, /*distance_weighted=*/true);
  const double mid = model.predict(std::vector<double>{0.5});
  EXPECT_NEAR(mid, 5.0, 0.01);  // equidistant -> equal weights
  const double closer = model.predict(std::vector<double>{0.25});
  EXPECT_LT(closer, 5.0);  // closer to x=0 -> pulled toward 0
}

TEST(KnnTest, DimensionMismatchThrows) {
  KnnRegressor model(grid_data(), 2);
  EXPECT_THROW((void)model.predict(std::vector<double>{1.0, 2.0}), DataError);
}

TEST(KnnTest, BatchPredictMatchesPointwise) {
  Rng rng(1);
  Dataset data;
  for (int i = 0; i < 30; ++i) {
    const double x = rng.uniform(-1, 1);
    data.add(Sample{{x}, x * x});
  }
  KnnRegressor model(data, 5);
  const auto batch = model.predict(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch[i], model.predict(data[i].x));
  }
}

TEST(KnnTest, ApproximatesSmoothFunction) {
  Rng rng(2);
  Dataset data;
  for (int i = 0; i < 400; ++i) {
    const double x = rng.uniform(0.0, 1.0);
    data.add(Sample{{x}, 3.0 * x});
  }
  KnnRegressor model(data, 5);
  for (double x = 0.1; x <= 0.9; x += 0.2) {
    EXPECT_NEAR(model.predict(std::vector<double>{x}), 3.0 * x, 0.2);
  }
}

}  // namespace
}  // namespace vmtherm::ml
