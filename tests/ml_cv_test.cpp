// Tests for ml/cv: fold construction and cross-validated scoring.

#include "ml/cv.h"

#include <gtest/gtest.h>

#include <set>

#include "ml/linreg.h"
#include "util/thread_pool.h"

namespace vmtherm::ml {
namespace {

TEST(MakeFoldsTest, RejectsDegenerateInputs) {
  Rng rng(1);
  EXPECT_THROW((void)make_folds(10, 1, rng), DataError);
  EXPECT_THROW((void)make_folds(3, 5, rng), DataError);
}

TEST(MakeFoldsTest, EverySampleValidatedExactlyOnce) {
  Rng rng(2);
  const auto folds = make_folds(23, 5, rng);
  ASSERT_EQ(folds.size(), 5u);
  std::multiset<std::size_t> validated;
  for (const auto& f : folds) {
    for (std::size_t i : f.validation) validated.insert(i);
  }
  EXPECT_EQ(validated.size(), 23u);
  for (std::size_t i = 0; i < 23; ++i) {
    EXPECT_EQ(validated.count(i), 1u) << i;
  }
}

TEST(MakeFoldsTest, TrainAndValidationDisjointAndComplete) {
  Rng rng(3);
  const auto folds = make_folds(20, 4, rng);
  for (const auto& f : folds) {
    EXPECT_EQ(f.train.size() + f.validation.size(), 20u);
    std::set<std::size_t> train(f.train.begin(), f.train.end());
    for (std::size_t i : f.validation) {
      EXPECT_EQ(train.count(i), 0u);
    }
  }
}

TEST(MakeFoldsTest, FoldSizesBalanced) {
  Rng rng(4);
  const auto folds = make_folds(23, 5, rng);
  for (const auto& f : folds) {
    EXPECT_GE(f.validation.size(), 4u);
    EXPECT_LE(f.validation.size(), 5u);
  }
}

TEST(MakeFoldsTest, DeterministicGivenRngState) {
  Rng a(5);
  Rng b(5);
  const auto fa = make_folds(15, 3, a);
  const auto fb = make_folds(15, 3, b);
  for (std::size_t i = 0; i < fa.size(); ++i) {
    EXPECT_EQ(fa[i].validation, fb[i].validation);
  }
}

TEST(MakeFoldsTest, MatchesReferenceConstructionOnFixedSeeds) {
  // Pins the exact fold layout: round-robin assignment over the seeded
  // permutation, every index list in increasing sample order. The
  // single-pass implementation must stay byte-identical to this reference.
  for (const std::uint64_t seed : {1ull, 42ull, 1337ull}) {
    Rng rng(seed);
    const auto folds = make_folds(23, 5, rng);

    Rng ref_rng(seed);
    const auto perm = ref_rng.permutation(23);
    std::vector<std::size_t> fold_of(23);
    for (std::size_t i = 0; i < 23; ++i) fold_of[perm[i]] = i % 5;

    ASSERT_EQ(folds.size(), 5u);
    for (std::size_t f = 0; f < 5; ++f) {
      std::vector<std::size_t> validation;
      std::vector<std::size_t> train;
      for (std::size_t i = 0; i < 23; ++i) {
        if (fold_of[i] == f) validation.push_back(i);
        else train.push_back(i);
      }
      EXPECT_EQ(folds[f].validation, validation) << "seed " << seed;
      EXPECT_EQ(folds[f].train, train) << "seed " << seed;
    }
  }
}

TEST(MakeFoldsTest, TrainListsDeterministicGivenRngState) {
  Rng a(9);
  Rng b(9);
  const auto fa = make_folds(37, 7, a);
  const auto fb = make_folds(37, 7, b);
  ASSERT_EQ(fa.size(), fb.size());
  for (std::size_t i = 0; i < fa.size(); ++i) {
    EXPECT_EQ(fa[i].train, fb[i].train);
    EXPECT_EQ(fa[i].validation, fb[i].validation);
  }
}

TEST(CrossValidatedMseTest, PerfectModelScoresZero) {
  Dataset data;
  for (int i = 0; i < 30; ++i) {
    const double x = static_cast<double>(i);
    data.add(Sample{{x}, 2.0 * x + 1.0});
  }
  Rng rng(6);
  const double score = cross_validated_mse(
      data, 5, rng, [](const Dataset& train, const Dataset& validation) {
        const auto model = LinearRegression::fit(train);
        return model.predict(validation);
      });
  EXPECT_NEAR(score, 0.0, 1e-9);
}

TEST(CrossValidatedMseTest, ConstantPredictorScoresVariance) {
  // Predicting 0 for targets {-1, +1} alternating: MSE = 1.
  Dataset data;
  for (int i = 0; i < 20; ++i) {
    data.add(Sample{{static_cast<double>(i)}, i % 2 == 0 ? 1.0 : -1.0});
  }
  Rng rng(7);
  const double score = cross_validated_mse(
      data, 4, rng, [](const Dataset&, const Dataset& validation) {
        return std::vector<double>(validation.size(), 0.0);
      });
  EXPECT_DOUBLE_EQ(score, 1.0);
}

TEST(CrossValidatedMseTest, PooledRunBitwiseMatchesSerial) {
  Dataset data;
  Rng noise(10);
  for (int i = 0; i < 35; ++i) {
    const double x = static_cast<double>(i) / 7.0;
    data.add(Sample{{x}, 3.0 * x - 2.0 + noise.normal(0, 0.1)});
  }
  const auto fit_predict = [](const Dataset& train,
                              const Dataset& validation) {
    const auto model = LinearRegression::fit(train);
    return model.predict(validation);
  };
  Rng serial_rng(11);
  const double serial = cross_validated_mse(data, 5, serial_rng, fit_predict);
  util::ThreadPool pool(3);
  Rng pooled_rng(11);
  const double pooled =
      cross_validated_mse(data, 5, pooled_rng, fit_predict, &pool);
  EXPECT_EQ(serial, pooled);  // bitwise, not just approximately
}

TEST(CrossValidatedMseTest, PooledRunPropagatesFitErrors) {
  Dataset data;
  for (int i = 0; i < 12; ++i) {
    data.add(Sample{{static_cast<double>(i)}, 0.0});
  }
  util::ThreadPool pool(2);
  Rng rng(12);
  EXPECT_THROW((void)cross_validated_mse(
                   data, 3, rng,
                   [](const Dataset&, const Dataset&) -> std::vector<double> {
                     throw DataError("fit exploded");
                   },
                   &pool),
               DataError);
}

TEST(CrossValidatedMseTest, WrongPredictionCountThrows) {
  Dataset data;
  for (int i = 0; i < 10; ++i) {
    data.add(Sample{{static_cast<double>(i)}, 0.0});
  }
  Rng rng(8);
  EXPECT_THROW(
      (void)cross_validated_mse(
          data, 2, rng,
          [](const Dataset&, const Dataset&) {
            return std::vector<double>{0.0};  // wrong size
          }),
      DataError);
}

}  // namespace
}  // namespace vmtherm::ml
