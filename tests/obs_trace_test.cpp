// Tests for obs/trace + obs/chrome_trace: the per-thread span recorder's
// no-lost/no-torn guarantees under concurrency (this file is part of the
// sanitizer scripts' TSan set), the drop-newest bounded-buffer behaviour,
// the Chrome trace-event JSON export shape, and the timing-class-only
// metric summaries.

#include "obs/chrome_trace.h"
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/metrics.h"

namespace vmtherm::obs {
namespace {

TraceEvent make_event(const char* name, std::uint64_t start_ns,
                      std::uint64_t dur_ns, const char* arg_name = nullptr,
                      double arg_value = 0.0) {
  TraceEvent event{};
  event.name = name;
  event.category = "test";
  event.arg_name = arg_name;
  event.arg_value = arg_value;
  event.start_ns = start_ns;
  event.dur_ns = dur_ns;
  return event;
}

TEST(TraceTest, SpanRecordsNothingWhenDisabled) {
  TraceRecorder recorder;
  ASSERT_FALSE(recorder.enabled());  // off by default
  {
    Span span(recorder, "work", "test");
    Span with_arg(recorder, "work", "test", "n", 3.0);
  }
  EXPECT_EQ(recorder.event_count(), 0u);
  EXPECT_EQ(recorder.thread_buffer_count(), 0u);
  EXPECT_EQ(recorder.dropped(), 0u);
}

TEST(TraceTest, SpanRecordsOneEventWithItsArgument) {
  TraceRecorder recorder;
  recorder.set_enabled(true);
  {
    Span span(recorder, "drain", "serve");
    span.set_arg("events", 7.0);
  }
  recorder.set_enabled(false);
  ASSERT_EQ(recorder.event_count(), 1u);
  ASSERT_EQ(recorder.thread_buffer_count(), 1u);
  const TraceEvent& event = recorder.thread_buffer(0).event(0);
  EXPECT_STREQ(event.name, "drain");
  EXPECT_STREQ(event.category, "serve");
  EXPECT_STREQ(event.arg_name, "events");
  EXPECT_EQ(event.arg_value, 7.0);
  EXPECT_LE(event.start_ns + event.dur_ns, recorder.now_ns());
}

TEST(TraceTest, SpanMacrosDriveTheGlobalRecorder) {
  TraceRecorder& recorder = global_trace();
  recorder.clear();
  recorder.set_enabled(true);
  {
    VMTHERM_SPAN("outer", "test");
    VMTHERM_SPAN_ARG("inner", "test", "n", 42);
  }
  recorder.set_enabled(false);
  EXPECT_EQ(recorder.event_count(), 2u);
  recorder.clear();
  EXPECT_EQ(recorder.event_count(), 0u);
}

TEST(TraceTest, FullBufferDropsNewestAndKeepsHistory) {
  TraceRecorder recorder(/*capacity_per_thread=*/4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    recorder.record(make_event("e", /*start_ns=*/i, /*dur_ns=*/1));
  }
  EXPECT_EQ(recorder.event_count(), 4u);
  EXPECT_EQ(recorder.dropped(), 6u);
  // The *first* events survive: a full buffer drops new spans instead of
  // overwriting published (and possibly concurrently read) history.
  const ThreadBuffer& buffer = recorder.thread_buffer(0);
  ASSERT_EQ(buffer.published(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(buffer.event(i).start_ns, i);
  }
}

TEST(TraceTest, ClearDiscardsEventsAndDropCounter) {
  TraceRecorder recorder(/*capacity_per_thread=*/2);
  for (int i = 0; i < 5; ++i) {
    recorder.record(make_event("e", 0, 1));
  }
  ASSERT_EQ(recorder.event_count(), 2u);
  ASSERT_EQ(recorder.dropped(), 3u);
  recorder.clear();
  EXPECT_EQ(recorder.event_count(), 0u);
  EXPECT_EQ(recorder.dropped(), 0u);
  // The thread's buffer registration survives a clear and is reused.
  recorder.record(make_event("e", 0, 1));
  EXPECT_EQ(recorder.event_count(), 1u);
  EXPECT_EQ(recorder.thread_buffer_count(), 1u);
}

TEST(TraceTest, ConcurrentSpansAreNeitherLostNorTorn) {
  // T threads record through the Span fast path at once; every published
  // event must be complete (its pointers are one of the literals we
  // passed) and the per-name counts must be exact at any thread count.
  static const char* const kEven = "even.span";
  static const char* const kOdd = "odd.span";
  constexpr int kPerThread = 4000;
  for (const int threads : {2, 4, 8}) {
    TraceRecorder recorder;
    recorder.set_enabled(true);
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&recorder] {
        for (int i = 0; i < kPerThread; ++i) {
          Span span(recorder, i % 2 == 0 ? kEven : kOdd, "test");
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
    recorder.set_enabled(false);

    const auto expected =
        static_cast<std::size_t>(threads) * kPerThread;
    EXPECT_EQ(recorder.event_count(), expected);
    EXPECT_EQ(recorder.dropped(), 0u);
    ASSERT_EQ(recorder.thread_buffer_count(),
              static_cast<std::size_t>(threads));
    for (std::size_t b = 0; b < recorder.thread_buffer_count(); ++b) {
      const ThreadBuffer& buffer = recorder.thread_buffer(b);
      ASSERT_EQ(buffer.published(), static_cast<std::size_t>(kPerThread));
      for (std::size_t i = 0; i < buffer.published(); ++i) {
        const TraceEvent& event = buffer.event(i);
        EXPECT_TRUE(event.name == kEven || event.name == kOdd);
        EXPECT_STREQ(event.category, "test");
      }
    }

    // The summary is deterministic: sorted by name, exact counts.
    const std::vector<SpanSummaryRow> rows = summarize_spans(recorder);
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].name, "even.span");
    EXPECT_EQ(rows[0].count, expected / 2);
    EXPECT_EQ(rows[1].name, "odd.span");
    EXPECT_EQ(rows[1].count, expected / 2);
  }
}

TEST(TraceTest, SummaryRowsAggregateByName) {
  TraceRecorder recorder;
  recorder.record(make_event("b", 0, 2000));  // 2 us
  recorder.record(make_event("a", 0, 1000));  // 1 us
  recorder.record(make_event("b", 0, 6000));  // 6 us
  const std::vector<SpanSummaryRow> rows = summarize_spans(recorder);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].name, "a");
  EXPECT_EQ(rows[0].count, 1u);
  EXPECT_EQ(rows[0].total_us, 1.0);
  EXPECT_EQ(rows[1].name, "b");
  EXPECT_EQ(rows[1].count, 2u);
  EXPECT_EQ(rows[1].total_us, 8.0);
  EXPECT_EQ(rows[1].mean_us, 4.0);
  EXPECT_EQ(rows[1].max_us, 6.0);
}

TEST(TraceTest, SummariesPublishAsTimingMetricsOnly) {
  TraceRecorder recorder(/*capacity_per_thread=*/2);
  recorder.record(make_event("drain", 0, 1000));
  recorder.record(make_event("drain", 0, 3000));
  recorder.record(make_event("drain", 0, 1));  // dropped

  serve::MetricsRegistry registry;
  registry.counter("events").add(5);
  const std::string deterministic_before =
      registry.to_json(/*include_timing=*/false);

  publish_trace_summary(recorder, registry);
  const std::string all = registry.to_json(/*include_timing=*/true);
  EXPECT_NE(all.find("\"trace.spans.drain\":2"), std::string::npos);
  EXPECT_NE(all.find("trace.span_us.drain"), std::string::npos);
  EXPECT_NE(all.find("\"trace.dropped\":1"), std::string::npos);

  // The deterministic subset — what the replay byte-compare sees — is
  // untouched by tracing.
  EXPECT_EQ(registry.to_json(/*include_timing=*/false),
            deterministic_before);
}

TEST(TraceTest, ChromeTraceExportMatchesGoldenShape) {
  TraceRecorder recorder;
  // Crafted events (record() bypasses the Span clock) make the export a
  // pure function of this data — compare the whole document.
  TraceEvent drain = make_event("serve.drain", 1500, 2500, "events", 3.0);
  drain.category = "serve";
  TraceEvent predict = make_event("ml.predict", 4000, 250);
  predict.category = "ml";
  recorder.record(predict);  // out of order: export sorts by start time
  recorder.record(drain);

  std::ostringstream os;
  write_chrome_trace(recorder, os);
  const std::string expected =
      "{\"traceEvents\":["
      "{\"name\":\"serve.drain\",\"cat\":\"serve\",\"ph\":\"X\","
      "\"ts\":1.500,\"dur\":2.500,\"pid\":1,\"tid\":1,"
      "\"args\":{\"events\":3}},\n"
      "{\"name\":\"ml.predict\",\"cat\":\"ml\",\"ph\":\"X\","
      "\"ts\":4.000,\"dur\":0.250,\"pid\":1,\"tid\":1}"
      "],\"displayTimeUnit\":\"ms\"}\n";
  EXPECT_EQ(os.str(), expected);
}

TEST(TraceTest, EmptyRecorderExportsAnEmptyTrace) {
  TraceRecorder recorder;
  std::ostringstream os;
  write_chrome_trace(recorder, os);
  EXPECT_EQ(os.str(), "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}\n");
  EXPECT_TRUE(summarize_spans(recorder).empty());
}

}  // namespace
}  // namespace vmtherm::obs
