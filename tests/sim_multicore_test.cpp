// Tests for sim/multicore: per-core RC network and pinned-VM machine.

#include "sim/multicore.h"

#include <gtest/gtest.h>

#include <numeric>

namespace vmtherm::sim {
namespace {

MultiCoreThermalParams small_params(int cores = 4) {
  MultiCoreThermalParams p;
  p.cores = cores;
  return p;
}

TEST(MultiCoreThermalTest, ValidatesParameters) {
  MultiCoreThermalParams p = small_params();
  p.cores = 0;
  EXPECT_THROW(MultiCoreThermalNetwork(p, 22.0), ConfigError);
  p = small_params();
  p.core_to_core_resistance = 0.0;
  EXPECT_THROW(MultiCoreThermalNetwork(p, 22.0), ConfigError);
}

TEST(MultiCoreThermalTest, StartsUniform) {
  MultiCoreThermalNetwork net(small_params(), 25.0);
  for (int c = 0; c < net.cores(); ++c) {
    EXPECT_DOUBLE_EQ(net.core_temp_c(c), 25.0);
  }
  EXPECT_DOUBLE_EQ(net.sink_temp_c(), 25.0);
  EXPECT_DOUBLE_EQ(net.core_spread_c(), 0.0);
}

TEST(MultiCoreThermalTest, PowerSizeMismatchThrows) {
  MultiCoreThermalNetwork net(small_params(4), 22.0);
  EXPECT_THROW(net.step(1.0, {10.0, 10.0}, 22.0, 4), ConfigError);
}

TEST(MultiCoreThermalTest, UniformPowerKeepsCoresEqual) {
  MultiCoreThermalNetwork net(small_params(4), 22.0);
  const std::vector<double> watts(4, 20.0);
  for (int i = 0; i < 500; ++i) net.step(5.0, watts, 22.0, 4);
  EXPECT_LT(net.core_spread_c(), 1e-9);
  EXPECT_GT(net.max_core_temp_c(), 30.0);
}

TEST(MultiCoreThermalTest, UnevenPowerCreatesSpread) {
  MultiCoreThermalNetwork net(small_params(4), 22.0);
  const std::vector<double> watts = {45.0, 5.0, 5.0, 5.0};
  for (int i = 0; i < 500; ++i) net.step(5.0, watts, 22.0, 4);
  EXPECT_GT(net.core_spread_c(), 3.0);
  EXPECT_DOUBLE_EQ(net.max_core_temp_c(), net.core_temp_c(0));
}

TEST(MultiCoreThermalTest, LateralCouplingPullsNeighboursUp) {
  // Only core 0 is powered; its ring neighbours (1 and 3) must end up
  // warmer than the opposite core (2).
  MultiCoreThermalNetwork net(small_params(4), 22.0);
  const std::vector<double> watts = {40.0, 0.0, 0.0, 0.0};
  for (int i = 0; i < 500; ++i) net.step(5.0, watts, 22.0, 4);
  EXPECT_GT(net.core_temp_c(1), net.core_temp_c(2));
  EXPECT_GT(net.core_temp_c(3), net.core_temp_c(2));
  EXPECT_NEAR(net.core_temp_c(1), net.core_temp_c(3), 1e-9);  // symmetry
}

TEST(MultiCoreThermalTest, EnergyFlowsMatchTwoNodeModelInAggregate) {
  // With uniform power, the multicore network behaves like the server-level
  // model: steady state ~ ambient + total power * (R_cs/n + R_sa).
  MultiCoreThermalParams p = small_params(8);
  MultiCoreThermalNetwork net(p, 22.0);
  const double per_core = 15.0;
  const std::vector<double> watts(8, per_core);
  for (int i = 0; i < 4000; ++i) net.step(5.0, watts, 22.0, 4);
  const double total = per_core * 8;
  const double expected =
      22.0 + total * (p.core_to_sink_resistance / 8.0 + p.sink_to_ambient(4));
  EXPECT_NEAR(net.max_core_temp_c(), expected, 0.3);
}

TEST(MultiCoreThermalTest, MoreFansCooler) {
  MultiCoreThermalNetwork few(small_params(4), 22.0);
  MultiCoreThermalNetwork many(small_params(4), 22.0);
  const std::vector<double> watts(4, 25.0);
  for (int i = 0; i < 500; ++i) {
    few.step(5.0, watts, 22.0, 1);
    many.step(5.0, watts, 22.0, 6);
  }
  EXPECT_GT(few.max_core_temp_c(), many.max_core_temp_c() + 3.0);
}

TEST(MultiCoreMachineTest, PinValidation) {
  MultiCorePhysicalMachine machine(make_server_spec("medium"),
                                   MultiCoreThermalParams{}, 4, 22.0, Rng(1));
  VmConfig config;
  config.vcpus = 2;
  config.memory_gb = 4.0;
  config.task = TaskType::kCpuBurn;
  EXPECT_THROW(machine.add_vm(Vm("a", config, Rng(2)), {0}), ConfigError);
  EXPECT_THROW(machine.add_vm(Vm("b", config, Rng(3)), {0, 99}), ConfigError);
  machine.add_vm(Vm("c", config, Rng(4)), {0, 1});
  EXPECT_EQ(machine.vm_count(), 1u);
}

TEST(MultiCoreMachineTest, AdjacentPinningHotterThanDistantAtEqualWork) {
  // Same VM (same total power), two placements: vCPUs on adjacent cores
  // (a thermal cluster) vs maximally spread cores. Adjacent cores deny
  // each other lateral heat spreading, so the hottest core runs hotter.
  auto hottest_core = [](std::vector<int> pins) {
    MultiCorePhysicalMachine machine(make_server_spec("medium"),
                                     MultiCoreThermalParams{}, 4, 22.0,
                                     Rng(1));
    VmConfig config;
    config.vcpus = 4;
    config.memory_gb = 4.0;
    config.task = TaskType::kCpuBurn;
    machine.add_vm(Vm("vm", config, Rng(10)), std::move(pins));
    for (int i = 0; i < 400; ++i) machine.step(5.0, 22.0);
    return machine.thermal().max_core_temp_c();
  };
  const double adjacent = hottest_core({0, 1, 2, 3});
  const double distant = hottest_core({0, 4, 8, 12});
  EXPECT_GT(adjacent, distant + 0.5);
}

TEST(MultiCoreMachineTest, SpreadVisibleOnlyAtCoreGranularity) {
  // The headline of the extension: a busy-corner placement produces a
  // per-core spread that the server-level model (single temperature)
  // cannot express.
  MultiCorePhysicalMachine machine(make_server_spec("medium"),
                                   MultiCoreThermalParams{}, 4, 22.0, Rng(1));
  VmConfig config;
  config.vcpus = 4;
  config.memory_gb = 4.0;
  config.task = TaskType::kCpuBurn;
  machine.add_vm(Vm("hot", config, Rng(2)), {0, 1, 2, 3});
  for (int i = 0; i < 400; ++i) machine.step(5.0, 22.0);
  EXPECT_GT(machine.thermal().core_spread_c(), 3.0);
}

TEST(MultiCoreMachineTest, UtilizationSaturatesPerCore) {
  MultiCorePhysicalMachine machine(make_server_spec("medium"),
                                   MultiCoreThermalParams{}, 4, 22.0, Rng(1));
  VmConfig config;
  config.vcpus = 2;
  config.memory_gb = 4.0;
  config.task = TaskType::kCpuBurn;
  // Three cpu-burn vCPU pairs all pinned to cores {0, 1}.
  for (int v = 0; v < 3; ++v) {
    machine.add_vm(Vm("vm" + std::to_string(v), config,
                      Rng(20 + static_cast<std::uint64_t>(v))),
                   {0, 1});
  }
  const auto& util = machine.step(5.0, 22.0);
  EXPECT_DOUBLE_EQ(util[0], 1.0);
  EXPECT_DOUBLE_EQ(util[1], 1.0);
  EXPECT_LT(util[2], 0.01);
}

}  // namespace
}  // namespace vmtherm::sim
