// Tests for sim/environment: schedules + fluctuation.

#include "sim/environment.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.h"

namespace vmtherm::sim {
namespace {

EnvironmentSpec quiet(EnvScheduleKind kind) {
  EnvironmentSpec spec;
  spec.kind = kind;
  spec.fluctuation_stddev_c = 0.0;  // deterministic for schedule tests
  return spec;
}

TEST(EnvironmentTest, ConstantScheduleHoldsBase) {
  EnvironmentSpec spec = quiet(EnvScheduleKind::kConstant);
  spec.base_c = 24.0;
  Environment env(spec, Rng(1));
  EXPECT_DOUBLE_EQ(env.current_c(), 24.0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(env.step(5.0), 24.0);
  }
}

TEST(EnvironmentTest, DriftReachesBasePlusDelta) {
  EnvironmentSpec spec = quiet(EnvScheduleKind::kDrift);
  spec.base_c = 20.0;
  spec.delta_c = 4.0;
  spec.duration_s = 1000.0;
  Environment env(spec, Rng(1));
  EXPECT_DOUBLE_EQ(env.schedule_at(0.0), 20.0);
  EXPECT_DOUBLE_EQ(env.schedule_at(500.0), 22.0);
  EXPECT_DOUBLE_EQ(env.schedule_at(1000.0), 24.0);
  // Clamped past the end.
  EXPECT_DOUBLE_EQ(env.schedule_at(5000.0), 24.0);
}

TEST(EnvironmentTest, DriftCanBeNegative) {
  EnvironmentSpec spec = quiet(EnvScheduleKind::kDrift);
  spec.base_c = 25.0;
  spec.delta_c = -3.0;
  spec.duration_s = 600.0;
  Environment env(spec, Rng(1));
  EXPECT_DOUBLE_EQ(env.schedule_at(600.0), 22.0);
}

TEST(EnvironmentTest, DiurnalOscillatesWithPeriod) {
  EnvironmentSpec spec = quiet(EnvScheduleKind::kDiurnal);
  spec.base_c = 22.0;
  spec.amplitude_c = 2.0;
  spec.period_s = 400.0;
  Environment env(spec, Rng(1));
  EXPECT_DOUBLE_EQ(env.schedule_at(0.0), 22.0);
  EXPECT_NEAR(env.schedule_at(100.0), 24.0, 1e-9);   // quarter period: peak
  EXPECT_NEAR(env.schedule_at(300.0), 20.0, 1e-9);   // three quarters: trough
  EXPECT_NEAR(env.schedule_at(400.0), 22.0, 1e-9);   // full period
}

TEST(EnvironmentTest, StepJumpsAtStepTime) {
  EnvironmentSpec spec = quiet(EnvScheduleKind::kStep);
  spec.base_c = 22.0;
  spec.delta_c = 3.0;
  spec.step_time_s = 500.0;
  Environment env(spec, Rng(1));
  EXPECT_DOUBLE_EQ(env.schedule_at(499.9), 22.0);
  EXPECT_DOUBLE_EQ(env.schedule_at(500.0), 25.0);
  EXPECT_DOUBLE_EQ(env.schedule_at(900.0), 25.0);
}

TEST(EnvironmentTest, FluctuationStaysBounded) {
  EnvironmentSpec spec;
  spec.kind = EnvScheduleKind::kConstant;
  spec.base_c = 22.0;
  spec.fluctuation_stddev_c = 0.1;
  Environment env(spec, Rng(7));
  RunningStats stats;
  for (int i = 0; i < 5000; ++i) stats.add(env.step(5.0));
  EXPECT_NEAR(stats.mean(), 22.0, 0.05);
  EXPECT_LT(stats.stddev(), 0.25);
  EXPECT_GT(stats.stddev(), 0.01);
}

TEST(EnvironmentTest, DeterministicGivenSeed) {
  EnvironmentSpec spec;
  spec.fluctuation_stddev_c = 0.2;
  Environment a(spec, Rng(5));
  Environment b(spec, Rng(5));
  for (int i = 0; i < 200; ++i) {
    ASSERT_DOUBLE_EQ(a.step(5.0), b.step(5.0));
  }
}

TEST(EnvironmentTest, InvalidSpecRejected) {
  EnvironmentSpec spec;
  spec.base_c = -40.0;
  EXPECT_THROW(Environment(spec, Rng(1)), ConfigError);
  spec = EnvironmentSpec{};
  spec.period_s = 0.0;
  EXPECT_THROW(Environment(spec, Rng(1)), ConfigError);
  spec = EnvironmentSpec{};
  spec.fluctuation_stddev_c = -1.0;
  EXPECT_THROW(Environment(spec, Rng(1)), ConfigError);
}

}  // namespace
}  // namespace vmtherm::sim
