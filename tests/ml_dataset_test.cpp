// Tests for ml/dataset: container invariants, shuffling, splitting.

#include "ml/dataset.h"

#include <gtest/gtest.h>

#include <set>

namespace vmtherm::ml {
namespace {

Dataset make_dataset(std::size_t n) {
  Dataset data;
  for (std::size_t i = 0; i < n; ++i) {
    data.add(Sample{{static_cast<double>(i), static_cast<double>(2 * i)},
                    static_cast<double>(i)});
  }
  return data;
}

TEST(DatasetTest, EmptyProperties) {
  Dataset data;
  EXPECT_TRUE(data.empty());
  EXPECT_EQ(data.size(), 0u);
  EXPECT_EQ(data.dim(), 0u);
}

TEST(DatasetTest, DimSetByFirstSample) {
  Dataset data;
  data.add(Sample{{1.0, 2.0, 3.0}, 0.5});
  EXPECT_EQ(data.dim(), 3u);
}

TEST(DatasetTest, DimensionMismatchThrows) {
  Dataset data;
  data.add(Sample{{1.0, 2.0}, 0.0});
  EXPECT_THROW(data.add(Sample{{1.0}, 0.0}), DataError);
  EXPECT_THROW(data.add(Sample{{1.0, 2.0, 3.0}, 0.0}), DataError);
}

TEST(DatasetTest, ConstructorFromVector) {
  std::vector<Sample> samples = {{{1.0}, 2.0}, {{3.0}, 4.0}};
  Dataset data(std::move(samples));
  EXPECT_EQ(data.size(), 2u);
  EXPECT_DOUBLE_EQ(data[1].y, 4.0);
}

TEST(DatasetTest, TargetsInOrder) {
  const auto data = make_dataset(5);
  const auto y = data.targets();
  ASSERT_EQ(y.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(y[i], static_cast<double>(i));
  }
}

TEST(DatasetTest, ShuffledPreservesMultiset) {
  const auto data = make_dataset(50);
  Rng rng(3);
  const Dataset shuffled = data.shuffled(rng);
  ASSERT_EQ(shuffled.size(), 50u);
  std::multiset<double> orig;
  std::multiset<double> shuf;
  for (std::size_t i = 0; i < 50; ++i) {
    orig.insert(data[i].y);
    shuf.insert(shuffled[i].y);
  }
  EXPECT_EQ(orig, shuf);
  // And actually permutes.
  bool moved = false;
  for (std::size_t i = 0; i < 50; ++i) {
    if (shuffled[i].y != data[i].y) moved = true;
  }
  EXPECT_TRUE(moved);
}

TEST(DatasetTest, SubsetSelectsByIndex) {
  const auto data = make_dataset(10);
  const std::vector<std::size_t> idx = {3, 3, 7};
  const Dataset sub = data.subset(idx);
  ASSERT_EQ(sub.size(), 3u);
  EXPECT_DOUBLE_EQ(sub[0].y, 3.0);
  EXPECT_DOUBLE_EQ(sub[1].y, 3.0);
  EXPECT_DOUBLE_EQ(sub[2].y, 7.0);
}

TEST(DatasetTest, SubsetOutOfRangeThrows) {
  const auto data = make_dataset(3);
  const std::vector<std::size_t> idx = {5};
  EXPECT_THROW((void)data.subset(idx), DataError);
}

TEST(TrainTestSplitTest, SizesMatchFraction) {
  const auto data = make_dataset(100);
  Rng rng(5);
  const auto split = train_test_split(data, 0.8, rng);
  EXPECT_EQ(split.train.size(), 80u);
  EXPECT_EQ(split.test.size(), 20u);
}

TEST(TrainTestSplitTest, PartitionIsComplete) {
  const auto data = make_dataset(30);
  Rng rng(7);
  const auto split = train_test_split(data, 0.5, rng);
  std::multiset<double> all;
  for (std::size_t i = 0; i < split.train.size(); ++i) {
    all.insert(split.train[i].y);
  }
  for (std::size_t i = 0; i < split.test.size(); ++i) {
    all.insert(split.test[i].y);
  }
  std::multiset<double> orig;
  for (std::size_t i = 0; i < 30; ++i) orig.insert(data[i].y);
  EXPECT_EQ(all, orig);
}

TEST(TrainTestSplitTest, BothPartsNonEmptyAtExtremes) {
  const auto data = make_dataset(10);
  Rng rng(9);
  const auto tiny = train_test_split(data, 0.01, rng);
  EXPECT_GE(tiny.train.size(), 1u);
  EXPECT_GE(tiny.test.size(), 1u);
  const auto huge = train_test_split(data, 0.99, rng);
  EXPECT_GE(huge.train.size(), 1u);
  EXPECT_GE(huge.test.size(), 1u);
}

TEST(TrainTestSplitTest, InvalidInputsThrow) {
  const auto data = make_dataset(10);
  Rng rng(1);
  EXPECT_THROW((void)train_test_split(data, 0.0, rng), ConfigError);
  EXPECT_THROW((void)train_test_split(data, 1.0, rng), ConfigError);
  const auto single = make_dataset(1);
  EXPECT_THROW((void)train_test_split(single, 0.5, rng), DataError);
}

}  // namespace
}  // namespace vmtherm::ml
