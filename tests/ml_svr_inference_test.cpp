// Equivalence suite for the packed SVR inference engine (svr_inference.h):
// the engine's own single-query predict() is the scalar reference, and the
// batched / thread-pool / persisted paths must match it BITWISE across all
// four kernels. The pre-engine kernel_eval summation is checked to
// tolerance (its RBF op order and libm exp differ by design).

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "ml/model_io.h"
#include "ml/svr.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

using namespace vmtherm;

std::uint64_t bits_of(double v) { return std::bit_cast<std::uint64_t>(v); }

ml::KernelParams make_kernel(ml::KernelKind kind) {
  ml::KernelParams kernel;
  kernel.kind = kind;
  kernel.gamma = 1.0 / 8;
  kernel.coef0 = 1.0;
  kernel.degree = 3;
  return kernel;
}

struct RaggedModel {
  std::vector<std::vector<double>> svs;
  std::vector<double> coefs;
  double bias = 0.0;
};

RaggedModel random_model(std::size_t count, std::size_t dim,
                         std::uint64_t seed) {
  Rng rng(seed);
  RaggedModel m;
  m.svs.assign(count, std::vector<double>(dim));
  m.coefs.resize(count);
  for (auto& sv : m.svs) {
    for (double& v : sv) v = rng.uniform(-1.0, 1.0);
  }
  for (double& c : m.coefs) c = rng.uniform(-2.0, 2.0);
  m.bias = 0.375;
  return m;
}

std::vector<double> random_queries(std::size_t count, std::size_t dim,
                                   std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> q(count * dim);
  for (double& v : q) v = rng.uniform(-1.0, 1.0);
  return q;
}

class SvrInferenceKernelTest
    : public ::testing::TestWithParam<ml::KernelKind> {};

TEST_P(SvrInferenceKernelTest, BatchMatchesSingleQueryBitwise) {
  // 300 SVs straddles the 128-SV block boundary (2 full blocks + tail).
  const RaggedModel m = random_model(300, 7, 11);
  const ml::SvrModel model(make_kernel(GetParam()), m.svs, m.coefs, m.bias);
  const std::size_t queries = 97;  // not a multiple of any block size
  const std::vector<double> flat = random_queries(queries, 7, 12);

  std::vector<double> batched(queries);
  model.predict_batch(flat, queries, batched);
  for (std::size_t i = 0; i < queries; ++i) {
    const double single = model.predict(
        std::span<const double>(flat.data() + i * 7, 7));
    ASSERT_EQ(bits_of(single), bits_of(batched[i])) << "query " << i;
  }
}

TEST_P(SvrInferenceKernelTest, ThreadedMatchesSerialBitwise) {
  const RaggedModel m = random_model(300, 7, 21);
  const ml::SvrModel model(make_kernel(GetParam()), m.svs, m.coefs, m.bias);
  const std::size_t queries = 500;  // above the internal query-block size
  const std::vector<double> flat = random_queries(queries, 7, 22);

  std::vector<double> serial(queries);
  model.predict_batch(flat, queries, serial);
  for (const std::size_t threads : {1u, 2u, 5u}) {
    util::ThreadPool pool(threads);
    std::vector<double> threaded(queries);
    model.predict_batch(flat, queries, threaded, &pool);
    for (std::size_t i = 0; i < queries; ++i) {
      ASSERT_EQ(bits_of(serial[i]), bits_of(threaded[i]))
          << "threads=" << threads << " query " << i;
    }
  }
}

TEST_P(SvrInferenceKernelTest, MatchesKernelEvalReferenceToTolerance) {
  const RaggedModel m = random_model(150, 9, 31);
  const ml::KernelParams kernel = make_kernel(GetParam());
  const ml::SvrModel model(kernel, m.svs, m.coefs, m.bias);
  const std::vector<double> flat = random_queries(40, 9, 32);

  for (std::size_t i = 0; i < 40; ++i) {
    const std::span<const double> x(flat.data() + i * 9, 9);
    double reference = m.bias;
    for (std::size_t k = 0; k < m.svs.size(); ++k) {
      reference += m.coefs[k] * ml::kernel_eval(kernel, m.svs[k], x);
    }
    EXPECT_NEAR(model.predict(x), reference,
                1e-9 * std::max(1.0, std::abs(reference)));
  }
}

TEST_P(SvrInferenceKernelTest, SurvivesSaveLoadBitwise) {
  // Snapshot/restore of the packed model: serialization goes through the
  // packed accessors and text round-trips doubles at 17 significant
  // digits, so the rebuilt engine must predict identical bits.
  const RaggedModel m = random_model(130, 5, 41);
  const ml::SvrModel model(make_kernel(GetParam()), m.svs, m.coefs, m.bias);

  std::stringstream stream;
  ml::save_svr(stream, model);
  const ml::SvrModel reloaded = ml::load_svr(stream);

  const std::vector<double> flat = random_queries(33, 5, 42);
  std::vector<double> original(33);
  std::vector<double> restored(33);
  model.predict_batch(flat, 33, original);
  reloaded.predict_batch(flat, 33, restored);
  for (std::size_t i = 0; i < 33; ++i) {
    ASSERT_EQ(bits_of(original[i]), bits_of(restored[i])) << "query " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, SvrInferenceKernelTest,
    ::testing::Values(ml::KernelKind::kLinear, ml::KernelKind::kPolynomial,
                      ml::KernelKind::kRbf, ml::KernelKind::kSigmoid),
    [](const ::testing::TestParamInfo<ml::KernelKind>& param) {
      return std::string(ml::kernel_kind_name(param.param));
    });

TEST(SvrInference, EmptyModelReturnsBiasForEveryQuery) {
  const ml::SvrInference empty;
  EXPECT_EQ(empty.support_vector_count(), 0u);
  EXPECT_EQ(empty.predict(std::span<const double>()), 0.0);

  const ml::SvrInference biased(make_kernel(ml::KernelKind::kRbf), {}, {},
                                2.5);
  // An empty model accepts any query dimension.
  const std::vector<double> x{1.0, 2.0, 3.0};
  EXPECT_EQ(biased.predict(x), 2.5);
  std::vector<double> out(4);
  biased.predict_batch(std::span<const double>(), 4, out);
  for (const double v : out) EXPECT_EQ(v, 2.5);
}

TEST(SvrInference, OneSupportVectorMatchesDirectEvaluation) {
  const std::vector<std::vector<double>> svs{{0.5, -0.25, 0.125}};
  const std::vector<double> coefs{1.5};
  for (const auto kind :
       {ml::KernelKind::kLinear, ml::KernelKind::kPolynomial,
        ml::KernelKind::kRbf, ml::KernelKind::kSigmoid}) {
    const ml::SvrInference inference(make_kernel(kind), svs, coefs, -0.5);
    const std::vector<double> x{0.25, 0.75, -0.5};
    const double reference =
        -0.5 + 1.5 * ml::kernel_eval(make_kernel(kind), svs[0], x);
    EXPECT_NEAR(inference.predict(x), reference, 1e-12)
        << ml::kernel_kind_name(kind);
    // The batch path funnels through the same kernel.
    std::vector<double> out(1);
    inference.predict_batch(x, 1, out);
    EXPECT_EQ(bits_of(out[0]), bits_of(inference.predict(x)));
  }
}

TEST(SvrInference, PackedLayoutExposesSupportVectorRows) {
  const RaggedModel m = random_model(10, 4, 51);
  const ml::SvrInference inference(make_kernel(ml::KernelKind::kRbf), m.svs,
                                   m.coefs, m.bias);
  ASSERT_EQ(inference.support_vector_count(), 10u);
  ASSERT_EQ(inference.dim(), 4u);
  ASSERT_EQ(inference.packed().size(), 40u);
  for (std::size_t k = 0; k < 10; ++k) {
    const std::span<const double> row = inference.support_vector(k);
    ASSERT_EQ(row.size(), 4u);
    for (std::size_t j = 0; j < 4; ++j) EXPECT_EQ(row[j], m.svs[k][j]);
  }
}

TEST(SvrInference, RejectsMalformedConstructionAndQueries) {
  const ml::KernelParams kernel = make_kernel(ml::KernelKind::kRbf);
  EXPECT_THROW(ml::SvrInference(kernel, {{1.0, 2.0}}, {0.5, 0.5}, 0.0),
               ConfigError);  // sv/coef count mismatch
  EXPECT_THROW(ml::SvrInference(kernel, {{1.0, 2.0}, {1.0}}, {0.5, 0.5}, 0.0),
               ConfigError);  // ragged dimensions

  const ml::SvrInference inference(kernel, {{1.0, 2.0}}, {0.5}, 0.0);
  const std::vector<double> wrong{1.0, 2.0, 3.0};
  EXPECT_THROW(inference.predict(wrong), DataError);
  std::vector<double> out(2);
  EXPECT_THROW(inference.predict_batch(wrong, 2, out), DataError);
  std::vector<double> short_out(1);
  EXPECT_THROW(inference.predict_batch(wrong, 2, short_out), DataError);
}

TEST(ExpDet, TracksLibmExpToTwoUlps) {
  Rng rng(61);
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.uniform(-700.0, 700.0);
    const double expected = std::exp(x);
    const double got = ml::exp_det(x);
    if (expected == 0.0 || !std::isfinite(expected)) {
      EXPECT_EQ(got, expected) << "x=" << x;
      continue;
    }
    const double ulp = std::abs(std::nexttoward(expected, INFINITY) - expected);
    EXPECT_NEAR(got, expected, 2.0 * ulp) << "x=" << x;
  }
}

TEST(ExpDet, SaturatesAndPropagatesSpecials) {
  EXPECT_EQ(ml::exp_det(0.0), 1.0);
  EXPECT_EQ(ml::exp_det(-1000.0), 0.0);
  EXPECT_EQ(ml::exp_det(-std::numeric_limits<double>::infinity()), 0.0);
  EXPECT_TRUE(std::isinf(ml::exp_det(1000.0)));
  EXPECT_TRUE(std::isinf(ml::exp_det(std::numeric_limits<double>::infinity())));
  EXPECT_TRUE(std::isnan(ml::exp_det(std::numeric_limits<double>::quiet_NaN())));
  // Gradual underflow region round-trips through the split 2^n scaling.
  const double tiny = ml::exp_det(-745.0);
  EXPECT_GT(tiny, 0.0);
  EXPECT_LT(tiny, std::numeric_limits<double>::min());
}

TEST(ExpDet, IsDeterministicAcrossRepeatedCalls) {
  Rng rng(71);
  for (int i = 0; i < 100; ++i) {
    const double x = rng.uniform(-50.0, 10.0);
    EXPECT_EQ(bits_of(ml::exp_det(x)), bits_of(ml::exp_det(x)));
  }
}

TEST(SvrModel, DatasetPredictRoutesThroughBatchBitwise) {
  const RaggedModel m = random_model(120, 6, 81);
  const ml::SvrModel model(make_kernel(ml::KernelKind::kRbf), m.svs, m.coefs,
                           m.bias);
  Rng rng(82);
  ml::Dataset data;
  for (int i = 0; i < 50; ++i) {
    std::vector<double> x(6);
    for (double& v : x) v = rng.uniform(-1.0, 1.0);
    data.add(ml::Sample{std::move(x), 0.0});
  }
  const std::vector<double> via_dataset = model.predict(data);
  util::ThreadPool pool(3);
  const std::vector<double> via_pool = model.predict_batch(data, &pool);
  ASSERT_EQ(via_dataset.size(), 50u);
  for (std::size_t i = 0; i < 50; ++i) {
    const double single = model.predict(data.samples()[i].x);
    ASSERT_EQ(bits_of(via_dataset[i]), bits_of(single));
    ASSERT_EQ(bits_of(via_pool[i]), bits_of(single));
  }
}

}  // namespace
