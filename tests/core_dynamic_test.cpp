// Tests for core/dynamic_predictor: the paper's Eqs. (4)-(8), including the
// worked example from Section II.

#include "core/dynamic_predictor.h"

#include <gtest/gtest.h>

#include <cmath>

namespace vmtherm::core {
namespace {

DynamicOptions paper_options() {
  DynamicOptions options;
  options.learning_rate = 0.8;     // lambda, paper value
  options.update_interval_s = 15;  // Delta_update, paper example
  options.t_break_s = 600.0;
  return options;
}

TEST(DynamicOptionsTest, Validation) {
  DynamicOptions options;
  options.learning_rate = -0.1;
  EXPECT_THROW(options.validate(), ConfigError);
  options = DynamicOptions{};
  options.learning_rate = 1.1;
  EXPECT_THROW(options.validate(), ConfigError);
  options = DynamicOptions{};
  options.update_interval_s = 0.0;
  EXPECT_THROW(options.validate(), ConfigError);
  options = DynamicOptions{};
  options.curvature = 0.0;
  EXPECT_THROW(options.validate(), ConfigError);
}

TEST(DynamicPredictorTest, UseBeforeBeginThrows) {
  DynamicTemperaturePredictor p(paper_options());
  EXPECT_FALSE(p.started());
  EXPECT_THROW((void)p.predict_at(10.0), ConfigError);
  EXPECT_THROW((void)p.predict_ahead(60.0), ConfigError);
  EXPECT_THROW(p.observe(0.0, 50.0), ConfigError);
  EXPECT_THROW((void)p.curve(), ConfigError);
}

TEST(DynamicPredictorTest, GammaStartsAtZero) {
  DynamicTemperaturePredictor p(paper_options());
  p.begin(0.0, 30.0, 60.0);
  EXPECT_DOUBLE_EQ(p.calibration(), 0.0);
  // Eq. (4): psi(60) = psi*(60) + 0 = psi*(60).
  EXPECT_DOUBLE_EQ(p.predict_at(60.0), p.curve().value(60.0));
}

TEST(DynamicPredictorTest, PaperWorkedExampleEquations5To7) {
  // Paper Section II: at t = 15, dif = phi(15) - psi*(15) (gamma still 0),
  // then gamma = lambda * dif, and psi(75) = psi*(75) + gamma.
  DynamicTemperaturePredictor p(paper_options());
  p.begin(0.0, 30.0, 60.0);
  const double psi_star_15 = p.curve().value(15.0);
  const double measured_15 = psi_star_15 + 2.0;  // 2 degrees hotter

  p.observe(15.0, measured_15);
  const double expected_gamma = 0.8 * 2.0;  // Eq. (6)
  EXPECT_NEAR(p.calibration(), expected_gamma, 1e-12);

  const double psi_star_75 = p.curve().value(75.0);
  EXPECT_NEAR(p.predict_at(75.0), psi_star_75 + expected_gamma, 1e-12);
  // Eq. (8) via predict_ahead: last observation at 15, gap 60 -> t=75.
  EXPECT_NEAR(p.predict_ahead(60.0), psi_star_75 + expected_gamma, 1e-12);
}

TEST(DynamicPredictorTest, UpdatesOnlyEveryUpdateInterval) {
  DynamicTemperaturePredictor p(paper_options());
  p.begin(0.0, 30.0, 60.0);
  // t = 10 < 15: too early; gamma stays 0.
  p.observe(10.0, 99.0);
  EXPECT_DOUBLE_EQ(p.calibration(), 0.0);
  // t = 15: update happens.
  p.observe(15.0, p.curve().value(15.0) + 1.0);
  EXPECT_NEAR(p.calibration(), 0.8, 1e-12);
  // t = 20 (< 15 + 15): no update.
  const double gamma_before = p.calibration();
  p.observe(20.0, 99.0);
  EXPECT_DOUBLE_EQ(p.calibration(), gamma_before);
  // t = 30: next update uses the *calibrated* prediction in dif (Eq. 5).
  const double psi_30 = p.curve().value(30.0) + gamma_before;
  p.observe(30.0, psi_30 + 0.5);
  EXPECT_NEAR(p.calibration(), gamma_before + 0.8 * 0.5, 1e-12);
}

TEST(DynamicPredictorTest, CalibrationConvergesToConstantOffset) {
  // If reality is always curve + 3, gamma -> 3.
  auto options = paper_options();
  DynamicTemperaturePredictor p(options);
  p.begin(0.0, 30.0, 60.0);
  for (double t = 15.0; t <= 600.0; t += 15.0) {
    p.observe(t, p.curve().value(t) + 3.0);
  }
  EXPECT_NEAR(p.calibration(), 3.0, 1e-6);
  EXPECT_NEAR(p.predict_ahead(60.0), p.curve().value(660.0) + 3.0, 1e-6);
}

TEST(DynamicPredictorTest, DisabledCalibrationKeepsGammaZero) {
  auto options = paper_options();
  options.calibration_enabled = false;
  DynamicTemperaturePredictor p(options);
  p.begin(0.0, 30.0, 60.0);
  for (double t = 15.0; t <= 300.0; t += 15.0) {
    p.observe(t, p.curve().value(t) + 10.0);
  }
  EXPECT_DOUBLE_EQ(p.calibration(), 0.0);
  EXPECT_DOUBLE_EQ(p.predict_at(400.0), p.curve().value(400.0));
}

TEST(DynamicPredictorTest, ZeroLearningRateNeverCalibrates) {
  auto options = paper_options();
  options.learning_rate = 0.0;
  DynamicTemperaturePredictor p(options);
  p.begin(0.0, 30.0, 60.0);
  for (double t = 15.0; t <= 300.0; t += 15.0) {
    p.observe(t, p.curve().value(t) + 10.0);
  }
  EXPECT_DOUBLE_EQ(p.calibration(), 0.0);
}

TEST(DynamicPredictorTest, OutOfOrderObservationThrows) {
  DynamicTemperaturePredictor p(paper_options());
  p.begin(0.0, 30.0, 60.0);
  p.observe(20.0, 31.0);
  EXPECT_THROW(p.observe(10.0, 31.0), ConfigError);
}

TEST(DynamicPredictorTest, BeginResetsGamma) {
  DynamicTemperaturePredictor p(paper_options());
  p.begin(0.0, 30.0, 60.0);
  p.observe(15.0, p.curve().value(15.0) + 5.0);
  EXPECT_GT(p.calibration(), 0.0);
  p.begin(100.0, 40.0, 55.0);
  EXPECT_DOUBLE_EQ(p.calibration(), 0.0);
  EXPECT_DOUBLE_EQ(p.predict_at(100.0), 40.0);
}

TEST(DynamicPredictorTest, RetargetResetsGammaByDefault) {
  DynamicTemperaturePredictor p(paper_options());
  p.begin(0.0, 30.0, 60.0);
  p.observe(15.0, p.curve().value(15.0) + 2.0);
  ASSERT_GT(p.calibration(), 0.0);

  p.retarget(300.0, 52.0, 48.0);  // VM removed: now cooling toward 48
  EXPECT_DOUBLE_EQ(p.calibration(), 0.0);
  EXPECT_DOUBLE_EQ(p.curve().phi0(), 52.0);
  EXPECT_DOUBLE_EQ(p.curve().psi_stable(), 48.0);
  // Immediately after retarget, prediction = the measured operating point.
  EXPECT_DOUBLE_EQ(p.predict_at(300.0), 52.0);
}

TEST(DynamicPredictorTest, RetargetCanRetainGammaWhenConfigured) {
  auto options = paper_options();
  options.retain_calibration_on_retarget = true;
  DynamicTemperaturePredictor p(options);
  p.begin(0.0, 30.0, 60.0);
  p.observe(15.0, p.curve().value(15.0) + 2.0);
  const double gamma = p.calibration();
  ASSERT_GT(gamma, 0.0);

  p.retarget(300.0, 52.0, 48.0);
  EXPECT_DOUBLE_EQ(p.calibration(), gamma);
  EXPECT_DOUBLE_EQ(p.predict_at(300.0), 52.0 + gamma);
}

TEST(DynamicPredictorTest, RetargetRestartsUpdateClock) {
  // After a (resetting) retarget, the first calibration update happens one
  // full update interval later, not immediately.
  DynamicTemperaturePredictor p(paper_options());
  p.begin(0.0, 30.0, 60.0);
  p.observe(15.0, p.curve().value(15.0) + 2.0);
  p.retarget(300.0, 52.0, 48.0);
  p.observe(305.0, 99.0);  // only 5 s after retarget: no update yet
  EXPECT_DOUBLE_EQ(p.calibration(), 0.0);
  p.observe(315.0, p.curve().value(15.0) + 1.0);
  EXPECT_NEAR(p.calibration(),
              0.8 * (p.curve().value(15.0) + 1.0 -
                     p.curve().value(315.0 - 300.0)),
              1e-12);
}

TEST(DynamicPredictorTest, RetargetBeforeObservationsThrows) {
  DynamicTemperaturePredictor p(paper_options());
  p.begin(0.0, 30.0, 60.0);
  p.observe(100.0, 40.0);
  EXPECT_THROW(p.retarget(50.0, 40.0, 55.0), ConfigError);
}

TEST(DynamicPredictorTest, PredictAheadUsesLatestObservationTime) {
  DynamicTemperaturePredictor p(paper_options());
  p.begin(0.0, 30.0, 60.0);
  p.observe(100.0, p.curve().value(100.0));
  EXPECT_DOUBLE_EQ(p.predict_ahead(50.0), p.predict_at(150.0));
}

TEST(DynamicPredictorTest, TrackingImprovesWithCalibrationOnExponential) {
  // Ground truth is exponential; the log curve alone mis-tracks, the
  // calibrated version must have lower squared error on 60 s-ahead
  // predictions. This is the mechanism behind Fig. 1(b).
  const double psi_inf = 60.0;
  const double phi0 = 30.0;
  const double tau = 220.0;
  auto truth = [&](double t) {
    return psi_inf + (phi0 - psi_inf) * std::exp(-t / tau);
  };

  auto options = paper_options();
  DynamicTemperaturePredictor calibrated(options);
  calibrated.begin(0.0, phi0, psi_inf);
  options.calibration_enabled = false;
  DynamicTemperaturePredictor uncalibrated(options);
  uncalibrated.begin(0.0, phi0, psi_inf);

  double se_cal = 0.0;
  double se_uncal = 0.0;
  int n = 0;
  for (double t = 15.0; t <= 540.0; t += 15.0) {
    calibrated.observe(t, truth(t));
    uncalibrated.observe(t, truth(t));
    const double target = truth(t + 60.0);
    se_cal += std::pow(calibrated.predict_at(t + 60.0) - target, 2);
    se_uncal += std::pow(uncalibrated.predict_at(t + 60.0) - target, 2);
    ++n;
  }
  EXPECT_LT(se_cal / n, se_uncal / n);
}

}  // namespace
}  // namespace vmtherm::core
