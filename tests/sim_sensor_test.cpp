// Tests for sim/sensor: noise, quantization, bias.

#include "sim/sensor.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.h"

namespace vmtherm::sim {
namespace {

TEST(SensorTest, NoiselessUnquantizedIsIdentity) {
  SensorSpec spec;
  spec.noise_stddev_c = 0.0;
  spec.quantization_c = 0.0;
  TemperatureSensor sensor(spec, Rng(1));
  EXPECT_DOUBLE_EQ(sensor.read(54.321), 54.321);
}

TEST(SensorTest, QuantizationSnapsToGrid) {
  SensorSpec spec;
  spec.noise_stddev_c = 0.0;
  spec.quantization_c = 0.5;
  TemperatureSensor sensor(spec, Rng(1));
  EXPECT_DOUBLE_EQ(sensor.read(54.30), 54.5);
  EXPECT_DOUBLE_EQ(sensor.read(54.20), 54.0);
  EXPECT_DOUBLE_EQ(sensor.read(54.75), 55.0);  // round half up at .75/0.5
}

TEST(SensorTest, ReadingsAreOnQuantizationGrid) {
  SensorSpec spec;  // defaults: noise 0.3, quantization 0.25
  TemperatureSensor sensor(spec, Rng(2));
  for (int i = 0; i < 1000; ++i) {
    const double r = sensor.read(50.0);
    const double steps = r / spec.quantization_c;
    EXPECT_NEAR(steps, std::round(steps), 1e-9);
  }
}

TEST(SensorTest, NoiseHasDeclaredSpread) {
  SensorSpec spec;
  spec.noise_stddev_c = 0.4;
  spec.quantization_c = 0.0;
  TemperatureSensor sensor(spec, Rng(3));
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(sensor.read(60.0));
  EXPECT_NEAR(stats.mean(), 60.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 0.4, 0.02);
}

TEST(SensorTest, BiasShiftsReadings) {
  SensorSpec spec;
  spec.noise_stddev_c = 0.0;
  spec.quantization_c = 0.0;
  spec.bias_c = 1.5;
  TemperatureSensor sensor(spec, Rng(4));
  EXPECT_DOUBLE_EQ(sensor.read(40.0), 41.5);
}

TEST(SensorTest, DeterministicGivenSeed) {
  SensorSpec spec;
  TemperatureSensor a(spec, Rng(9));
  TemperatureSensor b(spec, Rng(9));
  for (int i = 0; i < 200; ++i) {
    ASSERT_DOUBLE_EQ(a.read(55.0), b.read(55.0));
  }
}

TEST(SensorTest, InvalidSpecRejected) {
  SensorSpec spec;
  spec.noise_stddev_c = -0.1;
  EXPECT_THROW(TemperatureSensor(spec, Rng(1)), ConfigError);
  spec = SensorSpec{};
  spec.quantization_c = -1.0;
  EXPECT_THROW(TemperatureSensor(spec, Rng(1)), ConfigError);
}

}  // namespace
}  // namespace vmtherm::sim
