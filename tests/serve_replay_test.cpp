// Tests for serve/replay: deterministic fleet replay — byte-identical
// digests and metrics at any shard/thread count, and bitwise equivalence
// with a serial ThermalMonitorService fed the same event stream.

#include "serve/replay.h"

#include <gtest/gtest.h>

#include <bit>

#include "core/evaluator.h"
#include "sim/experiment.h"
#include "util/hash.h"

namespace vmtherm::serve {
namespace {

const core::StableTemperaturePredictor& shared_predictor() {
  static const core::StableTemperaturePredictor predictor = [] {
    sim::ScenarioRanges ranges;
    ranges.duration_s = 1200.0;
    ranges.sample_interval_s = 10.0;
    core::StableTrainOptions options;
    ml::SvrParams params;
    params.kernel.gamma = 1.0 / 32;
    params.c = 512.0;
    params.epsilon = 0.05;
    options.fixed_params = params;
    return core::StableTemperaturePredictor::train(
        core::generate_corpus(ranges, 80, 73), options);
  }();
  return predictor;
}

ReplayOptions small_replay() {
  ReplayOptions options;
  options.hosts = 6;
  options.steps = 25;
  options.seed = 11;
  options.churn_every = 7;
  return options;
}

TEST(FleetReplayTest, HostIdsAreStable) {
  EXPECT_EQ(replay_host_id(0), "host-0000");
  EXPECT_EQ(replay_host_id(42), "host-0042");
  EXPECT_EQ(replay_host_id(12345), "host-12345");
}

TEST(FleetReplayTest, ValidatesOptions) {
  ReplayOptions options = small_replay();
  options.hosts = 0;
  EXPECT_THROW((void)run_fleet_replay(shared_predictor(), options),
               ConfigError);
  options = small_replay();
  options.steps = 0;
  EXPECT_THROW((void)run_fleet_replay(shared_predictor(), options),
               ConfigError);
}

TEST(FleetReplayTest, ReportIsPopulated) {
  const auto report = run_fleet_replay(shared_predictor(), small_replay());
  EXPECT_EQ(report.hosts, 6u);
  EXPECT_EQ(report.steps, 25u);
  EXPECT_EQ(report.events_ingested, 6u * 25u);
  EXPECT_NE(report.forecast_digest, util::kFnv1a64Offset);
  EXPECT_EQ(report.risks.size(), 6u);
  EXPECT_NE(report.metrics_json.find("\"ingest.events\":150"),
            std::string::npos);
  ASSERT_NE(report.engine, nullptr);
  EXPECT_EQ(report.engine->host_count(), 6u);
}

TEST(FleetReplayTest, ByteIdenticalAtAnyShardAndThreadCount) {
  // The tentpole acceptance check: 1, 2 and 8 shards (and varying thread
  // counts) must produce the same forecast digest, the same deterministic
  // metrics JSON, and bitwise-identical hotspot rows.
  struct Setup {
    std::size_t shards;
    std::size_t threads;
  };
  std::vector<ReplayReport> reports;
  for (const Setup& setup : {Setup{1, 1}, Setup{2, 3}, Setup{8, 2}}) {
    ReplayOptions options = small_replay();
    options.engine.shards = setup.shards;
    options.engine.threads = setup.threads;
    reports.push_back(run_fleet_replay(shared_predictor(), options));
  }
  for (std::size_t i = 1; i < reports.size(); ++i) {
    EXPECT_EQ(reports[0].forecast_digest, reports[i].forecast_digest);
    EXPECT_EQ(reports[0].metrics_json, reports[i].metrics_json);
    ASSERT_EQ(reports[0].risks.size(), reports[i].risks.size());
    for (std::size_t r = 0; r < reports[0].risks.size(); ++r) {
      EXPECT_EQ(reports[0].risks[r].host_id, reports[i].risks[r].host_id);
      EXPECT_EQ(std::bit_cast<std::uint64_t>(reports[0].risks[r].forecast_c),
                std::bit_cast<std::uint64_t>(reports[i].risks[r].forecast_c));
      EXPECT_EQ(reports[0].risks[r].at_risk, reports[i].risks[r].at_risk);
    }
  }
}

TEST(FleetReplayTest, ManualDrainMatchesPooledDrain) {
  ReplayOptions pooled = small_replay();
  ReplayOptions manual = small_replay();
  manual.engine.drain = DrainMode::kManual;
  manual.engine.backpressure = BackpressurePolicy::kDropNewest;
  const auto a = run_fleet_replay(shared_predictor(), pooled);
  const auto b = run_fleet_replay(shared_predictor(), manual);
  EXPECT_EQ(a.forecast_digest, b.forecast_digest);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
}

TEST(FleetReplayTest, MatchesSerialMonitorService) {
  // Rebuild the replay's exact event stream (same sampler seed, same
  // traces) and feed it to the serial, externally synchronized
  // ThermalMonitorService: every per-step forecast must agree bitwise with
  // the sharded engine's digest. No churn so both sides see pure observes.
  ReplayOptions options = small_replay();
  options.churn_every = 0;
  options.engine.shards = 4;
  const auto report = run_fleet_replay(shared_predictor(), options);

  sim::ScenarioRanges ranges;
  ranges.duration_s =
      static_cast<double>(options.steps) * options.sample_interval_s;
  ranges.sample_interval_s = options.sample_interval_s;
  sim::ScenarioSampler sampler(ranges, options.seed);
  const auto configs = sampler.sample(options.hosts);

  mgmt::ThermalMonitorService monitor(shared_predictor());
  std::vector<sim::TemperatureTrace> traces;
  for (std::size_t h = 0; h < options.hosts; ++h) {
    traces.push_back(sim::run_experiment(configs[h]).trace);
    mgmt::MonitoredConfig config;
    config.server = configs[h].server;
    config.fans = configs[h].active_fans;
    config.vms = configs[h].vms;
    config.env_temp_c = configs[h].environment.base_c;
    monitor.register_host(replay_host_id(h), config, traces[h][0].time_s,
                          traces[h][0].cpu_temp_sensed_c);
  }

  std::uint64_t digest = util::kFnv1a64Offset;
  for (std::size_t step = 1; step <= options.steps; ++step) {
    for (std::size_t h = 0; h < options.hosts; ++h) {
      const auto index = std::min(step, traces[h].size() - 1);
      monitor.observe(replay_host_id(h), traces[h][index].time_s,
                      traces[h][index].cpu_temp_sensed_c);
    }
    for (std::size_t h = 0; h < options.hosts; ++h) {
      digest = util::fnv1a64_mix(
          digest, std::bit_cast<std::uint64_t>(
                      monitor.forecast(replay_host_id(h), options.gap_s)));
    }
  }
  EXPECT_EQ(report.forecast_digest, digest);
}

}  // namespace
}  // namespace vmtherm::serve
