// Tests for ml/svr: the SMO ε-SVR solver. Covers exact fits, KKT/dual
// feasibility invariants, kernel sweeps, determinism and edge cases.

#include "ml/svr.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "util/rng.h"
#include "util/stats.h"

namespace vmtherm::ml {
namespace {

Dataset linear_data(std::size_t n, double slope, double intercept,
                    double noise, std::uint64_t seed) {
  Rng rng(seed);
  Dataset data;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rng.uniform(-1.0, 1.0);
    data.add(Sample{{x}, slope * x + intercept + rng.normal(0.0, noise)});
  }
  return data;
}

Dataset sine_data(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Dataset data;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rng.uniform(-1.0, 1.0);
    data.add(Sample{{x}, std::sin(std::numbers::pi * x)});
  }
  return data;
}

TEST(SvrTest, EmptyTrainingSetThrows) {
  SvrParams params;
  EXPECT_THROW((void)SvrModel::train(Dataset{}, params), DataError);
}

TEST(SvrTest, NonFiniteInputsRejected) {
  Dataset data;
  data.add(Sample{{1.0}, std::nan("")});
  SvrParams params;
  EXPECT_THROW((void)SvrModel::train(data, params), DataError);

  Dataset data2;
  data2.add(Sample{{std::numeric_limits<double>::infinity()}, 1.0});
  EXPECT_THROW((void)SvrModel::train(data2, params), DataError);
}

TEST(SvrTest, InvalidParamsRejected) {
  const auto data = linear_data(10, 1.0, 0.0, 0.0, 1);
  SvrParams params;
  params.c = 0.0;
  EXPECT_THROW((void)SvrModel::train(data, params), ConfigError);
  params = SvrParams{};
  params.epsilon = -0.1;
  EXPECT_THROW((void)SvrModel::train(data, params), ConfigError);
}

TEST(SvrTest, FitsConstantTarget) {
  Dataset data;
  for (int i = 0; i < 10; ++i) {
    data.add(Sample{{static_cast<double>(i) / 10.0}, 3.5});
  }
  SvrParams params;
  params.epsilon = 0.01;
  SvrTrainReport report;
  const auto model = SvrModel::train(data, params, &report);
  EXPECT_TRUE(report.converged);
  EXPECT_NEAR(model.predict(std::vector<double>{0.55}), 3.5, 0.05);
}

TEST(SvrTest, FitsLinearFunctionWithLinearKernel) {
  const auto data = linear_data(60, 2.0, 1.0, 0.0, 2);
  SvrParams params;
  params.kernel.kind = KernelKind::kLinear;
  params.c = 100.0;
  params.epsilon = 0.01;
  SvrTrainReport report;
  const auto model = SvrModel::train(data, params, &report);
  EXPECT_TRUE(report.converged);
  for (double x = -0.9; x <= 0.9; x += 0.3) {
    EXPECT_NEAR(model.predict(std::vector<double>{x}), 2.0 * x + 1.0, 0.05)
        << "x=" << x;
  }
}

TEST(SvrTest, FitsSineWithRbfKernel) {
  const auto data = sine_data(120, 3);
  SvrParams params;
  params.kernel.kind = KernelKind::kRbf;
  params.kernel.gamma = 4.0;
  params.c = 50.0;
  params.epsilon = 0.02;
  SvrTrainReport report;
  const auto model = SvrModel::train(data, params, &report);
  EXPECT_TRUE(report.converged);
  double max_err = 0.0;
  for (double x = -0.9; x <= 0.9; x += 0.1) {
    max_err = std::max(max_err,
                       std::abs(model.predict(std::vector<double>{x}) -
                                std::sin(std::numbers::pi * x)));
  }
  EXPECT_LT(max_err, 0.1);
}

TEST(SvrTest, TrainingResidualsRespectEpsilonTube) {
  // With enough C and convergence, residuals exceed epsilon only slightly
  // (by the stopping tolerance) at bounded SVs.
  const auto data = linear_data(50, 1.5, -0.5, 0.0, 4);
  SvrParams params;
  params.kernel.kind = KernelKind::kLinear;
  params.c = 1000.0;
  params.epsilon = 0.1;
  const auto model = SvrModel::train(data, params);
  for (const auto& s : data.samples()) {
    EXPECT_LE(std::abs(model.predict(s.x) - s.y), 0.1 + 0.05);
  }
}

TEST(SvrTest, DualFeasibilityCoefficientsBounded) {
  const auto data = sine_data(80, 5);
  SvrParams params;
  params.kernel.gamma = 2.0;
  params.c = 7.0;
  params.epsilon = 0.05;
  const auto model = SvrModel::train(data, params);
  ASSERT_GT(model.support_vector_count(), 0u);
  for (double beta : model.coefficients()) {
    EXPECT_LE(std::abs(beta), 7.0 + 1e-9);
    EXPECT_NE(beta, 0.0);
  }
}

TEST(SvrTest, DualEqualityConstraintHolds) {
  // sum of betas = 0 (from y^T alpha = 0).
  const auto data = sine_data(80, 6);
  SvrParams params;
  params.kernel.gamma = 2.0;
  params.c = 10.0;
  params.epsilon = 0.05;
  const auto model = SvrModel::train(data, params);
  double sum = 0.0;
  for (double beta : model.coefficients()) sum += beta;
  EXPECT_NEAR(sum, 0.0, 1e-6);
}

TEST(SvrTest, WideEpsilonTubeYieldsFewSupportVectors) {
  const auto data = linear_data(60, 0.3, 0.0, 0.01, 7);
  SvrParams narrow;
  narrow.kernel.kind = KernelKind::kLinear;
  narrow.epsilon = 0.001;
  SvrParams wide = narrow;
  wide.epsilon = 0.5;  // tube swallows the whole target range
  const auto model_narrow = SvrModel::train(data, narrow);
  const auto model_wide = SvrModel::train(data, wide);
  EXPECT_LT(model_wide.support_vector_count(),
            model_narrow.support_vector_count());
}

TEST(SvrTest, AllInsideTubeMeansNoSupportVectors) {
  Dataset data;
  for (int i = 0; i < 20; ++i) {
    data.add(Sample{{static_cast<double>(i)}, 5.0});
  }
  SvrParams params;
  params.epsilon = 10.0;  // constant target well inside the tube
  const auto model = SvrModel::train(data, params);
  EXPECT_EQ(model.support_vector_count(), 0u);
  // Degenerate model still predicts something finite (the bias).
  EXPECT_TRUE(std::isfinite(model.predict(std::vector<double>{3.0})));
}

TEST(SvrTest, DeterministicAcrossRuns) {
  const auto data = sine_data(60, 8);
  SvrParams params;
  params.kernel.gamma = 1.0;
  const auto a = SvrModel::train(data, params);
  const auto b = SvrModel::train(data, params);
  ASSERT_EQ(a.support_vector_count(), b.support_vector_count());
  EXPECT_DOUBLE_EQ(a.bias(), b.bias());
  for (double x = -1.0; x <= 1.0; x += 0.25) {
    ASSERT_DOUBLE_EQ(a.predict(std::vector<double>{x}),
                     b.predict(std::vector<double>{x}));
  }
}

TEST(SvrTest, TinyCacheStillCorrect) {
  // Forces constant cache eviction; results must match a roomy cache.
  const auto data = sine_data(60, 9);
  SvrParams roomy;
  roomy.kernel.gamma = 1.0;
  roomy.cache_mb = 64.0;
  SvrParams tiny = roomy;
  tiny.cache_mb = 1e-5;  // ~2 rows
  const auto a = SvrModel::train(data, roomy);
  const auto b = SvrModel::train(data, tiny);
  for (double x = -1.0; x <= 1.0; x += 0.25) {
    ASSERT_NEAR(a.predict(std::vector<double>{x}),
                b.predict(std::vector<double>{x}), 1e-9);
  }
}

TEST(SvrTest, ReportCountsAreConsistent) {
  const auto data = sine_data(50, 10);
  SvrParams params;
  params.kernel.gamma = 2.0;
  SvrTrainReport report;
  const auto model = SvrModel::train(data, params, &report);
  EXPECT_EQ(report.support_vector_count, model.support_vector_count());
  EXPECT_DOUBLE_EQ(report.bias, model.bias());
  EXPECT_GT(report.iterations, 0u);
  EXPECT_LT(report.final_violation, params.tolerance);
}

TEST(SvrTest, MaxIterationsCapRespected) {
  const auto data = sine_data(100, 11);
  SvrParams params;
  params.kernel.gamma = 8.0;
  params.c = 1000.0;
  params.epsilon = 0.0001;
  params.max_iterations = 5;
  SvrTrainReport report;
  (void)SvrModel::train(data, params, &report);
  EXPECT_EQ(report.iterations, 5u);
  EXPECT_FALSE(report.converged);
}

TEST(SvrTest, PredictDimensionMismatchThrows) {
  const auto data = linear_data(20, 1.0, 0.0, 0.0, 12);
  const auto model = SvrModel::train(data, SvrParams{});
  if (model.support_vector_count() > 0) {
    EXPECT_THROW((void)model.predict(std::vector<double>{1.0, 2.0}),
                 DataError);
  }
}

TEST(SvrTest, BatchPredictMatchesPointwise) {
  const auto data = sine_data(40, 13);
  SvrParams params;
  params.kernel.gamma = 2.0;
  const auto model = SvrModel::train(data, params);
  const auto batch = model.predict(data);
  ASSERT_EQ(batch.size(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch[i], model.predict(data[i].x));
  }
}

TEST(SvrTest, ModelReconstructionPredictsIdentically) {
  const auto data = sine_data(40, 14);
  SvrParams params;
  params.kernel.gamma = 2.0;
  const auto model = SvrModel::train(data, params);
  const SvrModel rebuilt(model.kernel(), model.support_vectors(),
                         model.coefficients(), model.bias());
  for (double x = -1.0; x <= 1.0; x += 0.2) {
    EXPECT_DOUBLE_EQ(rebuilt.predict(std::vector<double>{x}),
                     model.predict(std::vector<double>{x}));
  }
}

TEST(SvrTest, ReconstructionValidatesShape) {
  EXPECT_THROW(SvrModel(KernelParams{}, {{1.0, 2.0}}, {0.5, 0.5}, 0.0),
               ConfigError);  // sv/coef count mismatch
  EXPECT_THROW(SvrModel(KernelParams{}, {{1.0, 2.0}, {1.0}}, {0.5, 0.5}, 0.0),
               ConfigError);  // ragged svs
}

class SvrKernelSweepTest : public ::testing::TestWithParam<KernelKind> {};

INSTANTIATE_TEST_SUITE_P(
    Kernels, SvrKernelSweepTest,
    ::testing::Values(KernelKind::kLinear, KernelKind::kPolynomial,
                      KernelKind::kRbf),
    [](const ::testing::TestParamInfo<KernelKind>& param_info) {
      return std::string(kernel_kind_name(param_info.param));
    });

TEST_P(SvrKernelSweepTest, BeatsMeanPredictorOnSmoothTarget) {
  // y = 0.5 x + 0.2 x^2: every kernel here should explain most variance.
  Rng rng(15);
  Dataset data;
  for (int i = 0; i < 80; ++i) {
    const double x = rng.uniform(-1.0, 1.0);
    data.add(Sample{{x}, 0.5 * x + 0.2 * x * x});
  }
  SvrParams params;
  params.kernel.kind = GetParam();
  params.kernel.gamma = 1.0;
  params.kernel.coef0 = 1.0;
  params.c = 20.0;
  params.epsilon = 0.01;
  const auto model = SvrModel::train(data, params);
  const auto pred = model.predict(data);
  EXPECT_GT(r_squared(pred, data.targets()), 0.9)
      << kernel_kind_name(GetParam());
}

class SvrCSweepTest : public ::testing::TestWithParam<double> {};

INSTANTIATE_TEST_SUITE_P(CValues, SvrCSweepTest,
                         ::testing::Values(0.1, 1.0, 10.0, 100.0));

TEST_P(SvrCSweepTest, ConvergesAndBoundsCoefficients) {
  const auto data = sine_data(60, 16);
  SvrParams params;
  params.kernel.gamma = 2.0;
  params.c = GetParam();
  params.epsilon = 0.05;
  SvrTrainReport report;
  const auto model = SvrModel::train(data, params, &report);
  EXPECT_TRUE(report.converged);
  for (double beta : model.coefficients()) {
    EXPECT_LE(std::abs(beta), GetParam() + 1e-9);
  }
}

TEST(SvrTest, MultiDimensionalRegression) {
  // y = x0 + 2 x1 - x2 on 3D inputs with the RBF kernel.
  Rng rng(17);
  Dataset data;
  for (int i = 0; i < 150; ++i) {
    std::vector<double> x = {rng.uniform(-1, 1), rng.uniform(-1, 1),
                             rng.uniform(-1, 1)};
    const double y = x[0] + 2.0 * x[1] - x[2];
    data.add(Sample{std::move(x), y});
  }
  SvrParams params;
  params.kernel.gamma = 0.5;
  params.c = 50.0;
  params.epsilon = 0.05;
  const auto model = SvrModel::train(data, params);
  const auto pred = model.predict(data);
  EXPECT_GT(r_squared(pred, data.targets()), 0.97);
}


TEST(SvrWorkingSetTest, FirstAndSecondOrderReachSameOptimum) {
  const auto data = sine_data(80, 21);
  SvrParams wss2;
  wss2.kernel.gamma = 2.0;
  wss2.c = 10.0;
  wss2.epsilon = 0.05;
  wss2.second_order_working_set = true;
  SvrParams wss1 = wss2;
  wss1.second_order_working_set = false;

  SvrTrainReport report2;
  SvrTrainReport report1;
  const auto model2 = SvrModel::train(data, wss2, &report2);
  const auto model1 = SvrModel::train(data, wss1, &report1);
  EXPECT_TRUE(report1.converged);
  EXPECT_TRUE(report2.converged);
  // Same dual optimum => near-identical decision functions.
  for (double x = -1.0; x <= 1.0; x += 0.1) {
    EXPECT_NEAR(model1.predict(std::vector<double>{x}),
                model2.predict(std::vector<double>{x}), 5e-3)
        << "x=" << x;
  }
}

TEST(SvrWorkingSetTest, SecondOrderNeedsNoMoreIterations) {
  const auto data = sine_data(120, 22);
  SvrParams wss2;
  wss2.kernel.gamma = 4.0;
  wss2.c = 100.0;
  wss2.epsilon = 0.01;
  SvrParams wss1 = wss2;
  wss1.second_order_working_set = false;

  SvrTrainReport report2;
  SvrTrainReport report1;
  (void)SvrModel::train(data, wss2, &report2);
  (void)SvrModel::train(data, wss1, &report1);
  EXPECT_LE(report2.iterations, report1.iterations);
}

}  // namespace
}  // namespace vmtherm::ml
