// Tests for ml/linreg: exact recovery, ridge shrinkage, degeneracy.

#include "ml/linreg.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"
#include "util/stats.h"

namespace vmtherm::ml {
namespace {

TEST(LinRegTest, EmptyThrows) {
  EXPECT_THROW((void)LinearRegression::fit(Dataset{}), DataError);
}

TEST(LinRegTest, RecoversExactLinearModel) {
  Rng rng(1);
  Dataset data;
  for (int i = 0; i < 50; ++i) {
    const double a = rng.uniform(-5, 5);
    const double b = rng.uniform(-5, 5);
    data.add(Sample{{a, b}, 3.0 * a - 2.0 * b + 7.0});
  }
  const auto model = LinearRegression::fit(data);
  ASSERT_EQ(model.weights().size(), 2u);
  EXPECT_NEAR(model.weights()[0], 3.0, 1e-6);
  EXPECT_NEAR(model.weights()[1], -2.0, 1e-6);
  EXPECT_NEAR(model.intercept(), 7.0, 1e-6);
}

TEST(LinRegTest, PredictMatchesManualComputation) {
  const LinearRegression model({2.0, -1.0}, 0.5);
  EXPECT_DOUBLE_EQ(model.predict(std::vector<double>{3.0, 4.0}),
                   6.0 - 4.0 + 0.5);
}

TEST(LinRegTest, PredictDimensionMismatchThrows) {
  const LinearRegression model({1.0}, 0.0);
  EXPECT_THROW((void)model.predict(std::vector<double>{1.0, 2.0}), DataError);
}

TEST(LinRegTest, NoisyDataStillCloseToTruth) {
  Rng rng(2);
  Dataset data;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(-1, 1);
    data.add(Sample{{x}, 4.0 * x + 1.0 + rng.normal(0.0, 0.1)});
  }
  const auto model = LinearRegression::fit(data);
  EXPECT_NEAR(model.weights()[0], 4.0, 0.05);
  EXPECT_NEAR(model.intercept(), 1.0, 0.05);
}

TEST(LinRegTest, RidgeShrinksWeights) {
  Rng rng(3);
  Dataset data;
  for (int i = 0; i < 40; ++i) {
    const double x = rng.uniform(-1, 1);
    data.add(Sample{{x}, 5.0 * x});
  }
  const auto unregularized = LinearRegression::fit(data, 0.0);
  const auto ridge = LinearRegression::fit(data, 100.0);
  EXPECT_LT(std::abs(ridge.weights()[0]),
            std::abs(unregularized.weights()[0]));
  EXPECT_GT(std::abs(ridge.weights()[0]), 0.0);
}

TEST(LinRegTest, InterceptNotPenalized) {
  // Constant target: heavy ridge must not shrink the intercept.
  Dataset data;
  for (int i = 0; i < 20; ++i) {
    data.add(Sample{{static_cast<double>(i)}, 10.0});
  }
  const auto model = LinearRegression::fit(data, 1000.0);
  EXPECT_NEAR(model.predict(std::vector<double>{5.0}), 10.0, 0.5);
}

TEST(LinRegTest, CollinearFeaturesHandled) {
  // x1 = 2 * x0 exactly; OLS normal equations are singular, ridge/jitter
  // must still produce a usable model.
  Rng rng(4);
  Dataset data;
  for (int i = 0; i < 30; ++i) {
    const double x = rng.uniform(-1, 1);
    data.add(Sample{{x, 2.0 * x}, 3.0 * x + 1.0});
  }
  const auto model = LinearRegression::fit(data, 1e-6);
  // Individual weights are not identified, but predictions must be.
  for (double x = -0.8; x <= 0.8; x += 0.4) {
    EXPECT_NEAR(model.predict(std::vector<double>{x, 2.0 * x}), 3.0 * x + 1.0,
                0.01);
  }
}

TEST(LinRegTest, NegativeLambdaRejected) {
  Dataset data;
  data.add(Sample{{1.0}, 1.0});
  EXPECT_THROW((void)LinearRegression::fit(data, -1.0), ConfigError);
}

TEST(LinRegTest, BatchPredictMatchesPointwise) {
  Rng rng(5);
  Dataset data;
  for (int i = 0; i < 30; ++i) {
    const double x = rng.uniform(-1, 1);
    data.add(Sample{{x}, 2.0 * x});
  }
  const auto model = LinearRegression::fit(data);
  const auto batch = model.predict(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch[i], model.predict(data[i].x));
  }
}

TEST(LinRegTest, HighDimensionalRecovery) {
  Rng rng(6);
  const std::size_t d = 8;
  std::vector<double> true_w(d);
  for (std::size_t j = 0; j < d; ++j) true_w[j] = rng.uniform(-2, 2);
  Dataset data;
  for (int i = 0; i < 200; ++i) {
    std::vector<double> x(d);
    double y = 0.5;
    for (std::size_t j = 0; j < d; ++j) {
      x[j] = rng.uniform(-1, 1);
      y += true_w[j] * x[j];
    }
    data.add(Sample{std::move(x), y});
  }
  const auto model = LinearRegression::fit(data);
  for (std::size_t j = 0; j < d; ++j) {
    EXPECT_NEAR(model.weights()[j], true_w[j], 1e-6);
  }
}

}  // namespace
}  // namespace vmtherm::ml
