// Tests for ml/grid: the easygrid-equivalent hyper-parameter search.

#include "ml/grid.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <numbers>

#include "ml/cv.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace vmtherm::ml {
namespace {

Dataset wavy_data(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Dataset data;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rng.uniform(-1.0, 1.0);
    data.add(
        Sample{{x}, std::sin(2.0 * std::numbers::pi * x) + rng.normal(0, 0.05)});
  }
  return data;
}

GridSpec small_grid() {
  GridSpec spec;
  spec.c_values = {1.0, 50.0};
  spec.gamma_values = {0.05, 5.0};
  spec.epsilon_values = {0.05};
  spec.folds = 4;
  return spec;
}

TEST(GridSearchTest, EvaluatesFullCartesianProduct) {
  const auto data = wavy_data(60, 1);
  const auto result = grid_search_svr(data, small_grid());
  EXPECT_EQ(result.evaluated.size(), 4u);  // 2 x 2 x 1
}

TEST(GridSearchTest, BestPointHasLowestCvMse) {
  const auto data = wavy_data(60, 2);
  const auto result = grid_search_svr(data, small_grid());
  for (const auto& point : result.evaluated) {
    EXPECT_GE(point.cv_mse, result.best_cv_mse);
  }
}

TEST(GridSearchTest, PrefersWigglyKernelForWigglyTarget) {
  // sin(2 pi x) needs a reasonably large gamma; gamma=0.05 underfits badly.
  const auto data = wavy_data(80, 3);
  const auto result = grid_search_svr(data, small_grid());
  EXPECT_DOUBLE_EQ(result.best_params.kernel.gamma, 5.0);
}

TEST(GridSearchTest, DeterministicGivenSeed) {
  const auto data = wavy_data(50, 4);
  const auto a = grid_search_svr(data, small_grid());
  const auto b = grid_search_svr(data, small_grid());
  EXPECT_DOUBLE_EQ(a.best_cv_mse, b.best_cv_mse);
  EXPECT_DOUBLE_EQ(a.best_params.c, b.best_params.c);
  EXPECT_DOUBLE_EQ(a.best_params.kernel.gamma, b.best_params.kernel.gamma);
}

TEST(GridSearchTest, WinningParamsTrainAccurateModel) {
  const auto data = wavy_data(80, 5);
  const auto result = grid_search_svr(data, small_grid());
  const auto model = SvrModel::train(data, result.best_params);
  double max_err = 0.0;
  for (double x = -0.8; x <= 0.8; x += 0.2) {
    max_err = std::max(
        max_err, std::abs(model.predict(std::vector<double>{x}) -
                          std::sin(2.0 * std::numbers::pi * x)));
  }
  EXPECT_LT(max_err, 0.35);
}

TEST(GridSearchTest, TooFewSamplesThrows) {
  const auto data = wavy_data(3, 6);
  EXPECT_THROW((void)grid_search_svr(data, small_grid()), DataError);
}

TEST(GridSearchTest, InvalidSpecThrows) {
  const auto data = wavy_data(30, 7);
  GridSpec spec = small_grid();
  spec.c_values.clear();
  EXPECT_THROW((void)grid_search_svr(data, spec), ConfigError);
  spec = small_grid();
  spec.folds = 1;
  EXPECT_THROW((void)grid_search_svr(data, spec), ConfigError);
}

void expect_bitwise_equal(const GridSearchResult& a, const GridSearchResult& b) {
  EXPECT_EQ(a.best_cv_mse, b.best_cv_mse);
  EXPECT_EQ(a.best_params.c, b.best_params.c);
  EXPECT_EQ(a.best_params.kernel.gamma, b.best_params.kernel.gamma);
  EXPECT_EQ(a.best_params.epsilon, b.best_params.epsilon);
  ASSERT_EQ(a.evaluated.size(), b.evaluated.size());
  for (std::size_t i = 0; i < a.evaluated.size(); ++i) {
    EXPECT_EQ(a.evaluated[i].cv_mse, b.evaluated[i].cv_mse) << i;
    EXPECT_EQ(a.evaluated[i].params.c, b.evaluated[i].params.c) << i;
    EXPECT_EQ(a.evaluated[i].params.kernel.gamma,
              b.evaluated[i].params.kernel.gamma)
        << i;
    EXPECT_EQ(a.evaluated[i].params.epsilon, b.evaluated[i].params.epsilon)
        << i;
  }
}

TEST(GridSearchTest, ParallelBitwiseIdenticalToSerial) {
  const auto data = wavy_data(60, 9);
  GridSpec spec = small_grid();
  spec.epsilon_values = {0.05, 0.2};  // 2 x 2 x 2 = 8 points
  spec.threads = 1;
  const auto serial = grid_search_svr(data, spec);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    spec.threads = threads;
    const auto parallel = grid_search_svr(data, spec);
    expect_bitwise_equal(serial, parallel);
  }
}

TEST(GridSearchTest, SharedExternalPoolMatchesSerial) {
  const auto data = wavy_data(50, 10);
  GridSpec spec = small_grid();
  const auto serial = grid_search_svr(data, spec);
  util::ThreadPool pool(3);
  const auto pooled = grid_search_svr(data, spec, &pool);
  expect_bitwise_equal(serial, pooled);
}

TEST(GridSearchTest, MatchesPerPointFoldMaterializationReference) {
  // Regression for the fold-hoisting fix: re-materializing each fold's
  // train/validation subsets per grid point (the old, redundant code path)
  // must give the exact same GridSearchResult.
  const auto data = wavy_data(48, 11);
  const GridSpec spec = small_grid();
  const auto result = grid_search_svr(data, spec);

  Rng fold_rng(spec.seed);
  const auto folds = make_folds(data.size(), spec.folds, fold_rng);
  std::size_t idx = 0;
  double best_cv_mse = std::numeric_limits<double>::infinity();
  SvrParams best_params;
  for (double c : spec.c_values) {
    for (double gamma : spec.gamma_values) {
      for (double eps : spec.epsilon_values) {
        SvrParams params;
        params.kernel.kind = spec.kernel;
        params.kernel.gamma = gamma;
        params.c = c;
        params.epsilon = eps;
        double squared_error = 0.0;
        std::size_t count = 0;
        for (const auto& f : folds) {
          const Dataset train = data.subset(f.train);
          const Dataset validation = data.subset(f.validation);
          const SvrModel model = SvrModel::train(train, params);
          for (const auto& s : validation.samples()) {
            const double e = model.predict(s.x) - s.y;
            squared_error += e * e;
          }
          count += validation.size();
        }
        const double cv_mse = squared_error / static_cast<double>(count);
        ASSERT_LT(idx, result.evaluated.size());
        EXPECT_EQ(result.evaluated[idx].cv_mse, cv_mse) << idx;
        EXPECT_EQ(result.evaluated[idx].params.c, c) << idx;
        EXPECT_EQ(result.evaluated[idx].params.kernel.gamma, gamma) << idx;
        EXPECT_EQ(result.evaluated[idx].params.epsilon, eps) << idx;
        if (cv_mse < best_cv_mse) {
          best_cv_mse = cv_mse;
          best_params = params;
        }
        ++idx;
      }
    }
  }
  EXPECT_EQ(result.evaluated.size(), idx);
  EXPECT_EQ(result.best_cv_mse, best_cv_mse);
  EXPECT_EQ(result.best_params.c, best_params.c);
  EXPECT_EQ(result.best_params.kernel.gamma, best_params.kernel.gamma);
  EXPECT_EQ(result.best_params.epsilon, best_params.epsilon);
}

TEST(GridSearchTest, TiesBreakTowardLowestGridIndex) {
  // A constant-zero target inside the epsilon tube: every grid point fits
  // perfectly, so all cv_mse values tie and the first grid point (in
  // canonical C-outer order) must win — at any thread count.
  Dataset data;
  for (int i = 0; i < 40; ++i) {
    data.add(Sample{{static_cast<double>(i) / 40.0}, 0.0});
  }
  GridSpec spec;
  spec.c_values = {1.0, 4.0, 16.0};
  spec.gamma_values = {0.25, 1.0};
  spec.epsilon_values = {0.1, 0.3};
  spec.folds = 4;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    spec.threads = threads;
    const auto result = grid_search_svr(data, spec);
    for (const auto& point : result.evaluated) {
      ASSERT_EQ(point.cv_mse, result.best_cv_mse);  // all tied
    }
    EXPECT_EQ(result.best_params.c, spec.c_values[0]);
    EXPECT_EQ(result.best_params.kernel.gamma, spec.gamma_values[0]);
    EXPECT_EQ(result.best_params.epsilon, spec.epsilon_values[0]);
  }
}

TEST(GridSearchTest, DefaultSpecIsUsableOnSmallData) {
  GridSpec spec;  // defaults: 6 x 5 x 2 grid, 10 folds
  spec.folds = 3;  // keep the test fast
  const auto data = wavy_data(40, 8);
  const auto result = grid_search_svr(data, spec);
  EXPECT_EQ(result.evaluated.size(),
            spec.c_values.size() * spec.gamma_values.size() *
                spec.epsilon_values.size());
  EXPECT_TRUE(std::isfinite(result.best_cv_mse));
}

}  // namespace
}  // namespace vmtherm::ml
