// Tests for ml/grid: the easygrid-equivalent hyper-parameter search.

#include "ml/grid.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "util/rng.h"

namespace vmtherm::ml {
namespace {

Dataset wavy_data(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Dataset data;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rng.uniform(-1.0, 1.0);
    data.add(
        Sample{{x}, std::sin(2.0 * std::numbers::pi * x) + rng.normal(0, 0.05)});
  }
  return data;
}

GridSpec small_grid() {
  GridSpec spec;
  spec.c_values = {1.0, 50.0};
  spec.gamma_values = {0.05, 5.0};
  spec.epsilon_values = {0.05};
  spec.folds = 4;
  return spec;
}

TEST(GridSearchTest, EvaluatesFullCartesianProduct) {
  const auto data = wavy_data(60, 1);
  const auto result = grid_search_svr(data, small_grid());
  EXPECT_EQ(result.evaluated.size(), 4u);  // 2 x 2 x 1
}

TEST(GridSearchTest, BestPointHasLowestCvMse) {
  const auto data = wavy_data(60, 2);
  const auto result = grid_search_svr(data, small_grid());
  for (const auto& point : result.evaluated) {
    EXPECT_GE(point.cv_mse, result.best_cv_mse);
  }
}

TEST(GridSearchTest, PrefersWigglyKernelForWigglyTarget) {
  // sin(2 pi x) needs a reasonably large gamma; gamma=0.05 underfits badly.
  const auto data = wavy_data(80, 3);
  const auto result = grid_search_svr(data, small_grid());
  EXPECT_DOUBLE_EQ(result.best_params.kernel.gamma, 5.0);
}

TEST(GridSearchTest, DeterministicGivenSeed) {
  const auto data = wavy_data(50, 4);
  const auto a = grid_search_svr(data, small_grid());
  const auto b = grid_search_svr(data, small_grid());
  EXPECT_DOUBLE_EQ(a.best_cv_mse, b.best_cv_mse);
  EXPECT_DOUBLE_EQ(a.best_params.c, b.best_params.c);
  EXPECT_DOUBLE_EQ(a.best_params.kernel.gamma, b.best_params.kernel.gamma);
}

TEST(GridSearchTest, WinningParamsTrainAccurateModel) {
  const auto data = wavy_data(80, 5);
  const auto result = grid_search_svr(data, small_grid());
  const auto model = SvrModel::train(data, result.best_params);
  double max_err = 0.0;
  for (double x = -0.8; x <= 0.8; x += 0.2) {
    max_err = std::max(
        max_err, std::abs(model.predict(std::vector<double>{x}) -
                          std::sin(2.0 * std::numbers::pi * x)));
  }
  EXPECT_LT(max_err, 0.35);
}

TEST(GridSearchTest, TooFewSamplesThrows) {
  const auto data = wavy_data(3, 6);
  EXPECT_THROW((void)grid_search_svr(data, small_grid()), DataError);
}

TEST(GridSearchTest, InvalidSpecThrows) {
  const auto data = wavy_data(30, 7);
  GridSpec spec = small_grid();
  spec.c_values.clear();
  EXPECT_THROW((void)grid_search_svr(data, spec), ConfigError);
  spec = small_grid();
  spec.folds = 1;
  EXPECT_THROW((void)grid_search_svr(data, spec), ConfigError);
}

TEST(GridSearchTest, DefaultSpecIsUsableOnSmallData) {
  GridSpec spec;  // defaults: 6 x 5 x 2 grid, 10 folds
  spec.folds = 3;  // keep the test fast
  const auto data = wavy_data(40, 8);
  const auto result = grid_search_svr(data, spec);
  EXPECT_EQ(result.evaluated.size(),
            spec.c_values.size() * spec.gamma_values.size() *
                spec.epsilon_values.size());
  EXPECT_TRUE(std::isfinite(result.best_cv_mse));
}

}  // namespace
}  // namespace vmtherm::ml
