// Tests for util/thread_pool: FIFO task ordering, exception propagation,
// and parallel_for over degenerate and odd-sized ranges.

#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/error.h"

namespace vmtherm::util {
namespace {

TEST(ThreadPoolTest, ReportsThreadCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
}

TEST(ThreadPoolTest, ResolveThreadCountPassesNonZeroThrough) {
  EXPECT_EQ(ThreadPool::resolve_thread_count(1), 1u);
  EXPECT_EQ(ThreadPool::resolve_thread_count(7), 7u);
}

TEST(ThreadPoolTest, ResolveThreadCountZeroMeansHardware) {
  EXPECT_GE(ThreadPool::resolve_thread_count(0), 1u);
}

TEST(ThreadPoolTest, SingleWorkerRunsTasksInSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> pending;
  for (int i = 0; i < 32; ++i) {
    pending.push_back(pool.submit([&order, i] { order.push_back(i); }));
  }
  for (auto& f : pending) f.get();
  ASSERT_EQ(order.size(), 32u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptionThroughFuture) {
  ThreadPool pool(2);
  auto future = pool.submit([] { throw DataError("task failed"); });
  EXPECT_THROW(future.get(), DataError);
}

TEST(ThreadPoolTest, ZeroWorkerPoolRunsSubmitInline) {
  ThreadPool pool(0);
  bool ran = false;
  pool.submit([&ran] { ran = true; }).get();
  EXPECT_TRUE(ran);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      (void)pool.submit([&done] { done.fetch_add(1); });
    }
  }  // destructor joins after draining
  EXPECT_EQ(done.load(), 64);
}

TEST(ParallelForTest, EmptyRangeCallsNothing) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for(0, 0, [&calls](std::size_t) { calls.fetch_add(1); });
  pool.parallel_for(5, 5, [&calls](std::size_t) { calls.fetch_add(1); });
  pool.parallel_for(7, 3, [&calls](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, SingleItemRange) {
  ThreadPool pool(4);
  std::vector<int> hits(1, 0);
  pool.parallel_for(0, 1, [&hits](std::size_t i) { ++hits[i]; });
  EXPECT_EQ(hits[0], 1);
}

TEST(ParallelForTest, OddSizedRangeVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kBegin = 3;
  constexpr std::size_t kEnd = 3 + 17;  // odd count, offset start
  std::vector<std::atomic<int>> hits(kEnd);
  for (auto& h : hits) h.store(0);
  pool.parallel_for(kBegin, kEnd,
                    [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kBegin; ++i) EXPECT_EQ(hits[i].load(), 0) << i;
  for (std::size_t i = kBegin; i < kEnd; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForTest, ZeroWorkerPoolRunsInlineInOrder) {
  ThreadPool pool(0);
  std::vector<std::size_t> visited;
  pool.parallel_for(0, 5,
                    [&visited](std::size_t i) { visited.push_back(i); });
  EXPECT_EQ(visited, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, PropagatesExceptionFromLowestFailingIndex) {
  ThreadPool pool(4);
  // Every index throws; the loop must finish all of them and rethrow the
  // exception belonging to the lowest index, deterministically.
  std::atomic<int> calls{0};
  try {
    pool.parallel_for(2, 13, [&calls](std::size_t i) {
      calls.fetch_add(1);
      throw std::runtime_error("boom at " + std::to_string(i));
    });
    FAIL() << "parallel_for should have thrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom at 2");
  }
  EXPECT_EQ(calls.load(), 11);  // every index still ran
}

TEST(ParallelForTest, PreservesExceptionType) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 4,
                                 [](std::size_t i) {
                                   if (i == 1) throw DataError("bad fold");
                                 }),
               DataError);
}

TEST(ParallelForTest, LargeRangeSumsCorrectly) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  std::atomic<std::uint64_t> sum{0};
  pool.parallel_for(0, kN, [&sum](std::size_t i) {
    sum.fetch_add(static_cast<std::uint64_t>(i), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), static_cast<std::uint64_t>(kN) * (kN - 1) / 2);
}

TEST(ParallelForTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> inner_calls{0};
  pool.parallel_for(0, 4, [&pool, &inner_calls](std::size_t) {
    pool.parallel_for(0, 4,
                      [&inner_calls](std::size_t) { inner_calls.fetch_add(1); });
  });
  EXPECT_EQ(inner_calls.load(), 16);
}

TEST(ParallelForTest, ResultSlotsAreScheduleIndependent) {
  // The determinism contract: each index writes its own slot, so the
  // gathered output is identical across thread counts.
  const auto run_with = [](std::size_t workers) {
    ThreadPool pool(workers);
    std::vector<double> out(101);
    pool.parallel_for(0, out.size(), [&out](std::size_t i) {
      out[i] = static_cast<double>(i) * 1.5 - 3.0;
    });
    return out;
  };
  const auto serial = run_with(0);
  EXPECT_EQ(serial, run_with(1));
  EXPECT_EQ(serial, run_with(4));
}

}  // namespace
}  // namespace vmtherm::util
