// Tests for serve/engine: the sharded FleetEngine — registration, manual
// and pooled draining, backpressure, determinism across shard counts, and
// the concurrency protocol (this file is the TSan target for the serving
// layer; see scripts/check_tsan.sh).

#include "serve/engine.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/evaluator.h"

namespace vmtherm::serve {
namespace {

const core::StableTemperaturePredictor& shared_predictor() {
  static const core::StableTemperaturePredictor predictor = [] {
    sim::ScenarioRanges ranges;
    ranges.duration_s = 1200.0;
    ranges.sample_interval_s = 10.0;
    core::StableTrainOptions options;
    ml::SvrParams params;
    params.kernel.gamma = 1.0 / 32;
    params.c = 512.0;
    params.epsilon = 0.05;
    options.fixed_params = params;
    return core::StableTemperaturePredictor::train(
        core::generate_corpus(ranges, 80, 73), options);
  }();
  return predictor;
}

mgmt::MonitoredConfig busy_config() {
  mgmt::MonitoredConfig config;
  config.server = sim::make_server_spec("medium");
  config.fans = 4;
  sim::VmConfig burn;
  burn.vcpus = 8;
  burn.memory_gb = 8.0;
  burn.task = sim::TaskType::kCpuBurn;
  config.vms = {burn, burn};
  config.env_temp_c = 23.0;
  return config;
}

mgmt::MonitoredConfig idle_config() {
  mgmt::MonitoredConfig config = busy_config();
  sim::VmConfig idle;
  idle.vcpus = 2;
  idle.memory_gb = 4.0;
  idle.task = sim::TaskType::kIdle;
  config.vms = {idle};
  return config;
}

FleetEngineOptions manual_options(std::size_t shards = 2) {
  FleetEngineOptions options;
  options.shards = shards;
  options.drain = DrainMode::kManual;
  options.backpressure = BackpressurePolicy::kDropNewest;
  return options;
}

TEST(FleetEngineTest, OptionsValidation) {
  FleetEngineOptions options;
  options.shards = 0;
  EXPECT_THROW(options.validate(), ConfigError);
  options = FleetEngineOptions{};
  options.queue_capacity = 0;
  EXPECT_THROW(options.validate(), ConfigError);
  // Blocking producers with nothing draining would deadlock.
  options = FleetEngineOptions{};
  options.drain = DrainMode::kManual;
  options.backpressure = BackpressurePolicy::kBlock;
  EXPECT_THROW(options.validate(), ConfigError);
}

TEST(FleetEngineTest, RegisterQueryUnregister) {
  FleetEngine engine(shared_predictor(), manual_options());
  const HostHandle h1 = engine.register_host("h1", busy_config(), 0.0, 23.0);
  EXPECT_TRUE(engine.has_host("h1"));
  EXPECT_EQ(engine.handle_of("h1"), h1);
  EXPECT_EQ(engine.host_count(), 1u);
  EXPECT_EQ(engine.config_of(h1).fans, 4);
  EXPECT_EQ(engine.metrics().gauge("fleet.hosts").value(), 1);

  EXPECT_THROW(engine.register_host("h1", busy_config(), 0.0, 23.0),
               ConfigError);
  EXPECT_THROW(engine.register_host("", busy_config(), 0.0, 23.0),
               ConfigError);
  EXPECT_THROW(engine.register_host("bad id", busy_config(), 0.0, 23.0),
               ConfigError);

  engine.unregister_host(h1);
  EXPECT_FALSE(engine.has_host("h1"));
  EXPECT_EQ(engine.handle_of("h1"), kInvalidHostHandle);
  EXPECT_THROW((void)engine.forecast(h1, 60.0), ConfigError);
  EXPECT_EQ(engine.metrics().gauge("fleet.hosts").value(), 0);
}

TEST(FleetEngineTest, ShardAssignmentIsStable) {
  FleetEngine a(shared_predictor(), manual_options(8));
  FleetEngine b(shared_predictor(), manual_options(8));
  for (const char* id : {"host-0001", "host-0002", "rack12/u7", "web-42"}) {
    EXPECT_EQ(a.shard_of(id), b.shard_of(id));
    EXPECT_LT(a.shard_of(id), 8u);
  }
}

TEST(FleetEngineTest, ManualDrainAppliesInOrder) {
  FleetEngine engine(shared_predictor(), manual_options());
  const HostHandle h = engine.register_host("h1", busy_config(), 0.0, 23.0);

  std::vector<TelemetryEvent> batch;
  for (double t = 15.0; t <= 90.0; t += 15.0) {
    batch.push_back(TelemetryEvent::observe(h, t, 30.0 + t * 0.1));
  }
  engine.ingest_batch(std::move(batch));
  // Nothing applied until flush in manual mode.
  EXPECT_EQ(engine.metrics().counter("apply.observe").value(), 0u);
  engine.flush();
  EXPECT_EQ(engine.metrics().counter("apply.observe").value(), 6u);
  EXPECT_EQ(engine.metrics().counter("ingest.events").value(), 6u);
  EXPECT_EQ(engine.metrics().counter("apply.errors").value(), 0u);
  EXPECT_GT(engine.forecast(h, 60.0), 23.0);
}

TEST(FleetEngineTest, MatchesMonitorServiceBitwise) {
  // Same event stream, same defaults: the sharded engine and the serial
  // ThermalMonitorService must produce identical forecasts.
  FleetEngine engine(shared_predictor(), manual_options(3));
  mgmt::ThermalMonitorService monitor(shared_predictor());
  const HostHandle h = engine.register_host("h1", busy_config(), 0.0, 23.0);
  monitor.register_host("h1", busy_config(), 0.0, 23.0);

  for (double t = 15.0; t <= 300.0; t += 15.0) {
    const double measured = 30.0 + t * 0.08;
    engine.ingest(TelemetryEvent::observe(h, t, measured));
    monitor.observe("h1", t, measured);
  }
  engine.ingest(
      TelemetryEvent::update_config(h, 315.0, 52.0, idle_config()));
  monitor.update_config("h1", idle_config(), 315.0, 52.0);
  engine.flush();

  for (const double gap : {0.0, 30.0, 60.0, 600.0}) {
    EXPECT_EQ(engine.forecast(h, gap), monitor.forecast("h1", gap));
  }
  EXPECT_EQ(engine.calibration_of(h), 0.0);  // retarget resets gamma
}

TEST(FleetEngineTest, BackpressureDropsNewestWhenFull) {
  FleetEngineOptions options = manual_options(1);
  options.queue_capacity = 2;
  FleetEngine engine(shared_predictor(), options);
  const HostHandle h = engine.register_host("h1", busy_config(), 0.0, 23.0);

  std::vector<TelemetryEvent> batch;
  for (double t = 1.0; t <= 5.0; t += 1.0) {
    batch.push_back(TelemetryEvent::observe(h, t, 30.0));
  }
  engine.ingest_batch(std::move(batch));
  EXPECT_EQ(engine.metrics().counter("ingest.events").value(), 2u);
  EXPECT_EQ(engine.metrics().counter("ingest.dropped").value(), 3u);
  engine.flush();
  EXPECT_EQ(engine.metrics().counter("apply.observe").value(), 2u);
}

TEST(FleetEngineTest, InvalidHandleRejectedUpFront) {
  FleetEngine engine(shared_predictor(), manual_options());
  EXPECT_THROW(engine.ingest(TelemetryEvent::observe(7, 1.0, 30.0)),
               ConfigError);
  EXPECT_THROW((void)engine.forecast_batch({ForecastRequest{7, 60.0}}),
               ConfigError);
  // The rejected batch enqueued nothing.
  EXPECT_EQ(engine.metrics().counter("ingest.events").value(), 0u);
}

TEST(FleetEngineTest, EventsToUnregisteredHostCountAsApplyErrors) {
  FleetEngine engine(shared_predictor(), manual_options());
  const HostHandle h = engine.register_host("h1", busy_config(), 0.0, 23.0);
  engine.ingest(TelemetryEvent::observe(h, 10.0, 30.0));
  engine.unregister_host(h);  // tombstones the slot; the event is queued
  engine.flush();
  EXPECT_EQ(engine.metrics().counter("apply.errors").value(), 1u);
  EXPECT_EQ(engine.metrics().counter("apply.observe").value(), 0u);
}

TEST(FleetEngineTest, MalformedEventsAreCountedNotThrown) {
  FleetEngine engine(shared_predictor(), manual_options());
  const HostHandle h = engine.register_host("h1", busy_config(), 0.0, 23.0);
  engine.ingest(TelemetryEvent::observe(h, 100.0, 30.0));
  engine.ingest(TelemetryEvent::observe(h, 50.0, 30.0));  // time reversal
  engine.flush();
  EXPECT_EQ(engine.metrics().counter("apply.observe").value(), 1u);
  EXPECT_EQ(engine.metrics().counter("apply.errors").value(), 1u);
  // The engine keeps serving.
  EXPECT_GT(engine.forecast(h, 60.0), 0.0);
}

TEST(FleetEngineTest, ForecastBatchReturnsInRequestOrder) {
  FleetEngine engine(shared_predictor(), manual_options(4));
  std::vector<HostHandle> handles;
  for (int i = 0; i < 6; ++i) {
    handles.push_back(engine.register_host("host-" + std::to_string(i),
                                           i % 2 == 0 ? busy_config()
                                                      : idle_config(),
                                           0.0, 23.0));
  }
  std::vector<ForecastRequest> requests;
  for (auto it = handles.rbegin(); it != handles.rend(); ++it) {
    requests.push_back(ForecastRequest{*it, 120.0});
  }
  const std::vector<double> batched = engine.forecast_batch(requests);
  ASSERT_EQ(batched.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(batched[i], engine.forecast(requests[i].host, 120.0));
  }
}

TEST(FleetEngineTest, HotspotScanSortedAndDeterministic) {
  FleetEngine engine(shared_predictor(), manual_options(4));
  for (int i = 0; i < 8; ++i) {
    engine.register_host("host-" + std::to_string(i),
                         i < 4 ? busy_config() : idle_config(), 0.0, 23.0);
  }
  // Threshold between the two config classes' long-horizon forecasts, so
  // the at_risk split is robust to the shared predictor's exact fit.
  const double busy_c = engine.forecast(engine.handle_of("host-0"), 590.0);
  const double idle_c = engine.forecast(engine.handle_of("host-7"), 590.0);
  ASSERT_GT(busy_c, idle_c);
  const auto risks = engine.hotspot_scan(590.0, (busy_c + idle_c) / 2.0);
  ASSERT_EQ(risks.size(), 8u);
  for (std::size_t i = 1; i < risks.size(); ++i) {
    EXPECT_GE(risks[i - 1].forecast_c, risks[i].forecast_c);
  }
  EXPECT_TRUE(risks.front().at_risk);
  EXPECT_FALSE(risks.back().at_risk);
  EXPECT_EQ(engine.metrics().counter("hotspot.scans").value(), 1u);
}

TEST(FleetEngineTest, DeterministicAcrossShardAndThreadCounts) {
  // Same logical event stream at (1 shard, 1 thread), (2, 2) and (8, 4):
  // bitwise-identical forecasts and byte-identical deterministic metrics.
  struct Setup {
    std::size_t shards;
    std::size_t threads;
  };
  std::vector<std::vector<double>> forecasts;
  std::vector<std::string> metrics;
  for (const Setup& setup :
       {Setup{1, 1}, Setup{2, 2}, Setup{8, 4}}) {
    FleetEngineOptions options;
    options.shards = setup.shards;
    options.threads = setup.threads;
    FleetEngine engine(shared_predictor(), options);
    std::vector<HostHandle> handles;
    std::vector<ForecastRequest> requests;
    for (int i = 0; i < 10; ++i) {
      handles.push_back(engine.register_host(
          "host-" + std::to_string(i),
          i % 3 == 0 ? idle_config() : busy_config(), 0.0, 22.0 + i));
      requests.push_back(ForecastRequest{handles.back(), 60.0});
    }
    for (int step = 1; step <= 30; ++step) {
      std::vector<TelemetryEvent> batch;
      for (int i = 0; i < 10; ++i) {
        batch.push_back(TelemetryEvent::observe(
            handles[i], step * 15.0, 25.0 + i + 0.3 * step));
      }
      engine.ingest_batch(std::move(batch));
    }
    engine.flush();
    forecasts.push_back(engine.forecast_batch(requests));
    metrics.push_back(engine.metrics().to_json(/*include_timing=*/false));
  }
  EXPECT_EQ(forecasts[0], forecasts[1]);
  EXPECT_EQ(forecasts[0], forecasts[2]);
  EXPECT_EQ(metrics[0], metrics[1]);
  EXPECT_EQ(metrics[0], metrics[2]);
}

TEST(FleetEngineTest, ConcurrentProducersAndQueriesAreSafe) {
  // Multiple producer threads ingesting disjoint hosts while a reader
  // issues forecasts and scans: exercises the queue/drain/state protocol
  // under TSan. Small queues force the blocking-backpressure path too.
  FleetEngineOptions options;
  options.shards = 4;
  options.threads = 2;
  options.queue_capacity = 16;
  FleetEngine engine(shared_predictor(), options);

  constexpr int kProducers = 4;
  constexpr int kHostsPerProducer = 3;
  constexpr int kStepsPerHost = 50;
  std::vector<std::vector<HostHandle>> handles(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    for (int i = 0; i < kHostsPerProducer; ++i) {
      std::string host_id = "p";
      host_id += std::to_string(p);
      host_id += "-h";
      host_id += std::to_string(i);
      handles[p].push_back(
          engine.register_host(host_id, busy_config(), 0.0, 23.0));
    }
  }

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&engine, &handles, p] {
      for (int step = 1; step <= kStepsPerHost; ++step) {
        std::vector<TelemetryEvent> batch;
        for (const HostHandle h : handles[p]) {
          batch.push_back(
              TelemetryEvent::observe(h, step * 5.0, 30.0 + 0.1 * step));
        }
        engine.ingest_batch(std::move(batch));
      }
    });
  }
  std::thread reader([&engine, &handles] {
    for (int i = 0; i < 20; ++i) {
      (void)engine.forecast(handles[0][0], 60.0);
      (void)engine.hotspot_scan(60.0, 70.0);
    }
  });
  for (std::thread& producer : producers) producer.join();
  reader.join();
  engine.flush();

  constexpr auto kTotal = static_cast<std::uint64_t>(kProducers) *
                          kHostsPerProducer * kStepsPerHost;
  EXPECT_EQ(engine.metrics().counter("ingest.events").value(), kTotal);
  EXPECT_EQ(engine.metrics().counter("apply.observe").value(), kTotal);
  EXPECT_EQ(engine.metrics().counter("ingest.dropped").value(), 0u);
  // Per-host order held: no time-reversal apply errors.
  EXPECT_EQ(engine.metrics().counter("apply.errors").value(), 0u);
}

TEST(FleetEngineTest, DestructorDrainsPendingEvents) {
  FleetEngineOptions options;
  options.shards = 2;
  options.threads = 2;
  {
    FleetEngine engine(shared_predictor(), options);
    const HostHandle h = engine.register_host("h1", busy_config(), 0.0, 23.0);
    std::vector<TelemetryEvent> batch;
    for (int step = 1; step <= 200; ++step) {
      batch.push_back(TelemetryEvent::observe(h, step * 5.0, 30.0));
    }
    engine.ingest_batch(std::move(batch));
    // No flush: the destructor must drain without deadlock or loss.
  }
  SUCCEED();
}

}  // namespace
}  // namespace vmtherm::serve
