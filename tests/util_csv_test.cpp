// Tests for util/csv: parsing, quoting, errors.

#include "util/csv.h"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.h"

namespace vmtherm {
namespace {

TEST(CsvEscapeTest, PlainFieldUnchanged) {
  EXPECT_EQ(csv_escape("hello"), "hello");
  EXPECT_EQ(csv_escape(""), "");
}

TEST(CsvEscapeTest, CommaQuoted) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
}

TEST(CsvEscapeTest, QuoteDoubled) {
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvEscapeTest, NewlineQuoted) {
  EXPECT_EQ(csv_escape("a\nb"), "\"a\nb\"");
}

TEST(CsvWriterTest, WritesRows) {
  std::ostringstream oss;
  CsvWriter w(oss);
  w.write_row({"a", "b"});
  w.write_row({"1", "x,y"});
  EXPECT_EQ(oss.str(), "a,b\n1,\"x,y\"\n");
}

TEST(CsvReadTest, SimpleDocument) {
  std::istringstream iss("h1,h2\n1,2\n3,4\n");
  const CsvDocument doc = read_csv(iss);
  ASSERT_EQ(doc.header.size(), 2u);
  EXPECT_EQ(doc.header[0], "h1");
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[1][1], "4");
}

TEST(CsvReadTest, EmptyStream) {
  std::istringstream iss("");
  const CsvDocument doc = read_csv(iss);
  EXPECT_TRUE(doc.header.empty());
  EXPECT_TRUE(doc.rows.empty());
}

TEST(CsvReadTest, QuotedFieldsWithCommasAndNewlines) {
  std::istringstream iss("a,b\n\"x,y\",\"line1\nline2\"\n");
  const CsvDocument doc = read_csv(iss);
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0][0], "x,y");
  EXPECT_EQ(doc.rows[0][1], "line1\nline2");
}

TEST(CsvReadTest, EscapedQuotes) {
  std::istringstream iss("a\n\"he said \"\"hi\"\"\"\n");
  const CsvDocument doc = read_csv(iss);
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0][0], "he said \"hi\"");
}

TEST(CsvReadTest, ToleratesCrLf) {
  std::istringstream iss("a,b\r\n1,2\r\n");
  const CsvDocument doc = read_csv(iss);
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0][0], "1");
}

TEST(CsvReadTest, MissingFinalNewlineOk) {
  std::istringstream iss("a,b\n1,2");
  const CsvDocument doc = read_csv(iss);
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0][1], "2");
}

TEST(CsvReadTest, RaggedRowThrows) {
  std::istringstream iss("a,b\n1,2,3\n");
  EXPECT_THROW((void)read_csv(iss), IoError);
}

TEST(CsvReadTest, UnterminatedQuoteThrows) {
  std::istringstream iss("a\n\"open\n");
  EXPECT_THROW((void)read_csv(iss), IoError);
}

TEST(CsvDocumentTest, ColumnLookup) {
  std::istringstream iss("x,y,z\n1,2,3\n");
  const CsvDocument doc = read_csv(iss);
  EXPECT_EQ(doc.column("x"), 0u);
  EXPECT_EQ(doc.column("z"), 2u);
  EXPECT_THROW((void)doc.column("missing"), IoError);
}

TEST(CsvReadFileTest, MissingFileThrows) {
  EXPECT_THROW((void)read_csv_file("/nonexistent/path.csv"), IoError);
}

TEST(CsvRoundTripTest, WriteThenRead) {
  std::ostringstream oss;
  CsvWriter w(oss);
  w.write_row({"name", "value"});
  w.write_row({"weird,one", "has \"quotes\""});
  w.write_row({"multi\nline", "plain"});

  std::istringstream iss(oss.str());
  const CsvDocument doc = read_csv(iss);
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[0][0], "weird,one");
  EXPECT_EQ(doc.rows[0][1], "has \"quotes\"");
  EXPECT_EQ(doc.rows[1][0], "multi\nline");
}

}  // namespace
}  // namespace vmtherm
