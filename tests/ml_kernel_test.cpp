// Tests for ml/kernel: values and properties of every kernel.

#include "ml/kernel.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "util/rng.h"

namespace vmtherm::ml {
namespace {

TEST(KernelHelpersTest, DotAndDistance) {
  const std::vector<double> x = {1.0, 2.0, 3.0};
  const std::vector<double> z = {4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(x, z), 4.0 - 10.0 + 18.0);
  EXPECT_DOUBLE_EQ(squared_distance(x, z), 9.0 + 49.0 + 9.0);
  EXPECT_DOUBLE_EQ(squared_distance(x, x), 0.0);
}

TEST(PowIntegerTest, ExactlyMatchesStdPowOnDyadicBases) {
  // Exponentiation-by-squaring multiplies exact powers of two, so every
  // intermediate is representable and the result must equal std::pow bit
  // for bit — not merely to tolerance.
  for (const double base : {2.0, 0.5, -2.0, 4.0, 1.0, -1.0}) {
    for (int e = 0; e <= 30; ++e) {
      EXPECT_EQ(pow_integer(base, e), std::pow(base, e))
          << "base=" << base << " e=" << e;
    }
  }
}

TEST(PowIntegerTest, NegativeExponentsAreReciprocals) {
  for (const double base : {2.0, 0.5, 4.0}) {
    for (int e = 1; e <= 20; ++e) {
      EXPECT_EQ(pow_integer(base, -e), 1.0 / pow_integer(base, e))
          << "base=" << base << " e=" << e;
    }
  }
  EXPECT_EQ(pow_integer(2.0, -1), 0.5);
  EXPECT_EQ(pow_integer(2.0, -3), 0.125);
}

TEST(PowIntegerTest, DegreeZeroIsOneForAnyBase) {
  for (const double base : {0.0, -0.0, 3.7, -12.0, 1e300}) {
    EXPECT_EQ(pow_integer(base, 0), 1.0) << "base=" << base;
  }
}

TEST(PowIntegerTest, CloseToStdPowOnArbitraryBases) {
  // Non-dyadic bases round differently between repeated squaring and
  // libm's pow, but stay within a few ulps at SVR-relevant degrees.
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const double base = rng.uniform(0.1, 4.0);
    const int e = 1 + i % 9;
    const double expected = std::pow(base, e);
    EXPECT_NEAR(pow_integer(base, e), expected, 1e-13 * std::abs(expected))
        << "base=" << base << " e=" << e;
  }
}

TEST(PowIntegerTest, IntMinExponentDoesNotOverflow) {
  // -INT_MIN overflows int; the implementation negates in long long.
  EXPECT_EQ(pow_integer(1.0, std::numeric_limits<int>::min()), 1.0);
  EXPECT_EQ(pow_integer(2.0, std::numeric_limits<int>::min()), 0.0);
  EXPECT_TRUE(
      std::isinf(pow_integer(0.5, std::numeric_limits<int>::min())));
}

TEST(KernelNamesTest, RoundTrip) {
  for (KernelKind k : {KernelKind::kLinear, KernelKind::kPolynomial,
                       KernelKind::kRbf, KernelKind::kSigmoid}) {
    EXPECT_EQ(kernel_kind_from_name(kernel_kind_name(k)), k);
  }
  EXPECT_THROW((void)kernel_kind_from_name("hyperbolic"), ConfigError);
}

TEST(KernelEvalTest, LinearIsDotProduct) {
  KernelParams p;
  p.kind = KernelKind::kLinear;
  const std::vector<double> x = {1.0, 2.0};
  const std::vector<double> z = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(kernel_eval(p, x, z), 11.0);
}

TEST(KernelEvalTest, PolynomialKnownValue) {
  KernelParams p;
  p.kind = KernelKind::kPolynomial;
  p.gamma = 0.5;
  p.degree = 2;
  p.coef0 = 1.0;
  const std::vector<double> x = {2.0};
  const std::vector<double> z = {2.0};
  // (0.5 * 4 + 1)^2 = 9
  EXPECT_DOUBLE_EQ(kernel_eval(p, x, z), 9.0);
}

TEST(KernelEvalTest, RbfKnownValue) {
  KernelParams p;
  p.kind = KernelKind::kRbf;
  p.gamma = 0.25;
  const std::vector<double> x = {0.0, 0.0};
  const std::vector<double> z = {2.0, 0.0};
  EXPECT_DOUBLE_EQ(kernel_eval(p, x, z), std::exp(-1.0));
}

TEST(KernelEvalTest, SigmoidKnownValue) {
  KernelParams p;
  p.kind = KernelKind::kSigmoid;
  p.gamma = 1.0;
  p.coef0 = 0.0;
  const std::vector<double> x = {0.5};
  const std::vector<double> z = {1.0};
  EXPECT_DOUBLE_EQ(kernel_eval(p, x, z), std::tanh(0.5));
}

class RbfPropertyTest : public ::testing::TestWithParam<double> {};

INSTANTIATE_TEST_SUITE_P(Gammas, RbfPropertyTest,
                         ::testing::Values(0.01, 0.1, 0.5, 1.0, 4.0));

TEST_P(RbfPropertyTest, SelfSimilarityIsOne) {
  KernelParams p;
  p.kind = KernelKind::kRbf;
  p.gamma = GetParam();
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    std::vector<double> x = {rng.uniform(-5, 5), rng.uniform(-5, 5)};
    EXPECT_DOUBLE_EQ(kernel_eval(p, x, x), 1.0);
  }
}

TEST_P(RbfPropertyTest, SymmetricAndBounded) {
  KernelParams p;
  p.kind = KernelKind::kRbf;
  p.gamma = GetParam();
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    std::vector<double> x = {rng.uniform(-5, 5), rng.uniform(-5, 5)};
    std::vector<double> z = {rng.uniform(-5, 5), rng.uniform(-5, 5)};
    const double kxz = kernel_eval(p, x, z);
    const double kzx = kernel_eval(p, z, x);
    EXPECT_DOUBLE_EQ(kxz, kzx);
    EXPECT_GT(kxz, 0.0);
    EXPECT_LE(kxz, 1.0);
  }
}

TEST_P(RbfPropertyTest, DecaysWithDistance) {
  KernelParams p;
  p.kind = KernelKind::kRbf;
  p.gamma = GetParam();
  const std::vector<double> origin = {0.0};
  double prev = 1.0;
  for (double d = 0.5; d < 5.0; d += 0.5) {
    const std::vector<double> z = {d};
    const double k = kernel_eval(p, origin, z);
    EXPECT_LT(k, prev);
    prev = k;
  }
}

TEST(KernelParamsTest, Validation) {
  KernelParams p;
  p.gamma = -1.0;
  EXPECT_THROW(p.validate(), ConfigError);
  p = KernelParams{};
  p.degree = 0;
  EXPECT_THROW(p.validate(), ConfigError);
  p = KernelParams{};
  p.kind = KernelKind::kLinear;
  p.gamma = 0.0;  // gamma unused by linear
  EXPECT_NO_THROW(p.validate());
}

}  // namespace
}  // namespace vmtherm::ml
