// Verifies the VMTHERM_TRACE=0 compile-time kill-switch: with tracing
// compiled out, the span macros must expand to nothing at all — no Span
// object, no recorder interaction — while the runtime API (used by tests
// and the exporter) keeps working. This TU defines the macro before the
// first include of obs/trace.h, exactly how a build would pass
// -DVMTHERM_TRACE=0.

#define VMTHERM_TRACE 0
#include "obs/trace.h"

#include <gtest/gtest.h>

namespace vmtherm::obs {
namespace {

TEST(TraceDisabledTest, SpanMacrosCompileToNoOps) {
  TraceRecorder& recorder = global_trace();
  recorder.clear();
  recorder.set_enabled(true);
  {
    VMTHERM_SPAN("never.recorded", "test");
    VMTHERM_SPAN_ARG("never.recorded.arg", "test", "n", 5);
  }
  // The macros are statements, usable without braces.
  if (recorder.enabled())
    VMTHERM_SPAN("branch", "test");
  else
    VMTHERM_SPAN("other", "test");
  recorder.set_enabled(false);
  EXPECT_EQ(recorder.event_count(), 0u);
  EXPECT_EQ(recorder.thread_buffer_count(), 0u);
  recorder.clear();
}

TEST(TraceDisabledTest, RuntimeSpanApiStillWorks) {
  // The kill-switch removes the macros only; explicit Span objects (and
  // with them the exporter, tests, perf_serve --trace) stay functional.
  TraceRecorder recorder;
  recorder.set_enabled(true);
  { Span span(recorder, "explicit", "test"); }
  recorder.set_enabled(false);
  EXPECT_EQ(recorder.event_count(), 1u);
}

}  // namespace
}  // namespace vmtherm::obs
