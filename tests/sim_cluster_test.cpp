// Tests for sim/cluster: multi-machine stepping and live migration.

#include "sim/cluster.h"

#include <gtest/gtest.h>

namespace vmtherm::sim {
namespace {

Cluster make_cluster(std::size_t machines = 2) {
  EnvironmentSpec env;
  env.base_c = 22.0;
  env.fluctuation_stddev_c = 0.0;
  Cluster cluster(env, Rng(1));
  for (std::size_t i = 0; i < machines; ++i) {
    MachineOptions options;
    options.sensor.noise_stddev_c = 0.0;
    options.sensor.quantization_c = 0.0;
    cluster.add_machine(make_server_spec("medium"), options);
  }
  return cluster;
}

Vm make_vm(const std::string& id, double mem = 4.0) {
  VmConfig config;
  config.vcpus = 4;
  config.memory_gb = mem;
  config.task = TaskType::kCpuBurn;
  return Vm(id, config, Rng(9));
}

TEST(ClusterTest, AddMachineReturnsIndices) {
  auto cluster = make_cluster(3);
  EXPECT_EQ(cluster.machine_count(), 3u);
}

TEST(ClusterTest, PlaceAndLocateVm) {
  auto cluster = make_cluster();
  cluster.place_vm(1, make_vm("a"));
  EXPECT_EQ(cluster.host_of("a"), 1u);
  EXPECT_THROW((void)cluster.host_of("ghost"), ConfigError);
}

TEST(ClusterTest, StepAdvancesAllMachines) {
  auto cluster = make_cluster();
  cluster.place_vm(0, make_vm("a"));
  cluster.step(5.0);
  EXPECT_DOUBLE_EQ(cluster.time_s(), 5.0);
  EXPECT_DOUBLE_EQ(cluster.machine(0).time_s(), 5.0);
  EXPECT_DOUBLE_EQ(cluster.machine(1).time_s(), 5.0);
}

TEST(ClusterTest, MigrationMovesVmAfterTransfer) {
  auto cluster = make_cluster();
  cluster.place_vm(0, make_vm("a", 4.0));  // 4 GB -> 10 s transfer
  cluster.migrate("a", 1);
  EXPECT_EQ(cluster.host_of("a"), 0u);  // still on source during pre-copy
  for (int i = 0; i < 2; ++i) cluster.step(5.0);
  // Transfer of 4 GB * 2.5 s/GB = 10 s completes at t=10.
  EXPECT_EQ(cluster.host_of("a"), 1u);
  ASSERT_EQ(cluster.completed_migrations().size(), 1u);
  EXPECT_EQ(cluster.completed_migrations()[0].vm_id, "a");
  EXPECT_EQ(cluster.completed_migrations()[0].to_machine, 1u);
}

TEST(ClusterTest, MigrationKeepsVmRunningDuringTransfer) {
  auto cluster = make_cluster();
  cluster.place_vm(0, make_vm("a", 8.0));  // 20 s transfer
  cluster.migrate("a", 1);
  cluster.step(5.0);
  // Source still hosts and runs the VM.
  EXPECT_TRUE(cluster.machine(0).has_vm("a"));
  EXPECT_GT(cluster.machine(0).last_sample().utilization, 0.1);
}

TEST(ClusterTest, MigrationOverheadOnBothHosts) {
  auto cluster = make_cluster();
  cluster.place_vm(0, make_vm("a", 8.0));
  // Baseline utilization of empty destination.
  cluster.step(5.0);
  const double dest_before = cluster.machine(1).last_sample().utilization;
  cluster.migrate("a", 1);
  cluster.step(5.0);
  const double dest_during = cluster.machine(1).last_sample().utilization;
  EXPECT_GT(dest_during, dest_before + 0.03);
}

TEST(ClusterTest, MigrationToSameMachineRejected) {
  auto cluster = make_cluster();
  cluster.place_vm(0, make_vm("a"));
  EXPECT_THROW(cluster.migrate("a", 0), ConfigError);
}

TEST(ClusterTest, MigrationOfUnknownVmRejected) {
  auto cluster = make_cluster();
  EXPECT_THROW(cluster.migrate("ghost", 1), ConfigError);
}

TEST(ClusterTest, MigrationOutOfRangeDestinationRejected) {
  auto cluster = make_cluster();
  cluster.place_vm(0, make_vm("a"));
  EXPECT_THROW(cluster.migrate("a", 5), ConfigError);
}

TEST(ClusterTest, DoubleMigrationRejected) {
  auto cluster = make_cluster(3);
  cluster.place_vm(0, make_vm("a", 16.0));  // long transfer
  cluster.migrate("a", 1);
  EXPECT_THROW(cluster.migrate("a", 2), ConfigError);
}

TEST(ClusterTest, MigrationRequiresDestinationMemory) {
  auto cluster = make_cluster();
  cluster.place_vm(0, make_vm("a", 10.0));
  cluster.place_vm(1, make_vm("filler", 60.0));  // medium has 64 GB
  EXPECT_THROW(cluster.migrate("a", 1), ConfigError);
}

TEST(ClusterTest, SourceCoolsAfterHotVmLeaves) {
  auto cluster = make_cluster();
  cluster.place_vm(0, make_vm("a", 4.0));
  // Warm up the source.
  for (int i = 0; i < 360; ++i) cluster.step(5.0);
  const double hot = cluster.machine(0).thermal().die_temp_c();
  cluster.migrate("a", 1);
  for (int i = 0; i < 360; ++i) cluster.step(5.0);
  const double cooled = cluster.machine(0).thermal().die_temp_c();
  EXPECT_LT(cooled, hot - 3.0);
  // And the destination warmed up.
  EXPECT_GT(cluster.machine(1).thermal().die_temp_c(), cooled);
}

}  // namespace
}  // namespace vmtherm::sim
