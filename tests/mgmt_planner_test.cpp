// Tests for mgmt/planner: greedy predictive hotspot relief.

#include "mgmt/planner.h"

#include <gtest/gtest.h>

#include "core/evaluator.h"

namespace vmtherm::mgmt {
namespace {

const core::StableTemperaturePredictor& predictor() {
  static const core::StableTemperaturePredictor p = [] {
    sim::ScenarioRanges ranges;
    ranges.duration_s = 1200.0;
    ranges.sample_interval_s = 10.0;
    core::StableTrainOptions options;
    ml::SvrParams params;
    params.kernel.gamma = 1.0 / 32;
    params.c = 512.0;
    params.epsilon = 0.05;
    options.fixed_params = params;
    return core::StableTemperaturePredictor::train(
        core::generate_corpus(ranges, 150, 72), options);
  }();
  return p;
}

PlacedVm vm(const std::string& id, sim::TaskType task, int vcpus = 4,
            double mem = 4.0) {
  PlacedVm v;
  v.id = id;
  v.config.vcpus = vcpus;
  v.config.memory_gb = mem;
  v.config.task = task;
  return v;
}

/// One overloaded host plus two mostly idle ones.
std::vector<HostPlacement> unbalanced_fleet() {
  HostPlacement hot;
  hot.server = sim::make_server_spec("medium");
  hot.fans = 4;
  hot.vms = {vm("burn-0", sim::TaskType::kCpuBurn, 8),
             vm("burn-1", sim::TaskType::kCpuBurn, 8),
             vm("burn-2", sim::TaskType::kCpuBurn, 8),
             vm("web-0", sim::TaskType::kWebServer, 4)};

  HostPlacement idle_a;
  idle_a.server = sim::make_server_spec("medium");
  idle_a.fans = 4;
  idle_a.vms = {vm("idle-0", sim::TaskType::kIdle, 2)};

  HostPlacement idle_b;
  idle_b.server = sim::make_server_spec("large");
  idle_b.fans = 6;
  idle_b.vms = {vm("idle-1", sim::TaskType::kIdle, 2)};
  return {hot, idle_a, idle_b};
}

TEST(HostPlacementTest, MemoryAccounting) {
  const auto fleet = unbalanced_fleet();
  EXPECT_DOUBLE_EQ(fleet[0].used_memory_gb(), 16.0);
  sim::VmConfig big;
  big.vcpus = 2;
  big.memory_gb = 100.0;
  EXPECT_FALSE(fleet[0].fits(big));
  big.memory_gb = 16.0;
  EXPECT_TRUE(fleet[0].fits(big));
}

TEST(PlannerTest, EmptyFleetThrows) {
  EXPECT_THROW((void)plan_migrations(predictor(), {}, PlannerOptions{}),
               ConfigError);
}

TEST(PlannerTest, HealthyFleetNeedsNoMoves) {
  std::vector<HostPlacement> fleet = {unbalanced_fleet()[1],
                                      unbalanced_fleet()[2]};
  PlannerOptions options;
  options.target_c = 70.0;
  const auto plan = plan_migrations(predictor(), fleet, options);
  EXPECT_TRUE(plan.moves.empty());
  EXPECT_TRUE(plan.target_met);
}

TEST(PlannerTest, RelievesHotspot) {
  PlannerOptions options;
  options.target_c = 62.0;
  options.env_temp_c = 23.0;
  const auto plan = plan_migrations(predictor(), unbalanced_fleet(), options);

  ASSERT_FALSE(plan.moves.empty());
  EXPECT_GT(plan.predicted_before_c[0], options.target_c);
  // The hot host's prediction must have dropped.
  EXPECT_LT(plan.predicted_after_c[0], plan.predicted_before_c[0]);
  // Every move originates from the hot host here.
  for (const auto& move : plan.moves) {
    EXPECT_EQ(move.from_host, 0u);
    EXPECT_NE(move.to_host, 0u);
  }
}

TEST(PlannerTest, DestinationsStayUnderTarget) {
  PlannerOptions options;
  options.target_c = 62.0;
  options.dest_headroom_c = 2.0;
  const auto plan = plan_migrations(predictor(), unbalanced_fleet(), options);
  for (const auto& move : plan.moves) {
    EXPECT_LE(move.dest_predicted_after_c,
              options.target_c - options.dest_headroom_c + 1e-9);
  }
}

TEST(PlannerTest, RespectsMoveBudget) {
  PlannerOptions options;
  options.target_c = 40.0;  // unreachable: everything is over
  options.max_moves = 2;
  const auto plan = plan_migrations(predictor(), unbalanced_fleet(), options);
  EXPECT_LE(plan.moves.size(), 2u);
  EXPECT_FALSE(plan.target_met);
}

TEST(PlannerTest, DeterministicPlans) {
  PlannerOptions options;
  options.target_c = 62.0;
  const auto a = plan_migrations(predictor(), unbalanced_fleet(), options);
  const auto b = plan_migrations(predictor(), unbalanced_fleet(), options);
  ASSERT_EQ(a.moves.size(), b.moves.size());
  for (std::size_t i = 0; i < a.moves.size(); ++i) {
    EXPECT_EQ(a.moves[i].vm_id, b.moves[i].vm_id);
    EXPECT_EQ(a.moves[i].to_host, b.moves[i].to_host);
  }
}

TEST(PlannerTest, PlanVerifiesOnTestbed) {
  // Execute the plan on the simulator: the hot host's *measured* stable
  // temperature must drop by roughly the predicted amount.
  PlannerOptions options;
  options.target_c = 62.0;
  auto fleet = unbalanced_fleet();
  const auto plan = plan_migrations(predictor(), fleet, options);
  ASSERT_FALSE(plan.moves.empty());

  auto measure = [&](const HostPlacement& host) {
    sim::ExperimentConfig config;
    config.server = host.server;
    config.vms = host.configs();
    config.active_fans = host.fans;
    config.environment.base_c = options.env_temp_c;
    config.initial_temp_c = options.env_temp_c;
    config.duration_s = 1500.0;
    config.sample_interval_s = 10.0;
    config.seed = 5;
    return core::stable_temperature(sim::run_experiment(config).trace);
  };

  const double before = measure(fleet[0]);
  // Apply the plan.
  for (const auto& move : plan.moves) {
    auto& from = fleet[move.from_host];
    auto& to = fleet[move.to_host];
    for (auto it = from.vms.begin(); it != from.vms.end(); ++it) {
      if (it->id == move.vm_id) {
        to.vms.push_back(*it);
        from.vms.erase(it);
        break;
      }
    }
  }
  const double after = measure(fleet[0]);
  EXPECT_LT(after, before - 2.0);
  EXPECT_NEAR(after, plan.predicted_after_c[0], 5.0);
}

}  // namespace
}  // namespace vmtherm::mgmt
