// Tests for core/stable_predictor: the Eq. (2) training pipeline.

#include "core/stable_predictor.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "core/evaluator.h"

namespace vmtherm::core {
namespace {

// A small, fast corpus shared across tests (static to build once).
const std::vector<Record>& small_corpus() {
  static const std::vector<Record> corpus = [] {
    sim::ScenarioRanges ranges;
    ranges.duration_s = 1200.0;
    ranges.sample_interval_s = 10.0;
    return generate_corpus(ranges, 60, /*seed=*/11);
  }();
  return corpus;
}

StableTrainOptions fast_options() {
  StableTrainOptions options;
  ml::SvrParams params;
  params.kernel.gamma = 1.0 / 16;
  params.c = 256.0;
  params.epsilon = 0.05;
  options.fixed_params = params;
  return options;
}

TEST(RecordsToDatasetTest, ShapesAndLabels) {
  const auto data = records_to_dataset(small_corpus());
  EXPECT_EQ(data.size(), small_corpus().size());
  EXPECT_EQ(data.dim(), kRecordFeatureCount);
  EXPECT_DOUBLE_EQ(data[0].y, small_corpus()[0].stable_temp_c);
}

TEST(StablePredictorTest, EmptyCorpusThrows) {
  EXPECT_THROW((void)StableTemperaturePredictor::train({}, fast_options()),
               DataError);
}

TEST(StablePredictorTest, TrainsAndFitsTrainingData) {
  StableTrainReport report;
  const auto predictor =
      StableTemperaturePredictor::train(small_corpus(), fast_options(),
                                        &report);
  EXPECT_EQ(report.training_records, small_corpus().size());
  EXPECT_EQ(report.grid_points_evaluated, 0u);  // fixed params: no search
  EXPECT_TRUE(report.final_fit.converged);

  double se = 0.0;
  for (const auto& r : small_corpus()) {
    const double e = predictor.predict(r) - r.stable_temp_c;
    se += e * e;
  }
  // In-sample fit should be tight (temperatures span tens of degrees).
  EXPECT_LT(se / static_cast<double>(small_corpus().size()), 2.0);
}

TEST(StablePredictorTest, GridSearchPathRuns) {
  StableTrainOptions options;
  options.grid.c_values = {8.0, 128.0};
  options.grid.gamma_values = {0.125, 1.0};
  options.grid.epsilon_values = {0.1};
  options.grid.folds = 4;
  StableTrainReport report;
  const auto predictor =
      StableTemperaturePredictor::train(small_corpus(), options, &report);
  EXPECT_EQ(report.grid_points_evaluated, 4u);
  EXPECT_GT(report.cv_mse, 0.0);
  // Chosen params come from the grid.
  EXPECT_TRUE(report.chosen_params.c == 8.0 || report.chosen_params.c == 128.0);
  (void)predictor;
}

TEST(StablePredictorTest, PredictsFromExplicitInputs) {
  const auto predictor =
      StableTemperaturePredictor::train(small_corpus(), fast_options());
  const auto server = sim::make_server_spec("medium");
  sim::VmConfig vm;
  vm.vcpus = 4;
  vm.memory_gb = 4.0;
  vm.task = sim::TaskType::kCpuBurn;

  const double few = predictor.predict(server, {vm, vm}, 4, 22.0);
  EXPECT_GT(few, 20.0);
  EXPECT_LT(few, 100.0);
}

TEST(StablePredictorTest, MoreLoadPredictsHotter) {
  const auto predictor =
      StableTemperaturePredictor::train(small_corpus(), fast_options());
  const auto server = sim::make_server_spec("medium");
  sim::VmConfig burn;
  burn.vcpus = 4;
  burn.memory_gb = 4.0;
  burn.task = sim::TaskType::kCpuBurn;
  sim::VmConfig idle = burn;
  idle.task = sim::TaskType::kIdle;

  const double hot =
      predictor.predict(server, {burn, burn, burn, burn}, 4, 22.0);
  const double cool =
      predictor.predict(server, {idle, idle, idle, idle}, 4, 22.0);
  EXPECT_GT(hot, cool + 3.0);
}

TEST(StablePredictorTest, HotterRoomPredictsHotter) {
  const auto predictor =
      StableTemperaturePredictor::train(small_corpus(), fast_options());
  const auto server = sim::make_server_spec("medium");
  sim::VmConfig vm;
  vm.vcpus = 4;
  vm.memory_gb = 4.0;
  vm.task = sim::TaskType::kBatch;
  const double cold_room = predictor.predict(server, {vm, vm}, 4, 18.0);
  const double hot_room = predictor.predict(server, {vm, vm}, 4, 30.0);
  EXPECT_GT(hot_room, cold_room + 3.0);
}

TEST(StablePredictorTest, SaveLoadRoundTrip) {
  const auto predictor =
      StableTemperaturePredictor::train(small_corpus(), fast_options());
  const auto path = (std::filesystem::temp_directory_path() /
                     "vmtherm_stable_predictor_test.model")
                        .string();
  predictor.save(path);
  const auto loaded = StableTemperaturePredictor::load(path);
  for (const auto& r : small_corpus()) {
    ASSERT_DOUBLE_EQ(loaded.predict(r), predictor.predict(r));
  }
  std::filesystem::remove(path);
}

TEST(StablePredictorTest, LoadMissingFileThrows) {
  EXPECT_THROW(
      (void)StableTemperaturePredictor::load("/nonexistent/predictor.model"),
      IoError);
}

}  // namespace
}  // namespace vmtherm::core
