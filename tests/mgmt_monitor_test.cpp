// Tests for mgmt/monitor: the online ThermalMonitorService.

#include "mgmt/monitor.h"

#include <gtest/gtest.h>

#include "core/evaluator.h"
#include "sim/cluster.h"

namespace vmtherm::mgmt {
namespace {

core::StableTemperaturePredictor make_predictor() {
  sim::ScenarioRanges ranges;
  ranges.duration_s = 1200.0;
  ranges.sample_interval_s = 10.0;
  core::StableTrainOptions options;
  ml::SvrParams params;
  params.kernel.gamma = 1.0 / 32;
  params.c = 512.0;
  params.epsilon = 0.05;
  options.fixed_params = params;
  return core::StableTemperaturePredictor::train(
      core::generate_corpus(ranges, 150, 73), options);
}

MonitoredConfig busy_config() {
  MonitoredConfig config;
  config.server = sim::make_server_spec("medium");
  config.fans = 4;
  sim::VmConfig burn;
  burn.vcpus = 8;
  burn.memory_gb = 8.0;
  burn.task = sim::TaskType::kCpuBurn;
  config.vms = {burn, burn};
  config.env_temp_c = 23.0;
  return config;
}

MonitoredConfig idle_config() {
  MonitoredConfig config = busy_config();
  config.vms.clear();
  sim::VmConfig idle;
  idle.vcpus = 2;
  idle.memory_gb = 4.0;
  idle.task = sim::TaskType::kIdle;
  config.vms = {idle};
  return config;
}

TEST(MonitorTest, RegisterAndQuery) {
  ThermalMonitorService service(make_predictor());
  service.register_host("h1", busy_config(), 0.0, 23.0);
  EXPECT_TRUE(service.has_host("h1"));
  EXPECT_EQ(service.host_count(), 1u);
  EXPECT_GT(service.stable_prediction("h1"), 30.0);
  EXPECT_EQ(service.config_of("h1").fans, 4);
}

TEST(MonitorTest, DuplicateRegistrationThrows) {
  ThermalMonitorService service(make_predictor());
  service.register_host("h1", busy_config(), 0.0, 23.0);
  EXPECT_THROW(service.register_host("h1", busy_config(), 0.0, 23.0),
               ConfigError);
}

TEST(MonitorTest, UnknownHostThrows) {
  ThermalMonitorService service(make_predictor());
  EXPECT_THROW(service.observe("ghost", 1.0, 40.0), ConfigError);
  EXPECT_THROW((void)service.forecast("ghost", 60.0), ConfigError);
  EXPECT_THROW(service.unregister_host("ghost"), ConfigError);
  EXPECT_THROW((void)service.config_of("ghost"), ConfigError);
}

TEST(MonitorTest, UnregisterRemoves) {
  ThermalMonitorService service(make_predictor());
  service.register_host("h1", busy_config(), 0.0, 23.0);
  service.unregister_host("h1");
  EXPECT_FALSE(service.has_host("h1"));
  EXPECT_EQ(service.host_count(), 0u);
}

TEST(MonitorTest, ForecastRisesTowardStablePrediction) {
  ThermalMonitorService service(make_predictor());
  service.register_host("h1", busy_config(), 0.0, 23.0);
  const double near = service.forecast("h1", 30.0);
  const double far = service.forecast("h1", 590.0);
  EXPECT_GT(far, near);  // heating toward the stable target
  EXPECT_NEAR(far, service.stable_prediction("h1"), 6.0);
}

TEST(MonitorTest, ObservationsCalibrateForecasts) {
  ThermalMonitorService service(make_predictor());
  service.register_host("h1", busy_config(), 0.0, 23.0);
  // Feed measurements consistently 4 C above the model's own trajectory.
  for (double t = 15.0; t <= 300.0; t += 15.0) {
    const double model_now = service.forecast("h1", 0.0);
    service.observe("h1", t, model_now + 4.0);
  }
  // After many updates the forecast carries (most of) the offset.
  const double before_offset = service.forecast("h1", 0.0);
  service.observe("h1", 315.0, before_offset);  // consistent reading
  EXPECT_GT(service.forecast("h1", 0.0), before_offset - 1.0);
}

TEST(MonitorTest, UpdateConfigRetargets) {
  ThermalMonitorService service(make_predictor());
  service.register_host("h1", busy_config(), 0.0, 23.0);
  for (double t = 15.0; t <= 120.0; t += 15.0) {
    service.observe("h1", t, 30.0 + t * 0.05);
  }
  const double busy_stable = service.stable_prediction("h1");
  service.update_config("h1", idle_config(), 120.0, 36.0);
  const double idle_stable = service.stable_prediction("h1");
  EXPECT_LT(idle_stable, busy_stable - 5.0);
  // Forecast now heads toward the idle stable prediction (consistency of
  // the retargeted curve, not absolute model accuracy).
  EXPECT_NEAR(service.forecast("h1", 590.0), idle_stable, 2.0);
  EXPECT_LT(service.forecast("h1", 590.0), busy_stable - 4.0);
}

TEST(MonitorTest, HotspotRisksSortedAndFlagged) {
  ThermalMonitorService service(make_predictor());
  service.register_host("hot", busy_config(), 0.0, 23.0);
  service.register_host("cool", idle_config(), 0.0, 23.0);

  const auto risks = service.hotspot_risks(590.0, 45.0);
  ASSERT_EQ(risks.size(), 2u);
  EXPECT_EQ(risks[0].host_id, "hot");
  EXPECT_GE(risks[0].forecast_c, risks[1].forecast_c);
  EXPECT_TRUE(risks[0].at_risk);
  EXPECT_FALSE(risks[1].at_risk);
}

TEST(MonitorTest, TracksLiveSimulatedMachine) {
  // End-to-end: monitor tracks a simulated machine within a tight MAE.
  const auto predictor = make_predictor();
  ThermalMonitorService service(predictor);

  sim::MachineOptions machine_options;
  machine_options.initial_temp_c = 23.0;
  sim::PhysicalMachine machine(sim::make_server_spec("medium"),
                               machine_options, Rng(3));
  sim::VmConfig burn;
  burn.vcpus = 8;
  burn.memory_gb = 8.0;
  burn.task = sim::TaskType::kCpuBurn;
  machine.add_vm(sim::Vm("b0", burn, Rng(4)));
  machine.add_vm(sim::Vm("b1", burn, Rng(5)));

  MonitoredConfig config = busy_config();
  service.register_host("m", config, 0.0, 23.0);

  double abs_err = 0.0;
  int n = 0;
  for (int step = 1; step <= 240; ++step) {
    const auto sample = machine.step(5.0, 23.0);
    const double forecast_now = service.forecast("m", 0.0);
    abs_err += std::abs(forecast_now - sample.cpu_temp_sensed_c);
    ++n;
    service.observe("m", sample.time_s, sample.cpu_temp_sensed_c);
  }
  EXPECT_LT(abs_err / n, 2.0);
}

}  // namespace
}  // namespace vmtherm::mgmt
